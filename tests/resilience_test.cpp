// Protocol resilience under sustained and bursty fault injection: every
// run must terminate with a structured status (ok or degraded) — never
// hang (the ctest TIMEOUT enforces that side) — and bounded bursts that
// heal must let the protocols finish the job.

#include <gtest/gtest.h>

#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/dfs_numbering.h"
#include "protocols/point_to_point.h"
#include "protocols/ranking.h"
#include "protocols/setup.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

/// The issue's headline fault regime: crashes at 5% per epoch (with
/// recovery so the network is not eventually all-dead) plus 20% jamming.
FaultPlan harsh_plan() {
  FaultPlan plan;
  plan.crash_rate = 0.05;
  plan.recover_rate = 0.5;
  plan.jam_prob = 0.2;
  plan.epoch_slots = 256;
  return plan;
}

std::vector<Message> one_message_each(const Graph& g, NodeId except) {
  std::vector<Message> init;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == except) continue;
    Message m;
    m.kind = MsgKind::kData;
    m.origin = v;
    m.seq = 0;
    init.push_back(m);
  }
  return init;
}

TEST(Resilience, CollectionTerminatesUnderCrashAndJam) {
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    cfg.faults = harsh_plan();
    cfg.stall_slots = 100'000;
    const auto out =
        run_collection(g, tree, one_message_each(g, 0), cfg, seed);
    // Structured outcome, never a hang: ok means everything arrived,
    // degraded means the watchdog cut a stalled run cleanly.
    if (out.completed) {
      EXPECT_EQ(out.status, RunStatus::kOk) << "seed " << seed;
    } else {
      EXPECT_EQ(out.status, RunStatus::kDegraded) << "seed " << seed;
    }
  }
}

TEST(Resilience, PointToPointTerminatesUnderCrashAndJam) {
  const Graph g = gen::grid(4, 5);
  PreparationResult prep = run_preparation(g, oracle_bfs_tree(g, 0));
  ASSERT_TRUE(prep.ok);
  Rng rng(31);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<P2pRequest> reqs;
    for (int i = 0; i < 12; ++i) {
      P2pRequest r;
      r.src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      r.dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      r.payload = 5000 + i;
      reqs.push_back(r);
    }
    P2pConfig cfg = P2pConfig::for_graph(g);
    cfg.faults = harsh_plan();
    cfg.stall_slots = 100'000;
    const auto out = run_point_to_point(g, prep, reqs, cfg, seed);
    EXPECT_LE(out.delivered, reqs.size());
    if (out.completed) {
      EXPECT_EQ(out.status, RunStatus::kOk) << "seed " << seed;
    } else {
      EXPECT_EQ(out.status, RunStatus::kDegraded) << "seed " << seed;
    }
  }
}

TEST(Resilience, KBroadcastTerminatesUnderCrashAndJam) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  Rng rng(33);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<NodeId> sources;
    for (int i = 0; i < 6; ++i)
      sources.push_back(static_cast<NodeId>(rng.next_below(g.num_nodes())));
    BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
    cfg.faults = harsh_plan();
    cfg.stall_slots = 100'000;
    const auto out = run_k_broadcast(g, tree, sources, cfg, seed);
    if (out.completed) {
      EXPECT_EQ(out.status, RunStatus::kOk) << "seed " << seed;
    } else {
      EXPECT_EQ(out.status, RunStatus::kDegraded) << "seed " << seed;
    }
  }
}

TEST(Resilience, RankingTerminatesUnderJam) {
  const Graph g = gen::path(12);
  PreparationResult prep = run_preparation(g, oracle_bfs_tree(g, 0));
  ASSERT_TRUE(prep.ok);
  Rng rng(47);
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (auto& id : ids) id = rng.next();
  FaultPlan plan;
  plan.jam_prob = 0.15;
  const auto out =
      run_ranking(g, prep, ids, 5, 50'000'000, nullptr, plan, 200'000);
  if (out.completed) {
    EXPECT_EQ(out.status, RunStatus::kOk);
  } else {
    EXPECT_EQ(out.status, RunStatus::kDegraded);
  }
}

TEST(Resilience, SetupUnderSustainedFaultsReportsDegradedNotHang) {
  // Heavy sustained crashing: the verify/restart loop must burn through
  // its (small, test-sized) attempt budget and come back degraded.
  const Graph g = gen::grid(4, 4);
  SetupTuning tuning;
  tuning.faults.crash_rate = 0.4;
  tuning.faults.recover_rate = 0.3;
  tuning.faults.epoch_slots = 128;
  const auto out = run_setup(g, 17, tuning, /*max_attempts=*/3);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.status, RunStatus::kDegraded);
}

TEST(Resilience, SetupSurvivesMidRunCrashBurst) {
  // A crash burst confined to an early window, with always-on recovery:
  // the poisoned attempts fail verification, the restart loop retries,
  // and once the burst heals an attempt succeeds with a valid BFS tree.
  // The crashed stations wake mid-schedule and must resync through the
  // attempt boundaries they slept through.
  const Graph g = gen::grid(5, 5);
  SetupTuning tuning;
  tuning.faults.crash_rate = 0.3;
  tuning.faults.recover_rate = 0.8;
  tuning.faults.epoch_slots = 256;
  tuning.faults.window_end = 20'000;
  const auto out = run_setup(g, 2, tuning, /*max_attempts=*/8);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.status, RunStatus::kOk);
  EXPECT_GT(out.attempts, 1u);
  EXPECT_TRUE(is_bfs_tree_of(g, out.tree));
}

TEST(Resilience, FloodUnderLinkChurnStillTerminates) {
  const Graph g = gen::rary_tree(31, 2);
  FaultPlan plan;
  plan.link_down_rate = 0.1;
  plan.link_up_rate = 0.5;
  plan.epoch_slots = 64;
  const auto out = run_bgi_broadcast(g, 0, 200, 5, plan);
  // Phase-budget bounded; under churn the coverage may be partial but
  // the source itself is always informed.
  EXPECT_GE(out.informed_count, 1u);
  EXPECT_LE(out.informed_count, g.num_nodes());
}

}  // namespace
}  // namespace radiomc
