// The continuous-traffic service mode (src/service/): arrival processes,
// admission control, the open-loop driver, and soak certification.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "service/certify.h"
#include "service/service.h"
#include "support/rng.h"

namespace radiomc::service {
namespace {

using radiomc::BfsTree;
using radiomc::Graph;
using radiomc::Rng;

/// Runs `fn`, which must throw std::invalid_argument, and returns the
/// message so the caller can pin the substring (the --trace-agg error
/// convention: specific messages are part of the interface).
template <typename Fn>
std::string InvalidMessage(Fn fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return "";
}

#define EXPECT_MSG(call, substr)                                      \
  do {                                                                \
    const std::string msg_ = InvalidMessage([&] { call; });           \
    EXPECT_NE(msg_.find(substr), std::string::npos) << msg_;          \
  } while (0)

std::vector<std::uint32_t> Stream(const ArrivalSpec& spec, std::uint64_t seed,
                                  int n) {
  ArrivalProcess p(spec, Rng(seed));
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (int i = 0; i < n; ++i) v.push_back(p.step());
  return v;
}

// ---------------------------------------------------------------------------
// Arrival processes.
// ---------------------------------------------------------------------------

TEST(Arrival, SameSeedSameStreamEveryKind) {
  const std::vector<std::string> specs = {"bernoulli:0.3", "poisson:1.7",
                                          "mmpp:0.05:1:0.2:0.3"};
  for (const std::string& s : specs) {
    const ArrivalSpec spec = ArrivalSpec::parse(s);
    EXPECT_EQ(Stream(spec, 77, 2000), Stream(spec, 77, 2000)) << s;
    EXPECT_NE(Stream(spec, 77, 2000), Stream(spec, 78, 2000)) << s;
  }
}

TEST(Arrival, BernoulliIsZeroOneAtItsRate) {
  const auto v = Stream(ArrivalSpec::parse("bernoulli:0.3"), 5, 20000);
  std::uint64_t sum = 0;
  for (std::uint32_t x : v) {
    EXPECT_LE(x, 1u);
    sum += x;
  }
  EXPECT_NEAR(static_cast<double>(sum) / v.size(), 0.3, 0.02);
}

TEST(Arrival, PoissonInverseCdfMatchesMean) {
  const auto v = Stream(ArrivalSpec::parse("poisson:2"), 6, 20000);
  std::uint64_t sum = 0;
  std::uint32_t peak = 0;
  for (std::uint32_t x : v) {
    sum += x;
    peak = std::max(peak, x);
  }
  EXPECT_NEAR(static_cast<double>(sum) / v.size(), 2.0, 0.06);
  EXPECT_GE(peak, 5u);   // the tail exists...
  EXPECT_LE(peak, 64u);  // ...and the inverse-CDF walk is capped
}

TEST(Arrival, MmppMixesToItsStationaryRate) {
  const ArrivalSpec spec = ArrivalSpec::parse("mmpp:0.05:1:0.2:0.3");
  // pi_on = 0.2 / (0.2 + 0.3) = 0.4; mean = 0.4 * 1 + 0.6 * 0.05.
  EXPECT_NEAR(spec.mean_rate(), 0.43, 1e-12);
  ArrivalProcess p(spec, Rng(9));
  std::uint64_t sum = 0;
  bool saw_on = false, saw_off = false;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += p.step();
    (p.bursting() ? saw_on : saw_off) = true;
  }
  EXPECT_NEAR(static_cast<double>(sum) / n, spec.mean_rate(), 0.05);
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

TEST(Arrival, ParseRoundTrips) {
  const ArrivalSpec p = ArrivalSpec::parse("poisson:2.5");
  EXPECT_EQ(p.kind, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(p.rate, 2.5);
  const ArrivalSpec m = ArrivalSpec::parse("mmpp:0:1:0.2:0.5");
  EXPECT_EQ(m.kind, ArrivalKind::kMmpp);
  EXPECT_DOUBLE_EQ(m.on_rate, 1.0);
  EXPECT_NE(m.describe().find("mmpp"), std::string::npos);
}

TEST(Arrival, ParseRejectsWithSpecificMessages) {
  EXPECT_MSG(ArrivalSpec::parse(""), "arrival spec: empty");
  EXPECT_MSG(ArrivalSpec::parse("uniform:1"), "unknown kind 'uniform'");
  EXPECT_MSG(ArrivalSpec::parse("bernoulli"), "takes exactly one parameter");
  EXPECT_MSG(ArrivalSpec::parse("bernoulli:1.5"), "must be in (0, 1)");
  EXPECT_MSG(ArrivalSpec::parse("poisson:x"), "'x' is not a number");
  EXPECT_MSG(ArrivalSpec::parse("poisson:2abc"), "trailing junk");
  EXPECT_MSG(ArrivalSpec::parse("poisson:9"), "must be <= 8");
  EXPECT_MSG(ArrivalSpec::parse("mmpp:0.1:0.2"), "exactly four parameters");
  EXPECT_MSG(ArrivalSpec::parse("mmpp:0.5:0.2:0.5:0.5"),
             "on-state rate must be >= ");
  EXPECT_MSG(ArrivalSpec::parse("mmpp:0.1:0.5:0:0.5"),
             "p_on (off->on switch probability)");
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(Admission, PolicyParsing) {
  EXPECT_EQ(admission_policy_from_string("off"), AdmissionPolicy::kOff);
  EXPECT_EQ(admission_policy_from_string("shed"), AdmissionPolicy::kShed);
  EXPECT_EQ(admission_policy_from_string("defer"), AdmissionPolicy::kDefer);
  EXPECT_MSG(admission_policy_from_string("drop"),
             "--admission 'drop' is not a policy");
}

TEST(Admission, ConfigRejectsNonPositiveMultiple) {
  AdmissionConfig cfg;
  cfg.envelope_multiple = 0.0;
  EXPECT_MSG(cfg.validate(), "envelope multiple must be > 0");
}

TEST(Admission, OffAdmitsEverything) {
  AdmissionConfig cfg;  // policy off
  AdmissionController c(cfg, 0.1, queueing::mu_decay());
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(c.decide(1u << 20), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(c.admitted(), 5u);
  EXPECT_EQ(c.shed() + c.deferred(), 0u);
}

TEST(Admission, ShedAndDeferTriggerAtTheEnvelope) {
  const double mu = queueing::mu_decay();
  // At half load the Hsu-Burke mean is < 1 message, so the floor makes the
  // envelope exactly the multiple.
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicy::kShed;
  cfg.envelope_multiple = 1.0;
  AdmissionController shed(cfg, mu / 2, mu);
  EXPECT_DOUBLE_EQ(shed.level_envelope(), 1.0);
  EXPECT_EQ(shed.decide(0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(shed.decide(1), AdmissionController::Decision::kShed);
  EXPECT_EQ(shed.admitted(), 1u);
  EXPECT_EQ(shed.shed(), 1u);

  cfg.policy = AdmissionPolicy::kDefer;
  AdmissionController defer(cfg, mu / 2, mu);
  EXPECT_EQ(defer.decide(1), AdmissionController::Decision::kDefer);
  EXPECT_EQ(defer.deferred(), 1u);
}

TEST(Admission, OverloadEnvelopeStaysFinite) {
  const double mu = queueing::mu_decay();
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicy::kShed;
  AdmissionController c(cfg, /*lambda=*/4.0, mu);  // way past mu
  EXPECT_TRUE(std::isfinite(c.level_envelope()));
  EXPECT_GT(c.level_envelope(), 0.0);
  // lambda_eff caps at 0.9 mu, so the envelope equals the capped form.
  const double capped = queueing::mean_queue_length(0.9 * mu, mu);
  EXPECT_DOUBLE_EQ(c.level_envelope(),
                   cfg.envelope_multiple * std::max(1.0, capped));
}

// ---------------------------------------------------------------------------
// The open-loop driver.
// ---------------------------------------------------------------------------

ServeConfig BaseConfig(const std::string& arrival, std::uint64_t phases,
                       std::uint64_t warmup) {
  ServeConfig cfg;
  cfg.arrival = ArrivalSpec::parse(arrival);
  cfg.phases = phases;
  cfg.warmup_phases = warmup;
  return cfg;
}

TEST(Serve, DeterministicAcrossRuns) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const ServeConfig cfg = BaseConfig("mmpp:0.02:0.5:0.1:0.2", 1500, 200);
  const ServeOutcome a = run_service(g, tree, cfg, 21);
  const ServeOutcome b = run_service(g, tree, cfg, 21);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.engine_polls, b.engine_polls);
  EXPECT_EQ(a.population.mean(), b.population.mean());
  EXPECT_EQ(a.sojourn_phases.mean(), b.sojourn_phases.mean());

  const ServeOutcome c = run_service(g, tree, cfg, 22);
  EXPECT_FALSE(a.arrivals == c.arrivals &&
               a.population.mean() == c.population.mean() &&
               a.sojourn_phases.mean() == c.sojourn_phases.mean());
}

TEST(Serve, ConservesMessagesWithoutWarmup) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const ServeOutcome out =
      run_service(g, tree, BaseConfig("bernoulli:0.1", 2500, 0), 31);
  EXPECT_GE(out.arrivals, 150u);
  EXPECT_EQ(out.arrivals, out.admitted);  // policy off
  EXPECT_EQ(out.admitted, out.delivered + out.backlog);
  EXPECT_EQ(out.duplicates, 0u);
  EXPECT_EQ(out.status, RunStatus::kOk);
}

TEST(Serve, AutosleepIsByteIdenticalAndCheaper) {
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  ServeConfig on = BaseConfig("bernoulli:0.08", 1200, 100);
  ServeConfig off = on;
  off.autosleep = false;
  const ServeOutcome a = run_service(g, tree, on, 41);
  const ServeOutcome b = run_service(g, tree, off, 41);
  // The Waker contract: sleeping changes which stations get polled, never
  // what any station computes.
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.population.mean(), b.population.mean());
  EXPECT_EQ(a.sojourn_phases.mean(), b.sojourn_phases.mean());
  EXPECT_LT(a.engine_polls, b.engine_polls);
}

TEST(Serve, ShedBoundsQueuesUnderOverload) {
  // star: every leaf shares BFS level 1, so a super-mu offered load piles
  // into one contended level and the envelope must engage.
  const Graph g = gen::star(24);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  ServeConfig cfg = BaseConfig("poisson:0.8", 1000, 100);
  cfg.admission.policy = AdmissionPolicy::kShed;
  cfg.admission.envelope_multiple = 1.0;
  const ServeOutcome out = run_service(g, tree, cfg, 51);
  EXPECT_GT(out.shed, 0u);
  EXPECT_EQ(out.status, RunStatus::kDegraded);
  EXPECT_LE(static_cast<double>(out.peak_level_depth),
            2.0 * out.level_envelope + 1.0);
}

TEST(Serve, DeferHoldsArrivalsInsteadOfDropping) {
  const Graph g = gen::star(24);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  ServeConfig cfg = BaseConfig("poisson:0.8", 1000, 100);
  cfg.admission.policy = AdmissionPolicy::kDefer;
  cfg.admission.envelope_multiple = 1.0;
  const ServeOutcome out = run_service(g, tree, cfg, 51);
  EXPECT_GT(out.deferred, 0u);
  EXPECT_EQ(out.shed, 0u);
  EXPECT_GT(out.defer_backlog, 0u);  // overload: the hold queue never drains
  EXPECT_EQ(out.status, RunStatus::kDegraded);
}

TEST(Serve, FaultChurnStaysExactlyOnce) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  ServeConfig cfg = BaseConfig("bernoulli:0.05", 2000, 0);
  cfg.faults.crash_rate = 0.02;
  cfg.faults.recover_rate = 0.3;
  cfg.faults.drop_prob = 0.01;
  cfg.faults.epoch_slots = 512;
  const ServeOutcome out = run_service(g, tree, cfg, 61);
  EXPECT_GT(out.delivered, 0u);
  EXPECT_EQ(out.duplicates, 0u);  // Remark 3 dedup guard holds under churn
}

TEST(Serve, ValidatesConfigAndFlagPairs) {
  const Graph g = gen::path(4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  ServeConfig zero = BaseConfig("bernoulli:0.1", 0, 10);
  EXPECT_MSG(run_service(g, tree, zero, 1),
             "measured horizon must be at least one phase");

  const auto flags = [](bool certify, bool horizon, bool both, bool soak,
                        bool margin, bool sojourn, bool envelope,
                        bool admission) {
    validate_serve_flags(certify, horizon, both, soak, margin, sojourn,
                         envelope, admission);
  };
  EXPECT_MSG(flags(false, true, true, false, false, false, false, false),
             "--slots and --phases are mutually exclusive");
  EXPECT_MSG(flags(true, false, false, false, false, false, false, false),
             "--certify requires an explicit horizon");
  EXPECT_MSG(flags(false, true, false, true, false, false, false, false),
             "--soak-out requires --certify");
  EXPECT_MSG(flags(false, true, false, false, true, false, false, false),
             "--certify-margin requires --certify");
  EXPECT_MSG(flags(false, true, false, false, false, true, false, false),
             "--certify-sojourn requires --certify");
  EXPECT_MSG(flags(false, true, false, false, false, false, true, false),
             "--envelope requires --admission shed|defer");
  // The valid pairings pass.
  EXPECT_NO_THROW(flags(true, true, false, true, true, true, true, true));
  EXPECT_NO_THROW(
      flags(false, false, false, false, false, false, false, false));
}

// ---------------------------------------------------------------------------
// Soak certification.
// ---------------------------------------------------------------------------

TEST(Certify, ConfigRejectsBadBounds) {
  CertifyConfig cfg;
  cfg.throughput_margin = 0.0;
  EXPECT_MSG(cfg.validate(), "throughput margin must be in (0, 1)");
  cfg = CertifyConfig{};
  cfg.sojourn_multiple = 0.0;
  EXPECT_MSG(cfg.validate(), "sojourn multiple must be > 0");
}

TEST(Certify, StableLoadPasses) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const double mu = queueing::mu_decay();
  const double lambda = 0.5 * mu;
  ServeConfig cfg = BaseConfig("bernoulli:0.5", 12000, 1000);
  cfg.arrival.rate = lambda;
  const ServeOutcome out = run_service(g, tree, cfg, 71);
  const SoakVerdict v =
      certify_soak(out, lambda, mu, tree.depth, CertifyConfig{});
  EXPECT_TRUE(v.throughput_ok)
      << v.delivered_rate << " vs floor " << v.throughput_floor;
  EXPECT_TRUE(v.sojourn_ok) << v.sojourn_mean << " vs " << v.sojourn_bound;
  EXPECT_TRUE(v.exactly_once_ok);
  EXPECT_TRUE(v.queues_bounded);
  EXPECT_TRUE(v.pass);
  EXPECT_FALSE(v.degraded);
}

TEST(Certify, OverloadMustFail) {
  const Graph g = gen::star(16);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const double mu = queueing::mu_decay();
  const ServeOutcome out =
      run_service(g, tree, BaseConfig("poisson:0.5", 1200, 100), 81);
  const SoakVerdict v = certify_soak(out, 0.5, mu, tree.depth,
                                     CertifyConfig{});
  // No stationary sojourn exists at lambda >= mu: the bound is NaN and the
  // check fails by definition, so an overloaded soak can never certify.
  EXPECT_FALSE(v.pass);
  EXPECT_FALSE(v.sojourn_ok);
  EXPECT_TRUE(std::isnan(v.sojourn_bound));
}

TEST(Certify, VerdictSerializesAsSoakV1) {
  const Graph g = gen::grid(3, 3);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const ServeOutcome out =
      run_service(g, tree, BaseConfig("bernoulli:0.1", 800, 100), 91);
  const SoakVerdict v = certify_soak(out, 0.1, queueing::mu_decay(),
                                     tree.depth, CertifyConfig{});
  const std::string doc = v.to_json();
  EXPECT_NE(doc.find("\"schema\":\"radiomc.soak/v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"pass\""), std::string::npos);
  EXPECT_NE(doc.find("\"throughput\""), std::string::npos);
  EXPECT_NE(doc.find("\"exactly_once\""), std::string::npos);
  const std::string path = ::testing::TempDir() + "radiomc_soak_test.json";
  EXPECT_TRUE(v.write_json_file(path));
}

}  // namespace
}  // namespace radiomc::service
