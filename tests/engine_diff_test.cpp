// Differential test harness: the active-set RadioNetwork vs the frozen
// pre-rewrite engine (reference_engine.{h,cpp}), driven over a randomized
// matrix of (topology x seed x channels x capture_prob x fault plan) and
// required to be BYTE-IDENTICAL in:
//
//   * the delivery sequence every station observes (slot, channel, origin,
//     seq, payload, sender),
//   * every NetMetrics field,
//   * the JSONL trace stream (radiomc.trace/v2, compared as raw bytes),
//
// plus invariance of all of the above across `run_trials --jobs 1` vs
// `--jobs 8` when the matrix is evaluated on the thread pool.
//
// The station population mixes three behaviors so both the legacy
// always-active path and the Waker contract are exercised:
//
//   * RandomChatter (legacy, never touches its Waker): transmits from a
//     private Rng stream, so its behavior is trivially engine-independent
//     and it keeps the channel busy;
//   * SleepyResponder (autosleep): silent until it receives a message,
//     then wakes and transmits a short burst; its transmissions depend only
//     on (absolute slot, receptions), honoring the waker promise that
//     skipped idle polls are unobservable;
//   * PeriodicBeacon (autosleep, self-waking): transmits every k-th slot
//     and re-arms its own wake from on_slot, proving a station can sleep
//     between self-scheduled duties.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/fault_schedule.h"
#include "graph/generators.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/decay.h"
#include "protocols/dfs_numbering.h"
#include "protocols/point_to_point.h"
#include "protocols/tree.h"
#include "radio/network.h"
#include "reference_engine.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "telemetry/jsonl_sink.h"

namespace radiomc {
namespace {

using Delivery = std::tuple<SlotTime, ChannelId, NodeId, std::uint32_t,
                            std::uint64_t, NodeId>;

/// Legacy station: random transmissions from a private stream; records
/// deliveries. Never touches its Waker, so it stays permanently active.
class RandomChatter : public Station {
 public:
  RandomChatter(NodeId self, ChannelId channels, double tx_prob, Rng rng)
      : self_(self), channels_(channels), tx_prob_(tx_prob), rng_(rng) {}

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (!rng_.bernoulli(tx_prob_)) return;
    Message m;
    m.kind = MsgKind::kData;
    m.origin = self_;
    m.seq = seq_++;
    m.payload = rng_.next();
    tx[rng_.next_below(channels_)] = m;
    (void)t;
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    received.emplace_back(t, ch, m.origin, m.seq, m.payload, m.sender);
  }

  std::vector<Delivery> received;

 private:
  NodeId self_;
  ChannelId channels_;
  double tx_prob_;
  Rng rng_;
  std::uint32_t seq_ = 0;
};

/// Autosleep station: wakes on reception and transmits for `burst` slots
/// (computed from the reception slot, never from poll counts).
class SleepyResponder : public Station {
 public:
  SleepyResponder(NodeId self, std::uint32_t burst)
      : self_(self), burst_(burst) {}

  void on_attach(Waker& w) override {
    waker_ = &w;
    w.set_autosleep(true);
  }
  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t >= burst_from_ && t < burst_from_ + burst_) {
      Message m;
      m.kind = MsgKind::kAck;
      m.origin = self_;
      m.seq = static_cast<std::uint32_t>(t - burst_from_);
      m.payload = echo_;
      tx[0] = m;
    }
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    received.emplace_back(t, ch, m.origin, m.seq, m.payload, m.sender);
    burst_from_ = t + 1;
    echo_ = m.payload ^ (static_cast<std::uint64_t>(self_) << 32);
    if (waker_ != nullptr) waker_->wake();
  }

  std::vector<Delivery> received;

 private:
  NodeId self_;
  std::uint32_t burst_;
  SlotTime burst_from_ = ~SlotTime{0};
  std::uint64_t echo_ = 0;
  Waker* waker_ = nullptr;  // null under the reference engine
};

/// Autosleep station transmitting every `period`-th slot, re-arming its own
/// wake. Under the reference engine (no wakers) it is polled every slot and
/// behaves identically because the transmit test is on absolute slot time.
class PeriodicBeacon : public Station {
 public:
  PeriodicBeacon(NodeId self, SlotTime period) : self_(self), period_(period) {}

  void on_attach(Waker& w) override {
    waker_ = &w;
    w.set_autosleep(true);
  }
  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t % period_ == self_ % period_) {
      Message m;
      m.kind = MsgKind::kLeader;
      m.origin = self_;
      m.seq = static_cast<std::uint32_t>(t / period_);
      tx[0] = m;
    }
    // A wake() only spans one slot, so an autosleep station with a
    // multi-slot schedule must re-arm every poll. This keeps the beacon
    // effectively always scheduled — deliberately: it exercises the
    // "kept awake by wake(), not by transmitting" retention path, while
    // SleepyResponder covers genuine descheduling.
    if (waker_ != nullptr) waker_->wake();
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    received.emplace_back(t, ch, m.origin, m.seq, m.payload, m.sender);
    if (waker_ != nullptr) waker_->wake();
  }

  std::vector<Delivery> received;

 private:
  NodeId self_;
  SlotTime period_;
  Waker* waker_ = nullptr;
};

struct Cell {
  std::string name;
  Graph graph;
  ChannelId channels = 1;
  bool rx_while_tx_other = true;
  double capture_prob = 0.0;
  FaultPlan plan;  // default: disabled
  std::uint64_t seed = 0;
  SlotTime slots = 400;
};

/// Everything one engine produced, in comparable (and printable) form.
struct RunDigest {
  std::vector<std::vector<Delivery>> per_station;
  NetMetrics metrics;
  std::string trace;

  bool operator==(const RunDigest& o) const {
    return per_station == o.per_station && trace == o.trace &&
           metrics.slots == o.metrics.slots &&
           metrics.transmissions == o.metrics.transmissions &&
           metrics.deliveries == o.metrics.deliveries &&
           metrics.collision_events == o.metrics.collision_events &&
           metrics.capture_deliveries == o.metrics.capture_deliveries &&
           metrics.fault_jams == o.metrics.fault_jams &&
           metrics.fault_drops == o.metrics.fault_drops &&
           metrics.fault_link_blocked == o.metrics.fault_link_blocked &&
           metrics.fault_crashed_slots == o.metrics.fault_crashed_slots;
  }
};

/// Builds the mixed station population for `cell` (same construction for
/// both engines; station randomness derives from cell.seed only).
struct Population {
  std::deque<RandomChatter> chatters;
  std::deque<SleepyResponder> sleepers;
  std::deque<PeriodicBeacon> beacons;
  std::vector<Station*> stations;
  std::vector<std::vector<Delivery>*> logs;

  explicit Population(const Cell& cell) {
    Rng master(cell.seed);
    const NodeId n = cell.graph.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      switch (v % 3) {
        case 0:
          chatters.emplace_back(v, cell.channels, 0.15, master.split(v));
          stations.push_back(&chatters.back());
          logs.push_back(&chatters.back().received);
          break;
        case 1:
          sleepers.emplace_back(v, 3 + v % 4);
          stations.push_back(&sleepers.back());
          logs.push_back(&sleepers.back().received);
          break;
        default:
          beacons.emplace_back(v, 5 + v % 7);
          stations.push_back(&beacons.back());
          logs.push_back(&beacons.back().received);
          break;
      }
    }
  }
};

RadioNetwork::Config net_config(const Cell& cell) {
  RadioNetwork::Config cfg;
  cfg.num_channels = cell.channels;
  cfg.rx_while_tx_other = cell.rx_while_tx_other;
  cfg.capture_prob = cell.capture_prob;
  cfg.capture_stream = Rng(cell.seed ^ 0xCA97CA97ULL);
  return cfg;
}

template <typename Engine>
RunDigest run_engine(const Cell& cell) {
  Population pop(cell);
  std::ostringstream trace_out;
  telemetry::JsonlTraceSink trace(trace_out);
  Engine net(cell.graph, net_config(cell));
  FaultSchedule faults(cell.graph, cell.plan, cell.seed ^ 0xFA17ULL);
  net.set_faults(&faults);
  net.set_trace(&trace);
  net.attach(pop.stations);
  net.run(cell.slots);
  trace.finish();

  RunDigest d;
  for (auto* log : pop.logs) d.per_station.push_back(*log);
  d.metrics = net.metrics();
  d.trace = trace_out.str();
  return d;
}

RunDigest run_active(const Cell& cell) {
  return run_engine<RadioNetwork>(cell);
}
RunDigest run_reference(const Cell& cell) {
  return run_engine<radiomc::testing::ReferenceNetwork>(cell);
}

FaultPlan crash_plan() {
  FaultPlan p;
  p.crash_rate = 0.05;
  p.recover_rate = 0.4;
  p.epoch_slots = 16;
  return p;
}

FaultPlan noise_plan() {
  FaultPlan p;
  p.jam_prob = 0.08;
  p.drop_prob = 0.05;
  return p;
}

FaultPlan link_plan() {
  FaultPlan p;
  p.link_down_rate = 0.05;
  p.link_up_rate = 0.5;
  p.epoch_slots = 8;
  return p;
}

FaultPlan everything_plan() {
  FaultPlan p = crash_plan();
  p.jam_prob = 0.05;
  p.drop_prob = 0.03;
  p.link_down_rate = 0.03;
  p.link_up_rate = 0.5;
  return p;
}

std::vector<Cell> build_matrix() {
  std::vector<Cell> cells;
  Rng topo_rng(0xD1FF);
  struct Topo {
    std::string name;
    Graph g;
  };
  std::vector<Topo> topologies;
  topologies.push_back({"path32", gen::path(32)});
  topologies.push_back({"star24", gen::star(24)});
  topologies.push_back({"grid8x8", gen::grid(8, 8)});
  topologies.push_back({"gnp96", gen::gnp_connected(96, 0.08, topo_rng)});
  topologies.push_back(
      {"udg80", gen::unit_disk_connected(80, gen::udg_connect_radius(80),
                                         topo_rng)});
  topologies.push_back({"barbell", gen::barbell(10, 4)});
  topologies.push_back({"gnp_sparse", gen::gnp_sparse_connected(
                                          200, 14.0 / 200.0, topo_rng)});

  const std::vector<std::pair<std::string, FaultPlan>> plans = {
      {"nofault", FaultPlan{}},
      {"crash", crash_plan()},
      {"noise", noise_plan()},
      {"links", link_plan()},
      {"all", everything_plan()},
  };

  for (const auto& topo : topologies) {
    int i = 0;
    for (const auto& [plan_name, plan] : plans) {
      Cell c;
      c.graph = topo.g;
      c.plan = plan;
      // Sweep channels / capture / duplexing with the plan index so the
      // matrix covers the config space without exploding combinatorially.
      c.channels = (i % 2 == 0) ? 1 : 2;
      c.capture_prob = (i % 3 == 1) ? 0.5 : 0.0;
      c.rx_while_tx_other = i % 4 != 3;
      c.seed = 0x5EED0000 + i * 977 + topo.g.num_nodes();
      c.name = topo.name + "/" + plan_name;
      cells.push_back(std::move(c));
      ++i;
    }
  }
  return cells;
}

TEST(EngineDiff, ActiveSetEngineIsByteIdenticalToReference) {
  const std::vector<Cell> cells = build_matrix();
  ASSERT_GE(cells.size(), 30u);
  for (const Cell& cell : cells) {
    const RunDigest a = run_active(cell);
    const RunDigest r = run_reference(cell);
    EXPECT_TRUE(a == r) << "divergence in cell " << cell.name;
    // On mismatch, narrow the report so the failure is actionable.
    if (!(a == r)) {
      EXPECT_EQ(a.metrics.transmissions, r.metrics.transmissions)
          << cell.name;
      EXPECT_EQ(a.metrics.deliveries, r.metrics.deliveries) << cell.name;
      EXPECT_EQ(a.metrics.collision_events, r.metrics.collision_events)
          << cell.name;
      EXPECT_EQ(a.metrics.fault_jams, r.metrics.fault_jams) << cell.name;
      EXPECT_EQ(a.metrics.fault_crashed_slots, r.metrics.fault_crashed_slots)
          << cell.name;
      EXPECT_EQ(a.trace.size(), r.trace.size()) << cell.name;
      ASSERT_EQ(a.per_station.size(), r.per_station.size()) << cell.name;
      for (std::size_t v = 0; v < a.per_station.size(); ++v)
        EXPECT_EQ(a.per_station[v], r.per_station[v])
            << cell.name << " station " << v;
      break;  // one fully-reported divergence is enough output
    }
  }
}

TEST(EngineDiff, SeedSweepOnDenseAndSparseCells) {
  // A deeper per-seed sweep on two contrasting cells: a collision-storm
  // star (every slot superposes) and a sparse path (most stations idle,
  // maximally exercising descheduling).
  Rng topo_rng(0xD1FF + 1);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Cell dense;
    dense.graph = gen::star(16);
    dense.capture_prob = 0.3;
    dense.seed = seed * 7919;
    dense.slots = 300;
    dense.name = "star16/seed" + std::to_string(seed);
    EXPECT_TRUE(run_active(dense) == run_reference(dense)) << dense.name;

    Cell sparse;
    sparse.graph = gen::path(64);
    sparse.channels = 2;
    sparse.plan = everything_plan();
    sparse.seed = seed * 104729;
    sparse.slots = 300;
    sparse.name = "path64/seed" + std::to_string(seed);
    EXPECT_TRUE(run_active(sparse) == run_reference(sparse)) << sparse.name;
  }
}

TEST(EngineDiff, MatrixIsJobCountInvariant) {
  // The same matrix evaluated on the deterministic trial pool: --jobs 8
  // must produce byte-identical digests to --jobs 1, for both engines.
  // (Each trial builds its own graph copy: Cell holds the Graph by value,
  // and populations/engines are trial-local, so nothing is shared.)
  const std::vector<Cell> cells = build_matrix();
  const auto eval = [&cells](unsigned jobs) {
    Rng root(0xB0B);  // run_trials requires a root stream; cells carry seeds
    return run_trials(cells.size(), jobs, root,
                      [&cells](std::size_t i, Rng&) {
                        const RunDigest a = run_active(cells[i]);
                        const RunDigest r = run_reference(cells[i]);
                        // Fold the cross-engine check into the parallel run
                        // so TSan sees the full workload too.
                        return std::make_pair(a == r, a);
                      });
  };
  const auto serial = eval(1);
  const auto parallel = eval(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].first) << "engine divergence in cell " << i;
    EXPECT_TRUE(serial[i].second == parallel[i].second)
        << "job-count divergence in cell " << i;
  }
}

// ---------------------------------------------------------------------------
// Protocol-level autosleep A/B: the production protocols that adopted the
// Waker contract must be byte-identical with autosleep on vs off — the
// only thing allowed to change is how many polls the engine spends.
// ---------------------------------------------------------------------------

std::vector<Message> one_data_message_each(const Graph& g) {
  std::vector<Message> init;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = v;
    m.seq = 0;
    m.payload = 7000 + v;
    init.push_back(m);
  }
  return init;
}

TEST(AutosleepAB, CollectionIsByteIdenticalAndPollsLess) {
  const std::vector<Graph> graphs = {gen::path(24), gen::grid(5, 5),
                                     gen::star(16)};
  for (const Graph& g : graphs) {
    const BfsTree tree = oracle_bfs_tree(g, 0);
    CollectionConfig on = CollectionConfig::for_graph(g);
    on.autosleep = true;
    CollectionConfig off = on;
    off.autosleep = false;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto a = run_collection(g, tree, one_data_message_each(g), on,
                                    seed);
      const auto b = run_collection(g, tree, one_data_message_each(g), off,
                                    seed);
      ASSERT_TRUE(a.completed);
      ASSERT_TRUE(b.completed);
      EXPECT_EQ(a.slots, b.slots);
      EXPECT_EQ(a.phases, b.phases);
      EXPECT_EQ(a.occupied_phases, b.occupied_phases);
      EXPECT_EQ(a.advance_phases, b.advance_phases);
      ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
      for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
        EXPECT_EQ(a.deliveries[i].slot, b.deliveries[i].slot);
        EXPECT_EQ(a.deliveries[i].msg.origin, b.deliveries[i].msg.origin);
        EXPECT_EQ(a.deliveries[i].msg.seq, b.deliveries[i].msg.seq);
        EXPECT_EQ(a.deliveries[i].msg.sender, b.deliveries[i].msg.sender);
      }
      // Drained stations sleep out the tail of the run.
      EXPECT_LT(a.engine_polls, b.engine_polls)
          << "seed " << seed << " n=" << g.num_nodes();
    }
  }
}

TEST(AutosleepAB, CollectionIdenticalUnderFaultsToo) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  CollectionConfig on = CollectionConfig::for_graph(g);
  on.dedup_guard = true;
  on.faults.crash_rate = 0.02;
  on.faults.recover_rate = 0.3;
  on.faults.drop_prob = 0.02;
  on.faults.epoch_slots = 256;
  CollectionConfig off = on;
  off.autosleep = false;
  const auto a =
      run_collection(g, tree, one_data_message_each(g), on, 9, 400'000);
  const auto b =
      run_collection(g, tree, one_data_message_each(g), off, 9, 400'000);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.slots, b.slots);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].slot, b.deliveries[i].slot);
    EXPECT_EQ(a.deliveries[i].msg.origin, b.deliveries[i].msg.origin);
  }
}

TEST(AutosleepAB, DecayTrialIsByteIdenticalAndPollsLess) {
  // Listeners never transmit and a live Decay process transmits on every
  // polled slot, so autosleep needs zero wake() calls: the result must
  // match with strictly fewer polls (the listeners' idle slots).
  const Graph g = gen::star(20);
  std::vector<NodeId> transmitters;
  for (NodeId v = 1; v <= 6; ++v) transmitters.push_back(v);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng_on(seed * 31);
    Rng rng_off(seed * 31);
    std::uint64_t polls_on = 0, polls_off = 0;
    const bool a = decay_single_trial(g, 0, transmitters, 8, rng_on, nullptr,
                                      /*autosleep=*/true, &polls_on);
    const bool b = decay_single_trial(g, 0, transmitters, 8, rng_off, nullptr,
                                      /*autosleep=*/false, &polls_off);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(rng_on.next(), rng_off.next()) << "seed " << seed;
    EXPECT_LT(polls_on, polls_off) << "seed " << seed;
  }
}

TEST(AutosleepAB, KBroadcastIsByteIdenticalAndPollsLess) {
  // Distribution + collection under the coordinated ChannelMuxStation:
  // every node's in-order delivery log must match slot-for-slot, and the
  // root's resend/idle-rebroadcast books must agree — only the poll count
  // may change.
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < g.num_nodes(); v += 3) sources.push_back(v);
  BroadcastServiceConfig on = BroadcastServiceConfig::for_graph(g);
  on.collection.autosleep = true;
  on.distribution.autosleep = true;
  on.distribution.window = 4;
  BroadcastServiceConfig off = on;
  off.collection.autosleep = false;
  off.distribution.autosleep = false;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const KBroadcastOutcome a =
        run_k_broadcast(g, tree, sources, on, seed, 2'000'000);
    const KBroadcastOutcome b =
        run_k_broadcast(g, tree, sources, off, seed, 2'000'000);
    ASSERT_TRUE(a.completed) << "seed " << seed;
    ASSERT_TRUE(b.completed) << "seed " << seed;
    EXPECT_EQ(a.slots, b.slots) << "seed " << seed;
    EXPECT_EQ(a.delivered_prefix, b.delivered_prefix) << "seed " << seed;
    EXPECT_EQ(a.root_resends, b.root_resends) << "seed " << seed;
    EXPECT_LT(a.engine_polls, b.engine_polls) << "seed " << seed;
  }
}

TEST(AutosleepAB, BroadcastDeliveryLogsIdenticalSlotForSlot) {
  // Stronger than outcome equality: drive two services in lockstep and
  // compare every node's (slot, seq) delivery log byte-for-byte.
  const Graph g = gen::path(18);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig on = BroadcastServiceConfig::for_graph(g);
  on.distribution.window = 4;
  BroadcastServiceConfig off = on;
  off.collection.autosleep = false;
  off.distribution.autosleep = false;
  BroadcastService sa(g, tree, on, 77);
  BroadcastService sb(g, tree, off, 77);
  for (NodeId v = 0; v < g.num_nodes(); v += 2) {
    sa.broadcast(v, 4000 + v);
    sb.broadcast(v, 4000 + v);
  }
  ASSERT_TRUE(sa.run_until_delivered(2'000'000));
  ASSERT_TRUE(sb.run_until_delivered(2'000'000));
  EXPECT_EQ(sa.now(), sb.now());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(sa.distribution(v).delivery_log(),
              sb.distribution(v).delivery_log())
        << "node " << v;
  EXPECT_LT(sa.engine_stats().station_polls, sb.engine_stats().station_polls);
}

TEST(AutosleepAB, BroadcastIdenticalUnderFaultsToo) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig on = BroadcastServiceConfig::for_graph(g);
  on.distribution.window = 4;
  on.faults.crash_rate = 0.01;
  on.faults.recover_rate = 0.3;
  on.faults.drop_prob = 0.02;
  on.faults.epoch_slots = 512;
  on.stall_slots = 200'000;
  BroadcastServiceConfig off = on;
  off.collection.autosleep = false;
  off.distribution.autosleep = false;
  std::vector<NodeId> sources = {1, 5, 9, 13};
  const KBroadcastOutcome a =
      run_k_broadcast(g, tree, sources, on, 11, 1'000'000);
  const KBroadcastOutcome b =
      run_k_broadcast(g, tree, sources, off, 11, 1'000'000);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.delivered_prefix, b.delivered_prefix);
  EXPECT_EQ(a.root_resends, b.root_resends);
}

TEST(AutosleepAB, PointToPointIsByteIdenticalAndPollsLess) {
  Rng rng(414);
  const Graph g = gen::gnp_connected(24, 0.2, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  ASSERT_TRUE(prep.ok);
  std::vector<P2pRequest> reqs;
  for (int i = 0; i < 20; ++i)
    reqs.push_back({static_cast<NodeId>(rng.next_below(g.num_nodes())),
                    static_cast<NodeId>(rng.next_below(g.num_nodes())),
                    static_cast<std::uint64_t>(9000 + i)});
  P2pConfig on = P2pConfig::for_graph(g);
  on.autosleep = true;
  P2pConfig off = on;
  off.autosleep = false;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const P2pOutcome a = run_point_to_point(g, prep, reqs, on, seed);
    const P2pOutcome b = run_point_to_point(g, prep, reqs, off, seed);
    ASSERT_TRUE(a.completed) << "seed " << seed;
    ASSERT_TRUE(b.completed) << "seed " << seed;
    EXPECT_EQ(a.slots, b.slots) << "seed " << seed;
    EXPECT_EQ(a.delivery_slot, b.delivery_slot) << "seed " << seed;
    EXPECT_LT(a.engine_polls, b.engine_polls) << "seed " << seed;
  }
}

TEST(AutosleepAB, FloodIsByteIdenticalAndPollsLess) {
  // The flood's win is the uninformed frontier: on a long path most
  // stations sleep until the wave reaches them.
  const Graph g = gen::path(64);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const BgiOutcome a =
        run_bgi_broadcast(g, 0, /*phases=*/400, seed, {}, /*autosleep=*/true);
    const BgiOutcome b =
        run_bgi_broadcast(g, 0, 400, seed, {}, /*autosleep=*/false);
    EXPECT_EQ(a.slots, b.slots);
    EXPECT_EQ(a.informed_count, b.informed_count);
    EXPECT_EQ(a.informed, b.informed);
    EXPECT_EQ(a.informed_at, b.informed_at);
    EXPECT_LT(a.engine_polls, b.engine_polls) << "seed " << seed;
  }
}

}  // namespace
}  // namespace radiomc
