// The deterministic parallel trial-runner (support/parallel.h) and the
// reproducibility contract built on it: at a fixed root seed, running a
// workload with jobs=8 must produce byte-identical merged metrics, bench
// statistics and telemetry JSON to jobs=1 — across both a collection
// workload and a setup workload — and the root generator must end in the
// same state either way.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/setup.h"
#include "protocols/tree.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"
#include "telemetry/telemetry.h"

namespace radiomc {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);

  // The pool is reusable after wait_idle.
  for (int i = 0; i < 50; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(RunIndexed, ResultsComeBackInIndexOrder) {
  for (unsigned jobs : {1u, 2u, 8u}) {
    const auto out = run_indexed(
        100, jobs, [](std::uint64_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(RunIndexed, ZeroAndSmallN) {
  EXPECT_TRUE(run_indexed(0, 8, [](std::uint64_t i) { return i; }).empty());
  const auto one = run_indexed(1, 8, [](std::uint64_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(RunIndexed, FirstExceptionPropagatesToCaller) {
  EXPECT_THROW(
      run_indexed(64, 4,
                  [](std::uint64_t i) -> int {
                    if (i == 5) throw std::runtime_error("trial 5 failed");
                    return static_cast<int>(i);
                  }),
      std::runtime_error);
  // Serial path throws too.
  EXPECT_THROW(
      run_indexed(8, 1,
                  [](std::uint64_t i) -> int {
                    if (i == 5) throw std::runtime_error("boom");
                    return 0;
                  }),
      std::runtime_error);
}

TEST(RunTrials, StreamsAndRootStateIndependentOfJobs) {
  std::vector<std::uint64_t> draws1, draws8;
  std::uint64_t root_after1 = 0, root_after8 = 0;
  {
    Rng root(42);
    draws1 = run_trials(64, 1, root,
                        [](std::uint64_t, Rng& r) { return r.next(); });
    root_after1 = root.next();
  }
  {
    Rng root(42);
    draws8 = run_trials(64, 8, root,
                        [](std::uint64_t, Rng& r) { return r.next(); });
    root_after8 = root.next();
  }
  EXPECT_EQ(draws1, draws8);
  EXPECT_EQ(root_after1, root_after8);
  // Streams are distinct across trials.
  const std::set<std::uint64_t> uniq(draws1.begin(), draws1.end());
  EXPECT_EQ(uniq.size(), draws1.size());
}

// ---------------------------------------------------------------------------
// Reproducibility: collection workload.

struct CollectionRun {
  std::vector<double> slots;
  std::string telemetry_json;
  double mean = 0, variance = 0;
};

CollectionRun collection_workload(unsigned jobs) {
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  Rng root(0xC011EC7);

  struct Trial {
    double slots = 0;
    std::unique_ptr<telemetry::Telemetry> tel;
  };
  auto trials = run_trials(
      12, jobs, root, [&](std::uint64_t t, Rng& r) {
        Trial out;
        out.tel = std::make_unique<telemetry::Telemetry>();
        std::vector<Message> init;
        for (int i = 0; i < 8; ++i) {
          Message m;
          m.kind = MsgKind::kData;
          m.origin =
              static_cast<NodeId>(1 + r.next_below(g.num_nodes() - 1));
          m.seq = static_cast<std::uint32_t>(i);
          init.push_back(m);
        }
        CollectionConfig cfg = CollectionConfig::for_graph(g);
        cfg.telemetry = out.tel.get();
        out.slots = static_cast<double>(
            run_collection(g, tree, init, cfg, r.next()).slots);
        (void)t;
        return out;
      });

  CollectionRun run;
  telemetry::Telemetry merged;
  OnlineStats stats;
  for (std::size_t t = 0; t < trials.size(); ++t) {
    run.slots.push_back(trials[t].slots);
    stats.add(trials[t].slots);
    merged.merge(*trials[t].tel, static_cast<std::int64_t>(t));
  }
  run.telemetry_json = merged.to_json();
  run.mean = stats.mean();
  run.variance = stats.variance();
  return run;
}

TEST(Reproducibility, CollectionWorkloadIdenticalAcrossJobCounts) {
  const CollectionRun a = collection_workload(1);
  const CollectionRun b = collection_workload(8);
  EXPECT_EQ(a.slots, b.slots);
  // Bitwise-equal statistics: the merge folds in trial order either way.
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.variance, b.variance);
  // Byte-identical merged telemetry document, spans tagged per trial.
  EXPECT_EQ(a.telemetry_json, b.telemetry_json);
  EXPECT_NE(a.telemetry_json.find("\"trial\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Reproducibility: setup workload.

struct SetupRun {
  std::vector<std::uint64_t> slots;
  std::string telemetry_json;
};

SetupRun setup_workload(unsigned jobs) {
  Rng root(0x5E7u);
  struct Trial {
    std::uint64_t slots = 0;
    std::unique_ptr<telemetry::Telemetry> tel;
  };
  auto trials = run_trials(
      6, jobs, root, [&](std::uint64_t, Rng& r) {
        Trial out;
        out.tel = std::make_unique<telemetry::Telemetry>();
        const Graph g = gen::grid(4, 4);
        SetupTuning tuning;
        tuning.telemetry = out.tel.get();
        const SetupOutcome s = run_setup(g, r.next(), tuning);
        EXPECT_TRUE(s.ok);
        out.slots = s.slots;
        return out;
      });
  SetupRun run;
  telemetry::Telemetry merged;
  for (std::size_t t = 0; t < trials.size(); ++t) {
    run.slots.push_back(trials[t].slots);
    merged.merge(*trials[t].tel, static_cast<std::int64_t>(t));
  }
  run.telemetry_json = merged.to_json();
  return run;
}

TEST(Reproducibility, SetupWorkloadIdenticalAcrossJobCounts) {
  const SetupRun a = setup_workload(1);
  const SetupRun b = setup_workload(8);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.telemetry_json, b.telemetry_json);
}

TEST(Reproducibility, MeanOverSeedsIndependentOfJobs) {
  auto f = [](std::uint64_t seed) {
    Rng r(seed);
    double acc = 0;
    for (int i = 0; i < 100; ++i) acc += static_cast<double>(r.next() >> 40);
    return acc;
  };
  const OnlineStats s1 = bench::mean_over_seeds(40, 1234, f, 1);
  const OnlineStats s8 = bench::mean_over_seeds(40, 1234, f, 8);
  EXPECT_EQ(s1.mean(), s8.mean());
  EXPECT_EQ(s1.variance(), s8.variance());
  EXPECT_EQ(s1.count(), s8.count());
}

// ---------------------------------------------------------------------------
// The bench harness pieces trials are allowed to build privately.

TEST(BenchHarness, TableMergePreservesTrialOrder) {
  bench::Table main({"a", "b"});
  main.row({"r0", "x"});
  bench::Table t1({"a", "b"});
  t1.row({"r1", "y"});
  bench::Table t2({"a", "b"});
  t2.row({"r2", "z"});
  main.merge(t1);
  main.merge(t2);
  ASSERT_EQ(main.rows().size(), 3u);
  EXPECT_EQ(main.rows()[0][0], "r0");
  EXPECT_EQ(main.rows()[1][0], "r1");
  EXPECT_EQ(main.rows()[2][0], "r2");
}

TEST(BenchHarness, JsonEmitterMergedDocumentShape) {
  ::setenv("RADIOMC_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1);
  bench::JsonEmitter main("TST", "merged document shape");
  main.row({{"k", std::uint64_t{1}}, {"v", 0.5}});
  bench::JsonEmitter trial("TST", "merged document shape");
  trial.row({{"k", std::uint64_t{2}}, {"v", 1.5}, {"ok", true}});
  trial.row({{"k", std::uint64_t{3}}, {"label", "s"}});
  main.merge(std::move(trial));
  main.pass(true);
  main.set_run_info(8, 12.5, 90.25);
  const std::string doc = main.document();
  EXPECT_EQ(doc.find("{\"schema\":\"radiomc.bench/v1\",\"bench\":\"TST\""),
            0u);
  EXPECT_NE(doc.find("\"rows\":[{\"k\":1,\"v\":0.5},"
                     "{\"k\":2,\"v\":1.5,\"ok\":true},"
                     "{\"k\":3,\"label\":\"s\"}]"),
            std::string::npos);
  EXPECT_NE(doc.find("\"pass\":true"), std::string::npos);
  // Run metadata trails the statistics so the prefix before it is a pure
  // function of the seed.
  const auto run_pos = doc.find("\"run\":{\"jobs\":8");
  ASSERT_NE(run_pos, std::string::npos);
  EXPECT_GT(run_pos, doc.find("\"pass\":"));
  // The merged-away emitter must not write a file on destruction; the
  // merge consumed it (checked implicitly: its dtor runs at scope exit
  // and printing "json:" to stdout would pollute gtest output, plus
  // write() would emit BENCH_TST.json twice).
  main.merge(bench::JsonEmitter("TST", "empty"));
  EXPECT_EQ(main.document(), doc);
}

TEST(BenchHarness, JsonEmitterMergeAndsPassFlag) {
  ::setenv("RADIOMC_BENCH_JSON_DIR", ::testing::TempDir().c_str(), 1);
  bench::JsonEmitter main("TST2", "pass flag");
  main.pass(true);
  bench::JsonEmitter failing("TST2", "pass flag");
  failing.pass(false);
  main.merge(std::move(failing));
  EXPECT_NE(main.document().find("\"pass\":false"), std::string::npos);
}

TEST(BenchHarness, ParseOptionsReadsJobsFlag) {
  const char* argv[] = {"bench", "--jobs", "5"};
  const bench::Options o =
      bench::parse_options(3, const_cast<char**>(argv));
  EXPECT_EQ(o.jobs, 5u);
  const char* argv0[] = {"bench", "--jobs", "0"};
  const bench::Options all =
      bench::parse_options(3, const_cast<char**>(argv0));
  EXPECT_GE(all.jobs, 1u);
}

}  // namespace
}  // namespace radiomc
