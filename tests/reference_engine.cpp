#include "reference_engine.h"

#include <algorithm>
#include <utility>

#include "support/util.h"

namespace radiomc::testing {

ReferenceNetwork::ReferenceNetwork(const Graph& g, Config cfg)
    : graph_(&g),
      cfg_(std::move(cfg)),
      capture_rng_(cfg_.capture_stream ? *cfg_.capture_stream : Rng(0xCA97)) {
  require(cfg_.num_channels >= 1, "ReferenceNetwork: need >= 1 channel");
  require(cfg_.capture_prob >= 0.0 && cfg_.capture_prob <= 1.0,
          "ReferenceNetwork: capture_prob in [0, 1]");
  const std::size_t cells =
      static_cast<std::size_t>(g.num_nodes()) * cfg_.num_channels;
  rx_.resize(cells);
  actions_.resize(cells);
}

void ReferenceNetwork::attach(std::vector<Station*> stations) {
  require(stations.size() == graph_->num_nodes(),
          "ReferenceNetwork::attach: need exactly one station per node");
  for (Station* s : stations)
    require(s != nullptr, "ReferenceNetwork::attach: null station");
  stations_ = std::move(stations);
}

void ReferenceNetwork::step() {
  require(!stations_.empty(), "ReferenceNetwork::step: no stations attached");
  const NodeId n = graph_->num_nodes();
  const ChannelId channels = cfg_.num_channels;
  FaultSchedule* fs =
      (faults_ != nullptr && faults_->enabled()) ? faults_ : nullptr;
  if (fs) fs->begin_slot(now_);
  ++epoch_;
  tx_list_.clear();

  // Phase 1: collect transmit intents (one optional message per channel).
  for (NodeId v = 0; v < n; ++v) {
    auto row = std::span<std::optional<Message>>(
        actions_.data() + static_cast<std::size_t>(v) * channels, channels);
    for (auto& a : row) a.reset();
    if (fs && !fs->node_alive(v)) {
      ++metrics_.fault_crashed_slots;
      continue;
    }
    stations_[v]->on_slot(now_, row);
    for (ChannelId c = 0; c < channels; ++c) {
      if (!row[c]) continue;
      row[c]->sender = v;  // the radio layer stamps the physical sender
      tx_list_.emplace_back(v, c);
      ++metrics_.transmissions;
      if (trace_) trace_->on_transmit(now_, v, c, *row[c]);
    }
  }

  // Phase 2: superpose transmissions at each potential receiver.
  const bool capture = cfg_.capture_prob > 0.0;
  for (auto [u, c] : tx_list_) {
    const Message& m = *actions_[static_cast<std::size_t>(u) * channels + c];
    const auto nbrs = graph_->neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const NodeId v = nbrs[k];
      if (fs) {
        if (!fs->node_alive(v)) continue;  // crashed receivers hear nothing
        if (!fs->link_up(u, k)) {          // down links carry nothing
          ++metrics_.fault_link_blocked;
          continue;
        }
      }
      RxSlot& slot = rx_[static_cast<std::size_t>(v) * channels + c];
      if (slot.epoch != epoch_) {
        slot.epoch = epoch_;
        slot.tx_neighbors = 0;
      }
      ++slot.tx_neighbors;
      if (slot.tx_neighbors == 1) {
        slot.msg = &m;
      } else if (capture &&
                 capture_rng_.next_below(slot.tx_neighbors) == 0) {
        slot.msg = &m;
      }
    }
  }

  // Phase 3: deliver where exactly one neighbor transmitted and the
  // receiver was listening on that channel.
  for (NodeId v = 0; v < n; ++v) {
    if (fs && !fs->node_alive(v)) continue;
    const std::size_t base = static_cast<std::size_t>(v) * channels;
    bool transmitted_any = false;
    if (!cfg_.rx_while_tx_other) {
      for (ChannelId c = 0; c < channels; ++c)
        transmitted_any |= actions_[base + c].has_value();
    }
    for (ChannelId c = 0; c < channels; ++c) {
      RxSlot& slot = rx_[base + c];
      if (slot.epoch != epoch_ || slot.tx_neighbors == 0) continue;
      const bool listening =
          !actions_[base + c].has_value() && !transmitted_any;
      if (!listening) continue;
      if (slot.tx_neighbors == 1) {
        if (fs && fs->jammed(now_, v, c)) {
          ++metrics_.fault_jams;
          if (trace_) trace_->on_collision(now_, v, c, slot.tx_neighbors);
          continue;
        }
        if (fs && fs->dropped(now_, v, c)) {
          ++metrics_.fault_drops;
          continue;
        }
        ++metrics_.deliveries;
        if (trace_) trace_->on_deliver(now_, v, c, *slot.msg);
        stations_[v]->on_receive(now_, c, *slot.msg);
      } else if (capture && capture_rng_.bernoulli(cfg_.capture_prob)) {
        if (fs && fs->dropped(now_, v, c)) {
          ++metrics_.fault_drops;
          continue;
        }
        ++metrics_.deliveries;
        ++metrics_.capture_deliveries;
        if (trace_) trace_->on_deliver(now_, v, c, *slot.msg);
        stations_[v]->on_receive(now_, c, *slot.msg);
      } else {
        ++metrics_.collision_events;
        if (trace_) trace_->on_collision(now_, v, c, slot.tx_neighbors);
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (fs && !fs->node_alive(v)) continue;
    stations_[v]->on_slot_end(now_);
  }
  ++now_;
  ++metrics_.slots;
  if (slot_hook_ != nullptr) slot_hook_->on_slot_done(now_);
}

void ReferenceNetwork::run(SlotTime count) {
  for (SlotTime i = 0; i < count; ++i) step();
}

}  // namespace radiomc::testing
