// Unit tests for the support module: RNG determinism and distributional
// sanity, online statistics, histograms, proportion intervals, linear fit.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"
#include "support/util.h"

namespace radiomc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(7), parent2(7);
  Rng c1 = parent1.split(42);
  Rng c2 = parent2.split(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next(), c2.next());
  Rng c3 = parent1.split(43);
  EXPECT_NE(c1.next(), c3.next());
}

TEST(Rng, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - 800);
    EXPECT_LT(c, trials / 10 + 800);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  const int trials = 200'000;
  int hits = 0;
  for (int i = 0; i < trials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, CoinIsFair) {
  Rng rng(6);
  int heads = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i)
    if (rng.coin()) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Util, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
}

TEST(Util, DecayLength) {
  EXPECT_EQ(decay_length(0), 2u);
  EXPECT_EQ(decay_length(1), 2u);
  EXPECT_EQ(decay_length(2), 2u);
  EXPECT_EQ(decay_length(3), 4u);
  EXPECT_EQ(decay_length(4), 4u);
  EXPECT_EQ(decay_length(16), 8u);
  EXPECT_EQ(decay_length(17), 10u);
}

TEST(Util, RequireThrows) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsCombined) {
  OnlineStats a, b, all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(Histogram, CountsAndPmf) {
  Histogram h;
  h.add(1, 3);
  h.add(2, 1);
  h.add(1);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(1), 4u);
  EXPECT_DOUBLE_EQ(h.pmf(2), 0.2);
  EXPECT_DOUBLE_EQ(h.mean(), (4.0 * 1 + 1.0 * 2) / 5.0);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 2);
}

TEST(Proportion, WilsonBracketsTruth) {
  ProportionEstimate p{300, 1000};
  EXPECT_NEAR(p.point(), 0.3, 1e-12);
  EXPECT_LT(p.wilson_lower(), 0.3);
  EXPECT_GT(p.wilson_upper(), 0.3);
  EXPECT_GT(p.wilson_lower(), 0.25);
  EXPECT_LT(p.wilson_upper(), 0.35);
}

TEST(Proportion, DegenerateCases) {
  ProportionEstimate none{0, 0};
  EXPECT_EQ(none.point(), 0.0);
  ProportionEstimate all{50, 50};
  EXPECT_GT(all.wilson_lower(), 0.85);
  EXPECT_DOUBLE_EQ(all.wilson_upper(), 1.0);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, RejectsBadInput) {
  EXPECT_THROW(fit_linear({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1.0, 2.0}, {2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace radiomc
