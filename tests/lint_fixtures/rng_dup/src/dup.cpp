// Seeded CI fixture (never compiled): the same split tag drawn twice from
// one parent stream. The two child Rngs are byte-identical, not
// independent — rng-stream-audit must flag the second draw and
// radiomc_lint must exit 1 on this tree. Exercised by the "negative
// gates" step of the CI lint job.
constexpr std::uint64_t kSeededDupTag = 0x5E21;

void seeded_duplicate(Rng& master) {
  Rng a = master.split(kSeededDupTag);
  Rng b = master.split(kSeededDupTag);
  (void)a;
  (void)b;
}
