// Seeded CI fixture (never compiled): half of the alpha <-> beta include
// cycle matching the cyclic manifest next to this tree.
#include "beta/b.h"

inline int alpha_value() { return beta_value() + 1; }
