// Seeded CI fixture (never compiled): half of the alpha <-> beta include
// cycle matching the cyclic manifest next to this tree.
#include "alpha/a.h"

inline int beta_value() { return 41; }
