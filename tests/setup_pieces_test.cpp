// Unit tests for the setup building blocks in isolation: the BGI flood,
// leader election by max-flooding, and the staged BFS construction.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/bfs_build.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/leader_election.h"
#include "support/rng.h"
#include "support/util.h"

namespace radiomc {
namespace {

class FloodSweep : public ::testing::TestWithParam<int> {};

TEST_P(FloodSweep, InformsEveryoneWithGenerousBudget) {
  Rng rng(100 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(24));
  graphs.push_back(gen::grid(5, 6));
  graphs.push_back(gen::gnp_connected(30, 0.2, rng));
  graphs.push_back(gen::star(16));
  for (const Graph& g : graphs) {
    const std::uint32_t d = diameter(g);
    const std::uint64_t phases = 4 * (d + 2 * ceil_log2(g.num_nodes()) + 4);
    const auto out = run_bgi_broadcast(
        g, static_cast<NodeId>(rng.next_below(g.num_nodes())), phases,
        rng.next());
    EXPECT_EQ(out.informed_count, g.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloodSweep, ::testing::Range(0, 5));

TEST(Flood, SourceIsInformedAtZero) {
  const Graph g = gen::path(5);
  const auto out = run_bgi_broadcast(g, 2, 4, 9);
  EXPECT_TRUE(out.informed[2]);
  EXPECT_EQ(out.informed_at[2], 0u);
}

TEST(Flood, InformedTimesRespectDistance) {
  // First-reception times are nondecreasing in hop distance on a path
  // (the flood can only move one hop per reception).
  const Graph g = gen::path(12);
  const auto out = run_bgi_broadcast(g, 0, 200, 10);
  ASSERT_EQ(out.informed_count, 12u);
  for (NodeId v = 2; v < 12; ++v)
    EXPECT_GE(out.informed_at[v], out.informed_at[v - 1]);
}

TEST(Flood, ZeroPhasesInformsOnlySource) {
  const Graph g = gen::path(4);
  const auto out = run_bgi_broadcast(g, 0, 0, 11);
  EXPECT_EQ(out.informed_count, 1u);
}

class LeaderSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeaderSweep, MaxIdWinsUnanimously) {
  Rng rng(300 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(20));
  graphs.push_back(gen::grid(4, 6));
  graphs.push_back(gen::gnp_connected(25, 0.25, rng));
  graphs.push_back(gen::complete(12));
  graphs.push_back(gen::star(14));
  for (const Graph& g : graphs) {
    const std::uint64_t phases =
        16 * (diameter(g) + 2 * ceil_log2(g.num_nodes()) + 4);
    const auto out = run_leader_election(g, phases, rng.next());
    EXPECT_TRUE(out.unanimous)
        << "n=" << g.num_nodes() << " phases=" << phases;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaderSweep, ::testing::Range(0, 5));

TEST(Leader, BestNeverDecreasesAndIsAnId) {
  Rng rng(44);
  const Graph g = gen::gnp_connected(15, 0.3, rng);
  const auto out = run_leader_election(g, 10, rng.next());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(out.best[v], v);  // own id is the floor
    EXPECT_LT(out.best[v], g.num_nodes());
  }
}

TEST(Leader, SingleNode) {
  const Graph g = gen::path(1);
  const auto out = run_leader_election(g, 1, 5);
  EXPECT_TRUE(out.unanimous);
}

class BfsBuildSweep : public ::testing::TestWithParam<int> {};

TEST_P(BfsBuildSweep, ProducesTrueBfsTree) {
  Rng rng(500 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(20));
  graphs.push_back(gen::grid(5, 5));
  graphs.push_back(gen::gnp_connected(30, 0.2, rng));
  graphs.push_back(gen::unit_disk_connected(25, 0.5, rng));
  graphs.push_back(gen::complete(10));
  for (const Graph& g : graphs) {
    BfsBuildConfig cfg;
    cfg.decay_len = decay_length(g.max_degree());
    cfg.announce_phases = 2 * ceil_log2(g.num_nodes()) + 2;
    const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto out = run_bfs_build(g, root, cfg, rng.next());
    ASSERT_TRUE(out.all_joined) << "n=" << g.num_nodes();
    EXPECT_TRUE(out.is_true_bfs);
    EXPECT_TRUE(is_bfs_tree_of(g, out.tree));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsBuildSweep, ::testing::Range(0, 5));

TEST(BfsBuild, StopsAfterEmptyStage) {
  // On a short path the driver must stop long before max_stages.
  const Graph g = gen::path(6);
  BfsBuildConfig cfg;
  cfg.decay_len = 2;
  cfg.announce_phases = 8;
  const auto out = run_bfs_build(g, 0, cfg, 77);
  ASSERT_TRUE(out.all_joined);
  const std::uint64_t stage_slots =
      static_cast<std::uint64_t>(cfg.decay_len) * cfg.announce_phases;
  EXPECT_LE(out.slots, stage_slots * 7);
}

TEST(BfsBuild, SingleNodeGraph) {
  const Graph g = gen::path(1);
  BfsBuildConfig cfg;
  const auto out = run_bfs_build(g, 0, cfg, 3);
  EXPECT_TRUE(out.all_joined);
  EXPECT_EQ(out.tree.depth, 0u);
}

TEST(BfsBuild, TinyBudgetCanFailButNeverLies) {
  // announce_phases = 1 gives each stage a single Decay invocation; on a
  // dense graph some nodes may miss it. The driver must then report
  // all_joined = false rather than fabricate a tree.
  Rng rng(91);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    const Graph g = gen::complete(16);
    BfsBuildConfig cfg;
    cfg.decay_len = decay_length(g.max_degree());
    cfg.announce_phases = 1;
    const auto out = run_bfs_build(g, 0, cfg, rng.next());
    if (!out.all_joined) {
      ++failures;
    } else {
      EXPECT_TRUE(is_bfs_tree_of(g, out.tree));
    }
  }
  SUCCEED() << failures << "/10 tiny-budget builds failed (expected >= 0)";
}

}  // namespace
}  // namespace radiomc
