#pragma once

// The pre-active-set slot engine, frozen verbatim as a reference
// implementation for the differential test harness (engine_diff_test.cpp).
//
// This is the O(n)-per-slot engine that shipped before the active-set
// rewrite: Phase 1 scans every station and resets every action cell,
// Phase 2 walks Graph::neighbors per transmitter, Phase 3 scans every
// (node, channel) cell. It is deliberately NOT updated when the production
// engine evolves — its whole value is that it still computes the §1.1
// semantics the slow, obviously-correct way, so any divergence between it
// and RadioNetwork (deliveries, NetMetrics, traces, capture randomness) is
// a bug in the rewrite, not in the model.
//
// It reuses the production Config / NetMetrics / Station / TraceSink /
// FaultSchedule types so outputs are directly comparable; stations attached
// here never receive a Waker (on_attach is not called), exactly like the
// pre-rewrite engine.

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault_schedule.h"
#include "graph/graph.h"
#include "radio/message.h"
#include "radio/network.h"
#include "radio/station.h"
#include "radio/trace.h"
#include "support/rng.h"

namespace radiomc::testing {

class ReferenceNetwork {
 public:
  using Config = RadioNetwork::Config;

  explicit ReferenceNetwork(const Graph& g) : ReferenceNetwork(g, Config{}) {}
  ReferenceNetwork(const Graph& g, Config cfg);

  void attach(std::vector<Station*> stations);
  void step();
  void run(SlotTime count);

  SlotTime now() const noexcept { return now_; }
  const Graph& graph() const noexcept { return *graph_; }
  const NetMetrics& metrics() const noexcept { return metrics_; }

  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }
  void set_slot_hook(SlotHook* hook) noexcept { slot_hook_ = hook; }
  void set_faults(FaultSchedule* faults) noexcept { faults_ = faults; }

 private:
  const Graph* graph_;
  Config cfg_;
  std::vector<Station*> stations_;
  SlotTime now_ = 0;
  NetMetrics metrics_;
  TraceSink* trace_ = nullptr;
  SlotHook* slot_hook_ = nullptr;
  FaultSchedule* faults_ = nullptr;
  Rng capture_rng_;

  struct RxSlot {
    std::uint64_t epoch = 0;
    std::uint32_t tx_neighbors = 0;
    const Message* msg = nullptr;  // valid when tx_neighbors == 1
  };
  std::vector<RxSlot> rx_;                      // n * num_channels
  std::uint64_t epoch_ = 0;
  std::vector<std::optional<Message>> actions_;  // n * num_channels
  std::vector<std::pair<NodeId, ChannelId>> tx_list_;  // scratch
};

}  // namespace radiomc::testing
