// Baselines: TDMA collection (deterministic, collision-free), naive
// sequential k-broadcast, and the centralized wave-expansion schedule.

#include <gtest/gtest.h>

#include "baselines/naive_kbroadcast.h"
#include "baselines/round_robin_broadcast.h"
#include "baselines/tdma_collection.h"
#include "baselines/wave_schedule.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

namespace radiomc {
namespace {

using namespace radiomc::baselines;

TEST(Tdma, DeliversEverythingWithoutCollisions) {
  Rng rng(70);
  const Graph g = gen::gnp_connected(20, 0.25, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<NodeId> sources;
  for (int i = 0; i < 40; ++i)
    sources.push_back(static_cast<NodeId>(rng.next_below(20)));
  const auto out = run_tdma_collection(g, tree, sources);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.collisions, 0u);
}

TEST(Tdma, DeterministicTime) {
  const Graph g = gen::path(10);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto a = run_tdma_collection(g, tree, {9, 5});
  const auto b = run_tdma_collection(g, tree, {9, 5});
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.slots, b.slots);
}

TEST(Tdma, CostScalesWithN) {
  // One message from the last node of a path: the TDMA frame costs ~n per
  // hop, so doubling n roughly quadruples the time (n frames of size n).
  auto cost = [](NodeId n) {
    const Graph g = gen::path(n);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    return run_tdma_collection(g, tree, {static_cast<NodeId>(n - 1)}).slots;
  };
  const auto c16 = cost(16);
  const auto c32 = cost(32);
  EXPECT_GT(c32, 3 * c16);
}

TEST(NaiveBroadcast, CompletesAndCountsFloods) {
  Rng rng(71);
  const Graph g = gen::grid(4, 4);
  std::vector<NodeId> sources{0, 5, 10, 15};
  const auto out = run_naive_k_broadcast(g, sources, rng.next());
  ASSERT_TRUE(out.completed);
  EXPECT_GE(out.floods_run, sources.size());
}

TEST(NaiveBroadcast, CostIsLinearInK) {
  Rng rng(72);
  const Graph g = gen::grid(3, 4);
  std::vector<NodeId> k4(4, 0), k8(8, 0);
  const auto c4 = run_naive_k_broadcast(g, k4, rng.next());
  const auto c8 = run_naive_k_broadcast(g, k8, rng.next());
  ASSERT_TRUE(c4.completed);
  ASSERT_TRUE(c8.completed);
  EXPECT_GT(c8.slots, c4.slots);
}

class WaveSweep : public ::testing::TestWithParam<int> {};

TEST_P(WaveSweep, ScheduleInformsEveryone) {
  Rng rng(1300 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(20));
  graphs.push_back(gen::grid(5, 5));
  graphs.push_back(gen::gnp_connected(30, 0.2, rng));
  graphs.push_back(gen::star(15));
  graphs.push_back(gen::complete(12));
  for (const Graph& g : graphs) {
    const NodeId src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const WaveSchedule s = compute_wave_schedule(g, src);
    const WaveOutcome out = execute_wave_schedule(g, s);
    EXPECT_TRUE(out.all_informed) << "n=" << g.num_nodes();
    EXPECT_EQ(out.slots, s.rounds.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveSweep, ::testing::Range(0, 4));

TEST(Wave, LengthIsDLogSquaredFlavor) {
  // O(D log^2 n): on a path the schedule is ~D rounds; on a clique O(1).
  Rng rng(73);
  const Graph path = gen::path(40);
  const auto sp = compute_wave_schedule(path, 0);
  EXPECT_LE(sp.rounds.size(), 2u * 40);
  const Graph clique = gen::complete(20);
  const auto sc = compute_wave_schedule(clique, 0);
  EXPECT_LE(sc.rounds.size(), 3u);
}

TEST(Wave, SingleNode) {
  const Graph g = gen::path(1);
  const WaveSchedule s = compute_wave_schedule(g, 0);
  EXPECT_TRUE(s.rounds.empty());
  EXPECT_TRUE(execute_wave_schedule(g, s).all_informed);
}

TEST(RoundRobinBroadcast, InformsEveryoneWithoutCollisions) {
  Rng rng(75);
  for (int i = 0; i < 5; ++i) {
    const Graph g = gen::gnp_connected(20, 0.2, rng);
    const auto out = run_round_robin_broadcast(
        g, static_cast<NodeId>(rng.next_below(20)));
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.collisions, 0u);
  }
}

TEST(RoundRobinBroadcast, AtMostDFrames) {
  const Graph g = gen::path(12);
  const auto out = run_round_robin_broadcast(g, 0);
  ASSERT_TRUE(out.completed);
  EXPECT_LE(out.slots, 12u * 11u);
  // informed_at is nondecreasing along the path.
  for (NodeId v = 2; v < 12; ++v)
    EXPECT_GE(out.informed_at[v], out.informed_at[v - 1]);
}

TEST(RoundRobinBroadcast, DeterministicAcrossRuns) {
  Rng rng(76);
  const Graph g = gen::grid(4, 4);
  const auto a = run_round_robin_broadcast(g, 5);
  const auto b = run_round_robin_broadcast(g, 5);
  EXPECT_EQ(a.informed_at, b.informed_at);
}

TEST(RoundRobinBroadcast, AdversarialSinkPaysLinearly) {
  // The E14 instance: sink adjacent only to the last-scheduled middle.
  std::vector<std::pair<NodeId, NodeId>> e;
  const NodeId middles = 30;
  for (NodeId m = 1; m <= middles; ++m) e.emplace_back(0, m);
  e.emplace_back(middles, middles + 1);
  const Graph g(middles + 2, e);
  const auto out = run_round_robin_broadcast(g, 0);
  ASSERT_TRUE(out.completed);
  EXPECT_GE(out.slots, static_cast<SlotTime>(middles));
}

TEST(Comparison, PipelineBeatsNaiveForLargeK) {
  // E11's headline shape, in miniature: for k = 24 broadcasts the
  // pipelined service is faster than k sequential floods.
  Rng rng(74);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<NodeId> sources;
  for (int i = 0; i < 24; ++i)
    sources.push_back(static_cast<NodeId>(rng.next_below(16)));
  const auto pipe = run_k_broadcast(g, tree, sources,
                                    BroadcastServiceConfig::for_graph(g),
                                    rng.next());
  const auto naive = run_naive_k_broadcast(g, sources, rng.next());
  ASSERT_TRUE(pipe.completed);
  ASSERT_TRUE(naive.completed);
  EXPECT_LT(pipe.slots, naive.slots);
}

}  // namespace
}  // namespace radiomc
