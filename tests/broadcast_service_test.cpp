// Cross-cutting k-broadcast service tests: throughput shape (§6's
// "a broadcast every O(log Delta log n) slots"), reactive (staggered)
// origination, separate-channel vs time-division cost, and the driver
// helper run_k_broadcast.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

TEST(KBroadcast, DriverCompletesAndReportsResends) {
  Rng rng(90);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<NodeId> sources;
  for (int i = 0; i < 20; ++i)
    sources.push_back(static_cast<NodeId>(rng.next_below(16)));
  const auto out = run_k_broadcast(g, tree, sources,
                                   BroadcastServiceConfig::for_graph(g), 91);
  ASSERT_TRUE(out.completed);
  EXPECT_GT(out.slots, 0u);
}

TEST(KBroadcast, ReactiveStaggeredOrigination) {
  // §1.4: the protocols are reactive — messages originated mid-run are
  // handled like any other.
  Rng rng(92);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g),
                       rng.next());
  int injected = 0;
  while (injected < 15) {
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), injected);
    ++injected;
    for (int s = 0; s < 500; ++s) svc.step();
  }
  ASSERT_TRUE(svc.run_until_delivered(50'000'000));
  for (NodeId v = 1; v < 12; ++v)
    EXPECT_EQ(svc.distribution(v).delivered_prefix(), 15u);
}

TEST(KBroadcast, MarginalCostPerBroadcastIsSublinearInDepth) {
  // Throughput claim: after the pipeline fills, each extra broadcast costs
  // about one superphase — independent of D. Compare marginal cost on a
  // deep path for k=20 vs k=60: the per-message increment stays flat.
  Rng rng(93);
  const Graph g = gen::path(16);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  auto run_k = [&](std::uint64_t k) {
    std::vector<NodeId> sources(k, 0);
    return run_k_broadcast(g, tree, sources,
                           BroadcastServiceConfig::for_graph(g), rng.next())
        .slots;
  };
  OnlineStats small, large;
  for (int rep = 0; rep < 3; ++rep) {
    small.add(static_cast<double>(run_k(20)));
    large.add(static_cast<double>(run_k(60)));
  }
  const double marginal =
      (large.mean() - small.mean()) / 40.0;  // slots per extra broadcast
  const double sp = static_cast<double>(
      DistributionConfig::for_graph(g).phases_per_superphase *
      DistributionConfig::for_graph(g).decay_len * 3);
  EXPECT_LT(marginal, 3.0 * sp);  // ~1 superphase each, with slack
}

TEST(KBroadcast, SeparateChannelsBeatTimeDivision) {
  // The paper's two concurrency options (§1.4): time multiplexing halves
  // each subprotocol's slot rate, so it should be roughly 2x slower.
  Rng rng(94);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<NodeId> sources;
  for (int i = 0; i < 15; ++i)
    sources.push_back(static_cast<NodeId>(rng.next_below(12)));
  OnlineStats sep, tdm;
  for (int rep = 0; rep < 3; ++rep) {
    BroadcastServiceConfig c1 = BroadcastServiceConfig::for_graph(g);
    sep.add(static_cast<double>(
        run_k_broadcast(g, tree, sources, c1, rng.next()).slots));
    BroadcastServiceConfig c2 = BroadcastServiceConfig::for_graph(g);
    c2.mode = BroadcastServiceConfig::ChannelMode::kTimeDivision;
    tdm.add(static_cast<double>(
        run_k_broadcast(g, tree, sources, c2, rng.next()).slots));
  }
  EXPECT_GT(tdm.mean(), sep.mean());
  EXPECT_LT(tdm.mean(), 4.0 * sep.mean());
}

TEST(KBroadcast, SingleNodeGraphTrivial) {
  const Graph g = gen::path(1);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto out = run_k_broadcast(g, tree, {0, 0, 0},
                                   BroadcastServiceConfig::for_graph(g), 95);
  EXPECT_TRUE(out.completed);
}

}  // namespace
}  // namespace radiomc
