// The textual topology grammar used by the CLI tool.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/topology_spec.h"
#include "support/rng.h"

namespace radiomc {
namespace {

Graph parse(const std::string& s, std::uint64_t seed = 1) {
  Rng rng(seed);
  return gen::from_spec(s, rng);
}

TEST(TopologySpec, FixedFamilies) {
  EXPECT_EQ(parse("path:7").num_nodes(), 7u);
  EXPECT_EQ(parse("path:7").num_edges(), 6u);
  EXPECT_EQ(parse("cycle:8").num_edges(), 8u);
  EXPECT_EQ(parse("complete:5").num_edges(), 10u);
  EXPECT_EQ(parse("star:9").max_degree(), 8u);
  EXPECT_EQ(parse("grid:3x4").num_nodes(), 12u);
  EXPECT_EQ(parse("torus:3x3").num_edges(), 18u);
  EXPECT_EQ(parse("hypercube:3").num_nodes(), 8u);
  EXPECT_EQ(parse("tree:15:2").num_edges(), 14u);
  EXPECT_EQ(parse("caterpillar:4:2").num_nodes(), 12u);
  EXPECT_EQ(parse("barbell:3:1").num_nodes(), 7u);
}

TEST(TopologySpec, RandomFamiliesAreConnectedAndSeeded) {
  const Graph a = parse("gnp:20:0.3", 42);
  const Graph b = parse("gnp:20:0.3", 42);
  EXPECT_TRUE(is_connected(a));
  EXPECT_EQ(a.edge_list(), b.edge_list());  // deterministic per seed
  const Graph c = parse("random-tree:25", 7);
  EXPECT_EQ(c.num_edges(), 24u);
  const Graph d = parse("udg:30", 9);
  EXPECT_TRUE(is_connected(d));
  const Graph e = parse("udg:30:0.9", 9);
  EXPECT_TRUE(is_connected(e));
}

TEST(TopologySpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("pathway:5"), std::invalid_argument);
  EXPECT_THROW(parse("path"), std::invalid_argument);
  EXPECT_THROW(parse("path:abc"), std::invalid_argument);
  EXPECT_THROW(parse("grid:4"), std::invalid_argument);
  EXPECT_THROW(parse("grid:4x"), std::invalid_argument);
  EXPECT_THROW(parse("gnp:10"), std::invalid_argument);
  EXPECT_THROW(parse("gnp:10:x"), std::invalid_argument);
  EXPECT_THROW(parse("tree:10"), std::invalid_argument);
  EXPECT_THROW(parse("path:5:9"), std::invalid_argument);
}

TEST(TopologySpec, GrammarMentionsEveryFamily) {
  const std::string g = gen::spec_grammar();
  for (const char* fam :
       {"path", "cycle", "complete", "star", "grid", "torus", "hypercube",
        "tree", "random-tree", "caterpillar", "barbell", "gnp", "udg"})
    EXPECT_NE(g.find(fam), std::string::npos) << fam;
}

}  // namespace
}  // namespace radiomc
