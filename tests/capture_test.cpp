// §8 Remark 3 — the capture conflict model ("in case of a conflict the
// receiver may get one of the messages"):
//  * the engine's capture mode delivers a uniform choice among colliding
//    transmitters with the configured probability;
//  * the paper's claim that "our deterministic acknowledgement mechanism
//    is no longer valid" — we exhibit a lost acknowledgement;
//  * the "more complicated, less reliable and slower protocol": collection
//    with the dedup guard stays exactly-once under capture, and without
//    the guard duplicates actually occur;
//  * distribution (no acks, idempotent by sequence number) tolerates
//    capture as-is.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "radio/network.h"
#include "support/rng.h"

namespace radiomc {
namespace {

class CountingStation final : public Station {
 public:
  bool sends = false;
  std::uint64_t payload = 0;
  std::map<std::uint64_t, int> received;  // payload -> count

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t == 0 && sends) {
      Message m;
      m.payload = payload;
      tx[0] = m;
    }
  }
  void on_receive(SlotTime, ChannelId, const Message& m) override {
    ++received[m.payload];
  }
};

TEST(Capture, OffMeansSilenceOnCollision) {
  const Graph g = gen::star(4);
  std::deque<CountingStation> st(4);
  st[1].sends = st[2].sends = true;
  RadioNetwork net(g);
  net.attach({&st[0], &st[1], &st[2], &st[3]});
  net.step();
  EXPECT_TRUE(st[0].received.empty());
  EXPECT_EQ(net.metrics().capture_deliveries, 0u);
}

TEST(Capture, FullCaptureAlwaysDeliversOneOfThem) {
  const Graph g = gen::star(4);
  int got1 = 0, got2 = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::deque<CountingStation> st(4);
    st[1].sends = st[2].sends = true;
    st[1].payload = 1;
    st[2].payload = 2;
    RadioNetwork::Config cfg;
    cfg.capture_prob = 1.0;
    cfg.capture_stream = Rng(1000 + trial);
    RadioNetwork net(g, cfg);
    net.attach({&st[0], &st[1], &st[2], &st[3]});
    net.step();
    ASSERT_EQ(st[0].received.size(), 1u);
    if (st[0].received.contains(1)) ++got1;
    if (st[0].received.contains(2)) ++got2;
    EXPECT_EQ(net.metrics().capture_deliveries, 1u);
  }
  // Uniform choice among the two transmitters.
  EXPECT_GT(got1, 60);
  EXPECT_GT(got2, 60);
}

TEST(Capture, PartialProbabilityRoughlyRespected) {
  const Graph g = gen::star(4);
  int delivered = 0;
  const int trials = 1000;
  for (int trial = 0; trial < trials; ++trial) {
    std::deque<CountingStation> st(4);
    st[1].sends = st[2].sends = true;
    RadioNetwork::Config cfg;
    cfg.capture_prob = 0.3;
    cfg.capture_stream = Rng(2000 + trial);
    RadioNetwork net(g, cfg);
    net.attach({&st[0], &st[1], &st[2], &st[3]});
    net.step();
    delivered += st[0].received.empty() ? 0 : 1;
  }
  EXPECT_NEAR(static_cast<double>(delivered) / trials, 0.3, 0.06);
}

// Remark 3's negative result: under capture the Theorem 3.1 argument
// breaks — a receiver can get its message while the sender's ack is lost
// to an ack-vs-ack conflict. We reconstruct it on the Figure-1 gadget.
class AckProbe final : public Station {
 public:
  NodeId me = 0;
  bool sends = false;
  NodeId designated = kNoNode;
  bool got_data = false;
  NodeId data_from = kNoNode;
  bool got_ack = false;

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t == 0 && sends) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = me;
      m.dest = designated;
      tx[0] = m;
    } else if (t == 1 && got_data) {
      Message ack;
      ack.kind = MsgKind::kAck;
      ack.dest = data_from;
      tx[0] = ack;
    }
  }
  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    if (t == 0 && m.kind == MsgKind::kData && m.dest == me) {
      got_data = true;
      data_from = m.sender;
    } else if (t == 1 && m.kind == MsgKind::kAck && m.dest == me) {
      got_ack = true;
    }
  }
};

TEST(Capture, AckTheoremFailsUnderCapture) {
  // u(0)-v(1), u'(2)-v'(3), cross u-v', u'-v. Under capture both v and v'
  // can receive (each captures one of the two data messages); then both
  // ack at t=1 and the acks collide at u and u' — unless capture resolves
  // them, in which case at most one side gets its ack. Over many seeds a
  // received-but-unacked message must appear.
  const Graph g(4, {{0, 1}, {2, 3}, {0, 3}, {2, 1}});
  int violations = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::deque<AckProbe> p(4);
    for (NodeId i = 0; i < 4; ++i) p[i].me = i;
    p[0].sends = true;
    p[0].designated = 1;
    p[2].sends = true;
    p[2].designated = 3;
    RadioNetwork::Config cfg;
    cfg.capture_prob = 1.0;
    cfg.capture_stream = Rng(3000 + trial);
    RadioNetwork net(g, cfg);
    net.attach({&p[0], &p[1], &p[2], &p[3]});
    net.run(2);
    if (p[1].got_data && p[1].data_from == 0 && !p[0].got_ack) ++violations;
    if (p[3].got_data && p[3].data_from == 2 && !p[2].got_ack) ++violations;
  }
  EXPECT_GT(violations, 0) << "capture should break deterministic acks";
}

// The guard: collection stays exactly-once under full capture.
class CaptureCollection : public ::testing::TestWithParam<int> {};

TEST_P(CaptureCollection, DedupGuardKeepsExactlyOnce) {
  Rng rng(4000 + GetParam());
  const Graph g = gen::gnp_connected(18, 0.3, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<Message> init;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    for (std::uint32_t s = 0; s < 3; ++s) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = s;
      init.push_back(m);
    }

  // The standalone driver does not expose engine config; build the run
  // manually with capture on.
  CollectionConfig cfg = CollectionConfig::for_graph(g);
  cfg.dedup_guard = true;
  Rng master(rng.next());
  std::vector<std::unique_ptr<CollectionStation>> stations;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    stations.push_back(
        std::make_unique<CollectionStation>(v, tree, cfg, master.split(v)));
  for (const Message& m : init) stations[m.origin]->inject(m);
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : stations) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork::Config ncfg;
  ncfg.capture_prob = 1.0;
  ncfg.capture_stream = rng.split(0xCA);
  RadioNetwork net(g, ncfg);
  net.attach(std::move(ptrs));
  while (stations[0]->root_sink().size() < init.size() &&
         net.now() < 4'000'000)
    net.step();

  ASSERT_GE(stations[0]->root_sink().size(), init.size());
  std::map<std::pair<NodeId, std::uint32_t>, int> counts;
  for (const auto& d : stations[0]->root_sink())
    ++counts[{d.msg.origin, d.msg.seq}];
  EXPECT_EQ(counts.size(), init.size());
  for (auto& [key, c] : counts) EXPECT_EQ(c, 1) << key.first;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureCollection, ::testing::Range(0, 4));

TEST(Capture, WithoutGuardDuplicatesOccur) {
  // Same setup, guard off: across seeds, at least one duplicate delivery
  // should reach the root (the Remark 3 failure mode).
  int dup_runs = 0;
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(5000 + seed);
    const Graph g = gen::gnp_connected(18, 0.3, rng);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    std::vector<Message> init;
    for (NodeId v = 1; v < g.num_nodes(); ++v)
      for (std::uint32_t s = 0; s < 3; ++s) {
        Message m;
        m.kind = MsgKind::kData;
        m.origin = v;
        m.seq = s;
        init.push_back(m);
      }
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    Rng master(rng.next());
    std::vector<std::unique_ptr<CollectionStation>> stations;
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      stations.push_back(
          std::make_unique<CollectionStation>(v, tree, cfg, master.split(v)));
    for (const Message& m : init) stations[m.origin]->inject(m);
    std::deque<SingleStation> adapters;
    std::vector<Station*> ptrs;
    for (auto& s : stations) adapters.emplace_back(*s);
    for (auto& a : adapters) ptrs.push_back(&a);
    RadioNetwork::Config ncfg;
    ncfg.capture_prob = 1.0;
    ncfg.capture_stream = rng.split(0xCA);
    RadioNetwork net(g, ncfg);
    net.attach(std::move(ptrs));
    while (stations[0]->root_sink().size() < init.size() &&
           net.now() < 500'000)
      net.step();
    std::map<std::pair<NodeId, std::uint32_t>, int> counts;
    for (const auto& d : stations[0]->root_sink())
      ++counts[{d.msg.origin, d.msg.seq}];
    for (auto& [key, c] : counts)
      if (c > 1) {
        ++dup_runs;
        break;
      }
  }
  EXPECT_GT(dup_runs, 0)
      << "guard-less collection under capture should eventually duplicate";
}

class CaptureBroadcast : public ::testing::TestWithParam<int> {};

TEST_P(CaptureBroadcast, FullServiceSurvivesCapture) {
  // End-to-end k-broadcast on a capture-mode physical layer: the
  // collection channel needs the Remark-3 dedup guard (acks can be lost),
  // while distribution is idempotent by sequence number and its control
  // consumers (resend requests, checkpoint acks) are idempotent at the
  // root. Exactly-once in-order delivery must survive.
  Rng rng(4800 + GetParam());
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.collection.dedup_guard = true;
  cfg.distribution.window = 4;
  cfg.engine.capture_prob = 1.0;
  cfg.engine.capture_stream = rng.split(0xCA);
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 20;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), i);
  ASSERT_TRUE(svc.run_until_delivered(200'000'000));
  for (NodeId v = 1; v < 12; ++v) {
    const auto& log = svc.distribution(v).delivery_log();
    ASSERT_EQ(log.size(), static_cast<std::size_t>(k)) << "node " << v;
    for (int i = 0; i < k; ++i)
      EXPECT_EQ(log[i].second, static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureBroadcast, ::testing::Range(0, 3));

}  // namespace
}  // namespace radiomc
