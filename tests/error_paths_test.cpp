// Precondition enforcement across the public API (Core Guidelines I.6):
// constructors and drivers must reject malformed input loudly instead of
// corrupting a simulation.

#include <gtest/gtest.h>

#include <string>

#include "faults/fault_plan.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/distribution.h"
#include "protocols/ethernet_emulation.h"
#include "protocols/ranking.h"
#include "protocols/tree.h"
#include "radio/network.h"
#include "radio/schedule.h"
#include "support/rng.h"

namespace radiomc {
namespace {

TEST(ErrorPaths, BfsTreeRejectsCyclesAndOrphans) {
  // 0 <- 1 <- 2 but 3's parent is itself-ish (cycle 3 <-> 4).
  EXPECT_THROW(
      BfsTree::from_parents(0, {kNoNode, 0, 1, 4, 3}),
      std::invalid_argument);
  // Root with a parent.
  EXPECT_THROW(BfsTree::from_parents(0, {1, 0}), std::invalid_argument);
  // Parent out of range.
  EXPECT_THROW(BfsTree::from_parents(0, {kNoNode, 9}),
               std::invalid_argument);
  // Root out of range.
  EXPECT_THROW(BfsTree::from_parents(5, {kNoNode, 0}),
               std::invalid_argument);
}

TEST(ErrorPaths, NetworkAttachValidation) {
  const Graph g = gen::path(3);
  RadioNetwork net(g);
  EXPECT_THROW(net.attach({}), std::invalid_argument);  // wrong count
  EXPECT_THROW(net.step(), std::invalid_argument);      // nothing attached
}

TEST(ErrorPaths, NetworkConfigValidation) {
  const Graph g = gen::path(2);
  RadioNetwork::Config bad;
  bad.num_channels = 0;
  EXPECT_THROW(RadioNetwork(g, bad), std::invalid_argument);
  RadioNetwork::Config bad2;
  bad2.capture_prob = 1.5;
  EXPECT_THROW(RadioNetwork(g, bad2), std::invalid_argument);
}

TEST(ErrorPaths, PhaseClockValidation) {
  SlotStructure s;
  s.decay_len = 1;
  EXPECT_THROW(PhaseClock{s}, std::invalid_argument);
}

TEST(ErrorPaths, DistributionRootOnlyCalls) {
  const Graph g = gen::path(4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  DistributionStation leaf(3, tree, DistributionConfig::for_graph(g),
                           Rng(1));
  Message m;
  EXPECT_THROW(leaf.root_enqueue(m), std::invalid_argument);
  EXPECT_THROW(leaf.root_request_resend(0), std::invalid_argument);
  EXPECT_THROW(leaf.root_checkpoint_ack(1, 1), std::invalid_argument);
}

TEST(ErrorPaths, CollectionInjectRequiresOwnOrigin) {
  const Graph g = gen::path(3);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  CollectionStation st(2, tree, CollectionConfig::for_graph(g), Rng(2));
  Message m;
  m.origin = 1;  // not node 2
  EXPECT_THROW(st.inject(m), std::invalid_argument);
}

TEST(ErrorPaths, RankingValidation) {
  const Graph g = gen::path(4);
  PreparationResult prep;  // empty routing
  EXPECT_THROW(run_ranking(g, prep, {1, 2, 3, 4}, 1), std::invalid_argument);
}

TEST(ErrorPaths, VirtualEthernetNeedsPolicy) {
  const Graph g = gen::path(4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  VirtualEthernet bus(g, tree, VirtualEthernet::Config::for_graph(g), 3);
  EXPECT_THROW(bus.run_rounds(2), std::invalid_argument);
}

TEST(ErrorPaths, BroadcastServiceTreeMismatch) {
  const Graph g = gen::path(4);
  const Graph g2 = gen::path(5);
  const BfsTree tree = oracle_bfs_tree(g2, 0);
  EXPECT_THROW(
      BroadcastService(g, tree, BroadcastServiceConfig::for_graph(g), 1),
      std::invalid_argument);
}

TEST(ErrorPaths, MismatchedTreeInCollectionDriver) {
  const Graph g = gen::path(4);
  const BfsTree tree = oracle_bfs_tree(gen::path(6), 0);
  EXPECT_THROW(
      run_collection(g, tree, {}, CollectionConfig::for_graph(g), 1),
      std::invalid_argument);
}

/// Runs `plan.validate()` and returns the rejection message ("" if the
/// plan was accepted) so the tests can pin the exact wording the CLI
/// surfaces to users.
std::string fault_plan_rejection(const FaultPlan& plan) {
  try {
    plan.validate();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ErrorPaths, FaultPlanRejectsOutOfRangeRates) {
  FaultPlan p;
  p.crash_rate = 1.5;
  EXPECT_EQ(fault_plan_rejection(p), "FaultPlan: crash_rate must be in [0, 1]");
  p = FaultPlan{};
  p.crash_rate = 0.1;
  p.recover_rate = -0.5;
  EXPECT_EQ(fault_plan_rejection(p),
            "FaultPlan: recover_rate must be in [0, 1]");
  p = FaultPlan{};
  p.link_down_rate = 2.0;
  EXPECT_EQ(fault_plan_rejection(p),
            "FaultPlan: link_down_rate must be in [0, 1]");
  p = FaultPlan{};
  p.link_down_rate = 0.1;
  p.link_up_rate = -1.0;
  EXPECT_EQ(fault_plan_rejection(p),
            "FaultPlan: link_up_rate must be in [0, 1]");
  p = FaultPlan{};
  p.jam_prob = 1.0001;
  EXPECT_EQ(fault_plan_rejection(p), "FaultPlan: jam_prob must be in [0, 1]");
  p = FaultPlan{};
  p.drop_prob = -0.0001;
  EXPECT_EQ(fault_plan_rejection(p), "FaultPlan: drop_prob must be in [0, 1]");
}

TEST(ErrorPaths, FaultPlanRejectsContradictoryCombinations) {
  FaultPlan p;
  p.recover_rate = 0.5;  // healing without any crashing
  EXPECT_EQ(fault_plan_rejection(p),
            "FaultPlan: recover_rate without crash_rate is contradictory");
  p = FaultPlan{};
  p.link_up_rate = 0.5;  // link healing without any link churn
  EXPECT_EQ(fault_plan_rejection(p),
            "FaultPlan: link_up_rate without link_down_rate is contradictory");
  p = FaultPlan{};
  p.jam_prob = 0.1;
  p.epoch_slots = 0;
  EXPECT_EQ(fault_plan_rejection(p), "FaultPlan: epoch_slots must be >= 1");
  p = FaultPlan{};
  p.jam_prob = 0.1;
  p.window_start = 100;
  p.window_end = 100;  // empty onset window
  EXPECT_EQ(fault_plan_rejection(p),
            "FaultPlan: fault window is empty (window_end <= window_start)");
}

TEST(ErrorPaths, FaultPlanAcceptsBoundaryValues) {
  FaultPlan p;
  p.crash_rate = 1.0;
  p.recover_rate = 1.0;
  p.link_down_rate = 1.0;
  p.link_up_rate = 1.0;
  p.jam_prob = 1.0;
  p.drop_prob = 1.0;
  p.epoch_slots = 1;
  EXPECT_EQ(fault_plan_rejection(p), "");
  EXPECT_EQ(fault_plan_rejection(FaultPlan{}), "");  // all-zero: valid, off
}

}  // namespace
}  // namespace radiomc
