// The offline trace-analysis subsystem (src/analysis): JSONL write->read
// round trips against the live sink, schema-version rejection, the
// message-lifecycle builder on a hand-built 3-hop trace with a known
// retransmission, and the conformance auditor end-to-end — a real
// fault-free collection run must certify, a deliberately corrupted trace
// (acks stripped) and a truncated trace must not.

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/anomaly.h"
#include "analysis/conformance.h"
#include "analysis/lifecycle.h"
#include "analysis/report.h"
#include "analysis/trace_reader.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "telemetry/jsonl_sink.h"

namespace radiomc {
namespace {

using namespace radiomc::analysis;

TraceReadResult parse(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

// ---------------------------------------------------------------------------
// Write -> read round trip against the real sink.

TEST(TraceRoundTrip, EveryEventKindAndContext) {
  std::ostringstream os;
  telemetry::JsonlTraceSink sink(os);
  sink.set_protocol("collection");
  SlotStructure slots;
  slots.decay_len = 4;
  slots.ack_subslots = true;
  slots.mod3_gating = false;
  sink.set_slot_structure(slots);
  sink.set_levels({2, 1, 0});

  Message d;
  d.kind = MsgKind::kData;
  d.origin = 0;
  d.seq = 3;
  d.dest = 2;
  d.sender = 0;
  d.sender_parent = 1;
  sink.on_transmit(0, 0, 0, d);
  sink.on_deliver(0, 1, 0, d);
  Message a;
  a.kind = MsgKind::kAck;
  a.origin = 0;
  a.seq = 3;
  a.dest = 0;
  a.sender = 1;
  a.sender_parent = 2;
  sink.on_deliver(1, 0, 0, a);
  sink.on_collision(2, 1, 0, 2);  // genuine collision
  sink.on_collision(3, 1, 0, 1);  // jam-killed clean reception
  sink.finish();

  const TraceReadResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error << " at line " << r.line_no;
  const Trace& tr = r.trace;

  EXPECT_EQ(tr.schema.version, telemetry::kTraceSchemaVersion);
  EXPECT_EQ(tr.schema.protocol, "collection");
  ASSERT_TRUE(tr.schema.slots.has_value());
  EXPECT_EQ(tr.schema.slots->decay_len, 4u);
  EXPECT_TRUE(tr.schema.slots->ack_subslots);
  EXPECT_FALSE(tr.schema.slots->mod3_gating);
  ASSERT_EQ(tr.schema.levels.size(), 3u);
  EXPECT_EQ(tr.schema.root(), 2u);

  ASSERT_EQ(tr.events.size(), 5u);
  EXPECT_EQ(tr.events[0].ev, EvKind::kTx);
  EXPECT_EQ(tr.events[0].kind, MsgKind::kData);
  EXPECT_EQ(tr.events[0].origin, 0u);
  EXPECT_EQ(tr.events[0].seq, 3u);
  EXPECT_EQ(tr.events[0].dest, 2u);
  // tx lines do not carry from/fp (only deliveries need hop attribution).
  EXPECT_EQ(tr.events[0].from, kNoNode);

  EXPECT_EQ(tr.events[1].ev, EvKind::kRx);
  EXPECT_EQ(tr.events[1].node, 1u);
  EXPECT_EQ(tr.events[1].from, 0u);
  EXPECT_EQ(tr.events[1].from_parent, 1u);

  EXPECT_EQ(tr.events[2].kind, MsgKind::kAck);
  EXPECT_EQ(tr.events[2].dest, 0u);

  EXPECT_TRUE(tr.events[3].is_collision_genuine());
  EXPECT_FALSE(tr.events[3].is_jam());
  EXPECT_TRUE(tr.events[4].is_jam());

  EXPECT_EQ(tr.tx_count, 1u);
  EXPECT_EQ(tr.rx_count, 2u);
  EXPECT_EQ(tr.collision_count, 1u);
  EXPECT_EQ(tr.jam_count, 1u);
  EXPECT_EQ(tr.last_slot, 3u);
  EXPECT_FALSE(tr.truncated);
}

TEST(TraceRoundTrip, AllMessageKindNamesSurvive) {
  const MsgKind kinds[] = {MsgKind::kData,      MsgKind::kAck,
                           MsgKind::kLeader,    MsgKind::kBfsAnnounce,
                           MsgKind::kDfsToken,  MsgKind::kBcastData,
                           MsgKind::kNack,      MsgKind::kSetupReport};
  std::ostringstream os;
  telemetry::JsonlTraceSink sink(os);
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    Message m;
    m.kind = kinds[i];
    m.origin = static_cast<NodeId>(i);
    sink.on_transmit(i, 0, 0, m);
  }
  sink.finish();
  const TraceReadResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.events.size(), std::size(kinds));
  for (std::size_t i = 0; i < std::size(kinds); ++i)
    EXPECT_EQ(r.trace.events[i].kind, kinds[i]) << "kind index " << i;
}

TEST(TraceRoundTrip, AggregateWindowsSplitJamFromCollision) {
  std::ostringstream os;
  telemetry::JsonlOptions opt;
  opt.events = false;
  opt.aggregate_every = 8;
  telemetry::JsonlTraceSink sink(os, opt);
  Message m;
  sink.on_transmit(0, 0, 0, m);
  sink.on_collision(1, 1, 0, 3);  // genuine
  sink.on_collision(2, 1, 0, 1);  // jam
  sink.on_collision(3, 1, 0, 1);  // jam
  sink.finish();
  const TraceReadResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.windows.size(), 1u);
  EXPECT_EQ(r.trace.windows[0].tx, 1u);
  EXPECT_EQ(r.trace.windows[0].coll, 1u);
  EXPECT_EQ(r.trace.windows[0].jam, 2u);
}

TEST(TraceRoundTrip, TruncationRecordRoundTrips) {
  std::ostringstream os;
  telemetry::JsonlOptions opt;
  opt.max_events = 2;
  telemetry::JsonlTraceSink sink(os, opt);
  Message m;
  m.kind = MsgKind::kData;
  for (SlotTime t = 0; t < 5; ++t) sink.on_transmit(t, 0, 0, m);
  sink.finish();
  EXPECT_TRUE(sink.truncated());
  EXPECT_EQ(sink.dropped_events(), 3u);

  const TraceReadResult r = parse(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.trace.truncated);
  EXPECT_EQ(r.trace.dropped_events, 3u);
  EXPECT_EQ(r.trace.truncated_at, 2u);  // first dropped slot
  EXPECT_EQ(r.trace.events.size(), 2u);
}

// ---------------------------------------------------------------------------
// Reader strictness.

TEST(TraceReader, RejectsWrongSchemaVersion) {
  const TraceReadResult r = parse(
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v1\"}\n"
      "{\"ev\":\"tx\",\"t\":0,\"node\":0,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":0}\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("radiomc.trace/v1"), std::string::npos) << r.error;
  EXPECT_EQ(r.line_no, 1u);
}

TEST(TraceReader, RejectsMissingSchemaHeader) {
  const TraceReadResult r = parse(
      "{\"ev\":\"tx\",\"t\":0,\"node\":0,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":0}\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("schema"), std::string::npos) << r.error;
}

TEST(TraceReader, RejectsUnknownRecordAndMalformedLine) {
  const TraceReadResult unknown = parse(
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\"}\n"
      "{\"ev\":\"wormhole\",\"t\":0}\n");
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.line_no, 2u);

  const TraceReadResult malformed = parse(
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\"}\n"
      "{\"ev\":\"tx\",\"t\":}\n");
  EXPECT_FALSE(malformed.ok);
  EXPECT_EQ(malformed.line_no, 2u);

  const TraceReadResult empty = parse("");
  EXPECT_FALSE(empty.ok);
}

TEST(TraceReader, IgnoresUnknownKeysAndBlankLines) {
  const TraceReadResult r = parse(
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\",\"future\":\"field\"}\n"
      "\n"
      "{\"ev\":\"tx\",\"t\":4,\"node\":1,\"ch\":0,\"kind\":\"data\","
      "\"origin\":1,\"seq\":0,\"novel\":7}\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.events.size(), 1u);
  EXPECT_EQ(r.trace.events[0].t, 4u);
}

// ---------------------------------------------------------------------------
// Lifecycle builder: hand-built 3-hop trace, chain 0 -> 1 -> 2 -> 3 (root),
// with one known retransmission (node 1's first relay collides at node 2).

const char kThreeHopTrace[] =
    "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\",\"protocol\":"
    "\"collection\",\"decay_len\":2,\"ack\":true,\"mod3\":false,"
    "\"levels\":[3,2,1,0]}\n"
    // hop 1: 0 -> 1, acked next slot.
    "{\"ev\":\"tx\",\"t\":0,\"node\":0,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5}\n"
    "{\"ev\":\"rx\",\"t\":0,\"node\":1,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5,\"from\":0,\"fp\":1}\n"
    "{\"ev\":\"rx\",\"t\":1,\"node\":0,\"ch\":0,\"kind\":\"ack\","
    "\"origin\":0,\"seq\":5,\"dest\":0,\"from\":1,\"fp\":2}\n"
    // node 1's first relay attempt is lost to a collision at node 2...
    "{\"ev\":\"tx\",\"t\":4,\"node\":1,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5}\n"
    "{\"ev\":\"coll\",\"t\":4,\"node\":2,\"ch\":0,\"txn\":2}\n"
    // ...and the retransmission lands (hop 2: 1 -> 2).
    "{\"ev\":\"tx\",\"t\":8,\"node\":1,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5}\n"
    "{\"ev\":\"rx\",\"t\":8,\"node\":2,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5,\"from\":1,\"fp\":2}\n"
    "{\"ev\":\"rx\",\"t\":9,\"node\":1,\"ch\":0,\"kind\":\"ack\","
    "\"origin\":0,\"seq\":5,\"dest\":1,\"from\":2,\"fp\":3}\n"
    // hop 3: 2 -> 3 (the root); the run ends before the ack subslot.
    "{\"ev\":\"tx\",\"t\":12,\"node\":2,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5}\n"
    "{\"ev\":\"rx\",\"t\":12,\"node\":3,\"ch\":0,\"kind\":\"data\","
    "\"origin\":0,\"seq\":5,\"from\":2,\"fp\":3}\n";

TEST(Lifecycle, ThreeHopFlightWithRetransmission) {
  const TraceReadResult r = parse(kThreeHopTrace);
  ASSERT_TRUE(r.ok) << r.error;
  const auto flights = build_lifecycles(r.trace);
  ASSERT_EQ(flights.size(), 1u);
  const FlightRecord* f = find_flight(flights, 0, 5);
  ASSERT_NE(f, nullptr);

  EXPECT_EQ(f->transmissions, 4u);  // t=0, 4 (lost), 8, 12
  ASSERT_EQ(f->hops.size(), 3u);
  EXPECT_EQ(f->retransmissions(), 1u);
  EXPECT_TRUE(f->reached_root);
  EXPECT_EQ(f->first_slot, 0u);
  EXPECT_EQ(f->completed_slot, 12u);
  EXPECT_EQ(f->total_inter_hop_wait(), 12u);

  EXPECT_EQ(f->hops[0].from, 0u);
  EXPECT_EQ(f->hops[0].to, 1u);
  EXPECT_EQ(f->hops[0].from_level, 3u);
  EXPECT_EQ(f->hops[0].to_level, 2u);
  EXPECT_TRUE(f->hops[0].acked);
  EXPECT_EQ(f->hops[0].ack_slot, 1u);
  EXPECT_EQ(f->hops[0].ack_latency(), 1u);

  EXPECT_EQ(f->hops[1].rx_slot, 8u);
  EXPECT_TRUE(f->hops[1].acked);

  // The final hop's ack subslot (13) lies past the end of the trace: not
  // acked, but explicitly exempt rather than anomalous.
  EXPECT_FALSE(f->hops[2].acked);
  EXPECT_TRUE(f->hops[2].ack_pending_at_end);

  // The auditor agrees: ack certainty holds on this trace.
  const AuditReport audit = audit_trace(r.trace, flights);
  const CheckResult* ack = audit.find("ack-certainty");
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->status, CheckStatus::kPass) << ack->detail;
  const CheckResult* once = audit.find("exactly-once");
  ASSERT_NE(once, nullptr);
  EXPECT_EQ(once->status, CheckStatus::kPass) << once->detail;
}

TEST(Lifecycle, OverheardCopiesAreNotHops) {
  // A delivery whose fp is NOT the receiver is an overheard copy.
  const TraceReadResult r = parse(
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\",\"levels\":[1,0,1]}\n"
      "{\"ev\":\"tx\",\"t\":0,\"node\":0,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":0}\n"
      "{\"ev\":\"rx\",\"t\":0,\"node\":1,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":0,\"from\":0,\"fp\":1}\n"
      "{\"ev\":\"rx\",\"t\":0,\"node\":2,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":0,\"from\":0,\"fp\":1}\n");
  ASSERT_TRUE(r.ok) << r.error;
  const auto flights = build_lifecycles(r.trace);
  ASSERT_EQ(flights.size(), 1u);
  EXPECT_EQ(flights[0].hops.size(), 1u);
  EXPECT_EQ(flights[0].overheard, 1u);
  EXPECT_TRUE(flights[0].reached_root);
}

// ---------------------------------------------------------------------------
// Conformance auditor end-to-end on real collection runs.

std::string traced_collection_run(std::uint64_t max_events = 0) {
  const Graph g = gen::grid(6, 6);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::ostringstream os;
  telemetry::JsonlOptions opt;
  opt.max_events = max_events;
  telemetry::JsonlTraceSink sink(os, opt);
  CollectionConfig cfg = CollectionConfig::for_graph(g);
  sink.set_protocol("collection");
  sink.set_slot_structure(cfg.slots);
  sink.set_levels(tree.level);
  cfg.trace = &sink;
  Rng rng(0xA11A);
  std::vector<Message> init;
  for (std::uint32_t i = 0; i < 12; ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = static_cast<NodeId>(1 + rng.next_below(g.num_nodes() - 1));
    m.seq = i;
    init.push_back(m);
  }
  run_collection(g, tree, init, cfg, rng.next());
  sink.finish();
  return os.str();
}

TEST(Conformance, FaultFreeCollectionRunCertifies) {
  const TraceReadResult r = parse(traced_collection_run());
  ASSERT_TRUE(r.ok) << r.error;
  const auto flights = build_lifecycles(r.trace);
  const AuditReport audit = audit_trace(r.trace, flights);
  EXPECT_TRUE(audit.pass);
  for (const char* id : {"trace-complete", "ack-certainty", "exactly-once",
                         "prefix-monotone"}) {
    const CheckResult* c = audit.find(id);
    ASSERT_NE(c, nullptr) << id;
    EXPECT_EQ(c->status, CheckStatus::kPass) << id << ": " << c->detail;
  }
  // The statistical checks must have judged real samples, not skipped.
  const CheckResult* adv = audit.find("advance-rate");
  ASSERT_NE(adv, nullptr);
  EXPECT_EQ(adv->status, CheckStatus::kPass) << adv->detail;
  EXPECT_GT(adv->trials, 0u);
  EXPECT_GE(adv->wilson_high, mu_advance());

  // The report document serializes and carries the verdict.
  const AnomalyReport anomalies = scan_anomalies(r.trace);
  const std::string doc = report_json(r.trace, flights, audit, anomalies);
  EXPECT_NE(doc.find("\"radiomc.trace.report/v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"pass\":true"), std::string::npos);
}

TEST(Conformance, CorruptedTraceFailsAckCertainty) {
  // Strip every ack delivery: Thm 3.1's certainty must be violated.
  std::istringstream in(traced_collection_run());
  std::string corrupted, line;
  while (std::getline(in, line))
    if (line.find("\"kind\":\"ack\"") == std::string::npos ||
        line.find("\"ev\":\"rx\"") == std::string::npos)
      corrupted += line + "\n";
  const TraceReadResult r = parse(corrupted);
  ASSERT_TRUE(r.ok) << r.error;
  const auto flights = build_lifecycles(r.trace);
  const AuditReport audit = audit_trace(r.trace, flights);
  EXPECT_FALSE(audit.pass);
  const CheckResult* ack = audit.find("ack-certainty");
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->status, CheckStatus::kFail);
}

TEST(Conformance, TruncatedTraceIsRefused) {
  const TraceReadResult r = parse(traced_collection_run(/*max_events=*/40));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.trace.truncated);
  const auto flights = build_lifecycles(r.trace);
  const AuditReport audit = audit_trace(r.trace, flights);
  EXPECT_FALSE(audit.pass);
  const CheckResult* complete = audit.find("trace-complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->status, CheckStatus::kFail);
  // Every downstream check is skipped, not judged on the prefix.
  for (const char* id : {"ack-certainty", "exactly-once", "advance-rate"}) {
    const CheckResult* c = audit.find(id);
    ASSERT_NE(c, nullptr) << id;
    EXPECT_EQ(c->status, CheckStatus::kSkip) << id;
  }
}

TEST(Conformance, MuAdvanceMatchesTheorem41) {
  const double inv_e = std::exp(-1.0);
  EXPECT_DOUBLE_EQ(mu_advance(), inv_e * (1.0 - inv_e));
  EXPECT_NEAR(mu_advance(), 0.2325, 5e-4);
}

// ---------------------------------------------------------------------------
// Anomaly scanner.

TEST(Anomaly, CleanRunFlagsNothing) {
  const TraceReadResult r = parse(traced_collection_run());
  ASSERT_TRUE(r.ok) << r.error;
  const AnomalyReport rep = scan_anomalies(r.trace);
  EXPECT_TRUE(rep.clean());
  EXPECT_FALSE(rep.levels.empty());
}

TEST(Anomaly, DetectsStallWindow) {
  // Two deliveries 10'000 slots apart with the default threshold.
  const TraceReadResult r = parse(
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\"}\n"
      "{\"ev\":\"rx\",\"t\":0,\"node\":1,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":0}\n"
      "{\"ev\":\"rx\",\"t\":10000,\"node\":1,\"ch\":0,\"kind\":\"data\","
      "\"origin\":0,\"seq\":1}\n");
  ASSERT_TRUE(r.ok) << r.error;
  const AnomalyReport rep = scan_anomalies(r.trace);
  ASSERT_EQ(rep.stalls.size(), 1u);
  EXPECT_EQ(rep.stalls[0].from, 0u);
  EXPECT_EQ(rep.stalls[0].to, 10000u);
  EXPECT_FALSE(rep.clean());
}

}  // namespace
}  // namespace radiomc
