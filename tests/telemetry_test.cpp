// The telemetry subsystem: registry snapshot/JSON round-trip (with a small
// JSON well-formedness checker), the phase timeline produced by a full
// setup run, and a golden-file test of the JSONL trace sink on a tiny
// deterministic topology.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <deque>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "protocols/setup.h"
#include "radio/network.h"
#include "support/rng.h"
#include "telemetry/json_writer.h"
#include "telemetry/jsonl_sink.h"
#include "telemetry/metrics.h"
#include "telemetry/phase_timeline.h"
#include "telemetry/telemetry.h"

namespace radiomc {
namespace {

using telemetry::Labels;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::PhaseTimeline;
using telemetry::Scale;

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON well-formedness checker. It accepts
// exactly RFC 8259 documents (no trailing commas, no bare values outside
// the grammar) and is used to validate every serializer in the subsystem
// without depending on an external parser.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool well_formed(std::string_view json) { return JsonChecker(json).valid(); }

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(well_formed(R"({"a":[1,2.5,-3e2],"b":{"c":"x\n"},"d":null})"));
  EXPECT_TRUE(well_formed("[]"));
  EXPECT_FALSE(well_formed(R"({"a":1,})"));      // trailing comma
  EXPECT_FALSE(well_formed(R"({"a" 1})"));       // missing colon
  EXPECT_FALSE(well_formed(R"(["unterminated)"));
  EXPECT_FALSE(well_formed("{} extra"));
}

TEST(JsonWriter, EscapingAndNonFinite) {
  std::string out;
  telemetry::JsonWriter w(&out);
  w.begin_object();
  w.member("s", "quo\"te\\slash\ncontrol\x01");
  w.member("inf", std::numeric_limits<double>::infinity());
  w.member("nan", std::nan(""));
  w.member("neg", std::int64_t{-7});
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_TRUE(well_formed(out));
  EXPECT_NE(out.find("\\\"te\\\\slash\\n"), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(out.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(out.find("\"neg\":-7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry: lookup-or-create identity, snapshot ordering, JSON round-trip.

TEST(MetricsRegistry, SeriesIdentityAndSnapshot) {
  MetricsRegistry reg;
  reg.counter("engine.slots").inc(10);
  reg.counter("engine.slots").inc(5);  // same series
  reg.counter("engine.slots", {{"protocol", "setup"}}).inc(3);
  reg.gauge("topo.diameter").set(14.0);
  auto& d = reg.distribution("queue", {{"level", "2"}}, Scale::kLinear);
  d.add(1);
  d.add(1);
  d.add(4);

  EXPECT_EQ(reg.size(), 4u);  // two counter series + gauge + distribution

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Sorted by (name, labels): the unlabeled series precedes the labeled one.
  EXPECT_TRUE(snap.counters[0].labels.empty());
  EXPECT_EQ(snap.counters[0].value, 15u);
  ASSERT_EQ(snap.counters[1].labels.size(), 1u);
  EXPECT_EQ(snap.counters[1].labels[0].second, "setup");
  EXPECT_EQ(snap.counters[1].value, 3u);

  ASSERT_EQ(snap.distributions.size(), 1u);
  const auto& de = snap.distributions[0];
  EXPECT_EQ(de.count, 3u);
  EXPECT_DOUBLE_EQ(de.mean, 2.0);
  EXPECT_DOUBLE_EQ(de.min, 1.0);
  EXPECT_DOUBLE_EQ(de.max, 4.0);
  ASSERT_EQ(de.buckets.size(), 2u);  // exact integer buckets, ascending
  EXPECT_EQ(de.buckets[0], (std::pair<std::int64_t, std::uint64_t>{1, 2}));
  EXPECT_EQ(de.buckets[1], (std::pair<std::int64_t, std::uint64_t>{4, 1}));
}

TEST(MetricsRegistry, Log2BucketsAndJson) {
  MetricsRegistry reg;
  auto& d = reg.distribution("slots", {}, Scale::kLog2);
  d.add(0);    // bucket -1 (v <= 0)
  d.add(1);    // bucket 0
  d.add(7);    // bucket 2: [4, 8)
  d.add(8);    // bucket 3: [8, 16)
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.distributions.size(), 1u);
  std::vector<std::pair<std::int64_t, std::uint64_t>> expect = {
      {-1, 1}, {0, 1}, {2, 1}, {3, 1}};
  EXPECT_EQ(snap.distributions[0].buckets, expect);

  const std::string json = reg.to_json();
  EXPECT_TRUE(well_formed(json)) << json;
  EXPECT_NE(json.find("\"scale\":\"log2\""), std::string::npos);
  EXPECT_NE(json.find("[-1,1]"), std::string::npos);
}

TEST(Telemetry, FullDocumentIsWellFormed) {
  telemetry::Telemetry tel;
  tel.metrics.counter("c", {{"weird", "va\"lue\n"}}).inc(1);
  tel.metrics.gauge("g").set(0.25);
  tel.timeline.record("proto", "span", 3, 9, {{"attempt", 1}});
  const std::string json = tel.to_json();
  EXPECT_TRUE(well_formed(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"radiomc.telemetry/v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"phases\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Phase timeline: open/close bookkeeping and the ordering produced by a
// full setup run.

TEST(PhaseTimeline, OpenCloseAndOrder) {
  PhaseTimeline tl;
  const std::size_t i = tl.open("collection", "drain", 5);
  tl.record("collection", "late", 9, 12);
  tl.close(i, 11);
  ASSERT_EQ(tl.spans().size(), 2u);
  EXPECT_EQ(tl.spans()[0].name, "drain");
  EXPECT_EQ(tl.spans()[0].end, 11u);
  EXPECT_EQ(tl.spans()[0].length(), 6u);
  EXPECT_TRUE(well_formed(tl.to_json()));
}

TEST(PhaseTimeline, SetupRunRecordsContiguousEpochSpans) {
  Rng rng(0x7e1);
  const Graph g = gen::grid(4, 4);
  telemetry::Telemetry tel;
  SetupTuning tuning;
  tuning.telemetry = &tel;
  const SetupOutcome out = run_setup(g, rng.next(), tuning);
  ASSERT_TRUE(out.ok);

  // One A..G sextet per attempt, in schedule order, and contiguous: each
  // epoch begins where the previous one ended, and the last recorded span
  // ends exactly at the schedule time the outcome reports.
  const std::vector<std::string> epoch_order = {
      "leader_election", "bfs_verify",   "dfs_graph",
      "dfs_tree",        "final_verify", "completion_flood"};
  const auto& spans = tel.timeline.spans();
  ASSERT_EQ(spans.size(), 6u * out.attempts);
  SlotTime cursor = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    EXPECT_EQ(s.protocol, "setup");
    EXPECT_EQ(s.name, epoch_order[i % 6]);
    EXPECT_EQ(s.begin, cursor) << "gap before span " << i;
    EXPECT_GT(s.end, s.begin);
    cursor = s.end;
    // Every span carries its attempt index.
    bool has_attempt = false;
    for (const auto& [k, v] : s.attrs)
      if (k == "attempt") {
        has_attempt = true;
        EXPECT_EQ(v, static_cast<std::int64_t>(i / 6));
      }
    EXPECT_TRUE(has_attempt);
  }
  EXPECT_EQ(cursor, out.slots);

  // The driver also published its counters and the engine totals.
  const MetricsSnapshot snap = tel.metrics.snapshot();
  bool saw_attempts = false, saw_engine_slots = false;
  for (const auto& c : snap.counters) {
    if (c.name == "setup.attempts") {
      saw_attempts = true;
      EXPECT_EQ(c.value, out.attempts);
    }
    if (c.name == "engine.slots") saw_engine_slots = true;
  }
  EXPECT_TRUE(saw_attempts);
  EXPECT_TRUE(saw_engine_slots);
}

// ---------------------------------------------------------------------------
// JSONL trace sink: golden output on a deterministic path(3) schedule.

/// Transmits scripted messages; schedule[t] < 0 means listen.
class ScriptedTalker final : public Station {
 public:
  NodeId id = 0;
  std::vector<int> schedule;  // value = seq to send (on channel 0)

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t < schedule.size() && schedule[t] >= 0) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = id;
      m.seq = static_cast<std::uint32_t>(schedule[t]);
      tx[0] = m;
    }
  }
  void on_receive(SlotTime, ChannelId, const Message&) override {}
};

TEST(JsonlTraceSink, GoldenEventStream) {
  // path(3): node 0 sends seq 7 in slot 0, node 2 sends seq 9 in slot 1.
  // Node 1 hears both cleanly; nodes 0/2 are out of each other's range.
  const Graph g = gen::path(3);
  std::deque<ScriptedTalker> st(3);
  for (NodeId v = 0; v < 3; ++v) st[v].id = v;
  st[0].schedule = {7, -1};
  st[2].schedule = {-1, 9};
  std::vector<Station*> ptrs{&st[0], &st[1], &st[2]};

  std::ostringstream os;
  telemetry::JsonlTraceSink sink(os);
  RadioNetwork net(g);
  net.set_trace(&sink);
  net.attach(std::move(ptrs));
  net.run(2);
  sink.finish();

  // The v2 stream leads with the schema header (here with no optional
  // context: the sink was given no protocol/slots/levels). The engine
  // stamps the transmitter on delivery, so rx lines carry "from"; the
  // scripted messages have no sender_parent or dest, so "fp"/"dest" are
  // omitted.
  const std::string expected =
      "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\"}\n"
      "{\"ev\":\"tx\",\"t\":0,\"node\":0,\"ch\":0,"
      "\"kind\":\"data\",\"origin\":0,\"seq\":7}\n"
      "{\"ev\":\"rx\",\"t\":0,\"node\":1,\"ch\":0,"
      "\"kind\":\"data\",\"origin\":0,\"seq\":7,\"from\":0}\n"
      "{\"ev\":\"tx\",\"t\":1,\"node\":2,\"ch\":0,"
      "\"kind\":\"data\",\"origin\":2,\"seq\":9}\n"
      "{\"ev\":\"rx\",\"t\":1,\"node\":1,\"ch\":0,"
      "\"kind\":\"data\",\"origin\":2,\"seq\":9,\"from\":2}\n";
  EXPECT_EQ(os.str(), expected);
  EXPECT_EQ(sink.lines_written(), 5u);
  EXPECT_FALSE(sink.truncated());
}

TEST(JsonlTraceSink, CollisionLineAndAggregates) {
  // Both ends of path(3) transmit in slot 0: node 1 records a collision.
  // With a 2-slot aggregate window the sink appends one "agg" line; with
  // events disabled it is the *only* line.
  const Graph g = gen::path(3);
  std::deque<ScriptedTalker> st(3);
  for (NodeId v = 0; v < 3; ++v) st[v].id = v;
  st[0].schedule = {1, -1};
  st[2].schedule = {2, -1};

  {
    std::vector<Station*> ptrs{&st[0], &st[1], &st[2]};
    std::ostringstream os;
    telemetry::JsonlOptions opt;
    opt.aggregate_every = 2;
    telemetry::JsonlTraceSink sink(os, opt);
    RadioNetwork net(g);
    net.set_trace(&sink);
    net.attach(std::move(ptrs));
    net.run(2);
    sink.finish();

    const std::string expected =
        "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\",\"agg\":2}\n"
        "{\"ev\":\"tx\",\"t\":0,\"node\":0,\"ch\":0,"
        "\"kind\":\"data\",\"origin\":0,\"seq\":1}\n"
        "{\"ev\":\"tx\",\"t\":0,\"node\":2,\"ch\":0,"
        "\"kind\":\"data\",\"origin\":2,\"seq\":2}\n"
        "{\"ev\":\"coll\",\"t\":0,\"node\":1,\"ch\":0,\"txn\":2}\n"
        "{\"ev\":\"agg\",\"t0\":0,\"t1\":2,\"tx\":2,\"rx\":0,\"coll\":1,"
        "\"jam\":0}\n";
    EXPECT_EQ(os.str(), expected);
    std::istringstream is(os.str());
    for (std::string line; std::getline(is, line);)
      EXPECT_TRUE(well_formed(line)) << line;
  }

  {
    std::vector<Station*> ptrs{&st[0], &st[1], &st[2]};
    std::ostringstream os;
    telemetry::JsonlOptions opt;
    opt.events = false;
    opt.aggregate_every = 2;
    telemetry::JsonlTraceSink sink(os, opt);
    RadioNetwork net(g);
    net.set_trace(&sink);
    net.attach(std::move(ptrs));
    net.run(2);
    sink.finish();
    EXPECT_EQ(os.str(),
              "{\"ev\":\"schema\",\"v\":\"radiomc.trace/v2\",\"agg\":2}\n"
              "{\"ev\":\"agg\",\"t0\":0,\"t1\":2,\"tx\":2,\"rx\":0,"
              "\"coll\":1,\"jam\":0}\n");
    EXPECT_EQ(sink.lines_written(), 2u);
  }
}

}  // namespace
}  // namespace radiomc
