// Cross-configuration correctness sweeps: the protocols must deliver
// exactly-once / in-order under every combination of their knobs, not just
// the defaults. TEST_P grids over (window, superphase length, channel
// mode) for broadcast and (mod-3, decay length) for collection/p2p.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/point_to_point.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

// ---- broadcast: window x superphase x channel mode ------------------------

using BcastParam = std::tuple<int /*window*/, int /*phases_per_sp*/,
                              int /*mode*/, int /*seed*/>;

class BroadcastConfigSweep : public ::testing::TestWithParam<BcastParam> {};

TEST_P(BroadcastConfigSweep, ExactlyOnceInOrderEverywhere) {
  const auto [window, psp, mode, seed] = GetParam();
  Rng rng(11000 + seed);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = static_cast<std::uint32_t>(window);
  if (psp > 0) cfg.distribution.phases_per_superphase = psp;
  cfg.mode = mode == 0 ? BroadcastServiceConfig::ChannelMode::kSeparate
                       : BroadcastServiceConfig::ChannelMode::kTimeDivision;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 18;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), 300 + i);
  ASSERT_TRUE(svc.run_until_delivered(300'000'000))
      << "window=" << window << " psp=" << psp << " mode=" << mode;
  for (NodeId v = 1; v < 12; ++v) {
    const auto& log = svc.distribution(v).delivery_log();
    ASSERT_EQ(log.size(), static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      EXPECT_EQ(log[i].second, static_cast<std::uint32_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BroadcastConfigSweep,
    ::testing::Combine(::testing::Values(0, 3, 16),   // window (0 = off)
                       ::testing::Values(0, 1, 4),    // psp (0 = default)
                       ::testing::Values(0, 1),       // channel mode
                       ::testing::Values(1, 2)));     // seeds

// ---- collection: gating x decay length ------------------------------------

using CollParam = std::tuple<bool /*mod3*/, int /*decay_mult*/, int /*seed*/>;

class CollectionConfigSweep : public ::testing::TestWithParam<CollParam> {};

TEST_P(CollectionConfigSweep, CompleteAndExactlyOnce) {
  const auto [mod3, mult, seed] = GetParam();
  Rng rng(12000 + seed);
  const Graph g = gen::gnp_connected(16, 0.3, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  CollectionConfig cfg = CollectionConfig::for_graph(g);
  cfg.slots.mod3_gating = mod3;
  cfg.slots.decay_len = std::max(2u, cfg.slots.decay_len * mult / 2);
  std::vector<Message> init;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    for (std::uint32_t s = 0; s < 2; ++s) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = s;
      init.push_back(m);
    }
  const auto out = run_collection(g, tree, init, cfg, rng.next());
  ASSERT_TRUE(out.completed) << "mod3=" << mod3 << " mult=" << mult;
  EXPECT_EQ(out.deliveries.size(), init.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CollectionConfigSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1, 2, 4),  // x0.5, x1, x2 length
                       ::testing::Values(1, 2)));

// ---- p2p: gating x half-duplex engine --------------------------------------

using P2pParam = std::tuple<bool /*mod3*/, int /*seed*/>;

class P2pConfigSweep : public ::testing::TestWithParam<P2pParam> {};

TEST_P(P2pConfigSweep, AllDelivered) {
  const auto [mod3, seed] = GetParam();
  Rng rng(13000 + seed);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  ASSERT_TRUE(prep.ok);
  P2pConfig cfg = P2pConfig::for_graph(g);
  cfg.slots.mod3_gating = mod3;
  std::vector<P2pRequest> reqs;
  for (int i = 0; i < 40; ++i)
    reqs.push_back({static_cast<NodeId>(rng.next_below(16)),
                    static_cast<NodeId>(rng.next_below(16)),
                    static_cast<std::uint64_t>(i)});
  const auto out = run_point_to_point(g, prep, reqs, cfg, rng.next());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, reqs.size());
}

INSTANTIATE_TEST_SUITE_P(Grid, P2pConfigSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace radiomc
