// Long-running soak tests: sustained load through the full stacks, meant
// to shake out slow state leaks, wraparound bugs, and rare orderings that
// short tests miss. Still fast in absolute terms (a few seconds).

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/steady_state.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "radio/schedule.h"
#include "service/certify.h"
#include "service/service.h"
#include "support/rng.h"

namespace radiomc {
namespace {

TEST(Soak, BroadcastHundredsThroughTinyWindow) {
  // 300 broadcasts through W = 4: the wire numbering wraps ~19 times, the
  // checkpoint base advances 70+ times, and the drain guard gets exercised
  // constantly. Everything must still be exactly-once in-order everywhere.
  Rng rng(0x50AC);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 4;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 300;
  int injected = 0;
  // Staggered injection to keep the window under continuous pressure.
  while (injected < k) {
    for (int burst = 0; burst < 5 && injected < k; ++burst)
      svc.broadcast(static_cast<NodeId>(rng.next_below(12)), injected++);
    for (int s = 0; s < 1500; ++s) svc.step();
  }
  ASSERT_TRUE(svc.run_until_delivered(500'000'000));
  for (NodeId v = 1; v < 12; ++v) {
    const auto& log = svc.distribution(v).delivery_log();
    ASSERT_EQ(log.size(), static_cast<std::size_t>(k)) << "node " << v;
    for (int i = 0; i < k; ++i)
      ASSERT_EQ(log[i].second, static_cast<std::uint32_t>(i));
  }
}

TEST(Soak, LossyWindowedLongRun) {
  Rng rng(0x50AD);
  const Graph g = gen::path(8);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 6;
  cfg.distribution.phases_per_superphase = 1;  // heavy per-hop loss
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 120;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(8)), i);
  ASSERT_TRUE(svc.run_until_delivered(500'000'000));
  for (NodeId v = 1; v < 8; ++v)
    EXPECT_EQ(svc.distribution(v).delivered_prefix(),
              static_cast<std::uint32_t>(k));
}

TEST(Soak, OpenSystemHighLoadStaysStable) {
  // lambda close to mu: queues build but must not diverge (the system is
  // still subcritical); the run ends with the backlog drained to O(model).
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto out = run_collection_steady_state(
      g, tree, 0.95 * 0.2325, /*phases=*/30'000, /*warmup=*/5'000, 0x50AE);
  EXPECT_GT(out.delivered, 5'000u);
  // Population stays bounded (far below the total injected).
  EXPECT_LT(out.population.mean(), 50.0);
}

TEST(Soak, ServeMillionSlotCertifiedSoak) {
  // The E17 smoke at test scale: a full-length service soak (>= 10^6
  // engine slots) at half the Theorem 4.1 advance rate must certify clean
  // — sustained throughput, bounded sojourn, exactly-once, bounded queues.
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const double mu = queueing::mu_decay();
  const std::uint64_t spp =
      PhaseClock(CollectionConfig::for_graph(g).slots).slots_per_phase();

  service::ServeConfig cfg;
  cfg.arrival.kind = service::ArrivalKind::kBernoulli;
  cfg.arrival.rate = 0.5 * mu;
  cfg.warmup_phases = 2'000;
  cfg.phases = 1'000'000 / spp + 1;
  const service::ServeOutcome out = service::run_service(g, tree, cfg, 0xE17);
  EXPECT_GE(out.slots, 1'000'000u);
  EXPECT_EQ(out.duplicates, 0u);
  EXPECT_EQ(out.status, RunStatus::kOk);

  const service::SoakVerdict v = service::certify_soak(
      out, cfg.arrival.mean_rate(), mu, tree.depth, service::CertifyConfig{});
  EXPECT_TRUE(v.pass) << v.to_json();
}

}  // namespace
}  // namespace radiomc
