// Graph serialization: DOT export shape, edge-list round trip, and the
// tree-aware DOT overlay.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

TEST(GraphIo, DotContainsEveryNodeAndEdge) {
  const Graph g = gen::path(4);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph radiomc"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("2 -- 3"), std::string::npos);
}

TEST(GraphIo, TreeDotMarksRootAndNonTreeEdges) {
  const Graph g = gen::cycle(5);
  const BfsTree tree = oracle_bfs_tree(g, 2);
  const std::string dot = tree_to_dot(g, tree);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // the chord
  EXPECT_NE(dot.find("(0)"), std::string::npos);           // root level
}

TEST(GraphIo, EdgeListRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    const Graph g = gen::gnp_connected(15, 0.25, rng);
    const Graph back = from_edge_list(to_edge_list(g));
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_EQ(back.edge_list(), g.edge_list());
  }
}

TEST(GraphIo, EdgeListParsingDetails) {
  const Graph g = from_edge_list(
      "# a comment\n"
      "n 4\n"
      "0 1\n"
      "\n"
      "1 2  # trailing comment\n"
      "2 3\n");
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIo, EdgeListRejectsGarbage) {
  EXPECT_THROW(from_edge_list(""), std::invalid_argument);
  EXPECT_THROW(from_edge_list("0 1\n"), std::invalid_argument);  // no header
  EXPECT_THROW(from_edge_list("n 3\n0\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list("n 3\n0 1 2\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list("n 2\n0 5\n"), std::invalid_argument);
}

TEST(GraphIo, EmptyGraph) {
  const Graph g = from_edge_list("n 0\n");
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(to_edge_list(g), "n 0\n");
}

}  // namespace
}  // namespace radiomc
