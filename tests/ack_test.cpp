// Theorem 3.1 — the deterministic acknowledgement mechanism.
//
// "Let v be a node that received a message from node u using the above
// protocol; then u receives an acknowledgement."
//
// We test it three ways:
//  1. the exact Figure 1 scenario from the proof, exhaustively over who
//     transmits;
//  2. a randomized property sweep: arbitrary graphs, arbitrary sender sets
//     with designated neighbor receivers (the theorem's precondition:
//     distinct destinations among simultaneously received messages), the
//     invariant checked after every data/ack slot pair;
//  3. end-to-end through the collection protocol: messages are never lost
//     and never duplicated (exactly-once), which is precisely what the
//     theorem buys (§4.1: "messages exist on exactly one buffer").

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "radio/network.h"
#include "support/rng.h"

namespace radiomc {
namespace {

/// Raw §3 mechanics: in slot 0 every sender transmits a data message
/// "designated to" its chosen receiver; in slot 1 every node that received
/// a message designated to it transmits an ack naming the data's sender.
class AckProbe final : public Station {
 public:
  NodeId me = 0;
  bool sends = false;
  NodeId designated = kNoNode;  // receiver of my data message

  bool got_data = false;
  NodeId data_from = kNoNode;
  bool got_ack = false;

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t == 0 && sends) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = me;
      m.dest = designated;
      tx[0] = m;
    } else if (t == 1 && got_data) {
      Message ack;
      ack.kind = MsgKind::kAck;
      ack.dest = data_from;
      tx[0] = ack;
    }
  }

  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    if (t == 0 && m.kind == MsgKind::kData && m.dest == me) {
      got_data = true;
      data_from = m.sender;
    } else if (t == 1 && m.kind == MsgKind::kAck && m.dest == me) {
      got_ack = true;
    }
  }
};

struct AckWorld {
  std::deque<AckProbe> probes;
  std::unique_ptr<RadioNetwork> net;

  explicit AckWorld(const Graph& g) {
    std::vector<Station*> ptrs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      probes.emplace_back();
      probes.back().me = v;
      ptrs.push_back(&probes.back());
    }
    net = std::make_unique<RadioNetwork>(g);
    net->attach(std::move(ptrs));
  }

  void run_pair() { net->run(2); }

  /// The Theorem 3.1 invariant.
  void check_invariant() const {
    for (const auto& p : probes) {
      if (!p.sends) continue;
      const AckProbe& receiver = probes[p.designated];
      if (receiver.got_data && receiver.data_from == p.me) {
        EXPECT_TRUE(p.got_ack)
            << "sender " << p.me << " -> " << p.designated
            << " was received but not acknowledged";
      }
    }
  }
};

TEST(AckTheorem, Figure1ScenarioExhaustive) {
  // Figure 1: u - v, u' - v', and the cross edges u - v' and u' - v that
  // make the proof's contradiction bite. Nodes: u=0, v=1, u'=2, v'=3.
  const Graph g(4, {{0, 1}, {2, 3}, {0, 3}, {2, 1}});
  // Exhaust all subsets of {u, u'} transmitting to their designated nodes.
  for (int mask = 1; mask < 4; ++mask) {
    AckWorld w(g);
    if (mask & 1) {
      w.probes[0].sends = true;
      w.probes[0].designated = 1;
    }
    if (mask & 2) {
      w.probes[2].sends = true;
      w.probes[2].designated = 3;
    }
    w.run_pair();
    w.check_invariant();
    if (mask == 3) {
      // Both transmit: v and v' each have two transmitting neighbors, so
      // neither receives — the conflict case the proof rules out.
      EXPECT_FALSE(w.probes[1].got_data);
      EXPECT_FALSE(w.probes[3].got_data);
    } else {
      // A single transmitter is always received and always acknowledged.
      const NodeId rx = (mask == 1) ? 1 : 3;
      const NodeId snd = (mask == 1) ? 0 : 2;
      EXPECT_TRUE(w.probes[rx].got_data);
      EXPECT_TRUE(w.probes[snd].got_ack);
    }
  }
}

class AckProperty : public ::testing::TestWithParam<int> {};

TEST_P(AckProperty, RandomScenariosSatisfyTheorem) {
  Rng rng(5000 + GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const NodeId n = static_cast<NodeId>(6 + rng.next_below(20));
    const Graph g = gen::gnp_connected(n, 0.25, rng);

    // Random sender set with designated neighbor receivers. The theorem's
    // precondition: distinct destinations of *successfully received*
    // messages — guaranteed by making all designated receivers distinct
    // and non-senders.
    AckWorld w(g);
    std::set<NodeId> used;
    for (NodeId v = 0; v < n; ++v) {
      if (!rng.bernoulli(0.4)) continue;
      if (used.contains(v)) continue;
      const auto nb = g.neighbors(v);
      std::vector<NodeId> candidates;
      for (NodeId u : nb)
        if (!used.contains(u) && !w.probes[u].sends) candidates.push_back(u);
      if (candidates.empty()) continue;
      const NodeId dest = candidates[rng.next_below(candidates.size())];
      if (w.probes[dest].sends) continue;
      w.probes[v].sends = true;
      w.probes[v].designated = dest;
      used.insert(v);
      used.insert(dest);
    }
    w.run_pair();
    w.check_invariant();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AckProperty, ::testing::Range(0, 5));

// End-to-end: collection with acks is exactly-once even under heavy
// contention (many messages, dense graph).
class CollectionExactlyOnce : public ::testing::TestWithParam<int> {};

TEST_P(CollectionExactlyOnce, NoLossNoDuplication) {
  Rng rng(7000 + GetParam());
  const Graph g = gen::gnp_connected(24, 0.3, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);

  std::vector<Message> init;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    for (std::uint32_t s = 0; s < 3; ++s) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = s;
      m.payload = v * 100 + s;
      init.push_back(m);
    }
  }
  const auto out = run_collection(g, tree, init,
                                  CollectionConfig::for_graph(g),
                                  900 + GetParam());
  ASSERT_TRUE(out.completed);
  std::map<std::pair<NodeId, std::uint32_t>, int> counts;
  for (const auto& d : out.deliveries)
    ++counts[{d.msg.origin, d.msg.seq}];
  EXPECT_EQ(counts.size(), init.size());
  for (const auto& [key, c] : counts) EXPECT_EQ(c, 1);
  // Payload integrity.
  for (const auto& d : out.deliveries)
    EXPECT_EQ(d.msg.payload, d.msg.origin * 100 + d.msg.seq);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectionExactlyOnce, ::testing::Range(0, 6));

}  // namespace
}  // namespace radiomc
