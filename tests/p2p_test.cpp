// Point-to-point transmission (§5): correct delivery for arbitrary pairs,
// exactly-once, LCA turning, self-addressing, heavy concurrent load, and
// behaviour with and without the mod-3 gating.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/dfs_numbering.h"
#include "protocols/point_to_point.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

PreparationResult prepare(const Graph& g, NodeId root) {
  const BfsTree tree = oracle_bfs_tree(g, root);
  PreparationResult prep = run_preparation(g, tree);
  EXPECT_TRUE(prep.ok);
  return prep;
}

class P2pSweep : public ::testing::TestWithParam<int> {};

TEST_P(P2pSweep, RandomPairsAllDelivered) {
  Rng rng(700 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(14));
  graphs.push_back(gen::grid(4, 5));
  graphs.push_back(gen::gnp_connected(24, 0.25, rng));
  graphs.push_back(gen::star(12));
  for (const Graph& g : graphs) {
    const PreparationResult prep = prepare(g, 0);
    std::vector<P2pRequest> reqs;
    for (int i = 0; i < 30; ++i) {
      P2pRequest r;
      r.src = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      r.dst = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      r.payload = 10'000 + i;
      reqs.push_back(r);
    }
    const auto out = run_point_to_point(g, prep, reqs,
                                        P2pConfig::for_graph(g), rng.next());
    ASSERT_TRUE(out.completed) << "n=" << g.num_nodes();
    EXPECT_EQ(out.delivered, reqs.size());
    for (auto s : out.delivery_slot) EXPECT_NE(s, static_cast<SlotTime>(-1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, P2pSweep, ::testing::Range(0, 5));

TEST(P2p, AllPairsOnSmallGraph) {
  Rng rng(71);
  const Graph g = gen::gnp_connected(10, 0.35, rng);
  const PreparationResult prep = prepare(g, 4);
  std::vector<P2pRequest> reqs;
  for (NodeId s = 0; s < g.num_nodes(); ++s)
    for (NodeId d = 0; d < g.num_nodes(); ++d)
      reqs.push_back({s, d, static_cast<std::uint64_t>(s) * 100 + d});
  const auto out = run_point_to_point(g, prep, reqs,
                                      P2pConfig::for_graph(g), 72);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, reqs.size());
}

TEST(P2p, SelfAddressedIsInstant) {
  const Graph g = gen::path(6);
  const PreparationResult prep = prepare(g, 0);
  const auto out = run_point_to_point(g, prep, {{3, 3, 9}},
                                      P2pConfig::for_graph(g), 73);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.slots, 0u);
}

TEST(P2p, DescentOnlyWhenDestInSubtree) {
  // src = root: the message never goes up, only down.
  const Graph g = gen::path(10);
  const PreparationResult prep = prepare(g, 0);
  const auto out = run_point_to_point(g, prep, {{0, 9, 1}},
                                      P2pConfig::for_graph(g), 74);
  ASSERT_TRUE(out.completed);
  EXPECT_GT(out.slots, 0u);
}

TEST(P2p, AscentOnlyWhenDestIsAncestor) {
  const Graph g = gen::path(10);
  const PreparationResult prep = prepare(g, 0);
  const auto out = run_point_to_point(g, prep, {{9, 0, 1}},
                                      P2pConfig::for_graph(g), 75);
  ASSERT_TRUE(out.completed);
}

TEST(P2p, SiblingRouteTurnsAtLca) {
  // Star: any leaf-to-leaf route must pass the hub (the LCA) and arrive.
  const Graph g = gen::star(8);
  const PreparationResult prep = prepare(g, 0);
  std::vector<P2pRequest> reqs;
  for (NodeId l = 1; l < 8; ++l)
    reqs.push_back({l, static_cast<NodeId>(l % 7 + 1), l});
  const auto out = run_point_to_point(g, prep, reqs,
                                      P2pConfig::for_graph(g), 76);
  ASSERT_TRUE(out.completed);
}

TEST(P2p, PayloadsSurviveRouting) {
  Rng rng(77);
  const Graph g = gen::grid(3, 5);
  const PreparationResult prep = prepare(g, 7);
  std::vector<P2pRequest> reqs{{0, 14, 0xdeadbeef}, {14, 0, 0xfeedface}};
  // Drive manually to inspect sinks: reuse the driver and then check via
  // delivery slots only (payload checking is covered by the ranking test
  // end-to-end); here assert both complete on distinct routes.
  const auto out = run_point_to_point(g, prep, reqs,
                                      P2pConfig::for_graph(g), 78);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 2u);
}

TEST(P2p, HeavyConcurrentLoadCompletes) {
  Rng rng(79);
  const Graph g = gen::grid(4, 4);
  const PreparationResult prep = prepare(g, 0);
  std::vector<P2pRequest> reqs;
  for (int i = 0; i < 200; ++i)
    reqs.push_back({static_cast<NodeId>(rng.next_below(16)),
                    static_cast<NodeId>(rng.next_below(16)),
                    static_cast<std::uint64_t>(i)});
  const auto out = run_point_to_point(g, prep, reqs,
                                      P2pConfig::for_graph(g), 80);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered, 200u);
}

TEST(P2p, WorksWithoutMod3Gating) {
  Rng rng(81);
  const Graph g = gen::grid(4, 4);
  const PreparationResult prep = prepare(g, 0);
  P2pConfig cfg = P2pConfig::for_graph(g);
  cfg.slots.mod3_gating = false;
  std::vector<P2pRequest> reqs;
  for (int i = 0; i < 40; ++i)
    reqs.push_back({static_cast<NodeId>(rng.next_below(16)),
                    static_cast<NodeId>(rng.next_below(16)),
                    static_cast<std::uint64_t>(i)});
  const auto out = run_point_to_point(g, prep, reqs, cfg, 82);
  ASSERT_TRUE(out.completed);
}

// §5.4: amortized cost per message is O(log Delta) — doubling k roughly
// doubles completion (see bench E5 for the precise series).
TEST(P2p, ThroughputScalesWithK) {
  Rng rng(83);
  const Graph g = gen::grid(4, 4);
  const PreparationResult prep = prepare(g, 0);
  auto make = [&](int k) {
    std::vector<P2pRequest> reqs;
    for (int i = 0; i < k; ++i)
      reqs.push_back({static_cast<NodeId>(rng.next_below(16)),
                      static_cast<NodeId>(rng.next_below(16)),
                      static_cast<std::uint64_t>(i)});
    return reqs;
  };
  OnlineStats t50, t100;
  for (int rep = 0; rep < 3; ++rep) {
    t50.add(static_cast<double>(
        run_point_to_point(g, prep, make(50), P2pConfig::for_graph(g),
                           rng.next())
            .slots));
    t100.add(static_cast<double>(
        run_point_to_point(g, prep, make(100), P2pConfig::for_graph(g),
                           rng.next())
            .slots));
  }
  EXPECT_LT(t100.mean() / t50.mean(), 3.0);
}

}  // namespace
}  // namespace radiomc
