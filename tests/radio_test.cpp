// Tests for the radio engine: the §1.1 collision rule (receive iff exactly
// one transmitting neighbor, no collision detection), multi-channel
// independence, half-duplex configuration, the mux adapters, and the
// PhaseClock slot algebra of §2.2/§3.

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "graph/generators.h"
#include "radio/network.h"
#include "radio/schedule.h"
#include "radio/station.h"

namespace radiomc {
namespace {

/// Transmits a fixed payload on a fixed channel in scripted slots; records
/// everything received.
class Scripted final : public Station {
 public:
  ChannelId tx_channel = 0;
  std::vector<bool> tx_slots;  // indexed by slot
  std::uint64_t payload = 0;
  std::vector<std::tuple<SlotTime, ChannelId, std::uint64_t>> received;

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t < tx_slots.size() && tx_slots[t]) {
      Message m;
      m.payload = payload;
      tx[tx_channel] = m;
    }
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    received.emplace_back(t, ch, m.payload);
  }
};

struct Net {
  std::deque<Scripted> stations;
  std::unique_ptr<RadioNetwork> net;

  Net(const Graph& g, RadioNetwork::Config cfg = {}) {
    std::vector<Station*> ptrs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      stations.emplace_back();
      ptrs.push_back(&stations.back());
    }
    net = std::make_unique<RadioNetwork>(g, cfg);
    net->attach(std::move(ptrs));
  }
};

TEST(RadioEngine, SingleTransmitterIsHeardByAllNeighbors) {
  const Graph g = gen::star(5);  // hub 0
  Net n(g);
  n.stations[1].tx_slots = {true};
  n.stations[1].payload = 77;
  n.net->step();
  ASSERT_EQ(n.stations[0].received.size(), 1u);
  EXPECT_EQ(std::get<2>(n.stations[0].received[0]), 77u);
  // Leaves 2..4 are not neighbors of 1.
  for (int v = 2; v <= 4; ++v) EXPECT_TRUE(n.stations[v].received.empty());
  EXPECT_EQ(n.net->metrics().deliveries, 1u);
  EXPECT_EQ(n.net->metrics().transmissions, 1u);
}

TEST(RadioEngine, TwoTransmittersCollideSilently) {
  const Graph g = gen::star(4);
  Net n(g);
  n.stations[1].tx_slots = {true};
  n.stations[2].tx_slots = {true};
  n.net->step();
  // Hub hears nothing and is NOT told a collision happened.
  EXPECT_TRUE(n.stations[0].received.empty());
  EXPECT_EQ(n.net->metrics().collision_events, 1u);
  EXPECT_EQ(n.net->metrics().deliveries, 0u);
}

TEST(RadioEngine, TransmitterDoesNotHearItself) {
  const Graph g = gen::path(2);
  Net n(g);
  n.stations[0].tx_slots = {true};
  n.net->step();
  EXPECT_TRUE(n.stations[0].received.empty());
  EXPECT_EQ(n.stations[1].received.size(), 1u);
}

TEST(RadioEngine, TransmitterCannotReceiveOnSameChannel) {
  // 0 - 1 - 2 path; 0 and 1 both transmit: 1 is busy transmitting, so it
  // misses 0's message even though 0 is its only transmitting neighbor...
  const Graph g = gen::path(3);
  Net n(g);
  n.stations[0].tx_slots = {true};
  n.stations[1].tx_slots = {true};
  n.net->step();
  EXPECT_TRUE(n.stations[1].received.empty());
  // ...while 2 hears 1 fine.
  EXPECT_EQ(n.stations[2].received.size(), 1u);
}

TEST(RadioEngine, SenderFieldIsStamped) {
  const Graph g = gen::path(2);
  // Claim a bogus sender; the radio layer must overwrite it.
  class Liar final : public Station {
   public:
    bool sends = false;
    std::vector<Message> got;
    void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
      if (t == 0 && sends) {
        Message m;
        m.sender = 999;
        tx[0] = m;
      }
    }
    void on_receive(SlotTime, ChannelId, const Message& m) override {
      got.push_back(m);
    }
  };
  std::deque<Liar> liars(2);
  liars[0].sends = true;
  RadioNetwork net(g);
  net.attach({&liars[0], &liars[1]});
  net.step();
  ASSERT_EQ(liars[1].got.size(), 1u);
  EXPECT_EQ(liars[1].got[0].sender, 0u);
}

TEST(RadioEngine, ChannelsAreIndependent) {
  const Graph g = gen::complete(3);
  RadioNetwork::Config cfg;
  cfg.num_channels = 2;
  Net n(g, cfg);
  n.stations[0].tx_slots = {true};
  n.stations[0].tx_channel = 0;
  n.stations[0].payload = 10;
  n.stations[1].tx_slots = {true};
  n.stations[1].tx_channel = 1;
  n.stations[1].payload = 20;
  n.net->step();
  // Node 2 listens on both channels and hears both messages.
  ASSERT_EQ(n.stations[2].received.size(), 2u);
  // Node 0 transmits on ch0, still hears ch1 (separate transceivers).
  ASSERT_EQ(n.stations[0].received.size(), 1u);
  EXPECT_EQ(std::get<1>(n.stations[0].received[0]), 1u);
  EXPECT_EQ(std::get<2>(n.stations[0].received[0]), 20u);
}

TEST(RadioEngine, StrictHalfDuplexMutesCrossChannelRx) {
  const Graph g = gen::complete(3);
  RadioNetwork::Config cfg;
  cfg.num_channels = 2;
  cfg.rx_while_tx_other = false;
  Net n(g, cfg);
  n.stations[0].tx_slots = {true};
  n.stations[0].tx_channel = 0;
  n.stations[1].tx_slots = {true};
  n.stations[1].tx_channel = 1;
  n.net->step();
  EXPECT_TRUE(n.stations[0].received.empty());
  EXPECT_TRUE(n.stations[1].received.empty());
  EXPECT_EQ(n.stations[2].received.size(), 2u);
}

TEST(RadioEngine, MetricsCount) {
  const Graph g = gen::complete(4);
  Net n(g);
  for (int v = 0; v < 3; ++v) n.stations[v].tx_slots = {true, false, true};
  n.net->run(3);
  EXPECT_EQ(n.net->metrics().slots, 3u);
  EXPECT_EQ(n.net->metrics().transmissions, 6u);
}

// --- SubStation adapters ---------------------------------------------------

class EchoSub final : public SubStation {
 public:
  std::vector<SlotTime> polled, delivered_at, ticked;
  bool transmit_always = false;
  std::optional<Message> poll(SlotTime t) override {
    polled.push_back(t);
    if (!transmit_always) return std::nullopt;
    Message m;
    m.payload = 1;
    return m;
  }
  void deliver(SlotTime t, const Message&) override {
    delivered_at.push_back(t);
  }
  void tick(SlotTime t) override { ticked.push_back(t); }
};

TEST(Adapters, TimeDivisionSplitsSlots) {
  const Graph g = gen::path(2);
  EchoSub a0, b0, a1, b1;
  a0.transmit_always = true;  // sub 0 of node 0 transmits in its virtual slots
  TimeDivisionStation s0({&a0, &b0});
  TimeDivisionStation s1({&a1, &b1});
  RadioNetwork net(g);
  net.attach({&s0, &s1});
  net.run(6);
  // Sub a sees virtual times 0,1,2 (physical 0,2,4); sub b same (1,3,5).
  EXPECT_EQ(a0.polled, (std::vector<SlotTime>{0, 1, 2}));
  EXPECT_EQ(b0.polled, (std::vector<SlotTime>{0, 1, 2}));
  // Node 1's sub a heard node 0's sub a (physical even slots only).
  EXPECT_EQ(a1.delivered_at.size(), 3u);
  EXPECT_TRUE(b1.delivered_at.empty());
}

TEST(Adapters, ChannelMuxRoutesByChannel) {
  const Graph g = gen::path(2);
  EchoSub a0, b0, a1, b1;
  b0.transmit_always = true;  // node 0 transmits on channel 1
  ChannelMuxStation s0({&a0, &b0});
  ChannelMuxStation s1({&a1, &b1});
  RadioNetwork::Config cfg;
  cfg.num_channels = 2;
  RadioNetwork net(g, cfg);
  net.attach({&s0, &s1});
  net.run(4);
  EXPECT_TRUE(a1.delivered_at.empty());
  EXPECT_EQ(b1.delivered_at.size(), 4u);
  EXPECT_EQ(a0.polled.size(), 4u);  // both subs advance every slot
}

// --- PhaseClock ------------------------------------------------------------

TEST(PhaseClock, FullStructureDecodes) {
  SlotStructure s;
  s.decay_len = 4;
  s.ack_subslots = true;
  s.mod3_gating = true;
  PhaseClock c(s);
  EXPECT_EQ(c.slots_per_phase(), 4u * 3 * 2);

  // Slot 0: phase 0, step 0, residue 0, data.
  auto i0 = c.decode(0);
  EXPECT_EQ(i0.phase, 0u);
  EXPECT_EQ(i0.decay_step, 0u);
  EXPECT_EQ(i0.residue, 0u);
  EXPECT_FALSE(i0.is_ack);
  // Slot 1: its ack twin.
  auto i1 = c.decode(1);
  EXPECT_TRUE(i1.is_ack);
  EXPECT_EQ(i1.residue, 0u);
  EXPECT_EQ(i1.decay_step, 0u);
  // Slot 2: residue 1 data.
  auto i2 = c.decode(2);
  EXPECT_FALSE(i2.is_ack);
  EXPECT_EQ(i2.residue, 1u);
  // After all residues, the decay step advances.
  auto i6 = c.decode(6);
  EXPECT_EQ(i6.decay_step, 1u);
  EXPECT_EQ(i6.residue, 0u);
  // A full phase later.
  auto ip = c.decode(c.slots_per_phase());
  EXPECT_EQ(ip.phase, 1u);
  EXPECT_EQ(ip.decay_step, 0u);
}

TEST(PhaseClock, LevelGating) {
  SlotStructure s;
  s.decay_len = 2;
  PhaseClock c(s);
  const auto data_r1 = c.decode(2);  // residue 1 data slot
  EXPECT_TRUE(c.level_may_send_data(data_r1, 1));
  EXPECT_TRUE(c.level_may_send_data(data_r1, 4));
  EXPECT_FALSE(c.level_may_send_data(data_r1, 0));
  EXPECT_FALSE(c.level_may_send_data(data_r1, 2));
  const auto ack = c.decode(3);
  EXPECT_FALSE(c.level_may_send_data(ack, 1));
}

TEST(PhaseClock, NoGatingNoAcks) {
  SlotStructure s;
  s.decay_len = 6;
  s.ack_subslots = false;
  s.mod3_gating = false;
  PhaseClock c(s);
  EXPECT_EQ(c.slots_per_phase(), 6u);
  for (SlotTime t = 0; t < 12; ++t) {
    const auto i = c.decode(t);
    EXPECT_FALSE(i.is_ack);
    EXPECT_TRUE(c.level_may_send_data(i, t % 7));
    EXPECT_EQ(i.phase, t / 6);
    EXPECT_EQ(i.decay_step, t % 6);
  }
}

TEST(PhaseClock, EveryLevelGetsEveryDecayStepOncePerPhase) {
  SlotStructure s;
  s.decay_len = 4;
  PhaseClock c(s);
  for (std::uint32_t level = 0; level < 5; ++level) {
    std::vector<int> step_seen(4, 0);
    for (SlotTime t = 0; t < c.slots_per_phase(); ++t) {
      const auto i = c.decode(t);
      if (c.level_may_send_data(i, level)) ++step_seen[i.decay_step];
    }
    for (int cnt : step_seen) EXPECT_EQ(cnt, 1);
  }
}

}  // namespace
}  // namespace radiomc
