// The queueing analysis (§4.2-4.3): closed forms, the Hsu-Burke stationary
// law and Bernoulli departures (Thm 4.2), Little's law, Theorem 4.3's
// completion formula for model 4, and Theorem 4.15's domination chain
// E[T1] <= E[T2] <= E[T3] <= E[T4].

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "queueing/bernoulli_server.h"
#include "queueing/models.h"
#include "queueing/tandem.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

using namespace radiomc::queueing;

TEST(Analysis, MuDecayValue) {
  EXPECT_NEAR(mu_decay(), std::exp(-1.0) * (1 - std::exp(-1.0)), 1e-12);
  EXPECT_NEAR(mu_decay(), 0.23254, 1e-4);
}

TEST(Analysis, HsuBurkePmfSumsToOne) {
  for (double mu : {0.3, 0.6, 0.9}) {
    for (double frac : {0.25, 0.5, 0.8}) {
      const double lambda = mu * frac;
      double sum = 0;
      for (std::uint32_t j = 0; j < 4000; ++j)
        sum += hsu_burke_pj(lambda, mu, j);
      EXPECT_NEAR(sum, 1.0, 1e-9) << "mu=" << mu << " lambda=" << lambda;
    }
  }
}

TEST(Analysis, HsuBurkeMeanMatchesFormula) {
  const double mu = 0.5, lambda = 0.3;
  double mean = 0;
  for (std::uint32_t j = 1; j < 4000; ++j)
    mean += j * hsu_burke_pj(lambda, mu, j);
  EXPECT_NEAR(mean, mean_queue_length(lambda, mu), 1e-9);
}

TEST(Analysis, LittlesLaw) {
  const double mu = 0.4, lambda = 0.2;
  EXPECT_NEAR(mean_wait(lambda, mu),
              mean_queue_length(lambda, mu) / lambda, 1e-12);
}

TEST(Analysis, RejectsBadRates) {
  EXPECT_THROW(hsu_burke_pj(0.5, 0.3, 0), std::invalid_argument);
  EXPECT_THROW(mean_wait(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(mean_queue_length(0.3, 1.5), std::invalid_argument);
}

TEST(Server, StationaryDistributionMatchesHsuBurke) {
  const double mu = 0.5, lambda = 0.25;
  BernoulliServer srv(lambda, mu, Rng(101));
  const auto stats = srv.run(20'000, 400'000);
  for (std::uint32_t j = 0; j <= 4; ++j) {
    const double emp = stats.queue_lengths.pmf(j);
    EXPECT_NEAR(emp, hsu_burke_pj(lambda, mu, j), 0.01) << "j=" << j;
  }
  EXPECT_NEAR(stats.queue_lengths.mean(), mean_queue_length(lambda, mu),
              0.05);
}

TEST(Server, DeparturesAreBernoulliLambda) {
  // Thm 4.2: the departure process converges to Bernoulli(lambda): the
  // rate is lambda and consecutive departures occur at rate lambda^2.
  const double mu = 0.6, lambda = 0.3;
  BernoulliServer srv(lambda, mu, Rng(102));
  const auto stats = srv.run(20'000, 500'000);
  const double rate =
      static_cast<double>(stats.departures) / stats.steps;
  EXPECT_NEAR(rate, lambda, 0.01);
  const double pair_rate =
      static_cast<double>(stats.consecutive_departures) / stats.steps;
  EXPECT_NEAR(pair_rate, lambda * lambda, 0.01);
}

TEST(Tandem, ConservesCustomers) {
  Rng rng(103);
  TandemQueue q(5, 0.5, rng.split(1));
  q.set_initial({3, 1, 4, 1, 5});
  const std::uint64_t total = q.total_in_system();
  std::uint64_t steps = 0;
  while (q.total_in_system() > 0 && steps < 100'000) {
    q.step(0.0);
    ++steps;
  }
  EXPECT_EQ(q.sink_count(), total);
}

TEST(Tandem, OneHopPerStep) {
  // A single customer at the far end of a depth-D tandem with mu = 1 needs
  // exactly D steps (unit speed).
  Rng rng(104);
  TandemQueue q(7, 1.0, rng.split(2));
  std::vector<std::uint64_t> init(7, 0);
  init[6] = 1;
  q.set_initial(init);
  int steps = 0;
  while (q.sink_count() == 0) {
    q.step(0.0);
    ++steps;
  }
  EXPECT_EQ(steps, 7);
}

TEST(Tandem, LittlesLawSojournPerStage) {
  // E(T) = N/lambda = (1-lambda)/(mu-lambda) steps at every stage.
  Rng rng(1040);
  const double mu = 0.5, lambda = 0.25;
  TandemQueue q(4, mu, rng.split(9));
  q.enable_sojourn();
  for (int i = 0; i < 50'000; ++i) q.step(lambda);  // warm up
  // The stats accumulated during warmup start from empty queues; run long
  // enough that the transient washes out of the mean.
  for (int i = 0; i < 600'000; ++i) q.step(lambda);
  const double predicted = mean_wait(lambda, mu);  // = 3.0
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_NEAR(q.sojourn(s).mean(), predicted, 0.12) << "stage " << s;
}

TEST(Tandem, SojournTracksInitialPlacement) {
  Rng rng(1041);
  TandemQueue q(3, 1.0, rng.split(1));
  q.enable_sojourn();
  q.set_initial({0, 0, 1});
  for (int i = 0; i < 3; ++i) q.step(0.0);
  EXPECT_EQ(q.sink_count(), 1u);
  // mu = 1: one step of waiting per stage from the stamp conventions.
  EXPECT_EQ(q.sojourn(2).count(), 1u);
  EXPECT_EQ(q.sojourn(0).count(), 1u);
}

TEST(Tandem, StationarySamplerMatchesMean) {
  Rng rng(105);
  const double mu = 0.5, lambda = 0.3;
  OnlineStats s;
  for (int i = 0; i < 60'000; ++i)
    s.add(static_cast<double>(sample_stationary_queue(lambda, mu, rng)));
  EXPECT_NEAR(s.mean(), mean_queue_length(lambda, mu), 0.05);
}

TEST(Models, Theorem43CompletionFormula) {
  // E[T(model 4)] = k/lambda + D (1-lambda)/(mu-lambda) phases.
  Rng rng(106);
  const double mu = 0.5, lambda = 0.25;
  const std::uint32_t D = 12;
  const std::uint64_t k = 60;
  OnlineStats t;
  for (int rep = 0; rep < 400; ++rep) {
    Rng r = rng.split(rep);
    t.add(static_cast<double>(run_model4(k, D, mu, lambda, r)));
  }
  const double predicted = model4_completion_phases(k, D, lambda, mu);
  EXPECT_NEAR(t.mean(), predicted, 0.06 * predicted)
      << "measured " << t.mean() << " predicted " << predicted;
}

TEST(Models, DominationChainModels2To4) {
  Rng rng(107);
  const double mu = 0.5;
  const double lambda = mu / 2;
  const std::uint32_t D = 10;
  const std::uint64_t k = 40;
  OnlineStats t2, t3, t4;
  for (int rep = 0; rep < 300; ++rep) {
    Rng r = rng.split(rep);
    std::vector<std::uint32_t> levels;
    for (std::uint64_t i = 0; i < k; ++i)
      levels.push_back(
          static_cast<std::uint32_t>(1 + r.next_below(D)));
    t2.add(static_cast<double>(run_model2(levels, D, mu, r)));
    t3.add(static_cast<double>(run_model3(k, D, mu, lambda, r)));
    t4.add(static_cast<double>(run_model4(k, D, mu, lambda, r)));
  }
  EXPECT_LE(t2.mean(), t3.mean() + t3.ci_halfwidth());
  EXPECT_LE(t3.mean(), t4.mean() + t4.ci_halfwidth());
}

TEST(Models, Model1DominatedByModel2) {
  // Theorem 4.15's first link, measured: the radio network (phases) is
  // stochastically faster than the path of mu-servers with the same
  // initial placement, because Theorem 4.1 lower-bounds each level's
  // advance probability by mu.
  Rng rng(108);
  const Graph g = gen::path(11);  // depth 10 from node 0
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const double mu = mu_decay();
  OnlineStats t1, t2;
  for (int rep = 0; rep < 25; ++rep) {
    Rng r = rng.split(rep);
    std::vector<NodeId> sources;
    std::vector<std::uint32_t> levels;
    for (int i = 0; i < 15; ++i) {
      const NodeId v = static_cast<NodeId>(1 + r.next_below(10));
      sources.push_back(v);
      levels.push_back(tree.level[v]);
    }
    t1.add(static_cast<double>(
        run_model1_phases(g, tree, sources, r.next())));
    t2.add(static_cast<double>(run_model2(levels, tree.depth, mu, r)));
  }
  EXPECT_LE(t1.mean(), t2.mean() + t2.ci_halfwidth());
}

TEST(Models, Model3SlowerWithLowerArrivalRate) {
  Rng rng(109);
  const double mu = 0.6;
  OnlineStats fast, slow;
  for (int rep = 0; rep < 200; ++rep) {
    Rng r = rng.split(rep);
    fast.add(static_cast<double>(run_model3(30, 6, mu, 0.5, r)));
    slow.add(static_cast<double>(run_model3(30, 6, mu, 0.15, r)));
  }
  EXPECT_LT(fast.mean(), slow.mean());
}

}  // namespace
}  // namespace radiomc
