// The collection protocol (§4): completeness, exactly-once (see also
// ack_test.cpp), Theorem 4.1's per-phase advance probability, behaviour
// across topologies and loads, and the §2.2 claim that mod-3 gating
// confines collisions to adjacent levels.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

std::vector<Message> one_message_each(const Graph& g, NodeId except_root) {
  std::vector<Message> init;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == except_root) continue;
    Message m;
    m.kind = MsgKind::kData;
    m.origin = v;
    m.seq = 0;
    m.payload = 7000 + v;
    init.push_back(m);
  }
  return init;
}

struct TopologyCase {
  std::string name;
  Graph graph;
};

std::vector<TopologyCase> topologies(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TopologyCase> out;
  out.push_back({"path16", gen::path(16)});
  out.push_back({"grid5x5", gen::grid(5, 5)});
  out.push_back({"star12", gen::star(12)});
  out.push_back({"complete10", gen::complete(10)});
  out.push_back({"rary31", gen::rary_tree(31, 2)});
  out.push_back({"gnp24", gen::gnp_connected(24, 0.25, rng)});
  out.push_back({"udg30", gen::unit_disk_connected(30, 0.45, rng)});
  out.push_back({"caterpillar", gen::caterpillar(6, 3)});
  return out;
}

class CollectionTopologies : public ::testing::TestWithParam<int> {};

TEST_P(CollectionTopologies, AllMessagesReachRoot) {
  for (auto& tc : topologies(11 + GetParam())) {
    const BfsTree tree = oracle_bfs_tree(tc.graph, 0);
    const auto init = one_message_each(tc.graph, 0);
    const auto out = run_collection(tc.graph, tree, init,
                                    CollectionConfig::for_graph(tc.graph),
                                    200 + GetParam());
    ASSERT_TRUE(out.completed) << tc.name;
    EXPECT_EQ(out.deliveries.size(), init.size()) << tc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectionTopologies, ::testing::Range(0, 4));

TEST(Collection, EmptyWorkloadCompletesImmediately) {
  const Graph g = gen::path(5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto out =
      run_collection(g, tree, {}, CollectionConfig::for_graph(g), 1);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.slots, 0u);
}

TEST(Collection, SingleMessageFromDeepestLeaf) {
  const Graph g = gen::path(20);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  Message m;
  m.kind = MsgKind::kData;
  m.origin = 19;
  m.payload = 123;
  const auto out =
      run_collection(g, tree, {m}, CollectionConfig::for_graph(g), 3);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.deliveries[0].msg.payload, 123u);
  EXPECT_EQ(out.deliveries[0].msg.origin, 19u);
}

TEST(Collection, MessagesAtRootNeedNoSlots) {
  const Graph g = gen::path(4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  Message m;
  m.kind = MsgKind::kData;
  m.origin = 0;  // the root itself
  const auto out =
      run_collection(g, tree, {m}, CollectionConfig::for_graph(g), 4);
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.slots, 0u);
}

TEST(Collection, RootsOtherThanZeroWork) {
  Rng rng(55);
  const Graph g = gen::gnp_connected(20, 0.25, rng);
  const BfsTree tree = oracle_bfs_tree(g, 13);
  const auto init = one_message_each(g, 13);
  const auto out = run_collection(g, tree, init,
                                  CollectionConfig::for_graph(g), 6);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.deliveries.size(), init.size());
}

// Theorem 4.1: P(some message advances from an occupied level) >= mu
// = e^-1(1 - e^-1) ~ 0.2325 per phase. Pool phases over several runs and
// check the empirical rate clears the bound (it is a loose lower bound;
// empirically the rate is far higher, so this is a stable assertion).
class Theorem41 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem41, AdvanceProbabilityAtLeastMu) {
  Rng rng(900 + GetParam());
  std::uint64_t occupied = 0, advanced = 0;
  for (auto& tc : topologies(31 + GetParam())) {
    const BfsTree tree = oracle_bfs_tree(tc.graph, 0);
    const auto init = one_message_each(tc.graph, 0);
    const auto out = run_collection(tc.graph, tree, init,
                                    CollectionConfig::for_graph(tc.graph),
                                    rng.next());
    ASSERT_TRUE(out.completed) << tc.name;
    for (std::uint32_t l = 1; l < out.occupied_phases.size(); ++l) {
      occupied += out.occupied_phases[l];
      advanced += out.advance_phases[l];
    }
  }
  ASSERT_GT(occupied, 100u);
  const double rate = static_cast<double>(advanced) /
                      static_cast<double>(occupied);
  EXPECT_GE(rate, queueing::mu_decay())
      << "advance rate " << rate << " below mu";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem41, ::testing::Range(0, 4));

// §2.2: with the BFS tree and mod-3 gating, concurrently transmitting
// levels are never adjacent, so a receiver's incoming data in a given data
// subslot all comes from a single level.
TEST(Collection, HeavyLoadStillExactlyOnce) {
  Rng rng(77);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<Message> init;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    for (std::uint32_t s = 0; s < 8; ++s) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = s;
      init.push_back(m);
    }
  const auto out = run_collection(g, tree, init,
                                  CollectionConfig::for_graph(g), 88);
  ASSERT_TRUE(out.completed);
  std::map<std::pair<NodeId, std::uint32_t>, int> seen;
  for (const auto& d : out.deliveries) ++seen[{d.msg.origin, d.msg.seq}];
  EXPECT_EQ(seen.size(), init.size());
  for (auto& [k, c] : seen) EXPECT_EQ(c, 1);
}

// Disabling mod-3 gating (ablation) must not break correctness — only the
// Theorem 4.1 analysis depends on it.
TEST(Collection, WorksWithoutMod3Gating) {
  Rng rng(78);
  const Graph g = gen::grid(4, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  CollectionConfig cfg = CollectionConfig::for_graph(g);
  cfg.slots.mod3_gating = false;
  const auto init = one_message_each(g, 0);
  const auto out = run_collection(g, tree, init, cfg, 89);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.deliveries.size(), init.size());
}

// Scaling shape (Thm 4.4 flavor, asserted loosely; bench E4 measures it
// precisely): doubling k roughly doubles the completion time for k >> D,
// far below the quadratic a per-message protocol would show.
TEST(Collection, CompletionScalesLinearlyInK) {
  Rng rng(79);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  auto workload = [&](std::uint32_t k) {
    std::vector<Message> init;
    for (std::uint32_t i = 0; i < k; ++i) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = static_cast<NodeId>(1 + rng.next_below(g.num_nodes() - 1));
      m.seq = i;
      init.push_back(m);
    }
    return init;
  };
  OnlineStats t64, t128;
  for (int rep = 0; rep < 3; ++rep) {
    t64.add(static_cast<double>(
        run_collection(g, tree, workload(64),
                       CollectionConfig::for_graph(g), rng.next())
            .slots));
    t128.add(static_cast<double>(
        run_collection(g, tree, workload(128),
                       CollectionConfig::for_graph(g), rng.next())
            .slots));
  }
  const double ratio = t128.mean() / t64.mean();
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.9);
}

// Theorem 4.4's explicit constant: slots <= 32.27 (k+D) log2(Delta) in
// expectation. Our slot accounting includes the mod-3 gating factor the
// paper folds away, so we check against 3x the bound — and also record
// that the un-gated run fits the paper's own constant.
TEST(Collection, Theorem44BoundHolds) {
  Rng rng(80);
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto init = one_message_each(g, 0);
  const double bound = queueing::thm44_slot_bound(
      init.size(), tree.depth, g.max_degree());

  OnlineStats gated, ungated;
  for (int rep = 0; rep < 5; ++rep) {
    gated.add(static_cast<double>(
        run_collection(g, tree, init, CollectionConfig::for_graph(g),
                       rng.next())
            .slots));
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    cfg.slots.mod3_gating = false;
    ungated.add(
        static_cast<double>(run_collection(g, tree, init, cfg, rng.next())
                                .slots));
  }
  EXPECT_LT(gated.mean(), 3.0 * bound);
  EXPECT_LT(ungated.mean(), bound);
}

}  // namespace
}  // namespace radiomc
