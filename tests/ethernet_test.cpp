// The virtual shared bus (§1.3's single-hop emulation) and the Ethernet
// backoff MAC on top of it: exact ternary feedback, identical outcome
// streams at every station, and a single-hop protocol (binary exponential
// backoff) running unchanged over a multi-hop network.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/ethernet_emulation.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

using Feedback = VirtualEthernet::Feedback;

TEST(VirtualBus, TernaryFeedbackIsExact) {
  Rng rng(80);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  VirtualEthernet bus(g, tree, VirtualEthernet::Config::for_graph(g),
                      rng.next());
  // Scripted offers: round 0 nobody, round 1 only node 5, round 2 nodes
  // 3 and 7, round 3 only node 11.
  bus.set_policy([](NodeId v, std::uint32_t round)
                     -> std::optional<std::uint32_t> {
    switch (round) {
      case 1:
        if (v == 5) return 500u;
        break;
      case 2:
        if (v == 3 || v == 7) return 100u + v;
        break;
      case 3:
        if (v == 11) return 1100u;
        break;
      default:
        break;
    }
    return std::nullopt;
  });
  const auto outcomes = bus.run_rounds(4);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].kind, Feedback::kSilence);
  EXPECT_EQ(outcomes[1].kind, Feedback::kSuccess);
  EXPECT_EQ(outcomes[1].winner, 5u);
  EXPECT_EQ(outcomes[1].frame, 500u);
  EXPECT_EQ(outcomes[2].kind, Feedback::kCollision);
  EXPECT_EQ(outcomes[3].kind, Feedback::kSuccess);
  EXPECT_EQ(outcomes[3].winner, 11u);
}

TEST(VirtualBus, AllStationsSeeTheSameStream) {
  Rng rng(81);
  const Graph g = gen::gnp_connected(14, 0.3, rng);
  const BfsTree tree = oracle_bfs_tree(g, 2);
  VirtualEthernet bus(g, tree, VirtualEthernet::Config::for_graph(g),
                      rng.next());
  Rng offers(82);
  // Random contention each round.
  std::vector<std::vector<bool>> plan(8, std::vector<bool>(14));
  for (auto& round : plan)
    for (auto&& cell : round) cell = offers.bernoulli(0.2);
  bus.set_policy([&plan](NodeId v, std::uint32_t round)
                     -> std::optional<std::uint32_t> {
    if (round < plan.size() && plan[round][v]) return 7000u + v;
    return std::nullopt;
  });
  const auto root_stream = bus.run_rounds(8);
  ASSERT_EQ(root_stream.size(), 8u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& s = bus.outcomes_at(v);
    ASSERT_EQ(s.size(), 8u) << "node " << v;
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(s[r].kind, root_stream[r].kind) << v << "/" << r;
      EXPECT_EQ(s[r].winner, root_stream[r].winner);
      EXPECT_EQ(s[r].frame, root_stream[r].frame);
    }
  }
  // Verify the feedback against the plan.
  for (int r = 0; r < 8; ++r) {
    const int offered = static_cast<int>(
        std::count(plan[r].begin(), plan[r].end(), true));
    const Feedback expected = offered == 0   ? Feedback::kSilence
                              : offered == 1 ? Feedback::kSuccess
                                             : Feedback::kCollision;
    EXPECT_EQ(root_stream[r].kind, expected) << "round " << r;
  }
}

TEST(VirtualBus, HaltStopsEarlyWithConsistentStreams) {
  Rng rng(83);
  const Graph g = gen::path(8);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  VirtualEthernet bus(g, tree, VirtualEthernet::Config::for_graph(g),
                      rng.next());
  bus.set_policy([](NodeId v, std::uint32_t round)
                     -> std::optional<std::uint32_t> {
    if (round == 2 && v == 4) return 42u;
    return std::nullopt;
  });
  const auto outcomes = bus.run_rounds(
      1000, 50'000'000,
      [](const std::vector<VirtualEthernet::RoundOutcome>& s) {
        return !s.empty() && s.back().kind == Feedback::kSuccess;
      });
  ASSERT_EQ(outcomes.size(), 3u);  // rounds 0..2, then halt
  EXPECT_EQ(outcomes[2].kind, Feedback::kSuccess);
  for (NodeId v = 0; v < 8; ++v)
    EXPECT_EQ(bus.outcomes_at(v).size(), 3u);
}

class BackoffSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackoffSweep, DrainsEveryBacklogExactlyOnce) {
  Rng rng(8400 + GetParam());
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<std::uint32_t> backlog(g.num_nodes(), 0);
  std::uint32_t total = 0;
  for (auto& b : backlog) {
    b = static_cast<std::uint32_t>(rng.next_below(3));
    total += b;
  }
  if (total == 0) backlog[3] = total = 1;
  const BackoffOutcome out =
      run_ethernet_backoff(g, tree, backlog, rng.next());
  ASSERT_TRUE(out.completed) << "rounds=" << out.rounds_used;
  EXPECT_EQ(out.delivered_frames.size(), total);
  // Exactly once: frame ids are unique by construction.
  std::set<std::uint32_t> uniq(out.delivered_frames.begin(),
                               out.delivered_frames.end());
  EXPECT_EQ(uniq.size(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackoffSweep, ::testing::Range(0, 4));

TEST(Backoff, DisabledFaultPlanIsByteIdenticalToNoPlan) {
  // Passing an explicit all-zero plan must take the exact historical code
  // path: the fault seed is drawn only when a plan is enabled, so every
  // RNG consumer downstream sees an unshifted stream.
  Rng rng(86);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<std::uint32_t> backlog(g.num_nodes(), 1);
  const std::uint64_t seed = rng.next();
  const BackoffOutcome plain =
      run_ethernet_backoff(g, tree, backlog, seed);
  const BackoffOutcome with_disabled_plan =
      run_ethernet_backoff(g, tree, backlog, seed, 4096, FaultPlan{});
  ASSERT_TRUE(plain.completed);
  EXPECT_EQ(plain.delivered_frames, with_disabled_plan.delivered_frames);
  EXPECT_EQ(plain.rounds_used, with_disabled_plan.rounds_used);
  EXPECT_EQ(plain.slots, with_disabled_plan.slots);
  EXPECT_EQ(plain.net.fault_jams, 0u);
  EXPECT_EQ(plain.net.fault_drops, 0u);
}

TEST(Backoff, BusAbsorbsJamAndDropNoise) {
  // §1.3's point survives fault injection: the bus's exact ternary
  // feedback is built on the reliable §3/§6 channels, so jam/drop noise
  // slows the emulation down without corrupting it — the MAC still drains
  // every frame exactly once.
  Rng rng(87);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<std::uint32_t> backlog(g.num_nodes(), 1);
  FaultPlan plan;
  plan.jam_prob = 0.03;
  plan.drop_prob = 0.02;
  const BackoffOutcome out =
      run_ethernet_backoff(g, tree, backlog, rng.next(), 4096, plan);
  ASSERT_TRUE(out.completed) << "rounds=" << out.rounds_used;
  EXPECT_EQ(out.delivered_frames.size(), backlog.size());
  std::set<std::uint32_t> uniq(out.delivered_frames.begin(),
                               out.delivered_frames.end());
  EXPECT_EQ(uniq.size(), backlog.size());
  // The plan must actually have fired, or this proves nothing.
  EXPECT_GT(out.net.fault_jams + out.net.fault_drops, 0u);
}

TEST(Backoff, HeavyContentionStillResolves) {
  // 12 stations, 2 frames each: 24 frames through the bus with collisions
  // driving the exponential backoff.
  Rng rng(85);
  const Graph g = gen::gnp_connected(12, 0.3, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<std::uint32_t> backlog(12, 2);
  const BackoffOutcome out =
      run_ethernet_backoff(g, tree, backlog, rng.next());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.delivered_frames.size(), 24u);
  EXPECT_GE(out.rounds_used, 24u);  // at least one round per frame
}

}  // namespace
}  // namespace radiomc
