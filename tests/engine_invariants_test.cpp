// Randomized engine-invariant property tests for the active-set
// RadioNetwork. Where engine_diff_test.cpp proves the rewrite equals the
// frozen reference byte-for-byte, this suite checks that both of them
// compute the *model* of §1.1 — properties stated directly against the
// paper's semantics, verified on the event stream of randomized runs:
//
//   * every delivery is explained by exactly one transmitting neighbor of
//     the receiver, on that channel, in that same slot, carrying that very
//     message (which also rules out any cross-slot leakage of the
//     epoch-stamped rx cells: a stale cell would surface as a delivery
//     with no same-slot transmitter);
//   * every collision event has >= 2 transmitting neighbors (fault-free
//     runs; jams are the txn == 1 case and only exist under a plan);
//   * deliveries are bounded by the transmitters' degrees (the radio
//     analogue of "deliveries <= transmissions": one transmission can be
//     heard by at most deg(sender) stations);
//   * crashed stations never transmit and never receive, checked against
//     the fault schedule's per-slot alive view;
//   * active-set membership is exactly "transmitted last slot, or woken,
//     or not autosleeping" — predicted by an independent model in the
//     test and compared against both the stations' observed polls and
//     RadioNetwork::station_active.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/fault_schedule.h"
#include "graph/generators.h"
#include "radio/network.h"
#include "support/rng.h"

namespace radiomc {
namespace {

/// Legacy random transmitter (never touches its Waker).
class Chatter : public Station {
 public:
  Chatter(NodeId self, ChannelId channels, double tx_prob, Rng rng)
      : self_(self), channels_(channels), tx_prob_(tx_prob), rng_(rng) {}

  void on_slot(SlotTime, std::span<std::optional<Message>> tx) override {
    if (!rng_.bernoulli(tx_prob_)) return;
    Message m;
    m.origin = self_;
    m.seq = seq_++;
    tx[rng_.next_below(channels_)] = m;
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    received.emplace_back(t, ch, m.origin, m.seq);
  }

  std::vector<std::tuple<SlotTime, ChannelId, NodeId, std::uint32_t>> received;

 private:
  NodeId self_;
  ChannelId channels_;
  double tx_prob_;
  Rng rng_;
  std::uint32_t seq_ = 0;
};

Graph make_graph(int which, Rng& rng) {
  switch (which % 4) {
    case 0:
      return gen::grid(6, 7);
    case 1:
      return gen::gnp_connected(48, 0.12, rng);
    case 2:
      return gen::star(20);
    default:
      return gen::unit_disk_connected(40, gen::udg_connect_radius(40), rng);
  }
}

TEST(EngineInvariants, EveryDeliveryHasExactlyOneSameSlotTransmittingNeighbor) {
  Rng rng(0x1A7E57);
  for (int round = 0; round < 8; ++round) {
    const Graph g = make_graph(round, rng);
    const ChannelId channels = 1 + round % 2;

    std::deque<Chatter> stations;
    std::vector<Station*> ptrs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      stations.emplace_back(v, channels, 0.2, rng.split(v));
      ptrs.push_back(&stations.back());
    }

    RadioNetwork::Config cfg;
    cfg.num_channels = channels;
    RadioNetwork net(g, cfg);
    EventRecorder rec;
    net.set_trace(&rec);
    net.attach(ptrs);
    net.run(250);
    ASSERT_FALSE(rec.truncated());

    // Index transmissions by (slot, channel) -> {sender -> (origin, seq)}.
    std::map<std::pair<SlotTime, ChannelId>,
             std::map<NodeId, std::pair<NodeId, std::uint32_t>>>
        tx_at;
    for (const auto& e : rec.events())
      if (e.kind == EventRecorder::Kind::kTransmit)
        tx_at[{e.slot, e.channel}][e.node] = {e.origin, e.seq};

    std::uint64_t deliveries_checked = 0;
    for (const auto& e : rec.events()) {
      if (e.kind == EventRecorder::Kind::kDeliver) {
        const auto& senders = tx_at[{e.slot, e.channel}];
        std::uint32_t tx_neighbors = 0;
        bool msg_matches = false;
        for (const NodeId u : g.neighbors(e.node)) {
          const auto it = senders.find(u);
          if (it == senders.end()) continue;
          ++tx_neighbors;
          msg_matches = it->second == std::make_pair(e.origin, e.seq);
        }
        EXPECT_EQ(tx_neighbors, 1u)
            << "delivery to " << e.node << " at slot " << e.slot;
        EXPECT_TRUE(msg_matches)
            << "delivered message does not match the unique transmitter";
        ++deliveries_checked;
      } else if (e.kind == EventRecorder::Kind::kCollision) {
        // Fault-free: every collision event must be a genuine collision.
        EXPECT_GE(e.tx_neighbors, 2u);
        std::uint32_t tx_neighbors = 0;
        const auto& senders = tx_at[{e.slot, e.channel}];
        for (const NodeId u : g.neighbors(e.node))
          tx_neighbors += senders.count(u) != 0 ? 1 : 0;
        EXPECT_EQ(tx_neighbors, e.tx_neighbors)
            << "collision fan-in mismatch at node " << e.node;
      }
    }
    EXPECT_GT(deliveries_checked, 0u) << "round " << round << " was vacuous";
    EXPECT_EQ(deliveries_checked, net.metrics().deliveries);

    // Degree bound: each transmission reaches at most deg(sender) listeners.
    std::uint64_t degree_budget = 0;
    for (const auto& e : rec.events())
      if (e.kind == EventRecorder::Kind::kTransmit)
        degree_budget += g.degree(e.node);
    EXPECT_LE(net.metrics().deliveries + net.metrics().collision_events,
              degree_budget * channels);
    EXPECT_LE(net.metrics().capture_deliveries, net.metrics().deliveries);
  }
}

TEST(EngineInvariants, CrashedStationsNeverTransmitOrReceive) {
  Rng rng(0xC4A5);
  for (int round = 0; round < 6; ++round) {
    const Graph g = make_graph(round, rng);

    std::deque<Chatter> stations;
    std::vector<Station*> ptrs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      stations.emplace_back(v, 1, 0.3, rng.split(v));
      ptrs.push_back(&stations.back());
    }

    FaultPlan plan;
    plan.crash_rate = 0.08;
    plan.recover_rate = 0.3;
    plan.epoch_slots = 8;

    RadioNetwork net(g);
    FaultSchedule faults(g, plan, 0xFA + round);
    EventRecorder rec;
    net.set_faults(&faults);
    net.set_trace(&rec);
    net.attach(ptrs);

    // Step manually so the alive view can be snapshotted per slot (the
    // schedule's Markov chains are advanced inside step(), so after step()
    // the state is exactly the one slot t was simulated under).
    const SlotTime kSlots = 400;
    std::vector<std::vector<std::uint8_t>> alive(kSlots);
    std::uint64_t crashed_slot_pairs = 0;
    for (SlotTime t = 0; t < kSlots; ++t) {
      net.step();
      alive[t].resize(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        alive[t][v] = faults.node_alive(v) ? 1 : 0;
        crashed_slot_pairs += alive[t][v] ? 0 : 1;
      }
    }
    ASSERT_FALSE(rec.truncated());

    std::uint64_t events_on_crashed = 0;
    for (const auto& e : rec.events()) {
      if (e.kind != EventRecorder::Kind::kTransmit &&
          e.kind != EventRecorder::Kind::kDeliver &&
          e.kind != EventRecorder::Kind::kCollision)
        continue;
      if (!alive[e.slot][e.node]) ++events_on_crashed;
    }
    EXPECT_EQ(events_on_crashed, 0u) << "round " << round;
    EXPECT_EQ(net.metrics().fault_crashed_slots, crashed_slot_pairs);
    // The plan must actually have bitten, or the round proves nothing.
    EXPECT_GT(crashed_slot_pairs, 0u) << "round " << round << " was vacuous";

    // Crash freezes active-set membership; recovery must find the station
    // runnable again (all-Chatter population: everyone is legacy-active).
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_TRUE(net.station_active(v));
  }
}

/// Autosleep station with a scripted behavior: transmits at slots in
/// `tx_slots`, calls wake() at slots in `wake_slots` (both tested only when
/// actually polled). Records every poll.
class Scripted : public Station {
 public:
  Scripted(NodeId self, std::set<SlotTime> tx_slots,
           std::set<SlotTime> wake_slots)
      : self_(self), tx_slots_(std::move(tx_slots)),
        wake_slots_(std::move(wake_slots)) {}

  void on_attach(Waker& w) override {
    waker_ = &w;
    w.set_autosleep(true);
  }
  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    polls.push_back(t);
    if (tx_slots_.count(t) != 0) {
      Message m;
      m.origin = self_;
      m.seq = static_cast<std::uint32_t>(t);
      tx[0] = m;
    }
    if (wake_slots_.count(t) != 0) waker_->wake();
  }
  void on_receive(SlotTime, ChannelId, const Message&) override {}

  std::vector<SlotTime> polls;

 private:
  NodeId self_;
  std::set<SlotTime> tx_slots_, wake_slots_;
  Waker* waker_ = nullptr;
};

TEST(EngineInvariants, ActiveSetMembershipIsIntentOrWakeExactly) {
  // Randomized scripts on a path graph; the test predicts the poll
  // schedule of every station with an independent model of the contract:
  //   polled at 0 (everyone starts active); polled at t+1 iff polled at t
  //   and (transmitted at t or woke at t), or an external wake arrived
  //   during slot t.
  Rng rng(0x5C21);
  const SlotTime kSlots = 120;
  for (int round = 0; round < 10; ++round) {
    const Graph g = gen::path(24);
    std::deque<Scripted> stations;
    std::vector<Station*> ptrs;
    std::vector<std::set<SlotTime>> tx_of(g.num_nodes()), wake_of(
                                                              g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      std::set<SlotTime> tx, wake;
      for (SlotTime t = 0; t < kSlots; ++t) {
        if (rng.bernoulli(0.25)) tx.insert(t);
        if (rng.bernoulli(0.15)) wake.insert(t);
      }
      tx_of[v] = tx;
      wake_of[v] = wake;
      stations.emplace_back(v, tx, wake);
      ptrs.push_back(&stations.back());
    }
    // A few driver-level wakes, exercising wake_station between slots.
    std::vector<std::pair<SlotTime, NodeId>> driver_wakes;
    for (int i = 0; i < 6; ++i)
      driver_wakes.emplace_back(rng.next_below(kSlots),
                                static_cast<NodeId>(
                                    rng.next_below(g.num_nodes())));
    std::sort(driver_wakes.begin(), driver_wakes.end());

    RadioNetwork net(g);
    net.attach(ptrs);

    // Independent prediction: polled at t iff active at t; retained after
    // slot t iff it transmitted or self-woke at t; active at t+1 =
    // retained union driver wakes delivered between t and t+1. (A pending
    // driver wake is admitted at the next begin_slot, so station_active
    // right after step(t) reflects `retained`, not yet the wake.)
    std::vector<std::vector<SlotTime>> expected(g.num_nodes());
    std::vector<std::vector<std::uint8_t>> retained_at(kSlots);
    {
      std::vector<std::uint8_t> active(g.num_nodes(), 1);
      for (SlotTime t = 0; t < kSlots; ++t) {
        retained_at[t].assign(g.num_nodes(), 0);
        std::vector<std::uint8_t> next(g.num_nodes(), 0);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (!active[v]) continue;
          expected[v].push_back(t);
          if (tx_of[v].count(t) != 0 || wake_of[v].count(t) != 0) {
            retained_at[t][v] = 1;
            next[v] = 1;
          }
        }
        for (const auto& [wt, wv] : driver_wakes)
          if (wt == t) next[wv] = 1;  // arrives between slot t and t+1
        active = std::move(next);
      }
    }

    for (SlotTime t = 0; t < kSlots; ++t) {
      net.step();
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        EXPECT_EQ(net.station_active(v),
                  retained_at[t][v] != 0)
            << "round " << round << " node " << v << " after slot " << t;
      for (const auto& [wt, wv] : driver_wakes)
        if (wt == t) net.wake_station(wv);
    }

    std::uint64_t total_polls = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(stations[v].polls, expected[v])
          << "round " << round << " node " << v;
      total_polls += stations[v].polls.size();
    }
    EXPECT_EQ(net.engine_stats().station_polls, total_polls);
    EXPECT_LE(net.engine_stats().peak_active,
              static_cast<std::uint64_t>(g.num_nodes()));
    EXPECT_GT(net.engine_stats().peak_active, 0u);
    // Autosleep everywhere: the engine must actually have slept somebody.
    EXPECT_LT(total_polls,
              static_cast<std::uint64_t>(g.num_nodes()) * kSlots);
  }
}

TEST(EngineInvariants, EpochStampedCellsNeverLeakAcrossSlots) {
  // A single transmitter fires exactly once; with epoch-stamped rx cells a
  // stale-state bug would re-deliver (or re-collide) in later slots. Run
  // long after the burst and demand total silence.
  class OneShot : public Station {
   public:
    explicit OneShot(NodeId self) : self_(self) {}
    void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
      if (t == 3 && self_ == 0) {  // only the hub fires
        Message m;
        m.origin = self_;
        m.seq = 77;
        tx[0] = m;
      }
    }
    void on_receive(SlotTime t, ChannelId, const Message& m) override {
      deliveries.emplace_back(t, m.seq);
    }
    std::vector<std::pair<SlotTime, std::uint32_t>> deliveries;

   private:
    NodeId self_;
  };

  const Graph g = gen::star(12);
  std::deque<OneShot> stations;
  std::vector<Station*> ptrs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    stations.emplace_back(v);
    ptrs.push_back(&stations.back());
  }
  RadioNetwork net(g);
  net.attach(ptrs);
  net.run(500);

  // The hub (node 0) transmitted once at slot 3; every leaf hears exactly
  // that, leaves' own slot-3 transmissions collide at the hub only.
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    ASSERT_EQ(stations[v].deliveries.size(), 1u) << "leaf " << v;
    EXPECT_EQ(stations[v].deliveries[0],
              (std::pair<SlotTime, std::uint32_t>{3, 77}));
  }
  EXPECT_TRUE(stations[0].deliveries.empty());
  EXPECT_EQ(net.metrics().slots, 500u);
}

}  // namespace
}  // namespace radiomc
