// The distribution pipeline (§6) and the k-broadcast service: in-order
// delivery everywhere, pipelining (one superphase per level), gap repair
// via NACKs under lossy conditions, and the windowed (mod 4W) sequence
// numbering with checkpoint advancement.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/distribution.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

class BroadcastSweep : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastSweep, EveryNodeDeliversEverythingInOrder) {
  Rng rng(800 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(12));
  graphs.push_back(gen::grid(4, 4));
  graphs.push_back(gen::gnp_connected(20, 0.25, rng));
  graphs.push_back(gen::star(10));
  for (const Graph& g : graphs) {
    const BfsTree tree = oracle_bfs_tree(g, 0);
    BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g),
                         rng.next());
    const int k = 25;
    for (int i = 0; i < k; ++i)
      svc.broadcast(static_cast<NodeId>(rng.next_below(g.num_nodes())),
                    5000 + i);
    ASSERT_TRUE(svc.run_until_delivered(40'000'000))
        << "n=" << g.num_nodes();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == tree.root) continue;
      const auto& log = svc.distribution(v).delivery_log();
      ASSERT_EQ(log.size(), static_cast<std::size_t>(k)) << "node " << v;
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(log[i].second, static_cast<std::uint32_t>(i));
        if (i > 0) {
          EXPECT_GE(log[i].first, log[i - 1].first);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastSweep, ::testing::Range(0, 4));

TEST(Broadcast, RootCanBroadcastToo) {
  const Graph g = gen::path(8);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g), 42);
  svc.broadcast(0, 111);  // the root itself
  svc.broadcast(7, 222);  // the deepest leaf
  ASSERT_TRUE(svc.run_until_delivered(10'000'000));
  EXPECT_EQ(svc.distribution(7).delivered_prefix(), 2u);
}

TEST(Broadcast, TimeDivisionModeWorks) {
  Rng rng(43);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.mode = BroadcastServiceConfig::ChannelMode::kTimeDivision;
  BroadcastService svc(g, tree, cfg, rng.next());
  for (int i = 0; i < 10; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), i);
  ASSERT_TRUE(svc.run_until_delivered(40'000'000));
}

TEST(Broadcast, LossySuperphasesAreRepairedByNacks) {
  // Starve the pipeline: a single Decay invocation per superphase makes
  // per-hop misses common, so gap-NACK repair must do real work.
  Rng rng(44);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.phases_per_superphase = 1;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 30;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(16)), i);
  ASSERT_TRUE(svc.run_until_delivered(80'000'000));
  // With starved superphases some resends are all but certain; at minimum
  // the run must finish exactly-once-in-order (checked via prefix).
  for (NodeId v = 1; v < 16; ++v)
    EXPECT_EQ(svc.distribution(v).delivered_prefix(),
              static_cast<std::uint32_t>(k));
}

TEST(Broadcast, WindowedNumberingWrapsCorrectly) {
  // W = 4 and k = 40 forces the wire numbering (mod 16) to wrap many
  // times and the checkpoint base to advance through 10 windows.
  Rng rng(45);
  const Graph g = gen::path(10);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 4;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 40;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(10)), 900 + i);
  ASSERT_TRUE(svc.run_until_delivered(120'000'000));
  for (NodeId v = 1; v < 10; ++v) {
    const auto& log = svc.distribution(v).delivery_log();
    ASSERT_EQ(log.size(), static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      EXPECT_EQ(log[i].second, static_cast<std::uint32_t>(i));
  }
}

TEST(Broadcast, WindowedAndLossyTogether) {
  Rng rng(46);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 3;
  cfg.distribution.phases_per_superphase = 2;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 24;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), i);
  ASSERT_TRUE(svc.run_until_delivered(200'000'000));
  for (NodeId v = 1; v < 12; ++v)
    EXPECT_EQ(svc.distribution(v).delivered_prefix(),
              static_cast<std::uint32_t>(k));
}

TEST(Broadcast, PipelineIsActuallyPipelined) {
  // k broadcasts from the root on a path: completion should be about
  // (k + depth) superphases, not k * depth (the naive baseline's shape).
  Rng rng(47);
  const Graph g = gen::path(12);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  BroadcastService svc(g, tree, cfg, rng.next());
  const std::uint64_t k = 40;
  for (std::uint64_t i = 0; i < k; ++i) svc.broadcast(0, i);
  ASSERT_TRUE(svc.run_until_delivered(100'000'000));
  const std::uint64_t sp =
      svc.distribution(0).slots_per_superphase();
  const std::uint64_t superphases = (svc.now() + sp - 1) / sp;
  // Pipelined: ~ k + depth (+ slack for occasional repairs). Naive would
  // be >= k * depth = 440.
  EXPECT_LT(superphases, k + 11 + 60);
  EXPECT_GE(superphases, k);
}

TEST(Broadcast, NoBroadcastsNoWork) {
  const Graph g = gen::path(5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g), 48);
  EXPECT_TRUE(svc.run_until_delivered(1000));
  EXPECT_EQ(svc.now(), 0u);
}

// ---------------------------------------------------------------------------
// Sequence-number epoching: the stale-copy phantom on the legacy wire
// format, and its rejection with epoch tags on.
//
// Setup shared by both tests: a level-1 receiver with W = 4 (wire numbers
// mod 16) whose frontier has been fed past the first 4W wrap, then a
// crash-resurrected forwarder replays absolute message 2 — wire seq 2,
// stamped in era 0. The mod-4W decode places wire 2 at
// lo + ((2 - lo) mod 16) with lo = 18 - 2W = 10, i.e. exactly the current
// frontier 18: an ancient payload aliases to the next expected index.
// ---------------------------------------------------------------------------

struct PhantomRig {
  Graph g = gen::path(2);
  BfsTree tree = oracle_bfs_tree(g, 0);
  DistributionStation rx;
  std::vector<std::uint64_t> payloads;  ///< in delivery order

  explicit PhantomRig(bool epoch_tags)
      : rx(1, tree, MakeCfg(epoch_tags), Rng(1)) {
    rx.set_delivery_handler(
        [this](SlotTime, const Message& m) { payloads.push_back(m.payload); });
  }

  static DistributionConfig MakeCfg(bool epoch_tags) {
    DistributionConfig cfg;
    cfg.window = 4;
    cfg.epoch_tags = epoch_tags;
    return cfg;
  }

  /// What a level-0 forwarder holding absolute message `abs` puts on the
  /// wire in era `era` (the legacy format carries the bare level in aux).
  void Feed(std::uint32_t abs, std::uint32_t era, bool epoched,
            std::uint64_t payload) {
    Message m;
    m.kind = MsgKind::kBcastData;
    m.origin = 0;
    m.dest = kAllNodes;
    m.sender = 0;
    m.seq = abs % 16;  // wire_of with W = 4
    m.aux = epoched ? (era << 16) : 0;
    m.payload = payload;
    rx.deliver(abs, m);
  }
};

TEST(DistributionEpoch, LegacyWireFormatDeliversStalePhantom) {
  PhantomRig rig(/*epoch_tags=*/false);
  for (std::uint32_t a = 0; a < 18; ++a) rig.Feed(a, a / 16, false, 1000 + a);
  ASSERT_EQ(rig.rx.delivered_prefix(), 18u);

  rig.Feed(2, 0, false, 1002);  // the stale replay
  // The legacy decode has no way to notice: the receiver's prefix advances
  // with a message the root never sent — message 2's payload at index 18.
  EXPECT_EQ(rig.rx.delivered_prefix(), 19u);
  EXPECT_EQ(rig.rx.delivery_log().back().second, 18u);
  EXPECT_EQ(rig.payloads.back(), 1002u);
}

TEST(DistributionEpoch, EpochTagRejectsTheStaleCopy) {
  PhantomRig rig(/*epoch_tags=*/true);
  for (std::uint32_t a = 0; a < 18; ++a)
    rig.Feed(a, a / 16, true, 1000 + a);
  ASSERT_EQ(rig.rx.delivered_prefix(), 18u);

  // The same stale replay carries its true era (0); the decode aliases it
  // to index 18, whose era is 1 — the tag disagrees and the copy is
  // dropped instead of delivered.
  rig.Feed(2, 0, true, 1002);
  EXPECT_EQ(rig.rx.delivered_prefix(), 18u);
  EXPECT_EQ(rig.rx.delivery_log().back().second, 17u);

  // A genuine era-1 copy of index 18 still goes through: the guard kills
  // phantoms, not fresh traffic.
  rig.Feed(18, 1, true, 1018);
  EXPECT_EQ(rig.rx.delivered_prefix(), 19u);
  EXPECT_EQ(rig.payloads.back(), 1018u);
}

}  // namespace
}  // namespace radiomc
