// The distribution pipeline (§6) and the k-broadcast service: in-order
// delivery everywhere, pipelining (one superphase per level), gap repair
// via NACKs under lossy conditions, and the windowed (mod 4W) sequence
// numbering with checkpoint advancement.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

class BroadcastSweep : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastSweep, EveryNodeDeliversEverythingInOrder) {
  Rng rng(800 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(12));
  graphs.push_back(gen::grid(4, 4));
  graphs.push_back(gen::gnp_connected(20, 0.25, rng));
  graphs.push_back(gen::star(10));
  for (const Graph& g : graphs) {
    const BfsTree tree = oracle_bfs_tree(g, 0);
    BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g),
                         rng.next());
    const int k = 25;
    for (int i = 0; i < k; ++i)
      svc.broadcast(static_cast<NodeId>(rng.next_below(g.num_nodes())),
                    5000 + i);
    ASSERT_TRUE(svc.run_until_delivered(40'000'000))
        << "n=" << g.num_nodes();
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == tree.root) continue;
      const auto& log = svc.distribution(v).delivery_log();
      ASSERT_EQ(log.size(), static_cast<std::size_t>(k)) << "node " << v;
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(log[i].second, static_cast<std::uint32_t>(i));
        if (i > 0) {
          EXPECT_GE(log[i].first, log[i - 1].first);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastSweep, ::testing::Range(0, 4));

TEST(Broadcast, RootCanBroadcastToo) {
  const Graph g = gen::path(8);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g), 42);
  svc.broadcast(0, 111);  // the root itself
  svc.broadcast(7, 222);  // the deepest leaf
  ASSERT_TRUE(svc.run_until_delivered(10'000'000));
  EXPECT_EQ(svc.distribution(7).delivered_prefix(), 2u);
}

TEST(Broadcast, TimeDivisionModeWorks) {
  Rng rng(43);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.mode = BroadcastServiceConfig::ChannelMode::kTimeDivision;
  BroadcastService svc(g, tree, cfg, rng.next());
  for (int i = 0; i < 10; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), i);
  ASSERT_TRUE(svc.run_until_delivered(40'000'000));
}

TEST(Broadcast, LossySuperphasesAreRepairedByNacks) {
  // Starve the pipeline: a single Decay invocation per superphase makes
  // per-hop misses common, so gap-NACK repair must do real work.
  Rng rng(44);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.phases_per_superphase = 1;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 30;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(16)), i);
  ASSERT_TRUE(svc.run_until_delivered(80'000'000));
  // With starved superphases some resends are all but certain; at minimum
  // the run must finish exactly-once-in-order (checked via prefix).
  for (NodeId v = 1; v < 16; ++v)
    EXPECT_EQ(svc.distribution(v).delivered_prefix(),
              static_cast<std::uint32_t>(k));
}

TEST(Broadcast, WindowedNumberingWrapsCorrectly) {
  // W = 4 and k = 40 forces the wire numbering (mod 16) to wrap many
  // times and the checkpoint base to advance through 10 windows.
  Rng rng(45);
  const Graph g = gen::path(10);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 4;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 40;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(10)), 900 + i);
  ASSERT_TRUE(svc.run_until_delivered(120'000'000));
  for (NodeId v = 1; v < 10; ++v) {
    const auto& log = svc.distribution(v).delivery_log();
    ASSERT_EQ(log.size(), static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
      EXPECT_EQ(log[i].second, static_cast<std::uint32_t>(i));
  }
}

TEST(Broadcast, WindowedAndLossyTogether) {
  Rng rng(46);
  const Graph g = gen::grid(3, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 3;
  cfg.distribution.phases_per_superphase = 2;
  BroadcastService svc(g, tree, cfg, rng.next());
  const int k = 24;
  for (int i = 0; i < k; ++i)
    svc.broadcast(static_cast<NodeId>(rng.next_below(12)), i);
  ASSERT_TRUE(svc.run_until_delivered(200'000'000));
  for (NodeId v = 1; v < 12; ++v)
    EXPECT_EQ(svc.distribution(v).delivered_prefix(),
              static_cast<std::uint32_t>(k));
}

TEST(Broadcast, PipelineIsActuallyPipelined) {
  // k broadcasts from the root on a path: completion should be about
  // (k + depth) superphases, not k * depth (the naive baseline's shape).
  Rng rng(47);
  const Graph g = gen::path(12);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  BroadcastService svc(g, tree, cfg, rng.next());
  const std::uint64_t k = 40;
  for (std::uint64_t i = 0; i < k; ++i) svc.broadcast(0, i);
  ASSERT_TRUE(svc.run_until_delivered(100'000'000));
  const std::uint64_t sp =
      svc.distribution(0).slots_per_superphase();
  const std::uint64_t superphases = (svc.now() + sp - 1) / sp;
  // Pipelined: ~ k + depth (+ slack for occasional repairs). Naive would
  // be >= k * depth = 440.
  EXPECT_LT(superphases, k + 11 + 60);
  EXPECT_GE(superphases, k);
}

TEST(Broadcast, NoBroadcastsNoWork) {
  const Graph g = gen::path(5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastService svc(g, tree, BroadcastServiceConfig::for_graph(g), 48);
  EXPECT_TRUE(svc.run_until_delivered(1000));
  EXPECT_EQ(svc.now(), 0u);
}

}  // namespace
}  // namespace radiomc
