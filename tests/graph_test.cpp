// Tests for the graph substrate: CSR construction, generators (with their
// advertised n/D/Delta), and the centralized algorithms tests and benches
// rely on for ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

TEST(Graph, BasicConstruction) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 1}});  // duplicate edge dropped
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}});
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, RejectsBadEdges) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, EdgeListRoundTrip) {
  Graph g(6, {{0, 5}, {1, 2}, {4, 3}});
  const auto e = g.edge_list();
  EXPECT_EQ(e.size(), 3u);
  for (auto [u, v] : e) EXPECT_LT(u, v);
}

TEST(Generators, PathProperties) {
  const Graph g = gen::path(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(diameter(g), 9u);
}

TEST(Generators, CycleProperties) {
  const Graph g = gen::cycle(8);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(diameter(g), 4u);
}

TEST(Generators, CompleteAndStar) {
  EXPECT_EQ(gen::complete(6).num_edges(), 15u);
  EXPECT_EQ(diameter(gen::complete(6)), 1u);
  const Graph s = gen::star(9);
  EXPECT_EQ(s.max_degree(), 8u);
  EXPECT_EQ(diameter(s), 2u);
}

TEST(Generators, GridAndTorus) {
  const Graph g = gen::grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);
  EXPECT_EQ(diameter(g), 5u);
  const Graph t = gen::torus(4, 4);
  EXPECT_EQ(t.num_edges(), 32u);
  EXPECT_EQ(diameter(t), 4u);
  EXPECT_EQ(t.max_degree(), 4u);
}

TEST(Generators, Hypercube) {
  const Graph h = gen::hypercube(4);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.num_edges(), 32u);
  EXPECT_EQ(diameter(h), 4u);
}

TEST(Generators, RaryTree) {
  const Graph t = gen::rary_tree(13, 3);
  EXPECT_EQ(t.num_edges(), 12u);
  EXPECT_TRUE(is_connected(t));
  EXPECT_LE(t.max_degree(), 4u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    const NodeId n = static_cast<NodeId>(2 + rng.next_below(60));
    const Graph t = gen::random_tree(n, rng);
    EXPECT_EQ(t.num_nodes(), n);
    EXPECT_EQ(t.num_edges(), n - 1u);
    EXPECT_TRUE(is_connected(t));
  }
}

TEST(Generators, Caterpillar) {
  const Graph c = gen::caterpillar(5, 3);
  EXPECT_EQ(c.num_nodes(), 20u);
  EXPECT_TRUE(is_connected(c));
  EXPECT_EQ(diameter(c), 6u);  // leaf - spine(5 nodes, 4 hops) - leaf
}

TEST(Generators, Barbell) {
  const Graph b = gen::barbell(4, 2);
  EXPECT_EQ(b.num_nodes(), 10u);
  EXPECT_TRUE(is_connected(b));
  // clique node -> 3 -> 4 -> 5 -> 6 -> clique node: 5 hops.
  EXPECT_EQ(diameter(b), 5u);
}

TEST(Generators, GnpConnected) {
  Rng rng(23);
  const Graph g = gen::gnp_connected(40, 0.15, rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, UnitDiskConnected) {
  Rng rng(29);
  const Graph g =
      gen::unit_disk_connected(60, gen::udg_connect_radius(60), rng);
  EXPECT_EQ(g.num_nodes(), 60u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, BfsDistances) {
  const Graph g = gen::grid(3, 3);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[8], 4u);
  EXPECT_EQ(r.eccentricity, 4u);
  EXPECT_EQ(r.parent[0], kNoNode);
  // Deterministic smallest-id parents.
  EXPECT_EQ(r.parent[4], 1u);
}

TEST(Algorithms, BfsUnreachable) {
  Graph g(4, {{0, 1}});
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[2], BfsResult::kUnreached);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, DoubleSweepMatchesOnTrees) {
  Rng rng(31);
  for (int i = 0; i < 8; ++i) {
    const Graph t = gen::random_tree(40, rng);
    EXPECT_EQ(diameter_double_sweep(t), diameter(t));
  }
}

TEST(Algorithms, DoubleSweepLowerBounds) {
  Rng rng(37);
  const Graph g = gen::gnp_connected(50, 0.1, rng);
  EXPECT_LE(diameter_double_sweep(g), diameter(g));
}

TEST(Algorithms, DfsNumberingTree) {
  // Root 0 with children 1, 2; 1 has children 3, 4.
  std::vector<NodeId> parent{kNoNode, 0, 0, 1, 1};
  const DfsNumbering d = dfs_number_tree(parent, 0);
  EXPECT_EQ(d.number[0], 0u);
  EXPECT_EQ(d.number[1], 1u);
  EXPECT_EQ(d.number[3], 2u);
  EXPECT_EQ(d.number[4], 3u);
  EXPECT_EQ(d.number[2], 4u);
  EXPECT_EQ(d.max_desc[0], 4u);
  EXPECT_EQ(d.max_desc[1], 3u);
  EXPECT_EQ(d.max_desc[2], 4u);
  EXPECT_EQ(d.max_desc[3], 2u);
}

TEST(Algorithms, DfsNumberingSubtreeIntervalsAreExact) {
  Rng rng(41);
  const Graph t = gen::random_tree(50, rng);
  const BfsResult r = bfs(t, 0);
  const DfsNumbering d = dfs_number_tree(r.parent, 0);
  // v is an ancestor of u iff number[u] is in [number[v], max_desc[v]].
  for (NodeId u = 0; u < 50; ++u) {
    std::set<NodeId> ancestors;
    for (NodeId a = u; a != kNoNode; a = r.parent[a]) ancestors.insert(a);
    for (NodeId v = 0; v < 50; ++v) {
      const bool in_interval =
          d.number[v] <= d.number[u] && d.number[u] <= d.max_desc[v];
      EXPECT_EQ(in_interval, ancestors.contains(v))
          << "u=" << u << " v=" << v;
    }
  }
}

// Parameterized: every generator yields a graph whose BfsTree round-trips.
class GeneratorSuite : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSuite, OracleBfsTreeIsValid) {
  Rng rng(100 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(17));
  graphs.push_back(gen::cycle(12));
  graphs.push_back(gen::grid(4, 6));
  graphs.push_back(gen::star(15));
  graphs.push_back(gen::complete(9));
  graphs.push_back(gen::rary_tree(25, 2));
  graphs.push_back(gen::random_tree(30, rng));
  graphs.push_back(gen::gnp_connected(25, 0.2, rng));
  graphs.push_back(gen::unit_disk_connected(30, 0.45, rng));
  graphs.push_back(gen::caterpillar(6, 2));
  graphs.push_back(gen::barbell(5, 3));
  graphs.push_back(gen::hypercube(4));
  for (const Graph& g : graphs) {
    const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const BfsTree t = oracle_bfs_tree(g, root);
    EXPECT_TRUE(is_bfs_tree_of(g, t));
    EXPECT_EQ(t.depth, bfs(g, root).eccentricity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSuite, ::testing::Range(0, 4));

}  // namespace
}  // namespace radiomc
