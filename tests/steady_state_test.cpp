// The open-system (reactive) collection driver behind experiment E15.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "protocols/steady_state.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"

namespace radiomc {
namespace {

TEST(SteadyState, ConservesMessages) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto out = run_collection_steady_state(
      g, tree, 0.1, /*phases=*/3000, /*warmup=*/0, 11);
  // At low load everything injected drains: delivered ~ arrivals (the last
  // few may be in flight).
  EXPECT_GE(out.arrivals, 200u);
  EXPECT_GE(out.delivered + 20, out.arrivals);
}

TEST(SteadyState, PopulationGrowsWithLoad) {
  const Graph g = gen::path(13);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const double mu = queueing::mu_decay();
  const auto lo = run_collection_steady_state(g, tree, 0.2 * mu, 8000, 1000, 12);
  const auto hi = run_collection_steady_state(g, tree, 0.9 * mu, 8000, 1000, 12);
  EXPECT_GT(hi.population.mean(), lo.population.mean());
  EXPECT_GT(hi.sojourn_phases.mean(), 0.0);
}

TEST(SteadyState, DominatedByModel4ClosedForms) {
  const Graph g = gen::path(11);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const double mu = queueing::mu_decay();
  const double lambda = mu / 2;
  const auto out =
      run_collection_steady_state(g, tree, lambda, 15000, 2000, 13);
  EXPECT_LE(out.population.mean(),
            tree.depth * queueing::mean_queue_length(lambda, mu) * 1.05);
  EXPECT_LE(out.sojourn_phases.mean(),
            tree.depth * queueing::mean_wait(lambda, mu) * 1.05);
}

TEST(SteadyState, UniformPlacementWorksToo) {
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const auto out = run_collection_steady_state(
      g, tree, 0.15, 4000, 500, 14, ArrivalPlacement::kUniform);
  EXPECT_GT(out.delivered, 0u);
  EXPECT_GT(out.sojourn_phases.mean(), 0.0);
}

TEST(SteadyState, ValidatesArguments) {
  const Graph g = gen::path(4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  EXPECT_THROW(run_collection_steady_state(g, tree, 0.0, 10, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(run_collection_steady_state(g, tree, 1.0, 10, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace radiomc
