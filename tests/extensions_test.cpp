// §8 Remarks 1 and 2 as features:
//  * Remark 2 — anonymous networks: leader election with random campaign
//    values; the setup stays always-correct even with a tiny value space
//    (max-draw collisions just cost extra attempts).
//  * Remark 1 — unknown n: Monte Carlo setup from an upper bound N with
//    failure probability eps.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/leader_election.h"
#include "protocols/setup.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

TEST(AnonymousElection, RandomValuesConvergeToOneMaximum) {
  Rng rng(60);
  const Graph g = gen::grid(4, 5);
  LeaderConfig cfg;
  cfg.decay_len = decay_length(g.max_degree());
  cfg.random_id_bits = 48;  // long ids: collisions negligible (Remark 2)
  // Drive manually to use the config.
  // run_leader_election uses id mode; build stations directly.
  std::vector<std::unique_ptr<MaxFloodStation>> st;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    st.push_back(std::make_unique<MaxFloodStation>(v, cfg, rng.split(v)));
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : st) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  net.run(16 * (9 + 10 + 4) * cfg.decay_len);

  std::uint64_t global_best = 0;
  for (auto& s : st) global_best = std::max(global_best, s->best());
  int believers = 0;
  for (auto& s : st) {
    EXPECT_EQ(s->best(), global_best);
    if (s->believes_leader()) ++believers;
  }
  EXPECT_EQ(believers, 1);  // 48-bit draws: no collision at n = 20
}

class AnonymousSetup : public ::testing::TestWithParam<int> {};

TEST_P(AnonymousSetup, TinyIdSpaceStillAlwaysSucceeds) {
  // 4-bit campaign values over 12 nodes: the maximum draw collides on a
  // sizable fraction of attempts; the verification epochs must catch every
  // collision and the redraws must eventually produce a unique winner.
  Rng rng(6100 + GetParam());
  const Graph g = gen::gnp_connected(12, 0.3, rng);
  SetupTuning tuning;
  tuning.random_id_bits = 4;
  const SetupOutcome out = run_setup(g, rng.next(), tuning, /*attempts=*/20);
  ASSERT_TRUE(out.ok) << "attempts=" << out.attempts;
  EXPECT_TRUE(is_bfs_tree_of(g, out.tree));
  const DfsLabels oracle = oracle_dfs_labels(out.tree);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(out.labels.number[v], oracle.number[v]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnonymousSetup, ::testing::Range(0, 4));

TEST(AnonymousSetup, CollisionsActuallyCostAttempts) {
  // With 2-bit values over 6 nodes the maximum draw collides on ~45% of
  // attempts (it must be unique for the verification to pass), so across
  // several runs the detect-and-redraw path must actually execute.
  Rng rng(62);
  const Graph g = gen::path(6);
  SetupTuning tuning;
  tuning.random_id_bits = 2;
  bool saw_retry = false;
  for (int i = 0; i < 10 && !saw_retry; ++i) {
    const SetupOutcome out = run_setup(g, rng.next(), tuning, 24);
    ASSERT_TRUE(out.ok);
    saw_retry = out.attempts > 1;
  }
  EXPECT_TRUE(saw_retry);
}

class UnknownN : public ::testing::TestWithParam<int> {};

TEST_P(UnknownN, SucceedsWithHighProbabilityAndCorrectlyWhenItDoes) {
  Rng rng(6300 + GetParam());
  const Graph g = gen::grid(4, 5);
  int ok = 0;
  const int runs = 10;
  for (int i = 0; i < runs; ++i) {
    const UnknownNOutcome out =
        run_setup_unknown_n(g, /*N=*/64, /*eps=*/0.01, rng.next());
    if (out.tree_ok) {
      ++ok;
      EXPECT_TRUE(is_bfs_tree_of(g, out.tree));
      if (out.prep_ok) {
        const DfsLabels oracle = oracle_dfs_labels(out.tree);
        for (NodeId v = 0; v < g.num_nodes(); ++v)
          EXPECT_EQ(out.labels.number[v], oracle.number[v]);
      }
    }
  }
  // eps = 1%: demand at least 8/10 to keep the test stable.
  EXPECT_GE(ok, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnknownN, ::testing::Range(0, 3));

TEST(UnknownN, ValidatesArguments) {
  const Graph g = gen::path(10);
  EXPECT_THROW(run_setup_unknown_n(g, 5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(run_setup_unknown_n(g, 20, 0.0, 1), std::invalid_argument);
}

TEST(UnknownN, BudgetsScaleWithUpperBound) {
  Rng rng(64);
  const Graph g = gen::path(12);
  const auto tight = run_setup_unknown_n(g, 12, 0.05, rng.next());
  const auto loose = run_setup_unknown_n(g, 200, 0.05, rng.next());
  EXPECT_GT(loose.slots, tight.slots);  // paying for the bad bound
}

}  // namespace
}  // namespace radiomc
