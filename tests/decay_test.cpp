// Tests for the Decay primitive [3]:
//  * DecayProcess mechanics (transmit-then-flip, bounded length, stop).
//  * Property (1): an invocation spans at most 2 ceil(log2 Delta) slots.
//  * Property (2): with 1..Delta transmitting neighbors, a listener
//    receives some message with probability > 1/2 — swept over Delta and
//    the number of transmitters with TEST_P.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "protocols/decay.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

TEST(DecayProcess, TransmitsAtLeastOnce) {
  // "repeat ... transmit; flip coin; until coin = 0": the first transmit
  // happens unconditionally.
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    DecayProcess d(8);
    d.start();
    ASSERT_TRUE(d.wants_transmit());
    d.after_transmit(rng);
  }
}

TEST(DecayProcess, NeverExceedsLength) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    DecayProcess d(6);
    d.start();
    int transmissions = 0;
    while (d.wants_transmit()) {
      ++transmissions;
      d.after_transmit(rng);
    }
    EXPECT_LE(transmissions, 6);
    EXPECT_GE(transmissions, 1);
  }
}

TEST(DecayProcess, StopAborts) {
  Rng rng(3);
  DecayProcess d(8);
  d.start();
  d.after_transmit(rng);
  d.stop();
  EXPECT_FALSE(d.wants_transmit());
  EXPECT_FALSE(d.live());
}

TEST(DecayProcess, GeometricSurvival) {
  // P(still live after j transmissions) = 2^-j.
  Rng rng(4);
  const int trials = 20000;
  int survived_3 = 0;
  for (int i = 0; i < trials; ++i) {
    DecayProcess d(16);
    d.start();
    for (int j = 0; j < 3 && d.wants_transmit(); ++j) d.after_transmit(rng);
    if (d.live()) ++survived_3;
  }
  EXPECT_NEAR(static_cast<double>(survived_3) / trials, 0.125, 0.01);
}

// Property (2) sweep: star with `delta` leaves, `k` of them transmit; the
// hub must receive with probability > 1/2 within 2 log2(delta) slots.
class DecayPropertyTwo
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecayPropertyTwo, HubReceivesWithProbAtLeastHalf) {
  const auto [delta, k] = GetParam();
  const Graph g = gen::star(delta + 1);
  const std::uint32_t len = decay_length(delta);
  Rng rng(1000 + delta * 31 + k);
  std::vector<NodeId> tx;
  for (int i = 1; i <= k; ++i) tx.push_back(static_cast<NodeId>(i));

  ProportionEstimate est;
  est.trials = 600;
  for (std::uint64_t i = 0; i < est.trials; ++i)
    if (decay_single_trial(g, 0, tx, len, rng)) ++est.successes;
  // The guarantee is > 1/2; allow statistical slack via the Wilson bound.
  EXPECT_GT(est.wilson_upper(), 0.5) << "point=" << est.point();
  EXPECT_GT(est.point(), 0.45) << "delta=" << delta << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecayPropertyTwo,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(2, 2),
                      std::make_tuple(4, 2), std::make_tuple(4, 4),
                      std::make_tuple(8, 3), std::make_tuple(8, 8),
                      std::make_tuple(16, 5), std::make_tuple(16, 16),
                      std::make_tuple(32, 32), std::make_tuple(64, 64),
                      std::make_tuple(64, 17)));

TEST(DecayTrial, SingleTransmitterAlwaysSucceeds) {
  const Graph g = gen::star(5);
  Rng rng(7);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(decay_single_trial(g, 0, {3}, 4, rng));
}

TEST(DecayTrial, NoTransmittersNeverSucceeds) {
  const Graph g = gen::star(5);
  Rng rng(8);
  EXPECT_FALSE(decay_single_trial(g, 0, {}, 4, rng));
}

TEST(DecayTrial, ValidatesArguments) {
  const Graph g = gen::star(3);
  Rng rng(9);
  EXPECT_THROW(decay_single_trial(g, 0, {0}, 4, rng), std::invalid_argument);
  EXPECT_THROW(decay_single_trial(g, 9, {1}, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace radiomc
