// The §4.4 move algebra, with the paper's lemmas as executable properties:
//  Lemma 4.5  Move(a,m) equals the singleton decomposition applied in order.
//  Lemma 4.7  a <= b (witnessed) implies Move(a,m) <= Move(b,m) — tested
//             through its corollary on completion times (Lemma 4.8).
//  Lemma 4.12 domination of move vectors is monotone.
//  Lemma 4.8  a <= b implies T(a,M) <= T(b,M) for every move sequence.

#include <gtest/gtest.h>

#include "queueing/partition.h"
#include "support/rng.h"

namespace radiomc {
namespace {

using namespace radiomc::queueing;

Partition random_partition(std::size_t size, std::uint64_t maxv, Rng& rng) {
  Partition a(size);
  for (auto& x : a) x = rng.next_below(maxv + 1);
  return a;
}

MoveVector random_move(std::size_t size, std::uint64_t maxv, Rng& rng) {
  MoveVector m(size);
  for (auto& x : m) x = rng.next_below(maxv + 1);
  return m;
}

TEST(Move, BasicSemantics) {
  // a = (a_1, a_2, a_3); move 1 from level 2 to level 1.
  const Partition a{0, 2, 1};
  const Partition r = move(a, {0, 1, 0});
  EXPECT_EQ(r, (Partition{1, 1, 1}));
}

TEST(Move, Level1MovesIntoSink) {
  const Partition a{3, 0, 0};
  const Partition r = move(a, {2, 0, 0});
  EXPECT_EQ(r, (Partition{1, 0, 0}));
}

TEST(Move, ClampsToAvailable) {
  const Partition a{0, 1, 0};
  const Partition r = move(a, {5, 5, 5});
  EXPECT_EQ(r, (Partition{1, 0, 0}));
}

TEST(Move, DeltasComputedFromPreMoveState) {
  // Level 2's output must not be servable by level 1 in the same move.
  const Partition a{0, 0, 1};
  const Partition r = move(a, {1, 1, 1});
  EXPECT_EQ(r, (Partition{0, 1, 0}));
}

TEST(Singleton, Construction) {
  const MoveVector e2 = singleton(4, 2);
  EXPECT_EQ(e2, (MoveVector{0, 1, 0, 0}));
  EXPECT_THROW(singleton(4, 0), std::invalid_argument);
  EXPECT_THROW(singleton(4, 5), std::invalid_argument);
}

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, Lemma45SingletonDecomposition) {
  Rng rng(2000 + GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t size = 2 + rng.next_below(5);
    const Partition a = random_partition(size, 4, rng);
    const MoveVector m = random_move(size, 3, rng);
    const auto em = singleton_decomposition(m);
    const Partition direct = move(a, m);
    const Partition stepped = move_star(a, em, em.size());
    EXPECT_EQ(direct, stepped);
  }
}

TEST_P(PartitionProperty, Lemma412DominationMonotone) {
  // If m dominates m' then Move(a, m) <= Move(a, m') in the <= order;
  // checked through completion times: draining under the dominating
  // sequence is never slower.
  Rng rng(2100 + GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t size = 2 + rng.next_below(4);
    const Partition a = random_partition(size, 3, rng);
    // Build a random sequence and a dominated (weakened) copy.
    std::vector<MoveVector> strong, weak;
    for (int t = 0; t < 400; ++t) {
      MoveVector s = random_move(size, 1, rng);
      MoveVector w = s;
      for (auto& x : w)
        if (x > 0 && rng.bernoulli(0.3)) x = 0;
      ASSERT_TRUE(dominates(s, w));
      strong.push_back(std::move(s));
      weak.push_back(std::move(w));
    }
    const std::uint64_t ts = completion_time(a, strong, 400);
    const std::uint64_t tw = completion_time(a, weak, 400);
    EXPECT_LE(ts, tw);
  }
}

TEST_P(PartitionProperty, Lemma48MorePlacedMessagesNeverFinishFaster) {
  // a <= b by construction (b = a + extra messages): under the SAME move
  // sequence, b never completes before a.
  Rng rng(2200 + GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t size = 2 + rng.next_below(4);
    const Partition a = random_partition(size, 2, rng);
    Partition b = a;
    for (auto& x : b) x += rng.next_below(2);
    const auto ms = random_move_sequence(size, 0.6, 0.0, 600, rng);
    const std::uint64_t ta = completion_time(a, ms, 600);
    const std::uint64_t tb = completion_time(b, ms, 600);
    EXPECT_LE(ta, tb);
  }
}

TEST_P(PartitionProperty, MovingMessagesDownNeverHurts) {
  // a = Move(b, e_i) gives a <= b; completion under the same sequence is
  // no slower (the paper's partial order, exercised one singleton deep).
  Rng rng(2300 + GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t size = 2 + rng.next_below(4);
    Partition b = random_partition(size, 3, rng);
    const std::size_t i = 1 + rng.next_below(size);
    const Partition a = move(b, singleton(size, i));
    const auto ms = random_move_sequence(size, 0.5, 0.0, 800, rng);
    EXPECT_LE(completion_time(a, ms, 800), completion_time(b, ms, 800));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(0, 5));

TEST(CompletionTime, DrainedImmediately) {
  const Partition zero{0, 0, 0};
  const std::vector<MoveVector> ms{{1, 1, 1}};
  EXPECT_EQ(completion_time(zero, ms, 10), 0u);
}

TEST(CompletionTime, ReportsNonCompletion) {
  const Partition a{0, 1};
  const std::vector<MoveVector> never{{0, 0}};
  EXPECT_EQ(completion_time(a, never, 50), 51u);
}

}  // namespace
}  // namespace radiomc
