// Online health monitoring (src/health/): rule-spec parsing, window and
// hysteresis math, the Monitor's radiomc.health/v1 stream (golden layout,
// warmup gating, footer discipline, flag contracts), determinism across
// reruns and job counts, observer purity (a monitored run is byte-identical
// to a bare one), and the E17-style alert matrix: stable regimes trip
// nothing, overload and jamming trip the expected rules.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "health/monitor.h"
#include "health/recorder.h"
#include "health/rules.h"
#include "protocols/tree.h"
#include "service/service.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace radiomc::health {
namespace {

using radiomc::BfsTree;
using radiomc::Graph;
using radiomc::Message;
using radiomc::MsgKind;
using radiomc::Rng;

/// Runs `fn`, which must throw std::invalid_argument, and returns the
/// message so the caller can pin the substring (specific error messages
/// are part of the interface, per the --trace-agg convention).
template <typename Fn>
std::string InvalidMessage(Fn fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return "";
}

#define EXPECT_MSG(call, substr)                                      \
  do {                                                                \
    const std::string msg_ = InvalidMessage([&] { call; });           \
    EXPECT_NE(msg_.find(substr), std::string::npos) << msg_;          \
  } while (0)

// ---------------------------------------------------------------------------
// Rule-spec parsing.
// ---------------------------------------------------------------------------

constexpr const char* kDefaultCanonical =
    "throughput:0.9:0.95,sojourn:3:2.5,qgrowth:0.5:0.25,stall:2,"
    "hotspot:0.5:0.25:16,neighbor:0.9:0.75:8";

TEST(RuleParse, DefaultBatteryCanonicalIsPinned) {
  EXPECT_EQ(RuleSet::parse("default").canonical(), kDefaultCanonical);
}

TEST(RuleParse, CanonicalRoundTrips) {
  const std::vector<std::string> specs = {
      "default", "throughput:0.8", "stall:5,hotspot:0.6:0.3:20",
      "neighbor:0.95:0.5:4,sojourn:4:2"};
  for (const std::string& s : specs) {
    const std::string canon = RuleSet::parse(s).canonical();
    EXPECT_EQ(RuleSet::parse(canon).canonical(), canon) << s;
  }
}

TEST(RuleParse, RejectsWithSpecificMessages) {
  EXPECT_MSG(RuleSet::parse(""), "empty spec");
  EXPECT_MSG(RuleSet::parse("throughput,"), "empty clause");
  EXPECT_MSG(RuleSet::parse("bogus"), "unknown rule 'bogus'");
  EXPECT_MSG(RuleSet::parse("throughput:x"), "bad number 'x'");
  EXPECT_MSG(RuleSet::parse("throughput:0.9:0.8"),
             "throughput needs 0 < trip <= clear");
  EXPECT_MSG(RuleSet::parse("sojourn:2:3"), "sojourn needs trip >= clear > 0");
  EXPECT_MSG(RuleSet::parse("qgrowth:0.2:0.5"),
             "qgrowth needs trip >= clear >= 0");
  EXPECT_MSG(RuleSet::parse("stall:0"),
             "stall windows must be a positive integer");
  EXPECT_MSG(RuleSet::parse("stall:1.5"),
             "stall windows must be a positive integer");
  EXPECT_MSG(RuleSet::parse("hotspot:1.5"), "hotspot needs");
  EXPECT_MSG(RuleSet::parse("neighbor:0.9:0.75:0"),
             "min count must be a positive integer");
  EXPECT_MSG(RuleSet::parse("neighbor:0.5:0.9"), "neighbor needs");
  EXPECT_MSG(RuleSet::parse("hotspot:0.5:0.25:16:9"), "too many parameters");
  EXPECT_MSG(RuleSet::parse("default:1"), "'default' takes no parameters");
  EXPECT_MSG(RuleSet::parse("default,stall:2"),
             "'default' cannot be combined");
  EXPECT_MSG(RuleSet::parse("stall:2,stall:3"), "duplicate rule 'stall'");
}

// ---------------------------------------------------------------------------
// Window and hysteresis math, on synthetic WindowStats.
// ---------------------------------------------------------------------------

WindowStats Window(std::uint64_t n) {
  WindowStats w;
  w.window = n;
  w.phase_end = (n + 1) * 64 - 1;
  w.phases = 64;
  return w;
}

TEST(RuleMath, ThroughputTripsOnDeficitAndLatchesUntilClear) {
  RuleEngine eng(RuleSet::parse("throughput:0.9:0.95"));
  const FlightRecorder rec(2, {});
  const auto feed = [&](double rate, std::uint64_t phases) {
    WindowStats w = Window(0);
    w.offered_rate = 1.0;
    w.eval_phases = phases;
    w.eval_delivered = static_cast<std::uint64_t>(rate * phases);
    return eng.evaluate(w, rec);
  };
  // Long horizon: slack = 3*sqrt(1/90000) = 0.01.
  auto tr = feed(0.80, 90'000);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr[0].rule, RuleKind::kThroughput);
  EXPECT_TRUE(tr[0].trip);
  // 0.91 is above the trip floor but below the clear bar: stays latched.
  EXPECT_TRUE(feed(0.91, 90'000).empty());
  EXPECT_EQ(eng.active(), 1u);
  // Crossing the (stricter) clear bar releases the latch.
  tr = feed(0.95, 90'000);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_FALSE(tr[0].trip);
  EXPECT_EQ(eng.active(), 0u);
  EXPECT_EQ(eng.trips(), 1u);
  EXPECT_EQ(eng.clears(), 1u);
}

TEST(RuleMath, ThroughputSlackForgivesShortHorizons) {
  // Over 64 phases the 3-sigma slack is 3*sqrt(1/64) = 0.375: even a zero
  // delivery count cannot trip (0 is not < 0.9 - 0.375... it is, so pick
  // 16 phases where slack = 0.75 and the floor sits at 0.15 with a rate of
  // 0.2 staying above it) — sampling noise alone never fires the rule.
  RuleEngine eng(RuleSet::parse("throughput:0.9:0.95"));
  const FlightRecorder rec(2, {});
  WindowStats w = Window(0);
  w.offered_rate = 1.0;
  w.eval_phases = 16;
  w.eval_delivered = 3;  // rate 0.1875 > 0.9 - 0.75
  EXPECT_TRUE(eng.evaluate(w, rec).empty());
  // The same rate over a long horizon is a real deficit.
  w.eval_phases = 10'000;
  w.eval_delivered = 1'875;
  EXPECT_EQ(eng.evaluate(w, rec).size(), 1u);
}

TEST(RuleMath, QueueGrowthSlopeTripsAndClears) {
  RuleEngine eng(RuleSet::parse("qgrowth:0.5:0.25"));
  const FlightRecorder rec(2, {});
  WindowStats w = Window(0);
  w.offered_rate = 1.0;
  w.in_system_begin = 0;
  w.in_system_end = 40;  // slope 40/64 = 0.625 >= 0.5
  auto tr = eng.evaluate(w, rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].trip);
  w.in_system_begin = 40;
  w.in_system_end = 50;  // slope 0.156 < 0.25
  tr = eng.evaluate(w, rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_FALSE(tr[0].trip);
}

TEST(RuleMath, StallNeedsConsecutiveZeroDeliveryWindows) {
  RuleEngine eng(RuleSet::parse("stall:2"));
  const FlightRecorder rec(2, {});
  WindowStats stuck = Window(0);
  stuck.delivered = 0;
  stuck.in_system_end = 5;  // messages in flight, nothing moving
  WindowStats moving = Window(1);
  moving.delivered = 3;
  moving.in_system_end = 5;
  EXPECT_TRUE(eng.evaluate(stuck, rec).empty());   // streak 1: not yet
  EXPECT_TRUE(eng.evaluate(moving, rec).empty());  // streak resets
  EXPECT_TRUE(eng.evaluate(stuck, rec).empty());
  auto tr = eng.evaluate(stuck, rec);  // streak 2: trips
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].trip);
  tr = eng.evaluate(moving, rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_FALSE(tr[0].trip);
}

TEST(RuleMath, SojournJudgedAgainstTheoremEnvelope) {
  RuleEngine eng(RuleSet::parse("sojourn:3:2.5"));
  const FlightRecorder rec(2, {});
  WindowStats w = Window(0);
  w.envelope_phases = 100.0;
  w.delivered = 10;
  w.mean_sojourn = 301.0;  // > 3 * 100
  auto tr = eng.evaluate(w, rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].trip);
  // Above saturation there is no finite envelope: the rule idles latched.
  w.envelope_phases = std::nan("");
  EXPECT_TRUE(eng.evaluate(w, rec).empty());
  EXPECT_EQ(eng.active(), 1u);
  w.envelope_phases = 100.0;
  w.mean_sojourn = 200.0;  // <= 2.5 * 100
  tr = eng.evaluate(w, rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_FALSE(tr[0].trip);
}

TEST(RuleMath, HotspotPinpointsTheLevelAndIgnoresJams) {
  RuleEngine eng(RuleSet::parse("hotspot:0.5:0.25:16"));
  FlightRecorder rec(5, {0, 1, 1, 1, 2});
  // 18 genuine collisions at level 1, 2 at level 2: share 0.9, total 20.
  for (int i = 0; i < 18; ++i) rec.on_collision(0, 1, 0, 2);
  for (int i = 0; i < 2; ++i) rec.on_collision(0, 4, 0, 3);
  // Jam-killed receptions (one transmitting neighbor) must not count.
  for (int i = 0; i < 50; ++i) rec.on_collision(0, 2, 0, 1);
  EXPECT_EQ(rec.window_collisions(), 20u);
  EXPECT_EQ(rec.window_jams(), 50u);
  WindowStats w = Window(0);
  auto tr = eng.evaluate(w, rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].trip);
  EXPECT_EQ(tr[0].detail, "level=1");
  // A quiet window clears (total below min).
  rec.roll_window();
  tr = eng.evaluate(Window(1), rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_FALSE(tr[0].trip);
}

Message DataFrom(NodeId sender) {
  Message m;
  m.kind = MsgKind::kData;
  m.sender = sender;
  return m;
}

TEST(RuleMath, NeighborSilentIsGatedByHistoricalShare) {
  RuleEngine eng(RuleSet::parse("neighbor:0.9:0.75:3"));
  FlightRecorder rec(8, {});
  // History: receiver 0 hears senders 1, 2, 3 equally (8 each).
  for (int i = 0; i < 8; ++i) {
    rec.on_deliver(0, 0, 0, DataFrom(1));
    rec.on_deliver(0, 0, 0, DataFrom(2));
    rec.on_deliver(0, 0, 0, DataFrom(3));
  }
  EXPECT_TRUE(eng.evaluate(Window(0), rec).empty());
  rec.roll_window();
  // Sender 3 goes dark while 1 and 2 keep their rate: its share says it
  // owed 8/40 * 16 = 3.2 >= 3 receptions — silent trips.
  for (int i = 0; i < 8; ++i) {
    rec.on_deliver(0, 0, 0, DataFrom(1));
    rec.on_deliver(0, 0, 0, DataFrom(2));
  }
  auto tr = eng.evaluate(Window(1), rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].trip);
  EXPECT_NE(tr[0].detail.find("silent node=0 peer=3"), std::string::npos)
      << tr[0].detail;
  // All three present again: no silent pair, dominance low — clears.
  rec.roll_window();
  for (int i = 0; i < 8; ++i) {
    rec.on_deliver(0, 0, 0, DataFrom(1));
    rec.on_deliver(0, 0, 0, DataFrom(2));
    rec.on_deliver(0, 0, 0, DataFrom(3));
  }
  tr = eng.evaluate(Window(2), rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_FALSE(tr[0].trip);
}

TEST(RuleMath, NeighborLowSharePeerQuietWindowIsNotSilent) {
  // A peer that historically contributes a sliver of the traffic owes
  // almost nothing per window: its quiet window must not read as an
  // outage (the false-positive the share gate exists to kill).
  RuleEngine eng(RuleSet::parse("neighbor:0.95:0.75:8"));
  FlightRecorder rec(8, {});
  for (int i = 0; i < 64; ++i) rec.on_deliver(0, 0, 0, DataFrom(1));
  for (int i = 0; i < 62; ++i) rec.on_deliver(0, 0, 0, DataFrom(2));
  rec.on_deliver(0, 0, 0, DataFrom(3));  // 1 of 127 ever
  EXPECT_TRUE(eng.evaluate(Window(0), rec).empty());
  rec.roll_window();
  for (int i = 0; i < 64; ++i) {
    rec.on_deliver(0, 0, 0, DataFrom(1));
    rec.on_deliver(0, 0, 0, DataFrom(2));
  }
  // Sender 3 absent, but owed only ~1 reception; dominance 0.5 < 0.95.
  EXPECT_TRUE(eng.evaluate(Window(1), rec).empty());
}

TEST(RuleMath, NeighborChatterRequiresHistoricalDiversity) {
  RuleEngine eng(RuleSet::parse("neighbor:0.9:0.75:3"));
  FlightRecorder rec(8, {});
  // A chain node hears exactly one sender, always: topology, not
  // pathology — dominance 1.0 must not trip with distinct_ever == 1.
  for (int i = 0; i < 16; ++i) rec.on_deliver(0, 5, 0, DataFrom(6));
  EXPECT_TRUE(eng.evaluate(Window(0), rec).empty());
  // Receiver 0 historically hears two senders; one then dominates.
  for (int i = 0; i < 8; ++i) {
    rec.on_deliver(0, 0, 0, DataFrom(1));
    rec.on_deliver(0, 0, 0, DataFrom(2));
  }
  rec.roll_window();
  for (int i = 0; i < 16; ++i) rec.on_deliver(0, 0, 0, DataFrom(1));
  for (int i = 0; i < 1; ++i) rec.on_deliver(0, 0, 0, DataFrom(2));
  auto tr = eng.evaluate(Window(1), rec);
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_TRUE(tr[0].trip);
  EXPECT_NE(tr[0].detail.find("chatter node=0 peer=1"), std::string::npos)
      << tr[0].detail;
}

// ---------------------------------------------------------------------------
// Monitor: stream layout, warmup gating, footer, flag contracts.
// ---------------------------------------------------------------------------

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

HealthConfig SmallConfig() {
  HealthConfig cfg;
  cfg.window_phases = 4;
  cfg.rules = "default";
  cfg.offered_rate = 1.0;
  cfg.depth = 3;
  cfg.warmup_phases = 0;
  return cfg;
}

PhaseSample Sample(std::uint64_t phase, std::uint64_t arrivals,
                   std::uint64_t delivered) {
  PhaseSample s;
  s.phase = phase;
  s.arrivals = arrivals;
  s.delivered = delivered;
  s.sojourn_sum = static_cast<double>(delivered);
  s.in_system = arrivals - delivered;
  s.engine_polls = phase * 10;
  s.wake_events = phase * 2;
  return s;
}

TEST(Monitor, WindowPacingSchemaAndFooter) {
  std::ostringstream out;
  Monitor mon(4, {0, 1, 1, 2}, SmallConfig(), out);
  ASSERT_TRUE(mon.ok());
  for (std::uint64_t p = 0; p < 10; ++p)
    mon.on_phase(Sample(p, (p + 1) * 2, (p + 1) * 2));
  mon.finish();
  const std::vector<std::string> lines = Lines(out.str());
  // 10 phases at window 4: two closed windows + schema + footer.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            "{\"ev\":\"schema\",\"v\":\"radiomc.health/v1\",\"window\":4,"
            "\"warmup\":0,\"lambda\":1,\"mu\":0.23254415793482963,"
            "\"depth\":3,\"rules\":\"" +
                std::string(kDefaultCanonical) + "\"}");
  EXPECT_EQ(lines[1],
            "{\"ev\":\"window\",\"n\":0,\"phase\":3,\"arrivals\":8,"
            "\"delivered\":8,\"in_system\":0,\"mean_sojourn\":1,\"tx\":0,"
            "\"collisions\":0,\"jams\":0,\"polls\":30,\"wakes\":6}");
  EXPECT_EQ(lines[3],
            "{\"ev\":\"end\",\"phase\":9,\"windows\":2,\"trips\":0,"
            "\"clears\":0,\"active\":0,\"clean\":true}");
  EXPECT_EQ(mon.windows(), 2u);
  EXPECT_EQ(mon.trips(), 0u);
}

TEST(Monitor, SustainedDeficitTripsThroughputOnce) {
  HealthConfig cfg = SmallConfig();
  cfg.window_phases = 1000;
  cfg.rules = "throughput";
  std::ostringstream out;
  Monitor mon(2, {}, cfg, out);
  // lambda = 1, zero deliveries: by the first window close the slack
  // 3*sqrt(1/1000) ~ 0.095 is well under the 0.9 floor.
  for (std::uint64_t p = 0; p < 3000; ++p) {
    PhaseSample s;
    s.phase = p;
    s.arrivals = p + 1;
    s.in_system = p + 1;
    mon.on_phase(s);
  }
  mon.finish();
  EXPECT_EQ(mon.trips(), 1u);  // latched: one trip, no chatter
  EXPECT_EQ(mon.active(), 1u);
  EXPECT_NE(out.str().find("{\"ev\":\"alert\",\"rule\":\"throughput\","
                           "\"state\":\"trip\",\"n\":0,\"phase\":999,"),
            std::string::npos)
      << out.str();
}

TEST(Monitor, WarmupGatesRuleEvaluation) {
  HealthConfig cfg = SmallConfig();
  cfg.window_phases = 1000;
  cfg.rules = "throughput";
  cfg.warmup_phases = 10'000;  // longer than the run: rules never eligible
  std::ostringstream out;
  Monitor mon(2, {}, cfg, out);
  for (std::uint64_t p = 0; p < 3000; ++p) {
    PhaseSample s;
    s.phase = p;
    s.arrivals = p + 1;
    s.in_system = p + 1;
    mon.on_phase(s);
  }
  mon.finish();
  EXPECT_EQ(mon.windows(), 3u);  // facts still recorded...
  EXPECT_EQ(mon.trips(), 0u);    // ...but no rule ever fires
}

TEST(Monitor, FinishIsIdempotent) {
  std::ostringstream out;
  Monitor mon(2, {}, SmallConfig(), out);
  mon.on_phase(Sample(0, 1, 1));
  mon.finish();
  mon.finish();
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u);  // schema + one footer, no partial window
  EXPECT_NE(lines[1].find("\"ev\":\"end\""), std::string::npos);
}

TEST(Monitor, UnwritablePathReportsNotOk) {
  Monitor mon(2, {}, SmallConfig(), "/nonexistent-dir/health.jsonl");
  EXPECT_FALSE(mon.ok());
}

TEST(MonitorFlags, ContractsRejectWithSpecificMessages) {
  EXPECT_MSG(Monitor::validate_flags(false, true, false, 64),
             "--alert-rules requires --health-out (nowhere to stream "
             "alerts)");
  EXPECT_MSG(Monitor::validate_flags(false, false, true, 64),
             "--health-window requires --health-out (no stream to pace)");
  EXPECT_MSG(Monitor::validate_flags(true, false, true, 0),
             "--health-window must be a positive phase count");
  EXPECT_NO_THROW(Monitor::validate_flags(true, true, true, 64));
  EXPECT_NO_THROW(Monitor::validate_flags(false, false, false, 64));
}

// ---------------------------------------------------------------------------
// Service integration: the full pipeline, determinism, observer purity,
// and the alert matrix on real regimes.
// ---------------------------------------------------------------------------

struct ServiceRun {
  std::string stream;
  std::uint64_t trips = 0;
  std::uint64_t windows = 0;
  service::ServeOutcome out;
};

ServiceRun RunMonitored(const Graph& g, const std::string& arrival,
                        std::uint64_t phases, std::uint64_t warmup,
                        std::uint64_t seed,
                        service::AdmissionPolicy policy =
                            service::AdmissionPolicy::kOff,
                        double envelope = 8.0, double jam_prob = 0.0) {
  const BfsTree tree = oracle_bfs_tree(g, 0);
  service::ServeConfig cfg;
  cfg.arrival = service::ArrivalSpec::parse(arrival);
  cfg.admission.policy = policy;
  cfg.admission.envelope_multiple = envelope;
  cfg.phases = phases;
  cfg.warmup_phases = warmup;
  cfg.faults.jam_prob = jam_prob;

  HealthConfig hcfg;
  hcfg.window_phases = 64;
  hcfg.rules = "default";
  hcfg.offered_rate = cfg.arrival.mean_rate();
  hcfg.depth = tree.depth;
  hcfg.warmup_phases = warmup;

  ServiceRun r;
  std::ostringstream out;
  Monitor mon(g.num_nodes(), tree.level, hcfg, out);
  cfg.health = &mon;
  r.out = service::run_service(g, tree, cfg, seed);
  mon.finish();
  r.stream = out.str();
  r.trips = mon.trips();
  r.windows = mon.windows();
  return r;
}

TEST(HealthService, StableRegimeTripsNothingAndStreamIsDeterministic) {
  const Graph g = gen::grid(4, 4);
  const ServiceRun a = RunMonitored(g, "bernoulli:0.1", 600, 100, 42);
  const ServiceRun b = RunMonitored(g, "bernoulli:0.1", 600, 100, 42);
  EXPECT_EQ(a.stream, b.stream);  // byte-identical rerun
  EXPECT_EQ(a.trips, 0u);
  EXPECT_EQ(a.windows, 10u);  // (600 + 100) / 64
  const std::vector<std::string> lines = Lines(a.stream);
  ASSERT_GE(lines.size(), 12u);
  EXPECT_NE(lines[0].find("\"v\":\"radiomc.health/v1\""), std::string::npos);
  EXPECT_EQ(lines.back(),
            "{\"ev\":\"end\",\"phase\":699,\"windows\":10,\"trips\":0,"
            "\"clears\":0,\"active\":0,\"clean\":true}");
}

TEST(HealthService, StreamIsJobCountInvariant) {
  // Four monitored runs evaluated on the deterministic trial pool: the
  // health streams must be byte-identical across --jobs 1 and --jobs 8.
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const auto run_all = [&seeds](unsigned jobs) {
    Rng root(0xBEE);
    return run_trials(seeds.size(), jobs, root,
                      [&seeds](std::size_t i, Rng&) {
                        const Graph g = gen::grid(4, 4);
                        return RunMonitored(g, "bernoulli:0.1", 200, 50,
                                            seeds[i])
                            .stream;
                      });
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i], parallel[i]) << "seed index " << i;
}

TEST(HealthService, MonitorDoesNotPerturbTheRun) {
  // Observer purity: a monitored run and a bare run of the same config
  // must agree on every outcome field the driver reports.
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  service::ServeConfig cfg;
  cfg.arrival = service::ArrivalSpec::parse("bernoulli:0.1");
  cfg.phases = 300;
  cfg.warmup_phases = 50;

  const service::ServeOutcome bare = service::run_service(g, tree, cfg, 7);

  HealthConfig hcfg;
  hcfg.offered_rate = 0.1;
  hcfg.depth = tree.depth;
  hcfg.warmup_phases = 50;
  std::ostringstream out;
  Monitor mon(g.num_nodes(), tree.level, hcfg, out);
  cfg.health = &mon;
  const service::ServeOutcome obs = service::run_service(g, tree, cfg, 7);

  EXPECT_EQ(bare.slots, obs.slots);
  EXPECT_EQ(bare.arrivals, obs.arrivals);
  EXPECT_EQ(bare.admitted, obs.admitted);
  EXPECT_EQ(bare.delivered, obs.delivered);
  EXPECT_EQ(bare.duplicates, obs.duplicates);
  EXPECT_EQ(bare.backlog, obs.backlog);
  EXPECT_EQ(bare.engine_polls, obs.engine_polls);
}

TEST(HealthService, OverloadTripsHotspotOnTheContendedLevel) {
  // star:24 at poisson 0.8 with shedding: every leaf fights for the one
  // receiver, so genuine collisions concentrate on a single BFS level.
  const Graph g = gen::star(24);
  const ServiceRun r =
      RunMonitored(g, "poisson:0.8", 1200, 300, 5,
                   service::AdmissionPolicy::kShed, 1.0);
  EXPECT_GT(r.trips, 0u);
  EXPECT_NE(r.stream.find("\"rule\":\"hotspot\",\"state\":\"trip\""),
            std::string::npos)
      << r.stream;
  EXPECT_NE(r.stream.find("\"detail\":\"level="), std::string::npos);
}

TEST(HealthService, JammingTripsTheThroughputFloor) {
  // The same overload cell with 20% slot jamming: deliveries crater, and
  // the cumulative post-warmup rate falls through the floor for good.
  const Graph g = gen::star(24);
  const ServiceRun r =
      RunMonitored(g, "poisson:0.8", 1200, 300, 5,
                   service::AdmissionPolicy::kShed, 1.0, /*jam_prob=*/0.2);
  EXPECT_NE(r.stream.find("\"rule\":\"throughput\",\"state\":\"trip\""),
            std::string::npos)
      << r.stream;
}

}  // namespace
}  // namespace radiomc::health
