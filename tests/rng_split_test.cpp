// Property tests for Rng::split, the primitive the deterministic parallel
// trial-runner leans on: every (parent state, tag) pair must open a
// distinct, well-distributed stream. A collision would silently correlate
// two Monte Carlo trials; a biased first draw would skew every experiment
// that seeds per-trial work from split streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace radiomc {
namespace {

// 1000 parents x 1000 tags = 10^6 (parent, tag) pairs. Each pair's stream
// is fingerprinted by its first two outputs; no two streams may share a
// fingerprint. (Two independent 64-bit draws give a 128-bit fingerprint:
// the birthday bound for 10^6 samples is ~1e-27, so any collision is a
// bug, not luck.)
TEST(RngSplit, MillionParentTagPairsOpenDistinctStreams) {
  constexpr int kParents = 1000;
  constexpr int kTags = 1000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fp;
  fp.reserve(static_cast<std::size_t>(kParents) * kTags);
  for (int p = 0; p < kParents; ++p) {
    Rng parent(static_cast<std::uint64_t>(p) * 0x9E3779B97F4A7C15ull + 1);
    for (int t = 0; t < kTags; ++t) {
      Rng child = parent.split(static_cast<std::uint64_t>(t));
      const std::uint64_t a = child.next();
      const std::uint64_t b = child.next();
      fp.emplace_back(a, b);
    }
  }
  std::sort(fp.begin(), fp.end());
  const auto dup = std::adjacent_find(fp.begin(), fp.end());
  EXPECT_EQ(dup, fp.end())
      << "stream collision: two (parent, tag) pairs produced the "
      << "same first two outputs";
}

// Same parent, different tags: splitting must not depend only on the
// parent's consumed state (the tag must feed the derivation).
TEST(RngSplit, TagChangesTheStreamForAFixedParentState) {
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t tag = 0; tag < 4096; ++tag) {
    Rng parent(7);  // identical parent state every iteration
    firsts.push_back(parent.split(tag).next());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

// Chi-square uniformity of the first output's top byte over the million
// split streams. 256 cells, expected 3906.25 per cell; the statistic is
// chi2 ~ chi2(255) (mean 255, sd ~22.6) for uniform data, so 400 is a
// ~6.4-sigma acceptance bound: loose enough to never flake, tight enough
// to catch any real structure in the top bits.
TEST(RngSplit, FirstDrawTopByteIsUniformAcrossStreams) {
  constexpr int kParents = 1000;
  constexpr int kTags = 1000;
  constexpr double kSamples = 1.0 * kParents * kTags;
  std::vector<std::uint64_t> cells(256, 0);
  for (int p = 0; p < kParents; ++p) {
    Rng parent(static_cast<std::uint64_t>(p) + 0xABCDEF);
    for (int t = 0; t < kTags; ++t)
      ++cells[parent.split(static_cast<std::uint64_t>(t)).next() >> 56];
  }
  const double expected = kSamples / 256.0;
  double chi2 = 0;
  for (std::uint64_t c : cells) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 400.0) << "top byte of first split output is not uniform";
  EXPECT_GT(chi2, 150.0) << "suspiciously sub-random (chi2 far below df)";
}

// The low byte must be uniform too (xoshiro low bits are the classically
// weak ones in lesser generators).
TEST(RngSplit, FirstDrawLowByteIsUniformAcrossStreams) {
  constexpr int kParents = 500;
  constexpr int kTags = 1000;
  std::vector<std::uint64_t> cells(256, 0);
  for (int p = 0; p < kParents; ++p) {
    Rng parent(static_cast<std::uint64_t>(p) ^ 0x5EEDF00D);
    for (int t = 0; t < kTags; ++t)
      ++cells[parent.split(static_cast<std::uint64_t>(t)).next() & 0xFF];
  }
  const double expected = 500.0 * 1000.0 / 256.0;
  double chi2 = 0;
  for (std::uint64_t c : cells) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 400.0);
}

// split() advances the parent: consecutive splits with the same tag from
// the same Rng object still open different streams.
TEST(RngSplit, RepeatedSameTagSplitsDiffer) {
  Rng parent(99);
  const std::uint64_t a = parent.split(5).next();
  const std::uint64_t b = parent.split(5).next();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace radiomc
