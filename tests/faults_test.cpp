// Engine-level fault-injection semantics: crashed stations vanish from the
// trace entirely, down links carry nothing, jam/drop counters reconcile
// exactly with the engine's delivery accounting, and a FaultSchedule is a
// pure function of (seed, plan, graph) — byte-identical under any query
// batching and any trial-runner --jobs.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>

#include "faults/fault_schedule.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "radio/network.h"
#include "radio/trace.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "telemetry/telemetry.h"

namespace radiomc {
namespace {

/// Transmits its payload on channel 0 every slot; records receptions.
class Chatterbox final : public Station {
 public:
  std::uint64_t payload = 0;
  std::vector<std::pair<SlotTime, std::uint64_t>> received;

  void on_slot(SlotTime, std::span<std::optional<Message>> tx) override {
    Message m;
    m.payload = payload;
    tx[0] = m;
  }
  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    received.emplace_back(t, m.payload);
  }
};

/// Station 0 transmits every slot; everyone else only listens.
class Listener final : public Station {
 public:
  std::vector<std::pair<SlotTime, std::uint64_t>> received;
  void on_slot(SlotTime, std::span<std::optional<Message>>) override {}
  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    received.emplace_back(t, m.payload);
  }
};

struct FaultNet {
  std::deque<Chatterbox> talkers;
  std::deque<Listener> listeners;
  FaultSchedule faults;
  std::unique_ptr<RadioNetwork> net;

  /// `talk[v]` decides whether node v is a Chatterbox or a Listener.
  FaultNet(const Graph& g, const FaultPlan& plan, std::uint64_t seed,
           const std::vector<bool>& talk) {
    std::vector<Station*> ptrs;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (talk[v]) {
        talkers.emplace_back();
        talkers.back().payload = 1000 + v;
        ptrs.push_back(&talkers.back());
      } else {
        listeners.emplace_back();
        ptrs.push_back(&listeners.back());
      }
    }
    net = std::make_unique<RadioNetwork>(g);
    faults = FaultSchedule(g, plan, seed);
    net->set_faults(&faults);
    net->attach(std::move(ptrs));
  }
};

TEST(FaultSemantics, CrashedStationNeverAppearsInTrace) {
  // Everyone crashes in epoch 0 (rate 1, window from slot 0): from the
  // first slot on, no station may transmit, receive, or collide.
  const Graph g = gen::complete(6);
  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.epoch_slots = 1 << 20;  // one epoch covers the whole run
  FaultNet fn(g, plan, 42, std::vector<bool>(6, true));
  EventRecorder rec;
  fn.net->set_trace(&rec);
  fn.net->run(50);

  EXPECT_TRUE(rec.events().empty());
  for (auto& s : fn.talkers) EXPECT_TRUE(s.received.empty());
  EXPECT_EQ(fn.net->metrics().transmissions, 0u);
  EXPECT_EQ(fn.net->metrics().deliveries, 0u);
  EXPECT_EQ(fn.net->metrics().fault_crashed_slots, 6u * 50u);
  EXPECT_EQ(fn.faults.stats().crashes, 6u);
}

TEST(FaultSemantics, RecoveredStationResumesParticipation) {
  // Both stations crash in epoch 0 and recover at the epoch-1 boundary
  // (recover_rate 1, onset window closed): from slot 10 on, the talker
  // transmits again and every slot delivers.
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.recover_rate = 1.0;
  plan.epoch_slots = 10;
  plan.window_end = 10;
  FaultNet fn(g, plan, 7, {true, false});
  fn.net->run(40);

  const auto& rx = fn.listeners.front().received;
  ASSERT_EQ(rx.size(), 30u);
  for (const auto& [slot, payload] : rx) {
    EXPECT_GE(slot, 10u);
    EXPECT_EQ(payload, 1000u);
  }
  EXPECT_EQ(fn.net->metrics().transmissions, 30u);
  EXPECT_EQ(fn.net->metrics().fault_crashed_slots, 2u * 10u);
  EXPECT_EQ(fn.faults.stats().recoveries, 2u);
}

TEST(FaultSemantics, DownLinkDeliversNothing) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.link_down_rate = 1.0;
  plan.epoch_slots = 1 << 20;
  FaultNet fn(g, plan, 9, {true, false});
  fn.net->run(40);

  EXPECT_TRUE(fn.listeners.front().received.empty());
  EXPECT_EQ(fn.net->metrics().deliveries, 0u);
  // The transmitter is alive and keeps transmitting into the void; every
  // slot the sole incident link blocks its one propagation.
  EXPECT_EQ(fn.net->metrics().transmissions, 40u);
  EXPECT_EQ(fn.net->metrics().fault_link_blocked, 40u);
  EXPECT_EQ(fn.faults.stats().link_downs, 1u);
}

TEST(FaultSemantics, JamCountersReconcileWithDeliveries) {
  // 0 -> 1 clean reception every slot; with jamming, every slot is either
  // a delivery or a jam — the two counters must partition the run exactly.
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.jam_prob = 0.35;
  FaultNet fn(g, plan, 11, {true, false});
  EventRecorder rec;
  fn.net->set_trace(&rec);
  const std::uint64_t kSlots = 400;
  fn.net->run(kSlots);

  const NetMetrics& m = fn.net->metrics();
  EXPECT_EQ(m.deliveries + m.fault_jams, kSlots);
  EXPECT_GT(m.fault_jams, 0u);
  EXPECT_GT(m.deliveries, 0u);
  // A jam surfaces in the trace as a collision with tx_neighbors == 1 —
  // silence indistinguishable from a collision for the receiver, but
  // distinguishable for the trace; counts must agree with the metrics.
  std::uint64_t jam_events = 0;
  for (const auto& e : rec.events())
    if (e.kind == EventRecorder::Kind::kCollision) {
      EXPECT_EQ(e.tx_neighbors, 1u);
      ++jam_events;
    }
  EXPECT_EQ(jam_events, m.fault_jams);
  EXPECT_EQ(m.collision_events, 0u);  // jams are not genuine collisions
  EXPECT_EQ(fn.listeners.front().received.size(), m.deliveries);
}

TEST(FaultSemantics, DropCountersReconcileWithDeliveries) {
  const Graph g = gen::path(2);
  FaultPlan plan;
  plan.drop_prob = 0.25;
  FaultNet fn(g, plan, 13, {true, false});
  const std::uint64_t kSlots = 400;
  fn.net->run(kSlots);

  const NetMetrics& m = fn.net->metrics();
  EXPECT_EQ(m.deliveries + m.fault_drops, kSlots);
  EXPECT_GT(m.fault_drops, 0u);
  EXPECT_GT(m.deliveries, 0u);
}

TEST(FaultSemantics, WindowGatesOnsetButNotHealing) {
  // Crashes may strike only in epoch 0; recovery (rate 1) keeps working
  // after the window closes, so by epoch 1 everyone is back.
  const Graph g = gen::complete(5);
  FaultPlan plan;
  plan.crash_rate = 1.0;
  plan.recover_rate = 1.0;
  plan.epoch_slots = 16;
  plan.window_end = 16;  // only epoch 0 is inside the window
  FaultSchedule sched(g, plan, 3);

  sched.begin_slot(0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_FALSE(sched.node_alive(v));
  sched.begin_slot(16);
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(sched.node_alive(v));
  sched.begin_slot(500);  // no new onset past the window
  for (NodeId v = 0; v < 5; ++v) EXPECT_TRUE(sched.node_alive(v));
  EXPECT_EQ(sched.stats().crashes, 5u);
  EXPECT_EQ(sched.stats().recoveries, 5u);
}

/// Serializes every decision the schedule makes over a probe grid into one
/// comparable string. `jump` drives begin_slot straight to the end instead
/// of slot by slot — batching must not change anything.
std::string decision_string(const Graph& g, const FaultPlan& plan,
                            std::uint64_t seed, bool jump) {
  FaultSchedule s(g, plan, seed);
  std::string out;
  const std::uint64_t kHorizon = 600;
  if (jump) {
    s.begin_slot(kHorizon - 1);
  } else {
    for (std::uint64_t t = 0; t < kHorizon; ++t) s.begin_slot(t);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out += s.node_alive(v) ? 'A' : 'a';
    for (std::size_t k = 0; k < g.neighbors(v).size(); ++k)
      out += s.link_up(v, k) ? 'L' : 'l';
  }
  for (std::uint64_t t = 0; t < kHorizon; t += 7)
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      for (std::uint32_t ch = 0; ch < 2; ++ch) {
        out += s.jammed(t, v, ch) ? 'J' : '.';
        out += s.dropped(t, v, ch) ? 'D' : '.';
      }
  const auto& st = s.stats();
  out += " " + std::to_string(st.crashes) + "/" +
         std::to_string(st.recoveries) + "/" + std::to_string(st.link_downs) +
         "/" + std::to_string(st.link_ups);
  return out;
}

FaultPlan everything_plan() {
  FaultPlan plan;
  plan.crash_rate = 0.3;
  plan.recover_rate = 0.4;
  plan.link_down_rate = 0.2;
  plan.link_up_rate = 0.5;
  plan.jam_prob = 0.15;
  plan.drop_prob = 0.1;
  plan.epoch_slots = 32;
  return plan;
}

TEST(FaultSchedule, PureFunctionOfSeedPlanGraph) {
  const Graph g = gen::grid(4, 4);
  const FaultPlan plan = everything_plan();
  const std::string a = decision_string(g, plan, 77, /*jump=*/false);
  const std::string b = decision_string(g, plan, 77, /*jump=*/true);
  EXPECT_EQ(a, b);
  // And a sanity check that the seed actually matters.
  EXPECT_NE(a, decision_string(g, plan, 78, false));
}

TEST(FaultSchedule, IdenticalAcrossTrialRunnerJobs) {
  // The satellite determinism contract: trial t's schedule derives from
  // root.split(t) exactly like the trial-runner's seeds, so the full
  // decision transcript must not depend on the worker count.
  const Graph g = gen::grid(4, 4);
  const FaultPlan plan = everything_plan();
  Rng root(5);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 8; ++t) seeds.push_back(root.split(t).next());

  const auto with_jobs = [&](unsigned jobs) {
    return run_indexed(8, jobs, [&](std::uint64_t t) {
      return decision_string(g, plan, seeds[t], (t % 2) == 1);
    });
  };
  const auto one = with_jobs(1);
  const auto eight = with_jobs(8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t t = 0; t < one.size(); ++t) EXPECT_EQ(one[t], eight[t]);
}

TEST(FaultSchedule, AllZeroPlanIsDisabled) {
  const Graph g = gen::path(4);
  FaultSchedule s(g, FaultPlan{}, 1);
  EXPECT_FALSE(s.enabled());
  s.begin_slot(1000);
  EXPECT_TRUE(s.node_alive(0));
  EXPECT_FALSE(s.jammed(5, 0, 0));
  EXPECT_FALSE(s.dropped(5, 0, 0));
}

TEST(FaultSemantics, ZeroRatePlanLeavesCollectionByteIdentical) {
  // Zero-cost-when-disabled, observed end to end: an explicit all-zero
  // plan must not perturb a protocol run in any way — same completion
  // slot, same telemetry document.
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<Message> init;
  for (NodeId v = 1; v < 5; ++v) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = v;
    m.seq = 0;
    init.push_back(m);
  }

  const auto run = [&](bool with_plan) {
    telemetry::Telemetry tel;
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    cfg.telemetry = &tel;
    if (with_plan) {
      cfg.faults = FaultPlan{};  // all rates zero
      cfg.stall_slots = 0;
    }
    const auto out = run_collection(g, tree, init, cfg, 99);
    EXPECT_TRUE(out.completed);
    EXPECT_EQ(out.status, RunStatus::kOk);
    return std::make_pair(out.slots, tel.to_json());
  };
  const auto base = run(false);
  const auto with_zero = run(true);
  EXPECT_EQ(base.first, with_zero.first);
  EXPECT_EQ(base.second, with_zero.second);
}

}  // namespace
}  // namespace radiomc
