// The ranking application (§7): produces an order-preserving renumbering
// 1..n of arbitrary distinct application ids.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.h"
#include "protocols/dfs_numbering.h"
#include "protocols/ranking.h"
#include "protocols/setup.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

void check_ranks(const std::vector<std::uint64_t>& ids,
                 const std::vector<std::uint32_t>& rank) {
  const auto n = ids.size();
  // Ranks are a permutation of 1..n.
  std::vector<std::uint32_t> sorted = rank;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(sorted[i], static_cast<std::uint32_t>(i + 1));
  // Order-preserving.
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      EXPECT_EQ(ids[a] < ids[b], rank[a] < rank[b]);
}

class RankingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankingSweep, OrderPreservingPermutation) {
  Rng rng(1100 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(12));
  graphs.push_back(gen::grid(3, 5));
  graphs.push_back(gen::gnp_connected(18, 0.3, rng));
  for (const Graph& g : graphs) {
    const BfsTree tree =
        oracle_bfs_tree(g, static_cast<NodeId>(rng.next_below(g.num_nodes())));
    const PreparationResult prep = run_preparation(g, tree);
    ASSERT_TRUE(prep.ok);
    std::vector<std::uint64_t> ids(g.num_nodes());
    for (auto& id : ids) id = rng.next();
    const RankingOutcome out = run_ranking(g, prep, ids, rng.next());
    ASSERT_TRUE(out.completed);
    check_ranks(ids, out.rank);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingSweep, ::testing::Range(0, 4));

TEST(Ranking, AlreadySortedIds) {
  const Graph g = gen::path(8);
  const PreparationResult prep = run_preparation(g, oracle_bfs_tree(g, 0));
  ASSERT_TRUE(prep.ok);
  std::vector<std::uint64_t> ids(8);
  std::iota(ids.begin(), ids.end(), 100);
  const RankingOutcome out = run_ranking(g, prep, ids, 3);
  ASSERT_TRUE(out.completed);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(out.rank[v], v + 1);
}

TEST(Ranking, ReverseSortedIds) {
  const Graph g = gen::star(7);
  const PreparationResult prep = run_preparation(g, oracle_bfs_tree(g, 0));
  ASSERT_TRUE(prep.ok);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 7; ++i) ids.push_back(1000 - i);
  const RankingOutcome out = run_ranking(g, prep, ids, 4);
  ASSERT_TRUE(out.completed);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(out.rank[v], 7 - v);
}

TEST(Ranking, SingleNode) {
  const Graph g = gen::path(1);
  const PreparationResult prep = run_preparation(g, oracle_bfs_tree(g, 0));
  const RankingOutcome out = run_ranking(g, prep, {42}, 5);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.rank[0], 1u);
}

TEST(Ranking, WorksOnRealSetupOutput) {
  Rng rng(6);
  const Graph g = gen::grid(3, 4);
  const SetupOutcome setup = run_setup(g, rng.next());
  ASSERT_TRUE(setup.ok);
  PreparationResult prep;
  prep.ok = true;
  prep.labels = setup.labels;
  prep.routing = setup.routing;
  std::vector<std::uint64_t> ids(g.num_nodes());
  for (auto& id : ids) id = rng.next();
  const RankingOutcome out = run_ranking(g, prep, ids, rng.next());
  ASSERT_TRUE(out.completed);
  check_ranks(ids, out.rank);
}

}  // namespace
}  // namespace radiomc
