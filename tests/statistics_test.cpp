// Statistical quality checks on the randomness the protocols rely on:
// chi-square uniformity of the RNG, independence of split streams, the
// geometric law of Decay survival, and the advertised distribution of the
// engine's capture choice.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "protocols/decay.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

// Chi-square critical values at p = 0.001 (very generous; these are
// fixed-seed tests, so they either always pass or indicate a real defect).
double chi2_crit_999(int dof) {
  // Interpolated table for the dofs used below.
  switch (dof) {
    case 15: return 37.7;
    case 63: return 103.4;
    case 255: return 340.0;
    default: return 3.0 * dof;  // loose fallback
  }
}

TEST(RngStats, ChiSquareUniformBuckets) {
  Rng rng(0x57A7);
  constexpr int kBuckets = 64;
  constexpr int kSamples = 640'000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = double(kSamples) / kBuckets;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, chi2_crit_999(kBuckets - 1));
}

TEST(RngStats, LowBitsAreUniformToo) {
  Rng rng(0x57A8);
  std::array<int, 16> counts{};
  for (int i = 0; i < 160'000; ++i) ++counts[rng.next() & 15];
  const double expected = 10'000;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, chi2_crit_999(15));
}

TEST(RngStats, SplitStreamsUncorrelated) {
  Rng parent(0x57A9);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  // Pearson correlation of paired doubles ~ 0.
  OnlineStats xs, ys;
  double sxy = 0;
  const int n = 100'000;
  std::vector<double> xv(n), yv(n);
  for (int i = 0; i < n; ++i) {
    xv[i] = a.next_double();
    yv[i] = b.next_double();
    xs.add(xv[i]);
    ys.add(yv[i]);
  }
  for (int i = 0; i < n; ++i)
    sxy += (xv[i] - xs.mean()) * (yv[i] - ys.mean());
  const double corr =
      sxy / (static_cast<double>(n - 1) * xs.stddev() * ys.stddev());
  EXPECT_LT(std::abs(corr), 0.02);
}

TEST(RngStats, NextDoubleMoments) {
  Rng rng(0x57AA);
  OnlineStats s;
  for (int i = 0; i < 400'000; ++i) s.add(rng.next_double());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
  EXPECT_GE(s.min(), 0.0);
  EXPECT_LT(s.max(), 1.0);
}

TEST(DecayStats, SurvivalIsGeometricHalf) {
  // P(exactly j transmissions) = 2^-j for j < L, 2^-(L-1) at the cap.
  Rng rng(0x57AB);
  constexpr int L = 8;
  Histogram h;
  for (int trial = 0; trial < 200'000; ++trial) {
    DecayProcess d(L);
    d.start();
    int tx = 0;
    while (d.wants_transmit()) {
      ++tx;
      d.after_transmit(rng);
    }
    h.add(tx);
  }
  for (int j = 1; j < L; ++j)
    EXPECT_NEAR(h.pmf(j), std::pow(0.5, j), 0.004) << "j=" << j;
  EXPECT_NEAR(h.pmf(L), std::pow(0.5, L - 1), 0.004);
}

}  // namespace
}  // namespace radiomc
