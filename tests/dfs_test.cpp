// The §5.1 preparation: token DFS traversals. Checks that they are
// collision-free and deterministic, that the distributed DFS numbering
// matches the centralized oracle, that every node ends up with exactly the
// O(deg(v) log n)-bit routing state the paper prescribes, and that the
// level-consistency watch rejects corrupted BFS levels.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/dfs_numbering.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

class PreparationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PreparationSweep, MatchesOracleAndNeverCollides) {
  Rng rng(600 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(15));
  graphs.push_back(gen::grid(4, 5));
  graphs.push_back(gen::gnp_connected(25, 0.25, rng));
  graphs.push_back(gen::star(10));
  graphs.push_back(gen::complete(8));
  graphs.push_back(gen::random_tree(20, rng));
  for (const Graph& g : graphs) {
    const NodeId root = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const BfsTree tree = oracle_bfs_tree(g, root);
    const PreparationResult prep = run_preparation(g, tree);
    ASSERT_TRUE(prep.ok) << "n=" << g.num_nodes();
    EXPECT_EQ(prep.collisions, 0u) << "token DFS must be collision-free";

    const DfsLabels oracle = oracle_dfs_labels(tree);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(prep.labels.number[v], oracle.number[v]) << "node " << v;
      EXPECT_EQ(prep.labels.max_desc[v], oracle.max_desc[v]) << "node " << v;
      // Routing state matches the tree.
      const RoutingInfo& r = prep.routing[v];
      EXPECT_EQ(r.parent, tree.parent[v]);
      EXPECT_EQ(r.level, tree.level[v]);
      EXPECT_EQ(r.children.size(), tree.children[v].size());
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        const NodeId c = r.children[i];
        EXPECT_EQ(c, tree.children[v][i]);
        EXPECT_EQ(r.child_number[i], oracle.number[c]);
        EXPECT_EQ(r.child_max_desc[i], oracle.max_desc[c]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreparationSweep, ::testing::Range(0, 5));

TEST(Preparation, TraversalTakesTwoNMinusTwoTransmissions) {
  const Graph g = gen::path(9);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  ASSERT_TRUE(prep.ok);
  // Each traversal is budgeted 2n+2 slots; slots counts both budgets.
  EXPECT_EQ(prep.slots, 2u * (2 * 9 + 2));
}

TEST(Preparation, SingleNode) {
  const Graph g = gen::path(1);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  ASSERT_TRUE(prep.ok);
  EXPECT_EQ(prep.labels.number[0], 0u);
  EXPECT_EQ(prep.labels.max_desc[0], 0u);
}

TEST(Preparation, RoutingIntervalsRouteEveryPair) {
  Rng rng(61);
  const Graph g = gen::gnp_connected(22, 0.25, rng);
  const BfsTree tree = oracle_bfs_tree(g, 3);
  const PreparationResult prep = run_preparation(g, tree);
  ASSERT_TRUE(prep.ok);
  // Simulate the §5 routing rule centrally: from src, go up until the
  // interval contains dst's address, then descend via child_towards. It
  // must reach dst in at most 2*depth hops for every ordered pair.
  for (NodeId src = 0; src < g.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      const std::uint32_t addr = prep.labels.number[dst];
      NodeId cur = src;
      int hops = 0;
      while (prep.routing[cur].number != addr) {
        ASSERT_LT(hops++, 2 * static_cast<int>(tree.depth) + 2)
            << src << "->" << dst;
        if (prep.routing[cur].subtree_contains(addr)) {
          cur = prep.routing[cur].child_towards(addr);
          ASSERT_NE(cur, kNoNode);
        } else {
          cur = prep.routing[cur].parent;
          ASSERT_NE(cur, kNoNode);
        }
      }
      EXPECT_EQ(cur, dst);
    }
  }
}

TEST(Preparation, ConsistencyWatchAcceptsTrueLevels) {
  Rng rng(62);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  EXPECT_TRUE(prep.ok);
}

TEST(Preparation, ConsistencyWatchRejectsCorruptedLevels) {
  // Feed the traversal a "BFS tree" whose levels are wrong: a path rooted
  // at 0 but with node 3's level inflated. run_preparation must refuse.
  const Graph g = gen::path(6);
  BfsTree tree = oracle_bfs_tree(g, 0);
  tree.level[3] = 5;  // violates level = 1 + min(neighbor levels)
  const PreparationResult prep = run_preparation(g, tree);
  EXPECT_FALSE(prep.ok);
}

TEST(Preparation, ConsistencyWatchRejectsAdjacentLevelGap) {
  const Graph g = gen::path(6);
  BfsTree tree = oracle_bfs_tree(g, 0);
  // Shift everything beyond node 2 up by 2: neighbors 2-3 now differ by 3.
  for (NodeId v = 3; v < 6; ++v) tree.level[v] += 2;
  const PreparationResult prep = run_preparation(g, tree);
  EXPECT_FALSE(prep.ok);
}

}  // namespace
}  // namespace radiomc
