// Tests for the performance-observability subsystem (src/perf/):
//
//  * Profiler span-tree semantics: nesting, same-name-same-parent
//    aggregation, counters, balanced/unbalanced depth accounting;
//  * the radiomc.perf/v1 report schema, pinned by parsing the emitted
//    document back through the offline JSON parser;
//  * the SnapshotStreamer JSONL stream: golden layout without a profiler
//    (a pure function of its inputs), the perf member with one, the
//    idempotent end record, and the shared CLI flag-validation contract;
//  * the regression differ: synthetic slowdowns must be flagged in both
//    the perf and bench schemas, matched rows must pass, and incomparable
//    documents must be rejected — the radiomc_perf CI gate in miniature;
//  * determinism: a collection run instrumented with a profiler and a
//    snapshot hook produces the same simulated outcome as a bare run
//    (measurement must never steer the model).

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "perf/json_value.h"
#include "perf/profiler.h"
#include "perf/regression.h"
#include "perf/report.h"
#include "perf/snapshot.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "telemetry/metrics.h"

namespace {

using radiomc::perf::DiffOptions;
using radiomc::perf::DiffReport;
using radiomc::perf::JsonValue;
using radiomc::perf::PerfSpan;
using radiomc::perf::Profiler;
using radiomc::perf::SnapshotStreamer;
using radiomc::perf::SpanNode;

// ---------------------------------------------------------------------------
// Profiler span tree.
// ---------------------------------------------------------------------------

TEST(Profiler, NestedSpansBuildATree) {
  Profiler p;
  {
    PerfSpan outer(&p, "outer");
    { PerfSpan inner(&p, "inner"); }
    { PerfSpan inner(&p, "inner"); }
    { PerfSpan other(&p, "other"); }
  }
  EXPECT_EQ(p.open_depth(), 0u);
  const SpanNode& root = p.root();
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1u);
  ASSERT_EQ(outer.children.size(), 2u);  // "inner" aggregated, then "other"
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_EQ(outer.children[0]->count, 2u);
  EXPECT_EQ(outer.children[1]->name, "other");
  EXPECT_EQ(outer.children[1]->count, 1u);
}

TEST(Profiler, SameNameUnderDifferentParentsStaysSeparate) {
  Profiler p;
  {
    PerfSpan a(&p, "a");
    PerfSpan step(&p, "step");
  }
  {
    PerfSpan b(&p, "b");
    PerfSpan step(&p, "step");
  }
  const SpanNode& root = p.root();
  ASSERT_EQ(root.children.size(), 2u);
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  ASSERT_EQ(root.children[1]->children.size(), 1u);
  EXPECT_EQ(root.children[0]->children[0]->count, 1u);
  EXPECT_EQ(root.children[1]->children[0]->count, 1u);
}

TEST(Profiler, AggregationTracksCountTotalMinMax) {
  Profiler p;
  for (int i = 0; i < 5; ++i) PerfSpan s(&p, "loop");
  const SpanNode& loop = *p.root().children[0];
  EXPECT_EQ(loop.count, 5u);
  EXPECT_GE(loop.max_ns, loop.min_ns);
  EXPECT_GE(loop.total_ns, loop.max_ns);
  EXPECT_LE(loop.min_ns * 5, loop.total_ns);
}

TEST(Profiler, CountersAccumulateAndUnbalancedEndIsIgnored) {
  Profiler p;
  p.count("slots", 10);
  p.count("slots", 5);
  p.count("attempts");
  p.end();  // no open span: must not underflow past the root
  EXPECT_EQ(p.open_depth(), 0u);
  ASSERT_EQ(p.counters().size(), 2u);
  EXPECT_EQ(p.counters().at("slots"), 15u);
  EXPECT_EQ(p.counters().at("attempts"), 1u);
}

TEST(Profiler, NullProfilerSpanIsANoOp) {
  // Must not crash; this is the "profiling off" path every driver takes.
  PerfSpan s(nullptr, "never");
}

TEST(Profiler, OpenDepthCountsUnclosedSpans) {
  Profiler p;
  p.begin("a");
  p.begin("b");
  EXPECT_EQ(p.open_depth(), 2u);
  p.end();
  EXPECT_EQ(p.open_depth(), 1u);
}

// ---------------------------------------------------------------------------
// radiomc.perf/v1 report schema.
// ---------------------------------------------------------------------------

TEST(PerfReport, EmittedDocumentMatchesSchema) {
  Profiler p;
  {
    PerfSpan run(&p, "setup.attempt");
    PerfSpan epoch(&p, "setup.leader_election");
  }
  p.count("setup.slots", 128);

  radiomc::perf::RunInfo run;
  run.tool = "perf_test";
  run.command = "schema-check";
  run.jobs = 3;
  run.slots = 128;

  const auto doc = radiomc::perf::parse_json(to_perf_json(p, run));
  ASSERT_TRUE(doc.ok) << doc.error;
  const JsonValue& v = doc.value;

  EXPECT_EQ(v.at("schema").as_string(), radiomc::perf::kPerfSchemaVersion);
  EXPECT_EQ(v.at("run").at("tool").as_string(), "perf_test");
  EXPECT_EQ(v.at("run").at("command").as_string(), "schema-check");
  EXPECT_EQ(v.at("run").at("jobs").as_int(), 3);
  EXPECT_EQ(v.at("slots").as_int(), 128);
  EXPECT_TRUE(v.at("wall_ms").is_number());
  EXPECT_TRUE(v.at("cpu_ms").is_number());
  EXPECT_TRUE(v.at("slots_per_sec").is_number());
  EXPECT_TRUE(v.at("peak_rss_bytes").is_number());
  EXPECT_TRUE(v.at("alloc_in_use_bytes").is_number());
  EXPECT_EQ(v.at("open_spans").as_int(), 0);
  EXPECT_EQ(v.at("counters").at("setup.slots").as_int(), 128);

  ASSERT_TRUE(v.at("spans").is_array());
  ASSERT_EQ(v.at("spans").items().size(), 1u);
  const JsonValue& attempt = v.at("spans").items()[0];
  EXPECT_EQ(attempt.at("name").as_string(), "setup.attempt");
  EXPECT_EQ(attempt.at("count").as_int(), 1);
  EXPECT_TRUE(attempt.at("total_ns").is_number());
  EXPECT_TRUE(attempt.at("min_ns").is_number());
  EXPECT_TRUE(attempt.at("max_ns").is_number());
  ASSERT_EQ(attempt.at("children").items().size(), 1u);
  EXPECT_EQ(attempt.at("children").items()[0].at("name").as_string(),
            "setup.leader_election");
}

TEST(PerfReport, UnbalancedRunIsVisibleInOpenSpans) {
  Profiler p;
  p.begin("leaked");
  radiomc::perf::RunInfo run;
  run.tool = "perf_test";
  const auto doc = radiomc::perf::parse_json(to_perf_json(p, run));
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.value.at("open_spans").as_int(), 1);
}

// ---------------------------------------------------------------------------
// Snapshot stream.
// ---------------------------------------------------------------------------

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

TEST(SnapshotStream, GoldenLayoutWithoutProfiler) {
  // With no registry and no profiler every byte of the stream is a pure
  // function of the pulse sequence — pin it exactly.
  std::ostringstream out;
  SnapshotStreamer snap(out, /*every_slots=*/10, /*metrics=*/nullptr);
  for (radiomc::SlotTime t = 1; t <= 25; ++t) snap.on_slot_done(t);
  snap.finish();

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            "{\"ev\":\"schema\",\"v\":\"radiomc.snap/v1\",\"every\":10}");
  EXPECT_EQ(lines[1], "{\"ev\":\"snap\",\"slot\":10,\"metrics\":null}");
  EXPECT_EQ(lines[2], "{\"ev\":\"snap\",\"slot\":20,\"metrics\":null}");
  EXPECT_EQ(lines[3],
            "{\"ev\":\"end\",\"slot\":25,\"snapshots\":2,\"clean\":true}");
  EXPECT_EQ(snap.snapshots_written(), 2u);
  EXPECT_EQ(snap.dropped_snapshots(), 0u);
}

TEST(SnapshotStream, MetricsAreEmbeddedAndStreamsAreDeterministic) {
  const auto run_once = [] {
    radiomc::telemetry::MetricsRegistry reg;
    reg.counter("collection.delivered").inc(7);
    std::ostringstream out;
    SnapshotStreamer snap(out, 5, &reg);
    for (radiomc::SlotTime t = 1; t <= 12; ++t) snap.on_slot_done(t);
    snap.finish();
    return out.str();
  };
  const std::string a = run_once();
  EXPECT_EQ(a, run_once());  // byte-identical across runs
  const std::vector<std::string> lines = Lines(a);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(lines[1].find("collection.delivered"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"perf\""), std::string::npos);
}

TEST(SnapshotStream, ProfilerAddsThePerfMember) {
  Profiler prof;
  std::ostringstream out;
  SnapshotStreamer snap(out, 2, nullptr, &prof);
  for (radiomc::SlotTime t = 1; t <= 4; ++t) snap.on_slot_done(t);
  snap.finish();
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find("\"perf\":{\"wall_ms\":"), std::string::npos);
  EXPECT_NE(lines[1].find("interval_slots_per_sec"), std::string::npos);
}

TEST(SnapshotStream, FinishIsIdempotentAndStopsSnapshots) {
  std::ostringstream out;
  SnapshotStreamer snap(out, 2, nullptr);
  snap.on_slot_done(2);
  snap.finish();
  snap.on_slot_done(4);  // after finish: ignored
  snap.finish();         // second finish: no second end record
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2],
            "{\"ev\":\"end\",\"slot\":2,\"snapshots\":1,\"clean\":true}");
}

TEST(SnapshotStream, DroppedCadencePointsDirtyTheFooter) {
  // A stream that goes bad mid-run must not masquerade as complete: the
  // missed cadence points are counted and the footer reports clean:false.
  std::ostringstream out;
  SnapshotStreamer snap(out, 2, nullptr);
  snap.on_slot_done(2);
  out.setstate(std::ios::badbit);  // stream goes bad
  snap.on_slot_done(4);            // dropped
  snap.on_slot_done(6);            // dropped
  out.clear();                     // recovers in time for the footer
  snap.on_slot_done(8);
  snap.finish();
  EXPECT_EQ(snap.snapshots_written(), 2u);
  EXPECT_EQ(snap.dropped_snapshots(), 2u);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines.back(),
            "{\"ev\":\"end\",\"slot\":8,\"snapshots\":2,\"clean\":false,"
            "\"dropped\":2}");
}

TEST(SnapshotStream, UnwritablePathReportsNotOk) {
  SnapshotStreamer snap("/nonexistent-dir/snap.jsonl", 10, nullptr);
  EXPECT_FALSE(snap.ok());
}

TEST(SnapshotFlags, CadenceWithoutDestinationIsRejected) {
  try {
    SnapshotStreamer::validate_flags(/*has_out=*/false, /*has_every=*/true,
                                     100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "--snapshot-every requires --snapshot-out (nowhere to "
                 "stream)");
  }
}

TEST(SnapshotFlags, DestinationWithoutCadenceIsRejected) {
  try {
    SnapshotStreamer::validate_flags(/*has_out=*/true, /*has_every=*/false,
                                     0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "--snapshot-out requires --snapshot-every (no default "
                 "cadence)");
  }
}

TEST(SnapshotFlags, ZeroCadenceIsRejectedAndValidComboPasses) {
  EXPECT_THROW(SnapshotStreamer::validate_flags(true, true, 0),
               std::invalid_argument);
  EXPECT_NO_THROW(SnapshotStreamer::validate_flags(true, true, 50));
  EXPECT_NO_THROW(SnapshotStreamer::validate_flags(false, false, 0));
}

// ---------------------------------------------------------------------------
// Regression differ (the radiomc_perf gate in miniature).
// ---------------------------------------------------------------------------

JsonValue Parse(const std::string& text) {
  const auto r = radiomc::perf::parse_json(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.value;
}

std::string PerfDoc(double slots_per_sec, double span_ns) {
  std::ostringstream s;
  s << "{\"schema\":\"radiomc.perf/v1\",\"wall_ms\":100.0,"
    << "\"slots_per_sec\":" << slots_per_sec << ","
    << "\"spans\":[{\"name\":\"drain\",\"total_ns\":" << span_ns
    << ",\"children\":[]}]}";
  return s.str();
}

TEST(RegressionDiff, SyntheticPerfSlowdownIsFlagged) {
  const JsonValue base = Parse(PerfDoc(1000.0, 1e6));
  const JsonValue slow = Parse(PerfDoc(100.0, 5e7));  // 10x and 50x slower
  const DiffReport r =
      radiomc::perf::diff_reports(base, slow, DiffOptions{2.0});
  ASSERT_TRUE(r.comparable) << r.error;
  EXPECT_TRUE(r.any_regression());
  std::size_t regressed = 0;
  for (const auto& e : r.entries) regressed += e.regressed ? 1 : 0;
  // slots_per_sec and span_speed[drain] regress; wall_ms is unchanged.
  EXPECT_EQ(regressed, 2u);
}

TEST(RegressionDiff, IdenticalPerfReportsPass) {
  const JsonValue doc = Parse(PerfDoc(1000.0, 1e6));
  const DiffReport r =
      radiomc::perf::diff_reports(doc, doc, DiffOptions{2.0});
  ASSERT_TRUE(r.comparable);
  EXPECT_FALSE(r.any_regression());
  EXPECT_GE(r.entries.size(), 3u);  // slots_per_sec, wall, span
}

std::string BenchDoc(double grid_rate, double rng_rate,
                     bool include_rng_row = true) {
  std::ostringstream s;
  s << "{\"schema\":\"radiomc.bench/v1\",\"bench\":\"ENGINE\",\"claim\":\"c\","
    << "\"rows\":[{\"case\":\"engine_slots\",\"topology\":\"grid\","
    << "\"workload\":\"idle\",\"n\":256,\"slots_per_sec\":" << grid_rate
    << "}";
  if (include_rng_row)
    s << ",{\"case\":\"rng_next\",\"ops_per_sec\":" << rng_rate << "}";
  s << "],\"pass\":true}";
  return s.str();
}

TEST(RegressionDiff, SyntheticBenchSlowdownIsFlaggedByRowKey) {
  const JsonValue base = Parse(BenchDoc(300000.0, 3e8));
  const JsonValue slow = Parse(BenchDoc(300000.0, 1e7));  // only rng slowed
  const DiffReport r =
      radiomc::perf::diff_reports(base, slow, DiffOptions{2.0});
  ASSERT_TRUE(r.comparable) << r.error;
  ASSERT_EQ(r.entries.size(), 2u);
  std::size_t regressed = 0;
  for (const auto& e : r.entries) {
    if (e.regressed) {
      ++regressed;
      EXPECT_NE(e.metric.find("rng_next"), std::string::npos) << e.metric;
    }
  }
  EXPECT_EQ(regressed, 1u);
}

TEST(RegressionDiff, MissingBaselineRowCountsAsZeroRate) {
  const JsonValue base = Parse(BenchDoc(300000.0, 3e8));
  const JsonValue lost =
      Parse(BenchDoc(300000.0, 0.0, /*include_rng_row=*/false));
  const DiffReport r =
      radiomc::perf::diff_reports(base, lost, DiffOptions{2.0});
  ASSERT_TRUE(r.comparable);
  EXPECT_TRUE(r.any_regression());  // vanished row -> current rate 0
}

TEST(RegressionDiff, MismatchedSchemasAndBadThresholdAreRejected) {
  const JsonValue perf = Parse(PerfDoc(1.0, 1.0));
  const JsonValue bench = Parse(BenchDoc(1.0, 1.0));
  EXPECT_FALSE(
      radiomc::perf::diff_reports(perf, bench, DiffOptions{2.0}).comparable);
  EXPECT_FALSE(
      radiomc::perf::diff_reports(perf, perf, DiffOptions{0.5}).comparable);
}

// ---------------------------------------------------------------------------
// Determinism: instrumentation must not steer the model.
// ---------------------------------------------------------------------------

radiomc::CollectionOutcome RunCollection(bool instrumented,
                                         Profiler* prof,
                                         SnapshotStreamer* snap) {
  const radiomc::Graph g = radiomc::gen::grid(5, 5);
  const radiomc::BfsTree tree = radiomc::oracle_bfs_tree(g, 0);
  std::vector<radiomc::Message> init;
  for (radiomc::NodeId v = 1; v < g.num_nodes(); ++v) {
    radiomc::Message m;
    m.kind = radiomc::MsgKind::kData;
    m.origin = v;
    init.push_back(m);
  }
  radiomc::CollectionConfig cfg = radiomc::CollectionConfig::for_graph(g);
  if (instrumented) {
    cfg.profiler = prof;
    cfg.slot_hook = snap;
  }
  return run_collection(g, tree, init, cfg, /*seed=*/0xC0FFEE);
}

TEST(PerfDeterminism, ProfiledRunMatchesBareRun) {
  const radiomc::CollectionOutcome bare =
      RunCollection(false, nullptr, nullptr);

  Profiler prof;
  std::ostringstream snap_out;
  SnapshotStreamer snap(snap_out, 16, nullptr, &prof);
  const radiomc::CollectionOutcome instrumented =
      RunCollection(true, &prof, &snap);
  snap.finish();

  EXPECT_EQ(bare.completed, instrumented.completed);
  EXPECT_EQ(bare.slots, instrumented.slots);
  EXPECT_EQ(bare.phases, instrumented.phases);
  ASSERT_EQ(bare.deliveries.size(), instrumented.deliveries.size());
  for (std::size_t i = 0; i < bare.deliveries.size(); ++i) {
    EXPECT_EQ(bare.deliveries[i].slot, instrumented.deliveries[i].slot);
    EXPECT_EQ(bare.deliveries[i].msg.origin,
              instrumented.deliveries[i].msg.origin);
  }

  // The instrumented run actually measured something.
  EXPECT_GE(prof.root().children.size(), 1u);
  EXPECT_EQ(prof.counters().at("collection.slots"), instrumented.slots);
  EXPECT_GT(snap.snapshots_written(), 0u);
}

}  // namespace
