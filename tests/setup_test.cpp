// The full setup phase (§2 + §5.1): always terminates with a correct BFS
// tree, correct DFS labels, and the elected leader as root, across
// topologies and seeds; the schedule is globally consistent; the outcome
// plugs directly into the data-plane protocols.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/point_to_point.h"
#include "protocols/setup.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc {
namespace {

class SetupSweep : public ::testing::TestWithParam<int> {};

TEST_P(SetupSweep, ProducesVerifiedBfsTreeAndLabels) {
  Rng rng(1000 + GetParam());
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(18));
  graphs.push_back(gen::grid(4, 5));
  graphs.push_back(gen::gnp_connected(24, 0.25, rng));
  graphs.push_back(gen::star(12));
  graphs.push_back(gen::complete(10));
  graphs.push_back(gen::unit_disk_connected(20, 0.55, rng));
  for (const Graph& g : graphs) {
    const SetupOutcome out = run_setup(g, rng.next());
    ASSERT_TRUE(out.ok) << "n=" << g.num_nodes()
                        << " attempts=" << out.attempts;
    // The elected leader is the maximum id (max-flooding invariant).
    EXPECT_EQ(out.leader, g.num_nodes() - 1);
    EXPECT_TRUE(is_bfs_tree_of(g, out.tree));
    const DfsLabels oracle = oracle_dfs_labels(out.tree);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(out.labels.number[v], oracle.number[v]);
      EXPECT_EQ(out.labels.max_desc[v], oracle.max_desc[v]);
    }
    EXPECT_GE(out.slots, out.work_slots);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetupSweep, ::testing::Range(0, 4));

TEST(Setup, SingleNode) {
  const Graph g = gen::path(1);
  const SetupOutcome out = run_setup(g, 7);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.leader, 0u);
  EXPECT_EQ(out.tree.depth, 0u);
  EXPECT_EQ(out.labels.number[0], 0u);
}

TEST(Setup, TwoNodes) {
  const Graph g = gen::path(2);
  const SetupOutcome out = run_setup(g, 8);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.leader, 1u);
  EXPECT_EQ(out.tree.level[0], 1u);
}

TEST(Setup, ScheduleLengthsGrowWithAttempt) {
  SetupTuning tuning;
  const SetupSchedule s0 = setup_schedule(50, 6, tuning, 0);
  const SetupSchedule s1 = setup_schedule(50, 6, tuning, 1);
  EXPECT_EQ(s1.le, 2 * s0.le);
  EXPECT_EQ(s1.bv, 2 * s0.bv);
  EXPECT_EQ(s1.gl, 2 * s0.gl);
  EXPECT_EQ(s0.dfs1, s1.dfs1);  // token traversals are deterministic
  EXPECT_GT(s0.attempt_length(), 0u);
}

TEST(Setup, DeterministicForSeed) {
  Rng rng(9);
  const Graph g = gen::gnp_connected(16, 0.3, rng);
  const SetupOutcome a = run_setup(g, 1234);
  const SetupOutcome b = run_setup(g, 1234);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.tree.parent, b.tree.parent);
  EXPECT_EQ(a.labels.number, b.labels.number);
}

TEST(Setup, OutcomeDrivesDataPlaneEndToEnd) {
  // The acid test: run the real setup, then run point-to-point and
  // k-broadcast on its outputs.
  Rng rng(10);
  const Graph g = gen::grid(4, 4);
  const SetupOutcome setup = run_setup(g, rng.next());
  ASSERT_TRUE(setup.ok);

  PreparationResult prep;
  prep.ok = true;
  prep.labels = setup.labels;
  prep.routing = setup.routing;
  std::vector<P2pRequest> reqs;
  for (int i = 0; i < 25; ++i)
    reqs.push_back({static_cast<NodeId>(rng.next_below(16)),
                    static_cast<NodeId>(rng.next_below(16)),
                    static_cast<std::uint64_t>(i)});
  const auto p2p = run_point_to_point(g, prep, reqs,
                                      P2pConfig::for_graph(g), rng.next());
  EXPECT_TRUE(p2p.completed);

  std::vector<NodeId> sources;
  for (int i = 0; i < 10; ++i)
    sources.push_back(static_cast<NodeId>(rng.next_below(16)));
  const auto bc = run_k_broadcast(g, setup.tree, sources,
                                  BroadcastServiceConfig::for_graph(g),
                                  rng.next());
  EXPECT_TRUE(bc.completed);
}

}  // namespace
}  // namespace radiomc
