// The trace facility and — most importantly — a reference-model property
// test: the engine's delivery decisions are re-derived independently by a
// brute-force O(n^2) oracle over random transmission patterns.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/dfs_numbering.h"
#include "protocols/tree.h"
#include "radio/network.h"
#include "radio/trace.h"
#include "support/rng.h"

namespace radiomc {
namespace {

/// Transmits per an externally supplied random schedule; logs receptions.
class RandomTalker final : public Station {
 public:
  // schedule[t] = channel to transmit on, or -1 to listen.
  std::vector<int> schedule;
  std::vector<std::tuple<SlotTime, ChannelId, NodeId>> heard;

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t < schedule.size() && schedule[t] >= 0) {
      Message m;
      tx[schedule[t]] = m;
    }
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    heard.emplace_back(t, ch, m.sender);
  }
};

class EngineReference : public ::testing::TestWithParam<int> {};

TEST_P(EngineReference, MatchesBruteForceOracle) {
  Rng rng(7000 + GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    const NodeId n = static_cast<NodeId>(4 + rng.next_below(16));
    const Graph g = gen::gnp_connected(n, 0.3, rng);
    const ChannelId channels = 1 + static_cast<ChannelId>(rng.next_below(2));
    const SlotTime horizon = 20;

    std::deque<RandomTalker> st(n);
    std::vector<Station*> ptrs;
    for (auto& s : st) {
      s.schedule.resize(horizon);
      for (auto& c : s.schedule)
        c = rng.bernoulli(0.4)
                ? static_cast<int>(rng.next_below(channels))
                : -1;
      ptrs.push_back(&s);
    }
    RadioNetwork::Config cfg;
    cfg.num_channels = channels;
    RadioNetwork net(g, cfg);
    net.attach(std::move(ptrs));
    net.run(horizon);

    // Brute-force oracle: for every (t, receiver, channel), v hears the
    // unique transmitting neighbor iff exactly one exists and v is not
    // itself transmitting on that channel.
    for (NodeId v = 0; v < n; ++v) {
      std::vector<std::tuple<SlotTime, ChannelId, NodeId>> expected;
      for (SlotTime t = 0; t < horizon; ++t) {
        for (ChannelId c = 0; c < channels; ++c) {
          if (st[v].schedule[t] == static_cast<int>(c)) continue;
          NodeId the_one = kNoNode;
          int count = 0;
          for (NodeId u : g.neighbors(v)) {
            if (st[u].schedule[t] == static_cast<int>(c)) {
              ++count;
              the_one = u;
            }
          }
          if (count == 1) expected.emplace_back(t, c, the_one);
        }
      }
      EXPECT_EQ(st[v].heard, expected) << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineReference, ::testing::Range(0, 5));

TEST(Trace, ActivityCounterMatchesMetrics) {
  Rng rng(71);
  const Graph g = gen::gnp_connected(12, 0.3, rng);
  std::deque<RandomTalker> st(12);
  std::vector<Station*> ptrs;
  for (auto& s : st) {
    s.schedule.resize(30);
    for (auto& c : s.schedule) c = rng.bernoulli(0.5) ? 0 : -1;
    ptrs.push_back(&s);
  }
  ActivityCounter counter(12);
  RadioNetwork net(g);
  net.set_trace(&counter);
  net.attach(std::move(ptrs));
  net.run(30);

  std::uint64_t tx = 0, rx = 0, coll = 0;
  for (NodeId v = 0; v < 12; ++v) {
    tx += counter.transmissions[v];
    rx += counter.deliveries[v];
    coll += counter.collisions[v];
  }
  EXPECT_EQ(tx, net.metrics().transmissions);
  EXPECT_EQ(rx, net.metrics().deliveries);
  EXPECT_EQ(coll, net.metrics().collision_events);
}

TEST(Trace, EventRecorderOrderingAndContent) {
  const Graph g = gen::path(3);
  std::deque<RandomTalker> st(3);
  st[0].schedule = {0, -1};
  st[2].schedule = {-1, 0};
  std::vector<Station*> ptrs{&st[0], &st[1], &st[2]};
  EventRecorder rec;
  RadioNetwork net(g);
  net.set_trace(&rec);
  net.attach(std::move(ptrs));
  net.run(2);

  ASSERT_EQ(rec.events().size(), 4u);  // 2 transmits + 2 deliveries
  EXPECT_EQ(rec.events()[0].kind, EventRecorder::Kind::kTransmit);
  EXPECT_EQ(rec.events()[0].node, 0u);
  EXPECT_EQ(rec.events()[1].kind, EventRecorder::Kind::kDeliver);
  EXPECT_EQ(rec.events()[1].node, 1u);
  EXPECT_EQ(rec.events()[2].slot, 1u);
  for (const auto& e : rec.events()) EXPECT_TRUE(e.has_msg);
  EXPECT_FALSE(rec.truncated());
}

TEST(Trace, CollisionEventsCarryNoMessage) {
  // Nodes 0 and 2 transmit in the same slot; their common neighbor 1 hears
  // a collision. The recorded event must be explicitly message-free
  // (has_msg == false) rather than stuffed with placeholder fields, and
  // must carry the transmitter count instead.
  const Graph g = gen::path(3);
  std::deque<RandomTalker> st(3);
  st[0].schedule = {0, 0};
  st[2].schedule = {0, -1};
  std::vector<Station*> ptrs{&st[0], &st[1], &st[2]};
  EventRecorder rec;
  RadioNetwork net(g);
  net.set_trace(&rec);
  net.attach(std::move(ptrs));
  net.run(2);

  std::size_t collisions = 0;
  for (const auto& e : rec.events()) {
    if (e.kind == EventRecorder::Kind::kCollision) {
      ++collisions;
      EXPECT_FALSE(e.has_msg);
      EXPECT_EQ(e.origin, kNoNode);
      EXPECT_GE(e.tx_neighbors, 2u);
      EXPECT_EQ(e.node, 1u);  // only node 1 has two transmitting neighbors
    } else {
      EXPECT_TRUE(e.has_msg);
      EXPECT_EQ(e.tx_neighbors, 0u);
    }
  }
  EXPECT_EQ(collisions, 1u);  // slot 0; in slot 1 only node 0 transmits
  EXPECT_TRUE(st[1].heard.empty() ||
              std::get<0>(st[1].heard.front()) == 1u);
}

TEST(Trace, RecorderCapacityBound) {
  const Graph g = gen::path(2);
  std::deque<RandomTalker> st(2);
  st[0].schedule.assign(100, 0);
  std::vector<Station*> ptrs{&st[0], &st[1]};
  EventRecorder rec(10);
  RadioNetwork net(g);
  net.set_trace(&rec);
  net.attach(std::move(ptrs));
  net.run(100);
  // Capacity + the in-band kTruncated sentinel: consumers see where the
  // recording stopped instead of a complete-looking prefix.
  ASSERT_EQ(rec.events().size(), 11u);
  EXPECT_TRUE(rec.truncated());
  EXPECT_EQ(rec.events().back().kind, EventRecorder::Kind::kTruncated);
  // 2 events/slot (tx + rx) over 100 slots = 200 total; 10 recorded, the
  // rest counted as dropped (the sentinel itself is not an event).
  EXPECT_EQ(rec.dropped(), 190u);
}

TEST(Trace, TokenDfsIsCollisionFreeSlotBySlot) {
  // Stronger than the metrics check in dfs_test: the recorded event stream
  // of the preparation traversals must contain no collision events and at
  // most one transmission per slot.
  Rng rng(72);
  const Graph g = gen::gnp_connected(15, 0.3, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  // run_preparation owns its networks; replicate traversal 1 with a trace.
  std::vector<std::unique_ptr<GraphDfsStation>> dfs1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto nb = g.neighbors(v);
    dfs1.push_back(std::make_unique<GraphDfsStation>(
        v, std::vector<NodeId>(nb.begin(), nb.end())));
    dfs1.back()->set_local(tree.level[v], tree.parent[v], v == tree.root);
  }
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : dfs1) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  EventRecorder rec;
  RadioNetwork net(g);
  net.set_trace(&rec);
  net.attach(std::move(ptrs));
  net.run(2 * g.num_nodes() + 2);

  SlotTime last_tx_slot = static_cast<SlotTime>(-1);
  for (const auto& e : rec.events()) {
    EXPECT_NE(e.kind, EventRecorder::Kind::kCollision);
    if (e.kind == EventRecorder::Kind::kTransmit) {
      EXPECT_NE(e.slot, last_tx_slot) << "two transmitters in one slot";
      last_tx_slot = e.slot;
    }
  }
  for (auto& s : dfs1) EXPECT_TRUE(s->visited());
}

}  // namespace
}  // namespace radiomc
