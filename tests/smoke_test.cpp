// Early smoke test: foundation modules build and behave sanely end to end.

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/decay.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/stats.h"

namespace radiomc {
namespace {

TEST(Smoke, GraphAndBfs) {
  const Graph g = gen::grid(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), 7u);
  const BfsTree t = oracle_bfs_tree(g, 0);
  EXPECT_TRUE(is_bfs_tree_of(g, t));
}

TEST(Smoke, DecayPropertyTwo) {
  // Star: many transmitters around the hub; hub should receive with
  // probability > 1/2 per invocation.
  const Graph g = gen::star(17);
  Rng rng(42);
  const std::uint32_t len = decay_length(g.max_degree());
  int success = 0;
  const int trials = 400;
  std::vector<NodeId> tx;
  for (NodeId v = 1; v < 17; ++v) tx.push_back(v);
  for (int i = 0; i < trials; ++i)
    if (decay_single_trial(g, 0, tx, len, rng)) ++success;
  EXPECT_GT(success, trials / 2);
}

TEST(Smoke, CollectionDeliversEverything) {
  Rng rng(7);
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  std::vector<Message> init;
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = v;
    m.seq = 0;
    m.payload = 1000 + v;
    init.push_back(m);
  }
  const auto out = run_collection(g, tree, init,
                                  CollectionConfig::for_graph(g), 123);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.deliveries.size(), init.size());
}

}  // namespace
}  // namespace radiomc
