// Cross-cutting protocol invariants, sampled mid-run:
//  * collection conserves messages: injected = in-buffers + delivered, at
//    every phase boundary (§4.1: "messages exist on exactly one buffer");
//  * point-to-point conserves messages across both halves;
//  * distribution payload integrity: what each node delivers is exactly
//    what the root sent, in order, bit for bit;
//  * PhaseClock is a bijection between slot indices and
//    (phase, step, residue, subslot) tuples.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/point_to_point.h"
#include "protocols/tree.h"
#include "radio/schedule.h"
#include "support/rng.h"

namespace radiomc {
namespace {

class ConservationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConservationSweep, CollectionMessagesLiveOnExactlyOneBuffer) {
  Rng rng(9000 + GetParam());
  const Graph g = gen::gnp_connected(20, 0.25, rng);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  CollectionConfig cfg = CollectionConfig::for_graph(g);

  Rng master(rng.next());
  std::vector<std::unique_ptr<CollectionStation>> st;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    st.push_back(
        std::make_unique<CollectionStation>(v, tree, cfg, master.split(v)));
  std::size_t injected = 0;
  for (NodeId v = 1; v < g.num_nodes(); ++v)
    for (std::uint32_t s = 0; s < 4; ++s) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = s;
      st[v]->inject(m);
      ++injected;
    }
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : st) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));

  const std::uint64_t spp = st[0]->clock().slots_per_phase();
  while (st[0]->root_sink().size() < injected && net.now() < 2'000'000) {
    // Invariant at every phase boundary.
    if (net.now() % spp == 0) {
      std::size_t buffered = 0;
      for (auto& s : st) buffered += s->buffer_size();
      EXPECT_EQ(buffered + st[0]->root_sink().size(), injected)
          << "at slot " << net.now();
    }
    net.step();
  }
  EXPECT_EQ(st[0]->root_sink().size(), injected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationSweep, ::testing::Range(0, 4));

TEST(Invariants, P2pConservationAcrossHalves) {
  Rng rng(91);
  const Graph g = gen::grid(4, 4);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  ASSERT_TRUE(prep.ok);
  P2pConfig cfg = P2pConfig::for_graph(g);

  Rng master(rng.next());
  std::vector<std::unique_ptr<P2pUpStation>> ups;
  std::vector<std::unique_ptr<P2pDownStation>> downs;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ups.push_back(std::make_unique<P2pUpStation>(v, prep.routing[v], cfg,
                                                 master.split(2 * v)));
    downs.push_back(std::make_unique<P2pDownStation>(
        v, prep.routing[v], cfg, master.split(2 * v + 1)));
    ups.back()->set_down(downs.back().get());
  }
  std::size_t injected = 0;
  for (int i = 0; i < 60; ++i) {
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    const NodeId d = static_cast<NodeId>(rng.next_below(16));
    ups[s]->send(prep.labels.number[d], i);
    ++injected;
  }
  std::deque<ChannelMuxStation> muxes;
  std::vector<Station*> ptrs;
  for (NodeId v = 0; v < 16; ++v)
    muxes.emplace_back(std::vector<SubStation*>{ups[v].get(), downs[v].get()});
  for (auto& m : muxes) ptrs.push_back(&m);
  RadioNetwork::Config ncfg;
  ncfg.num_channels = 2;
  RadioNetwork net(g, ncfg);
  net.attach(std::move(ptrs));

  auto totals = [&] {
    std::size_t buffered = 0, delivered = 0;
    for (NodeId v = 0; v < 16; ++v) {
      buffered += ups[v]->buffer_size() + downs[v]->buffer_size();
      delivered += ups[v]->sink().size() + downs[v]->sink().size();
    }
    return std::pair{buffered, delivered};
  };
  // Between a data subslot and its ack subslot a message transiently
  // exists on two buffers (receiver enqueued, sender not yet acked) — §4.1
  // counts it on "exactly one buffer" at phase granularity, so sample at
  // phase boundaries.
  const std::uint64_t spp = PhaseClock(cfg.slots).slots_per_phase();
  for (std::uint64_t step = 0; step < 200'000; ++step) {
    if (net.now() % spp == 0) {
      const auto [buffered, delivered] = totals();
      EXPECT_EQ(buffered + delivered, injected) << "at slot " << net.now();
    }
    if (totals().second == injected) break;
    net.step();
  }
  EXPECT_EQ(totals().second, injected);
}

TEST(Invariants, DistributionPayloadIntegrityEndToEnd) {
  Rng rng(92);
  const Graph g = gen::grid(3, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 5;  // wire wraparound in play
  cfg.distribution.phases_per_superphase = 2;  // and real losses
  BroadcastService svc(g, tree, cfg, rng.next());

  std::vector<std::uint64_t> sent;
  std::vector<std::vector<std::uint64_t>> got(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == tree.root) continue;
    // Capture payloads as they are delivered, via the app hook.
    auto* sink = &got[v];
    svc.distribution_mutable(v).set_delivery_handler(
        [sink](SlotTime, const Message& m) { sink->push_back(m.payload); });
  }
  for (int i = 0; i < 30; ++i) {
    const std::uint64_t payload = 0x1000000ull + rng.next();
    sent.push_back(payload);
    svc.broadcast(static_cast<NodeId>(rng.next_below(g.num_nodes())),
                  payload);
  }
  ASSERT_TRUE(svc.run_until_delivered(100'000'000));
  // Bit-for-bit, in order, everywhere. (The collection leg preserves the
  // payload, and the root distributes in arrival order — so each node's
  // sequence must be a permutation-free, exact match of what the root
  // distributed, which itself contains exactly the sent multiset.)
  const NodeId probe = tree.root == 0 ? 1 : 0;
  ASSERT_EQ(got[probe].size(), sent.size());
  std::multiset<std::uint64_t> sent_set(sent.begin(), sent.end());
  std::multiset<std::uint64_t> got_set(got[probe].begin(), got[probe].end());
  EXPECT_EQ(sent_set, got_set);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == tree.root || v == probe) continue;
    EXPECT_EQ(got[v], got[probe]) << "node " << v;
  }
}

TEST(Invariants, PhaseClockIsABijection) {
  for (const bool acks : {true, false}) {
    for (const bool mod3 : {true, false}) {
      SlotStructure s;
      s.decay_len = 5;
      s.ack_subslots = acks;
      s.mod3_gating = mod3;
      PhaseClock c(s);
      std::set<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, bool>>
          seen;
      const SlotTime horizon = 3 * c.slots_per_phase();
      for (SlotTime t = 0; t < horizon; ++t) {
        const auto i = c.decode(t);
        EXPECT_TRUE(
            seen.emplace(i.phase, i.decay_step, i.residue, i.is_ack).second)
            << "duplicate decode at t=" << t;
        EXPECT_LT(i.decay_step, s.decay_len);
        if (!mod3) {
          EXPECT_EQ(i.residue, 0u);
        }
        if (!acks) {
          EXPECT_FALSE(i.is_ack);
        }
      }
      EXPECT_EQ(seen.size(), horizon);
    }
  }
}

}  // namespace
}  // namespace radiomc
