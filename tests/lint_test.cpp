// Tests for the radiomc_lint rule engine (src/lint/).
//
// Three layers:
//  1. fixture snippets fed through run_rules() — at least one failing
//     fixture per rule family, a passing twin, and a pass-with-waiver
//     variant, so the suite pins down what each rule fires on;
//  2. the trace-kind round trip: every `ev` value the live JsonlTraceSink
//     writes must pass analysis/trace_event.h's is_trace_line_kind, i.e.
//     the table the trace-kind-table rule checks statically is also
//     correct at runtime;
//  3. the repo itself: linting the real src/tools/bench trees must yield
//     zero unwaived findings (the same gate CI enforces).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/trace_event.h"
#include "lint/lexer.h"
#include "lint/rules.h"
#include "lint/runner.h"
#include "perf/json_value.h"
#include "radio/message.h"
#include "telemetry/jsonl_sink.h"

namespace {

using radiomc::lint::Finding;
using radiomc::lint::LintOptions;
using radiomc::lint::SourceFile;

std::vector<Finding> Lint(std::vector<SourceFile> files,
                          LintOptions opt = {}) {
  return radiomc::lint::run_rules(files, opt);
}

radiomc::lint::AnalysisResult Analyze(std::vector<SourceFile> files,
                                      LintOptions opt = {}) {
  return radiomc::lint::run_analyses(files, opt);
}

std::size_t CountRule(const std::vector<Finding>& findings,
                      std::string_view rule, bool waived_only = false) {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.rule == rule && (!waived_only || f.waived)) ++n;
  return n;
}

std::size_t Unwaived(const std::vector<Finding>& findings) {
  return radiomc::lint::count_unwaived(findings);
}

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(LintLexer, SeparatesTokensCommentsAndIncludes) {
  const auto f = radiomc::lint::lex_source("src/x.cpp",
                                           "#include \"radio/station.h\"\n"
                                           "#include <vector>\n"
                                           "// a comment\n"
                                           "int main() { return 0; } /* b */\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "radio/station.h");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_EQ(f.includes[1].path, "vector");
  EXPECT_TRUE(f.includes[1].angled);
  ASSERT_EQ(f.comments.size(), 2u);
  EXPECT_EQ(f.comments[0].line, 3);
  EXPECT_TRUE(f.comments[0].own_line);
  EXPECT_FALSE(f.comments[1].own_line);
  // Tokens carry no comment or include text.
  for (const auto& t : f.tokens) {
    EXPECT_NE(t.text, "include");
    EXPECT_NE(t.text, "comment");
  }
}

TEST(LintLexer, StringsAndRawStringsAreOpaque) {
  const auto f = radiomc::lint::lex_source(
      "src/x.cpp",
      "const char* a = \"rand() \\\" time()\";\n"
      "const char* b = R\"tag(rand() \"quoted\")tag\";\n");
  std::size_t strings = 0;
  for (const auto& t : f.tokens) {
    if (t.kind == radiomc::lint::Token::Kind::kString) ++strings;
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_EQ(strings, 2u);
}

// ---------------------------------------------------------------------------
// Family: determinism.
// ---------------------------------------------------------------------------

TEST(LintDeterminism, FlagsRawRandomInSrc) {
  const auto findings = Lint({{"src/protocols/bad.cpp",
                               "#include <random>\n"
                               "int roll() {\n"
                               "  std::mt19937 gen(42);\n"
                               "  return rand();\n"
                               "}\n"}});
  EXPECT_EQ(CountRule(findings, "no-raw-random"), 2u);
  EXPECT_EQ(Unwaived(findings), 2u);
}

TEST(LintDeterminism, RngSupportAndMemberCallsPass) {
  const auto findings = Lint(
      {// support/rng.* is the one place engine types are allowed.
       {"src/support/rng.cpp", "std::mt19937_64 engine_;\n"},
       // A member call named like a banned function is not a banned call.
       {"src/protocols/ok.cpp", "int f(Clock& c) { return c.time(); }\n"}});
  EXPECT_EQ(CountRule(findings, "no-raw-random"), 0u);
  EXPECT_EQ(CountRule(findings, "no-wall-clock"), 0u);
}

TEST(LintDeterminism, FlagsWallClockReads) {
  const auto findings = Lint(
      {{"src/radio/bad.cpp",
        "#include <chrono>\n"
        "long now() {\n"
        "  auto t = std::chrono::system_clock::now();\n"
        "  return time(nullptr);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "no-wall-clock"), 2u);
}

TEST(LintDeterminism, CommentsAndStringsAreImmune) {
  const auto findings = Lint({{"src/protocols/docs.cpp",
                               "// rand() and std::mt19937 discussed here\n"
                               "const char* s = \"time() rand()\";\n"}});
  EXPECT_EQ(Unwaived(findings), 0u);
}

TEST(LintDeterminism, FlagsUnorderedContainersInDeterministicZones) {
  const std::string decl = "#include <unordered_map>\n"
                           "std::unordered_map<int, int> m;\n";
  const auto findings = Lint({{"src/faults/bad.cpp", decl},
                              // src/analysis is offline: order can't leak
                              // into a trial, so the zone excludes it.
                              {"src/analysis/ok.cpp", decl}});
  EXPECT_EQ(CountRule(findings, "unordered-container"), 1u);
  for (const Finding& f : findings)
    EXPECT_EQ(f.file, "src/faults/bad.cpp") << f.rule;
}

TEST(LintDeterminism, ServiceZoneIsDeterministicAndPerfPure) {
  // src/service drives soak certification: byte-identity across --jobs is
  // part of its contract, so it sits in every zone the protocol layer does.
  const auto findings = Lint(
      {{"src/service/bad.cpp", "#include <unordered_map>\n"
                               "std::unordered_map<int, int> m;\n"},
       {"src/service/bad.h", "#include \"perf/profiler.h\"\n"},
       {"src/service/flow.cpp", "long f(Stopwatch& w) { return 0; }\n"},
       {"src/service/offline.cpp",
        "#include \"analysis/trace_event.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "unordered-container"), 1u);
  EXPECT_EQ(CountRule(findings, "perf-purity-include"), 1u);
  EXPECT_EQ(CountRule(findings, "perf-purity-flow"), 1u);
  EXPECT_EQ(CountRule(findings, "analysis-offline"), 1u);
}

TEST(LintDeterminism, HealthZoneIsDeterministicAndPerfPure) {
  // src/health streams radiomc.health/v1 as a pure function of (seed,
  // config): iteration order, wall time, and the offline auditor are all
  // forbidden there for the same reasons as in src/service.
  const auto findings = Lint(
      {{"src/health/bad.cpp", "#include <unordered_map>\n"
                              "std::unordered_map<int, int> m;\n"},
       {"src/health/bad.h", "#include \"perf/profiler.h\"\n"},
       {"src/health/flow.cpp", "long f(Stopwatch& w) { return 0; }\n"},
       {"src/health/offline.cpp",
        "#include \"analysis/trace_event.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "unordered-container"), 1u);
  EXPECT_EQ(CountRule(findings, "perf-purity-include"), 1u);
  EXPECT_EQ(CountRule(findings, "perf-purity-flow"), 1u);
  EXPECT_EQ(CountRule(findings, "analysis-offline"), 1u);
}

TEST(LintDeterminism, WaiverSuppressesUnorderedContainer) {
  const auto findings = Lint(
      {{"src/protocols/waived.cpp",
        "#include <unordered_map>\n"
        "// radiomc-lint: allow(unordered-container) reason=lookup only\n"
        "std::unordered_map<int, int> m;\n"}});
  EXPECT_EQ(CountRule(findings, "unordered-container", /*waived_only=*/true),
            1u);
  EXPECT_EQ(Unwaived(findings), 0u);
  for (const Finding& f : findings) {
    if (f.waived) {
      EXPECT_EQ(f.waiver_reason, "lookup only");
    }
  }
}

// ---------------------------------------------------------------------------
// Family: model-purity.
// ---------------------------------------------------------------------------

TEST(LintModelPurity, ProtocolHeaderMayNotIncludeEngine) {
  const auto findings =
      Lint({{"src/protocols/bad.h", "#include \"radio/network.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "engine-include"), 1u);
}

TEST(LintModelPurity, DriverCppAndAllowlistedHeadersPass) {
  const auto findings = Lint(
      {// The driver translation unit is the apparatus; it may host the
       // engine.
       {"src/protocols/driver.cpp", "#include \"radio/network.h\"\n"},
       // Headers may see the station-facing surface.
       {"src/protocols/ok.h", "#include \"radio/station.h\"\n"
                              "#include \"radio/schedule.h\"\n"
                              "#include \"radio/trace.h\"\n"
                              "#include \"radio/message.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "engine-include"), 0u);
}

TEST(LintModelPurity, WaiverCoversEngineOwningService) {
  const auto findings = Lint(
      {{"src/protocols/service.h",
        "// radiomc-lint: allow(engine-include) reason=owns the engine\n"
        "#include \"radio/network.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "engine-include", /*waived_only=*/true), 1u);
  EXPECT_EQ(Unwaived(findings), 0u);
}

TEST(LintModelPurity, AnalysisIsOfflineOnly) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp", "#include \"analysis/trace_event.h\"\n"},
       {"src/radio/bad2.cpp", "#include \"analysis/auditor.h\"\n"},
       // tools/ drive the auditor; that is its intended consumer.
       {"tools/radiomc_trace.cpp", "#include \"analysis/auditor.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "analysis-offline"), 2u);
}

// ---------------------------------------------------------------------------
// Family: perf-purity (plus the narrowed no-wall-clock allowlist).
// ---------------------------------------------------------------------------

TEST(LintPerfPurity, SteadyClockIsBannedOutsideTheStopwatch) {
  const std::string body =
      "#include <chrono>\n"
      "long now() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  const auto findings = Lint({{"src/protocols/bad.cpp", body},
                              // The sanctioned clock implementation itself.
                              {"src/support/stopwatch.h", body},
                              // The measurement layer built on top of it.
                              {"src/perf/profiler.cpp", body}});
  EXPECT_EQ(CountRule(findings, "no-wall-clock"), 1u);
  for (const Finding& f : findings) {
    if (f.rule == "no-wall-clock") {
      EXPECT_EQ(f.file, "src/protocols/bad.cpp");
    }
  }
}

TEST(LintPerfPurity, StdClockCallIsBannedButDeclarationsAreNot) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp", "long f() { return std::clock(); }\n"},
       // A constructor call / accessor declaration of an unrelated name.
       {"src/analysis/ok.cpp",
        "void g(const Schema& s) {\n"
        "  const PhaseClock clock(s.slots);\n"
        "  (void)clock;\n"
        "}\n"
        "struct S { const PhaseClock& clock() const; };\n"}});
  EXPECT_EQ(CountRule(findings, "no-wall-clock"), 1u);
  for (const Finding& f : findings) {
    if (f.rule == "no-wall-clock") {
      EXPECT_EQ(f.file, "src/protocols/bad.cpp");
    }
  }
}

TEST(LintPerfPurity, ModelHeadersMayNotIncludeTheMeasurementLayer) {
  const auto findings = Lint(
      {{"src/protocols/bad.h", "#include \"perf/profiler.h\"\n"},
       {"src/baselines/bad2.h", "#include \"support/stopwatch.h\"\n"},
       {"src/radio/bad3.cpp", "#include \"perf/profiler.h\"\n"},
       {"src/faults/bad4.cpp", "#include \"support/stopwatch.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "perf-purity-include"), 4u);
}

TEST(LintPerfPurity, DriverCppAndForwardDeclarationPass) {
  const auto findings = Lint(
      {// Driver translation units place spans; that is the sanctioned path.
       {"src/protocols/driver.cpp", "#include \"perf/profiler.h\"\n"},
       // Headers hold only a forward declaration and a raw pointer.
       {"src/protocols/ok.h",
        "namespace perf { class Profiler; }\n"
        "struct Cfg { perf::Profiler* profiler = nullptr; };\n"},
       // The perf layer may of course include itself.
       {"src/perf/report.cpp", "#include \"perf/profiler.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "perf-purity-include"), 0u);
}

TEST(LintPerfPurity, TimingValuesAreBannedFromModelCode) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp",
        "double budget(const Timer& t) { return t.elapsed_ms(); }\n"},
       {"src/radio/bad2.cpp", "Stopwatch sw;\n"},
       // Outside the model zone the same identifiers are fine.
       {"src/perf/ok.cpp", "Stopwatch sw;\n"},
       {"tools/ok2.cpp", "double x(const Timer& t) { return t.wall_ms(); }\n"}});
  EXPECT_EQ(CountRule(findings, "perf-purity-flow"), 2u);
  for (const Finding& f : findings) {
    if (f.rule == "perf-purity-flow") {
      EXPECT_TRUE(f.file == "src/protocols/bad.cpp" ||
                  f.file == "src/radio/bad2.cpp")
          << f.file;
    }
  }
}

TEST(LintPerfPurity, WriteOnlyProfilerSurfacePasses) {
  // What the instrumented drivers actually do: spans and counters, no
  // timing value ever read back.
  const auto findings = Lint(
      {{"src/protocols/driver.cpp",
        "void drive(const Cfg& cfg) {\n"
        "  perf::PerfSpan span(cfg.profiler, \"drive.run\");\n"
        "  if (cfg.profiler != nullptr) cfg.profiler->count(\"slots\", 7);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "perf-purity-flow"), 0u);
  EXPECT_EQ(Unwaived(findings), 0u);
}

TEST(LintPerfPurity, WaiverSuppressesPerfPurityFinding) {
  const auto findings = Lint(
      {{"src/protocols/waived.h",
        "// radiomc-lint: allow(perf-purity-include) reason=fixture\n"
        "#include \"perf/profiler.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "perf-purity-include", /*waived_only=*/true),
            1u);
  EXPECT_EQ(Unwaived(findings), 0u);
}

TEST(LintPerfPurity, UnguardedProfilerDereferenceIsAHubFinding) {
  // Profiler* / SlotHook* joined the optional-observability pointer set.
  const auto findings = Lint(
      {{"src/protocols/bad.cpp",
        "struct Cfg { Profiler* profiler = nullptr; };\n"
        "void run(const Cfg& cfg) {\n"
        "  cfg.profiler->count(\"x\");\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

// ---------------------------------------------------------------------------
// Family: telemetry.
// ---------------------------------------------------------------------------

namespace fixtures {

const char kUnguardedHub[] =
    "struct Cfg { TelemetryHub* telemetry = nullptr; };\n"
    "void run(const Cfg& cfg) {\n"
    "  cfg.telemetry->counter();\n"
    "}\n";

const char kGuardedHub[] =
    "struct Cfg { TelemetryHub* telemetry = nullptr; };\n"
    "void run(const Cfg& cfg) {\n"
    "  if (cfg.telemetry != nullptr) {\n"
    "    cfg.telemetry->counter();\n"
    "  }\n"
    "}\n";

// Bare hub field declaration for the flow-aware guard tests to build on.
const char kHubField[] = "struct Cfg { TraceSink* trace = nullptr; };\n";

}  // namespace fixtures

TEST(LintTelemetry, FlagsUnguardedHubDereference) {
  const auto findings = Lint({{"src/protocols/bad.cpp",
                               fixtures::kUnguardedHub}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

TEST(LintTelemetry, NullGuardSilencesHubDereference) {
  const auto findings = Lint({{"src/protocols/ok.cpp",
                               fixtures::kGuardedHub}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 0u);
}

TEST(LintTelemetry, TruthinessAndShortCircuitGuardsCount) {
  const auto findings = Lint(
      {{"src/protocols/ok.cpp",
        "struct Cfg { TraceSink* trace = nullptr; };\n"
        "void a(const Cfg& cfg) {\n"
        "  if (cfg.trace) cfg.trace->flush();\n"
        "}\n"
        "void b(const Cfg& cfg) {\n"
        "  bool on = cfg.trace && cfg.trace->ok();\n"
        "  (void)on;\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 0u);
}

TEST(LintTelemetry, GuardInOneFunctionDoesNotLeakIntoAnother) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp",
        "struct Cfg { TelemetryHub* telemetry = nullptr; };\n"
        "void a(const Cfg& cfg) {\n"
        "  if (cfg.telemetry != nullptr) cfg.telemetry->counter();\n"
        "}\n"
        "void b(const Cfg& cfg) {\n"
        "  cfg.telemetry->counter();\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

TEST(LintTelemetry, SameNameOtherPointerTypeIsNotAHub) {
  // A local `Trace* trace` must not inherit the cross-file TraceSink field
  // name — per-file shadowing erases it.
  const auto findings = Lint(
      {{"src/protocols/decl.h", "struct C { TraceSink* trace = nullptr; };\n"},
       {"src/analysis/reader.cpp",
        "void parse(Trace* trace) {\n"
        "  trace->push_back(1);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 0u);
}

TEST(LintTelemetry, WaiverSuppressesHubFinding) {
  const auto findings = Lint(
      {{"src/protocols/waived.cpp",
        "struct Cfg { TelemetryHub* telemetry = nullptr; };\n"
        "void run(const Cfg& cfg) {\n"
        "  // radiomc-lint: allow(hub-null-check) reason=caller checked\n"
        "  cfg.telemetry->counter();\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "hub-null-check", /*waived_only=*/true), 1u);
  EXPECT_EQ(Unwaived(findings), 0u);
}

TEST(LintTelemetry, TraceKindDriftIsFlaggedBothWays) {
  const std::string table =
      "inline constexpr std::string_view kTraceLineKinds[] = {\n"
      "    \"schema\", \"tx\", \"stale\"};\n";
  const std::string sink =
      "void S::emit() {\n"
      "  w.member(\"ev\", \"schema\");\n"
      "  event_line(\"tx\", t, n, ch, &m, 0);\n"
      "  w.member(\"ev\", \"bogus\");\n"
      "}\n";
  const auto findings = Lint({{"src/analysis/trace_event.h", table},
                              {"src/telemetry/jsonl_sink.cpp", sink}});
  // "bogus" emitted but not in the table; "stale" in the table but never
  // emitted.
  EXPECT_EQ(CountRule(findings, "trace-kind-table"), 2u);
  bool saw_writer_drift = false, saw_stale_entry = false;
  for (const Finding& f : findings) {
    if (f.rule != "trace-kind-table") continue;
    if (f.file == "src/telemetry/jsonl_sink.cpp") saw_writer_drift = true;
    if (f.file == "src/analysis/trace_event.h") saw_stale_entry = true;
  }
  EXPECT_TRUE(saw_writer_drift);
  EXPECT_TRUE(saw_stale_entry);
}

TEST(LintTelemetry, MatchingKindTablePasses) {
  const auto findings = Lint(
      {{"src/analysis/trace_event.h",
        "inline constexpr std::string_view kTraceLineKinds[] = {\n"
        "    \"schema\", \"tx\"};\n"},
       {"src/telemetry/jsonl_sink.cpp",
        "void S::emit() {\n"
        "  w.member(\"ev\", \"schema\");\n"
        "  event_line(\"tx\", t, n, ch, &m, 0);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "trace-kind-table"), 0u);
}

TEST(LintTelemetry, MissingKindTableIsItselfAFinding) {
  const auto findings = Lint({{"src/telemetry/jsonl_sink.cpp",
                               "void S::emit() {\n"
                               "  w.member(\"ev\", \"schema\");\n"
                               "}\n"}});
  EXPECT_EQ(CountRule(findings, "trace-kind-table"), 1u);
}

// ---------------------------------------------------------------------------
// Family: exhaustiveness.
// ---------------------------------------------------------------------------

TEST(LintExhaustiveness, FlagsDefaultOnClosedModelEnum) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp",
        "bool up(MsgKind k) {\n"
        "  switch (k) {\n"
        "    case MsgKind::kData: return true;\n"
        "    default: return false;\n"
        "  }\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "switch-default"), 1u);
}

TEST(LintExhaustiveness, OtherEnumsAndFullEnumerationsPass) {
  const auto findings = Lint(
      {{"src/protocols/ok.cpp",
        "int a(Color c) {\n"
        "  switch (c) {\n"
        "    case Color::kRed: return 1;\n"
        "    default: return 0;\n"  // not a watched enum
        "  }\n"
        "}\n"
        "bool b(RunStatus s) {\n"
        "  switch (s) {\n"
        "    case RunStatus::kOk: return true;\n"
        "    case RunStatus::kDegraded: return false;\n"
        "    case RunStatus::kFailed: return false;\n"
        "  }\n"
        "  return false;\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "switch-default"), 0u);
}

TEST(LintExhaustiveness, NestedSwitchLabelsStayLocal) {
  // The inner switch is over a watched enum and has no default; the outer
  // switch's default must not be attributed to the inner enum.
  const auto findings = Lint(
      {{"src/protocols/ok.cpp",
        "int f(int x, MsgKind k) {\n"
        "  switch (x) {\n"
        "    case 0:\n"
        "      switch (k) {\n"
        "        case MsgKind::kData: return 1;\n"
        "        case MsgKind::kAck: return 2;\n"
        "      }\n"
        "      return 3;\n"
        "    default: return 4;\n"
        "  }\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "switch-default"), 0u);
}

TEST(LintExhaustiveness, WaiverSuppressesSwitchDefault) {
  const auto findings = Lint(
      {{"src/protocols/waived.cpp",
        "bool up(MsgKind k) {\n"
        "  switch (k) {\n"
        "    case MsgKind::kData: return true;\n"
        "    // radiomc-lint: allow(switch-default) reason=fixture\n"
        "    default: return false;\n"
        "  }\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "switch-default", /*waived_only=*/true), 1u);
  EXPECT_EQ(Unwaived(findings), 0u);
}

// ---------------------------------------------------------------------------
// Family: hygiene (unused waivers) + options.
// ---------------------------------------------------------------------------

TEST(LintHygiene, UnusedWaiverIsAFinding) {
  const auto findings = Lint(
      {{"src/protocols/stale.cpp",
        "// radiomc-lint: allow(no-raw-random) reason=long gone\n"
        "int x = 0;\n"}});
  EXPECT_EQ(CountRule(findings, "unused-waiver"), 1u);
  EXPECT_EQ(Unwaived(findings), 1u);
}

TEST(LintHygiene, WaiverNamingUnknownRuleIsCalledOut) {
  const auto findings = Lint(
      {{"src/protocols/typo.cpp",
        "// radiomc-lint: allow(no-raw-randomness)\n"
        "int x = 0;\n"}});
  ASSERT_EQ(CountRule(findings, "unused-waiver"), 1u);
  for (const Finding& f : findings) {
    if (f.rule == "unused-waiver") {
      EXPECT_NE(f.message.find("unknown rule"), std::string::npos);
    }
  }
}

TEST(LintOptionsTest, OnlyRulesRestrictsTheRun) {
  LintOptions opt;
  opt.only_rules = {"no-raw-random"};
  const auto findings = Lint({{"src/protocols/bad.cpp",
                               "#include <unordered_map>\n"
                               "std::unordered_map<int, int> m;\n"
                               "int r() { return rand(); }\n"}},
                             opt);
  EXPECT_EQ(CountRule(findings, "no-raw-random"), 1u);
  EXPECT_EQ(CountRule(findings, "unordered-container"), 0u);
}

TEST(LintCatalog, CoversAllSevenFamilies) {
  std::vector<std::string> families;
  for (const auto& r : radiomc::lint::rule_catalog())
    families.emplace_back(r.family);
  for (const char* want : {"determinism", "model-purity", "perf-purity",
                           "telemetry", "exhaustiveness", "sharding",
                           "hygiene"}) {
    EXPECT_NE(std::find(families.begin(), families.end(), want),
              families.end())
        << "missing family " << want;
  }
}

// ---------------------------------------------------------------------------
// Trace-kind round trip: the live writer against the live table.
// ---------------------------------------------------------------------------

std::string EvValue(const std::string& line) {
  const std::string key = "\"ev\":\"";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return {};
  const std::size_t end = line.find('"', at + key.size());
  return line.substr(at + key.size(), end - at - key.size());
}

TEST(TraceKindRoundTrip, EveryEmittedEvKindIsInTheTable) {
  std::ostringstream out;
  {
    radiomc::telemetry::JsonlOptions opt;
    opt.aggregate_every = 4;  // force "agg" lines
    opt.max_events = 2;       // force a "truncated" record
    radiomc::telemetry::JsonlTraceSink sink(out, opt);
    radiomc::Message m;
    m.kind = radiomc::MsgKind::kData;
    m.origin = 1;
    m.seq = 0;
    sink.on_transmit(/*t=*/0, /*sender=*/1, /*ch=*/0, m);   // "tx"
    sink.on_deliver(/*t=*/0, /*receiver=*/2, /*ch=*/0, m);  // "rx"
    sink.on_collision(/*t=*/1, /*receiver=*/3, /*ch=*/0,
                      /*tx_neighbors=*/2);                  // "coll", dropped
    sink.on_collision(/*t=*/9, /*receiver=*/3, /*ch=*/0, 2);  // rolls window
    sink.finish();  // flushes "schema", final "agg", "truncated"
    EXPECT_TRUE(sink.truncated());
  }
  std::istringstream lines(out.str());
  std::string line;
  std::size_t checked = 0;
  std::vector<std::string> seen;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::string ev = EvValue(line);
    ASSERT_FALSE(ev.empty()) << "line without ev kind: " << line;
    EXPECT_TRUE(radiomc::analysis::is_trace_line_kind(ev))
        << "JsonlTraceSink emitted ev kind \"" << ev
        << "\" missing from kTraceLineKinds";
    seen.push_back(ev);
    ++checked;
  }
  EXPECT_GE(checked, 5u);  // schema, tx, rx, agg, truncated at minimum
  for (const char* want : {"schema", "tx", "rx", "agg", "truncated"})
    EXPECT_NE(std::find(seen.begin(), seen.end(), want), seen.end())
        << "expected an \"" << want << "\" line in the stream";
}

TEST(TraceKindRoundTrip, TableRejectsUnknownKinds) {
  EXPECT_TRUE(radiomc::analysis::is_trace_line_kind("coll"));
  EXPECT_FALSE(radiomc::analysis::is_trace_line_kind("bogus"));
  EXPECT_FALSE(radiomc::analysis::is_trace_line_kind(""));
}

// ---------------------------------------------------------------------------
// RNG stream audit (semantic, cross-TU).
// ---------------------------------------------------------------------------

TEST(LintRngAudit, BareLiteralSplitTagIsFlagged) {
  const auto findings = Lint(
      {{"src/protocols/x.cpp", "void f(Rng& m) { Rng a = m.split(0x12); }\n"}});
  ASSERT_EQ(CountRule(findings, "rng-stream-audit"), 1u);
  EXPECT_NE(findings[0].message.find("bare literal split tag 0x12"),
            std::string::npos);
}

TEST(LintRngAudit, NamedConstantTagPassesEvenAcrossFiles) {
  const auto findings = Lint(
      {{"src/support/rng_tags.h",
        "inline constexpr std::uint64_t kX = 0x12;\n"},
       {"src/protocols/x.cpp",
        "void f(Rng& m) { Rng a = m.split(rng_tags::kX); }\n"}});
  EXPECT_EQ(CountRule(findings, "rng-stream-audit"), 0u);
}

TEST(LintRngAudit, DuplicateTagOnOneParentIsFlaggedAtTheSecondSite) {
  const auto findings = Lint(
      {{"src/protocols/x.cpp",
        "constexpr std::uint64_t kX = 7;\n"
        "void f(Rng& m) {\n"
        "  Rng a = m.split(kX);\n"
        "  Rng b = m.split(kX);\n"
        "}\n"}});
  ASSERT_EQ(CountRule(findings, "rng-stream-audit"), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("drawn twice from parent 'm'"),
            std::string::npos);
}

TEST(LintRngAudit, SameTagOnDifferentParentsOrFunctionsPasses) {
  const auto findings = Lint(
      {{"src/protocols/x.cpp",
        "constexpr std::uint64_t kX = 7;\n"
        "void f(Rng& m, Rng& o) { Rng a = m.split(kX); Rng b = o.split(kX); }\n"
        "void g(Rng& m) { Rng c = m.split(kX); }\n"}});
  EXPECT_EQ(CountRule(findings, "rng-stream-audit"), 0u);
}

TEST(LintRngAudit, CallComputedTagIsFlaggedOnlyInDeterministicZones) {
  const char* body = "void f(Rng& m, int v) { Rng a = m.split(h(v)); }\n";
  const auto bad = Lint({{"src/protocols/x.cpp", body}});
  EXPECT_EQ(CountRule(bad, "rng-stream-audit"), 1u);
  // Pure index arithmetic stays legal (per-entity streams).
  const auto ok = Lint(
      {{"src/protocols/y.cpp",
        "void f(Rng& m, int v) { Rng a = m.split(2 * v + 1); }\n"}});
  EXPECT_EQ(CountRule(ok, "rng-stream-audit"), 0u);
  // Offline analysis code is not on a deterministic path.
  const auto offline = Lint({{"src/analysis/x.cpp", body}});
  EXPECT_EQ(CountRule(offline, "rng-stream-audit"), 0u);
}

TEST(LintRngAudit, FixedLiteralSeedRngIsFlaggedOutsideRngSupport) {
  const auto findings =
      Lint({{"src/protocols/x.cpp", "void f() { Rng r(42); }\n"}});
  ASSERT_EQ(CountRule(findings, "rng-stream-audit"), 1u);
  EXPECT_NE(findings[0].message.find("fixed literal seed 0x2a"),
            std::string::npos);
  const auto support = Lint(
      {{"src/support/rng.cpp", "void f() { Rng r(42); }\n"}});
  EXPECT_EQ(CountRule(support, "rng-stream-audit"), 0u);
}

TEST(LintRngAudit, WaiverSuppressesAuditFinding) {
  const auto findings = Lint(
      {{"src/protocols/x.cpp",
        "// radiomc-lint: allow(rng-stream-audit) reason=frozen stream\n"
        "void f() { Rng r(42); }\n"}});
  EXPECT_EQ(Unwaived(findings), 0u);
  EXPECT_EQ(CountRule(findings, "rng-stream-audit", /*waived_only=*/true), 1u);
}

TEST(LintRngAudit, RegistryValueCollisionIsFlagged) {
  const auto findings = Lint(
      {{"src/support/rng_tags.h",
        "inline constexpr std::uint64_t kA = 0x33;\n"
        "inline constexpr std::uint64_t kB = 0x33;\n"}});
  ASSERT_EQ(CountRule(findings, "rng-stream-audit"), 1u);
  EXPECT_NE(findings[0].message.find("share value 0x33"), std::string::npos);
  // Distinct values pass; collisions outside the registry are not the
  // registry's problem (local tags may legitimately reuse small values).
  const auto ok = Lint(
      {{"src/support/rng_tags.h",
        "inline constexpr std::uint64_t kA = 0x33;\n"
        "inline constexpr std::uint64_t kB = 0x34;\n"},
       {"src/protocols/x.cpp",
        "constexpr std::uint64_t kLocal = 0x33;\n"
        "void f(Rng& m) { Rng a = m.split(kLocal); }\n"}});
  EXPECT_EQ(CountRule(ok, "rng-stream-audit"), 0u);
}

TEST(LintRngAudit, InventoryListsRegistryAndUsedTags) {
  const auto result = Analyze(
      {{"src/support/rng_tags.h",
        "inline constexpr std::uint64_t kA = 0x33;\n"},
       {"src/protocols/x.cpp",
        "constexpr std::uint64_t kLocal = 0x44;\n"
        "constexpr std::uint64_t kUnused = 0x55;\n"
        "void f(Rng& m) { Rng a = m.split(kLocal); }\n"}});
  std::vector<std::string> names;
  for (const auto& t : result.rng_tags) names.push_back(t.name);
  // Registry constants always appear; other constants only when used as a
  // split tag somewhere.
  EXPECT_NE(std::find(names.begin(), names.end(), "kA"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "kLocal"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "kUnused"), names.end());
  EXPECT_EQ(result.split_sites, 1u);
}

// ---------------------------------------------------------------------------
// Layer DAG (semantic, manifest-driven).
// ---------------------------------------------------------------------------

LintOptions WithManifest(std::string text) {
  LintOptions opt;
  opt.layers_manifest = std::move(text);
  return opt;
}

constexpr const char* kTwoLayers =
    "layer alpha src/alpha\n"
    "layer beta  src/beta\n"
    "allow alpha -> beta\n";

TEST(LintLayerDag, DeclaredEdgePassesUndeclaredEdgeFails) {
  const auto findings = Lint({{"src/alpha/a.h", "#include \"beta/b.h\"\n"},
                              {"src/beta/b.h", "#include \"alpha/a.h\"\n"}},
                             WithManifest(kTwoLayers));
  ASSERT_EQ(CountRule(findings, "layer-dag"), 1u);
  EXPECT_EQ(findings[0].file, "src/beta/b.h");
  EXPECT_NE(findings[0].message.find("include edge beta -> alpha"),
            std::string::npos);
}

TEST(LintLayerDag, IntraLayerAngledAndUnlayeredIncludesPass) {
  const auto findings = Lint(
      {{"src/alpha/a.h",
        "#include \"alpha/other.h\"\n#include <vector>\n"
        "#include \"nonlayer/x.h\"\n"}},
      WithManifest(kTwoLayers));
  EXPECT_EQ(CountRule(findings, "layer-dag"), 0u);
}

TEST(LintLayerDag, NoManifestDisablesTheAnalysis) {
  const auto findings = Lint({{"src/beta/b.h", "#include \"alpha/a.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "layer-dag"), 0u);
}

TEST(LintLayerDag, FileOutsideEveryLayerIsFlaggedOnce) {
  const auto findings = Lint(
      {{"src/gamma/g.h", "#include \"alpha/a.h\"\n#include \"beta/b.h\"\n"}},
      WithManifest(kTwoLayers));
  ASSERT_EQ(CountRule(findings, "layer-dag"), 1u);
  EXPECT_NE(findings[0].message.find("not covered by any layer"),
            std::string::npos);
}

TEST(LintLayerDag, DeclaredCycleIsUnwaivable) {
  LintOptions opt = WithManifest(
      "layer alpha src/alpha\n"
      "layer beta  src/beta\n"
      "allow alpha -> beta\n"
      "# waiver comments have no power over the manifest itself\n"
      "allow beta -> alpha\n");
  const auto findings = Lint({{"src/alpha/a.h", "int x;\n"}}, opt);
  ASSERT_EQ(CountRule(findings, "layer-dag"), 1u);
  EXPECT_EQ(findings[0].file, ".lint-layers");
  EXPECT_FALSE(findings[0].waived);
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
  EXPECT_EQ(Unwaived(findings), 1u);
}

TEST(LintLayerDag, ParseErrorsCarrySpecificMessages) {
  LintOptions opt = WithManifest(
      "layer alpha\n"                    // 1: missing directory
      "layer beta src/beta\n"
      "layer beta src/beta2\n"           // 3: redeclared
      "allow beta\n"                     // 4: malformed allow
      "allow beta -> beta\n"             // 5: self edge
      "layer delta src/delta\n"
      "allow beta -> delta\n"
      "allow beta -> delta\n"            // 8: duplicate edge
      "allow beta -> ghost\n"            // 9: undeclared layer
      "frobnicate beta\n");              // 10: unknown directive
  const auto findings = Lint({{"src/beta/b.h", "int x;\n"}}, opt);
  const auto has = [&](int line, std::string_view needle) {
    for (const Finding& f : findings) {
      if (f.rule == "layer-dag" && f.line == line &&
          f.message.find(needle) != std::string::npos &&
          f.file == ".lint-layers")
        return true;
    }
    return false;
  };
  EXPECT_TRUE(has(1, "'layer' needs a name and at least one directory"));
  EXPECT_TRUE(has(3, "layer 'beta' redeclared (first declared on line 2)"));
  EXPECT_TRUE(has(4, "'allow' needs the form 'allow <from> -> <to>'"));
  EXPECT_TRUE(has(5, "self edge 'beta -> beta' is implicit"));
  EXPECT_TRUE(has(8, "edge 'beta -> delta' declared twice"));
  EXPECT_TRUE(has(9, "allow references undeclared layer 'ghost'"));
  EXPECT_TRUE(has(10, "unknown directive 'frobnicate'"));
}

TEST(LintLayerDag, WaiverOnTheIncludeLineWorks) {
  const auto findings = Lint(
      {{"src/beta/b.h",
        "// radiomc-lint: allow(layer-dag) reason=transitional\n"
        "#include \"alpha/a.h\"\n"}},
      WithManifest(kTwoLayers));
  EXPECT_EQ(Unwaived(findings), 0u);
  EXPECT_EQ(CountRule(findings, "layer-dag", /*waived_only=*/true), 1u);
}

TEST(LintLayerDag, ReportCountsLayersAndEdges) {
  const auto result =
      Analyze({{"src/alpha/a.h", "int x;\n"}}, WithManifest(kTwoLayers));
  EXPECT_EQ(result.layers_declared, 2u);
  EXPECT_EQ(result.layer_edges_declared, 1u);
}

// ---------------------------------------------------------------------------
// Flow-aware hub-null-check (early returns, inverted guards, else branches).
// ---------------------------------------------------------------------------

TEST(LintTelemetryFlow, EarlyReturnGuardCoversTheRestOfTheScope) {
  const auto findings = Lint(
      {{"src/protocols/ok.cpp", fixtures::kHubField +
            std::string("void f(Cfg& cfg) {\n"
                        "  if (cfg.trace == nullptr) return;\n"
                        "  cfg.trace->flush();\n"
                        "}\n")}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 0u);
}

TEST(LintTelemetryFlow, NegatedTruthinessEarlyReturnCounts) {
  const auto findings = Lint(
      {{"src/protocols/ok.cpp", fixtures::kHubField +
            std::string("void f(Cfg& cfg) {\n"
                        "  if (!cfg.trace) return;\n"
                        "  cfg.trace->flush();\n"
                        "}\n")}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 0u);
}

TEST(LintTelemetryFlow, DereferenceInsideInvertedGuardIsFlagged) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp", fixtures::kHubField +
            std::string("void f(Cfg& cfg) {\n"
                        "  if (!cfg.trace) { cfg.trace->flush(); }\n"
                        "}\n")}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

TEST(LintTelemetryFlow, NonTerminatingNullBranchDoesNotGuardTheTail) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp", fixtures::kHubField +
            std::string("void f(Cfg& cfg) {\n"
                        "  if (cfg.trace == nullptr) { int x = 0; (void)x; }\n"
                        "  cfg.trace->flush();\n"
                        "}\n")}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

TEST(LintTelemetryFlow, ElseBranchOfPositiveGuardIsNotGuarded) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp", fixtures::kHubField +
            std::string("void f(Cfg& cfg) {\n"
                        "  if (cfg.trace) { cfg.trace->flush(); }\n"
                        "  else { cfg.trace->flush(); }\n"
                        "}\n")}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

TEST(LintTelemetryFlow, GuardScopeEndsWithTheBrace) {
  const auto findings = Lint(
      {{"src/protocols/bad.cpp", fixtures::kHubField +
            std::string("void f(Cfg& cfg) {\n"
                        "  if (cfg.trace) { cfg.trace->flush(); }\n"
                        "  cfg.trace->flush();\n"
                        "}\n")}});
  EXPECT_EQ(CountRule(findings, "hub-null-check"), 1u);
}

// ---------------------------------------------------------------------------
// Shard-safety report.
// ---------------------------------------------------------------------------

TEST(LintShardSafety, UnclassifiedSlotLoopMemberIsAFinding) {
  const auto result = Analyze(
      {{"src/radio/network.cpp",
        "void RadioNetwork::step() {\n"
        "  mystery_ += 1;\n"
        "  now_ += 1;\n"
        "}\n"}});
  ASSERT_EQ(CountRule(result.findings, "shard-safety"), 1u);
  EXPECT_NE(result.findings[0].message.find("RadioNetwork::mystery_"),
            std::string::npos);
  // Both touched members appear as rows; the known one is classified.
  ASSERT_EQ(result.shard_safety.size(), 2u);
  bool saw_known = false, saw_unknown = false;
  for (const auto& r : result.shard_safety) {
    if (r.member == "now_") {
      EXPECT_EQ(r.classification, "barrier-mergeable");
      saw_known = true;
    }
    if (r.member == "mystery_") {
      EXPECT_EQ(r.classification, "unclassified");
      saw_unknown = true;
    }
  }
  EXPECT_TRUE(saw_known);
  EXPECT_TRUE(saw_unknown);
}

TEST(LintShardSafety, ReadOnlyMemberWrittenIsDriftFinding) {
  const auto result = Analyze(
      {{"src/radio/network.cpp",
        "void RadioNetwork::step() { cfg_ = Config{}; }\n"}});
  ASSERT_EQ(CountRule(result.findings, "shard-safety"), 1u);
  EXPECT_NE(result.findings[0].message.find("classified read-only"),
            std::string::npos);
}

TEST(LintShardSafety, NonSlotLoopFunctionsAreExempt) {
  const auto result = Analyze(
      {{"src/radio/network.cpp",
        "void RadioNetwork::attach() { mystery_ += 1; }\n"}});
  EXPECT_EQ(CountRule(result.findings, "shard-safety"), 0u);
  EXPECT_TRUE(result.shard_safety.empty());
}

TEST(LintShardSafety, WaiverSuppressesTheFinding) {
  const auto result = Analyze(
      {{"src/radio/network.cpp",
        "void RadioNetwork::step() {\n"
        "  // radiomc-lint: allow(shard-safety) reason=migration in flight\n"
        "  mystery_ += 1;\n"
        "}\n"}});
  EXPECT_EQ(Unwaived(result.findings), 0u);
  EXPECT_EQ(CountRule(result.findings, "shard-safety", /*waived_only=*/true),
            1u);
}

// ---------------------------------------------------------------------------
// radiomc.lint/v2 report round trip (through the real JSON parser).
// ---------------------------------------------------------------------------

TEST(LintReportV2, RoundTripsThroughTheJsonParser) {
  const auto result = Analyze(
      {{"src/radio/network.cpp",
        "void RadioNetwork::step() {\n"
        "  now_ += 1;\n"
        "  mystery_ += 1;\n"
        "}\n"},
       {"src/support/rng_tags.h",
        "inline constexpr std::uint64_t kA = 0x33;\n"},
       {"src/alpha/a.h", "#include \"beta/b.h\"\n"}},
      WithManifest(kTwoLayers));
  std::ostringstream os;
  radiomc::lint::write_json_report(os, result, /*wall_ms=*/1.5);

  const auto parsed = radiomc::perf::parse_json(os.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const radiomc::perf::JsonValue& doc = parsed.value;
  EXPECT_EQ(doc.at("schema").as_string(), "radiomc.lint/v2");

  const auto& findings = doc.at("findings").items();
  EXPECT_EQ(findings.size(), result.findings.size());
  for (const auto& f : findings) {
    EXPECT_FALSE(f.at("rule").as_string().empty());
    EXPECT_FALSE(f.at("file").as_string().empty());
  }

  const auto& rows = doc.at("shard_safety").items();
  ASSERT_EQ(rows.size(), result.shard_safety.size());
  bool saw_unclassified = false;
  for (const auto& r : rows) {
    EXPECT_FALSE(r.at("class").as_string().empty());
    if (r.at("class").as_string() == "unclassified") saw_unclassified = true;
  }
  EXPECT_TRUE(saw_unclassified);

  const auto& tags = doc.at("rng_streams").at("tags").items();
  ASSERT_EQ(tags.size(), result.rng_tags.size());
  ASSERT_FALSE(tags.empty());
  EXPECT_EQ(tags[0].at("value").as_string(), "0x33");

  EXPECT_EQ(doc.at("layers").at("declared").as_int(), 2);
  EXPECT_EQ(doc.at("layers").at("edges").as_int(), 1);

  const auto& footer = doc.at("footer");
  EXPECT_EQ(footer.at("files_scanned").as_int(), 3);
  EXPECT_EQ(footer.at("total").as_int(),
            static_cast<std::int64_t>(result.findings.size()));
  EXPECT_NEAR(footer.at("wall_ms").as_double(), 1.5, 1e-9);
}

// ---------------------------------------------------------------------------
// The repo itself must lint clean (the CI gate, run as a test).
// ---------------------------------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

TEST(LintRepo, TreeHasNoUnwaivedFindings) {
  const std::vector<std::string> roots = {RADIOMC_SOURCE_DIR "/src",
                                          RADIOMC_SOURCE_DIR "/tools",
                                          RADIOMC_SOURCE_DIR "/bench"};
  const auto files = radiomc::lint::load_tree(roots);
  ASSERT_GT(files.size(), 50u) << "load_tree found suspiciously few sources";
  LintOptions opt;
  opt.layers_manifest = ReadWholeFile(RADIOMC_SOURCE_DIR "/.lint-layers");
  ASSERT_FALSE(opt.layers_manifest.empty())
      << "repo layer manifest .lint-layers is missing";
  const auto result = radiomc::lint::run_analyses(files, opt);
  for (const Finding& f : result.findings) {
    if (!f.waived)
      ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                    << f.message;
  }
  EXPECT_EQ(Unwaived(result.findings), 0u);
  // Every waiver in the tree must carry a reason.
  for (const Finding& f : result.findings) {
    if (f.waived)
      EXPECT_FALSE(f.waiver_reason.empty())
          << f.file << ":" << f.line << ": waiver without reason=";
  }
  // The shard-safety report must fully classify the live engine.
  EXPECT_GE(result.shard_safety.size(), 20u);
  for (const auto& r : result.shard_safety) {
    EXPECT_NE(r.classification, "unclassified")
        << r.owner << "::" << r.member;
  }
  // The tag registry is live and collision-free (collisions would have
  // been findings above); the real tree splits streams in many places.
  EXPECT_GE(result.rng_tags.size(), 15u);
  EXPECT_GE(result.split_sites, 30u);
  EXPECT_GE(result.layers_declared, 10u);
}

}  // namespace
