// Scaled-down million-node smoke test (slow-labeled): a Decay broadcast
// (§2, the BGI primitive) over a 10^5-node sparse G(n, p), written
// active-set-natively — uninformed stations sleep until the message
// reaches them, informed stations sleep between their Decay coin flips —
// and required to (a) inform every station inside a fixed slot budget and
// (b) do so with far fewer station polls than the legacy
// poll-everyone-every-slot engine would have spent. The n = 10^6 variants
// live in bench_micro (they measure throughput, not coverage); this test
// is the CI-sized proof that the active-set machinery scales in the way
// the bench numbers claim.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/generators.h"
#include "radio/network.h"
#include "support/rng.h"

namespace radiomc {
namespace {

/// One Decay round is ceil(log2 n) + 1 slots (§2: halving the expected
/// number of transmitters each slot needs log n halvings).
constexpr SlotTime kRoundLen = 18;

/// Decay-broadcast relay. Informed stations transmit at each round start
/// and keep transmitting with probability 1/2 per slot (self-waking while
/// their coin lives, sleeping once it dies); the driver re-wakes all
/// informed stations at every round boundary. Uninformed stations sleep
/// from slot 1 until the message arrives.
class DecayRelay : public Station {
 public:
  DecayRelay(NodeId self, bool source, Rng rng,
             std::vector<NodeId>* informed_list)
      : self_(self), informed_(source), rng_(rng),
        informed_list_(informed_list) {
    if (source) informed_list_->push_back(self);
  }

  void on_attach(Waker& w) override {
    waker_ = &w;
    w.set_autosleep(true);
  }

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (!informed_) return;  // nothing to relay; fall asleep again
    if (t % kRoundLen == 0) transmitting_ = true;
    if (!transmitting_) return;
    Message m;
    m.kind = MsgKind::kBcastData;
    m.origin = 0;
    m.seq = 1;
    tx[0] = m;
    if (rng_.bernoulli(0.5)) {
      waker_->wake();  // coin lives: transmit again next slot
    } else {
      transmitting_ = false;  // coin died: sleep until the next round
    }
  }

  void on_receive(SlotTime t, ChannelId, const Message&) override {
    if (informed_) return;
    informed_ = true;
    informed_at = t;
    // No wake: Decay is round-synchronous, so the station (correctly)
    // stays quiet until the driver's next round-boundary wake.
    informed_list_->push_back(self_);
  }

  bool informed() const noexcept { return informed_; }
  SlotTime informed_at = 0;

 private:
  NodeId self_;
  bool informed_;
  bool transmitting_ = false;
  Rng rng_;
  std::vector<NodeId>* informed_list_;
  Waker* waker_ = nullptr;
};

TEST(EngineScale, ActiveSetDecayBroadcastCovers100kNodesWithinBudget) {
  const NodeId kN = 100000;
  const SlotTime kBudget = 3000;  // ~166 Decay rounds
  Rng rng(0x5CA1E);

  // Mean degree 16 > ln(10^5) ~ 11.5, so the O(n + m) sampler connects
  // within a few attempts.
  const Graph g = gen::gnp_sparse_connected(kN, 16.0 / kN, rng);

  std::vector<NodeId> informed_list;
  informed_list.reserve(kN);
  std::deque<DecayRelay> stations;
  std::vector<Station*> ptrs;
  ptrs.reserve(kN);
  for (NodeId v = 0; v < kN; ++v) {
    stations.emplace_back(v, v == 0, rng.split(v), &informed_list);
    ptrs.push_back(&stations.back());
  }

  RadioNetwork net(g);
  net.attach(ptrs);

  SlotTime slots_used = 0;
  while (slots_used < kBudget && informed_list.size() < kN) {
    if (slots_used % kRoundLen == 0) {
      // Round boundary: re-admit every informed relay for the next round.
      // (Index loop, not iterators: on_receive appends during step().)
      for (std::size_t i = 0; i < informed_list.size(); ++i)
        net.wake_station(informed_list[i]);
    }
    net.step();
    ++slots_used;
  }

  EXPECT_EQ(informed_list.size(), kN)
      << "broadcast did not cover the graph in " << kBudget << " slots";
  EXPECT_LT(slots_used, kBudget);
  EXPECT_GE(net.metrics().deliveries, static_cast<std::uint64_t>(kN) - 1);

  // The active-set payoff: the legacy engine would have spent
  // n * slots_used polls; the rewrite must spend a small fraction of that
  // (uninformed stations sleep, informed ones average ~2 awake slots per
  // 18-slot round plus the round-boundary poll).
  const std::uint64_t legacy_polls =
      static_cast<std::uint64_t>(kN) * slots_used;
  EXPECT_LT(net.engine_stats().station_polls, legacy_polls / 4);
  EXPECT_GT(net.engine_stats().station_polls, 0u);
  EXPECT_GT(net.engine_stats().wake_events, 0u);

  // Every station was informed strictly after its BFS-distance-0 source.
  for (NodeId v = 1; v < kN; ++v)
    EXPECT_TRUE(stations[v].informed());
}

}  // namespace
}  // namespace radiomc
