// A virtual Ethernet over a multi-hop radio mesh — §1.3's punchline:
// "protocols designed for the ETHERNET [can be used] in a multi-hop
// network".
//
// The VirtualEthernet service turns the whole mesh into one shared slotted
// bus with exact ternary feedback (silence / success / collision) at every
// station. On top of it we run the classic binary-exponential-backoff MAC:
// stations contend, collide, back off, and eventually drain their
// backlogs — exactly as they would on a single cable, except the "cable"
// is the paper's collection + distribution machinery.

#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "protocols/ethernet_emulation.h"
#include "protocols/setup.h"
#include "support/rng.h"

using namespace radiomc;

int main() {
  Rng rng(77);
  const Graph mesh = gen::grid(4, 5);
  std::printf("mesh: 4x5 grid (%u stations)\n", mesh.num_nodes());

  const SetupOutcome setup = run_setup(mesh, 78);
  if (!setup.ok) return 1;

  // First: watch the raw bus feedback on a scripted contention pattern.
  {
    VirtualEthernet bus(mesh, setup.tree,
                        VirtualEthernet::Config::for_graph(mesh), 79);
    bus.set_policy([](NodeId v, std::uint32_t round)
                       -> std::optional<std::uint32_t> {
      // Round 0: stations 4 and 9 collide. Round 1: only 4 retries.
      // Round 2: only 9. Round 3: silence.
      if (round == 0 && (v == 4 || v == 9)) return 100 + v;
      if (round == 1 && v == 4) return 104;
      if (round == 2 && v == 9) return 109;
      return std::nullopt;
    });
    const auto log = bus.run_rounds(4);
    const char* names[] = {"SILENCE", "SUCCESS", "COLLISION"};
    std::printf("\nscripted contention on the virtual bus:\n");
    for (const auto& o : log) {
      std::printf("  round %u: %-9s", o.round,
                  names[static_cast<int>(o.kind)]);
      if (o.kind == VirtualEthernet::Feedback::kSuccess)
        std::printf("  winner=station %u frame=%u", o.winner, o.frame);
      std::printf("\n");
    }
    std::printf("  (all %u stations observed this exact sequence; one bus "
                "round costs ~%llu radio slots here)\n",
                mesh.num_nodes(),
                static_cast<unsigned long long>(bus.now() / log.size()));
  }

  // Second: the Ethernet MAC. Everyone has frames; exponential backoff
  // sorts out the contention using only the shared feedback.
  {
    std::vector<std::uint32_t> backlog(mesh.num_nodes(), 2);
    const BackoffOutcome out =
        run_ethernet_backoff(mesh, setup.tree, backlog, 80);
    if (!out.completed) {
      std::printf("backoff failed to drain\n");
      return 1;
    }
    std::printf("\nbinary exponential backoff: %zu frames drained in %u bus "
                "rounds (%llu radio slots)\n",
                out.delivered_frames.size(), out.rounds_used,
                static_cast<unsigned long long>(out.slots));
    std::printf("efficiency: %.2f frames per round (1.0 would be a perfect "
                "schedule; ~0.37 is slotted-ALOHA territory)\n",
                static_cast<double>(out.delivered_frames.size()) /
                    out.rounds_used);
  }
  return 0;
}
