// A network-wide news feed — §6's k-broadcast: any station can publish;
// every station must see every publication, in a consistent order.
//
// The k-broadcast service funnels publications to the root (collection)
// and pipelines them down the BFS tree (distribution); sequence numbers,
// gap-NACKs and the checkpoint window make delivery exactly-once-in-order
// at every station. The example publishes from random stations while time
// advances, then prints each station's delivered prefix and the pipeline
// economics (slots per publication once the pipe is full).

#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/setup.h"
#include "support/rng.h"

using namespace radiomc;

int main() {
  Rng rng(11);
  const Graph g = gen::gnp_connected(36, 0.12, rng);
  std::printf("mesh of %u stations, %zu links\n", g.num_nodes(),
              g.num_edges());

  const SetupOutcome setup = run_setup(g, 21);
  if (!setup.ok) return 1;

  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
  cfg.distribution.window = 16;  // bounded sequence numbers on the wire
  BroadcastService feed(g, setup.tree, cfg, rng.next());

  // Publish 30 items from random stations, staggered in time (the service
  // is reactive: items originate while earlier ones are still in flight).
  const int items = 30;
  for (int i = 0; i < items; ++i) {
    const NodeId publisher =
        static_cast<NodeId>(rng.next_below(g.num_nodes()));
    feed.broadcast(publisher, 0xAA00 + i);
    for (int s = 0; s < 400; ++s) feed.step();  // time passes between posts
  }
  if (!feed.run_until_delivered(100'000'000)) {
    std::printf("feed failed to converge\n");
    return 1;
  }

  std::printf("all %d publications delivered everywhere after %llu slots\n",
              items, static_cast<unsigned long long>(feed.now()));
  const auto& root_dist = feed.distribution(setup.tree.root);
  std::printf("repair traffic: %llu resends, %llu idle rebroadcasts\n",
              static_cast<unsigned long long>(root_dist.root_resends()),
              static_cast<unsigned long long>(
                  root_dist.root_idle_rebroadcasts()));

  // Every station saw the same ordered feed.
  bool consistent = true;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == setup.tree.root) continue;
    const auto& log = feed.distribution(v).delivery_log();
    consistent = consistent && log.size() == items;
    for (std::size_t i = 0; i < log.size(); ++i)
      consistent = consistent && log[i].second == i;
  }
  std::printf("feed order consistent at every station: %s\n",
              consistent ? "yes" : "NO");

  const double sp = static_cast<double>(
      cfg.distribution.phases_per_superphase * cfg.distribution.decay_len * 3);
  std::printf("pipeline economics: superphase = %.0f slots "
              "(one publication per superphase at steady state)\n",
              sp);
  return consistent ? 0 : 1;
}
