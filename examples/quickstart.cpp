// Quickstart: the whole stack in ~60 lines.
//
// 1. Make a multi-hop radio topology (here: a random unit-disk graph, the
//    classic model of stations scattered over an area).
// 2. Run the self-organizing setup phase (§2): leader election, BFS tree,
//    DFS addressing — all over the radio itself, always succeeding.
// 3. Send a few point-to-point messages and a broadcast.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/point_to_point.h"
#include "protocols/setup.h"
#include "support/rng.h"

using namespace radiomc;

int main() {
  // 1. Topology: 40 stations in the unit square, radio range ~0.34.
  Rng rng(2026);
  const Graph g =
      gen::unit_disk_connected(40, gen::udg_connect_radius(40), rng);
  std::printf("network: n=%u stations, %zu links, max degree %u\n",
              g.num_nodes(), g.num_edges(), g.max_degree());

  // 2. Setup phase: everything below runs on the simulated radio channel —
  //    no global knowledge, only n, the degree bound and local neighbors.
  const SetupOutcome setup = run_setup(g, /*seed=*/1);
  if (!setup.ok) {
    std::printf("setup failed (should not happen)\n");
    return 1;
  }
  std::printf("setup: leader=%u, BFS depth=%u, %u attempt(s), %llu slots\n",
              setup.leader, setup.tree.depth, setup.attempts,
              static_cast<unsigned long long>(setup.slots));

  // 3a. Point-to-point: station 3 -> station 17, and back.
  PreparationResult prep;
  prep.ok = true;
  prep.labels = setup.labels;
  prep.routing = setup.routing;
  const auto p2p = run_point_to_point(
      g, prep, {{3, 17, 0xC0FFEE}, {17, 3, 0xBEEF}}, P2pConfig::for_graph(g),
      /*seed=*/2);
  std::printf("point-to-point: %llu/%zu delivered in %llu slots\n",
              static_cast<unsigned long long>(p2p.delivered), std::size_t{2},
              static_cast<unsigned long long>(p2p.slots));

  // 3b. Broadcast: station 5 tells everyone.
  BroadcastService svc(g, setup.tree, BroadcastServiceConfig::for_graph(g),
                       /*seed=*/3);
  svc.broadcast(5, 0xFEED);
  svc.run_until_delivered(10'000'000);
  std::printf("broadcast: all %u stations delivered after %llu slots\n",
              g.num_nodes(), static_cast<unsigned long long>(svc.now()));
  return 0;
}
