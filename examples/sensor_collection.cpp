// Sensor-field data collection — the workload §4's collection protocol is
// built for: many stations each hold readings that must reach a sink.
//
// A 10x10 grid of sensors takes periodic readings; every sensor sends its
// reading to the sink (the BFS root) with the collection protocol. The
// example reports per-round latency and the amortized per-message cost,
// and contrasts it with the deterministic TDMA baseline on the same field
// (the reason the paper's randomized protocol matters: O(log Delta) per
// message instead of Theta(n)).

#include <cstdio>
#include <vector>

#include "baselines/tdma_collection.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/setup.h"
#include "support/rng.h"

using namespace radiomc;

int main() {
  const Graph field = gen::grid(10, 10);
  std::printf("sensor field: 10x10 grid, %u sensors\n", field.num_nodes());

  // Self-organize once (the paper's setup phase); afterwards the tree is
  // reused for every collection round.
  const SetupOutcome setup = run_setup(field, 7);
  if (!setup.ok) return 1;
  std::printf("sink elected: sensor %u (BFS depth %u)\n\n", setup.leader,
              setup.tree.depth);

  Rng rng(99);
  std::printf("%8s%12s%14s%16s\n", "round", "readings", "slots",
              "slots/reading");
  double total_slots = 0;
  std::uint64_t total_msgs = 0;
  for (int round = 1; round <= 5; ++round) {
    std::vector<Message> readings;
    for (NodeId v = 0; v < field.num_nodes(); ++v) {
      if (v == setup.leader) continue;
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = static_cast<std::uint32_t>(round);
      m.payload = 20'000 + rng.next_below(500);  // simulated reading
      readings.push_back(m);
    }
    const auto out =
        run_collection(field, setup.tree, readings,
                       CollectionConfig::for_graph(field), rng.next());
    if (!out.completed) return 1;
    total_slots += static_cast<double>(out.slots);
    total_msgs += readings.size();
    std::printf("%8d%12zu%14llu%16.1f\n", round, readings.size(),
                static_cast<unsigned long long>(out.slots),
                static_cast<double>(out.slots) /
                    static_cast<double>(readings.size()));
  }
  std::printf("\namortized: %.1f slots per reading (Delta=%u, so the "
              "paper's O(log Delta) per message)\n",
              total_slots / static_cast<double>(total_msgs),
              field.max_degree());

  // Baseline for perspective.
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < field.num_nodes(); ++v)
    if (v != setup.leader) sources.push_back(v);
  const auto tdma =
      baselines::run_tdma_collection(field, setup.tree, sources);
  std::printf("TDMA baseline for one round: %llu slots (%.1fx slower)\n",
              static_cast<unsigned long long>(tdma.slots),
              static_cast<double>(tdma.slots) / (total_slots / 5.0));
  return 0;
}
