// A point-to-point messenger over a multi-hop radio mesh — §5's workload:
// arbitrary station pairs exchange unicast messages concurrently.
//
// After the setup phase every station is addressed by its DFS number;
// messages climb to the least common ancestor and descend by interval
// containment. The example runs a "chat burst": every station messages a
// random peer, twice, all at once — and reports delivery latency
// statistics, plus the §7 ranking protocol as a directory service
// (stations get compact consecutive ids).

#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "protocols/point_to_point.h"
#include "protocols/ranking.h"
#include "protocols/setup.h"
#include "support/rng.h"
#include "support/stats.h"

using namespace radiomc;

int main() {
  Rng rng(31);
  const Graph mesh =
      gen::unit_disk_connected(50, gen::udg_connect_radius(50), rng);
  std::printf("radio mesh: %u stations, %zu links, Delta=%u\n",
              mesh.num_nodes(), mesh.num_edges(), mesh.max_degree());

  const SetupOutcome setup = run_setup(mesh, 41);
  if (!setup.ok) return 1;
  PreparationResult prep;
  prep.ok = true;
  prep.labels = setup.labels;
  prep.routing = setup.routing;

  // Chat burst: every station sends 2 messages to random peers.
  std::vector<P2pRequest> burst;
  for (NodeId v = 0; v < mesh.num_nodes(); ++v)
    for (int j = 0; j < 2; ++j)
      burst.push_back({v,
                       static_cast<NodeId>(rng.next_below(mesh.num_nodes())),
                       (static_cast<std::uint64_t>(v) << 8) | j});
  const auto out = run_point_to_point(mesh, prep, burst,
                                      P2pConfig::for_graph(mesh), rng.next());
  if (!out.completed) {
    std::printf("burst did not complete\n");
    return 1;
  }

  OnlineStats latency;
  for (auto s : out.delivery_slot)
    latency.add(static_cast<double>(s));
  std::printf("chat burst: %zu messages, done in %llu slots\n", burst.size(),
              static_cast<unsigned long long>(out.slots));
  std::printf("delivery slots: mean %.0f, min %.0f, max %.0f "
              "(concurrent pipelining: mean << completion)\n",
              latency.mean(), latency.min(), latency.max());

  // Directory service: order-preserving compact ids via §7 ranking.
  std::vector<std::uint64_t> serials(mesh.num_nodes());
  for (auto& s : serials) s = 0x1000000 + rng.next_below(0xFFFFFF);
  const RankingOutcome ranks = run_ranking(mesh, prep, serials, rng.next());
  if (!ranks.completed) return 1;
  std::printf("ranking: %u stations renumbered 1..%u in %llu slots "
              "(order-preserving on their serial numbers)\n",
              mesh.num_nodes(), mesh.num_nodes(),
              static_cast<unsigned long long>(ranks.total_slots()));
  std::printf("  e.g. station 0: serial %#llx -> compact id %u\n",
              static_cast<unsigned long long>(serials[0]), ranks.rank[0]);
  return 0;
}
