// radiomc_perf — the perf trajectory gate.
//
//   radiomc_perf --against baseline.json current.json
//                [--threshold X] [--json OUT]
//
// Diffs two machine-readable performance documents of the same schema —
// radiomc.perf/v1 run reports (radiomc_sim --perf-out) or radiomc.bench/v1
// tables (BENCH_ENGINE.json from bench_micro) — and exits nonzero when any
// bigger-is-better metric fell below baseline/threshold. CI runs this
// against the committed baseline so an engine slowdown fails the build
// instead of landing silently.
//
// Exit codes: 0 = within threshold, 1 = regression past the threshold,
// 2 = usage error / unreadable or incomparable documents.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "perf/json_value.h"
#include "perf/regression.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: radiomc_perf --against BASELINE.json CURRENT.json\n"
      "                    [--threshold X] [--json OUT]\n"
      "\n"
      "Compares CURRENT against BASELINE (both radiomc.perf/v1 or both\n"
      "radiomc.bench/v1) and exits 1 if any throughput metric regressed\n"
      "by more than a factor of X (default 2.0; must be > 1).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string json_out;
  radiomc::perf::DiffOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--against") {
      if (i + 1 >= argc) return usage();
      baseline_path = argv[++i];
    } else if (arg == "--threshold") {
      if (i + 1 >= argc) return usage();
      try {
        opt.threshold = std::stod(argv[++i]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "radiomc_perf: bad --threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--json") {
      if (i + 1 >= argc) return usage();
      json_out = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "radiomc_perf: unknown option %s\n", arg.c_str());
      return usage();
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage();

  const auto baseline = radiomc::perf::parse_json_file(baseline_path);
  if (!baseline.ok) {
    std::fprintf(stderr, "radiomc_perf: %s\n", baseline.error.c_str());
    return 2;
  }
  const auto current = radiomc::perf::parse_json_file(current_path);
  if (!current.ok) {
    std::fprintf(stderr, "radiomc_perf: %s\n", current.error.c_str());
    return 2;
  }

  const radiomc::perf::DiffReport report =
      radiomc::perf::diff_reports(baseline.value, current.value, opt);

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "radiomc_perf: cannot write %s\n",
                   json_out.c_str());
      return 2;
    }
    out << radiomc::perf::diff_to_json(report, opt) << '\n';
  }

  std::fputs(radiomc::perf::diff_to_text(report, opt).c_str(), stdout);
  if (!report.comparable) return 2;
  return report.any_regression() ? 1 : 0;
}
