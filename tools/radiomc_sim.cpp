// radiomc_sim — command-line front end for the protocol suite.
//
//   radiomc_sim setup     --topology grid:8x8 [--seed S] [--anon BITS]
//   radiomc_sim collect   --topology udg:64 --k 32 [--seed S] [--no-mod3]
//   radiomc_sim broadcast --topology gnp:50:0.12 --k 16 [--window W]
//   radiomc_sim p2p       --topology grid:6x6 --k 64
//   radiomc_sim ranking   --topology path:32
//   radiomc_sim ethernet  --topology grid:4x5 --frames 2
//   radiomc_sim flood     --topology tree:63:2 [--source V]
//   radiomc_sim serve     --topology grid:6x6 --arrival poisson:0.1
//                         [--admission shed] [--certify --slots 10000000]
//   radiomc_sim topo      --topology <spec>          (print graph stats)
//
// Every command prints a compact human-readable report; exit code 0 iff
// the run completed. Seeds make everything reproducible.
//
// Telemetry (all commands):
//   --metrics-out FILE   write a JSON document with engine counters, phase
//                        spans and per-level histograms after the run
//   --trace-out FILE     stream physical events as JSONL during the run
//   --trace-agg N        add per-N-slot aggregate lines to the trace
//   --trace-max N        cap event lines at N; a capped trace ends with an
//                        explicit "truncated" record and publishes the
//                        trace.dropped_events counter
//
// Performance observability (all protocol commands):
//   --perf-out FILE      attach the in-process profiler and write a
//                        radiomc.perf/v1 report (span tree, slots/sec,
//                        peak RSS) after the run; simulation output is
//                        byte-identical with or without it
//   --snapshot-out FILE  stream periodic radiomc.snap/v1 metric snapshots
//   --snapshot-every N   ... every N engine slots (both flags required
//                        together; incompatible with --trials)
//
// Fault injection (protocol commands; topo/ethernet reject the flags):
//   --fault-crash/--fault-recover/--fault-link-down/--fault-link-up
//   --fault-jam/--fault-drop/--fault-epoch/--fault-from/--fault-until
//   compile a deterministic FaultPlan against the protocol's network;
//   --fault-stall N arms a progress watchdog (status "degraded" instead
//   of a hang). With every rate zero, output is byte-identical to a
//   fault-free build.
//
// Repetition (setup/flood/collect/p2p/broadcast):
//   --trials N           run N independent trials; trial t's seed derives
//                        from root.split(t), so results depend only on
//                        --seed, never on scheduling
//   --jobs J             threads for --trials (0 = all cores; also the
//                        RADIOMC_JOBS env var). Per-trial telemetry is
//                        merged in trial order, spans tagged trial=t.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "graph/algorithms.h"
#include "health/monitor.h"
#include "perf/profiler.h"
#include "perf/report.h"
#include "perf/snapshot.h"
#include "graph/graph_io.h"
#include "graph/topology_spec.h"
#include "protocols/steady_state.h"
#include "queueing/analysis.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/ethernet_emulation.h"
#include "protocols/point_to_point.h"
#include "protocols/ranking.h"
#include "protocols/setup.h"
#include "protocols/tree.h"
#include "service/certify.h"
#include "service/service.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/util.h"
#include "telemetry/jsonl_sink.h"
#include "telemetry/telemetry.h"

using namespace radiomc;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.contains(key); }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : std::stoull(it->second);
  }
  double get_f64(const std::string& key, double dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    require(key.rfind("--", 0) == 0, "options look like --key [value]");
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.options[key] = argv[++i];
    } else {
      a.options[key] = "1";  // boolean flag
    }
  }
  return a;
}

/// --fault-* flags -> a validated FaultPlan. Rates outside [0, 1],
/// recovery without crashes, link-up without link-down and empty windows
/// are rejected with the FaultPlan::validate messages.
FaultPlan faults_from_args(const Args& a) {
  FaultPlan p;
  p.crash_rate = a.get_f64("fault-crash", 0.0);
  p.recover_rate = a.get_f64("fault-recover", 0.0);
  p.link_down_rate = a.get_f64("fault-link-down", 0.0);
  p.link_up_rate = a.get_f64("fault-link-up", 0.0);
  p.jam_prob = a.get_f64("fault-jam", 0.0);
  p.drop_prob = a.get_f64("fault-drop", 0.0);
  p.epoch_slots = a.get_u64("fault-epoch", p.epoch_slots);
  p.window_start = a.get_u64("fault-from", 0);
  p.window_end = a.get_u64("fault-until", kNoSlotLimit);
  p.validate();
  return p;
}

/// Commands without a fault model (topo builds no network; ethernet's
/// virtual bus predates the hook) refuse the flags instead of ignoring
/// them silently.
void reject_fault_flags(const Args& a, const char* cmd) {
  for (const auto& [key, value] : a.options) {
    (void)value;
    require(key.rfind("fault-", 0) != 0,
            "--" + key + " is not supported by the " + std::string(cmd) +
                " command: it injects no faults");
  }
}

/// One stdout line describing the active plan; empty when no fault is
/// enabled so fault-free reports stay byte-identical to the historical
/// output.
std::string fault_report_line(const FaultPlan& p);

int usage() {
  std::printf(
      "radiomc_sim <command> --topology <spec> [options]\n"
      "\n"
      "commands:\n"
      "  topo       print graph statistics   [--dot [--tree]] [--edges]\n"
      "  steady     open-system collection   [--lambda F] [--phases P]\n"
      "  serve      continuous-traffic service (open-loop soak driver)\n"
      "             [--arrival bernoulli:R|poisson:R|mmpp:R0:R1:PON:POFF]\n"
      "             [--phases P | --slots N] [--warmup P] [--uniform]\n"
      "             [--admission off|shed|defer [--envelope M]]\n"
      "             [--no-dedup] [--no-autosleep]\n"
      "             [--health-out FILE [--alert-rules SPEC] "
      "[--health-window N]]\n"
      "                                  (radiomc.health/v1 alert stream)\n"
      "             [--certify [--certify-margin F] [--certify-sojourn M]\n"
      "              [--soak-out FILE]]   (radiomc.soak/v1 verdict)\n"
      "  setup      run the full §2 setup phase      [--anon BITS] "
      "[--attempts N]\n"
      "  flood      BGI single-source broadcast      [--source V]\n"
      "  collect    k-message collection (§4)        [--k K] [--no-mod3]\n"
      "  p2p        k point-to-point messages (§5)   [--k K]\n"
      "  broadcast  pipelined k-broadcast (§6)       [--k K] [--window W]\n"
      "  ranking    the §7 ranking protocol\n"
      "  ethernet   virtual bus + backoff MAC (§1.3) [--frames F]\n"
      "\n"
      "common options: --seed S (default 1)\n"
      "                --metrics-out FILE  (JSON metrics + phase timeline)\n"
      "                --trace-out FILE    (JSONL physical-event trace)\n"
      "                --trace-agg N       (per-N-slot aggregate lines)\n"
      "                --trace-max N       (cap event lines; emits a "
      "'truncated' record)\n"
      "                --perf-out FILE     (radiomc.perf/v1 profiler "
      "report; output stays byte-identical)\n"
      "                --snapshot-out FILE (radiomc.snap/v1 JSONL metric "
      "snapshots)\n"
      "                --snapshot-every N  (snapshot cadence in slots; "
      "required with --snapshot-out)\n"
      "                --trials N          (independent repetitions; "
      "setup/flood/collect/p2p/broadcast)\n"
      "                --jobs J            (threads for --trials; 0 = all "
      "cores; env RADIOMC_JOBS)\n"
      "fault injection (protocol commands; topo/ethernet reject these):\n"
      "                --fault-crash R     (per-epoch crash prob per "
      "station)\n"
      "                --fault-recover R   (per-epoch recovery prob when "
      "crashed)\n"
      "                --fault-link-down R (per-epoch link-down prob per "
      "link)\n"
      "                --fault-link-up R   (per-epoch link-up prob when "
      "down)\n"
      "                --fault-jam P       (per-slot jam prob per clean "
      "reception)\n"
      "                --fault-drop P      (per-slot delivery drop prob)\n"
      "                --fault-epoch N     (epoch length in slots, default "
      "1024)\n"
      "                --fault-from S      (first slot faults may strike)\n"
      "                --fault-until S     (fault onset stops at this "
      "slot)\n"
      "                --fault-stall N     (watchdog: degraded after N "
      "slots w/o progress)\n"
      "topology spec: %s\n",
      gen::spec_grammar().c_str());
  return 2;
}

/// Per-command observability: one Telemetry hub shared by setup and the
/// command's main protocol run, plus an optional JSONL trace sink, an
/// optional profiler (--perf-out) and an optional snapshot stream
/// (--snapshot-out/--snapshot-every).
struct Obs {
  telemetry::Telemetry tel;
  std::unique_ptr<telemetry::JsonlTraceSink> sink;
  std::unique_ptr<perf::Profiler> prof;
  std::unique_ptr<perf::SnapshotStreamer> snap;
  std::string metrics_path;
  std::string perf_path;
  std::string perf_command;
  unsigned perf_jobs = 1;

  static Obs from_args(const Args& a) {
    Obs o;
    o.metrics_path = a.get("metrics-out", "");
    const std::string trace_path = a.get("trace-out", "");
    if (trace_path.empty()) {
      require(!a.has("trace-agg"),
              "--trace-agg requires --trace-out: aggregate lines are part "
              "of the trace stream");
      require(!a.has("trace-max"),
              "--trace-max requires --trace-out: it caps the trace stream");
    }
    if (!trace_path.empty()) {
      telemetry::JsonlOptions opt;
      opt.aggregate_every = a.get_u64("trace-agg", 0);
      opt.max_events = a.get_u64("trace-max", 0);
      o.sink =
          std::make_unique<telemetry::JsonlTraceSink>(trace_path, opt);
      require(o.sink->ok(), "cannot open --trace-out file " + trace_path);
    }
    o.perf_path = a.get("perf-out", "");
    o.perf_command = a.command;
    if (!o.perf_path.empty()) o.prof = std::make_unique<perf::Profiler>();
    // Same contract as --trace-agg/--trace-out: a cadence without a
    // destination (or vice versa) is a hard error, never a silent no-op.
    perf::SnapshotStreamer::validate_flags(a.has("snapshot-out"),
                                           a.has("snapshot-every"),
                                           a.get_u64("snapshot-every", 0));
    const std::string snap_path = a.get("snapshot-out", "");
    if (!snap_path.empty()) {
      o.snap = std::make_unique<perf::SnapshotStreamer>(
          snap_path, a.get_u64("snapshot-every", 0), &o.tel.metrics,
          o.prof.get());
      require(o.snap->ok(), "cannot open --snapshot-out file " + snap_path);
    }
    return o;
  }

  telemetry::JsonlTraceSink* trace() { return sink.get(); }
  perf::Profiler* profiler() { return prof.get(); }
  SlotHook* slot_hook() { return snap.get(); }

  /// Flushes the trace and writes the metrics document; `rc` passes
  /// through so commands can end with `return obs.finish(rc);`.
  int finish(int rc) {
    if (sink) {
      sink->finish();
      tel.metrics.counter("trace.jsonl_lines").inc(sink->lines_written());
      if (sink->truncated()) {
        // Surface truncation loudly: the analysis auditor refuses to
        // certify a capped trace, so the operator should know right away.
        tel.metrics.counter("trace.dropped_events")
            .inc(sink->dropped_events());
        std::printf("  trace: TRUNCATED, %llu events dropped "
                    "(--trace-max too small for this run)\n",
                    static_cast<unsigned long long>(sink->dropped_events()));
      }
      std::printf("  trace: %llu JSONL lines\n",
                  static_cast<unsigned long long>(sink->lines_written()));
    }
    if (!metrics_path.empty()) {
      require(tel.write_json_file(metrics_path),
              "cannot write --metrics-out file " + metrics_path);
      std::printf("  metrics: %s (%zu series, %zu spans)\n",
                  metrics_path.c_str(), tel.metrics.size(),
                  tel.timeline.spans().size());
    }
    if (snap) {
      snap->finish();
      if (snap->dropped_snapshots() > 0) {
        // Same loud-truncation contract as the trace sink: the footer says
        // "clean":false, the counter survives into --metrics-out, and the
        // operator hears about it on stdout.
        tel.metrics.counter("snap.dropped_snapshots")
            .inc(snap->dropped_snapshots());
        std::printf("  snapshots: STREAM WENT BAD, %llu snapshots dropped\n",
                    static_cast<unsigned long long>(
                        snap->dropped_snapshots()));
      }
      std::printf("  snapshots: %llu\n",
                  static_cast<unsigned long long>(snap->snapshots_written()));
    }
    if (prof) {
      perf::RunInfo run;
      run.tool = "radiomc_sim";
      run.command = perf_command;
      run.jobs = perf_jobs;
      // Engine slots for the slots/sec headline: the drivers publish
      // "<proto>.slots" counters into the profiler; sum them. Read-only
      // use of perf data by the perf layer itself (perf-purity holds).
      for (const auto& [name, value] : prof->counters())
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".slots") == 0)
          run.slots += value;
      require(perf::write_perf_json_file(*prof, run, perf_path),
              "cannot write --perf-out file " + perf_path);
      std::printf("  perf: %s (%zu top-level spans)\n", perf_path.c_str(),
                  prof->root().children.size());
    }
    return rc;
  }
};

struct World {
  Graph g;
  SetupOutcome setup;
};

/// `trace_setup`: attach the physical-event sink to the setup run itself
/// (the `setup` command); other commands trace only their own protocol so
/// slot timestamps in the trace refer to one network clock. `seed` stands
/// in for --seed so each --trials repetition builds its own world.
/// `setup_faults`: only the `setup` command injects faults into the setup
/// run itself (and then tolerates a degraded outcome); every other
/// command needs the tree, so its setup runs fault-free and the plan
/// applies to the protocol under test.
World make_world(const Args& a, std::uint64_t seed, bool need_setup,
                 telemetry::Telemetry* tel = nullptr,
                 TraceSink* setup_trace = nullptr,
                 const FaultPlan* setup_faults = nullptr,
                 perf::Profiler* profiler = nullptr,
                 SlotHook* setup_hook = nullptr) {
  Rng rng(seed);
  World w;
  w.g = gen::from_spec(a.get("topology", ""), rng);
  if (need_setup) {
    SetupTuning tuning;
    tuning.random_id_bits =
        static_cast<std::uint32_t>(a.get_u64("anon", 0));
    tuning.telemetry = tel;
    tuning.trace = setup_trace;
    tuning.profiler = profiler;
    tuning.slot_hook = setup_hook;
    if (setup_faults != nullptr) tuning.faults = *setup_faults;
    // --attempts caps the verify/restart loop; attempt lengths double, so
    // under sustained faults the default budget of 12 can take ~2^12x the
    // base attempt length before reporting degraded.
    const auto max_attempts =
        static_cast<std::uint32_t>(a.get_u64("attempts", 12));
    w.setup = run_setup(w.g, rng.next(), tuning, max_attempts);
    if (setup_faults == nullptr || !setup_faults->any())
      require(w.setup.ok, "setup failed");
  }
  return w;
}

template <typename... A>
std::string strf(const char* f, A... args) {
  char buf[768];
  std::snprintf(buf, sizeof buf, f, args...);
  return std::string(buf);
}

std::string fault_report_line(const FaultPlan& p) {
  if (!p.any()) return "";
  return strf(
      "  faults: crash=%g recover=%g link-down=%g link-up=%g jam=%g "
      "drop=%g epoch=%llu\n",
      p.crash_rate, p.recover_rate, p.link_down_rate, p.link_up_rate,
      p.jam_prob, p.drop_prob,
      static_cast<unsigned long long>(p.epoch_slots));
}

/// One repetition of a command: exit code plus its (buffered) report. The
/// report is printed by the caller so multi-trial stdout stays in trial
/// order regardless of the thread schedule.
struct TrialOut {
  int rc = 0;
  std::string report;
};

using CoreFn = TrialOut (*)(const Args&, std::uint64_t seed,
                            telemetry::Telemetry* tel,
                            telemetry::JsonlTraceSink* trace,
                            perf::Profiler* prof, SlotHook* hook);

/// Dispatch for the trial-parallel commands. Without --trials this is the
/// historical single-run path, byte for byte. With --trials N, trial t's
/// seed derives from root.split(t) (root seeded by --seed), each trial
/// records into a private Telemetry, and the hubs merge in trial order —
/// so metrics, spans and stdout depend only on the seed, never on --jobs.
int run_cmd(const Args& a, CoreFn core) {
  Obs obs = Obs::from_args(a);
  const std::uint64_t trials = a.get_u64("trials", 1);
  if (trials <= 1) {
    const TrialOut out = core(a, a.get_u64("seed", 1), &obs.tel, obs.trace(),
                              obs.profiler(), obs.slot_hook());
    std::fputs(out.report.c_str(), stdout);
    return obs.finish(out.rc);
  }
  require(!obs.sink,
          "--trace-out is incompatible with --trials: one physical-event "
          "trace cannot interleave independent runs (use --metrics-out)");
  require(!obs.snap,
          "--snapshot-out is incompatible with --trials: one snapshot "
          "stream cannot interleave independent slot clocks");
  unsigned jobs = jobs_from_env(1);
  if (a.has("jobs")) {
    jobs = static_cast<unsigned>(a.get_u64("jobs", 1));
    if (jobs == 0) jobs = hardware_jobs();
  }
  obs.perf_jobs = jobs;
  Rng root(a.get_u64("seed", 1));
  std::vector<std::uint64_t> seeds;
  seeds.reserve(trials);
  for (std::uint64_t t = 0; t < trials; ++t)
    seeds.push_back(root.split(t).next());
  struct Slot {
    int rc = 0;
    std::string report;
    std::unique_ptr<telemetry::Telemetry> tel;
  };
  // The profiler is single-threaded, so per-trial cores run unprofiled and
  // the command level records one aggregate span over the whole pool run —
  // the same place per-trial telemetry merges.
  const auto outs = [&] {
    perf::PerfSpan pool_span(obs.profiler(), "trials.run");
    return run_indexed(trials, jobs, [&](std::uint64_t t) {
      Slot s;
      s.tel = std::make_unique<telemetry::Telemetry>();
      const TrialOut out =
          core(a, seeds[t], s.tel.get(), nullptr, nullptr, nullptr);
      s.rc = out.rc;
      s.report = out.report;
      return s;
    });
  }();
  std::uint64_t failures = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    std::printf("[trial %llu] %s", static_cast<unsigned long long>(t),
                outs[t].report.c_str());
    if (outs[t].rc != 0) ++failures;
    obs.tel.merge(*outs[t].tel, static_cast<std::int64_t>(t));
  }
  std::printf("%llu/%llu trials ok (jobs=%u)\n",
              static_cast<unsigned long long>(trials - failures),
              static_cast<unsigned long long>(trials), jobs);
  return obs.finish(failures == 0 ? 0 : 1);
}

int cmd_topo(const Args& a) {
  reject_fault_flags(a, "topo");
  Rng rng(a.get_u64("seed", 1));
  const Graph g = gen::from_spec(a.get("topology", ""), rng);
  if (a.has("dot")) {
    if (a.has("tree")) {
      std::fputs(tree_to_dot(g, oracle_bfs_tree(g, 0)).c_str(), stdout);
    } else {
      std::fputs(to_dot(g).c_str(), stdout);
    }
    return 0;
  }
  if (a.has("edges")) {
    std::fputs(to_edge_list(g).c_str(), stdout);
    return 0;
  }
  std::printf("topology %s\n", a.get("topology", "").c_str());
  std::printf("  n        = %u\n", g.num_nodes());
  std::printf("  edges    = %zu\n", g.num_edges());
  std::printf("  Delta    = %u\n", g.max_degree());
  std::printf("  diameter = %u\n", diameter(g));
  std::printf("  decay_len= %u\n", decay_length(g.max_degree()));
  Obs obs = Obs::from_args(a);
  obs.tel.metrics.gauge("topo.n").set(g.num_nodes());
  obs.tel.metrics.gauge("topo.edges").set(static_cast<double>(g.num_edges()));
  obs.tel.metrics.gauge("topo.max_degree").set(g.max_degree());
  obs.tel.metrics.gauge("topo.diameter").set(diameter(g));
  obs.tel.metrics.gauge("topo.decay_len").set(decay_length(g.max_degree()));
  return obs.finish(0);
}

int cmd_steady(const Args& a) {
  Obs obs = Obs::from_args(a);
  World w = make_world(a, a.get_u64("seed", 1), true, &obs.tel, nullptr,
                       nullptr, obs.profiler());
  Rng rng(a.get_u64("seed", 1) ^ 0xB5);
  const double mu = queueing::mu_decay();
  const double lambda =
      std::stod(a.get("lambda", "0.5")) * mu;  // --lambda = fraction of mu
  const FaultPlan faults = faults_from_args(a);
  const auto out = run_collection_steady_state(
      w.g, w.setup.tree, lambda, a.get_u64("phases", 20000),
      a.get_u64("warmup", 2000), rng.next(),
      ArrivalPlacement::kDeepestLevel, faults, obs.profiler(),
      obs.slot_hook());
  obs.tel.timeline.record(
      "steady_state", "phases", 0, out.phases,  // span unit: phases
      {{"arrivals", static_cast<std::int64_t>(out.arrivals)},
       {"delivered", static_cast<std::int64_t>(out.delivered)}});
  obs.tel.metrics.counter("steady.arrivals").inc(out.arrivals);
  obs.tel.metrics.counter("steady.delivered").inc(out.delivered);
  obs.tel.metrics.gauge("steady.mean_population").set(out.population.mean());
  obs.tel.metrics.gauge("steady.mean_sojourn_phases")
      .set(out.sojourn_phases.mean());
  std::printf("open-system collection at lambda = %.4f (%.0f%% of mu):\n",
              lambda, 100.0 * lambda / mu);
  std::printf("  arrivals/delivered  = %llu / %llu\n",
              static_cast<unsigned long long>(out.arrivals),
              static_cast<unsigned long long>(out.delivered));
  std::printf("  mean population     = %.3f (model-4 bound %.3f)\n",
              out.population.mean(),
              w.setup.tree.depth * queueing::mean_queue_length(lambda, mu));
  std::printf("  mean sojourn phases = %.3f (model-4 bound %.3f)\n",
              out.sojourn_phases.mean(),
              w.setup.tree.depth * queueing::mean_wait(lambda, mu));
  std::fputs(fault_report_line(faults).c_str(), stdout);
  return obs.finish(0);
}

TrialOut setup_core(const Args& a, std::uint64_t seed,
                    telemetry::Telemetry* tel,
                    telemetry::JsonlTraceSink* trace, perf::Profiler* prof,
                    SlotHook* hook) {
  const FaultPlan faults = faults_from_args(a);
  if (trace != nullptr) trace->set_protocol("setup");
  const World w = make_world(a, seed, true, tel, /*setup_trace=*/trace,
                             &faults, prof, /*setup_hook=*/hook);
  TrialOut out;
  if (!w.setup.ok) {
    out.report = strf("setup on %s: %s after %u attempts (%llu slots)\n",
                      a.get("topology", "").c_str(),
                      to_string(w.setup.status), w.setup.attempts,
                      static_cast<unsigned long long>(w.setup.slots));
    out.report += fault_report_line(faults);
    out.rc = 1;
    return out;
  }
  out.report = strf("setup on %s: leader=%u depth=%u attempts=%u\n",
                    a.get("topology", "").c_str(), w.setup.leader,
                    w.setup.tree.depth, w.setup.attempts);
  out.report += strf("  schedule slots = %llu\n",
                     static_cast<unsigned long long>(w.setup.slots));
  out.report += strf("  work slots     = %llu\n",
                     static_cast<unsigned long long>(w.setup.work_slots));
  out.report += strf("  BFS tree valid = %s\n",
                     is_bfs_tree_of(w.g, w.setup.tree) ? "yes" : "NO");
  out.report += fault_report_line(faults);
  return out;
}

int cmd_setup(const Args& a) { return run_cmd(a, setup_core); }

TrialOut flood_core(const Args& a, std::uint64_t seed,
                    telemetry::Telemetry* tel, telemetry::JsonlTraceSink*,
                    perf::Profiler* prof, SlotHook*) {
  Rng rng(seed);
  const Graph g = gen::from_spec(a.get("topology", ""), rng);
  const NodeId source = static_cast<NodeId>(a.get_u64("source", 0));
  const FaultPlan faults = faults_from_args(a);
  const std::uint64_t phases =
      4 * (diameter(g) + 2 * ceil_log2(g.num_nodes()) + 4);
  const auto out = [&] {
    // run_bgi_broadcast predates the config-struct hook plumbing; the
    // span around the call still lands the flood in the perf report.
    perf::PerfSpan span(prof, "flood.run");
    return run_bgi_broadcast(g, source, phases, rng.next(), faults);
  }();
  TrialOut r;
  r.report = strf("BGI flood from %u: informed %u/%u in %llu slots\n", source,
                  out.informed_count, g.num_nodes(),
                  static_cast<unsigned long long>(out.slots));
  r.report += fault_report_line(faults);
  tel->timeline.record(
      "flood", "run", 0, out.slots,
      {{"informed", static_cast<std::int64_t>(out.informed_count)},
       {"n", static_cast<std::int64_t>(g.num_nodes())}});
  tel->metrics.counter("flood.informed").inc(out.informed_count);
  telemetry::Distribution& at = tel->metrics.distribution(
      "flood.informed_at", {}, telemetry::Scale::kLog2);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (out.informed[v])
      at.add(static_cast<std::int64_t>(out.informed_at[v]));
  r.rc = out.informed_count == g.num_nodes() ? 0 : 1;
  return r;
}

int cmd_flood(const Args& a) { return run_cmd(a, flood_core); }

TrialOut collect_core(const Args& a, std::uint64_t seed,
                      telemetry::Telemetry* tel,
                      telemetry::JsonlTraceSink* trace, perf::Profiler* prof,
                      SlotHook* hook) {
  World w = make_world(a, seed, true, tel, nullptr, nullptr, prof);
  Rng rng(seed ^ 0xC0);
  const std::uint64_t k = a.get_u64("k", 16);
  std::vector<Message> init;
  for (std::uint64_t i = 0; i < k; ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = static_cast<NodeId>(rng.next_below(w.g.num_nodes()));
    if (m.origin == w.setup.leader) m.origin = (m.origin + 1) % w.g.num_nodes();
    m.seq = static_cast<std::uint32_t>(i);
    init.push_back(m);
  }
  CollectionConfig cfg = CollectionConfig::for_graph(w.g);
  if (a.has("no-mod3")) cfg.slots.mod3_gating = false;
  cfg.telemetry = tel;
  cfg.trace = trace;
  if (trace != nullptr) {
    // Record run context in the trace's schema header so radiomc_trace
    // can decode slots and attribute events to BFS levels offline.
    trace->set_protocol("collection");
    trace->set_slot_structure(cfg.slots);
    trace->set_levels(w.setup.tree.level);
  }
  cfg.profiler = prof;
  cfg.slot_hook = hook;  // snapshots track the collection network's clock
  cfg.faults = faults_from_args(a);
  cfg.stall_slots = a.get_u64("fault-stall", 0);
  const auto out = run_collection(w.g, w.setup.tree, init, cfg, rng.next());
  TrialOut r;
  r.report =
      strf("collection of %llu messages: %s in %llu slots (%llu phases)\n",
           static_cast<unsigned long long>(k),
           out.completed ? "complete" : "INCOMPLETE",
           static_cast<unsigned long long>(out.slots),
           static_cast<unsigned long long>(out.phases));
  r.report += fault_report_line(cfg.faults);
  if (cfg.faults.any())
    r.report += strf("  status: %s\n", to_string(out.status));
  r.rc = out.completed ? 0 : 1;
  return r;
}

int cmd_collect(const Args& a) { return run_cmd(a, collect_core); }

TrialOut p2p_core(const Args& a, std::uint64_t seed,
                  telemetry::Telemetry* tel,
                  telemetry::JsonlTraceSink* trace, perf::Profiler* prof,
                  SlotHook* hook) {
  World w = make_world(a, seed, true, tel, nullptr, nullptr, prof);
  Rng rng(seed ^ 0xB1);
  const std::uint64_t k = a.get_u64("k", 16);
  PreparationResult prep;
  prep.ok = true;
  prep.labels = w.setup.labels;
  prep.routing = w.setup.routing;
  std::vector<P2pRequest> reqs;
  for (std::uint64_t i = 0; i < k; ++i)
    reqs.push_back({static_cast<NodeId>(rng.next_below(w.g.num_nodes())),
                    static_cast<NodeId>(rng.next_below(w.g.num_nodes())), i});
  P2pConfig pcfg = P2pConfig::for_graph(w.g);
  pcfg.telemetry = tel;
  pcfg.trace = trace;
  if (trace != nullptr) {
    trace->set_protocol("p2p");
    trace->set_slot_structure(pcfg.slots);
    trace->set_levels(w.setup.tree.level);
  }
  pcfg.profiler = prof;
  pcfg.slot_hook = hook;
  pcfg.faults = faults_from_args(a);
  pcfg.stall_slots = a.get_u64("fault-stall", 0);
  const auto out = run_point_to_point(w.g, prep, reqs, pcfg, rng.next());
  TrialOut r;
  r.report = strf("p2p: %llu/%llu delivered in %llu slots\n",
                  static_cast<unsigned long long>(out.delivered),
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(out.slots));
  r.report += fault_report_line(pcfg.faults);
  if (pcfg.faults.any())
    r.report += strf("  status: %s\n", to_string(out.status));
  r.rc = out.completed ? 0 : 1;
  return r;
}

int cmd_p2p(const Args& a) { return run_cmd(a, p2p_core); }

TrialOut broadcast_core(const Args& a, std::uint64_t seed,
                        telemetry::Telemetry* tel,
                        telemetry::JsonlTraceSink* trace,
                        perf::Profiler* prof, SlotHook* hook) {
  World w = make_world(a, seed, true, tel, nullptr, nullptr, prof);
  Rng rng(seed ^ 0xB2);
  const std::uint64_t k = a.get_u64("k", 16);
  BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(w.g);
  cfg.distribution.window =
      static_cast<std::uint32_t>(a.get_u64("window", 0));
  cfg.telemetry = tel;
  cfg.trace = trace;
  cfg.profiler = prof;
  cfg.slot_hook = hook;
  cfg.faults = faults_from_args(a);
  cfg.stall_slots = a.get_u64("fault-stall", 0);
  if (trace != nullptr) {
    trace->set_protocol("broadcast");
    trace->set_levels(w.setup.tree.level);
  }
  std::vector<NodeId> sources;
  for (std::uint64_t i = 0; i < k; ++i)
    sources.push_back(static_cast<NodeId>(rng.next_below(w.g.num_nodes())));
  const auto out =
      run_k_broadcast(w.g, w.setup.tree, sources, cfg, rng.next());
  TrialOut r;
  r.report = strf("k-broadcast of %llu: %s in %llu slots (%llu resends)\n",
                  static_cast<unsigned long long>(k),
                  out.completed ? "complete" : "INCOMPLETE",
                  static_cast<unsigned long long>(out.slots),
                  static_cast<unsigned long long>(out.root_resends));
  r.report += fault_report_line(cfg.faults);
  if (cfg.faults.any())
    r.report += strf("  status: %s\n", to_string(out.status));
  r.rc = out.completed ? 0 : 1;
  return r;
}

int cmd_broadcast(const Args& a) { return run_cmd(a, broadcast_core); }

TrialOut serve_core(const Args& a, std::uint64_t seed,
                    telemetry::Telemetry* tel, telemetry::JsonlTraceSink*,
                    perf::Profiler* prof, SlotHook* hook) {
  namespace svc = radiomc::service;
  const svc::AdmissionPolicy policy =
      svc::admission_policy_from_string(a.get("admission", "off"));
  svc::validate_serve_flags(
      a.has("certify"), a.has("slots") || a.has("phases"),
      a.has("slots") && a.has("phases"), a.has("soak-out"),
      a.has("certify-margin"), a.has("certify-sojourn"), a.has("envelope"),
      policy != svc::AdmissionPolicy::kOff);
  health::Monitor::validate_flags(a.has("health-out"), a.has("alert-rules"),
                                  a.has("health-window"),
                                  a.get_u64("health-window", 64));

  World w = make_world(a, seed, true, tel, nullptr, nullptr, prof);
  Rng rng(seed ^ 0xB6);

  svc::ServeConfig cfg;
  cfg.arrival = svc::ArrivalSpec::parse(a.get("arrival", "bernoulli:0.1"));
  cfg.admission.policy = policy;
  cfg.admission.envelope_multiple = a.get_f64("envelope", 8.0);
  // Horizon: --phases directly, or --slots converted up to whole collection
  // phases (the engine runs warmup + measured phases of slots each).
  const std::uint64_t spp =
      PhaseClock(CollectionConfig::for_graph(w.g).slots).slots_per_phase();
  cfg.phases = a.has("slots")
                   ? (a.get_u64("slots", 0) + spp - 1) / spp
                   : a.get_u64("phases", 20'000);
  cfg.warmup_phases = a.get_u64("warmup", 2'000);
  if (a.has("uniform")) cfg.placement = ArrivalPlacement::kUniform;
  cfg.dedup_guard = !a.has("no-dedup");
  cfg.autosleep = !a.has("no-autosleep");
  cfg.faults = faults_from_args(a);
  cfg.telemetry = tel;
  cfg.profiler = prof;
  cfg.slot_hook = hook;

  // --health-out: attach the online monitor. Its flight recorder rides the
  // same null-guarded TraceSink hook as --trace-out elsewhere, so a run
  // without the flag is byte-identical to one that predates the monitor.
  std::unique_ptr<health::Monitor> mon;
  const std::string health_path = a.get("health-out", "");
  if (!health_path.empty()) {
    health::HealthConfig hcfg;
    hcfg.window_phases = a.get_u64("health-window", 64);
    hcfg.rules = a.get("alert-rules", "default");
    hcfg.offered_rate = cfg.arrival.mean_rate();
    hcfg.depth = w.setup.tree.depth;
    hcfg.warmup_phases = cfg.warmup_phases;
    mon = std::make_unique<health::Monitor>(
        w.g.num_nodes(), w.setup.tree.level, hcfg, health_path);
    require(mon->ok(), "cannot open --health-out file " + health_path);
    cfg.health = mon.get();
  }

  const auto out = svc::run_service(w.g, w.setup.tree, cfg, rng.next());
  if (mon) mon->finish();

  const double mu = queueing::mu_decay();
  const double lambda = cfg.arrival.mean_rate();
  TrialOut r;
  r.report = strf(
      "serve on %s: %s (%.0f%% of mu), %llu+%llu phases (%llu slots)\n",
      a.get("topology", "").c_str(), cfg.arrival.describe().c_str(),
      100.0 * lambda / mu, static_cast<unsigned long long>(cfg.phases),
      static_cast<unsigned long long>(cfg.warmup_phases),
      static_cast<unsigned long long>(out.slots));
  r.report += strf("  arrivals/admitted/delivered = %llu / %llu / %llu\n",
                   static_cast<unsigned long long>(out.arrivals),
                   static_cast<unsigned long long>(out.admitted),
                   static_cast<unsigned long long>(out.delivered));
  r.report += strf(
      "  admission %s: shed=%llu deferred=%llu (envelope %.2f msgs/level)\n",
      svc::to_string(cfg.admission.policy),
      static_cast<unsigned long long>(out.shed),
      static_cast<unsigned long long>(out.deferred), out.level_envelope);
  r.report += strf(
      "  mean population / sojourn   = %.3f msgs / %.3f phases\n",
      out.population.mean(), out.sojourn_phases.mean());
  r.report += strf(
      "  peak level depth = %llu; backlog = %llu net + %llu deferred\n",
      static_cast<unsigned long long>(out.peak_level_depth),
      static_cast<unsigned long long>(out.backlog),
      static_cast<unsigned long long>(out.defer_backlog));
  r.report += fault_report_line(cfg.faults);
  if (cfg.faults.any() || out.status != RunStatus::kOk)
    r.report += strf("  status: %s\n", to_string(out.status));
  if (mon) {
    r.report += strf(
        "  health: %llu windows, %llu trips / %llu clears, %llu active "
        "(%s)\n",
        static_cast<unsigned long long>(mon->windows()),
        static_cast<unsigned long long>(mon->trips()),
        static_cast<unsigned long long>(mon->clears()),
        static_cast<unsigned long long>(mon->active()),
        health_path.c_str());
  }

  if (tel != nullptr) {
    tel->timeline.record(
        "serve", "phases", 0, cfg.warmup_phases + cfg.phases,
        {{"arrivals", static_cast<std::int64_t>(out.arrivals)},
         {"delivered", static_cast<std::int64_t>(out.delivered)},
         {"shed", static_cast<std::int64_t>(out.shed)}});
    tel->metrics.gauge("service.mean_population", {{"protocol", "serve"}})
        .set(out.population.mean());
    tel->metrics.gauge("service.mean_sojourn_phases", {{"protocol", "serve"}})
        .set(out.sojourn_phases.mean());
  }

  // The structured-outcome convention shared by every command: exit 0 = ok,
  // 1 = degraded (shed/deferred traffic, a duplicate, or a queue excursion).
  r.rc = out.status == RunStatus::kOk ? 0 : 1;
  if (!a.has("certify")) return r;
  svc::CertifyConfig ccfg;
  ccfg.throughput_margin = a.get_f64("certify-margin", 0.10);
  ccfg.sojourn_multiple = a.get_f64("certify-sojourn", 3.0);
  svc::HealthSummary hsum;
  if (mon) {
    hsum.windows = mon->windows();
    hsum.trips = mon->trips();
    hsum.clears = mon->clears();
    hsum.active = mon->active();
  }
  const svc::SoakVerdict v = svc::certify_soak(
      out, lambda, mu, w.setup.tree.depth, ccfg, mon ? &hsum : nullptr);
  r.report += strf(
      "  certify: %s (throughput %s %.4f vs floor %.4f; sojourn %s %.2f vs "
      "bound %.2f; exactly-once %s; queues %s)\n",
      v.pass ? "PASS" : "FAIL", v.throughput_ok ? "ok" : "FAIL",
      v.delivered_rate, v.throughput_floor, v.sojourn_ok ? "ok" : "FAIL",
      v.sojourn_mean, v.sojourn_bound, v.exactly_once_ok ? "ok" : "FAIL",
      v.queues_bounded ? "ok" : "FAIL");
  if (v.health_checked)
    r.report += strf("  certify health: %s (%llu alert trips)\n",
                     v.health_ok ? "ok" : "FAIL",
                     static_cast<unsigned long long>(v.health.trips));
  const std::string soak_path = a.get("soak-out", "");
  if (!soak_path.empty()) {
    require(v.write_json_file(soak_path),
            "cannot write --soak-out file " + soak_path);
    r.report += strf("  soak verdict: %s\n", soak_path.c_str());
  }
  r.rc = v.pass ? 0 : 1;
  return r;
}

int cmd_serve(const Args& a) {
  // A soak-scale physical-event trace is unbounded; the live observability
  // channel for serve is --snapshot-out. Reject rather than silently emit
  // a bottomless file (the --trace-agg hard-error convention).
  require(!a.has("trace-out"),
          "--trace-out is not supported by the serve command: a soak-scale "
          "event trace is unbounded; use --snapshot-out/--snapshot-every");
  require(!(a.has("soak-out") && a.get_u64("trials", 1) > 1),
          "--soak-out is incompatible with --trials: one verdict file "
          "cannot hold independent soaks");
  require(!(a.has("health-out") && a.get_u64("trials", 1) > 1),
          "--health-out is incompatible with --trials: one health stream "
          "cannot interleave independent phase clocks");
  return run_cmd(a, serve_core);
}

int cmd_ranking(const Args& a) {
  Obs obs = Obs::from_args(a);
  World w = make_world(a, a.get_u64("seed", 1), true, &obs.tel, nullptr,
                       nullptr, obs.profiler());
  Rng rng(a.get_u64("seed", 1) ^ 0xB3);
  PreparationResult prep;
  prep.ok = true;
  prep.labels = w.setup.labels;
  prep.routing = w.setup.routing;
  std::vector<std::uint64_t> ids(w.g.num_nodes());
  for (auto& id : ids) id = rng.next();
  const FaultPlan faults = faults_from_args(a);
  const auto out = run_ranking(w.g, prep, ids, rng.next(), 200'000'000,
                               &obs.tel, faults, a.get_u64("fault-stall", 0));
  std::printf("ranking of %u nodes: %s in %llu slots\n", w.g.num_nodes(),
              out.completed ? "complete" : "INCOMPLETE",
              static_cast<unsigned long long>(out.total_slots()));
  std::fputs(fault_report_line(faults).c_str(), stdout);
  if (faults.any()) std::printf("  status: %s\n", to_string(out.status));
  if (out.completed)
    std::printf("  node 0: id %#llx -> rank %u\n",
                static_cast<unsigned long long>(ids[0]), out.rank[0]);
  return obs.finish(out.completed ? 0 : 1);
}

int cmd_ethernet(const Args& a) {
  reject_fault_flags(a, "ethernet");
  Obs obs = Obs::from_args(a);
  World w = make_world(a, a.get_u64("seed", 1), true, &obs.tel, nullptr,
                       nullptr, obs.profiler());
  Rng rng(a.get_u64("seed", 1) ^ 0xB4);
  const std::uint32_t frames =
      static_cast<std::uint32_t>(a.get_u64("frames", 1));
  std::vector<std::uint32_t> backlog(w.g.num_nodes(), frames);
  const auto out =
      run_ethernet_backoff(w.g, w.setup.tree, backlog, rng.next());
  std::printf("virtual ethernet: %zu frames drained in %u bus rounds "
              "(%llu slots): %s\n",
              out.delivered_frames.size(), out.rounds_used,
              static_cast<unsigned long long>(out.slots),
              out.completed ? "complete" : "INCOMPLETE");
  // run_ethernet_backoff has no telemetry hooks; record the run here.
  obs.tel.timeline.record(
      "ethernet", "run", 0, out.slots,
      {{"frames", static_cast<std::int64_t>(out.delivered_frames.size())},
       {"rounds", static_cast<std::int64_t>(out.rounds_used)},
       {"completed", out.completed ? 1 : 0}});
  obs.tel.metrics.counter("ethernet.delivered_frames")
      .inc(out.delivered_frames.size());
  obs.tel.metrics.counter("ethernet.rounds_used").inc(out.rounds_used);
  return obs.finish(out.completed ? 0 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  try {
    // The health monitor paces on service phases, which only serve has;
    // everywhere else the flags would be silent no-ops, so hard-error.
    if (a.command != "serve")
      for (const char* f : {"health-out", "alert-rules", "health-window"})
        require(!a.has(f), std::string("--") + f +
                               " requires the serve command: the health "
                               "monitor paces on service phases");
    if (a.command == "topo") return cmd_topo(a);
    if (a.command == "setup") return cmd_setup(a);
    if (a.command == "flood") return cmd_flood(a);
    if (a.command == "collect") return cmd_collect(a);
    if (a.command == "p2p") return cmd_p2p(a);
    if (a.command == "broadcast") return cmd_broadcast(a);
    if (a.command == "ranking") return cmd_ranking(a);
    if (a.command == "ethernet") return cmd_ethernet(a);
    if (a.command == "steady") return cmd_steady(a);
    if (a.command == "serve") return cmd_serve(a);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
