// radiomc_trace — offline analyzer for radiomc.trace/v2 JSONL traces
// (the --trace-out stream of radiomc_sim and the bench harness).
//
//   radiomc_trace report    FILE [--json OUT]
//   radiomc_trace lifecycle FILE [--origin N] [--seq S]
//   radiomc_trace audit     FILE [--strict] [--json OUT]
//
// `report` prints the trace summary, every conformance check and the
// anomaly scan, and can drop the combined radiomc.trace.report/v1 JSON
// document next to it. `lifecycle` reconstructs per-(origin, seq) flight
// records — hop-by-hop timeline, retransmissions, ack latency — either as
// a table or, with --origin/--seq, one flight in full detail. `audit`
// runs the theory-conformance checks (Decay reception >= 1/2, Thm 4.1
// advance rate >= mu, Thm 3.1 ack certainty, exactly-once delivery,
// prefix monotonicity, truncation refusal) and with --strict exits
// non-zero when any bound is violated — which is how the benches and CI
// turn every traced run into a correctness check.
//
// Exit codes: 0 ok; 1 audit violation (only with --strict); 2 unreadable
// or malformed trace / bad usage.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/anomaly.h"
#include "analysis/conformance.h"
#include "analysis/lifecycle.h"
#include "analysis/report.h"
#include "analysis/trace_reader.h"

using namespace radiomc;
using namespace radiomc::analysis;

namespace {

int usage() {
  std::fprintf(stderr,
               "radiomc_trace <subcommand> FILE [options]\n"
               "\n"
               "subcommands:\n"
               "  report    FILE [--json OUT]        full summary: audit + "
               "anomalies + flights\n"
               "  lifecycle FILE [--origin N] [--seq S]\n"
               "                                     per-message flight "
               "records; filters select one flight\n"
               "  audit     FILE [--strict] [--json OUT]\n"
               "                                     conformance checks; "
               "--strict exits 1 on violation\n");
  return 2;
}

struct Cli {
  std::string sub;
  std::string file;
  bool strict = false;
  std::string json_out;
  std::optional<std::uint64_t> origin;
  std::optional<std::uint64_t> seq;
};

bool parse_cli(int argc, char** argv, Cli* cli) {
  if (argc < 3) return false;
  cli->sub = argv[1];
  cli->file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      cli->strict = true;
    } else if (arg == "--json" && i + 1 < argc) {
      cli->json_out = argv[++i];
    } else if (arg == "--origin" && i + 1 < argc) {
      cli->origin = std::stoull(argv[++i]);
    } else if (arg == "--seq" && i + 1 < argc) {
      cli->seq = std::stoull(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int cmd_report(const Cli& cli, const Trace& trace) {
  const auto flights = build_lifecycles(trace);
  const AuditReport audit = audit_trace(trace, flights);
  const AnomalyReport anomalies = scan_anomalies(trace);
  print_report(std::cout, trace, flights, audit, anomalies);
  if (!cli.json_out.empty()) {
    if (!write_report_file(cli.json_out, trace, flights, audit, anomalies)) {
      std::fprintf(stderr, "cannot write report file %s\n",
                   cli.json_out.c_str());
      return 2;
    }
    std::printf("\nreport: %s\n", cli.json_out.c_str());
  }
  return 0;
}

int cmd_lifecycle(const Cli& cli, const Trace& trace) {
  const auto flights = build_lifecycles(trace);
  if (!cli.origin && !cli.seq) {
    std::printf("flights: %zu\n", flights.size());
    print_flight_table(std::cout, flights);
    return 0;
  }
  bool found = false;
  for (const FlightRecord& f : flights) {
    if (cli.origin && f.origin != static_cast<NodeId>(*cli.origin)) continue;
    if (cli.seq && f.seq != static_cast<std::uint32_t>(*cli.seq)) continue;
    print_flight_detail(std::cout, f);
    found = true;
  }
  if (!found) {
    std::fprintf(stderr, "no flight matches the --origin/--seq filter\n");
    return 2;
  }
  return 0;
}

int cmd_audit(const Cli& cli, const Trace& trace) {
  const auto flights = build_lifecycles(trace);
  const AuditReport audit = audit_trace(trace, flights);
  print_audit(std::cout, audit);
  if (!cli.json_out.empty()) {
    const AnomalyReport anomalies = scan_anomalies(trace);
    if (!write_report_file(cli.json_out, trace, flights, audit, anomalies)) {
      std::fprintf(stderr, "cannot write report file %s\n",
                   cli.json_out.c_str());
      return 2;
    }
    std::printf("report: %s\n", cli.json_out.c_str());
  }
  if (!audit.pass && cli.strict) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_cli(argc, argv, &cli)) return usage();
  const TraceReadResult read = read_trace_file(cli.file);
  if (!read.ok) {
    if (read.line_no > 0) {
      std::fprintf(stderr, "%s:%llu: %s\n", cli.file.c_str(),
                   static_cast<unsigned long long>(read.line_no),
                   read.error.c_str());
    } else {
      std::fprintf(stderr, "%s: %s\n", cli.file.c_str(), read.error.c_str());
    }
    return 2;
  }
  try {
    if (cli.sub == "report") return cmd_report(cli, read.trace);
    if (cli.sub == "lifecycle") return cmd_lifecycle(cli, read.trace);
    if (cli.sub == "audit") return cmd_audit(cli, read.trace);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
