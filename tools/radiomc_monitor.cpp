// radiomc_monitor — offline replayer for the live observability streams:
// radiomc.snap/v1 (periodic metrics snapshots, `radiomc_sim
// --snapshot-out`) and radiomc.health/v1 (the online health monitor's
// window facts + SLO alert transitions, `radiomc_sim serve --health-out`).
//
//   radiomc_monitor report FILE [--json OUT]
//   radiomc_monitor check  FILE [--strict] [--json OUT]
//
// `report` prints a human summary of the stream (window counts, every
// alert transition, footer state). `check` verifies the stream's
// structural invariants — a recognized schema line first, a footer last
// (its absence means the producer died mid-run: truncation), the footer's
// self-declared counts matching the body, a clean footer (no dropped
// lines), and, for health streams, zero alert trips — and with --strict
// exits 1 when any fails. This is how CI turns a soak's health stream
// into a gate.
//
// Exit codes: 0 ok; 1 check failure (only with --strict); 2 unreadable or
// malformed stream / bad usage.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "perf/json_value.h"

using radiomc::perf::JsonValue;
using radiomc::perf::parse_json;

namespace {

int usage() {
  std::fprintf(stderr,
               "radiomc_monitor <subcommand> FILE [options]\n"
               "\n"
               "subcommands:\n"
               "  report FILE [--json OUT]           stream summary: "
               "windows, alerts, footer\n"
               "  check  FILE [--strict] [--json OUT]\n"
               "                                     structural checks; "
               "--strict exits 1 on failure\n");
  return 2;
}

struct Cli {
  std::string sub;
  std::string file;
  bool strict = false;
  std::string json_out;
};

bool parse_cli(int argc, char** argv, Cli* cli) {
  if (argc < 3) return false;
  cli->sub = argv[1];
  cli->file = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      cli->strict = true;
    } else if (arg == "--json" && i + 1 < argc) {
      cli->json_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

struct Alert {
  std::string rule;
  bool trip = false;
  std::uint64_t window = 0;
  std::uint64_t phase = 0;
  double value = 0.0;
  double limit = 0.0;
  std::string detail;
};

/// Everything the checks need from one pass over the stream.
struct Stream {
  std::string schema;  ///< "radiomc.snap/v1" or "radiomc.health/v1"
  // Header facts.
  std::uint64_t every_slots = 0;   // snap
  std::uint64_t window_phases = 0; // health
  std::uint64_t warmup_phases = 0; // health
  std::string rules;               // health
  // Body tallies.
  std::uint64_t snaps = 0;
  std::uint64_t windows = 0;
  std::uint64_t last_slot = 0;
  std::uint64_t last_phase = 0;
  std::vector<Alert> alerts;
  std::uint64_t trips = 0;
  std::uint64_t clears = 0;
  // Footer.
  bool has_end = false;
  bool clean = true;
  std::uint64_t dropped = 0;
  std::uint64_t end_snapshots = 0;
  std::uint64_t end_windows = 0;
  std::uint64_t end_trips = 0;
  std::uint64_t end_clears = 0;
  std::uint64_t end_active = 0;
  std::uint64_t end_slot = 0;
  std::uint64_t end_phase = 0;
};

/// Parses the whole stream; returns false (with a message on stderr) on a
/// malformed line, an unrecognized schema, or events after the footer.
bool read_stream(const std::string& path, Stream* s) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::string line;
  std::uint64_t line_no = 0;
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "%s:%llu: %s\n", path.c_str(),
                 static_cast<unsigned long long>(line_no), msg.c_str());
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto parsed = parse_json(line);
    if (!parsed.ok) return fail("bad JSON: " + parsed.error);
    const JsonValue& v = parsed.value;
    const std::string ev = v.at("ev").as_string();
    if (line_no == 1) {
      if (ev != "schema") return fail("first line must be the schema record");
      s->schema = v.at("v").as_string();
      if (s->schema != "radiomc.snap/v1" &&
          s->schema != "radiomc.health/v1")
        return fail("unrecognized stream schema '" + s->schema + "'");
      s->every_slots = static_cast<std::uint64_t>(v.at("every").as_int());
      s->window_phases = static_cast<std::uint64_t>(v.at("window").as_int());
      s->warmup_phases = static_cast<std::uint64_t>(v.at("warmup").as_int());
      s->rules = v.at("rules").as_string();
      continue;
    }
    if (s->has_end) return fail("event after the end footer");
    if (ev == "snap") {
      ++s->snaps;
      s->last_slot = static_cast<std::uint64_t>(v.at("slot").as_int());
    } else if (ev == "window") {
      ++s->windows;
      s->last_phase = static_cast<std::uint64_t>(v.at("phase").as_int());
    } else if (ev == "alert") {
      Alert a;
      a.rule = v.at("rule").as_string();
      a.trip = v.at("state").as_string() == "trip";
      a.window = static_cast<std::uint64_t>(v.at("n").as_int());
      a.phase = static_cast<std::uint64_t>(v.at("phase").as_int());
      a.value = v.at("value").as_double();
      a.limit = v.at("limit").as_double();
      a.detail = v.at("detail").as_string();
      if (a.trip)
        ++s->trips;
      else
        ++s->clears;
      s->alerts.push_back(a);
    } else if (ev == "end") {
      s->has_end = true;
      s->clean = v.has("clean") ? v.at("clean").as_bool(true) : true;
      s->dropped = static_cast<std::uint64_t>(v.at("dropped").as_int());
      s->end_snapshots =
          static_cast<std::uint64_t>(v.at("snapshots").as_int());
      s->end_windows = static_cast<std::uint64_t>(v.at("windows").as_int());
      s->end_trips = static_cast<std::uint64_t>(v.at("trips").as_int());
      s->end_clears = static_cast<std::uint64_t>(v.at("clears").as_int());
      s->end_active = static_cast<std::uint64_t>(v.at("active").as_int());
      s->end_slot = static_cast<std::uint64_t>(v.at("slot").as_int());
      s->end_phase = static_cast<std::uint64_t>(v.at("phase").as_int());
    } else if (ev == "schema") {
      return fail("duplicate schema record");
    } else {
      return fail("unknown event '" + ev + "'");
    }
  }
  if (line_no == 0) {
    std::fprintf(stderr, "%s: empty stream\n", path.c_str());
    return false;
  }
  return true;
}

struct Check {
  std::string name;
  bool ok;
  std::string detail;
};

std::vector<Check> run_checks(const Stream& s) {
  std::vector<Check> checks;
  auto add = [&](const std::string& name, bool ok, std::string detail) {
    checks.push_back({name, ok, std::move(detail)});
  };
  add("footer-present", s.has_end,
      s.has_end ? "end record found"
                : "no end record: the stream is truncated");
  if (s.has_end) {
    add("footer-clean", s.clean,
        s.clean ? "no dropped lines"
                : "producer dropped " + std::to_string(s.dropped) +
                      " line(s) on a bad stream");
    if (s.schema == "radiomc.snap/v1") {
      add("snapshot-count", s.snaps == s.end_snapshots,
          "stream has " + std::to_string(s.snaps) + ", footer declares " +
              std::to_string(s.end_snapshots));
      add("slot-monotone", s.end_slot >= s.last_slot,
          "footer slot " + std::to_string(s.end_slot) + ", last snapshot " +
              std::to_string(s.last_slot));
    } else {
      add("window-count", s.windows == s.end_windows,
          "stream has " + std::to_string(s.windows) +
              ", footer declares " + std::to_string(s.end_windows));
      add("alert-count",
          s.trips == s.end_trips && s.clears == s.end_clears,
          "stream has " + std::to_string(s.trips) + " trips / " +
              std::to_string(s.clears) + " clears, footer declares " +
              std::to_string(s.end_trips) + " / " +
              std::to_string(s.end_clears));
      add("active-consistent", s.end_active == s.end_trips - s.end_clears,
          "active " + std::to_string(s.end_active) + " vs trips-clears " +
              std::to_string(s.end_trips - s.end_clears));
    }
  }
  if (s.schema == "radiomc.health/v1")
    add("no-alerts", s.trips == 0,
        s.trips == 0 ? "zero rule trips"
                     : std::to_string(s.trips) + " rule trip(s), " +
                           std::to_string(s.has_end ? s.end_active : 0) +
                           " still active at end");
  return checks;
}

void print_summary(const Stream& s) {
  std::printf("stream: %s\n", s.schema.c_str());
  if (s.schema == "radiomc.snap/v1") {
    std::printf("snapshots: %llu (every %llu slots), last slot %llu\n",
                static_cast<unsigned long long>(s.snaps),
                static_cast<unsigned long long>(s.every_slots),
                static_cast<unsigned long long>(s.last_slot));
  } else {
    std::printf(
        "windows: %llu (every %llu phases, warmup %llu), last phase %llu\n",
        static_cast<unsigned long long>(s.windows),
        static_cast<unsigned long long>(s.window_phases),
        static_cast<unsigned long long>(s.warmup_phases),
        static_cast<unsigned long long>(s.last_phase));
    std::printf("rules: %s\n", s.rules.c_str());
    std::printf("alerts: %llu trips, %llu clears\n",
                static_cast<unsigned long long>(s.trips),
                static_cast<unsigned long long>(s.clears));
    for (const Alert& a : s.alerts)
      std::printf("  %-5s %-10s n=%llu phase=%llu value=%g limit=%g%s%s\n",
                  a.trip ? "trip" : "clear", a.rule.c_str(),
                  static_cast<unsigned long long>(a.window),
                  static_cast<unsigned long long>(a.phase), a.value,
                  a.limit, a.detail.empty() ? "" : "  ",
                  a.detail.c_str());
  }
  if (!s.has_end) {
    std::printf("footer: MISSING (truncated stream)\n");
  } else if (!s.clean) {
    std::printf("footer: dirty (%llu dropped line(s))\n",
                static_cast<unsigned long long>(s.dropped));
  } else {
    std::printf("footer: clean\n");
  }
}

bool write_json_report(const std::string& path, const Stream& s,
                       const std::vector<Check>& checks, bool pass) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  // Hand-assembled like the stream itself: tiny, flat, deterministic.
  out << "{\"schema\":\"radiomc.monitor.report/v1\",\"stream\":\""
      << s.schema << "\",\"pass\":" << (pass ? "true" : "false")
      << ",\"truncated\":" << (s.has_end ? "false" : "true")
      << ",\"clean\":" << (s.clean ? "true" : "false")
      << ",\"trips\":" << s.trips << ",\"clears\":" << s.clears
      << ",\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"name\":\"" << checks[i].name
        << "\",\"ok\":" << (checks[i].ok ? "true" : "false") << "}";
  }
  out << "]}\n";
  return out.good();
}

int cmd_report(const Cli& cli, const Stream& s) {
  print_summary(s);
  if (!cli.json_out.empty()) {
    const auto checks = run_checks(s);
    bool pass = true;
    for (const Check& c : checks) pass = pass && c.ok;
    if (!write_json_report(cli.json_out, s, checks, pass)) {
      std::fprintf(stderr, "cannot write report file %s\n",
                   cli.json_out.c_str());
      return 2;
    }
    std::printf("report: %s\n", cli.json_out.c_str());
  }
  return 0;
}

int cmd_check(const Cli& cli, const Stream& s) {
  const auto checks = run_checks(s);
  bool pass = true;
  for (const Check& c : checks) {
    std::printf("%-6s %-18s %s\n", c.ok ? "ok" : "FAIL", c.name.c_str(),
                c.detail.c_str());
    pass = pass && c.ok;
  }
  std::printf("%s\n", pass ? "CHECK PASS" : "CHECK FAIL");
  if (!cli.json_out.empty() &&
      !write_json_report(cli.json_out, s, checks, pass)) {
    std::fprintf(stderr, "cannot write report file %s\n",
                 cli.json_out.c_str());
    return 2;
  }
  if (!pass && cli.strict) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_cli(argc, argv, &cli)) return usage();
  Stream s;
  if (!read_stream(cli.file, &s)) return 2;
  if (cli.sub == "report") return cmd_report(cli, s);
  if (cli.sub == "check") return cmd_check(cli, s);
  return usage();
}
