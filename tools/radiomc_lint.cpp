// radiomc_lint — determinism & model-purity static analysis for this repo.
//
// The repo's headline guarantees (byte-identical trials across --jobs,
// fault schedules that are a pure function of (seed, plan, graph), strict
// trace audits) are invariants of the *source*, not just of today's test
// runs. This tool makes them machine-checked on every commit: each rule in
// src/lint/rules.cpp bans one way of silently breaking them, the semantic
// analyses in src/lint/semantic.cpp + layers.cpp check the cross-TU
// invariants (split-tag independence, the layer DAG, shard safety), and
// every finding is individually waivable in-line with a reason.
//
// Usage:
//   radiomc_lint [options] <path>...       lint files / directory trees
//   radiomc_lint --list-rules              print the rule catalog
//
// Options:
//   --json FILE       write the radiomc.lint/v2 JSON report to FILE
//   --facts-out FILE  write the radiomc.facts/v1 cross-TU facts DB to FILE
//   --layers FILE     layer manifest for the layer-dag analysis
//                     (default: ./.lint-layers when it exists)
//   --no-layers       skip the layer-dag analysis even if ./.lint-layers exists
//   --rule ID[,ID..]  run only these rules (repeatable; unknown ids error
//                     with a nearest-match suggestion)
//   --no-waived       hide waived findings from the text output
//
// Exit status: 0 = clean (waived findings allowed), 1 = unwaived findings,
// 2 = usage or I/O error.
//
// See docs/STATIC_ANALYSIS.md for the rule catalog and the waiver syntax.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/facts.h"
#include "lint/runner.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: radiomc_lint [--json FILE] [--facts-out FILE] "
        "[--layers FILE | --no-layers]\n"
        "                    [--rule ID[,ID...]]... [--no-waived] <path>...\n"
        "       radiomc_lint --list-rules\n";
  return code;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The catalog rule id closest to `id` (for "did you mean" suggestions).
std::string nearest_rule(const std::string& id) {
  std::string best;
  std::size_t best_d = static_cast<std::size_t>(-1);
  for (const radiomc::lint::RuleInfo& r : radiomc::lint::rule_catalog()) {
    const std::size_t d = edit_distance(id, std::string(r.id));
    if (d < best_d) {
      best_d = d;
      best = std::string(r.id);
    }
  }
  return best;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = std::move(ss).str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiomc::lint;

  std::vector<std::string> roots;
  std::string json_path;
  std::string facts_path;
  std::string layers_path;
  bool no_layers = false;
  LintOptions opt;
  bool show_waived = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog())
        std::cout << r.id << "  [" << r.family << "]  " << r.summary << '\n';
      return 0;
    }
    if (arg == "--json") {
      if (++i >= argc) return usage(std::cerr, 2);
      json_path = argv[i];
    } else if (arg == "--facts-out") {
      if (++i >= argc) return usage(std::cerr, 2);
      facts_path = argv[i];
    } else if (arg == "--layers") {
      if (++i >= argc) return usage(std::cerr, 2);
      layers_path = argv[i];
    } else if (arg == "--no-layers") {
      no_layers = true;
    } else if (arg == "--rule") {
      if (++i >= argc) return usage(std::cerr, 2);
      std::istringstream list(argv[i]);
      std::string id;
      while (std::getline(list, id, ',')) {
        if (id.empty()) continue;
        const bool known = std::any_of(
            rule_catalog().begin(), rule_catalog().end(),
            [&](const RuleInfo& r) { return r.id == id; });
        if (!known) {
          std::cerr << "radiomc_lint: unknown rule '" << id
                    << "' (did you mean '" << nearest_rule(id)
                    << "'? see --list-rules)\n";
          return 2;
        }
        opt.only_rules.push_back(id);
      }
    } else if (arg == "--no-waived") {
      show_waived = false;
    } else if (arg.starts_with("--")) {
      std::cerr << "radiomc_lint: unknown option " << arg << '\n';
      return usage(std::cerr, 2);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(std::cerr, 2);

  // Layer manifest: explicit --layers, else ./.lint-layers if present.
  if (!no_layers) {
    if (!layers_path.empty()) {
      if (!read_file(layers_path, &opt.layers_manifest)) {
        std::cerr << "radiomc_lint: cannot read layer manifest " << layers_path
                  << '\n';
        return 2;
      }
      opt.layers_manifest_name = layers_path;
    } else if (read_file(".lint-layers", &opt.layers_manifest)) {
      opt.layers_manifest_name = ".lint-layers";
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SourceFile> files = load_tree(roots);
  if (files.empty()) {
    std::cerr << "radiomc_lint: no lintable files under given paths\n";
    return 2;
  }

  const AnalysisResult result = run_analyses(files, opt);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  print_findings(std::cout, result.findings, show_waived);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "radiomc_lint: cannot write " << json_path << '\n';
      return 2;
    }
    write_json_report(out, result, wall_ms);
  }

  if (!facts_path.empty()) {
    std::ofstream out(facts_path);
    if (!out) {
      std::cerr << "radiomc_lint: cannot write " << facts_path << '\n';
      return 2;
    }
    write_facts_json(out, result.facts);
  }

  const std::size_t unwaived = count_unwaived(result.findings);
  std::cout << "radiomc_lint: " << files.size() << " files, "
            << result.findings.size() << " findings (" << unwaived
            << " unwaived, " << result.findings.size() - unwaived
            << " waived)\n";
  return unwaived == 0 ? 0 : 1;
}
