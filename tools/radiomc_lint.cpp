// radiomc_lint — determinism & model-purity static analysis for this repo.
//
// The repo's headline guarantees (byte-identical trials across --jobs,
// fault schedules that are a pure function of (seed, plan, graph), strict
// trace audits) are invariants of the *source*, not just of today's test
// runs. This tool makes them machine-checked on every commit: each rule in
// src/lint/rules.cpp bans one way of silently breaking them, and every
// finding is individually waivable in-line with a reason.
//
// Usage:
//   radiomc_lint [options] <path>...       lint files / directory trees
//   radiomc_lint --list-rules              print the rule catalog
//
// Options:
//   --json FILE    also write the radiomc.lint/v1 JSON report to FILE
//   --rule ID      run only rule ID (repeatable)
//   --no-waived    hide waived findings from the text output
//
// Exit status: 0 = clean (waived findings allowed), 1 = unwaived findings,
// 2 = usage or I/O error.
//
// See docs/STATIC_ANALYSIS.md for the rule catalog and the waiver syntax.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/runner.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: radiomc_lint [--json FILE] [--rule ID]... [--no-waived] "
        "<path>...\n"
        "       radiomc_lint --list-rules\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiomc::lint;

  std::vector<std::string> roots;
  std::string json_path;
  LintOptions opt;
  bool show_waived = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalog())
        std::cout << r.id << "  [" << r.family << "]  " << r.summary << '\n';
      return 0;
    }
    if (arg == "--json") {
      if (++i >= argc) return usage(std::cerr, 2);
      json_path = argv[i];
    } else if (arg == "--rule") {
      if (++i >= argc) return usage(std::cerr, 2);
      opt.only_rules.emplace_back(argv[i]);
    } else if (arg == "--no-waived") {
      show_waived = false;
    } else if (arg.starts_with("--")) {
      std::cerr << "radiomc_lint: unknown option " << arg << '\n';
      return usage(std::cerr, 2);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(std::cerr, 2);

  const std::vector<SourceFile> files = load_tree(roots);
  if (files.empty()) {
    std::cerr << "radiomc_lint: no lintable files under given paths\n";
    return 2;
  }

  const std::vector<Finding> findings = run_rules(files, opt);
  print_findings(std::cout, findings, show_waived);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "radiomc_lint: cannot write " << json_path << '\n';
      return 2;
    }
    write_json_report(out, findings, files.size());
  }

  const std::size_t unwaived = count_unwaived(findings);
  std::cout << "radiomc_lint: " << files.size() << " files, "
            << findings.size() << " findings (" << unwaived << " unwaived, "
            << findings.size() - unwaived << " waived)\n";
  return unwaived == 0 ? 0 : 1;
}
