#pragma once

// The online health monitor: composes a FlightRecorder (engine-side facts
// via the TraceSink hook) with a RuleEngine (SLO alert rules over rolling
// windows) and streams `radiomc.health/v1` JSONL.
//
// Stream layout:
//   {"ev":"schema","v":"radiomc.health/v1","window":W,"warmup":U,
//    "lambda":l,"mu":m,"depth":D,"rules":"..."}             first line
//   {"ev":"window","n":i,"phase":p,"arrivals":a,"delivered":d,
//    "in_system":q,"mean_sojourn":s,"tx":t,"collisions":c,"jams":j,
//    "polls":k,"wakes":w}                                   per window
//   {"ev":"alert","rule":"...","state":"trip"|"clear","n":i,"phase":p,
//    "value":v,"limit":L[,"detail":"..."]}                  transitions
//   {"ev":"end","phase":p,"windows":n,"trips":t,"clears":c,"active":a,
//    "clean":true}                                          footer
//
// Every line is a pure function of (seed, config): window facts come from
// the deterministic event stream and the service's deterministic phase
// sample (engine polls and wake events are active-set scheduling facts,
// reproducible by the Waker contract), and no wall-clock value is ever
// written — so the stream is byte-identical across `--jobs`, golden-
// testable, and diffable between runs. The footer mirrors the snap/v1
// end record: its absence means truncation, `"clean":false` means lines
// were dropped on a bad stream mid-run.
//
// Rules only evaluate for windows that start at or after `warmup_phases`:
// the pipeline-fill transient would otherwise trip the throughput floor
// on every cold start (certification excludes warmup for the same
// reason). Window facts are still recorded from phase zero.

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "health/recorder.h"
#include "health/rules.h"

namespace radiomc::health {

inline constexpr const char* kHealthSchemaVersion = "radiomc.health/v1";

struct HealthConfig {
  /// Rolling-window length in collection phases.
  std::uint64_t window_phases = 64;
  /// Alert-rule spec (see rules.h); parsed at construction, throws
  /// std::invalid_argument on malformed input.
  std::string rules = "default";
  /// Offered load lambda in messages/phase (the throughput/qgrowth
  /// reference). <= 0 disables the rules that need it.
  double offered_rate = 0.0;
  /// Per-level service rate; <= 0 means Thm 4.1's mu = e^-1(1-e^-1).
  double mu = 0.0;
  /// BFS depth D for the Thm 4.15 sojourn envelope D(1-l)/(mu-l).
  std::uint32_t depth = 0;
  /// Rules idle until the first window that starts at/after this phase.
  std::uint64_t warmup_phases = 0;
};

/// One completed service phase, sampled by run_service. All counters are
/// cumulative since phase zero; the monitor forms window deltas itself.
struct PhaseSample {
  std::uint64_t phase = 0;      ///< completed phase index, 0-based
  std::uint64_t arrivals = 0;
  std::uint64_t delivered = 0;
  double sojourn_sum = 0.0;     ///< summed sojourns of all deliveries
  std::uint64_t in_system = 0;  ///< end-of-phase in-network population
  std::uint64_t engine_polls = 0;
  std::uint64_t wake_events = 0;
};

class Monitor {
 public:
  /// Streams to `out` (borrowed; must outlive the monitor). `levels[v]` is
  /// node v's BFS level, for the per-level collision tally.
  Monitor(NodeId n, std::vector<std::uint32_t> levels,
          const HealthConfig& cfg, std::ostream& out);
  /// Opens `path` for writing and owns the stream. Check `ok()`.
  Monitor(NodeId n, std::vector<std::uint32_t> levels,
          const HealthConfig& cfg, const std::string& path);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  bool ok() const noexcept { return out_ != nullptr && out_->good(); }

  /// The engine hook to install via RadioNetwork::set_trace.
  TraceSink* sink() noexcept { return &recorder_; }
  const FlightRecorder& recorder() const noexcept { return recorder_; }

  /// Feed every completed phase in order; closes a window (facts line,
  /// rule evaluation, transitions) every `window_phases` phases.
  void on_phase(const PhaseSample& s);

  /// Writes the footer; idempotent (also run by the destructor).
  void finish();

  std::uint64_t windows() const noexcept { return windows_; }
  std::uint64_t trips() const noexcept { return engine_.trips(); }
  std::uint64_t clears() const noexcept { return engine_.clears(); }
  std::uint64_t active() const noexcept { return engine_.active(); }

  /// The serve CLI flag-pairing contract, shared with radiomc_sim so the
  /// error-path tests and the tool reject identically (same convention as
  /// SnapshotStreamer::validate_flags). Throws std::invalid_argument.
  static void validate_flags(bool has_out, bool has_rules, bool has_window,
                             std::uint64_t window_phases);

 private:
  void init();
  void write_line(const std::string& line);
  void close_window(const PhaseSample& s);

  FlightRecorder recorder_;
  RuleEngine engine_;
  HealthConfig cfg_;
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  PhaseSample window_base_;  ///< cumulative sample at the last window close
  PhaseSample eval_base_;    ///< cumulative sample when rules went live
  std::uint64_t eval_start_phase_ = 0;
  bool have_eval_base_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t last_phase_ = 0;
  std::uint64_t dropped_ = 0;
  bool saw_phase_ = false;
  bool finished_ = false;
};

}  // namespace radiomc::health
