#pragma once

// Rolling-window flight recorder: the health subsystem's raw-fact ledger.
//
// A FlightRecorder is a TraceSink (the same null-cost, null-guarded hook
// the engine already exposes for tracing), so installing one costs nothing
// on the hot path beyond the virtual calls the engine would make for any
// sink, and installing none keeps the engine byte-identical to an
// uninstrumented run. It accumulates per-node behavioral counters
// (transmissions, receptions, genuine collisions vs jam-killed receptions,
// acks owed vs served) plus two per-neighbor ledgers — who delivered to
// whom this window, and who has ever delivered to whom — and per-BFS-level
// collision tallies. The rule engine (health/rules.h) reads a window's
// deltas, then `roll_window()` resets them; cumulative ledgers persist.
//
// The per-neighbor ledger is deliberately receiver-major (key is
// (receiver << 32) | sender) so a single ordered-map range scan yields one
// receiver's senders in deterministic order — this is the substrate the
// planned trust-score/blocklist layer will read.
//
// Everything here is a pure function of the observed event stream, which
// is itself a pure function of (seed, config) — no clocks, no raw
// randomness, ordered containers only.

#include <cstdint>
#include <map>
#include <vector>

#include "radio/message.h"
#include "radio/trace.h"

namespace radiomc::health {

/// Per-node counters for the current window.
struct NodeCounters {
  std::uint64_t tx = 0;           ///< slots this node transmitted
  std::uint64_t rx = 0;           ///< clean receptions
  std::uint64_t collisions = 0;   ///< >= 2 transmitting neighbors heard
  std::uint64_t jams = 0;         ///< jam-killed clean receptions (txn == 1)
  std::uint64_t acks_owed = 0;    ///< kData receptions (each owes an ack)
  std::uint64_t acks_served = 0;  ///< kAck transmissions
};

class FlightRecorder final : public TraceSink {
 public:
  /// `levels[v]` is node v's BFS level (used to bucket collisions per
  /// level); an empty vector disables the per-level tally.
  FlightRecorder(NodeId n, std::vector<std::uint32_t> levels);

  void on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                   const Message& m) override;
  void on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                  const Message& m) override;
  void on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                    std::uint32_t tx_neighbors) override;

  /// Current-window per-node counters.
  const std::vector<NodeCounters>& window_nodes() const noexcept {
    return win_;
  }
  /// Current-window receptions keyed (receiver << 32) | sender.
  const std::map<std::uint64_t, std::uint64_t>& window_pairs()
      const noexcept {
    return pair_win_;
  }
  /// Cumulative reception count per (receiver, sender) pair, same key.
  /// The counts give each pair's historical traffic share, which the
  /// neighbor rule uses to tell "statistically quiet" from "gone silent".
  const std::map<std::uint64_t, std::uint64_t>& pairs_ever()
      const noexcept {
    return pair_ever_;
  }
  /// Current-window genuine collisions per BFS level (empty if levels
  /// were not provided).
  const std::vector<std::uint64_t>& window_level_collisions()
      const noexcept {
    return level_coll_win_;
  }

  std::uint64_t window_collisions() const noexcept { return coll_win_; }
  std::uint64_t window_jams() const noexcept { return jam_win_; }
  std::uint64_t window_deliveries() const noexcept { return rx_win_; }
  std::uint64_t window_transmissions() const noexcept { return tx_win_; }

  /// Cumulative totals (never reset).
  std::uint64_t total_collisions() const noexcept { return coll_total_; }
  std::uint64_t total_jams() const noexcept { return jam_total_; }

  static std::uint64_t pair_key(NodeId receiver, NodeId sender) noexcept {
    return (static_cast<std::uint64_t>(receiver) << 32) | sender;
  }

  /// Resets every window counter; cumulative ledgers persist.
  void roll_window();

 private:
  std::vector<std::uint32_t> levels_;
  std::vector<NodeCounters> win_;
  std::map<std::uint64_t, std::uint64_t> pair_win_;
  std::map<std::uint64_t, std::uint64_t> pair_ever_;
  std::vector<std::uint64_t> level_coll_win_;
  std::uint64_t tx_win_ = 0;
  std::uint64_t rx_win_ = 0;
  std::uint64_t coll_win_ = 0;
  std::uint64_t jam_win_ = 0;
  std::uint64_t coll_total_ = 0;
  std::uint64_t jam_total_ = 0;
};

}  // namespace radiomc::health
