#include "health/rules.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>

namespace radiomc::health {

namespace {

[[noreturn]] void bad(const std::string& msg) {
  throw std::invalid_argument("alert rules: " + msg);
}

double parse_num(std::string_view tok, std::string_view clause) {
  const std::string s(tok);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || !std::isfinite(v))
    bad("bad number '" + s + "' in '" + std::string(clause) + "'");
  return v;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

Rule default_rule(RuleKind k) {
  Rule r;
  r.kind = k;
  switch (k) {
    case RuleKind::kThroughput:
      r.trip = 0.90;
      r.clear = 0.95;
      break;
    case RuleKind::kSojourn:
      r.trip = 3.0;
      r.clear = 2.5;
      break;
    case RuleKind::kQueueGrowth:
      r.trip = 0.5;
      r.clear = 0.25;
      break;
    case RuleKind::kStall:
      r.min_count = 2;
      break;
    case RuleKind::kHotspot:
      r.trip = 0.5;
      r.clear = 0.25;
      r.min_count = 16;
      break;
    case RuleKind::kNeighbor:
      r.trip = 0.9;
      r.clear = 0.75;
      r.min_count = 8;
      break;
  }
  return r;
}

constexpr RuleKind kAllKinds[] = {
    RuleKind::kThroughput, RuleKind::kSojourn, RuleKind::kQueueGrowth,
    RuleKind::kStall,      RuleKind::kHotspot, RuleKind::kNeighbor,
};

void validate(const Rule& r, std::string_view clause) {
  const std::string c(clause);
  switch (r.kind) {
    case RuleKind::kThroughput:
      if (!(r.trip > 0.0 && r.trip <= r.clear))
        bad("throughput needs 0 < trip <= clear in '" + c + "'");
      break;
    case RuleKind::kSojourn:
      if (!(r.clear > 0.0 && r.clear <= r.trip))
        bad("sojourn needs trip >= clear > 0 in '" + c + "'");
      break;
    case RuleKind::kQueueGrowth:
      if (!(r.trip > 0.0 && r.clear >= 0.0 && r.clear <= r.trip))
        bad("qgrowth needs trip >= clear >= 0 in '" + c + "'");
      break;
    case RuleKind::kStall:
      if (r.min_count < 1) bad("stall needs windows >= 1 in '" + c + "'");
      break;
    case RuleKind::kHotspot:
      if (!(r.trip > 0.0 && r.trip <= 1.0 && r.clear >= 0.0 &&
            r.clear <= r.trip) ||
          r.min_count < 1)
        bad("hotspot needs 0 < clear <= share <= 1 and min >= 1 in '" + c +
            "'");
      break;
    case RuleKind::kNeighbor:
      if (!(r.trip > 0.0 && r.trip <= 1.0 && r.clear >= 0.0 &&
            r.clear <= r.trip) ||
          r.min_count < 1)
        bad("neighbor needs 0 < clear <= dom <= 1 and min >= 1 in '" + c +
            "'");
      break;
  }
}

std::string fmt(double v) {
  // Shortest clean decimal: the canonical spec must round-trip through
  // parse() and stay stable for golden tests.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string_view rule_name(RuleKind k) noexcept {
  switch (k) {
    case RuleKind::kThroughput: return "throughput";
    case RuleKind::kSojourn: return "sojourn";
    case RuleKind::kQueueGrowth: return "qgrowth";
    case RuleKind::kStall: return "stall";
    case RuleKind::kHotspot: return "hotspot";
    case RuleKind::kNeighbor: return "neighbor";
  }
  return "?";
}

std::string RuleSet::canonical() const {
  std::string out;
  for (const Rule& r : rules) {
    if (!out.empty()) out += ',';
    out += rule_name(r.kind);
    switch (r.kind) {
      case RuleKind::kThroughput:
      case RuleKind::kSojourn:
      case RuleKind::kQueueGrowth:
        out += ':' + fmt(r.trip) + ':' + fmt(r.clear);
        break;
      case RuleKind::kStall:
        out += ':' + std::to_string(r.min_count);
        break;
      case RuleKind::kHotspot:
      case RuleKind::kNeighbor:
        out += ':' + fmt(r.trip) + ':' + fmt(r.clear) + ':' +
               std::to_string(r.min_count);
        break;
    }
  }
  return out;
}

RuleSet RuleSet::parse(std::string_view spec) {
  if (spec.empty()) bad("empty spec");
  RuleSet set;
  const std::vector<std::string_view> clauses = split(spec, ',');
  bool saw_default = false;
  for (std::string_view clause : clauses) {
    if (clause.empty()) bad("empty clause in '" + std::string(spec) + "'");
    const std::vector<std::string_view> toks = split(clause, ':');
    const std::string_view name = toks[0];
    if (name == "default") {
      if (toks.size() > 1)
        bad("'default' takes no parameters in '" + std::string(clause) +
            "'");
      saw_default = true;
      for (RuleKind k : kAllKinds) set.rules.push_back(default_rule(k));
      continue;
    }
    Rule r;
    std::size_t max_params = 0;
    if (name == "throughput") {
      r = default_rule(RuleKind::kThroughput);
      max_params = 2;
    } else if (name == "sojourn") {
      r = default_rule(RuleKind::kSojourn);
      max_params = 2;
    } else if (name == "qgrowth") {
      r = default_rule(RuleKind::kQueueGrowth);
      max_params = 2;
    } else if (name == "stall") {
      r = default_rule(RuleKind::kStall);
      max_params = 1;
    } else if (name == "hotspot") {
      r = default_rule(RuleKind::kHotspot);
      max_params = 3;
    } else if (name == "neighbor") {
      r = default_rule(RuleKind::kNeighbor);
      max_params = 3;
    } else {
      bad("unknown rule '" + std::string(name) + "'");
    }
    if (toks.size() - 1 > max_params)
      bad("too many parameters in '" + std::string(clause) + "'");
    if (r.kind == RuleKind::kStall) {
      if (toks.size() > 1) {
        const double v = parse_num(toks[1], clause);
        if (v < 1.0 || v != std::floor(v))
          bad("stall windows must be a positive integer in '" +
              std::string(clause) + "'");
        r.min_count = static_cast<std::uint64_t>(v);
      }
    } else {
      if (toks.size() > 1) r.trip = parse_num(toks[1], clause);
      if (toks.size() > 2) r.clear = parse_num(toks[2], clause);
      if (toks.size() > 3) {
        const double v = parse_num(toks[3], clause);
        if (v < 1.0 || v != std::floor(v))
          bad("min count must be a positive integer in '" +
              std::string(clause) + "'");
        r.min_count = static_cast<std::uint64_t>(v);
      }
    }
    validate(r, clause);
    set.rules.push_back(r);
  }
  if (saw_default && set.rules.size() != std::size(kAllKinds))
    bad("'default' cannot be combined with other rules");
  for (std::size_t i = 0; i < set.rules.size(); ++i)
    for (std::size_t j = i + 1; j < set.rules.size(); ++j)
      if (set.rules[i].kind == set.rules[j].kind)
        bad("duplicate rule '" +
            std::string(rule_name(set.rules[i].kind)) + "'");
  return set;
}

RuleEngine::RuleEngine(RuleSet rules)
    : rules_(std::move(rules)), state_(rules_.rules.size()) {}

std::uint64_t RuleEngine::active() const noexcept {
  std::uint64_t n = 0;
  for (const State& s : state_)
    if (s.tripped) ++n;
  return n;
}

std::vector<Transition> RuleEngine::evaluate(const WindowStats& w,
                                             const FlightRecorder& rec) {
  std::vector<Transition> out;
  auto emit = [&](std::size_t i, bool trip, double value, double threshold,
                  std::string detail) {
    state_[i].tripped = trip;
    if (trip)
      ++trips_;
    else
      ++clears_;
    out.push_back({rules_.rules[i].kind, trip, value, threshold,
                   std::move(detail)});
  };

  for (std::size_t i = 0; i < rules_.rules.size(); ++i) {
    const Rule& r = rules_.rules[i];
    State& st = state_[i];
    switch (r.kind) {
      case RuleKind::kThroughput: {
        if (w.offered_rate <= 0.0 || w.eval_phases == 0) break;
        // Cumulative rate over the whole post-warmup horizon, judged with
        // a 3-sigma Poisson slack (sd of a rate estimate over p phases is
        // sqrt(lambda/p)). Early windows carry a wide slack and cannot
        // false-trip; a sustained deficit — overload pins the rate at mu —
        // grows linearly while the slack decays, so it trips and stays.
        const double phases = static_cast<double>(w.eval_phases);
        const double rate =
            static_cast<double>(w.eval_delivered) / phases;
        const double slack = 3.0 * std::sqrt(w.offered_rate / phases);
        if (!st.tripped && rate < r.trip * w.offered_rate - slack)
          emit(i, true, rate, r.trip * w.offered_rate - slack, "");
        else if (st.tripped && rate >= r.clear * w.offered_rate - slack)
          emit(i, false, rate, r.clear * w.offered_rate - slack, "");
        break;
      }
      case RuleKind::kSojourn: {
        // No finite Thm 4.15 envelope above saturation, and no window mean
        // without a delivery: the rule idles, holding its latched state.
        if (!std::isfinite(w.envelope_phases) || w.delivered == 0) break;
        const double v = w.mean_sojourn;
        if (!st.tripped && v > r.trip * w.envelope_phases)
          emit(i, true, v, r.trip * w.envelope_phases, "");
        else if (st.tripped && v <= r.clear * w.envelope_phases)
          emit(i, false, v, r.clear * w.envelope_phases, "");
        break;
      }
      case RuleKind::kQueueGrowth: {
        if (w.offered_rate <= 0.0 || w.phases == 0) break;
        const double slope = (static_cast<double>(w.in_system_end) -
                              static_cast<double>(w.in_system_begin)) /
                             static_cast<double>(w.phases);
        if (!st.tripped && slope >= r.trip * w.offered_rate)
          emit(i, true, slope, r.trip * w.offered_rate, "");
        else if (st.tripped && slope < r.clear * w.offered_rate)
          emit(i, false, slope, r.clear * w.offered_rate, "");
        break;
      }
      case RuleKind::kStall: {
        if (w.delivered == 0 && w.in_system_end > 0)
          ++st.consecutive;
        else
          st.consecutive = 0;
        if (!st.tripped && st.consecutive >= r.min_count)
          emit(i, true, static_cast<double>(st.consecutive),
               static_cast<double>(r.min_count), "");
        else if (st.tripped && w.delivered > 0)
          emit(i, false, static_cast<double>(w.delivered),
               static_cast<double>(r.min_count), "");
        break;
      }
      case RuleKind::kHotspot: {
        const std::vector<std::uint64_t>& per_level =
            rec.window_level_collisions();
        const std::uint64_t total = rec.window_collisions();
        std::uint64_t peak = 0;
        std::size_t peak_level = 0;
        for (std::size_t l = 0; l < per_level.size(); ++l)
          if (per_level[l] > peak) {
            peak = per_level[l];
            peak_level = l;
          }
        const double share =
            total == 0 ? 0.0
                       : static_cast<double>(peak) /
                             static_cast<double>(total);
        if (!st.tripped && total >= r.min_count && share >= r.trip)
          emit(i, true, share, r.trip,
               "level=" + std::to_string(peak_level));
        else if (st.tripped && (total < r.min_count || share < r.clear))
          emit(i, false, share, r.clear, "");
        break;
      }
      case RuleKind::kNeighbor: {
        // Receiver-major key order lets one linear scan of the window map
        // produce per-receiver sender histograms deterministically.
        const auto& pairs = rec.window_pairs();
        const auto& ever = rec.pairs_ever();
        double worst_dom = 0.0;
        std::uint64_t silent_pairs = 0;
        std::string detail;
        auto it = pairs.begin();
        while (it != pairs.end()) {
          const NodeId recv = static_cast<NodeId>(it->first >> 32);
          std::uint64_t total = 0;
          std::uint64_t peak = 0;
          NodeId peak_sender = 0;
          std::uint64_t distinct_now = 0;
          auto row_end = it;
          for (; row_end != pairs.end() &&
                 static_cast<NodeId>(row_end->first >> 32) == recv;
               ++row_end) {
            total += row_end->second;
            ++distinct_now;
            if (row_end->second > peak) {
              peak = row_end->second;
              peak_sender = static_cast<NodeId>(row_end->first);
            }
          }
          if (total >= r.min_count) {
            // Chattering: one sender dominating a node that historically
            // hears several (a single-parent chain node trivially hears
            // one sender; that is topology, not pathology). Silent: a
            // historical sender at zero this window, gated on its share —
            // it only counts when share * window total >= min, i.e. the
            // peer owed enough receptions that zero is an outage rather
            // than ordinary arrival noise.
            std::uint64_t distinct_ever = 0;
            std::uint64_t ever_total = 0;
            const auto row_begin =
                ever.lower_bound(FlightRecorder::pair_key(recv, 0));
            auto ever_end = row_begin;
            for (; ever_end != ever.end() &&
                   static_cast<NodeId>(ever_end->first >> 32) == recv;
                 ++ever_end) {
              ++distinct_ever;
              ever_total += ever_end->second;
            }
            NodeId silent_peer = 0;
            bool have_silent = false;
            for (auto ev = row_begin; ev != ever_end; ++ev) {
              if (pairs.find(ev->first) != pairs.end()) continue;
              const double expected =
                  static_cast<double>(ev->second) /
                  static_cast<double>(ever_total) *
                  static_cast<double>(total);
              if (expected >= static_cast<double>(r.min_count) &&
                  !have_silent) {
                have_silent = true;
                silent_peer = static_cast<NodeId>(ev->first);
              }
            }
            const double dom = static_cast<double>(peak) /
                               static_cast<double>(total);
            if (distinct_ever >= 2 && dom > worst_dom) {
              worst_dom = dom;
              if (dom >= r.trip && detail.empty())
                detail = "chatter node=" + std::to_string(recv) +
                         " peer=" + std::to_string(peak_sender);
            }
            if (have_silent) {
              ++silent_pairs;
              if (detail.empty())
                detail = "silent node=" + std::to_string(recv) +
                         " peer=" + std::to_string(silent_peer);
            }
            (void)distinct_now;
          }
          it = row_end;
        }
        const bool offending = silent_pairs > 0 || worst_dom >= r.trip;
        if (!st.tripped && offending)
          emit(i, true, worst_dom, r.trip, detail);
        else if (st.tripped && silent_pairs == 0 && worst_dom < r.clear)
          emit(i, false, worst_dom, r.clear, "");
        break;
      }
    }
  }
  return out;
}

}  // namespace radiomc::health
