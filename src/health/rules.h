#pragma once

// Declarative SLO alert rules with trip/clear hysteresis.
//
// A rule set is parsed from a compact `--alert-rules` spec — comma-
// separated `name[:param[:param[:param]]]` clauses, or the single word
// `default` for the full battery at theory-derived thresholds — and
// evaluated once per rolling window against the flight recorder's deltas
// plus the service's queue/sojourn sample. Every rule keeps a latched
// state: it *trips* when the window crosses the trip threshold and only
// *clears* once a later window crosses the (stricter) clear threshold, so
// a metric oscillating around one line does not chatter.
//
// The six families and their defaults (see docs/OBSERVABILITY.md):
//
//   throughput[:trip[:clear]]   cumulative post-warmup delivered/phase
//                               below trip*lambda trips (0.90, the certify
//                               margin); clears at >= clear*lambda (0.95).
//                               Both thresholds carry a 3-sigma Poisson
//                               slack that shrinks as 1/sqrt(horizon):
//                               per-window arrivals are Binomial(W,lambda)
//                               and would chatter on sampling noise alone,
//                               while a real deficit grows linearly and
//                               outruns the slack.
//   sojourn[:trip[:clear]]      window mean sojourn > trip * the Thm 4.15
//                               envelope D*(1-l)/(mu-l) trips (3.0, the
//                               certify multiple); clears at <= 2.5x.
//                               Idle when lambda >= mu (no finite bound).
//   qgrowth[:trip[:clear]]      in-system growth per phase >= trip*lambda
//                               trips (0.5); clears below clear*lambda
//                               (0.25). The online divergence detector.
//   stall[:windows]             `windows` consecutive zero-delivery
//                               windows while messages are in flight
//                               trips (2); any delivering window clears.
//   hotspot[:share[:clear[:min]]]  one BFS level holding >= share of the
//                               window's genuine collisions (0.5), with
//                               at least `min` collisions (16), trips;
//                               clears below `clear` share (0.25).
//   neighbor[:dom[:clear[:min]]]   per-neighbor outliers on nodes with
//                               >= `min` window receptions (8): a single
//                               sender >= `dom` of them (0.9, chattering)
//                               or a historical sender at zero in a window
//                               where its historical traffic share says it
//                               owed >= `min` receptions (silent — the
//                               share gate keeps a low-rate peer's quiet
//                               window from reading as an outage). Clears
//                               when no silent pair remains and dominance
//                               < `clear` (0.75).
//
// Parsing throws std::invalid_argument with a specific message (same
// contract as ArrivalSpec::parse); evaluation is a pure function of its
// inputs, so the resulting alert stream is deterministic.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "health/recorder.h"

namespace radiomc::health {

enum class RuleKind : std::uint8_t {
  kThroughput,
  kSojourn,
  kQueueGrowth,
  kStall,
  kHotspot,
  kNeighbor,
};

/// Stable spec/JSONL name of a rule family.
std::string_view rule_name(RuleKind k) noexcept;

struct Rule {
  RuleKind kind;
  double trip = 0.0;
  double clear = 0.0;
  std::uint64_t min_count = 0;  ///< stall windows / hotspot min / neighbor min
};

struct RuleSet {
  std::vector<Rule> rules;

  /// Normalized spec string (echoed into the schema line so a stream is
  /// self-describing).
  std::string canonical() const;

  /// Parses a spec; throws std::invalid_argument on malformed input.
  static RuleSet parse(std::string_view spec);
};

/// One window's aggregate facts, assembled by the Monitor.
struct WindowStats {
  std::uint64_t window = 0;     ///< 0-based window index
  std::uint64_t phase_end = 0;  ///< last completed phase in the window
  std::uint64_t phases = 0;     ///< window length in phases
  double offered_rate = 0.0;    ///< lambda (config, messages/phase)
  double envelope_phases = 0.0; ///< Thm 4.15 D*mean_wait; NaN if lambda>=mu
  std::uint64_t arrivals = 0;   ///< window delta
  std::uint64_t delivered = 0;  ///< window delta
  double mean_sojourn = 0.0;    ///< window mean, NaN if delivered == 0
  std::uint64_t in_system_begin = 0;
  std::uint64_t in_system_end = 0;
  /// Cumulative horizon since rules became eligible (first post-warmup
  /// window), for the long-horizon throughput floor.
  std::uint64_t eval_phases = 0;
  std::uint64_t eval_delivered = 0;
};

/// One alert state transition.
struct Transition {
  RuleKind rule;
  bool trip = false;      ///< true = trip, false = clear
  double value = 0.0;     ///< the measured quantity
  double threshold = 0.0; ///< the crossed threshold
  std::string detail;     ///< e.g. "level=2" or "node=5 peer=7"; may be ""
};

/// Latched per-rule evaluation. Feed every window in order.
class RuleEngine {
 public:
  explicit RuleEngine(RuleSet rules);

  /// Evaluates one window; returns the transitions it caused (in rule
  /// declaration order, deterministic).
  std::vector<Transition> evaluate(const WindowStats& w,
                                   const FlightRecorder& rec);

  std::uint64_t trips() const noexcept { return trips_; }
  std::uint64_t clears() const noexcept { return clears_; }
  /// Rules currently in the tripped state.
  std::uint64_t active() const noexcept;
  const RuleSet& rules() const noexcept { return rules_; }

 private:
  struct State {
    bool tripped = false;
    std::uint64_t consecutive = 0;  ///< stall: zero-delivery window streak
  };
  RuleSet rules_;
  std::vector<State> state_;
  std::uint64_t trips_ = 0;
  std::uint64_t clears_ = 0;
};

}  // namespace radiomc::health
