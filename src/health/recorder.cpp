#include "health/recorder.h"

#include <algorithm>

namespace radiomc::health {

FlightRecorder::FlightRecorder(NodeId n, std::vector<std::uint32_t> levels)
    : levels_(std::move(levels)), win_(n) {
  if (!levels_.empty()) {
    const std::uint32_t depth =
        *std::max_element(levels_.begin(), levels_.end());
    level_coll_win_.assign(depth + 1, 0);
  }
}

void FlightRecorder::on_transmit(SlotTime, NodeId sender, ChannelId,
                                 const Message& m) {
  NodeCounters& c = win_[sender];
  ++c.tx;
  ++tx_win_;
  if (m.kind == MsgKind::kAck) ++c.acks_served;
}

void FlightRecorder::on_deliver(SlotTime, NodeId receiver, ChannelId,
                                const Message& m) {
  NodeCounters& c = win_[receiver];
  ++c.rx;
  ++rx_win_;
  if (m.kind == MsgKind::kData) ++c.acks_owed;
  const std::uint64_t key = pair_key(receiver, m.sender);
  ++pair_win_[key];
  ++pair_ever_[key];
}

void FlightRecorder::on_collision(SlotTime, NodeId receiver, ChannelId,
                                  std::uint32_t tx_neighbors) {
  // Same split as ActivityCounter: one transmitting neighbor means fault
  // injection jammed an otherwise-clean reception; only >= 2 is a genuine
  // collision (lumping them would inflate the hotspot rule under jamming).
  NodeCounters& c = win_[receiver];
  if (tx_neighbors >= 2) {
    ++c.collisions;
    ++coll_win_;
    ++coll_total_;
    if (!level_coll_win_.empty() && receiver < levels_.size())
      ++level_coll_win_[levels_[receiver]];
  } else {
    ++c.jams;
    ++jam_win_;
    ++jam_total_;
  }
}

void FlightRecorder::roll_window() {
  std::fill(win_.begin(), win_.end(), NodeCounters{});
  pair_win_.clear();
  std::fill(level_coll_win_.begin(), level_coll_win_.end(), 0);
  tx_win_ = rx_win_ = coll_win_ = jam_win_ = 0;
}

}  // namespace radiomc::health
