#include "health/monitor.h"

#include <cmath>
#include <stdexcept>

#include "queueing/analysis.h"
#include "telemetry/json_writer.h"

namespace radiomc::health {

Monitor::Monitor(NodeId n, std::vector<std::uint32_t> levels,
                 const HealthConfig& cfg, std::ostream& out)
    : recorder_(n, std::move(levels)),
      engine_(RuleSet::parse(cfg.rules)),
      cfg_(cfg),
      out_(&out) {
  init();
}

Monitor::Monitor(NodeId n, std::vector<std::uint32_t> levels,
                 const HealthConfig& cfg, const std::string& path)
    : recorder_(n, std::move(levels)),
      engine_(RuleSet::parse(cfg.rules)),
      cfg_(cfg),
      owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()) {
  if (!owned_->is_open()) out_ = nullptr;
  init();
}

void Monitor::init() {
  if (cfg_.window_phases == 0)
    throw std::invalid_argument(
        "health: window must be a positive phase count");
  if (cfg_.mu <= 0.0) cfg_.mu = queueing::mu_decay();
  std::string buf;
  telemetry::JsonWriter w(&buf);
  w.begin_object();
  w.member("ev", "schema");
  w.member("v", kHealthSchemaVersion);
  w.member("window", cfg_.window_phases);
  w.member("warmup", cfg_.warmup_phases);
  w.member("lambda", cfg_.offered_rate);
  w.member("mu", cfg_.mu);
  w.member("depth", static_cast<std::uint64_t>(cfg_.depth));
  w.member("rules", engine_.rules().canonical());
  w.end_object();
  write_line(buf);
}

Monitor::~Monitor() { finish(); }

void Monitor::write_line(const std::string& line) {
  if (!ok()) {
    ++dropped_;
    return;
  }
  *out_ << line << '\n';
  out_->flush();  // readable while the soak is live, like snap/v1
}

void Monitor::on_phase(const PhaseSample& s) {
  if (finished_) return;
  last_phase_ = s.phase;
  saw_phase_ = true;
  if ((s.phase + 1) % cfg_.window_phases != 0) return;
  close_window(s);
}

void Monitor::close_window(const PhaseSample& s) {
  WindowStats ws;
  ws.window = windows_;
  ws.phase_end = s.phase;
  ws.phases = cfg_.window_phases;
  ws.offered_rate = cfg_.offered_rate;
  ws.envelope_phases =
      (cfg_.offered_rate > 0.0 && cfg_.offered_rate < cfg_.mu)
          ? static_cast<double>(cfg_.depth) *
                queueing::mean_wait(cfg_.offered_rate, cfg_.mu)
          : std::nan("");
  ws.arrivals = s.arrivals - window_base_.arrivals;
  ws.delivered = s.delivered - window_base_.delivered;
  ws.mean_sojourn =
      ws.delivered > 0
          ? (s.sojourn_sum - window_base_.sojourn_sum) /
                static_cast<double>(ws.delivered)
          : std::nan("");
  ws.in_system_begin = window_base_.in_system;
  ws.in_system_end = s.in_system;

  {
    std::string buf;
    telemetry::JsonWriter w(&buf);
    w.begin_object();
    w.member("ev", "window");
    w.member("n", windows_);
    w.member("phase", s.phase);
    w.member("arrivals", ws.arrivals);
    w.member("delivered", ws.delivered);
    w.member("in_system", s.in_system);
    w.member("mean_sojourn", ws.mean_sojourn);  // null when no delivery
    w.member("tx", recorder_.window_transmissions());
    w.member("collisions", recorder_.window_collisions());
    w.member("jams", recorder_.window_jams());
    w.member("polls", s.engine_polls - window_base_.engine_polls);
    w.member("wakes", s.wake_events - window_base_.wake_events);
    w.end_object();
    write_line(buf);
  }

  // Rules idle during warmup: the first evaluated window is the first one
  // wholly inside the measured horizon.
  const std::uint64_t window_start = s.phase + 1 - cfg_.window_phases;
  if (window_start >= cfg_.warmup_phases) {
    if (!have_eval_base_) {
      have_eval_base_ = true;
      eval_base_ = window_base_;
      eval_start_phase_ = window_start;
    }
    ws.eval_phases = s.phase + 1 - eval_start_phase_;
    ws.eval_delivered = s.delivered - eval_base_.delivered;
    for (const Transition& tr : engine_.evaluate(ws, recorder_)) {
      std::string buf;
      telemetry::JsonWriter w(&buf);
      w.begin_object();
      w.member("ev", "alert");
      w.member("rule", rule_name(tr.rule));
      w.member("state", tr.trip ? "trip" : "clear");
      w.member("n", windows_);
      w.member("phase", s.phase);
      w.member("value", tr.value);
      w.member("limit", tr.threshold);
      if (!tr.detail.empty()) w.member("detail", tr.detail);
      w.end_object();
      write_line(buf);
    }
  }

  recorder_.roll_window();
  window_base_ = s;
  ++windows_;
}

void Monitor::finish() {
  if (finished_) return;
  finished_ = true;
  std::string buf;
  telemetry::JsonWriter w(&buf);
  w.begin_object();
  w.member("ev", "end");
  w.member("phase", saw_phase_ ? last_phase_ : 0);
  w.member("windows", windows_);
  w.member("trips", engine_.trips());
  w.member("clears", engine_.clears());
  w.member("active", engine_.active());
  w.member("clean", dropped_ == 0);
  if (dropped_ > 0) w.member("dropped", dropped_);
  w.end_object();
  if (ok()) {
    *out_ << buf << '\n';
    out_->flush();
  }
}

void Monitor::validate_flags(bool has_out, bool has_rules, bool has_window,
                             std::uint64_t window_phases) {
  if (has_rules && !has_out)
    throw std::invalid_argument(
        "--alert-rules requires --health-out (nowhere to stream alerts)");
  if (has_window && !has_out)
    throw std::invalid_argument(
        "--health-window requires --health-out (no stream to pace)");
  if (has_window && window_phases == 0)
    throw std::invalid_argument(
        "--health-window must be a positive phase count");
}

}  // namespace radiomc::health
