#pragma once

// The slot-synchronous radio network engine.
//
// Implements exactly the model of §1.1: communication proceeds in
// synchronous time slots; in each slot each station either transmits or
// receives; a receiving station hears a message iff *exactly one* of its
// graph neighbors transmits; there is no collision detection (a collision
// and silence are indistinguishable to the receiver).
//
// Channels: the paper runs collection and distribution concurrently
// "either by using separate channels or by multiplexing" (§1.4) and then
// assumes separate channels. The engine therefore supports `num_channels`
// independent channels; the collision rule applies per channel; a station
// has (conceptually) one transceiver per channel, so it may transmit on
// several channels in one slot and receives on every channel it is not
// transmitting on. Set `rx_while_tx_other = false` for a strict
// single-transceiver half-duplex variant. Single-channel time
// multiplexing is expressed by TimeDivisionStation (see station.h).
//
// Active-set hot path: per-slot cost is proportional to the stations that
// are *doing* something, not to n. Phase 1 polls only the active set
// (stations sleep via the Waker contract of radio/waker.h; stations that
// never touch their Waker stay permanently active, the legacy behavior).
// Phase 2 scatters each transmission over a flat CSR adjacency copy
// (radio/csr.h) into epoch-stamped struct-of-arrays receiver cells,
// recording each newly-touched cell; Phase 3 visits only the touched
// cells, in (node, channel) order. The delivery stream, NetMetrics,
// traces, and capture-RNG consumption are byte-identical to the pre-
// rewrite full-scan engine — proven over a randomized matrix by
// tests/engine_diff_test.cpp against the frozen reference implementation
// in tests/reference_engine.{h,cpp}.

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault_schedule.h"
#include "graph/graph.h"
#include "radio/active_set.h"
#include "radio/csr.h"
#include "radio/message.h"
#include "radio/station.h"
#include "radio/trace.h"
#include "support/rng.h"

namespace radiomc {

/// Aggregate counters maintained by the engine; used by benches and by
/// tests that assert behavioural properties (e.g. "token DFS never
/// collides").
struct NetMetrics {
  std::uint64_t slots = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;        ///< successful receptions
  std::uint64_t collision_events = 0;  ///< (listener, channel, slot) with >= 2 transmitting neighbors
  std::uint64_t capture_deliveries = 0;  ///< collisions resolved by capture (Remark 3 mode)

  // Fault-injection counters (src/faults/); all zero unless a FaultSchedule
  // is installed via set_faults.
  std::uint64_t fault_jams = 0;   ///< clean receptions killed by jamming
  std::uint64_t fault_drops = 0;  ///< deliveries lost to message drops
  std::uint64_t fault_link_blocked = 0;  ///< (tx, neighbor) pairs cut by a down link
  std::uint64_t fault_crashed_slots = 0;  ///< (node, slot) pairs spent crashed

  void reset() { *this = NetMetrics{}; }
};

/// Scheduling observability, separate from NetMetrics because it describes
/// the engine's own economy rather than the simulated radio physics (and
/// NetMetrics must stay field-for-field comparable with the reference
/// engine). Tests use it to prove the active set actually pays off.
struct EngineStats {
  std::uint64_t station_polls = 0;  ///< on_slot invocations
  std::uint64_t wake_events = 0;    ///< Waker::wake calls that raised a mark
  std::uint64_t peak_active = 0;    ///< max active-set size seen in a slot
};

class RadioNetwork {
 public:
  struct Config {
    ChannelId num_channels = 1;
    /// If true (default), a station transmitting on channel c still
    /// receives on the other channels in the same slot (one transceiver per
    /// channel, the paper's separate-channels idealization). If false, any
    /// transmission mutes all reception that slot (strict half duplex).
    bool rx_while_tx_other = true;
    /// §8 Remark 3's alternative conflict model ("in case of a conflict
    /// the receiver may get one of the messages"): with this probability a
    /// listener with >= 2 transmitting neighbors receives a uniformly
    /// chosen one of their messages instead of silence. 0 = the paper's
    /// main model (and the default).
    double capture_prob = 0.0;
    /// Engine-level randomness used for capture resolution. Drivers derive
    /// it from their master stream via `Rng::split` so parallel trials get
    /// independent capture randomness; unset falls back to a fixed
    /// historical stream (`Rng(rng_tags::kCaptureFallbackSeed)`).
    std::optional<Rng> capture_stream;
  };

  /// The graph must outlive the network.
  explicit RadioNetwork(const Graph& g) : RadioNetwork(g, Config{}) {}
  RadioNetwork(const Graph& g, Config cfg);

  /// Registers the stations, one per node, in node-id order, builds the
  /// flat CSR scatter structure, and calls each station's `on_attach` with
  /// its Waker (in node order). Stations are not owned; the caller keeps
  /// them alive while the network runs.
  void attach(std::vector<Station*> stations);

  /// Runs one synchronous slot.
  void step();

  /// Runs `count` slots.
  void run(SlotTime count);

  SlotTime now() const noexcept { return now_; }
  const Graph& graph() const noexcept { return *graph_; }
  const Config& config() const noexcept { return cfg_; }
  const NetMetrics& metrics() const noexcept { return metrics_; }
  NetMetrics& metrics() noexcept { return metrics_; }
  const EngineStats& engine_stats() const noexcept { return stats_; }

  /// Active-set introspection (tests, debugging; not part of the radio
  /// model — stations must never consult another station's activity).
  bool station_active(NodeId v) const noexcept {
    return active_set_.contains(v);
  }
  std::size_t active_station_count() const noexcept {
    return active_set_.active().size();
  }
  /// Wakes a station from driver level (between slots), e.g. to deliver an
  /// out-of-band arrival to a sleeping queue station.
  void wake_station(NodeId v) { active_set_.wake(v); }

  /// Installs an observer for physical events (not owned; nullptr to
  /// remove). Instrumentation only — stations cannot see it.
  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }

  /// Installs a per-slot pulse observer (not owned; nullptr to remove),
  /// called once at the end of every slot. One pointer test per slot when
  /// unset — stream-identical to a build without the hook.
  void set_slot_hook(SlotHook* hook) noexcept { slot_hook_ = hook; }

  /// Installs a fault schedule (not owned; nullptr to remove). A crashed
  /// station neither transmits nor receives (its slot hooks are not
  /// called); a down link carries nothing in either direction; a jammed
  /// receiver observes collision-indistinguishable silence; dropped
  /// deliveries vanish. Null or disabled schedules leave the engine on its
  /// exact legacy code path — zero cost when off.
  void set_faults(FaultSchedule* faults) noexcept { faults_ = faults; }
  const FaultSchedule* faults() const noexcept { return faults_; }

 private:
  const Graph* graph_;
  Config cfg_;
  std::vector<Station*> stations_;
  SlotTime now_ = 0;
  NetMetrics metrics_;
  EngineStats stats_;
  TraceSink* trace_ = nullptr;
  SlotHook* slot_hook_ = nullptr;
  FaultSchedule* faults_ = nullptr;
  Rng capture_rng_;

  // Scheduling state.
  ActiveSet active_set_;
  std::vector<Waker> wakers_;        // one per node, stable after attach
  CsrAdjacency adj_;                 // flat scatter structure

  // Per-slot state, all epoch-stamped so nothing is cleared per slot.
  // Struct-of-arrays: the hot loops touch one narrow array each instead of
  // striding over fat records.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> act_epoch_;  // cell transmitted this slot iff == epoch_
  std::vector<Message> act_msg_;          // valid iff act_epoch_ matches
  std::vector<std::uint64_t> rx_epoch_;   // cell touched this slot iff == epoch_
  std::vector<std::uint32_t> rx_count_;   // transmitting neighbors, iff epoch matches
  std::vector<const Message*> rx_msg_;    // surviving message, iff epoch matches
  std::vector<std::uint8_t> keep_;        // ActiveSet retention flag, by node
  std::vector<std::optional<Message>> row_;  // per-poll scratch, num_channels wide
  std::vector<std::pair<NodeId, ChannelId>> tx_list_;  // this slot's transmissions
  std::vector<std::size_t> touched_;      // rx cells stamped this slot
};

}  // namespace radiomc
