#include "radio/network.h"

#include <algorithm>
#include <utility>

#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

RadioNetwork::RadioNetwork(const Graph& g, Config cfg)
    : graph_(&g),
      cfg_(std::move(cfg)),
      capture_rng_(cfg_.capture_stream ? *cfg_.capture_stream : Rng(rng_tags::kCaptureFallbackSeed)) {
  require(cfg_.num_channels >= 1, "RadioNetwork: need >= 1 channel");
  require(cfg_.capture_prob >= 0.0 && cfg_.capture_prob <= 1.0,
          "RadioNetwork: capture_prob in [0, 1]");
  const std::size_t cells =
      static_cast<std::size_t>(g.num_nodes()) * cfg_.num_channels;
  act_epoch_.assign(cells, 0);
  act_msg_.assign(cells, Message{});
  rx_epoch_.assign(cells, 0);
  rx_count_.assign(cells, 0);
  rx_msg_.assign(cells, nullptr);
  keep_.assign(g.num_nodes(), 0);
  row_.assign(cfg_.num_channels, std::nullopt);
}

void RadioNetwork::attach(std::vector<Station*> stations) {
  require(stations.size() == graph_->num_nodes(),
          "RadioNetwork::attach: need exactly one station per node");
  for (Station* s : stations)
    require(s != nullptr, "RadioNetwork::attach: null station");
  stations_ = std::move(stations);
  const NodeId n = graph_->num_nodes();
  adj_.build(*graph_);
  active_set_.reset(n);
  wakers_.assign(n, Waker{});
  for (NodeId v = 0; v < n; ++v) {
    active_set_.bind(&wakers_[v], v);
    stations_[v]->on_attach(wakers_[v]);
  }
}

void RadioNetwork::step() {
  require(!stations_.empty(), "RadioNetwork::step: no stations attached");
  const ChannelId channels = cfg_.num_channels;
  // Disabled schedules cost one pointer test per slot; every per-node /
  // per-edge branch below is guarded on `fs` so the fault-free path is the
  // exact legacy code path.
  FaultSchedule* fs =
      (faults_ != nullptr && faults_->enabled()) ? faults_ : nullptr;
  if (fs) fs->begin_slot(now_);
  active_set_.begin_slot();
  ++epoch_;
  tx_list_.clear();
  touched_.clear();

  // Phase 1: collect transmit intents (one optional message per channel)
  // from the active set, in ascending node order — the same order the
  // legacy full scan produced, so the transmit stream is byte-identical.
  // Crashed stations are not polled: they neither transmit nor advance
  // their protocol state (it stays frozen until recovery), and their
  // active-set membership is frozen with it.
  if (fs) metrics_.fault_crashed_slots += fs->num_crashed();
  const std::span<const NodeId> active = active_set_.active();
  if (active.size() > stats_.peak_active) stats_.peak_active = active.size();
  for (const NodeId v : active) {
    if (fs && !fs->node_alive(v)) {
      keep_[v] = 1;
      continue;
    }
    ++stats_.station_polls;
    for (auto& a : row_) a.reset();
    stations_[v]->on_slot(now_, std::span<std::optional<Message>>(row_));
    std::uint8_t sent = 0;
    const std::size_t base = static_cast<std::size_t>(v) * channels;
    for (ChannelId c = 0; c < channels; ++c) {
      if (!row_[c]) continue;
      sent = 1;
      row_[c]->sender = v;  // the radio layer stamps the physical sender
      act_epoch_[base + c] = epoch_;
      act_msg_[base + c] = *row_[c];
      tx_list_.emplace_back(v, c);
      ++metrics_.transmissions;
      if (trace_) trace_->on_transmit(now_, v, c, act_msg_[base + c]);
    }
    keep_[v] = sent;
  }

  // Phase 2: superpose transmissions at each potential receiver — a CSR
  // scatter over the flat adjacency copy into epoch-stamped counters;
  // newly-touched cells are recorded so Phase 3 never scans the full
  // (node, channel) space. In the capture model the surviving message is a
  // uniform choice among the transmitting neighbors (reservoir sampling);
  // in the main model only a lone transmitter's message matters, so the
  // kept pointer is arbitrary beyond count 1.
  const bool capture = cfg_.capture_prob > 0.0;
  for (const auto& [u, c] : tx_list_) {
    const Message& m = act_msg_[static_cast<std::size_t>(u) * channels + c];
    const NodeId* nbrs = adj_.row(u);
    const std::size_t deg = adj_.degree(u);
    for (std::size_t k = 0; k < deg; ++k) {
      const NodeId v = nbrs[k];
      if (fs) {
        if (!fs->node_alive(v)) continue;  // crashed receivers hear nothing
        if (!fs->link_up(u, k)) {          // down links carry nothing
          ++metrics_.fault_link_blocked;
          continue;
        }
      }
      const std::size_t cell = static_cast<std::size_t>(v) * channels + c;
      if (rx_epoch_[cell] != epoch_) {
        rx_epoch_[cell] = epoch_;
        rx_count_[cell] = 0;
        touched_.push_back(cell);
      }
      const std::uint32_t cnt = ++rx_count_[cell];
      if (cnt == 1) {
        rx_msg_[cell] = &m;
      } else if (capture && capture_rng_.next_below(cnt) == 0) {
        rx_msg_[cell] = &m;
      }
    }
  }

  // Phase 3: deliver where exactly one neighbor transmitted and the
  // receiver was listening on that channel. Touched cells sorted by index
  // reproduce the legacy engine's (node asc, channel asc) visit order,
  // which keeps delivery callbacks, trace events and capture-probability
  // draws in the identical sequence.
  std::sort(touched_.begin(), touched_.end());
  for (const std::size_t cell : touched_) {
    const NodeId v = static_cast<NodeId>(cell / channels);
    const ChannelId c = static_cast<ChannelId>(cell % channels);
    const std::size_t base = cell - c;
    bool transmitted_any = false;
    if (!cfg_.rx_while_tx_other) {
      for (ChannelId c2 = 0; c2 < channels; ++c2)
        transmitted_any |= act_epoch_[base + c2] == epoch_;
    }
    const bool listening = act_epoch_[cell] != epoch_ && !transmitted_any;
    if (!listening) continue;
    const std::uint32_t cnt = rx_count_[cell];
    if (cnt == 1) {
      if (fs && fs->jammed(now_, v, c)) {
        // Jamming kills an otherwise-clean reception; the receiver
        // observes silence indistinguishable from a collision.
        ++metrics_.fault_jams;
        if (trace_) trace_->on_collision(now_, v, c, cnt);
        continue;
      }
      if (fs && fs->dropped(now_, v, c)) {
        ++metrics_.fault_drops;
        continue;
      }
      ++metrics_.deliveries;
      if (trace_) trace_->on_deliver(now_, v, c, *rx_msg_[cell]);
      stations_[v]->on_receive(now_, c, *rx_msg_[cell]);
    } else if (capture && capture_rng_.bernoulli(cfg_.capture_prob)) {
      // Remark 3: the conflict resolves to one of the messages.
      if (fs && fs->dropped(now_, v, c)) {
        ++metrics_.fault_drops;
        continue;
      }
      ++metrics_.deliveries;
      ++metrics_.capture_deliveries;
      if (trace_) trace_->on_deliver(now_, v, c, *rx_msg_[cell]);
      stations_[v]->on_receive(now_, c, *rx_msg_[cell]);
    } else {
      ++metrics_.collision_events;
      if (trace_) trace_->on_collision(now_, v, c, cnt);
      // No collision detection: the station is not told anything.
    }
  }

  for (const NodeId v : active) {
    if (fs && !fs->node_alive(v)) continue;
    stations_[v]->on_slot_end(now_);
  }
  active_set_.end_slot(keep_.data());
  stats_.wake_events = active_set_.wake_events();
  ++now_;
  ++metrics_.slots;
  // After the slot counter advances, so a hook observing slot t sees the
  // world with t slots fully applied.
  if (slot_hook_ != nullptr) slot_hook_->on_slot_done(now_);
}

void RadioNetwork::run(SlotTime count) {
  for (SlotTime i = 0; i < count; ++i) step();
}

}  // namespace radiomc
