#pragma once

// Engine-side active-set bookkeeping (the notifier half of the
// task/notifier idiom: stations sleep until something wakes them, the
// engine polls only the awake ones).
//
// Membership is a sorted vector of node ids plus flat flag arrays, so the
// slot loop iterates members in ascending id order — the same order the
// legacy full-scan engine used, which is what keeps transmit lists, trace
// streams and capture-RNG draws byte-identical to the pre-rewrite engine.
//
// Cost model: `begin_slot` is O(wakes since last slot), `end_slot` is O(1)
// when no station has autosleep enabled and no wake was raised (the
// all-legacy fast path), O(active + wakes) otherwise. A sort is paid only
// on slots where a sleeping station actually joined.
//
// All state is plain data owned by one engine; nothing here is
// thread-safe (one RadioNetwork = one trial = one thread, as everywhere
// in this codebase).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "radio/waker.h"

namespace radiomc {

class ActiveSet {
 public:
  /// Resets to n stations, all active, none autosleep, no pending wakes.
  void reset(NodeId n);

  NodeId size() const noexcept { return n_; }

  /// Current members, ascending. Valid until the next begin/end_slot.
  std::span<const NodeId> active() const noexcept {
    return {active_.data(), active_.size()};
  }
  bool contains(NodeId v) const noexcept { return in_active_[v] != 0; }
  bool autosleep(NodeId v) const noexcept { return autosleep_[v] != 0; }
  /// True iff any station ever enabled autosleep (engine fast-path gate).
  bool any_autosleep() const noexcept { return any_autosleep_; }

  /// Raises a wake for `v`: guarantees membership in the next slot and
  /// counts as "woken this slot" for the retention rule. Idempotent.
  void wake(NodeId v);
  void set_autosleep(NodeId v, bool on);

  /// Admits stations woken since the previous slot (sorting only if a
  /// non-member actually joined). Call at the top of every slot.
  void begin_slot();

  /// Applies the retention rule after all of a slot's callbacks ran:
  /// an autosleep member leaves unless `keep[v]` is set (it returned a
  /// transmit intent, or is crashed with membership frozen) or a wake was
  /// raised for it during the slot. `keep` is indexed by node id and read
  /// only at member indices. Consumes this slot's wake marks.
  void end_slot(const std::uint8_t* keep);

  /// Total wake() calls that raised a new mark (telemetry for tests and
  /// the engine's debug stats).
  std::uint64_t wake_events() const noexcept { return wake_events_; }

  /// Binds `w` to (this, v) so Station::on_attach can hand out handles.
  void bind(Waker* w, NodeId v) noexcept {
    w->set_ = this;
    w->node_ = v;
  }

 private:
  NodeId n_ = 0;
  std::vector<NodeId> active_;            // sorted member ids
  std::vector<std::uint8_t> in_active_;   // membership flag, by node
  std::vector<std::uint8_t> autosleep_;   // opt-in flag, by node
  std::vector<std::uint8_t> woke_flag_;   // wake raised this slot, by node
  std::vector<std::uint8_t> pending_flag_;  // queued for admission, by node
  std::vector<NodeId> slot_woken_;        // nodes with woke_flag_ set
  std::vector<NodeId> pending_;           // nodes with pending_flag_ set
  bool any_autosleep_ = false;
  std::uint64_t wake_events_ = 0;
};

}  // namespace radiomc
