#pragma once

// The message vocabulary of the protocol suite.
//
// The paper allows messages of O(log n) bits; every field below is a node
// id, a level, or a sequence number, i.e. O(log n) bits each, so the struct
// respects the model. Per §4, data messages carry the id of the transmitting
// node and of its BFS parent, which is how a receiver decides whether the
// message came from a BFS child, its BFS parent, or an unrelated neighbor.

#include <cstdint>

#include "graph/graph.h"

namespace radiomc {

using SlotTime = std::uint64_t;
using ChannelId = std::uint32_t;

/// Destination value meaning "all nodes" (broadcast payloads).
inline constexpr NodeId kAllNodes = static_cast<NodeId>(-2);

enum class MsgKind : std::uint8_t {
  kData,          ///< collection / point-to-point payload (unique destination)
  kAck,           ///< deterministic acknowledgement (§3)
  kLeader,        ///< leader election: best-candidate flood
  kBfsAnnounce,   ///< BFS construction: "I am at level L, join below me"
  kDfsToken,      ///< token of the DFS traversals of §5.1
  kBcastData,     ///< distribution pipeline payload (§6)
  kNack,          ///< gap-repair request, routed to the root like data
  kSetupReport,   ///< "I joined the tree" verification message (§2)
};

struct Message {
  MsgKind kind = MsgKind::kData;
  NodeId origin = kNoNode;         ///< original source of the payload
  NodeId dest = kNoNode;           ///< final destination (kAllNodes = broadcast)
  NodeId sender = kNoNode;         ///< immediate transmitter (appended, §4)
  NodeId sender_parent = kNoNode;  ///< transmitter's BFS parent (appended, §4)
  std::uint32_t seq = 0;           ///< per-origin sequence number / message id
  std::uint32_t aux = 0;           ///< protocol-specific small field (level, ...)
  std::uint64_t payload = 0;       ///< application payload

  /// Identity of a payload for dedup/ack matching.
  friend bool same_payload(const Message& a, const Message& b) {
    return a.origin == b.origin && a.seq == b.seq;
  }
};

}  // namespace radiomc
