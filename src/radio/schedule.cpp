#include "radio/schedule.h"

#include "support/util.h"

namespace radiomc {

PhaseClock::PhaseClock(SlotStructure s) : s_(s) {
  require(s_.decay_len >= 2, "PhaseClock: decay_len >= 2");
}

PhaseClock::SlotInfo PhaseClock::decode(SlotTime t) const noexcept {
  SlotInfo info;
  std::uint64_t u = t;
  if (s_.ack_subslots) {
    info.is_ack = (u % 2) == 1;
    u /= 2;
  }
  if (s_.mod3_gating) {
    info.residue = static_cast<std::uint32_t>(u % 3);
    u /= 3;
  }
  info.decay_step = static_cast<std::uint32_t>(u % s_.decay_len);
  info.phase = u / s_.decay_len;
  return info;
}

bool PhaseClock::level_may_send_data(const SlotInfo& info,
                                     std::uint32_t level) const noexcept {
  if (info.is_ack) return false;
  if (!s_.mod3_gating) return true;
  return info.residue == level % 3;
}

std::uint64_t PhaseClock::slots_per_phase() const noexcept {
  std::uint64_t per = s_.decay_len;
  if (s_.mod3_gating) per *= 3;
  if (s_.ack_subslots) per *= 2;
  return per;
}

}  // namespace radiomc
