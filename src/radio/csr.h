#pragma once

// Flat compressed-sparse-row adjacency, rebuilt from a Graph once at
// attach time and owned by the engine.
//
// Graph already stores CSR internally, but hides it behind the
// span-returning `neighbors()` accessor. The slot hot path wants raw
// pointers it can index without a function call per transmitter, and wants
// the neighbor-index `k` explicit because FaultSchedule::link_up(u, k) is
// keyed on it. Copying the two arrays here (a few MB even at n = 10^6,
// paid once) also decouples the engine's cache behavior from whatever the
// Graph object sits next to in memory.

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace radiomc {

struct CsrAdjacency {
  std::vector<std::size_t> offsets;  ///< n + 1 entries
  std::vector<NodeId> targets;       ///< 2m entries, ascending within a row

  void build(const Graph& g) {
    const NodeId n = g.num_nodes();
    offsets.resize(static_cast<std::size_t>(n) + 1);
    targets.clear();
    targets.reserve(g.num_edges() * 2);
    offsets[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      targets.insert(targets.end(), nbrs.begin(), nbrs.end());
      offsets[static_cast<std::size_t>(v) + 1] = targets.size();
    }
  }

  std::size_t degree(NodeId v) const noexcept {
    return offsets[static_cast<std::size_t>(v) + 1] -
           offsets[static_cast<std::size_t>(v)];
  }
  const NodeId* row(NodeId v) const noexcept {
    return targets.data() + offsets[v];
  }
};

}  // namespace radiomc
