#pragma once

// Per-node protocol interfaces.
//
// Protocol logic lives in per-node state machines that see only what the
// paper lets a node see: its own id, its neighbors' ids, n, the degree
// bound Delta, and the messages it receives.
//
// Two levels of interface:
//
//  * `Station` is what the slot engine drives: one callback per slot that
//    may transmit on any subset of channels (the paper's "separate
//    channels" idealization gives a node one transceiver per channel).
//  * `SubStation` is a single-channel protocol machine (Decay, collection,
//    distribution, ...). Adapters compose SubStations onto a Station:
//    `ChannelMuxStation` gives each SubStation its own channel (§1.4
//    "separate channels"); `TimeDivisionStation` interleaves them on one
//    channel ("the odd time slots are dedicated to the upward traffic ...
//    and the even ones to the downwards traffic").

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "radio/message.h"
#include "radio/waker.h"

namespace radiomc {

class Station {
 public:
  virtual ~Station() = default;
  Station() = default;
  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  /// Called once when the engine adopts the station, before the first
  /// slot. `w` stays valid for the station's attached lifetime. The
  /// default ignores it, leaving the station permanently active (the
  /// legacy contract — always correct). Stations whose idle slots are
  /// provably side-effect-free may keep the handle, `w.set_autosleep(true)`
  /// and `w.wake()` on the events that make them want to transmit; see
  /// radio/waker.h for the exact promise this makes to the engine.
  virtual void on_attach(Waker& /*w*/) {}

  /// Decide this slot's action: `tx` has one entry per channel; set
  /// `tx[c]` to transmit on channel c, leave it empty to listen there.
  virtual void on_slot(SlotTime t, std::span<std::optional<Message>> tx) = 0;

  /// Called when exactly one neighbor transmitted on channel `ch` in slot
  /// `t` and this station was listening on `ch`. There is no collision
  /// detection: when two or more neighbors transmit, nothing is called.
  virtual void on_receive(SlotTime t, ChannelId ch, const Message& m) = 0;

  /// Called at the end of every slot (after all receptions), for timers.
  virtual void on_slot_end(SlotTime /*t*/) {}
};

/// A single-channel protocol state machine; composed onto channels or time
/// slices by the adapters below. Time passed to a SubStation is *its own*
/// slot count (under time division it advances once per frame).
class SubStation {
 public:
  virtual ~SubStation() = default;
  SubStation() = default;
  SubStation(const SubStation&) = delete;
  SubStation& operator=(const SubStation&) = delete;

  /// Engine adoption, forwarded by SingleStation, and by ChannelMuxStation
  /// only in coordinated-autosleep mode. TimeDivisionStation never
  /// forwards, and a non-coordinated ChannelMuxStation doesn't either:
  /// their SubStations share one membership bit, so no single SubStation
  /// can promise the whole node's idleness. A SubStation that opts in via
  /// `w.set_autosleep(true)` makes the Waker contract's promise
  /// (radio/waker.h) for itself alone.
  virtual void on_attach(Waker& /*w*/) {}

  /// Transmit decision for the SubStation's slot `t` (nullopt = listen).
  virtual std::optional<Message> poll(SlotTime t) = 0;
  /// Successful reception in the SubStation's slot `t`.
  virtual void deliver(SlotTime t, const Message& m) = 0;
  /// End of the SubStation's slot `t`.
  virtual void tick(SlotTime /*t*/) {}
};

/// Runs one SubStation on channel 0 of a single-channel network.
class SingleStation final : public Station {
 public:
  explicit SingleStation(SubStation& sub) : sub_(&sub) {}
  void on_attach(Waker& w) override { sub_->on_attach(w); }
  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    tx[0] = sub_->poll(t);
  }
  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    sub_->deliver(t, m);
  }
  void on_slot_end(SlotTime t) override { sub_->tick(t); }

 private:
  SubStation* sub_;
};

/// SubStation i <-> channel i; all advance every slot (separate channels).
class ChannelMuxStation final : public Station {
 public:
  /// `coordinated_autosleep` opts the whole node into the engine's active
  /// set and forwards the Waker to every SubStation. Sound only when EVERY
  /// sub independently keeps the Waker promise (duty-wakes while it holds
  /// pending work, wakes on the deliveries that create work): the subs
  /// share one membership bit, so the node sleeps exactly when no sub
  /// transmitted or woke this slot — which the per-sub promises jointly
  /// make safe. TimeDivisionStation deliberately has no such mode: a sub's
  /// duty wake buys exactly one polled slot, so a time-sliced node could
  /// sleep through the *other* sub's dedicated slots and deadlock.
  explicit ChannelMuxStation(std::vector<SubStation*> subs,
                             bool coordinated_autosleep = false)
      : subs_(std::move(subs)), autosleep_(coordinated_autosleep) {}
  void on_attach(Waker& w) override {
    if (!autosleep_) return;
    w.set_autosleep(true);
    for (auto* s : subs_) s->on_attach(w);
  }
  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    for (std::size_t c = 0; c < subs_.size(); ++c) tx[c] = subs_[c]->poll(t);
  }
  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    if (ch < subs_.size()) subs_[ch]->deliver(t, m);
  }
  void on_slot_end(SlotTime t) override {
    for (auto* s : subs_) s->tick(t);
  }

 private:
  std::vector<SubStation*> subs_;
  bool autosleep_;
};

/// SubStation i active in physical slots t with t % k == i, on channel 0,
/// seeing virtual time t / k. The paper's single-channel multiplexing.
class TimeDivisionStation final : public Station {
 public:
  explicit TimeDivisionStation(std::vector<SubStation*> subs)
      : subs_(std::move(subs)) {}
  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    tx[0] = active(t)->poll(t / subs_.size());
  }
  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    active(t)->deliver(t / subs_.size(), m);
  }
  void on_slot_end(SlotTime t) override { active(t)->tick(t / subs_.size()); }

 private:
  SubStation* active(SlotTime t) const { return subs_[t % subs_.size()]; }
  std::vector<SubStation*> subs_;
};

}  // namespace radiomc
