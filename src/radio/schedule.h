#pragma once

// The slot algebra shared by all tree protocols.
//
// The paper composes three slot-level mechanisms:
//
//  * Decay steps: one Decay invocation spans 2*ceil(log2 Delta) transmission
//    opportunities ("phase", §1.4);
//  * data/ack interleaving: "the odd time slots are dedicated to the
//    original protocol and the even ones to acknowledgements" (§3), a x2
//    slow-down;
//  * mod-3 level gating: "a node at level i transmits a message at time
//    slot t only if t = i mod 3" (§2.2), a x3 slow-down that confines
//    collisions to adjacent BFS levels.
//
// PhaseClock makes the nesting explicit so that collection, point-to-point
// and distribution share one timing decomposition, and so the ablation
// experiment (E12) can toggle each factor independently.
//
// Slot layout (innermost varies fastest):
//   t = ((phase * decay_len + decay_step) * R + residue) * A + subslot
// where R = 3 if mod-3 gating is on else 1, and A = 2 if ack subslots are
// on else 1 (subslot 0 = data, subslot 1 = ack).
//
// Within one (phase, decay_step), each residue class gets one data
// opportunity, so every level advances its Decay invocation exactly once
// per decay_step regardless of gating, and an ack subslot immediately
// follows each data subslot as §3 requires.

#include <cstdint>

#include "radio/message.h"

namespace radiomc {

struct SlotStructure {
  std::uint32_t decay_len = 2;  ///< 2 * ceil(log2 Delta), >= 2
  bool ack_subslots = true;     ///< §3 interleave
  bool mod3_gating = true;      ///< §2.2 gating
};

class PhaseClock {
 public:
  explicit PhaseClock(SlotStructure s);

  struct SlotInfo {
    std::uint64_t phase = 0;       ///< Decay-invocation index
    std::uint32_t decay_step = 0;  ///< in [0, decay_len)
    std::uint32_t residue = 0;     ///< 0..2; 0 when gating off
    bool is_ack = false;           ///< ack subslot?
  };

  SlotInfo decode(SlotTime t) const noexcept;

  /// True iff a node at BFS level `level` may transmit *data* in this slot.
  bool level_may_send_data(const SlotInfo& info,
                           std::uint32_t level) const noexcept;

  /// Number of slots spanned by one full phase (one Decay invocation of
  /// every level).
  std::uint64_t slots_per_phase() const noexcept;

  const SlotStructure& structure() const noexcept { return s_; }

 private:
  SlotStructure s_;
};

}  // namespace radiomc
