#pragma once

// Optional engine instrumentation: a TraceSink observes every physical
// event (transmission, delivery, collision). Used by tests that assert
// slot-level properties (e.g. "the token DFS never collides"), by the
// congestion experiment (E13), and for debugging protocol stacks.
//
// The sink is engine-side scaffolding, not part of the radio model — no
// protocol may base decisions on it.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "radio/message.h"

namespace radiomc {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                           const Message& m) = 0;
  virtual void on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                          const Message& m) = 0;
  virtual void on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                            std::uint32_t tx_neighbors) = 0;
};

/// Slot-granular observer, invoked once after every completed engine slot.
/// This is the cadence spine for periodic live telemetry (the perf
/// subsystem's SnapshotStreamer flushes metrics every N slots through it)
/// and, like TraceSink, is engine-side scaffolding: the hook sees only the
/// slot counter, stations cannot see the hook, and no protocol may base a
/// decision on anything it computes.
class SlotHook {
 public:
  virtual ~SlotHook() = default;
  virtual void on_slot_done(SlotTime t) = 0;
};

/// Counts per-node activity; the cheap always-on-able sink.
class ActivityCounter final : public TraceSink {
 public:
  explicit ActivityCounter(NodeId n)
      : transmissions(n, 0), deliveries(n, 0), collisions(n, 0), jams(n, 0) {}

  void on_transmit(SlotTime, NodeId sender, ChannelId,
                   const Message&) override {
    ++transmissions[sender];
  }
  void on_deliver(SlotTime, NodeId receiver, ChannelId,
                  const Message&) override {
    ++deliveries[receiver];
  }
  void on_collision(SlotTime, NodeId receiver, ChannelId,
                    std::uint32_t tx_neighbors) override {
    // tx_neighbors == 1 is a jam-killed clean reception (fault injection),
    // not a genuine collision; lumping the two inflates collision stats.
    if (tx_neighbors >= 2) {
      ++collisions[receiver];
    } else {
      ++jams[receiver];
    }
  }

  std::vector<std::uint64_t> transmissions;
  std::vector<std::uint64_t> deliveries;
  std::vector<std::uint64_t> collisions;  ///< >= 2 transmitting neighbors
  std::vector<std::uint64_t> jams;        ///< jam-induced losses (txn == 1)
};

/// Records a bounded window of raw events (for debugging and tests).
class EventRecorder final : public TraceSink {
 public:
  /// kTruncated is a sentinel appended exactly once when the capacity is
  /// first exceeded, so consumers see the truncation point in-band instead
  /// of silently reading a complete-looking prefix.
  enum class Kind : std::uint8_t { kTransmit, kDeliver, kCollision,
                                   kTruncated };
  struct Event {
    Kind kind;
    SlotTime slot;
    NodeId node;
    ChannelId channel;
    /// True iff the event carries a message (transmit/deliver). Collision
    /// events have no message — the receiver hears only noise — so
    /// msg_kind/origin/seq are then deliberately unusable sentinels.
    bool has_msg;
    MsgKind msg_kind;    // valid iff has_msg
    NodeId origin;       // valid iff has_msg
    std::uint32_t seq;   // valid iff has_msg
    /// Valid iff kind == kCollision: >= 2 for a genuine collision, == 1
    /// when fault injection jammed an otherwise-clean reception (the
    /// receiver cannot tell the difference; the trace can).
    std::uint32_t tx_neighbors;
  };

  explicit EventRecorder(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                   const Message& m) override {
    push({Kind::kTransmit, t, sender, ch, true, m.kind, m.origin, m.seq, 0});
  }
  void on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                  const Message& m) override {
    push({Kind::kDeliver, t, receiver, ch, true, m.kind, m.origin, m.seq, 0});
  }
  void on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                    std::uint32_t k) override {
    push({Kind::kCollision, t, receiver, ch, false, MsgKind::kData, kNoNode,
          0, k});
  }

  const std::vector<Event>& events() const noexcept { return events_; }
  bool truncated() const noexcept { return truncated_; }
  /// Events dropped after the capacity was reached (the kTruncated
  /// sentinel itself is not counted).
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void push(const Event& e) {
    if (events_.size() >= capacity_ + (truncated_ ? 1 : 0)) {
      if (!truncated_) {
        truncated_ = true;
        // The sentinel records the slot at which recording stopped.
        events_.push_back({Kind::kTruncated, e.slot, kNoNode, 0, false,
                           MsgKind::kData, kNoNode, 0, 0});
      }
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }
  std::size_t capacity_;
  std::vector<Event> events_;
  bool truncated_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace radiomc
