#include "radio/active_set.h"

#include <algorithm>

namespace radiomc {

void ActiveSet::reset(NodeId n) {
  n_ = n;
  active_.resize(n);
  for (NodeId v = 0; v < n; ++v) active_[v] = v;
  in_active_.assign(n, 1);
  autosleep_.assign(n, 0);
  woke_flag_.assign(n, 0);
  pending_flag_.assign(n, 0);
  slot_woken_.clear();
  pending_.clear();
  any_autosleep_ = false;
  wake_events_ = 0;
}

void ActiveSet::wake(NodeId v) {
  if (!woke_flag_[v]) {
    woke_flag_[v] = 1;
    slot_woken_.push_back(v);
    ++wake_events_;
  }
  if (!pending_flag_[v]) {
    pending_flag_[v] = 1;
    pending_.push_back(v);
  }
}

void ActiveSet::set_autosleep(NodeId v, bool on) {
  autosleep_[v] = on ? 1 : 0;
  if (on) {
    any_autosleep_ = true;
  } else {
    // Opting out must pin the station active again; a plain flag flip
    // would strand a currently-sleeping station forever.
    wake(v);
  }
}

void ActiveSet::begin_slot() {
  if (pending_.empty()) return;
  bool joined = false;
  for (const NodeId v : pending_) {
    pending_flag_[v] = 0;
    // A wake raised between slots buys exactly this slot's poll; consume
    // its mark here or end_slot would honor it a second time and grant a
    // bonus slot of membership. (Marks raised *during* the slot come after
    // this drain and are consumed by end_slot, as the retention rule says.)
    woke_flag_[v] = 0;
    if (!in_active_[v]) {
      in_active_[v] = 1;
      active_.push_back(v);
      joined = true;
    }
  }
  pending_.clear();
  // Members must stay ascending: the slot loop's iteration order is what
  // keeps the rewritten engine byte-identical to the legacy full scan.
  if (joined) std::sort(active_.begin(), active_.end());
}

void ActiveSet::end_slot(const std::uint8_t* keep) {
  if (any_autosleep_) {
    std::size_t w = 0;
    for (const NodeId v : active_) {
      if (!autosleep_[v] || keep[v] || woke_flag_[v]) {
        active_[w++] = v;
      } else {
        in_active_[v] = 0;
      }
    }
    active_.resize(w);
  }
  // Wake marks are per-slot; pending_ persists so wakes raised late in the
  // slot (or between slots) still admit the station next begin_slot.
  for (const NodeId v : slot_woken_) woke_flag_[v] = 0;
  slot_woken_.clear();
}

// --- Waker -----------------------------------------------------------------
// Out of line so the station-visible header (radio/waker.h) does not pull
// the engine-side container into every protocol translation unit.

void Waker::wake() noexcept {
  if (set_ != nullptr) set_->wake(node_);
}

void Waker::set_autosleep(bool on) noexcept {
  if (set_ != nullptr) set_->set_autosleep(node_, on);
}

}  // namespace radiomc
