#pragma once

// The station-visible half of active-set scheduling.
//
// The BGI'89 protocols spend most slots with the overwhelming majority of
// stations silent — a node in Decay broadcast does nothing until the
// message front reaches it. The engine therefore keeps an *active set* and
// polls only its members each slot (see radio/active_set.h for the engine
// half and DESIGN.md §"Engine architecture" for the full contract).
//
// A `Waker` is the handle through which a station participates. The engine
// passes one to `Station::on_attach`; the default `on_attach` ignores it,
// which leaves the station permanently active — the legacy behavior, and
// always correct. A station that opts in via `set_autosleep(true)` promises:
//
//   * while it is not in the active set, its `on_slot` would have returned
//     no transmit intent, and skipping its `on_slot` / `on_slot_end`
//     callbacks does not change any decision it will ever make (i.e. its
//     behavior is a function of absolute slot time and received messages,
//     not of how often it was polled);
//   * whenever an event makes it want to transmit (typically inside
//     `on_receive`), it calls `wake()`.
//
// Scheduling rules (the membership invariant, property-tested by
// tests/engine_invariants_test.cpp):
//
//   * every station starts active at attach;
//   * an active autosleep station stays active for the next slot iff it
//     returned a transmit intent this slot or `wake()` was called for it
//     during this slot;
//   * `wake()` on a sleeping station guarantees it is polled in the next
//     slot (wakes raised between slots are merged before the next poll);
//   * a crashed station (fault injection) keeps its membership frozen — it
//     is not polled while down, and resumes exactly where it was on
//     recovery, matching the legacy engine's "state frozen until recovery";
//   * `set_autosleep(false)` re-wakes the station and pins it active.
//
// Like the slot structure, wakes are model-legal bookkeeping: a station may
// only call `wake()` from its own callbacks (or its driver between slots),
// never from another station's state — the lint determinism rules apply.

#include "graph/graph.h"

namespace radiomc {

class ActiveSet;

class Waker {
 public:
  Waker() = default;

  /// Ensures this station is polled in the next slot. Idempotent; safe to
  /// call from on_slot / on_receive / on_slot_end or between slots.
  void wake() noexcept;

  /// Opts the station in (true) or out (false) of descheduling. Opting
  /// out re-wakes the station and pins it active from the next slot on.
  void set_autosleep(bool on) noexcept;

  /// The node this handle belongs to.
  NodeId node() const noexcept { return node_; }

  /// False for a default-constructed handle (station not attached to an
  /// active-set engine).
  bool attached() const noexcept { return set_ != nullptr; }

 private:
  friend class ActiveSet;
  ActiveSet* set_ = nullptr;
  NodeId node_ = kNoNode;
};

}  // namespace radiomc
