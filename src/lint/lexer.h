#pragma once

// A lightweight C++ lexer for radiomc_lint (src/lint/).
//
// The linter's rules must see through comments and string literals: a
// mention of `rand()` in a doc comment is fine, a call in code is not.
// This is not a real C++ front end — no preprocessing, no templates, no
// name lookup — just a faithful token stream with line numbers, plus the
// two side channels rules need: comments (for waiver directives) and
// #include directives (for the model-purity include graph).
//
// The lexer is dependency-free and total: any byte sequence produces a
// token stream, never an error. Unterminated literals are closed at end
// of file so a half-written fixture still lints.

#include <string>
#include <string_view>
#include <vector>

namespace radiomc::lint {

struct Token {
  enum class Kind {
    kIdent,   ///< identifiers and keywords (no keyword table needed)
    kNumber,  ///< numeric literal, incl. digit separators and suffixes
    kString,  ///< "..." or R"tag(...)tag"; text excludes the quotes
    kChar,    ///< '...'
    kPunct,   ///< operators/punctuation; multi-char for ::, ->, ==, !=, &&, ||
  };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

/// A comment, kept out of the token stream. The rule engine parses waiver
/// directives from these: a `radiomc-lint:` marker, then an
/// allow(rule) clause and an optional reason.
struct Comment {
  int line = 0;           ///< line the comment starts on
  std::string text;       ///< body without the // or /* */ fences
  bool own_line = false;  ///< no code token precedes it on its line
};

/// An #include directive. `angled` distinguishes <...> from "...".
struct IncludeDirective {
  int line = 0;
  std::string path;
  bool angled = false;
};

/// One lexed translation unit.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Lexes `src` (the file contents) into tokens + comments + includes.
LexedFile lex_source(std::string path, std::string_view src);

}  // namespace radiomc::lint
