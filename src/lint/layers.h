#pragma once

// Layer-DAG analysis for radiomc_lint.
//
// A checked-in manifest (`.lint-layers` at the repo root) declares the
// architecture as data: named layers mapped to directories, and the
// include edges the design permits between them. The analysis then holds
// the *actual* include graph (stage-one facts) against the declaration:
//
//   * the declared edge graph must be acyclic — a cycle in the manifest
//     means the architecture itself is circular, reported with the path;
//   * every cross-layer quoted #include must ride a declared edge;
//   * every linted file must belong to a declared layer once it includes
//     across directories.
//
// This generalizes the three ad-hoc include rules of PR 5/6
// (`engine-include`, `analysis-offline`, `perf-purity-include`), which
// remain as sharper, message-specific checks for their zones.
//
// Manifest grammar (line oriented, `#` comments):
//
//   layer <name> <dir> [<dir>...]
//   allow <from> -> <to>
//
// Parse errors are reported as unwaivable findings against the manifest
// file itself, with line numbers.

#include <string>
#include <vector>

#include "lint/facts.h"
#include "lint/rules.h"

namespace radiomc::lint {

struct LayerDecl {
  std::string name;
  std::vector<std::string> dirs;
  int line = 0;
};

struct LayerEdge {
  std::string from;
  std::string to;
  int line = 0;
};

struct LayerParseError {
  int line = 0;
  std::string message;
};

struct LayerManifest {
  std::vector<LayerDecl> layers;
  std::vector<LayerEdge> edges;
  std::vector<LayerParseError> errors;
};

/// Parses manifest text. Never throws; syntax problems land in `errors`
/// with specific messages (unknown directive, redeclared layer, malformed
/// allow, undeclared layer reference, duplicate edge).
LayerManifest parse_layer_manifest(const std::string& text);

/// Runs the layer-dag analysis: manifest errors (unwaivable, reported
/// against `manifest_name`), declared-graph cycles, undeclared cross-layer
/// include edges (reported at the include line), and unmapped files.
std::vector<Finding> check_layers(const LayerManifest& manifest,
                                  const std::string& manifest_name,
                                  const FactsDb& facts);

/// The layer a path belongs to, by longest matching declared directory;
/// empty if none match.
std::string layer_of(const LayerManifest& manifest, std::string_view path);

}  // namespace radiomc::lint
