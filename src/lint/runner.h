#pragma once

// Filesystem front end for radiomc_lint: loads a source tree into
// SourceFiles and renders findings as text or as the
// `radiomc.lint/v2` JSON report CI uploads.

#include <iosfwd>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace radiomc::lint {

/// Recursively collects C++ sources (*.h, *.hpp, *.cpp, *.cc) under each
/// root (a root may also be a single file). Build trees (any directory
/// whose name starts with "build"), hidden directories and third_party/
/// are skipped. Files are returned sorted by path so runs are
/// byte-identical regardless of directory enumeration order.
std::vector<SourceFile> load_tree(const std::vector<std::string>& roots);

/// Human-readable findings, one per line: `file:line: [rule] message`.
/// Waived findings are prefixed with "waived" and the reason.
void print_findings(std::ostream& os, const std::vector<Finding>& findings,
                    bool show_waived);

/// The machine-readable report (schema "radiomc.lint/v2"): findings plus
/// the shard_safety and rng_streams sections and a footer with scan
/// counts and wall time. `wall_ms` is measured by the caller (the CLI) —
/// src/lint itself never reads a clock, the same discipline the
/// no-wall-clock rule enforces on src/.
void write_json_report(std::ostream& os, const AnalysisResult& result,
                       double wall_ms);

}  // namespace radiomc::lint
