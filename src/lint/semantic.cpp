#include "lint/semantic.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace radiomc::lint {

bool in_deterministic_zone(std::string_view path) {
  return in_dir(path, "src/protocols") || in_dir(path, "src/faults") ||
         in_dir(path, "src/radio") || in_dir(path, "src/telemetry") ||
         in_dir(path, "src/support") || in_dir(path, "src/service") ||
         in_dir(path, "src/health");
}

bool is_hub_pointer_type(std::string_view type) {
  return type == "TelemetryHub" || type == "TraceSink" || type == "Profiler" ||
         type == "SlotHook";
}

namespace {

bool is_rng_support(std::string_view path) {
  const std::string_view base = basename_of(path);
  return in_dir(path, "src/support") && (base == "rng.h" || base == "rng.cpp");
}

bool is_tag_registry(std::string_view path) {
  return in_dir(path, "src/support") && basename_of(path) == "rng_tags.h";
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

void report(std::vector<Finding>* out, std::string rule, std::string file,
            int line, std::string message) {
  out->push_back(
      {std::move(rule), std::move(file), line, std::move(message), false, {}});
}

std::string leaf_name(const std::string& qualified) {
  auto pos = qualified.rfind(' ');
  return pos == std::string::npos ? qualified : qualified.substr(pos + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// rng-stream-audit
// ---------------------------------------------------------------------------

std::size_t count_split_sites(const FactsDb& facts) {
  std::size_t n = 0;
  for (const auto& f : facts.files) {
    if (in_dir(f.path, "src")) n += f.splits.size();
  }
  return n;
}

void analyze_rng_streams(const FactsDb& facts, std::vector<Finding>* out,
                         std::vector<TagInventoryEntry>* inventory) {
  // Which constant names are actually used as split tags anywhere.
  std::set<std::string> used_as_tag;
  for (const auto& f : facts.files) {
    for (const auto& s : f.splits) {
      if (s.tag_is_name) used_as_tag.insert(leaf_name(s.tag_expr));
    }
  }

  // Per-file per-rule scans.
  for (const auto& f : facts.files) {
    if (!in_dir(f.path, "src")) continue;
    const bool deterministic = in_deterministic_zone(f.path);

    if (!is_rng_support(f.path)) {
      for (const auto& c : f.rng_ctors) {
        if (!c.literal_seed) continue;
        report(out, "rng-stream-audit", f.path, c.line,
               "Rng constructed from fixed literal seed " + hex64(c.value) +
                   " — streams must derive from the run seed via "
                   "Rng::split(tag); if this fixed stream is intentional, "
                   "name the seed in support/rng_tags.h and waive with the "
                   "reason");
      }
    }

    for (const auto& s : f.splits) {
      if (s.tag_is_literal && !is_rng_support(f.path)) {
        report(out, "rng-stream-audit", f.path, s.line,
               "bare literal split tag " + hex64(s.value) + " on parent '" +
                   s.receiver +
                   "' — name it as a constexpr in support/rng_tags.h so the "
                   "global tag inventory can prove streams independent");
      }
      if (s.tag_has_call && deterministic) {
        report(out, "rng-stream-audit", f.path, s.line,
               "split tag '" + s.tag_expr +
                   "' is computed by a call on a deterministic path — tags "
                   "must be named constants or pure index arithmetic so the "
                   "derived stream is a function of the run seed alone");
      }
    }

    // Same-parent duplicate tags: two splits of the same receiver with the
    // same resolved constant value inside one function (or at one file's
    // class/file scope) yield byte-identical child streams.
    std::map<std::pair<std::string, std::uint64_t>,
             std::vector<const SplitFact*>>
        by_parent_tag;
    for (const auto& s : f.splits) {
      if (!s.resolved) continue;
      by_parent_tag[{s.function + "\x01" + s.receiver, s.value}].push_back(&s);
    }
    for (const auto& [key, sites] : by_parent_tag) {
      for (std::size_t i = 1; i < sites.size(); ++i) {
        report(out, "rng-stream-audit", f.path, sites[i]->line,
               "split tag " + hex64(sites[i]->value) +
                   " drawn twice from parent '" + sites[i]->receiver +
                   "' (first at line " + std::to_string(sites[0]->line) +
                   ") — the two child streams are byte-identical, not "
                   "independent");
      }
    }
  }

  // The registry (support/rng_tags.h) must assign pairwise-distinct
  // values: a collision correlates any two streams split with the
  // colliding names from a common parent.
  struct NamedTag {
    std::string name;
    std::string file;
    int line;
  };
  std::map<std::uint64_t, std::vector<NamedTag>> registry_by_value;
  for (const auto& f : facts.files) {
    for (const auto& k : f.tag_consts) {
      const bool in_registry = is_tag_registry(f.path);
      if (in_registry || (used_as_tag.count(k.name) && in_dir(f.path, "src"))) {
        if (inventory != nullptr) {
          inventory->push_back({k.name, k.value, f.path, k.line});
        }
      }
      if (in_registry) {
        registry_by_value[k.value].push_back({k.name, f.path, k.line});
      }
    }
  }
  for (const auto& [value, tags] : registry_by_value) {
    for (std::size_t i = 1; i < tags.size(); ++i) {
      if (tags[i].name == tags[0].name) continue;
      report(out, "rng-stream-audit", tags[i].file, tags[i].line,
             "split-tag constants '" + tags[0].name + "' (line " +
                 std::to_string(tags[0].line) + ") and '" + tags[i].name +
                 "' share value " + hex64(value) +
                 " — colliding tags correlate streams derived from a common "
                 "parent; registry values must be pairwise distinct");
    }
  }

  if (inventory != nullptr) {
    std::sort(inventory->begin(), inventory->end(),
              [](const TagInventoryEntry& a, const TagInventoryEntry& b) {
                if (a.value != b.value) return a.value < b.value;
                return a.name < b.name;
              });
    inventory->erase(
        std::unique(inventory->begin(), inventory->end(),
                    [](const TagInventoryEntry& a, const TagInventoryEntry& b) {
                      return a.value == b.value && a.name == b.name &&
                             a.file == b.file;
                    }),
        inventory->end());
  }
}

// ---------------------------------------------------------------------------
// shard-safety
// ---------------------------------------------------------------------------

namespace {

/// The engine functions that run inside the per-slot hot loop — the code a
/// sharded Phase 1 would execute concurrently.
bool is_slot_loop_function(const std::string& fn) {
  return fn == "RadioNetwork::step" || fn == "ActiveSet::begin_slot" ||
         fn == "ActiveSet::end_slot" || fn == "ActiveSet::wake" ||
         fn == "ActiveSet::set_autosleep";
}

struct MemberClass {
  std::string_view classification;
  std::string_view rationale;
};

/// The reviewed classification table. Every mutable engine member touched
/// in the slot loop must appear here; the analysis fails on drift in
/// either direction (touched-but-unclassified, classified-but-untouched).
const std::map<std::string_view, MemberClass>& radio_network_table() {
  static const std::map<std::string_view, MemberClass> t = {
      {"now_",
       {"barrier-mergeable",
        "per-slot scalar advanced exactly once; all shards agree at the "
        "slot barrier"}},
      {"epoch_",
       {"barrier-mergeable",
        "slot epoch stamp advanced once per slot at the barrier"}},
      {"metrics_",
       {"barrier-mergeable",
        "monotone counters; per-shard deltas sum at the barrier"}},
      {"stats_",
       {"barrier-mergeable",
        "scheduling counters: sum polls/wakes, max peak-active"}},
      {"act_epoch_",
       {"shard-local",
        "indexed by transmitting node; a node is polled only by its owning "
        "shard"}},
      {"act_msg_",
       {"shard-local",
        "per-transmitter channel cells; written only while polling the "
        "owning shard's nodes"}},
      {"keep_",
       {"shard-local", "retention mark indexed by the polled node"}},
      {"row_",
       {"shard-local",
        "per-poll scratch row; a sharded engine gives each worker its own "
        "row (aliased writes via range-for)"}},
      {"tx_list_",
       {"barrier-mergeable",
        "append-only transmit-intent list; shard lists concatenate in "
        "ascending node order at the barrier"}},
      {"touched_",
       {"barrier-mergeable",
        "touched-cell set; union then sort restores the canonical "
        "(node, channel) scan order"}},
      {"rx_epoch_",
       {"barrier-mergeable",
        "receiver cell stamps; boundary cells written by several shards "
        "merge by count-sum with canonical survivor order"}},
      {"rx_count_",
       {"barrier-mergeable",
        "per-cell arrival counts; sum per boundary cell at the barrier"}},
      {"rx_msg_",
       {"barrier-mergeable",
        "surviving message per cell; deterministic winner under the "
        "canonical ascending-transmitter merge"}},
      {"capture_rng_",
       {"order-sensitive",
        "one global capture-draw stream consumed in touched-cell order; "
        "must stay serialized or be re-derived per cell via Rng::split"}},
      {"active_set_",
       {"order-sensitive",
        "shared sorted membership; admission/retention and cross-shard "
        "wakes mutate it, so membership ops serialize at the barrier"}},
      {"trace_",
       {"order-sensitive",
        "trace emission order is the byte-identity contract of the JSONL "
        "stream"}},
      {"slot_hook_",
       {"order-sensitive",
        "observer fires once per slot after the world is consistent"}},
      {"faults_",
       {"order-sensitive",
        "fault schedule advances per-slot churn state exactly once"}},
      {"stations_",
       {"order-sensitive",
        "station callbacks run in canonical delivery order; boundary "
        "receivers belong to other shards"}},
      {"cfg_", {"read-only", "immutable run configuration; freely shared"}},
      {"adj_",
       {"read-only", "immutable CSR adjacency; freely shared"}},
  };
  return t;
}

const std::map<std::string_view, MemberClass>& active_set_table() {
  static const std::map<std::string_view, MemberClass> t = {
      {"active_",
       {"barrier-mergeable",
        "sorted membership vector; set semantics restored by the ascending "
        "sort at admission"}},
      {"in_active_",
       {"barrier-mergeable", "membership flag; idempotent set-insert, "
                             "union at the barrier"}},
      {"pending_",
       {"barrier-mergeable",
        "pending-wake list; idempotent marks dedup by pending_flag_, union "
        "then ascending sort at admission"}},
      {"pending_flag_",
       {"barrier-mergeable", "pending-wake dedup flag; monotone OR within "
                             "a slot"}},
      {"slot_woken_",
       {"barrier-mergeable", "woken-this-slot mark; monotone OR within a "
                             "slot"}},
      {"woke_flag_",
       {"barrier-mergeable",
        "first-raise dedup flag; monotone OR, merged before wake_events_ "
        "sums"}},
      {"wake_events_",
       {"barrier-mergeable",
        "counts first-raise wake events; sum per-shard deltas after "
        "woke_flag_ dedup"}},
      {"autosleep_",
       {"barrier-mergeable",
        "per-node opt-in flag; only the owning node's station writes it"}},
      {"any_autosleep_",
       {"barrier-mergeable", "monotone OR over autosleep_"}},
  };
  return t;
}

}  // namespace

void analyze_shard_safety(const FactsDb& facts, std::vector<Finding>* out,
                          std::vector<ShardSafetyRow>* rows) {
  struct Agg {
    std::set<std::string> accesses;
    std::string file;
    int line = 0;
    int sites = 0;
  };
  // owner -> member -> aggregate
  std::map<std::string, std::map<std::string, Agg>> touched;
  std::map<std::string, std::pair<std::string, int>> owner_anchor;

  for (const auto& f : facts.files) {
    for (const auto& m : f.member_accesses) {
      if (!is_slot_loop_function(m.function)) continue;
      auto colon = m.function.find("::");
      std::string owner = m.function.substr(0, colon);
      auto& agg = touched[owner][m.member];
      agg.accesses.insert(m.access);
      if (agg.sites == 0) {
        agg.file = f.path;
        agg.line = m.line;
      }
      ++agg.sites;
      if (owner_anchor.find(owner) == owner_anchor.end()) {
        for (const auto& fn : f.functions) {
          if (fn.name == m.function) {
            owner_anchor[owner] = {f.path, fn.line};
            break;
          }
        }
      }
    }
  }

  for (const auto& [owner, members] : touched) {
    const auto& table =
        owner == "ActiveSet" ? active_set_table() : radio_network_table();
    for (const auto& [member, agg] : members) {
      std::string access;
      for (const auto& a : {std::string("read"), std::string("write"),
                            std::string("call")}) {
        if (agg.accesses.count(a)) {
          if (!access.empty()) access += '+';
          access += a;
        }
      }
      auto it = table.find(member);
      if (it == table.end()) {
        report(out, "shard-safety", agg.file, agg.line,
               "engine member '" + owner + "::" + member +
                   "' is touched in the slot loop (" + access +
                   ") but has no entry in the shard-safety classification "
                   "table (src/lint/semantic.cpp) — classify it shard-local "
                   "/ barrier-mergeable / order-sensitive before the sharded "
                   "engine can rely on this report");
        if (rows != nullptr) {
          rows->push_back({owner, member, access, "unclassified",
                           "no classification table entry", agg.file, agg.line,
                           agg.sites});
        }
        continue;
      }
      if (it->second.classification == "read-only" &&
          agg.accesses.count("write")) {
        report(out, "shard-safety", agg.file, agg.line,
               "engine member '" + owner + "::" + member +
                   "' is classified read-only but the slot loop writes it — "
                   "the classification table has drifted from the engine");
      }
      if (rows != nullptr) {
        rows->push_back({owner, member, access,
                         std::string(it->second.classification),
                         std::string(it->second.rationale), agg.file, agg.line,
                         agg.sites});
      }
    }

    // Stale table entries. Only checked once most of an owner's table is
    // observed, so reduced fixtures (one function, one member) don't trip
    // a wall of stale findings.
    if (members.size() >= 8) {
      for (const auto& [member, cls] : table) {
        if (members.count(std::string(member))) continue;
        const auto anchor = owner_anchor[owner];
        report(out, "shard-safety", anchor.first, anchor.second,
               "shard-safety table entry '" + owner + "::" +
                   std::string(member) +
                   "' is never touched in the slot loop — stale entry (or "
                   "the engine lost an access the table still documents)");
      }
    }
  }

  if (rows != nullptr) {
    std::sort(rows->begin(), rows->end(),
              [](const ShardSafetyRow& a, const ShardSafetyRow& b) {
                if (a.owner != b.owner) return a.owner < b.owner;
                return a.member < b.member;
              });
  }
}

// ---------------------------------------------------------------------------
// hub-null-check (flow-aware)
// ---------------------------------------------------------------------------

namespace {

bool is_ident_t(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool is_punct_t(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool is_terminator_keyword(const Token& t) {
  return t.kind == Token::Kind::kIdent &&
         (t.text == "return" || t.text == "break" || t.text == "continue" ||
          t.text == "throw" || t.text == "goto");
}

/// One brace scope. Guards hold the pointer paths proven non-null for the
/// scope's extent; else_guards are what the *negation* of the opening
/// condition proves (applied to an `else` branch, or promoted to the
/// parent when every path through this branch terminates).
struct GuardScope {
  std::set<std::string> guards;
  std::set<std::string> else_guards;
  bool is_branch = false;   ///< opened by if/else/while
  bool is_loop = false;     ///< while/for: no after-exit promotion
  bool is_plain = true;     ///< bare block: termination propagates upward
  bool last_stmt_terminates = false;
  bool cur_stmt_terminator = false;
};

/// Parsed condition: what the condition proves inside the branch (pos)
/// and what its negation proves (neg).
struct CondGuards {
  std::set<std::string> pos;
  std::set<std::string> neg;
};

/// Splits the condition token span [begin, end) at top-level &&/|| and
/// classifies each atom as a positive (`p`, `p != nullptr`) or negative
/// (`!p`, `p == nullptr`) null test on an identifier chain.
CondGuards parse_condition(const std::vector<Token>& tok, std::size_t begin,
                           std::size_t end) {
  struct Atom {
    std::string path;
    bool positive = false;
    bool known = false;
  };
  std::vector<Atom> atoms;
  bool all_and = true, all_or = true;
  std::size_t atom_begin = begin;
  int depth = 0;

  auto classify = [&](std::size_t a, std::size_t b) {
    Atom atom;
    // Optional leading '!'
    bool negated = false;
    if (a < b && is_punct_t(tok[a], "!")) {
      negated = true;
      ++a;
    }
    // nullptr == chain / nullptr != chain
    bool lhs_nullptr = false;
    std::string cmp;
    if (a + 1 < b && is_ident_t(tok[a], "nullptr") &&
        (is_punct_t(tok[a + 1], "==") || is_punct_t(tok[a + 1], "!="))) {
      lhs_nullptr = true;
      cmp = tok[a + 1].text;
      a += 2;
    }
    // The identifier chain.
    std::string path;
    std::size_t j = a;
    if (j < b && tok[j].kind == Token::Kind::kIdent) {
      path = tok[j].text;
      while (j + 2 < b &&
             (is_punct_t(tok[j + 1], ".") || is_punct_t(tok[j + 1], "->")) &&
             tok[j + 2].kind == Token::Kind::kIdent) {
        path += tok[j + 1].text;
        path += tok[j + 2].text;
        j += 2;
      }
    }
    if (path.empty()) return atom;
    ++j;
    // Trailing comparison.
    if (!lhs_nullptr && j + 1 < b &&
        (is_punct_t(tok[j], "==") || is_punct_t(tok[j], "!=")) &&
        is_ident_t(tok[j + 1], "nullptr")) {
      cmp = tok[j].text;
      j += 2;
    }
    if (j != b) return atom;  // something else in the atom (call, compare…)
    atom.path = path;
    atom.known = true;
    if (!cmp.empty()) {
      atom.positive = (cmp == "!=") != negated;
    } else {
      atom.positive = !negated;
    }
    return atom;
  };

  for (std::size_t i = begin; i <= end; ++i) {
    bool boundary = i == end;
    if (!boundary) {
      if (is_punct_t(tok[i], "(") || is_punct_t(tok[i], "[")) ++depth;
      if (is_punct_t(tok[i], ")") || is_punct_t(tok[i], "]")) --depth;
      if (depth == 0 &&
          (is_punct_t(tok[i], "&&") || is_punct_t(tok[i], "||"))) {
        boundary = true;
        if (tok[i].text == "&&") all_or = false;
        if (tok[i].text == "||") all_and = false;
      }
    }
    if (boundary) {
      atoms.push_back(classify(atom_begin, i));
      atom_begin = i + 1;
    }
  }

  CondGuards g;
  if (atoms.size() == 1 && atoms[0].known) {
    if (atoms[0].positive) g.pos.insert(atoms[0].path);
    else g.neg.insert(atoms[0].path);
    return g;
  }
  if (all_and && !all_or) {
    for (const auto& a : atoms)
      if (a.known && a.positive) g.pos.insert(a.path);
  } else if (all_or && !all_and) {
    for (const auto& a : atoms)
      if (a.known && !a.positive) g.neg.insert(a.path);
  }
  return g;
}

}  // namespace

void analyze_hub_null_check(const LexedFile& f,
                            const std::set<std::string>& global_fields,
                            std::vector<Finding>* out) {
  if (!in_dir(f.path, "src") && !in_dir(f.path, "tools")) return;

  // Effective pointer names for this file: the global field set, plus
  // local declarations of the hub types, minus names shadowed here by a
  // *different* pointer type (e.g. a parser whose `trace` is a Trace*).
  std::set<std::string> hub_names = global_fields;
  const auto& tok = f.tokens;
  for (std::size_t i = 0; i + 2 < tok.size(); ++i) {
    if (tok[i].kind != Token::Kind::kIdent || !is_punct_t(tok[i + 1], "*") ||
        tok[i + 2].kind != Token::Kind::kIdent)
      continue;
    const std::string& type = tok[i].text;
    const std::string& name = tok[i + 2].text;
    if (is_hub_pointer_type(type)) {
      hub_names.insert(name);
    } else if (i + 3 < tok.size()) {
      const Token& after = tok[i + 3];
      if (is_punct_t(after, ";") || is_punct_t(after, "=") ||
          is_punct_t(after, ",") || is_punct_t(after, ")"))
        hub_names.erase(name);
    }
  }
  if (hub_names.empty()) return;

  std::vector<GuardScope> scopes(1);  // [0] = file scope
  std::set<std::string> stmt_guards;  // guards valid to the end of statement

  // Pending condition from an if/while, applied to the next `{` or to the
  // single statement that follows; else_seed carries an else branch's
  // inherited guarantees.
  CondGuards pending;
  bool pending_active = false;
  bool pending_loop = false;
  std::size_t pending_close = 0;  // token index of the condition's `)`
  std::set<std::string> else_seed;
  std::set<std::string> last_else_guards;
  std::set<std::string> promote_on_semi;

  const auto guarded = [&](const std::string& path) {
    if (stmt_guards.count(path)) return true;
    for (const auto& s : scopes)
      if (s.guards.count(path)) return true;
    return false;
  };

  bool stmt_start = true;
  for (std::size_t i = 0; i < tok.size(); ++i) {
    const Token& t = tok[i];

    // Apply a parsed condition to whatever follows its `)`.
    if (pending_active && i == pending_close + 1 && !is_punct_t(t, "{")) {
      // Single-statement branch: positive guards hold until the `;`;
      // a terminator statement promotes the negation past the branch.
      stmt_guards.insert(pending.pos.begin(), pending.pos.end());
      stmt_guards.insert(else_seed.begin(), else_seed.end());
      if (!pending_loop && is_terminator_keyword(t)) {
        promote_on_semi.insert(pending.neg.begin(), pending.neg.end());
      }
      last_else_guards = pending.neg;
      else_seed.clear();
      pending_active = false;
    }

    if (is_punct_t(t, "{")) {
      GuardScope s;
      if (pending_active && i == pending_close + 1) {
        s.is_branch = true;
        s.is_plain = false;
        s.is_loop = pending_loop;
        s.guards = pending.pos;
        s.else_guards = pending.neg;
        pending_active = false;
      }
      if (!else_seed.empty()) {
        s.is_branch = true;
        s.is_plain = false;
        s.guards.insert(else_seed.begin(), else_seed.end());
        else_seed.clear();
      }
      scopes.push_back(std::move(s));
      stmt_guards.clear();
      stmt_start = true;
      continue;
    }
    if (is_punct_t(t, "}")) {
      if (scopes.size() > 1) {
        GuardScope closed = std::move(scopes.back());
        scopes.pop_back();
        const bool terminated = closed.last_stmt_terminates;
        if (closed.is_branch && !closed.is_loop && terminated) {
          scopes.back().guards.insert(closed.else_guards.begin(),
                                      closed.else_guards.end());
        }
        last_else_guards = closed.else_guards;
        // A plain block that always terminates terminates its parent's
        // current statement position too.
        scopes.back().last_stmt_terminates = closed.is_plain && terminated;
      }
      stmt_guards.clear();
      stmt_start = true;
      continue;
    }
    if (is_punct_t(t, ";")) {
      GuardScope& cur = scopes.back();
      cur.last_stmt_terminates = cur.cur_stmt_terminator;
      cur.cur_stmt_terminator = false;
      if (!promote_on_semi.empty()) {
        cur.guards.insert(promote_on_semi.begin(), promote_on_semi.end());
        promote_on_semi.clear();
      }
      stmt_guards.clear();
      else_seed.clear();
      stmt_start = true;
      continue;
    }

    if (stmt_start) {
      if (is_terminator_keyword(t)) scopes.back().cur_stmt_terminator = true;
      stmt_start = false;
    }

    if (t.kind != Token::Kind::kIdent) continue;

    // Parse if/while conditions (the condition tokens still flow through
    // the normal walk below, so dereferences inside them are checked).
    if ((t.text == "if" || t.text == "while") && i + 1 < tok.size() &&
        is_punct_t(tok[i + 1], "(")) {
      int depth = 0;
      std::size_t close = tok.size();
      for (std::size_t j = i + 1; j < tok.size(); ++j) {
        if (is_punct_t(tok[j], "(")) ++depth;
        if (is_punct_t(tok[j], ")") && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close < tok.size()) {
        pending = parse_condition(tok, i + 2, close);
        pending_active = true;
        pending_loop = t.text == "while";
        pending_close = close;
      }
      continue;
    }
    if (t.text == "else") {
      else_seed = last_else_guards;
      stmt_guards.insert(else_seed.begin(), else_seed.end());
      continue;
    }

    if (i > 0 && (is_punct_t(tok[i - 1], ".") || is_punct_t(tok[i - 1], "->") ||
                  is_punct_t(tok[i - 1], "::")))
      continue;  // not the head of a chain

    // Walk the access chain a.b->c..., checking each -> dereference.
    std::string path = t.text;
    std::string last = t.text;
    std::size_t j = i;
    while (j + 2 < tok.size() &&
           (is_punct_t(tok[j + 1], ".") || is_punct_t(tok[j + 1], "->")) &&
           tok[j + 2].kind == Token::Kind::kIdent) {
      if (is_punct_t(tok[j + 1], "->") && hub_names.count(last) &&
          !guarded(path)) {
        report(out, "hub-null-check", f.path, tok[j + 1].line,
               "unchecked dereference of optional telemetry/trace pointer "
               "'" + path +
                   "': guard with `if (" + path +
                   " != nullptr)` so instrumentation stays optional");
        scopes.back().guards.insert(path);  // one finding per site/scope
      }
      path += tok[j + 1].text;
      last = tok[j + 2].text;
      path += last;
      j += 2;
    }

    // `*chain` unary dereference (e.g. `Telemetry& tel = *cfg.telemetry;`).
    if (hub_names.count(last) && i > 0 && is_punct_t(tok[i - 1], "*")) {
      const bool unary = i < 2 || tok[i - 2].kind == Token::Kind::kPunct ||
                         is_ident_t(tok[i - 2], "return");
      if (unary && !(i >= 2 && is_punct_t(tok[i - 2], ")")) &&
          !guarded(path)) {
        report(out, "hub-null-check", f.path, tok[i - 1].line,
               "unchecked dereference of optional telemetry/trace pointer "
               "'*" + path +
                   "': guard with `if (" + path + " != nullptr)`");
        scopes.back().guards.insert(path);
      }
    }

    // Statement-scope guard registration: null tests and `p && ...` /
    // `... && p` / `p ? ...` prove non-nullness for the rest of the
    // statement (the branch-extent guards come from parse_condition).
    if (hub_names.count(last)) {
      const Token* next = j + 1 < tok.size() ? &tok[j + 1] : nullptr;
      const Token* prev = i > 0 ? &tok[i - 1] : nullptr;
      bool guard = false;
      if (next != nullptr && is_punct_t(*next, "!=") && j + 2 < tok.size() &&
          is_ident_t(tok[j + 2], "nullptr"))
        guard = true;
      if (prev != nullptr && is_punct_t(*prev, "!="))
        guard = true;  // nullptr != p
      if ((next != nullptr && is_punct_t(*next, "&&")) ||
          (prev != nullptr && is_punct_t(*prev, "&&")))
        guard = true;
      if (next != nullptr && is_punct_t(*next, "?")) guard = true;
      if (guard) stmt_guards.insert(path);
    }

    i = j;  // skip the consumed chain
  }
}

}  // namespace radiomc::lint
