#include "lint/facts.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace radiomc::lint {

// ---------------------------------------------------------------------------
// Path helpers (moved here from rules.cpp so every pass shares one copy).
// ---------------------------------------------------------------------------

bool in_dir(std::string_view path, std::string_view dir) {
  std::string needle = std::string(dir) + "/";
  if (path.substr(0, needle.size()) == needle) return true;
  std::string anywhere = "/" + needle;
  return path.find(anywhere) != std::string_view::npos;
}

std::string_view basename_of(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

bool is_header(std::string_view path) {
  return path.size() >= 2 && (path.substr(path.size() - 2) == ".h" ||
                              (path.size() >= 4 &&
                               path.substr(path.size() - 4) == ".hpp"));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool parse_int_literal(std::string_view text, std::uint64_t* out) {
  std::size_t end = text.size();
  while (end > 0) {
    char c = text[end - 1];
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L') {
      --end;
    } else {
      break;
    }
  }
  if (end == 0) return false;
  std::string_view body = text.substr(0, end);
  int base = 10;
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    base = 16;
    body.remove_prefix(2);
  } else if (body.size() > 2 && body[0] == '0' &&
             (body[1] == 'b' || body[1] == 'B')) {
    base = 2;
    body.remove_prefix(2);
  } else if (body.size() > 1 && body[0] == '0') {
    base = 8;
    body.remove_prefix(1);
  } else if (body.find('.') != std::string_view::npos ||
             body.find('e') != std::string_view::npos ||
             body.find('E') != std::string_view::npos) {
    return false;  // floating literal
  }
  if (body.empty()) {  // plain "0"
    *out = 0;
    return true;
  }
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value, base);
  if (ec != std::errc{} || ptr != body.data() + body.size()) return false;
  *out = value;
  return true;
}

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == Token::Kind::kIdent; }

/// Keywords that may sit between a declarator's closing `)` and its body
/// `{` — skipped when scanning back for the function name.
bool is_declarator_suffix(const Token& t) {
  return t.kind == Token::Kind::kIdent &&
         (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || t.text == "mutable" || t.text == "try");
}

/// Control keywords whose `(...)` + `{` must not be mistaken for a
/// function definition.
bool is_control_keyword(std::string_view s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "new" ||
         s == "delete" || s == "do" || s == "else" || s == "alignas" ||
         s == "alignof" || s == "static_assert" || s == "decltype";
}

/// Walks back from a closing `)` at `close` to its opening `(`. Returns
/// the opening index, or SIZE_MAX on imbalance.
std::size_t match_back_paren(const std::vector<Token>& toks,
                             std::size_t close) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (is_punct(toks[j], ")")) ++depth;
    if (is_punct(toks[j], "(")) {
      if (--depth == 0) return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Walks forward from an opening `(`/`[`/`{` at `open` to its matching
/// closer. Returns the closing index, or toks.size() on imbalance.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is_punct(toks[j], opener)) ++depth;
    if (is_punct(toks[j], closer)) {
      if (--depth == 0) return j;
    }
  }
  return toks.size();
}

/// Collects the `A::B::name` identifier chain ending at token `end`
/// (inclusive). Returns the joined name and sets `*begin` to the chain's
/// first token index. Empty result if `end` is not an identifier.
std::string collect_name_chain_back(const std::vector<Token>& toks,
                                    std::size_t end, std::size_t* begin) {
  if (!is_ident(toks[end])) return {};
  std::size_t first = end;
  while (first >= 2 && is_punct(toks[first - 1], "::") &&
         is_ident(toks[first - 2])) {
    first -= 2;
  }
  std::string name;
  for (std::size_t j = first; j <= end; ++j) name += toks[j].text;
  *begin = first;
  return name;
}

/// Given the index of a body-opening `{`, determines whether it opens a
/// function definition and if so returns its (possibly qualified) name.
/// Handles constructor init lists by walking back over `, member(expr)`
/// items to the parameter list. Returns "" for non-function braces
/// (classes, namespaces, init lists, control statements, lambdas).
std::string function_name_before(const std::vector<Token>& toks,
                                 std::size_t brace) {
  if (brace == 0) return {};
  std::size_t j = brace - 1;
  while (j > 0 && is_declarator_suffix(toks[j])) --j;
  // Walk back through constructor init-list items: name(args) [, ...]* : params)
  for (int hops = 0; hops < 256; ++hops) {
    if (!is_punct(toks[j], ")")) return {};
    std::size_t open = match_back_paren(toks, j);
    if (open == static_cast<std::size_t>(-1) || open == 0) return {};
    std::size_t begin = 0;
    std::string name = collect_name_chain_back(toks, open - 1, &begin);
    if (name.empty()) return {};
    if (is_control_keyword(toks[begin].text)) return {};
    if (begin == 0) return name;
    const Token& prev = toks[begin - 1];
    if (is_punct(prev, ",") || is_punct(prev, ":")) {
      // Init-list member; the function head is further back. A `::`
      // already folded into the chain, so a single `:` here is the
      // ctor-init-list introducer and `,` separates members.
      if (begin < 2) return {};
      j = begin - 2;
      while (j > 0 && is_declarator_suffix(toks[j])) --j;
      continue;
    }
    return name;
  }
  return {};
}

/// Builds the receiver chain (`cfg.trace`, `rng_`, `ns::obj.rng`) ending
/// just before the separator at index `sep`. Returns "<expr>" when the
/// receiver is not a plain identifier chain.
std::string receiver_chain(const std::vector<Token>& toks, std::size_t sep) {
  if (sep == 0 || !is_ident(toks[sep - 1])) return "<expr>";
  std::string out = toks[sep - 1].text;
  std::size_t j = sep - 1;
  while (j >= 2 &&
         (is_punct(toks[j - 1], ".") || is_punct(toks[j - 1], "->") ||
          is_punct(toks[j - 1], "::")) &&
        is_ident(toks[j - 2])) {
    out = toks[j - 2].text + toks[j - 1].text + out;
    j -= 2;
  }
  return out;
}

/// Mutating container/engine methods: a call through a member chain whose
/// final method is in this set counts as a *write* to the head member.
bool is_mutating_method(std::string_view m) {
  return m == "begin_slot" || m == "end_slot" || m == "wake" ||
         m == "set_autosleep" || m == "clear" || m == "push_back" ||
         m == "emplace_back" || m == "pop_back" || m == "assign" ||
         m == "resize" || m == "reset" || m == "insert" || m == "erase" ||
         m == "next" || m == "next_below" || m == "bernoulli" ||
         m == "coin" || m == "split" || m == "swap" || m == "record" ||
         m == "advance" || m == "step";
}

}  // namespace

FileFacts extract_facts(const LexedFile& f) {
  FileFacts out;
  out.path = f.path;
  out.includes = f.includes;
  const auto& toks = f.tokens;

  // -- Pass 1: function definition spans ------------------------------------
  struct OpenScope {
    std::size_t func_index;  // index into out.functions, or SIZE_MAX
    int depth;
  };
  std::vector<OpenScope> open;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) {
      ++depth;
      std::string name = function_name_before(toks, i);
      if (!name.empty()) {
        FunctionFact fn;
        fn.name = std::move(name);
        fn.line = toks[i].line;
        fn.body_begin = i + 1;
        fn.body_end = toks.size();
        out.functions.push_back(std::move(fn));
        open.push_back({out.functions.size() - 1, depth});
      }
    } else if (is_punct(toks[i], "}")) {
      if (!open.empty() && open.back().depth == depth) {
        out.functions[open.back().func_index].body_end = i;
        open.pop_back();
      }
      --depth;
    }
  }

  // Innermost enclosing function for a token index (functions are sorted
  // by body_begin; the last span containing idx wins).
  auto function_at = [&](std::size_t idx) -> const FunctionFact* {
    const FunctionFact* best = nullptr;
    for (const auto& fn : out.functions) {
      if (fn.body_begin > idx) break;
      if (idx < fn.body_end) best = &fn;
    }
    return best;
  };
  auto function_name_at = [&](std::size_t idx) -> std::string {
    const FunctionFact* fn = function_at(idx);
    return fn ? fn->name : std::string{};
  };

  // -- Pass 2: everything else ----------------------------------------------
  const bool radio_members = in_dir(f.path, "src/radio");
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // split(tag) call sites: IDENT "split" preceded by . or -> and
    // followed by "(".
    if (is_ident(t, "split") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") && i > 0 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      std::size_t close = match_forward(toks, i + 1, "(", ")");
      if (close < toks.size()) {
        SplitFact s;
        s.receiver = receiver_chain(toks, i - 1);
        s.line = t.line;
        s.function = function_name_at(i);
        bool has_args = close > i + 2;
        std::size_t nargs = close - (i + 2);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (!s.tag_expr.empty()) s.tag_expr += ' ';
          s.tag_expr += toks[j].text;
          if (is_ident(toks[j]) && j + 1 < close &&
              is_punct(toks[j + 1], "(")) {
            s.tag_has_call = true;
          }
        }
        if (has_args) {
          if (nargs == 1 && toks[i + 2].kind == Token::Kind::kNumber) {
            s.tag_is_literal = true;
            s.resolved = parse_int_literal(toks[i + 2].text, &s.value);
          } else {
            // A pure `A::B::kName` chain?
            bool chain = true;
            for (std::size_t j = i + 2; j < close; ++j) {
              bool even = ((j - (i + 2)) % 2) == 0;
              if (even ? !is_ident(toks[j]) : !is_punct(toks[j], "::")) {
                chain = false;
                break;
              }
            }
            if (chain && is_ident(toks[close - 1])) s.tag_is_name = true;
          }
          out.splits.push_back(std::move(s));
        }
      }
    }

    // Rng constructions: `Rng(args)` or `Rng name(args)`.
    if (is_ident(t, "Rng") && !(i > 0 && is_punct(toks[i - 1], "::")) &&
        !(i + 1 < toks.size() && is_punct(toks[i + 1], "::"))) {
      std::size_t paren = static_cast<std::size_t>(-1);
      if (i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
        paren = i + 1;  // temporary: Rng(0xCA97)
      } else if (i + 2 < toks.size() && is_ident(toks[i + 1]) &&
                 is_punct(toks[i + 2], "(")) {
        paren = i + 2;  // declaration: Rng master(seed)
      }
      // Skip the class definition itself and declarations like
      // `Rng split(std::uint64_t tag)` — i.e. parameter lists that
      // declare types. Heuristic: an argument list containing a type
      // keyword chain ending in an identifier-identifier pair is a
      // declaration; simpler and sufficient here: skip when the list
      // contains the token `uint64_t` or `Rng`.
      if (paren != static_cast<std::size_t>(-1)) {
        std::size_t close = match_forward(toks, paren, "(", ")");
        if (close < toks.size() && close > paren + 1) {
          bool is_decl_params = false;
          for (std::size_t j = paren + 1; j < close; ++j) {
            if (is_ident(toks[j], "uint64_t") || is_ident(toks[j], "Rng") ||
                is_ident(toks[j], "uint32_t") || is_ident(toks[j], "size_t")) {
              is_decl_params = true;
              break;
            }
          }
          if (!is_decl_params) {
            RngCtorFact c;
            c.line = t.line;
            c.function = function_name_at(i);
            for (std::size_t j = paren + 1; j < close; ++j) {
              if (!c.arg_expr.empty()) c.arg_expr += ' ';
              c.arg_expr += toks[j].text;
            }
            if (close == paren + 2 &&
                toks[paren + 1].kind == Token::Kind::kNumber) {
              c.literal_seed = parse_int_literal(toks[paren + 1].text, &c.value);
            }
            out.rng_ctors.push_back(std::move(c));
          }
        }
      }
    }

    // constexpr constants: `constexpr ... NAME = <number> ;`
    if (is_ident(t, "constexpr")) {
      // Find the `=` before the next `;` at this nesting level.
      for (std::size_t j = i + 1; j + 2 < toks.size() && j < i + 12; ++j) {
        if (is_punct(toks[j], ";") || is_punct(toks[j], "{") ||
            is_punct(toks[j], "(")) {
          break;
        }
        if (is_punct(toks[j], "=") && is_ident(toks[j - 1]) &&
            toks[j + 1].kind == Token::Kind::kNumber &&
            is_punct(toks[j + 2], ";")) {
          TagConstFact k;
          k.name = toks[j - 1].text;
          k.line = toks[j - 1].line;
          if (parse_int_literal(toks[j + 1].text, &k.value)) {
            out.tag_consts.push_back(std::move(k));
          }
          break;
        }
      }
    }

    // Pointer field declarations: IDENT * IDENT [= nullptr] (; , ) })
    if (is_ident(t) && i + 2 < toks.size() && is_punct(toks[i + 1], "*") &&
        is_ident(toks[i + 2])) {
      std::size_t after = i + 3;
      PointerFieldFact p;
      p.type = t.text;
      p.name = toks[i + 2].text;
      p.line = toks[i + 2].line;
      if (after + 1 < toks.size() && is_punct(toks[after], "=") &&
          is_ident(toks[after + 1], "nullptr")) {
        p.null_default = true;
        out.pointer_fields.push_back(std::move(p));
      } else if (after < toks.size() &&
                 (is_punct(toks[after], ";") || is_punct(toks[after], ",") ||
                  is_punct(toks[after], ")") || is_punct(toks[after], "="))) {
        out.pointer_fields.push_back(std::move(p));
      }
    }

    // Member accesses (src/radio only): trailing-underscore identifiers
    // at the head of an access chain, inside a function body.
    if (radio_members && is_ident(t) && t.text.size() > 1 &&
        t.text.back() == '_' ) {
      const FunctionFact* fn = function_at(i);
      if (fn == nullptr) continue;
      // Chain head only: not preceded by `.`/`->`/`::`, and not a
      // declaration (preceded by an identifier or `>`/`*`/`&` type tail
      // is still ambiguous; declarations inside bodies are rare and
      // harmless for the report).
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                    is_punct(toks[i - 1], "::"))) {
        continue;
      }
      MemberAccessFact m;
      m.member = t.text;
      m.line = t.line;
      m.function = fn->name;

      // Pre-increment / pre-decrement: ++x_ / --x_ (lexed as two puncts).
      bool pre_mutate = i >= 2 &&
                        ((is_punct(toks[i - 1], "+") && is_punct(toks[i - 2], "+")) ||
                         (is_punct(toks[i - 1], "-") && is_punct(toks[i - 2], "-")));

      // Walk the access chain forward: [idx]* ( . | -> ident )* tail.
      std::size_t j = i + 1;
      std::string last_method;
      bool chain_call = false;
      while (j < toks.size()) {
        if (is_punct(toks[j], "[")) {
          std::size_t close = match_forward(toks, j, "[", "]");
          if (close >= toks.size()) break;
          j = close + 1;
          continue;
        }
        if ((is_punct(toks[j], ".") || is_punct(toks[j], "->")) &&
            j + 1 < toks.size() && is_ident(toks[j + 1])) {
          last_method = toks[j + 1].text;
          j += 2;
          if (j < toks.size() && is_punct(toks[j], "(")) {
            chain_call = true;
            std::size_t close = match_forward(toks, j, "(", ")");
            if (close >= toks.size()) break;
            j = close + 1;
            // the chain may continue: a.b().c = ...
            continue;
          }
          continue;
        }
        break;
      }
      std::string tail = j < toks.size() ? toks[j].text : std::string{};
      bool assign =
          j < toks.size() &&
          toks[j].kind == Token::Kind::kPunct &&
          (tail == "=" || tail == "+=" || tail == "-=" ||
           ((tail == "|" || tail == "&" || tail == "^" || tail == "*" ||
             tail == "/" || tail == "%") &&
            j + 1 < toks.size() && is_punct(toks[j + 1], "=")));
      // Post-increment: x_++ (two puncts).
      bool post_mutate = j + 1 < toks.size() &&
                         ((is_punct(toks[j], "+") && is_punct(toks[j + 1], "+")) ||
                          (is_punct(toks[j], "-") && is_punct(toks[j + 1], "-")));
      if (tail == "==") assign = false;

      if (pre_mutate || post_mutate || assign) {
        m.access = "write";
      } else if (chain_call) {
        m.access = is_mutating_method(last_method) ? "write" : "call";
      } else {
        m.access = "read";
      }
      out.member_accesses.push_back(std::move(m));
    }
  }
  return out;
}

FactsDb build_facts(const std::vector<LexedFile>& lexed) {
  FactsDb db;
  db.files.reserve(lexed.size());
  for (const auto& f : lexed) db.files.push_back(extract_facts(f));

  // Cross-TU tag resolution: map every named constant to its value, then
  // resolve `split(kName)` / `split(ns::kName)` sites. Ambiguous names
  // (same identifier, different values in different TUs) stay unresolved
  // rather than guessing.
  std::map<std::string, std::pair<std::uint64_t, int>> consts;  // name -> (value, defs)
  for (const auto& f : db.files) {
    for (const auto& k : f.tag_consts) {
      auto it = consts.find(k.name);
      if (it == consts.end()) {
        consts.emplace(k.name, std::make_pair(k.value, 1));
      } else if (it->second.first != k.value) {
        ++it->second.second;
      }
    }
  }
  for (auto& f : db.files) {
    for (auto& s : f.splits) {
      if (!s.tag_is_name) continue;
      auto pos = s.tag_expr.rfind(' ');
      std::string leaf =
          pos == std::string::npos ? s.tag_expr : s.tag_expr.substr(pos + 1);
      auto it = consts.find(leaf);
      if (it != consts.end() && it->second.second == 1) {
        s.resolved = true;
        s.value = it->second.first;
      }
    }
  }
  return db;
}

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

void write_facts_json(std::ostream& os, const FactsDb& db) {
  os << "{\n  \"schema\": \"radiomc.facts/v1\",\n  \"files\": [";
  bool first_file = true;
  for (const auto& f : db.files) {
    if (!first_file) os << ",";
    first_file = false;
    os << "\n    {\"path\": \"" << json_escape(f.path) << "\"";
    auto list = [&](const char* key, auto const& items, auto&& emit) {
      if (items.empty()) return;
      os << ",\n     \"" << key << "\": [";
      bool first = true;
      for (const auto& item : items) {
        if (!first) os << ", ";
        first = false;
        emit(item);
      }
      os << "]";
    };
    list("includes", f.includes, [&](const IncludeDirective& inc) {
      os << "{\"path\": \"" << json_escape(inc.path)
         << "\", \"line\": " << inc.line
         << ", \"angled\": " << (inc.angled ? "true" : "false") << "}";
    });
    list("functions", f.functions, [&](const FunctionFact& fn) {
      os << "{\"name\": \"" << json_escape(fn.name)
         << "\", \"line\": " << fn.line << "}";
    });
    list("splits", f.splits, [&](const SplitFact& s) {
      os << "{\"receiver\": \"" << json_escape(s.receiver)
         << "\", \"tag\": \"" << json_escape(s.tag_expr) << "\", \"kind\": \""
         << (s.tag_is_literal ? "literal"
                              : (s.tag_is_name ? "name"
                                               : (s.tag_has_call ? "call"
                                                                 : "expr")))
         << "\"";
      if (s.resolved) os << ", \"value\": \"" << hex64(s.value) << "\"";
      os << ", \"line\": " << s.line;
      if (!s.function.empty()) {
        os << ", \"function\": \"" << json_escape(s.function) << "\"";
      }
      os << "}";
    });
    list("rng_ctors", f.rng_ctors, [&](const RngCtorFact& c) {
      os << "{\"arg\": \"" << json_escape(c.arg_expr) << "\", \"literal\": "
         << (c.literal_seed ? "true" : "false");
      if (c.literal_seed) os << ", \"value\": \"" << hex64(c.value) << "\"";
      os << ", \"line\": " << c.line << "}";
    });
    list("tag_constants", f.tag_consts, [&](const TagConstFact& k) {
      os << "{\"name\": \"" << json_escape(k.name) << "\", \"value\": \""
         << hex64(k.value) << "\", \"line\": " << k.line << "}";
    });
    list("pointer_fields", f.pointer_fields, [&](const PointerFieldFact& p) {
      os << "{\"type\": \"" << json_escape(p.type) << "\", \"name\": \""
         << json_escape(p.name)
         << "\", \"null_default\": " << (p.null_default ? "true" : "false")
         << "}";
    });
    list("member_accesses", f.member_accesses, [&](const MemberAccessFact& m) {
      os << "{\"member\": \"" << json_escape(m.member) << "\", \"access\": \""
         << m.access << "\", \"line\": " << m.line << ", \"function\": \""
         << json_escape(m.function) << "\"}";
    });
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace radiomc::lint
