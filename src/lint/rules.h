#pragma once

// radiomc_lint rule engine.
//
// Each rule enforces one project invariant as a named, individually
// waivable check (see docs/STATIC_ANALYSIS.md for the catalog). Rules run
// over the lexed token streams of src/lint/lexer.h, so comments and
// string literals cannot produce false positives. Since PR 10 the engine
// is two-stage: every file is tokenized exactly once, a facts pass
// (src/lint/facts.h) extracts per-file facts into a cross-TU database,
// and both the token-level rules and the semantic analyses (layer-dag,
// rng-stream-audit, shard-safety, the flow-aware hub-null-check) consume
// that single pass.
//
// Waivers: a finding on line L is suppressed by a comment on line L or
// L-1 carrying the `radiomc-lint:` marker followed by an
// allow(rule-id) clause and an optional reason=free-text tail (the two
// parts must share one comment; see docs/STATIC_ANALYSIS.md for examples).
// Waived findings are still reported (with their reason) but do not fail
// the run; a waiver that suppresses nothing is itself a finding
// (`unused-waiver`), so stale waivers cannot rot in the tree. Findings
// against the `.lint-layers` manifest itself (parse errors, declared-graph
// cycles) are not waivable — the manifest is the contract.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/facts.h"

namespace radiomc::lint {

struct SourceFile {
  std::string path;     ///< repo-relative or absolute; rules match suffixes
  std::string content;  ///< full file text
};

struct Finding {
  std::string rule;     ///< rule id, e.g. "no-raw-random"
  std::string file;
  int line = 0;
  std::string message;
  bool waived = false;
  std::string waiver_reason;  ///< nonempty iff waived and a reason was given
};

struct RuleInfo {
  std::string_view id;
  std::string_view family;  ///< determinism | model-purity | perf-purity |
                            ///< telemetry | exhaustiveness | sharding | hygiene
  std::string_view summary;
};

/// The full rule catalog, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

struct LintOptions {
  /// When nonempty, only these rule ids run (unknown ids are ignored here;
  /// the CLI validates them first and suggests near matches).
  std::vector<std::string> only_rules;
  /// Contents of the layer manifest. Empty disables the layer-dag
  /// analysis (so fixture runs without a manifest are unaffected).
  std::string layers_manifest;
  /// Name the manifest's own findings are reported against.
  std::string layers_manifest_name = ".lint-layers";
};

/// One row of the shard_safety section of the radiomc.lint/v2 report
/// (produced by the shard-safety analysis in src/lint/semantic.h).
struct ShardSafetyRow {
  std::string owner;           ///< "RadioNetwork" | "ActiveSet"
  std::string member;
  std::string access;          ///< "read" | "write" | "call" | "read+write" ...
  std::string classification;  ///< shard-local | barrier-mergeable |
                               ///< order-sensitive | read-only | unclassified
  std::string rationale;
  std::string file;
  int line = 0;   ///< first access site
  int sites = 0;  ///< total access sites in the slot loop
};

/// One entry of the rng_streams section: a named split tag.
struct TagInventoryEntry {
  std::string name;
  std::uint64_t value = 0;
  std::string file;
  int line = 0;
};

/// Everything one analyzer run produces: findings plus the structured
/// sections of the radiomc.lint/v2 report.
struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<ShardSafetyRow> shard_safety;
  std::vector<TagInventoryEntry> rng_tags;
  std::size_t split_sites = 0;
  std::size_t files_scanned = 0;
  std::size_t layers_declared = 0;
  std::size_t layer_edges_declared = 0;
  /// The stage-one database (each file tokenized exactly once), kept so
  /// callers (`--facts-out`) can serialize it without re-lexing.
  FactsDb facts;
};

/// Runs every (selected) rule and semantic analysis over `files`. Each
/// file is lexed exactly once; findings — waived ones included — come
/// back sorted by (file, line, rule).
AnalysisResult run_analyses(const std::vector<SourceFile>& files,
                            const LintOptions& opt = {});

/// Compatibility wrapper: findings only.
std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LintOptions& opt = {});

/// Unwaived findings only (what the CLI exits nonzero on).
std::size_t count_unwaived(const std::vector<Finding>& findings);

}  // namespace radiomc::lint
