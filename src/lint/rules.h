#pragma once

// radiomc_lint rule engine.
//
// Each rule enforces one project invariant as a named, individually
// waivable check (see docs/STATIC_ANALYSIS.md for the catalog). Rules run
// over the lexed token streams of src/lint/lexer.h, so comments and
// string literals cannot produce false positives, and a few rules are
// cross-file (the trace kind table, the telemetry-pointer field set).
//
// Waivers: a finding on line L is suppressed by a comment on line L or
// L-1 carrying the `radiomc-lint:` marker followed by an
// allow(rule-id) clause and an optional reason=free-text tail (the two
// parts must share one comment; see docs/STATIC_ANALYSIS.md for examples).
// Waived findings are still reported (with their reason) but do not fail
// the run; a waiver that suppresses nothing is itself a finding
// (`unused-waiver`), so stale waivers cannot rot in the tree.

#include <string>
#include <string_view>
#include <vector>

namespace radiomc::lint {

struct SourceFile {
  std::string path;     ///< repo-relative or absolute; rules match suffixes
  std::string content;  ///< full file text
};

struct Finding {
  std::string rule;     ///< rule id, e.g. "no-raw-random"
  std::string file;
  int line = 0;
  std::string message;
  bool waived = false;
  std::string waiver_reason;  ///< nonempty iff waived and a reason was given
};

struct RuleInfo {
  std::string_view id;
  std::string_view family;  ///< determinism | model-purity | perf-purity | telemetry | exhaustiveness | hygiene
  std::string_view summary;
};

/// The full rule catalog, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

struct LintOptions {
  /// When nonempty, only these rule ids run (unknown ids are ignored).
  std::vector<std::string> only_rules;
};

/// Runs every (selected) rule over `files` and returns all findings —
/// waived ones included — sorted by (file, line, rule).
std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LintOptions& opt = {});

/// Unwaived findings only (what the CLI exits nonzero on).
std::size_t count_unwaived(const std::vector<Finding>& findings);

}  // namespace radiomc::lint
