#include "lint/runner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace radiomc::lint {

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.starts_with("build") || name.starts_with(".") ||
         name == "third_party";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<SourceFile> load_tree(const std::vector<std::string>& roots) {
  std::vector<SourceFile> out;
  for (const std::string& root : roots) {
    const fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      out.push_back({rp.generic_string(), read_file(rp)});
      continue;
    }
    if (!fs::is_directory(rp)) continue;
    fs::recursive_directory_iterator it(
        rp, fs::directory_options::skip_permission_denied);
    for (const auto& entry : it) {
      if (entry.is_directory() && skip_dir(entry.path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file() && lintable(entry.path()))
        out.push_back({entry.path().generic_string(), read_file(entry.path())});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return out;
}

void print_findings(std::ostream& os, const std::vector<Finding>& findings,
                    bool show_waived) {
  for (const Finding& f : findings) {
    if (f.waived && !show_waived) continue;
    os << f.file << ':' << f.line << ": [" << f.rule << "]";
    if (f.waived) {
      os << " waived";
      if (!f.waiver_reason.empty()) os << " (" << f.waiver_reason << ")";
    }
    os << ' ' << f.message << '\n';
  }
}

void write_json_report(std::ostream& os, const std::vector<Finding>& findings,
                       std::size_t files_scanned) {
  const std::size_t unwaived = count_unwaived(findings);
  os << "{\"schema\":\"radiomc.lint/v1\",\"files_scanned\":" << files_scanned
     << ",\"total\":" << findings.size() << ",\"unwaived\":" << unwaived
     << ",\"findings\":[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":\"" << json_escape(f.rule) << "\",\"file\":\""
       << json_escape(f.file) << "\",\"line\":" << f.line << ",\"message\":\""
       << json_escape(f.message) << "\",\"waived\":"
       << (f.waived ? "true" : "false");
    if (f.waived && !f.waiver_reason.empty())
      os << ",\"reason\":\"" << json_escape(f.waiver_reason) << "\"";
    os << '}';
  }
  os << "]}\n";
}

}  // namespace radiomc::lint
