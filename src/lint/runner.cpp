#include "lint/runner.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "lint/facts.h"  // json_escape

namespace radiomc::lint {

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.starts_with("build") || name.starts_with(".") ||
         name == "third_party";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

std::vector<SourceFile> load_tree(const std::vector<std::string>& roots) {
  std::vector<SourceFile> out;
  for (const std::string& root : roots) {
    const fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      out.push_back({rp.generic_string(), read_file(rp)});
      continue;
    }
    if (!fs::is_directory(rp)) continue;
    fs::recursive_directory_iterator it(
        rp, fs::directory_options::skip_permission_denied);
    for (const auto& entry : it) {
      if (entry.is_directory() && skip_dir(entry.path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file() && lintable(entry.path()))
        out.push_back({entry.path().generic_string(), read_file(entry.path())});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return out;
}

void print_findings(std::ostream& os, const std::vector<Finding>& findings,
                    bool show_waived) {
  for (const Finding& f : findings) {
    if (f.waived && !show_waived) continue;
    os << f.file << ':' << f.line << ": [" << f.rule << "]";
    if (f.waived) {
      os << " waived";
      if (!f.waiver_reason.empty()) os << " (" << f.waiver_reason << ")";
    }
    os << ' ' << f.message << '\n';
  }
}

void write_json_report(std::ostream& os, const AnalysisResult& result,
                       double wall_ms) {
  const std::vector<Finding>& findings = result.findings;
  const std::size_t unwaived = count_unwaived(findings);
  os << "{\"schema\":\"radiomc.lint/v2\",\"findings\":[";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":\"" << json_escape(f.rule) << "\",\"file\":\""
       << json_escape(f.file) << "\",\"line\":" << f.line << ",\"message\":\""
       << json_escape(f.message) << "\",\"waived\":"
       << (f.waived ? "true" : "false");
    if (f.waived && !f.waiver_reason.empty())
      os << ",\"reason\":\"" << json_escape(f.waiver_reason) << "\"";
    os << '}';
  }
  os << "],\"shard_safety\":[";
  first = true;
  for (const ShardSafetyRow& r : result.shard_safety) {
    if (!first) os << ',';
    first = false;
    os << "{\"owner\":\"" << json_escape(r.owner) << "\",\"member\":\""
       << json_escape(r.member) << "\",\"access\":\"" << json_escape(r.access)
       << "\",\"class\":\"" << json_escape(r.classification)
       << "\",\"rationale\":\"" << json_escape(r.rationale) << "\",\"file\":\""
       << json_escape(r.file) << "\",\"line\":" << r.line
       << ",\"sites\":" << r.sites << '}';
  }
  os << "],\"rng_streams\":{\"split_sites\":" << result.split_sites
     << ",\"tags\":[";
  first = true;
  for (const TagInventoryEntry& t : result.rng_tags) {
    if (!first) os << ',';
    first = false;
    char hex[32];
    std::snprintf(hex, sizeof hex, "0x%llx",
                  static_cast<unsigned long long>(t.value));
    os << "{\"name\":\"" << json_escape(t.name) << "\",\"value\":\"" << hex
       << "\",\"file\":\"" << json_escape(t.file) << "\",\"line\":" << t.line
       << '}';
  }
  os << "]},\"layers\":{\"declared\":" << result.layers_declared
     << ",\"edges\":" << result.layer_edges_declared << '}';
  char wall[32];
  std::snprintf(wall, sizeof wall, "%.3f", wall_ms);
  os << ",\"footer\":{\"files_scanned\":" << result.files_scanned
     << ",\"total\":" << findings.size() << ",\"unwaived\":" << unwaived
     << ",\"waived\":" << findings.size() - unwaived
     << ",\"wall_ms\":" << wall << "}}\n";
}

}  // namespace radiomc::lint
