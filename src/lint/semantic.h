#pragma once

// Stage-two semantic analyses over the cross-TU facts database
// (src/lint/facts.h): the checks that need to see the whole tree at once.
//
//   * rng-stream-audit — the global Rng::split tag inventory. Two child
//     streams split from the same parent with the same tag are
//     byte-identical, not independent; a bare literal tag cannot be
//     proven distinct from a tag three files away. The audit fails on
//     same-parent duplicate tags, bare literal tags in src/ (name them in
//     support/rng_tags.h), call-computed tags on deterministic paths,
//     value collisions inside the registry, and fixed-literal-seed Rng
//     construction outside support/rng.*.
//
//   * shard-safety — the machine-checked precondition for the ROADMAP's
//     intra-trial sharded engine: every RadioNetwork/ActiveSet member
//     touched inside the slot loop must carry a classification
//     (shard-local / barrier-mergeable / order-sensitive / read-only)
//     with a merge rationale. An unclassified member is a finding, so
//     the classification table cannot silently fall behind the engine.
//
//   * hub-null-check (flow-aware) — replaces the PR 5 guard-frame
//     heuristic with per-branch guard tracking: guards live in the
//     branch that established them, `if (!p) return;` promotes the
//     guarantee past the early return, and `if (!p) { p->f(); }` is now
//     caught (the old heuristic treated any mention of `!p` as a guard).
//
// The layer-dag analysis lives in src/lint/layers.h.

#include <set>
#include <string>
#include <vector>

#include "lint/facts.h"
#include "lint/rules.h"

namespace radiomc::lint {

/// Directories whose behavior must be a pure function of the seed (shared
/// with the unordered-container rule in rules.cpp).
bool in_deterministic_zone(std::string_view path);

// ShardSafetyRow and TagInventoryEntry live in rules.h (they are part of
// AnalysisResult, the engine's public output).

/// Runs the RNG stream audit. Named tags are appended to `inventory`
/// (sorted by value) for the v2 report.
void analyze_rng_streams(const FactsDb& facts, std::vector<Finding>* out,
                         std::vector<TagInventoryEntry>* inventory);

/// Counts every split call site in src/ (for the v2 report).
std::size_t count_split_sites(const FactsDb& facts);

/// Runs the shard-safety classification. Rows for every touched member are
/// appended to `rows`; unclassified members (and, once enough of an owner's
/// members are observed, stale table entries) become findings.
void analyze_shard_safety(const FactsDb& facts, std::vector<Finding>* out,
                          std::vector<ShardSafetyRow>* rows);

/// Flow-aware hub-null-check over one file. `global_fields` is the
/// cross-TU set of optional-hook field names (facts pointer_fields with
/// hub types and `= nullptr`).
void analyze_hub_null_check(const LexedFile& f,
                            const std::set<std::string>& global_fields,
                            std::vector<Finding>* out);

/// The hub pointer type names (`TelemetryHub`, `TraceSink`, ...), shared
/// between the analysis and the facts-driven field collection.
bool is_hub_pointer_type(std::string_view type);

}  // namespace radiomc::lint
