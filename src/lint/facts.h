#pragma once

// Stage one of the semantic analyzer: per-file *facts* extracted from the
// lexer's token stream (src/lint/lexer.h).
//
// The token-level rules of PR 5/6 see one file at a time; the invariants
// the ROADMAP's sharded-engine and protocol-plurality items depend on are
// cross-translation-unit properties — a split tag declared in one file and
// colliding with a tag in another, an include edge that closes a layer
// cycle three directories away. So the analyzer is two-stage: this pass
// walks each token stream exactly once and records everything the
// cross-TU analyses (src/lint/semantic.h, src/lint/layers.h) need, as
// plain data that can also be serialized (`radiomc_lint --facts-out`) for
// offline inspection.
//
// Like the lexer, extraction is total: any token stream produces facts,
// never an error. It is a heuristic parse (no preprocessing, no name
// lookup), tuned to this repo's idioms and pinned by fixtures in
// tests/lint_test.cpp.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace radiomc::lint {

// ---------------------------------------------------------------------------
// Path helpers shared by every pass (rules match directory suffixes so the
// tool works on absolute paths, repo-relative paths and fixture names).
// ---------------------------------------------------------------------------

/// True iff `path` contains `dir` as a complete path-component prefix
/// somewhere, e.g. in_dir("/root/repo/src/protocols/x.cpp", "src/protocols").
bool in_dir(std::string_view path, std::string_view dir);
std::string_view basename_of(std::string_view path);
bool is_header(std::string_view path);

/// Minimal JSON string escaping shared by every report writer in the
/// linter (findings, facts, the v2 report).
std::string json_escape(const std::string& s);

// ---------------------------------------------------------------------------
// Facts.
// ---------------------------------------------------------------------------

/// A function (or member-function) definition: `name` is the qualified
/// declarator chain as written (`RadioNetwork::step`), and
/// [body_begin, body_end) is the token span of its brace body.
struct FunctionFact {
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// One `<receiver>.split(<tag>)` / `-><tag>` call site.
struct SplitFact {
  std::string receiver;  ///< ident chain before .split; "<expr>" if complex
  std::string tag_expr;  ///< the argument tokens, space-joined
  bool tag_is_literal = false;  ///< argument is a single integer literal
  bool tag_is_name = false;     ///< argument is one (possibly ::-qualified) identifier
  bool tag_has_call = false;    ///< argument contains a function call
  bool resolved = false;        ///< value holds the constant tag
  std::uint64_t value = 0;
  int line = 0;
  std::string function;  ///< enclosing definition; empty at file/class scope
};

/// An `Rng x(<arg>)` / `Rng(<arg>)` construction.
struct RngCtorFact {
  std::string arg_expr;
  bool literal_seed = false;  ///< argument is a single integer literal
  std::uint64_t value = 0;    ///< valid iff literal_seed
  int line = 0;
  std::string function;
};

/// A `constexpr ... kName = <integer literal>;` definition — the raw
/// material of the split-tag registry (support/rng_tags.h).
struct TagConstFact {
  std::string name;
  std::uint64_t value = 0;
  int line = 0;
};

/// A `Type* name = nullptr` member/field declaration (the optional-
/// observability idiom) plus plain `Type* name` declarations, so the
/// hub-null-check pass can build its cross-TU field set and per-file
/// shadowing set without re-walking tokens.
struct PointerFieldFact {
  std::string type;
  std::string name;
  bool null_default = false;  ///< declared `= nullptr`
  int line = 0;
};

/// One access to a class member (trailing-underscore identifier) inside a
/// function body. Extracted only under src/radio — the shard-safety
/// analysis' scope — to keep the facts DB small.
struct MemberAccessFact {
  std::string member;
  std::string access;  ///< "read" | "write" | "call"
  int line = 0;
  std::string function;
};

/// Everything stage one knows about one translation unit.
struct FileFacts {
  std::string path;
  std::vector<IncludeDirective> includes;  ///< shared include extraction:
                                           ///< every include-family rule
                                           ///< reads this one vector
  std::vector<FunctionFact> functions;
  std::vector<SplitFact> splits;
  std::vector<RngCtorFact> rng_ctors;
  std::vector<TagConstFact> tag_consts;
  std::vector<PointerFieldFact> pointer_fields;
  std::vector<MemberAccessFact> member_accesses;
};

/// The cross-TU facts database, parallel to the lexed file list.
struct FactsDb {
  std::vector<FileFacts> files;
};

/// Extracts one file's facts from its token stream.
FileFacts extract_facts(const LexedFile& f);

/// Extracts facts for every lexed file, then resolves named split tags
/// against the global constant table (a tag `kFaultStream` used in one TU
/// and defined in another resolves here — the cross-TU step).
FactsDb build_facts(const std::vector<LexedFile>& lexed);

/// Serializes the database as the `radiomc.facts/v1` JSON document
/// (`radiomc_lint --facts-out`).
void write_facts_json(std::ostream& os, const FactsDb& db);

/// Parses a C++ integer literal token (decimal/hex/octal, u/l suffixes;
/// digit separators were already stripped by the lexer). Returns false on
/// floats and malformed text.
bool parse_int_literal(std::string_view text, std::uint64_t* out);

}  // namespace radiomc::lint
