#include "lint/rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "lint/facts.h"
#include "lint/layers.h"
#include "lint/lexer.h"
#include "lint/semantic.h"

namespace radiomc::lint {

namespace {

// Path helpers (in_dir / basename_of / is_header) live in lint/facts.h
// since PR 10 so every pass shares one copy.

bool is_rng_support(std::string_view path) {
  const std::string_view base = basename_of(path);
  return in_dir(path, "src/support") && (base == "rng.h" || base == "rng.cpp");
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

struct Waiver {
  int line = 0;
  std::string rule;
  std::string reason;
  bool used = false;
};

std::string trim(std::string s) {
  const auto issp = [](char c) { return c == ' ' || c == '\t'; };
  while (!s.empty() && issp(s.front())) s.erase(s.begin());
  while (!s.empty() && issp(s.back())) s.pop_back();
  return s;
}

std::vector<Waiver> parse_waivers(const LexedFile& f) {
  std::vector<Waiver> out;
  for (const Comment& c : f.comments) {
    const std::size_t tag = c.text.find("radiomc-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t open = c.text.find("allow(", tag);
    if (open == std::string::npos) continue;
    const std::size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    Waiver w;
    w.line = c.line;
    w.rule = trim(c.text.substr(open + 6, close - open - 6));
    const std::size_t reason = c.text.find("reason=", close);
    if (reason != std::string::npos)
      w.reason = trim(c.text.substr(reason + 7));
    out.push_back(std::move(w));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared token-walk helpers.
// ---------------------------------------------------------------------------

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

/// Emits one finding.
void report(std::vector<Finding>* out, std::string rule, const LexedFile& f,
            int line, std::string message) {
  out->push_back(
      {std::move(rule), f.path, line, std::move(message), false, {}});
}

// ---------------------------------------------------------------------------
// determinism / no-raw-random + no-wall-clock
// ---------------------------------------------------------------------------

/// Idents banned wherever they appear (their very mention means a
/// nondeterministic source was reached for).
const std::set<std::string_view> kBannedRandomTypes = {
    "random_device", "mt19937",      "mt19937_64", "default_random_engine",
    "minstd_rand",   "minstd_rand0", "knuth_b",    "random_shuffle"};

/// Idents banned as direct (possibly std::-qualified) calls.
const std::set<std::string_view> kBannedRandomCalls = {"rand", "srand",
                                                       "drand48", "srand48",
                                                       "lrand48"};

const std::set<std::string_view> kBannedClockTypes = {
    "system_clock", "high_resolution_clock", "steady_clock", "gettimeofday",
    "localtime",    "gmtime"};
const std::set<std::string_view> kBannedClockCalls = {"time", "clock"};

/// The one place clock identifiers are allowed: the sanctioned stopwatch
/// and the measurement layer built on it (see support/stopwatch.h).
bool is_clock_sanctioned(std::string_view path) {
  const std::string_view base = basename_of(path);
  if (in_dir(path, "src/support") &&
      (base == "stopwatch.h" || base == "stopwatch.cpp"))
    return true;
  return in_dir(path, "src/perf");
}

/// True when token i is a free or std::-qualified call of its name — i.e.
/// not a member access (`x.rand()`) and not qualified by a non-std scope.
bool is_free_or_std_call(const LexedFile& f, std::size_t i) {
  if (i + 1 >= f.tokens.size() || !is_punct(f.tokens[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = f.tokens[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::"))
    return i >= 2 && is_ident(f.tokens[i - 2], "std");
  // `PhaseClock clock(...)` / `const PhaseClock& clock() const` declare an
  // unrelated name; a preceding type identifier or declarator punctuation
  // means declaration, not call (`return` still heads a real call).
  if (prev.kind == Token::Kind::kIdent && prev.text != "return") return false;
  if (is_punct(prev, "&") || is_punct(prev, "*")) return false;
  return true;
}

void rule_banned_idents(const LexedFile& f, std::vector<Finding>* out) {
  if (!in_dir(f.path, "src")) return;
  const bool rng_impl = is_rng_support(f.path);
  const bool clock_ok = is_clock_sanctioned(f.path);
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (t.kind != Token::Kind::kIdent) continue;
    if (!rng_impl) {
      if (kBannedRandomTypes.count(t.text)) {
        report(out, "no-raw-random", f, t.line,
               "'" + t.text +
                   "' in src/: all randomness must flow from the run seed "
                   "through support/rng.h (Rng::split), or trials stop being "
                   "reproducible");
        continue;
      }
      if (kBannedRandomCalls.count(t.text) && is_free_or_std_call(f, i)) {
        report(out, "no-raw-random", f, t.line,
               "'" + t.text +
                   "()' in src/: use the seeded Rng from support/rng.h");
        continue;
      }
    }
    if (clock_ok) continue;
    if (kBannedClockTypes.count(t.text)) {
      report(out, "no-wall-clock", f, t.line,
             "'" + t.text +
                 "' in src/: wall-clock time is nondeterministic; simulated "
                 "time is SlotTime, and every real-time read must funnel "
                 "through support/stopwatch.h (the one audited clock)");
      continue;
    }
    if (kBannedClockCalls.count(t.text) && is_free_or_std_call(f, i)) {
      report(out, "no-wall-clock", f, t.line,
             "'" + t.text +
                 "()' in src/: wall-clock reads make runs irreproducible; "
                 "use support/stopwatch.h");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism / unordered-container
// ---------------------------------------------------------------------------

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void rule_unordered_container(const LexedFile& f, std::vector<Finding>* out) {
  if (!in_deterministic_zone(f.path)) return;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kIdent && kUnorderedTypes.count(t.text)) {
      report(out, "unordered-container", f, t.line,
             "std::" + t.text +
                 " on a deterministic path: iteration order is unspecified "
                 "and one range-for away from breaking byte-identical "
                 "trials; use an ordered container or a sorted drain, or "
                 "waive with a reason explaining why order can never leak");
    }
  }
}

// ---------------------------------------------------------------------------
// model-purity / engine-include + analysis-offline
//
// These remain as sharper, message-specific checks for their zones; the
// layer-dag analysis (lint/layers.h) covers the whole tree against the
// declared `.lint-layers` manifest. All three consume the shared include
// facts — no re-lex per rule.
// ---------------------------------------------------------------------------

/// The radio/ surface a protocol *header* may see. Stations are the model:
/// they observe the channel only through messages, slot structure and the
/// Station interfaces. Driver .cpp files may include radio/network.h to
/// host stations on the engine — the engine is the experimental apparatus,
/// not part of the per-node model.
const std::set<std::string_view> kProtocolRadioAllowlist = {
    "radio/message.h", "radio/station.h", "radio/schedule.h",
    "radio/trace.h",
    // The Waker handle is the station-visible half of the active-set
    // scheduler (a station may put *itself* to sleep and wake *itself*);
    // the engine-side container (radio/active_set.h) stays forbidden.
    "radio/waker.h"};

void rule_engine_include(const FileFacts& f, std::vector<Finding>* out) {
  if (!in_dir(f.path, "src/protocols") || !is_header(f.path)) return;
  for (const IncludeDirective& inc : f.includes) {
    if (inc.angled || !inc.path.starts_with("radio/")) continue;
    if (kProtocolRadioAllowlist.count(std::string_view(inc.path))) continue;
    out->push_back({"engine-include", f.path, inc.line,
                    "protocol header includes \"" + inc.path +
                        "\": station declarations may touch the channel only "
                        "via radio/station.h / radio/schedule.h; engine "
                        "access (RadioNetwork) belongs in the driver .cpp",
                    false,
                    {}});
  }
}

void rule_analysis_offline(const FileFacts& f, std::vector<Finding>* out) {
  if (!(in_dir(f.path, "src/protocols") || in_dir(f.path, "src/radio") ||
        in_dir(f.path, "src/faults") || in_dir(f.path, "src/baselines") ||
        in_dir(f.path, "src/telemetry") || in_dir(f.path, "src/service") ||
        in_dir(f.path, "src/health")))
    return;
  for (const IncludeDirective& inc : f.includes) {
    if (!inc.angled && inc.path.starts_with("analysis/")) {
      out->push_back({"analysis-offline", f.path, inc.line,
                      "includes \"" + inc.path +
                          "\": the trace auditor is offline-only — protocols "
                          "and the engine must never see src/analysis/, or a "
                          "protocol could base decisions on its own flight "
                          "recorder",
                      false,
                      {}});
    }
  }
}

// ---------------------------------------------------------------------------
// perf-purity / perf-purity-include + perf-purity-flow
//
// The measurement layer (src/perf/ on top of support/stopwatch.h) reads
// real clocks; simulation state must stay a pure function of the seed. Two
// directions are enforced statically: model *declarations* never see the
// measurement headers (drivers hold only a forward-declared
// perf::Profiler*), and timing *values* never appear in model code at all
// — the Profiler/PerfSpan surface a driver touches is write-only, so a
// measured nanosecond cannot flow into an Rng or a transmit decision.
// ---------------------------------------------------------------------------

void rule_perf_purity_include(const FileFacts& f, std::vector<Finding>* out) {
  // Protocol/baseline *headers* describe the model; src/radio and
  // src/faults are the deterministic apparatus under measurement. Driver
  // .cpp files in src/protocols may include perf/profiler.h to place
  // spans — that is the whole point of the forward-declaration idiom.
  const bool model_header =
      (in_dir(f.path, "src/protocols") || in_dir(f.path, "src/baselines") ||
       in_dir(f.path, "src/service") || in_dir(f.path, "src/health")) &&
      is_header(f.path);
  const bool engine_zone =
      in_dir(f.path, "src/radio") || in_dir(f.path, "src/faults");
  if (!model_header && !engine_zone) return;
  for (const IncludeDirective& inc : f.includes) {
    if (inc.angled) continue;
    if (inc.path.starts_with("perf/") || inc.path == "support/stopwatch.h") {
      out->push_back(
          {"perf-purity-include", f.path, inc.line,
           "includes \"" + inc.path +
               "\": the measurement layer must stay invisible to " +
               (model_header ? "protocol headers (forward-declare "
                               "perf::Profiler instead; only driver .cpp "
                               "files may include it)"
                             : "the engine (src/radio and src/faults "
                               "never time themselves)"),
           false,
           {}});
    }
  }
}

/// Identifiers that carry measured-time values. Their mention in model
/// code means a wall-clock quantity is in scope where it could steer the
/// simulation; Profiler / PerfSpan are deliberately absent (write-only).
const std::set<std::string_view> kTimingValueIdents = {
    "elapsed_ns",       "elapsed_ms",     "wall_ms",   "cpu_ms",
    "monotonic_now_ns", "process_cpu_ns", "Stopwatch", "ScopedTimer"};

void rule_perf_purity_flow(const LexedFile& f, std::vector<Finding>* out) {
  if (!(in_dir(f.path, "src/protocols") || in_dir(f.path, "src/radio") ||
        in_dir(f.path, "src/faults") || in_dir(f.path, "src/baselines") ||
        in_dir(f.path, "src/service") || in_dir(f.path, "src/health")))
    return;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kIdent && kTimingValueIdents.count(t.text)) {
      report(out, "perf-purity-flow", f, t.line,
             "'" + t.text +
                 "' in model code: measured time must never be readable "
                 "where simulation decisions are made — keep timing values "
                 "in src/perf/ and the drivers' write-only Profiler calls");
    }
  }
}

// ---------------------------------------------------------------------------
// telemetry / trace-kind-table (cross-file)
// ---------------------------------------------------------------------------

void rule_trace_kind_table(const std::vector<LexedFile>& files,
                           std::vector<Finding>* out) {
  const LexedFile* sink = nullptr;
  const LexedFile* table_file = nullptr;
  for (const LexedFile& f : files) {
    const std::string_view base = basename_of(f.path);
    if (base == "jsonl_sink.cpp") sink = &f;
    if (base == "trace_event.h") table_file = &f;
  }
  if (sink == nullptr) return;

  // Every `ev` kind the writer emits: member("ev", "<kind>") for structural
  // lines, event_line("<kind>", ...) for physical events.
  std::vector<std::pair<std::string, int>> emitted;
  const auto& tok = sink->tokens;
  for (std::size_t i = 0; i + 1 < tok.size(); ++i) {
    if (is_ident(tok[i], "member") && i + 4 < tok.size() &&
        is_punct(tok[i + 1], "(") &&
        tok[i + 2].kind == Token::Kind::kString && tok[i + 2].text == "ev" &&
        is_punct(tok[i + 3], ",") &&
        tok[i + 4].kind == Token::Kind::kString) {
      emitted.emplace_back(tok[i + 4].text, tok[i + 4].line);
    }
    if (is_ident(tok[i], "event_line") && i + 2 < tok.size() &&
        is_punct(tok[i + 1], "(") &&
        tok[i + 2].kind == Token::Kind::kString) {
      emitted.emplace_back(tok[i + 2].text, tok[i + 2].line);
    }
  }
  if (emitted.empty()) return;

  // The canonical kind table: kTraceLineKinds in analysis/trace_event.h.
  std::map<std::string, int> table;
  if (table_file != nullptr) {
    const auto& tt = table_file->tokens;
    for (std::size_t i = 0; i < tt.size(); ++i) {
      if (!is_ident(tt[i], "kTraceLineKinds")) continue;
      std::size_t j = i;
      while (j < tt.size() && !is_punct(tt[j], "{")) ++j;
      for (++j; j < tt.size() && !is_punct(tt[j], "}"); ++j) {
        if (tt[j].kind == Token::Kind::kString)
          table.emplace(tt[j].text, tt[j].line);
      }
      break;
    }
  }
  if (table.empty()) {
    report(out, "trace-kind-table", *sink, emitted.front().second,
           "jsonl_sink.cpp emits trace `ev` kinds but no kTraceLineKinds "
           "table was found in analysis/trace_event.h — the v2 schema has "
           "no source of truth to drift-check against");
    return;
  }

  std::set<std::string> used;
  for (const auto& [kind, line] : emitted) {
    used.insert(kind);
    if (!table.count(kind)) {
      report(out, "trace-kind-table", *sink, line,
             "trace line kind \"" + kind +
                 "\" is not in kTraceLineKinds (analysis/trace_event.h): "
                 "the writer and the v2 schema have drifted");
    }
  }
  for (const auto& [kind, line] : table) {
    if (!used.count(kind)) {
      report(out, "trace-kind-table", *table_file, line,
             "kTraceLineKinds entry \"" + kind +
                 "\" is never emitted by telemetry/jsonl_sink.cpp: stale "
                 "schema entry (or the writer lost a line kind)");
    }
  }
}

// ---------------------------------------------------------------------------
// exhaustiveness / switch-default
// ---------------------------------------------------------------------------

const std::set<std::string_view> kClosedEnums = {"RunStatus", "MsgKind",
                                                 "EvKind"};

/// Parses the switch whose `switch` keyword is at token i; returns the
/// index one past its closing `}` (or tokens.size()). Recurses into nested
/// switches so their labels are not attributed to the outer one.
std::size_t scan_switch(const LexedFile& f, std::size_t i,
                        std::vector<Finding>* out) {
  const auto& tok = f.tokens;
  std::size_t j = i + 1;
  while (j < tok.size() && !is_punct(tok[j], "{")) ++j;  // past (cond)
  if (j >= tok.size()) return tok.size();
  int depth = 1;
  bool watched = false;
  std::vector<int> default_lines;
  for (++j; j < tok.size() && depth > 0; ++j) {
    const Token& t = tok[j];
    if (is_punct(t, "{")) {
      ++depth;
    } else if (is_punct(t, "}")) {
      --depth;
    } else if (is_ident(t, "switch")) {
      j = scan_switch(f, j, out) - 1;  // nested switch: skip its body
    } else if (is_ident(t, "case")) {
      // Collect the scope qualifiers of the label (Foo::Bar::kBaz).
      std::size_t k = j + 1;
      while (k + 1 < tok.size() && tok[k].kind == Token::Kind::kIdent &&
             is_punct(tok[k + 1], "::")) {
        if (kClosedEnums.count(tok[k].text)) watched = true;
        k += 2;
      }
      j = k;
    } else if (is_ident(t, "default") && j + 1 < tok.size() &&
               is_punct(tok[j + 1], ":")) {
      default_lines.push_back(t.line);
    }
  }
  if (watched) {
    for (int line : default_lines) {
      report(out, "switch-default", f, line,
             "default: on a switch over a closed model enum (RunStatus / "
             "MsgKind / EvKind) silences -Wswitch — enumerate every value "
             "so adding one forces every switch to be revisited");
    }
  }
  return j;
}

void rule_switch_default(const LexedFile& f, std::vector<Finding>* out) {
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    if (is_ident(f.tokens[i], "switch")) i = scan_switch(f, i, out) - 1;
  }
}

// ---------------------------------------------------------------------------
// Catalog + driver.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kCatalog = {
    {"no-raw-random", "determinism",
     "std::random_device / rand() / engine types outside support/rng.*"},
    {"no-wall-clock", "determinism",
     "time() / system_clock reads in simulation code"},
    {"unordered-container", "determinism",
     "unordered_{map,set} in protocols/faults/radio/telemetry/support/"
     "service/health"},
    {"rng-stream-audit", "determinism",
     "global Rng::split tag inventory: same-parent duplicate tags, bare "
     "literal tags, call-computed tags, fixed-literal-seed Rng"},
    {"engine-include", "model-purity",
     "protocol headers reaching past radio/station.h + schedule.h"},
    {"analysis-offline", "model-purity",
     "src/analysis/ included from protocols, radio, faults or telemetry"},
    {"layer-dag", "model-purity",
     "full include graph vs the declared .lint-layers DAG: undeclared "
     "cross-layer edges, manifest errors, declared-graph cycles"},
    {"perf-purity-include", "perf-purity",
     "perf/ or support/stopwatch.h seen from model headers or the engine"},
    {"perf-purity-flow", "perf-purity",
     "timing-value identifiers (Stopwatch, elapsed_ns, ...) in model code"},
    {"hub-null-check", "telemetry",
     "unguarded dereference of optional TelemetryHub*/TraceSink*/Profiler* "
     "(flow-aware: per-branch guards, early-return promotion)"},
    {"trace-kind-table", "telemetry",
     "jsonl_sink.cpp `ev` kinds vs the trace_event.h kind table"},
    {"switch-default", "exhaustiveness",
     "default: on switches over RunStatus / MsgKind / EvKind"},
    {"shard-safety", "sharding",
     "every RadioNetwork/ActiveSet member touched in the slot loop is "
     "classified shard-local / barrier-mergeable / order-sensitive"},
    {"unused-waiver", "hygiene",
     "radiomc-lint: allow(...) comment that suppresses nothing"},
};

}  // namespace

const std::vector<RuleInfo>& rule_catalog() { return kCatalog; }

std::size_t count_unwaived(const std::vector<Finding>& findings) {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (!f.waived) ++n;
  return n;
}

AnalysisResult run_analyses(const std::vector<SourceFile>& files,
                            const LintOptions& opt) {
  std::set<std::string> selected(opt.only_rules.begin(),
                                 opt.only_rules.end());
  const auto enabled = [&](std::string_view id) {
    return selected.empty() || selected.count(std::string(id)) != 0;
  };

  // Stage one: each file is tokenized exactly once; the facts pass runs
  // over those token streams once for all rules.
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& f : files)
    lexed.push_back(lex_source(f.path, f.content));
  FactsDb facts = build_facts(lexed);

  AnalysisResult result;
  result.files_scanned = files.size();
  std::vector<Finding>& findings = result.findings;

  // Cross-TU optional-hook field set, from facts.
  std::set<std::string> hub_fields;
  for (const FileFacts& f : facts.files) {
    for (const PointerFieldFact& p : f.pointer_fields) {
      if (p.null_default && is_hub_pointer_type(p.type))
        hub_fields.insert(p.name);
    }
  }

  for (std::size_t i = 0; i < lexed.size(); ++i) {
    const LexedFile& f = lexed[i];
    const FileFacts& ff = facts.files[i];
    if (enabled("no-raw-random") || enabled("no-wall-clock")) {
      std::vector<Finding> both;
      rule_banned_idents(f, &both);
      for (Finding& fi : both)
        if (enabled(fi.rule)) findings.push_back(std::move(fi));
    }
    if (enabled("unordered-container")) rule_unordered_container(f, &findings);
    if (enabled("engine-include")) rule_engine_include(ff, &findings);
    if (enabled("analysis-offline")) rule_analysis_offline(ff, &findings);
    if (enabled("perf-purity-include"))
      rule_perf_purity_include(ff, &findings);
    if (enabled("perf-purity-flow")) rule_perf_purity_flow(f, &findings);
    if (enabled("hub-null-check"))
      analyze_hub_null_check(f, hub_fields, &findings);
    if (enabled("switch-default")) rule_switch_default(f, &findings);
  }
  if (enabled("trace-kind-table")) rule_trace_kind_table(lexed, &findings);

  // Stage two: the cross-TU semantic analyses.
  if (enabled("rng-stream-audit")) {
    analyze_rng_streams(facts, &findings, &result.rng_tags);
    result.split_sites = count_split_sites(facts);
  }
  if (enabled("shard-safety")) {
    analyze_shard_safety(facts, &findings, &result.shard_safety);
  }
  if (enabled("layer-dag") && !opt.layers_manifest.empty()) {
    LayerManifest manifest = parse_layer_manifest(opt.layers_manifest);
    result.layers_declared = manifest.layers.size();
    result.layer_edges_declared = manifest.edges.size();
    auto layer_findings =
        check_layers(manifest, opt.layers_manifest_name, facts);
    findings.insert(findings.end(),
                    std::make_move_iterator(layer_findings.begin()),
                    std::make_move_iterator(layer_findings.end()));
  }
  result.facts = std::move(facts);

  // Waiver application: a waiver on line L covers findings of its rule on
  // lines L and L+1 of the same file. (Manifest findings never match a
  // lexed file, so they are unwaivable by construction.)
  std::set<std::string> known_rules;
  for (const RuleInfo& r : kCatalog) known_rules.insert(std::string(r.id));
  for (const LexedFile& f : lexed) {
    std::vector<Waiver> waivers = parse_waivers(f);
    if (waivers.empty()) continue;
    for (Finding& fi : findings) {
      if (fi.file != f.path) continue;
      for (Waiver& w : waivers) {
        if (w.rule == fi.rule &&
            (w.line == fi.line || w.line + 1 == fi.line)) {
          fi.waived = true;
          fi.waiver_reason = w.reason;
          w.used = true;
        }
      }
    }
    if (enabled("unused-waiver")) {
      for (const Waiver& w : waivers) {
        if (w.used) continue;
        const bool unknown = known_rules.count(w.rule) == 0;
        findings.push_back(
            {"unused-waiver", f.path, w.line,
             unknown ? "waiver names unknown rule '" + w.rule + "'"
                     : "waiver for '" + w.rule +
                           "' suppresses nothing here — delete it (stale "
                           "waivers hide future regressions)",
             false,
             {}});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const LintOptions& opt) {
  return run_analyses(files, opt).findings;
}

}  // namespace radiomc::lint
