#include "lint/layers.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace radiomc::lint {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string word;
  while (is >> word) out.push_back(word);
  return out;
}

}  // namespace

LayerManifest parse_layer_manifest(const std::string& text) {
  LayerManifest m;
  std::map<std::string, int> declared_at;  // layer -> first decl line
  std::set<std::pair<std::string, std::string>> seen_edges;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto words = split_ws(line);
    if (words.empty()) continue;
    if (words[0] == "layer") {
      if (words.size() < 3) {
        m.errors.push_back(
            {lineno, "'layer' needs a name and at least one directory "
                     "(layer <name> <dir> [<dir>...])"});
        continue;
      }
      auto it = declared_at.find(words[1]);
      if (it != declared_at.end()) {
        m.errors.push_back({lineno, "layer '" + words[1] +
                                        "' redeclared (first declared on line " +
                                        std::to_string(it->second) + ")"});
        continue;
      }
      declared_at.emplace(words[1], lineno);
      LayerDecl d;
      d.name = words[1];
      d.line = lineno;
      d.dirs.assign(words.begin() + 2, words.end());
      m.layers.push_back(std::move(d));
    } else if (words[0] == "allow") {
      if (words.size() != 4 || words[2] != "->") {
        m.errors.push_back(
            {lineno, "'allow' needs the form 'allow <from> -> <to>'"});
        continue;
      }
      if (words[1] == words[3]) {
        m.errors.push_back(
            {lineno, "self edge '" + words[1] +
                         " -> " + words[3] +
                         "' is implicit; remove it from the manifest"});
        continue;
      }
      if (!seen_edges.emplace(words[1], words[3]).second) {
        m.errors.push_back({lineno, "edge '" + words[1] + " -> " + words[3] +
                                        "' declared twice"});
        continue;
      }
      m.edges.push_back({words[1], words[3], lineno});
    } else {
      m.errors.push_back({lineno, "unknown directive '" + words[0] +
                                      "' (expected 'layer' or 'allow')"});
    }
  }
  // References are validated after the whole file is read so declaration
  // order does not matter.
  for (const auto& e : m.edges) {
    for (const auto* name : {&e.from, &e.to}) {
      if (declared_at.find(*name) == declared_at.end()) {
        m.errors.push_back(
            {e.line, "allow references undeclared layer '" + *name + "'"});
      }
    }
  }
  return m;
}

std::string layer_of(const LayerManifest& manifest, std::string_view path) {
  std::string best;
  std::size_t best_len = 0;
  for (const auto& l : manifest.layers) {
    for (const auto& d : l.dirs) {
      if (d.size() >= best_len && in_dir(path, d)) {
        best = l.name;
        best_len = d.size();
      }
    }
  }
  return best;
}

namespace {

/// The layer owning an include path's first component, resolved by
/// directory basename (`support/rng.h` → the layer whose dir ends in
/// /support). Empty when no layer claims it (external header).
std::string layer_of_include(const LayerManifest& manifest,
                             std::string_view inc_path) {
  auto slash = inc_path.find('/');
  if (slash == std::string_view::npos) return {};
  std::string_view comp = inc_path.substr(0, slash);
  for (const auto& l : manifest.layers) {
    for (const auto& d : l.dirs) {
      if (basename_of(d) == comp) return l.name;
    }
  }
  return {};
}

struct CycleFinder {
  const std::map<std::string, std::vector<std::string>>& adj;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::vector<std::string> cycle;

  bool dfs(const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const auto& v : it->second) {
        int c = color.count(v) ? color[v] : 0;
        if (c == 1) {
          auto pos = std::find(stack.begin(), stack.end(), v);
          cycle.assign(pos, stack.end());
          cycle.push_back(v);
          return true;
        }
        if (c == 0 && dfs(v)) return true;
      }
    }
    stack.pop_back();
    color[u] = 2;
    return false;
  }
};

}  // namespace

std::vector<Finding> check_layers(const LayerManifest& manifest,
                                  const std::string& manifest_name,
                                  const FactsDb& facts) {
  std::vector<Finding> out;
  auto report = [&](const std::string& file, int line, std::string msg) {
    Finding f;
    f.rule = "layer-dag";
    f.file = file;
    f.line = line;
    f.message = std::move(msg);
    out.push_back(std::move(f));
  };

  for (const auto& e : manifest.errors) {
    report(manifest_name, e.line, "manifest parse error: " + e.message);
  }

  // Declared-graph acyclicity. Edges point from includer to includee, so
  // a cycle means two layers each permitted to include the other.
  std::map<std::string, std::vector<std::string>> adj;
  std::map<std::pair<std::string, std::string>, int> edge_line;
  for (const auto& e : manifest.edges) {
    adj[e.from].push_back(e.to);
    edge_line[{e.from, e.to}] = e.line;
  }
  for (auto& [k, v] : adj) std::sort(v.begin(), v.end());
  CycleFinder cf{adj, {}, {}, {}};
  for (const auto& l : manifest.layers) {
    if ((cf.color.count(l.name) ? cf.color[l.name] : 0) == 0 &&
        cf.dfs(l.name)) {
      break;
    }
  }
  if (!cf.cycle.empty()) {
    std::string path;
    for (std::size_t i = 0; i < cf.cycle.size(); ++i) {
      if (i) path += " -> ";
      path += cf.cycle[i];
    }
    int line = 0;
    if (cf.cycle.size() >= 2) {
      auto it = edge_line.find({cf.cycle[cf.cycle.size() - 2], cf.cycle.back()});
      if (it != edge_line.end()) line = it->second;
    }
    report(manifest_name, line,
           "declared layer graph has a cycle: " + path +
               " — the manifest is a DAG contract; break one edge");
  }

  // Actual include edges vs the declaration.
  std::set<std::pair<std::string, std::string>> allowed;
  for (const auto& e : manifest.edges) allowed.emplace(e.from, e.to);
  for (const auto& f : facts.files) {
    std::string from = layer_of(manifest, f.path);
    for (const auto& inc : f.includes) {
      if (inc.angled) continue;  // system/third-party headers
      std::string to = layer_of_include(manifest, inc.path);
      if (to.empty()) continue;  // not a layered header
      if (from.empty()) {
        report(f.path, inc.line,
               "file is not covered by any layer in " + manifest_name +
                   " but includes layered header \"" + inc.path +
                   "\" — add its directory to a layer");
        break;  // one finding per unmapped file is enough
      }
      if (to == from) continue;
      if (allowed.count({from, to}) == 0) {
        report(f.path, inc.line,
               "include edge " + from + " -> " + to + " (\"" + inc.path +
                   "\") is not declared in " + manifest_name +
                   " — either the include or the manifest is wrong");
      }
    }
  }

  return out;
}

}  // namespace radiomc::lint
