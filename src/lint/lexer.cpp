#include "lint/lexer.h"

#include <cctype>

namespace radiomc::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  Lexer(std::string path, std::string_view src) : src_(src) {
    out_.path = std::move(path);
  }

  LexedFile run() {
    while (pos_ < src_.size()) step();
    return std::move(out_);
  }

 private:
  char cur() const { return src_[pos_]; }
  char peek(std::size_t k = 1) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      line_has_code_ = false;
    }
    ++pos_;
  }

  void push(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back({kind, std::move(text), line});
    line_has_code_ = true;
  }

  void step() {
    const char c = cur();
    if (c == '\\' && peek() == '\n') {  // line continuation
      advance();
      advance();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      return;
    }
    if (c == '/' && peek() == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek() == '*') {
      block_comment();
      return;
    }
    if (c == '#' && !line_has_code_) {
      directive();
      return;
    }
    if (c == '"') {
      string_literal();
      return;
    }
    if (c == 'R' && peek() == '"') {
      raw_string_literal();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
      number();
      return;
    }
    if (ident_start(c)) {
      ident();
      return;
    }
    punct();
  }

  void line_comment() {
    const int start = line_;
    const bool own = !line_has_code_;
    advance();
    advance();  // //
    std::string text;
    while (pos_ < src_.size() && cur() != '\n') {
      text += cur();
      advance();
    }
    out_.comments.push_back({start, std::move(text), own});
  }

  void block_comment() {
    const int start = line_;
    const bool own = !line_has_code_;
    advance();
    advance();  // /*
    std::string text;
    while (pos_ < src_.size()) {
      if (cur() == '*' && peek() == '/') {
        advance();
        advance();
        break;
      }
      text += cur();
      advance();
    }
    out_.comments.push_back({start, std::move(text), own});
  }

  /// Preprocessor line: records #include targets, swallows the rest of the
  /// directive (honoring line continuations). Comments inside directives
  /// are rare and ignored.
  void directive() {
    const int start = line_;
    advance();  // #
    while (pos_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
    std::string name;
    while (pos_ < src_.size() && ident_char(cur())) {
      name += cur();
      advance();
    }
    if (name == "include") {
      while (pos_ < src_.size() && (cur() == ' ' || cur() == '\t')) advance();
      if (pos_ < src_.size() && (cur() == '<' || cur() == '"')) {
        const bool angled = cur() == '<';
        const char close = angled ? '>' : '"';
        advance();
        std::string target;
        while (pos_ < src_.size() && cur() != close && cur() != '\n') {
          target += cur();
          advance();
        }
        out_.includes.push_back({start, std::move(target), angled});
      }
    }
    // Swallow to end of line; `\`-continued lines stay in the directive.
    while (pos_ < src_.size() && cur() != '\n') {
      if (cur() == '\\' && peek() == '\n') advance();
      if (cur() == '/' && peek() == '/') {  // trailing comment ends it
        line_comment();
        return;
      }
      advance();
    }
  }

  void string_literal() {
    const int start = line_;
    advance();  // "
    std::string text;
    while (pos_ < src_.size() && cur() != '"' && cur() != '\n') {
      if (cur() == '\\' && pos_ + 1 < src_.size() && peek() != '\n') {
        text += cur();
        advance();  // keep the escape pair together so \" is not a fence
      }
      text += cur();
      advance();
    }
    if (pos_ < src_.size() && cur() == '"') advance();
    push(Token::Kind::kString, std::move(text), start);
  }

  void raw_string_literal() {
    const int start = line_;
    advance();  // R
    advance();  // "
    std::string delim;
    while (pos_ < src_.size() && cur() != '(' && cur() != '\n') {
      delim += cur();
      advance();
    }
    if (pos_ < src_.size()) advance();  // (
    const std::string close = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, close.size(), close) == 0) {
        for (std::size_t k = 0; k < close.size(); ++k) advance();
        break;
      }
      text += cur();
      advance();
    }
    push(Token::Kind::kString, std::move(text), start);
  }

  void char_literal() {
    const int start = line_;
    advance();  // '
    std::string text;
    while (pos_ < src_.size() && cur() != '\'' && cur() != '\n') {
      if (cur() == '\\' && pos_ + 1 < src_.size() && peek() != '\n') {
        text += cur();
        advance();
      }
      text += cur();
      advance();
    }
    if (pos_ < src_.size() && cur() == '\'') advance();
    push(Token::Kind::kChar, std::move(text), start);
  }

  void number() {
    const int start = line_;
    std::string text;
    while (pos_ < src_.size() &&
           (ident_char(cur()) || cur() == '.' || cur() == '\'' ||
            ((cur() == '+' || cur() == '-') && !text.empty() &&
             (text.back() == 'e' || text.back() == 'E' ||
              text.back() == 'p' || text.back() == 'P')))) {
      if (cur() != '\'') text += cur();
      advance();
    }
    push(Token::Kind::kNumber, std::move(text), start);
  }

  void ident() {
    const int start = line_;
    std::string text;
    while (pos_ < src_.size() && ident_char(cur())) {
      text += cur();
      advance();
    }
    push(Token::Kind::kIdent, std::move(text), start);
  }

  void punct() {
    const int start = line_;
    const char c = cur();
    const char n = peek();
    static constexpr const char* kTwo[] = {"::", "->", "==", "!=", "&&",
                                           "||", "<=", ">=", "+=", "-="};
    for (const char* two : kTwo) {
      if (c == two[0] && n == two[1]) {
        advance();
        advance();
        push(Token::Kind::kPunct, two, start);
        return;
      }
    }
    advance();
    push(Token::Kind::kPunct, std::string(1, c), start);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_has_code_ = false;
  LexedFile out_;
};

}  // namespace

LexedFile lex_source(std::string path, std::string_view src) {
  return Lexer(std::move(path), src).run();
}

}  // namespace radiomc::lint
