#pragma once

// JsonlTraceSink: a TraceSink that streams physical events — and,
// optionally, per-slot-window aggregates — as one JSON object per line
// (JSONL). The format is grep/jq-friendly and diffable, which makes slot
// schedules inspectable the way the paper's slot-level arguments (§2.2
// gating, §3 ack subslots) are stated.
//
// Event lines:
//   {"ev":"tx","t":5,"node":3,"ch":0,"kind":"data","origin":3,"seq":0}
//   {"ev":"rx","t":5,"node":2,"ch":0,"kind":"data","origin":3,"seq":0}
//   {"ev":"coll","t":6,"node":1,"ch":0,"txn":2}
// Aggregate lines (every `aggregate_every` slots, when enabled):
//   {"ev":"agg","t0":0,"t1":64,"tx":12,"rx":9,"coll":3}
//
// Like every TraceSink it is engine-side scaffolding: stations cannot see
// it and protocols may not base decisions on it.

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "radio/trace.h"

namespace radiomc::telemetry {

struct JsonlOptions {
  bool events = true;  ///< per-event lines
  /// Window length of "agg" lines; 0 disables aggregates.
  std::uint64_t aggregate_every = 0;
};

class JsonlTraceSink final : public TraceSink {
 public:
  using Options = JsonlOptions;

  /// Streams to `out` (borrowed; must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out, Options opt = {});
  /// Opens `path` for writing and owns the stream. Check `ok()`.
  explicit JsonlTraceSink(const std::string& path, Options opt = {});
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  void on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                   const Message& m) override;
  void on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                  const Message& m) override;
  void on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                    std::uint32_t tx_neighbors) override;

  /// Emits the trailing partial aggregate window (if any) and flushes the
  /// stream. Called by the destructor; call earlier to read mid-run.
  void finish();

  bool ok() const noexcept { return out_ != nullptr && out_->good(); }
  std::uint64_t lines_written() const noexcept { return lines_; }

 private:
  void event_line(const char* ev, SlotTime t, NodeId node, ChannelId ch,
                  const Message* m, std::uint32_t tx_neighbors);
  void roll_window(SlotTime t);
  void emit_window();

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  Options opt_;
  std::uint64_t lines_ = 0;
  bool finished_ = false;

  // Current aggregate window [win_start_, win_start_ + aggregate_every).
  SlotTime win_start_ = 0;
  bool win_any_ = false;
  std::uint64_t win_tx_ = 0, win_rx_ = 0, win_coll_ = 0;
};

}  // namespace radiomc::telemetry
