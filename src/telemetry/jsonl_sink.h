#pragma once

// JsonlTraceSink: a TraceSink that streams physical events — and,
// optionally, per-slot-window aggregates — as one JSON object per line
// (JSONL). The format is grep/jq-friendly and diffable, which makes slot
// schedules inspectable the way the paper's slot-level arguments (§2.2
// gating, §3 ack subslots) are stated. The offline analysis subsystem
// (src/analysis/, `radiomc_trace`) parses the stream back into typed
// events, so this header is the authoritative writer of the
// `radiomc.trace/v2` schema.
//
// Stream layout (see docs/OBSERVABILITY.md for the field-by-field schema):
//   {"ev":"schema","v":"radiomc.trace/v2",...}        header, exactly once
//   {"ev":"tx","t":5,"node":3,"ch":0,"kind":"data","origin":3,"seq":0}
//   {"ev":"rx","t":5,"node":2,"ch":0,"kind":"data","origin":3,"seq":0,
//    "from":3,"fp":2}
//   {"ev":"coll","t":6,"node":1,"ch":0,"txn":2}
//   {"ev":"agg","t0":0,"t1":64,"tx":12,"rx":9,"coll":3,"jam":0}
//   {"ev":"truncated","t":900,"dropped":41}           only if capped
//
// The schema header is emitted lazily before the first line so run
// context (protocol name, slot structure, BFS levels) supplied after
// construction — e.g. once the setup phase has built the tree — still
// lands in it. `coll` lines with txn == 1 are jam-killed clean receptions
// (fault injection), txn >= 2 genuine collisions; the aggregate window
// counts them separately ("coll" vs "jam").
//
// Like every TraceSink it is engine-side scaffolding: stations cannot see
// it and protocols may not base decisions on it.

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "radio/schedule.h"
#include "radio/trace.h"

namespace radiomc::telemetry {

/// The trace stream schema version written by JsonlTraceSink and required
/// by the analysis-side reader.
inline constexpr const char* kTraceSchemaVersion = "radiomc.trace/v2";

struct JsonlOptions {
  bool events = true;  ///< per-event lines
  /// Window length of "agg" lines; 0 disables aggregates.
  std::uint64_t aggregate_every = 0;
  /// Cap on per-event lines (0 = unbounded). Once reached, further event
  /// lines are dropped (aggregate windows keep counting, so totals stay
  /// complete) and `finish()` emits an explicit {"ev":"truncated"} record
  /// — downstream consumers must never mistake a capped trace for a
  /// complete one.
  std::uint64_t max_events = 0;
};

class JsonlTraceSink final : public TraceSink {
 public:
  using Options = JsonlOptions;

  /// Streams to `out` (borrowed; must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out, Options opt = {});
  /// Opens `path` for writing and owns the stream. Check `ok()`.
  explicit JsonlTraceSink(const std::string& path, Options opt = {});
  ~JsonlTraceSink() override;

  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;

  // -- Run context, recorded in the schema header line. Call before the
  //    first event reaches the sink; later calls are ignored (the header
  //    has already been written).

  /// Tags the stream with the protocol that produced it ("collection",
  /// "p2p", ...); the auditor gates protocol-specific checks on it.
  void set_protocol(std::string protocol);
  /// Records the slot algebra (decay_len / ack subslots / mod-3 gating) so
  /// readers can decode slot numbers into (phase, subslot) the way the
  /// stations did.
  void set_slot_structure(const SlotStructure& slots);
  /// Records the BFS level of every node (index = node id), enabling
  /// per-level analysis (advance rates, collision hot spots, root
  /// identification) without re-running setup.
  void set_levels(std::vector<std::uint32_t> levels);

  void on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                   const Message& m) override;
  void on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                  const Message& m) override;
  void on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                    std::uint32_t tx_neighbors) override;

  /// Emits the trailing partial aggregate window (if any) and the
  /// truncation record (if events were dropped), then flushes the stream.
  /// Called by the destructor; call earlier to read mid-run.
  void finish();

  bool ok() const noexcept { return out_ != nullptr && out_->good(); }
  std::uint64_t lines_written() const noexcept { return lines_; }
  /// True iff max_events was exceeded and event lines were dropped.
  bool truncated() const noexcept { return dropped_ > 0; }
  std::uint64_t dropped_events() const noexcept { return dropped_; }

 private:
  void emit_schema();
  void event_line(const char* ev, SlotTime t, NodeId node, ChannelId ch,
                  const Message* m, std::uint32_t tx_neighbors);
  void roll_window(SlotTime t);
  void emit_window();
  void write_line(const std::string& line);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  Options opt_;
  std::uint64_t lines_ = 0;
  bool finished_ = false;

  // Schema-header context (lazily written before the first line).
  bool schema_written_ = false;
  std::string protocol_;
  std::optional<SlotStructure> slots_;
  std::vector<std::uint32_t> levels_;

  // Event-line cap bookkeeping.
  std::uint64_t events_written_ = 0;
  std::uint64_t dropped_ = 0;
  SlotTime first_dropped_slot_ = 0;

  // Current aggregate window [win_start_, win_start_ + aggregate_every).
  SlotTime win_start_ = 0;
  bool win_any_ = false;
  std::uint64_t win_tx_ = 0, win_rx_ = 0, win_coll_ = 0, win_jam_ = 0;
};

}  // namespace radiomc::telemetry
