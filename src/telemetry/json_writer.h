#pragma once

// Minimal streaming JSON writer shared by the telemetry layer (metrics
// snapshots, phase timelines, the JSONL trace sink) and the bench harness'
// machine-readable result files. Emits compact, valid JSON: strings are
// escaped per RFC 8259, non-finite doubles degrade to null, and commas are
// managed by a small container stack so call sites never hand-place them.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace radiomc::telemetry {

/// RFC 8259 string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// Appends output to `*out`, which must outlive the writer.
  explicit JsonWriter(std::string* out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by a value or container open.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void member(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// True once every opened container has been closed.
  bool complete() const noexcept { return stack_.empty() && wrote_any_; }

 private:
  void comma_for_value();

  std::string* out_;
  // One frame per open container: whether the next element needs a comma.
  std::vector<bool> stack_;
  bool pending_key_ = false;
  bool wrote_any_ = false;
};

}  // namespace radiomc::telemetry
