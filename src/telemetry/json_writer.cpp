#include "telemetry/json_writer.h"

#include <cmath>
#include <cstdio>

namespace radiomc::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma
  }
  if (!stack_.empty()) {
    if (stack_.back()) *out_ += ',';
    stack_.back() = true;
  }
  wrote_any_ = true;
}

void JsonWriter::begin_object() {
  comma_for_value();
  *out_ += '{';
  stack_.push_back(false);
}

void JsonWriter::end_object() {
  stack_.pop_back();
  *out_ += '}';
  wrote_any_ = true;
}

void JsonWriter::begin_array() {
  comma_for_value();
  *out_ += '[';
  stack_.push_back(false);
}

void JsonWriter::end_array() {
  stack_.pop_back();
  *out_ += ']';
  wrote_any_ = true;
}

void JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    if (stack_.back()) *out_ += ',';
    stack_.back() = true;
  }
  *out_ += '"';
  *out_ += json_escape(k);
  *out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma_for_value();
  *out_ += '"';
  *out_ += json_escape(v);
  *out_ += '"';
}

void JsonWriter::value(bool v) {
  comma_for_value();
  *out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    *out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  *out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  comma_for_value();
  *out_ += std::to_string(v);
}

void JsonWriter::null() {
  comma_for_value();
  *out_ += "null";
}

}  // namespace radiomc::telemetry
