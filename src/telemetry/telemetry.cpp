#include "telemetry/telemetry.h"

#include <cstdio>

#include "telemetry/json_writer.h"

namespace radiomc::telemetry {

void Telemetry::merge(const Telemetry& other, std::int64_t trial) {
  metrics.merge(other.metrics);
  if (trial < 0) {
    timeline.merge(other.timeline);
    return;
  }
  for (PhaseSpan span : other.timeline.spans()) {
    span.attrs.emplace_back("trial", trial);
    timeline.record(std::move(span));
  }
}

std::string Telemetry::to_json() const {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.member("schema", "radiomc.telemetry/v1");
  w.key("metrics");
  metrics.write_json(w);
  w.key("phases");
  timeline.write_json(w);
  w.end_object();
  return out;
}

bool Telemetry::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void publish_net_metrics(const NetMetrics& m, MetricsRegistry& reg,
                         const std::string& protocol) {
  const Labels labels = {{"protocol", protocol}};
  reg.counter("engine.slots", labels).inc(m.slots);
  reg.counter("engine.transmissions", labels).inc(m.transmissions);
  reg.counter("engine.deliveries", labels).inc(m.deliveries);
  reg.counter("engine.collisions", labels).inc(m.collision_events);
  reg.counter("engine.capture_deliveries", labels).inc(m.capture_deliveries);
}

void publish_fault_metrics(const FaultSchedule& faults, const NetMetrics& m,
                           MetricsRegistry& reg, const std::string& protocol) {
  if (!faults.enabled()) return;
  const auto kind_counter = [&](const char* kind) -> Counter& {
    return reg.counter("faults.events",
                       {{"kind", kind}, {"protocol", protocol}});
  };
  const FaultSchedule::Stats& s = faults.stats();
  if (s.crashes > 0) kind_counter("crash").inc(s.crashes);
  if (s.recoveries > 0) kind_counter("recover").inc(s.recoveries);
  if (s.link_downs > 0) kind_counter("link_down").inc(s.link_downs);
  if (s.link_ups > 0) kind_counter("link_up").inc(s.link_ups);
  const Labels labels = {{"protocol", protocol}};
  if (m.fault_jams > 0) reg.counter("engine.fault_jams", labels).inc(m.fault_jams);
  if (m.fault_drops > 0)
    reg.counter("engine.fault_drops", labels).inc(m.fault_drops);
  if (m.fault_link_blocked > 0)
    reg.counter("engine.fault_link_blocked", labels).inc(m.fault_link_blocked);
  if (m.fault_crashed_slots > 0)
    reg.counter("engine.fault_crashed_slots", labels)
        .inc(m.fault_crashed_slots);
}

}  // namespace radiomc::telemetry
