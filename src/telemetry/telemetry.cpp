#include "telemetry/telemetry.h"

#include <cstdio>

#include "telemetry/json_writer.h"

namespace radiomc::telemetry {

void Telemetry::merge(const Telemetry& other, std::int64_t trial) {
  metrics.merge(other.metrics);
  if (trial < 0) {
    timeline.merge(other.timeline);
    return;
  }
  for (PhaseSpan span : other.timeline.spans()) {
    span.attrs.emplace_back("trial", trial);
    timeline.record(std::move(span));
  }
}

std::string Telemetry::to_json() const {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.member("schema", "radiomc.telemetry/v1");
  w.key("metrics");
  metrics.write_json(w);
  w.key("phases");
  timeline.write_json(w);
  w.end_object();
  return out;
}

bool Telemetry::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void publish_net_metrics(const NetMetrics& m, MetricsRegistry& reg,
                         const std::string& protocol) {
  const Labels labels = {{"protocol", protocol}};
  reg.counter("engine.slots", labels).inc(m.slots);
  reg.counter("engine.transmissions", labels).inc(m.transmissions);
  reg.counter("engine.deliveries", labels).inc(m.deliveries);
  reg.counter("engine.collisions", labels).inc(m.collision_events);
  reg.counter("engine.capture_deliveries", labels).inc(m.capture_deliveries);
}

}  // namespace radiomc::telemetry
