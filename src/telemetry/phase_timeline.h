#pragma once

// The phase timeline: protocols report named spans of slot time so a run
// decomposes the way the paper's analysis does — leader-election epochs,
// BFS levels, verification restarts, collection drains — instead of one
// opaque total. Spans carry small integer attributes (attempt index, level,
// message count) and may nest or overlap freely; the timeline is an append
// log ordered by recording time, not an interval tree.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "radio/message.h"

namespace radiomc::telemetry {

class JsonWriter;

struct PhaseSpan {
  std::string protocol;  ///< e.g. "setup", "collection", "ranking"
  std::string name;      ///< e.g. "leader_election", "drain"
  SlotTime begin = 0;    ///< first slot of the span
  SlotTime end = 0;      ///< one past the last slot
  std::vector<std::pair<std::string, std::int64_t>> attrs;

  SlotTime length() const noexcept { return end - begin; }
};

class PhaseTimeline {
 public:
  /// Appends a completed span.
  void record(PhaseSpan span) { spans_.push_back(std::move(span)); }
  void record(std::string_view protocol, std::string_view name,
              SlotTime begin, SlotTime end,
              std::vector<std::pair<std::string, std::int64_t>> attrs = {}) {
    record(PhaseSpan{std::string(protocol), std::string(name), begin, end,
                     std::move(attrs)});
  }

  /// Opens a span to be closed later; returns its index. Useful when the
  /// end slot is only known after the fact (e.g. a drain loop).
  std::size_t open(std::string_view protocol, std::string_view name,
                   SlotTime begin) {
    spans_.push_back(
        PhaseSpan{std::string(protocol), std::string(name), begin, begin, {}});
    return spans_.size() - 1;
  }
  void close(std::size_t index, SlotTime end) { spans_[index].end = end; }
  PhaseSpan& at(std::size_t index) { return spans_[index]; }

  /// Appends every span of `other` in its recording order. Slot times are
  /// kept as recorded — each trial has its own network clock — so callers
  /// that interleave runs should tag spans (see Telemetry::merge).
  void merge(const PhaseTimeline& other) {
    spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  }

  const std::vector<PhaseSpan>& spans() const noexcept { return spans_; }
  bool empty() const noexcept { return spans_.empty(); }

  /// JSON array of span objects, in recording order.
  std::string to_json() const;
  void write_json(JsonWriter& w) const;

 private:
  std::vector<PhaseSpan> spans_;
};

}  // namespace radiomc::telemetry
