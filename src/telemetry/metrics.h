#pragma once

// The metrics registry: named, labeled counters, gauges and value
// distributions with a stable snapshot and JSON serialization.
//
// The paper's claims are quantitative (Thm 4.1's per-phase advance
// probability, the Hsu–Burke departure law, the O((n + D log n) log Delta)
// setup bound), so every run should leave structured numbers behind, not
// text tables. Protocols and drivers publish into a registry owned by the
// caller (the CLI, a bench, a test); serialization is pull-based — taking a
// snapshot never perturbs the run.
//
// Distributions are built on the existing accumulators in support/stats.h:
// OnlineStats for moments plus a Histogram of either exact integer buckets
// (queue depths, small counts) or log2 buckets (slot counts spanning orders
// of magnitude).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/stats.h"

namespace radiomc::telemetry {

class JsonWriter;

/// Metric labels, e.g. {{"level", "3"}, {"protocol", "collection"}}.
/// Stored sorted by key; (name, labels) identifies a time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Bucketing rule for Distribution histograms.
enum class Scale : std::uint8_t {
  kLinear,  ///< exact integer buckets (small discrete supports)
  kLog2,    ///< bucket b holds values in [2^b, 2^(b+1)); b = -1 for v <= 0
};

/// Moments (OnlineStats) plus a bucketed Histogram of the same samples.
class Distribution {
 public:
  explicit Distribution(Scale scale = Scale::kLinear) : scale_(scale) {}

  void add(std::int64_t v, std::uint64_t weight = 1);

  /// Folds `other`'s samples in (moment merge + exact bucket addition).
  /// Both sides must use the same scale — bucket keys are incomparable
  /// otherwise.
  void merge(const Distribution& other);

  Scale scale() const noexcept { return scale_; }
  const OnlineStats& stats() const noexcept { return stats_; }
  /// Buckets keyed per `scale()`: the value itself (linear) or the log2
  /// bucket index (log2).
  const Histogram& histogram() const noexcept { return hist_; }

 private:
  Scale scale_;
  OnlineStats stats_;
  Histogram hist_;
};

/// Immutable view of a registry at one instant.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    Labels labels;
    double value = 0.0;
  };
  struct DistributionEntry {
    std::string name;
    Labels labels;
    Scale scale = Scale::kLinear;
    std::size_t count = 0;
    double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0, sum = 0.0;
    /// (bucket key, weight), ascending by key.
    std::vector<std::pair<std::int64_t, std::uint64_t>> buckets;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<DistributionEntry> distributions;
};

class MetricsRegistry {
 public:
  /// Lookup-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Distribution& distribution(std::string_view name, Labels labels = {},
                             Scale scale = Scale::kLinear);

  std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + distributions_.size();
  }

  /// Folds `other` in series-by-series: counters add, gauges take
  /// `other`'s value (last writer wins, so merging trials in trial order
  /// reproduces the serial outcome), distributions merge samples. The
  /// post-hoc aggregation path for per-trial registries — trials never
  /// share a registry, so protocol code stays single-threaded and
  /// lock-free.
  void merge(const MetricsRegistry& other);

  /// Deterministic order: sorted by (name, labels).
  MetricsSnapshot snapshot() const;

  /// {"counters":[...],"gauges":[...],"distributions":[...]}
  std::string to_json() const;
  /// Embeds the same object into an enclosing document.
  void write_json(JsonWriter& w) const;

 private:
  template <typename T>
  struct Series {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };
  // Key = name + '\x1f' + sorted "k=v" pairs; '\x1f' cannot appear in
  // sane metric names, making the key injective.
  template <typename T>
  using SeriesMap = std::map<std::string, Series<T>>;

  static std::string series_key(std::string_view name, const Labels& labels);

  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Distribution> distributions_;
};

}  // namespace radiomc::telemetry
