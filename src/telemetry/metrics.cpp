#include "telemetry/metrics.h"

#include <algorithm>

#include "telemetry/json_writer.h"

namespace radiomc::telemetry {

namespace {

std::int64_t log2_bucket(std::int64_t v) {
  if (v <= 0) return -1;
  std::int64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

void write_labels(JsonWriter& w, const Labels& labels) {
  w.key("labels");
  w.begin_object();
  for (const auto& [k, v] : labels) w.member(k, std::string_view(v));
  w.end_object();
}

}  // namespace

void Distribution::add(std::int64_t v, std::uint64_t weight) {
  for (std::uint64_t i = 0; i < weight; ++i)
    stats_.add(static_cast<double>(v));
  hist_.add(scale_ == Scale::kLog2 ? log2_bucket(v) : v, weight);
}

void Distribution::merge(const Distribution& other) {
  stats_.merge(other.stats_);
  hist_.merge(other.hist_);
}

std::string MetricsRegistry::series_key(std::string_view name,
                                        const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(key, Series<Counter>{std::string(name),
                                           std::move(labels),
                                           std::make_unique<Counter>()})
             .first;
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(key, Series<Gauge>{std::string(name), std::move(labels),
                                         std::make_unique<Gauge>()})
             .first;
  }
  return *it->second.metric;
}

Distribution& MetricsRegistry::distribution(std::string_view name,
                                            Labels labels, Scale scale) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  auto it = distributions_.find(key);
  if (it == distributions_.end()) {
    it = distributions_
             .emplace(key, Series<Distribution>{
                               std::string(name), std::move(labels),
                               std::make_unique<Distribution>(scale)})
             .first;
  }
  return *it->second.metric;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, s] : other.counters_)
    counter(s.name, s.labels).inc(s.metric->value());
  for (const auto& [key, s] : other.gauges_)
    gauge(s.name, s.labels).set(s.metric->value());
  for (const auto& [key, s] : other.distributions_)
    distribution(s.name, s.labels, s.metric->scale()).merge(*s.metric);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [key, s] : counters_)
    snap.counters.push_back({s.name, s.labels, s.metric->value()});
  for (const auto& [key, s] : gauges_)
    snap.gauges.push_back({s.name, s.labels, s.metric->value()});
  for (const auto& [key, s] : distributions_) {
    MetricsSnapshot::DistributionEntry e;
    e.name = s.name;
    e.labels = s.labels;
    e.scale = s.metric->scale();
    const OnlineStats& st = s.metric->stats();
    e.count = st.count();
    e.mean = st.mean();
    e.stddev = st.stddev();
    e.min = st.min();
    e.max = st.max();
    e.sum = st.sum();
    for (const auto& [bucket, weight] : s.metric->histogram().buckets())
      e.buckets.emplace_back(bucket, weight);
    snap.distributions.push_back(std::move(e));
  }
  return snap;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  const MetricsSnapshot snap = snapshot();
  w.begin_object();
  w.key("counters");
  w.begin_array();
  for (const auto& c : snap.counters) {
    w.begin_object();
    w.member("name", std::string_view(c.name));
    write_labels(w, c.labels);
    w.member("value", c.value);
    w.end_object();
  }
  w.end_array();
  w.key("gauges");
  w.begin_array();
  for (const auto& g : snap.gauges) {
    w.begin_object();
    w.member("name", std::string_view(g.name));
    write_labels(w, g.labels);
    w.member("value", g.value);
    w.end_object();
  }
  w.end_array();
  w.key("distributions");
  w.begin_array();
  for (const auto& d : snap.distributions) {
    w.begin_object();
    w.member("name", std::string_view(d.name));
    write_labels(w, d.labels);
    w.member("scale", d.scale == Scale::kLog2 ? "log2" : "linear");
    w.member("count", static_cast<std::uint64_t>(d.count));
    w.member("mean", d.mean);
    w.member("stddev", d.stddev);
    w.member("min", d.min);
    w.member("max", d.max);
    w.member("sum", d.sum);
    w.key("buckets");
    w.begin_array();
    for (const auto& [bucket, weight] : d.buckets) {
      w.begin_array();
      w.value(bucket);
      w.value(weight);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  JsonWriter w(&out);
  write_json(w);
  return out;
}

}  // namespace radiomc::telemetry
