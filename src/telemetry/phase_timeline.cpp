#include "telemetry/phase_timeline.h"

#include "telemetry/json_writer.h"

namespace radiomc::telemetry {

void PhaseTimeline::write_json(JsonWriter& w) const {
  w.begin_array();
  for (const PhaseSpan& s : spans_) {
    w.begin_object();
    w.member("protocol", std::string_view(s.protocol));
    w.member("name", std::string_view(s.name));
    w.member("begin", s.begin);
    w.member("end", s.end);
    w.key("attrs");
    w.begin_object();
    for (const auto& [k, v] : s.attrs) w.member(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

std::string PhaseTimeline::to_json() const {
  std::string out;
  JsonWriter w(&out);
  write_json(w);
  return out;
}

}  // namespace radiomc::telemetry
