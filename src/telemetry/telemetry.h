#pragma once

// The Telemetry aggregate threaded (optionally, as a raw pointer) through
// protocol configs and run drivers. One object per logical run: the CLI
// creates one and hands it to setup + the command's protocol, so the
// emitted document holds the whole story — engine counters, per-phase
// spans, per-level queue histograms — in one file.
//
// Everything is pull/append only: a null Telemetry* costs one branch, and
// no protocol may base decisions on it (same rule as TraceSink).

#include <string>

#include "radio/network.h"
#include "telemetry/metrics.h"
#include "telemetry/phase_timeline.h"

namespace radiomc::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  PhaseTimeline timeline;

  /// Folds a per-trial hub into this one: metrics merge series-by-series
  /// and the trial's spans are appended (tagged with a {"trial", trial}
  /// attribute when `trial >= 0`, since each trial restarts its slot
  /// clock at 0). Merging trials 0..n-1 in trial order yields the same
  /// document regardless of how many threads ran them — the aggregation
  /// half of the deterministic trial-runner contract (support/parallel.h).
  void merge(const Telemetry& other, std::int64_t trial = -1);

  /// {"schema":"radiomc.telemetry/v1","metrics":{...},"phases":[...]}
  std::string to_json() const;

  /// Writes `to_json()` plus a trailing newline; returns false on I/O
  /// failure (path not writable).
  bool write_json_file(const std::string& path) const;
};

/// Publishes the engine's aggregate counters into `reg` under
/// "engine.slots", "engine.transmissions", "engine.deliveries",
/// "engine.collisions" and "engine.capture_deliveries", labeled with
/// {"protocol": protocol} so multiple networks (setup + the main run) can
/// share a registry. Counters accumulate across calls with equal labels.
void publish_net_metrics(const NetMetrics& m, MetricsRegistry& reg,
                         const std::string& protocol);

/// Publishes a fault schedule's transition totals as "faults.events"
/// counters labeled {"protocol": protocol, "kind": crash|recover|
/// link_down|link_up}, plus the engine's fault counters as
/// "engine.fault_jams" / "engine.fault_drops" / "engine.fault_link_blocked"
/// / "engine.fault_crashed_slots". Only nonzero values create series, so a
/// fault-free run's document stays byte-identical to a pre-fault build.
void publish_fault_metrics(const FaultSchedule& faults, const NetMetrics& m,
                           MetricsRegistry& reg, const std::string& protocol);

}  // namespace radiomc::telemetry

namespace radiomc {
/// Protocol-facing alias: configs declare `telemetry::Telemetry*`.
using TelemetryHub = telemetry::Telemetry;
}  // namespace radiomc
