#include "telemetry/jsonl_sink.h"

#include "telemetry/json_writer.h"

namespace radiomc::telemetry {

namespace {

const char* kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kData: return "data";
    case MsgKind::kAck: return "ack";
    case MsgKind::kLeader: return "leader";
    case MsgKind::kBfsAnnounce: return "bfs_announce";
    case MsgKind::kDfsToken: return "dfs_token";
    case MsgKind::kBcastData: return "bcast_data";
    case MsgKind::kNack: return "nack";
    case MsgKind::kSetupReport: return "setup_report";
  }
  return "unknown";
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& out, Options opt)
    : out_(&out), opt_(opt) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path, Options opt)
    : owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()),
      opt_(opt) {}

JsonlTraceSink::~JsonlTraceSink() { finish(); }

void JsonlTraceSink::roll_window(SlotTime t) {
  if (opt_.aggregate_every == 0) return;
  const SlotTime start = t - t % opt_.aggregate_every;
  if (win_any_ && start != win_start_) emit_window();
  if (!win_any_ || start != win_start_) {
    win_start_ = start;
    win_any_ = true;
    win_tx_ = win_rx_ = win_coll_ = 0;
  }
}

void JsonlTraceSink::emit_window() {
  std::string line;
  JsonWriter w(&line);
  w.begin_object();
  w.member("ev", "agg");
  w.member("t0", win_start_);
  w.member("t1", win_start_ + opt_.aggregate_every);
  w.member("tx", win_tx_);
  w.member("rx", win_rx_);
  w.member("coll", win_coll_);
  w.end_object();
  *out_ << line << '\n';
  ++lines_;
  win_any_ = false;
}

void JsonlTraceSink::event_line(const char* ev, SlotTime t, NodeId node,
                                ChannelId ch, const Message* m,
                                std::uint32_t tx_neighbors) {
  if (!opt_.events) return;
  std::string line;
  JsonWriter w(&line);
  w.begin_object();
  w.member("ev", ev);
  w.member("t", t);
  w.member("node", static_cast<std::uint64_t>(node));
  w.member("ch", static_cast<std::uint64_t>(ch));
  if (m != nullptr) {
    w.member("kind", kind_name(m->kind));
    w.member("origin", static_cast<std::uint64_t>(m->origin));
    w.member("seq", static_cast<std::uint64_t>(m->seq));
  } else {
    w.member("txn", static_cast<std::uint64_t>(tx_neighbors));
  }
  w.end_object();
  *out_ << line << '\n';
  ++lines_;
}

void JsonlTraceSink::on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                                 const Message& m) {
  roll_window(t);
  ++win_tx_;
  event_line("tx", t, sender, ch, &m, 0);
}

void JsonlTraceSink::on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                                const Message& m) {
  roll_window(t);
  ++win_rx_;
  event_line("rx", t, receiver, ch, &m, 0);
}

void JsonlTraceSink::on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                                  std::uint32_t tx_neighbors) {
  roll_window(t);
  ++win_coll_;
  event_line("coll", t, receiver, ch, nullptr, tx_neighbors);
}

void JsonlTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  if (opt_.aggregate_every != 0 && win_any_) emit_window();
  out_->flush();
}

}  // namespace radiomc::telemetry
