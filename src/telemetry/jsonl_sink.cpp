#include "telemetry/jsonl_sink.h"

#include "telemetry/json_writer.h"

namespace radiomc::telemetry {

namespace {

const char* kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kData: return "data";
    case MsgKind::kAck: return "ack";
    case MsgKind::kLeader: return "leader";
    case MsgKind::kBfsAnnounce: return "bfs_announce";
    case MsgKind::kDfsToken: return "dfs_token";
    case MsgKind::kBcastData: return "bcast_data";
    case MsgKind::kNack: return "nack";
    case MsgKind::kSetupReport: return "setup_report";
  }
  return "unknown";
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& out, Options opt)
    : out_(&out), opt_(opt) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path, Options opt)
    : owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()),
      opt_(opt) {}

JsonlTraceSink::~JsonlTraceSink() { finish(); }

void JsonlTraceSink::set_protocol(std::string protocol) {
  if (!schema_written_) protocol_ = std::move(protocol);
}

void JsonlTraceSink::set_slot_structure(const SlotStructure& slots) {
  if (!schema_written_) slots_ = slots;
}

void JsonlTraceSink::set_levels(std::vector<std::uint32_t> levels) {
  if (!schema_written_) levels_ = std::move(levels);
}

void JsonlTraceSink::write_line(const std::string& line) {
  *out_ << line << '\n';
  ++lines_;
}

void JsonlTraceSink::emit_schema() {
  if (schema_written_) return;
  schema_written_ = true;
  std::string line;
  JsonWriter w(&line);
  w.begin_object();
  w.member("ev", "schema");
  w.member("v", kTraceSchemaVersion);
  if (!protocol_.empty()) w.member("protocol", protocol_);
  if (slots_) {
    w.member("decay_len", static_cast<std::uint64_t>(slots_->decay_len));
    w.member("ack", slots_->ack_subslots);
    w.member("mod3", slots_->mod3_gating);
  }
  if (opt_.aggregate_every != 0) w.member("agg", opt_.aggregate_every);
  if (!levels_.empty()) {
    w.key("levels");
    w.begin_array();
    for (std::uint32_t l : levels_) w.value(static_cast<std::uint64_t>(l));
    w.end_array();
  }
  w.end_object();
  write_line(line);
}

void JsonlTraceSink::roll_window(SlotTime t) {
  if (opt_.aggregate_every == 0) return;
  const SlotTime start = t - t % opt_.aggregate_every;
  if (win_any_ && start != win_start_) emit_window();
  if (!win_any_ || start != win_start_) {
    win_start_ = start;
    win_any_ = true;
    win_tx_ = win_rx_ = win_coll_ = win_jam_ = 0;
  }
}

void JsonlTraceSink::emit_window() {
  emit_schema();
  std::string line;
  JsonWriter w(&line);
  w.begin_object();
  w.member("ev", "agg");
  w.member("t0", win_start_);
  w.member("t1", win_start_ + opt_.aggregate_every);
  w.member("tx", win_tx_);
  w.member("rx", win_rx_);
  w.member("coll", win_coll_);
  w.member("jam", win_jam_);
  w.end_object();
  write_line(line);
  win_any_ = false;
}

void JsonlTraceSink::event_line(const char* ev, SlotTime t, NodeId node,
                                ChannelId ch, const Message* m,
                                std::uint32_t tx_neighbors) {
  if (!opt_.events) return;
  if (opt_.max_events != 0 && events_written_ >= opt_.max_events) {
    if (dropped_ == 0) first_dropped_slot_ = t;
    ++dropped_;
    return;
  }
  emit_schema();
  std::string line;
  JsonWriter w(&line);
  w.begin_object();
  w.member("ev", ev);
  w.member("t", t);
  w.member("node", static_cast<std::uint64_t>(node));
  w.member("ch", static_cast<std::uint64_t>(ch));
  if (m != nullptr) {
    w.member("kind", kind_name(m->kind));
    w.member("origin", static_cast<std::uint64_t>(m->origin));
    w.member("seq", static_cast<std::uint64_t>(m->seq));
    // Lifecycle-bearing annotations, omitted when the field is a sentinel
    // so simple protocol stacks keep compact lines: the final destination
    // (ack matching needs the acked child), and — on deliveries only —
    // the immediate transmitter and its BFS parent (§4's accept rule is
    // "sender_parent == me", which is how the reader identifies accepted
    // child -> parent hops).
    if (m->dest != kNoNode && m->dest != kAllNodes)
      w.member("dest", static_cast<std::uint64_t>(m->dest));
    if (ev[0] == 'r') {  // "rx"
      if (m->sender != kNoNode)
        w.member("from", static_cast<std::uint64_t>(m->sender));
      if (m->sender_parent != kNoNode)
        w.member("fp", static_cast<std::uint64_t>(m->sender_parent));
    }
  } else {
    w.member("txn", static_cast<std::uint64_t>(tx_neighbors));
  }
  w.end_object();
  write_line(line);
  ++events_written_;
}

void JsonlTraceSink::on_transmit(SlotTime t, NodeId sender, ChannelId ch,
                                 const Message& m) {
  roll_window(t);
  ++win_tx_;
  event_line("tx", t, sender, ch, &m, 0);
}

void JsonlTraceSink::on_deliver(SlotTime t, NodeId receiver, ChannelId ch,
                                const Message& m) {
  roll_window(t);
  ++win_rx_;
  event_line("rx", t, receiver, ch, &m, 0);
}

void JsonlTraceSink::on_collision(SlotTime t, NodeId receiver, ChannelId ch,
                                  std::uint32_t tx_neighbors) {
  roll_window(t);
  // txn == 1 is a jam-killed clean reception (fault injection); txn >= 2 a
  // genuine collision. Aggregating them together would inflate collision
  // statistics under jamming.
  if (tx_neighbors >= 2) {
    ++win_coll_;
  } else {
    ++win_jam_;
  }
  event_line("coll", t, receiver, ch, nullptr, tx_neighbors);
}

void JsonlTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  emit_schema();
  if (opt_.aggregate_every != 0 && win_any_) emit_window();
  if (dropped_ > 0) {
    std::string line;
    JsonWriter w(&line);
    w.begin_object();
    w.member("ev", "truncated");
    w.member("t", first_dropped_slot_);
    w.member("dropped", dropped_);
    w.end_object();
    write_line(line);
  }
  out_->flush();
}

}  // namespace radiomc::telemetry
