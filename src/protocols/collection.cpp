#include "protocols/collection.h"

#include <algorithm>

#include "perf/profiler.h"
#include "radio/network.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

namespace {

bool is_upbound_kind(MsgKind k) {
  switch (k) {
    case MsgKind::kData:
    case MsgKind::kNack:
    case MsgKind::kSetupReport:
      return true;
    case MsgKind::kAck:
    case MsgKind::kLeader:
    case MsgKind::kBfsAnnounce:
    case MsgKind::kDfsToken:
    case MsgKind::kBcastData:
      return false;
  }
  return false;
}

}  // namespace

CollectionStation::CollectionStation(NodeId me, const BfsTree& tree,
                                     CollectionConfig cfg, Rng rng)
    : CollectionStation(me, cfg, rng) {
  set_local(tree.parent[me], tree.level[me], me == tree.root);
}

CollectionStation::CollectionStation(NodeId me, CollectionConfig cfg, Rng rng)
    : me_(me),
      clock_(cfg.slots),
      rng_(rng),
      decay_(cfg.slots.decay_len),
      dedup_guard_(cfg.dedup_guard),
      autosleep_(cfg.autosleep) {}

void CollectionStation::on_attach(Waker& w) {
  if (!autosleep_) return;  // legacy contract: permanently active
  waker_ = &w;
  w.set_autosleep(true);
}

void CollectionStation::set_local(NodeId parent, std::uint32_t level,
                                  bool is_root) {
  parent_ = parent;
  level_ = level;
  is_root_ = is_root;
  bound_ = true;
  if (waker_ != nullptr) waker_->wake();
}

void CollectionStation::reset(Rng rng) {
  rng_ = rng;
  parent_ = kNoNode;
  level_ = 0;
  is_root_ = false;
  bound_ = false;
  buffer_.clear();
  decay_.stop();
  attempt_phase_ = static_cast<std::uint64_t>(-1);
  attempt_done_ = false;
  just_transmitted_ = false;
  ack_to_send_.reset();
  sink_.clear();
  accept_log_.clear();
  seen_.clear();
}

std::optional<Message> CollectionStation::poll(SlotTime t) {
  if (!bound_) return std::nullopt;
  // Autosleep duty check: stay scheduled while there is anything left to
  // send (a buffered message mid-drain or a pending ack), even in slots
  // where the phase clock or the Decay coin keeps us silent. With neither,
  // this poll is a pure no-op and the engine may deschedule us until
  // deliver/inject wakes the station.
  if (waker_ != nullptr && (ack_to_send_.has_value() ||
                            (!is_root_ && !buffer_.empty())))
    waker_->wake();
  const PhaseClock::SlotInfo info = clock_.decode(t);

  if (info.is_ack) {
    if (ack_to_send_) {
      Message ack = *ack_to_send_;
      ack_to_send_.reset();
      return ack;
    }
    return std::nullopt;
  }

  // Data subslot.
  if (is_root_ || buffer_.empty()) return std::nullopt;
  if (!clock_.level_may_send_data(info, level_)) return std::nullopt;

  if (info.phase != attempt_phase_) {
    // First transmission opportunity of this phase with a nonempty buffer:
    // begin one Decay invocation for the head message (§4.1: one message
    // per node per phase).
    attempt_phase_ = info.phase;
    attempt_done_ = false;
    decay_.start();
  }
  if (attempt_done_ || !decay_.wants_transmit()) return std::nullopt;

  Message m = buffer_.front();
  m.sender = me_;
  m.sender_parent = parent_;  // §4: appended so receivers can classify
  just_transmitted_ = true;
  return m;
}

void CollectionStation::deliver(SlotTime t, const Message& m) {
  if (!bound_) return;
  // Any reception may create a duty (an ack to emit, a message to relay),
  // and deliveries reach sleeping stations too — wake unconditionally; the
  // next poll re-evaluates and lets the engine park us again if not.
  if (waker_ != nullptr) waker_->wake();
  const PhaseClock::SlotInfo info = clock_.decode(t);

  if (info.is_ack) {
    if (m.kind != MsgKind::kAck || m.dest != me_) return;
    if (buffer_.empty()) return;
    const Message& head = buffer_.front();
    if (m.origin == head.origin && m.seq == head.seq) {
      // Our parent has the message; it now lives on exactly one buffer.
      buffer_.pop_front();
      decay_.stop();
      attempt_done_ = true;
    }
    return;
  }

  // Data subslot: accept only messages from our BFS children (§4).
  if (!is_upbound_kind(m.kind) || m.sender_parent != me_) return;

  Message ack;
  ack.kind = MsgKind::kAck;
  ack.dest = m.sender;
  ack.origin = m.origin;
  ack.seq = m.seq;
  ack_to_send_ = ack;

  if (dedup_guard_) {
    // Remark 3 mode: a lost ack makes the child retransmit; acknowledge
    // the duplicate again (or it retries forever) but deliver it once.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(m.origin) << 32) | m.seq;
    if (!seen_.insert(key).second) return;
  }

  if (record_accepts_) accept_log_.emplace_back(info.phase, level_ + 1);

  if (is_root_) {
    sink_.push_back({t, m});
    if (root_handler_) root_handler_(t, m);
  } else {
    buffer_.push_back(m);
  }
}

void CollectionStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

void CollectionStation::inject(const Message& m) {
  require(m.origin == me_, "CollectionStation::inject: origin must be self");
  if (waker_ != nullptr) waker_->wake();
  if (is_root_) {
    sink_.push_back({0, m});
    if (root_handler_) root_handler_(0, m);
    return;
  }
  buffer_.push_back(m);
}

CollectionOutcome run_collection(const Graph& g, const BfsTree& tree,
                                 std::vector<Message> initial,
                                 const CollectionConfig& cfg,
                                 std::uint64_t seed, SlotTime max_slots) {
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "run_collection: tree/graph size mismatch");

  Rng master(seed);
  std::vector<std::unique_ptr<CollectionStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    stations.push_back(std::make_unique<CollectionStation>(
        v, tree, cfg, master.split(v)));
    stations.back()->record_accepts(true);
  }
  const std::size_t expected = initial.size();
  for (const Message& m : initial) {
    require(m.origin < n, "run_collection: origin out of range");
    stations[m.origin]->inject(m);
  }

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : stations) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);

  RadioNetwork net(g);
  if (cfg.trace != nullptr) net.set_trace(cfg.trace);
  if (cfg.slot_hook != nullptr) net.set_slot_hook(cfg.slot_hook);
  FaultSchedule faults;
  if (cfg.faults.any()) {
    // Derived after the station splits, and only when a plan is active, so
    // fault-free runs consume exactly the historical stream.
    faults = FaultSchedule(g, cfg.faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&faults);
  }
  net.attach(std::move(ptrs));

  CollectionOutcome out;
  const std::uint64_t slots_per_phase = stations[0]->clock().slots_per_phase();
  out.occupied_phases.assign(tree.depth + 1, 0);
  out.advance_phases.assign(tree.depth + 1, 0);

  // Messages counted into occupancy at the phase boundary; advances read
  // from the accept logs afterwards and conditioned on start-of-phase
  // occupancy, matching Theorem 4.1's hypothesis ("a level containing
  // messages at the beginning of a phase").
  std::vector<bool> occupied_now(tree.depth + 1, false);
  std::vector<std::uint64_t> depth_now(tree.depth + 1, 0);
  std::vector<std::vector<std::uint64_t>> occupied_list(tree.depth + 1);
  auto snapshot_occupancy = [&](std::uint64_t phase) {
    std::fill(occupied_now.begin(), occupied_now.end(), false);
    std::fill(depth_now.begin(), depth_now.end(), 0);
    for (NodeId v = 0; v < n; ++v)
      if (stations[v]->buffer_size() > 0) {
        occupied_now[tree.level[v]] = true;
        depth_now[tree.level[v]] += stations[v]->buffer_size();
      }
    for (std::uint32_t l = 1; l <= tree.depth; ++l)
      if (occupied_now[l]) {
        ++out.occupied_phases[l];
        occupied_list[l].push_back(phase);
      }
    if (cfg.telemetry != nullptr) {
      // Start-of-phase queued messages per BFS level: the measured
      // occupancy to set against model 4's tandem-queue prediction
      // (src/queueing/), one histogram per level.
      for (std::uint32_t l = 1; l <= tree.depth; ++l)
        cfg.telemetry->metrics
            .distribution("collection.queue_depth",
                          {{"level", std::to_string(l)}})
            .add(static_cast<std::int64_t>(depth_now[l]));
    }
  };

  const CollectionStation* root = stations[tree.root].get();
  std::size_t progress_count = root->root_sink().size();
  SlotTime progress_slot = 0;
  bool stalled = false;
  {
    perf::PerfSpan drain_span(cfg.profiler, "collection.drain");
    while (root->root_sink().size() < expected && net.now() < max_slots) {
      if (net.now() % slots_per_phase == 0)
        snapshot_occupancy(net.now() / slots_per_phase);
      net.step();
      if (cfg.stall_slots > 0) {
        if (root->root_sink().size() > progress_count) {
          progress_count = root->root_sink().size();
          progress_slot = net.now();
        } else if (net.now() - progress_slot >= cfg.stall_slots) {
          stalled = true;
          break;
        }
      }
    }
  }
  out.completed = root->root_sink().size() >= expected;
  out.status = out.completed ? RunStatus::kOk
               : stalled    ? RunStatus::kDegraded
                            : RunStatus::kFailed;
  out.slots = net.now();
  out.phases = (net.now() + slots_per_phase - 1) / slots_per_phase;
  out.deliveries = root->root_sink();
  out.engine_polls = net.engine_stats().station_polls;

  // An "advance of level i in phase p" = some level-(i-1) node accepted a
  // message from a level-i child during p. Count each (level, phase) once,
  // and only when level i held messages at the start of p.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> events;
  for (NodeId v = 0; v < n; ++v)
    for (auto [phase, from_level] : stations[v]->accept_log())
      if (from_level <= tree.depth) events.emplace_back(from_level, phase);
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  for (auto [from_level, phase] : events) {
    const auto& occ = occupied_list[from_level];
    if (std::binary_search(occ.begin(), occ.end(), phase))
      ++out.advance_phases[from_level];
  }

  if (cfg.profiler != nullptr) {
    cfg.profiler->count("collection.slots", out.slots);
    cfg.profiler->count("collection.phases", out.phases);
    cfg.profiler->count("collection.delivered", out.deliveries.size());
  }

  if (cfg.telemetry != nullptr) {
    telemetry::Telemetry& tel = *cfg.telemetry;
    tel.timeline.record(
        "collection", "drain", 0, out.slots,
        {{"k", static_cast<std::int64_t>(expected)},
         {"phases", static_cast<std::int64_t>(out.phases)},
         {"depth", static_cast<std::int64_t>(tree.depth)},
         {"completed", out.completed ? 1 : 0}});
    tel.metrics.counter("collection.messages_delivered")
        .inc(out.deliveries.size());
    tel.metrics.counter("collection.phases").inc(out.phases);
    // Theorem 4.1's per-level event counts: phases a level was occupied at
    // the start, and among those, phases it advanced a message upward.
    for (std::uint32_t l = 1; l <= tree.depth; ++l) {
      const telemetry::Labels lv = {{"level", std::to_string(l)}};
      tel.metrics.counter("collection.occupied_phases", lv)
          .inc(out.occupied_phases[l]);
      tel.metrics.counter("collection.advance_phases", lv)
          .inc(out.advance_phases[l]);
    }
    telemetry::publish_net_metrics(net.metrics(), tel.metrics, "collection");
    if (faults.enabled()) {
      telemetry::publish_fault_metrics(faults, net.metrics(), tel.metrics,
                                       "collection");
      tel.timeline.record(
          "faults", "collection", 0, out.slots,
          {{"crashes", static_cast<std::int64_t>(faults.stats().crashes)},
           {"recoveries",
            static_cast<std::int64_t>(faults.stats().recoveries)},
           {"link_downs",
            static_cast<std::int64_t>(faults.stats().link_downs)},
           {"jams", static_cast<std::int64_t>(net.metrics().fault_jams)},
           {"drops", static_cast<std::int64_t>(net.metrics().fault_drops)},
           {"degraded", out.status == RunStatus::kDegraded ? 1 : 0}});
    }
  }
  return out;
}

}  // namespace radiomc
