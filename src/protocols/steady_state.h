#pragma once

// Reactive (open-system) collection: the §4 protocol driven by a Bernoulli
// arrival process, the regime the queueing analysis of §4.3 models. Each
// phase, with probability lambda, one new message is originated; the
// driver samples the in-network population at phase starts and tracks
// per-message sojourn (origination -> root arrival, in phases).
//
// This is the measurement behind experiment E15: the real network is
// dominated by the tandem model (Thm 4.15), so its stationary population
// and sojourn must sit at or below the model-4 closed forms
// D * lambda(1-lambda)/(mu-lambda) and D * (1-lambda)/(mu-lambda).

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "support/stats.h"

namespace radiomc {

enum class ArrivalPlacement {
  kDeepestLevel,  ///< arrivals at max-level nodes (the models' node D)
  kUniform,       ///< arrivals at uniform random non-root nodes
};

struct SteadyStateOutcome {
  std::uint64_t phases = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t delivered = 0;
  /// In-network message count sampled at phase starts (after warmup).
  OnlineStats population;
  /// Per delivered message: phases between origination and root arrival.
  OnlineStats sojourn_phases;
};

/// `faults`: optional fault plan compiled against the collection network.
/// The run is bounded by its phase count, so no watchdog applies; faults
/// show up as depressed delivery counts and inflated sojourns.
/// `profiler` (optional) gets a "steady.run" span with one aggregated
/// "steady.phase" child; `slot_hook` (optional) is installed on the
/// network. Both are observers only — the arrival and slot streams are
/// byte-identical with them on or off.
SteadyStateOutcome run_collection_steady_state(
    const Graph& g, const BfsTree& tree, double lambda_per_phase,
    std::uint64_t phases, std::uint64_t warmup_phases, std::uint64_t seed,
    ArrivalPlacement placement = ArrivalPlacement::kDeepestLevel,
    const FaultPlan& faults = {}, perf::Profiler* profiler = nullptr,
    SlotHook* slot_hook = nullptr);

}  // namespace radiomc
