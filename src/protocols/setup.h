#pragma once

// The full setup phase (§2 + the §5.1 preparation), made to *always*
// succeed — only its running time is random — via the paper's own
// transformation: verify by collection against a globally known schedule
// and reinvoke the whole phase on failure ("since all nodes know when the
// invocation should terminate, different invocations by the same processor
// cannot exist concurrently").
//
// Each attempt j runs a fixed, globally known schedule of epochs (every
// length is a function of n, Delta and j only, so all nodes agree on the
// boundaries with no communication):
//
//   A  leader election        max-flooding (leader_election.h); budget
//                             doubles with j, which is what makes the
//                             overall setup Las Vegas.
//   B  BFS + verification     staged BFS construction (bfs_build.h) on
//                             channel 0 while, concurrently on channel 1,
//                             every node that joins reports to the root
//                             with the collection protocol (§2: "when
//                             joining the tree each node sends a message
//                             to the root").
//   D  token DFS of the graph (dfs_numbering.h). Initiated by a root that
//                             received all n-1 join reports; teaches every
//                             node its neighbors' BFS parents and levels,
//                             and doubles as the level-consistency check.
//   E  token DFS of the tree  assigns DFS addresses and child intervals.
//   F  final verification     every node reports its consistency verdict
//                             (joined + level-consistent + visited +
//                             numbered) to the root over channel 1.
//   G  completion flood       a root whose F-verification passed floods
//                             "setup complete" (bgi_broadcast.h); a node is
//                             done when it hears it. Any shortfall anywhere
//                             simply lets the schedule roll into attempt
//                             j+1, where every station resets.
//
// The expected cost is dominated by the B/F collections, O(n log Delta),
// plus the attempt doubling — within the paper's O((n + D log n) log Delta)
// setup bound. Because epochs have fixed budgets, the *elapsed* setup time
// is the schedule length of the successful attempt; `work_slots` addition-
// ally reports when the root's verification actually completed.

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "protocols/bfs_build.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/collection.h"
#include "protocols/dfs_numbering.h"
#include "protocols/leader_election.h"
#include "protocols/tree.h"
#include "radio/station.h"
#include "radio/trace.h"
#include "support/rng.h"

namespace radiomc {

struct SetupTuning {
  /// Multiplier on the B and F collection budgets (in units of n*decay_len).
  std::uint32_t verify_mult = 96;
  /// Multiplier on the completion-flood budget (units of n*decay_len).
  std::uint32_t flood_mult = 4;
  /// Phases per leader-election budget unit (units of (log2 n + 2)).
  std::uint32_t leader_mult = 8;
  /// §8 Remark 2: elect with random campaign values of this many bits
  /// instead of the nodes' ids (0 = use ids). Collisions of the maximum
  /// draw are caught by the verification epochs and trigger a redraw in
  /// the next attempt, so the setup stays always-correct even with tiny
  /// id spaces.
  std::uint32_t random_id_bits = 0;

  /// Optional observability: run_setup records one span per epoch per
  /// attempt (A..G, on the globally known schedule boundaries) plus
  /// attempt/restart counters and the engine totals. Null = off.
  TelemetryHub* telemetry = nullptr;
  /// Optional physical-event sink installed on the setup network.
  TraceSink* trace = nullptr;

  /// Optional perf instrumentation: run_setup opens one "setup.attempt"
  /// span per attempt with one child span per epoch (A..G boundaries are
  /// globally known, so the spans need no station cooperation). Write-only
  /// — timing never reaches the schedule or an Rng (perf-purity).
  perf::Profiler* profiler = nullptr;
  /// Optional per-slot observer installed on the setup network.
  SlotHook* slot_hook = nullptr;

  /// Fault injection (src/faults/) applied to the setup network itself.
  /// The verify/restart machinery is what tolerates it: a mid-epoch crash
  /// surfaces as a failed verification and the schedule rolls into the
  /// next attempt; crashed stations resynchronize to the globally known
  /// schedule on recovery. All-zero = no faults.
  FaultPlan faults;
};

/// The globally known epoch schedule of one setup attempt.
struct SetupSchedule {
  SlotTime le = 0;    ///< epoch A length
  SlotTime bv = 0;    ///< epoch B length
  SlotTime dfs1 = 0;  ///< epoch D length
  SlotTime dfs2 = 0;  ///< epoch E length
  SlotTime fv = 0;    ///< epoch F length
  SlotTime gl = 0;    ///< epoch G length

  SlotTime attempt_length() const noexcept {
    return le + bv + dfs1 + dfs2 + fv + gl;
  }
};
SetupSchedule setup_schedule(NodeId n, std::uint32_t decay_len,
                             const SetupTuning& tuning, std::uint32_t attempt);

struct SetupOutcome {
  bool ok = false;
  /// kOk iff ok; otherwise kDegraded — the attempt budget is the setup
  /// phase's built-in watchdog, so exhaustion is a clean structured
  /// outcome, never a hang.
  RunStatus status = RunStatus::kOk;
  SlotTime slots = 0;       ///< schedule time consumed (all attempts)
  SlotTime work_slots = 0;  ///< when the root's final verification completed
  std::uint32_t attempts = 0;
  NodeId leader = kNoNode;
  BfsTree tree;
  DfsLabels labels;
  std::vector<RoutingInfo> routing;
};

/// Runs the complete setup on graph `g`. Retries attempts (with doubled
/// leader budget) until one succeeds or `max_attempts` is exhausted; with
/// the default tuning a handful of attempts virtually always suffices, and
/// failure here indicates a configuration error, not bad luck.
SetupOutcome run_setup(const Graph& g, std::uint64_t seed,
                       SetupTuning tuning = {}, std::uint32_t max_attempts = 12);

/// §8 Remark 1: when n is unknown and only an upper bound N is, the BFS
/// tree can still be found with probability 1 - eps in expected
/// O(D log(N/eps) log Delta) time — but the §2 always-succeed verification
/// is impossible (the root cannot know how many reports to expect), so the
/// result is Monte Carlo. This driver runs leader election + BFS + the
/// DFS preparation with budgets derived from (N, eps) and reports whether
/// the run actually produced a correct tree (ground-truth check, available
/// to the experiment but not to the nodes).
struct UnknownNOutcome {
  bool tree_ok = false;   ///< spanning true-BFS tree was built
  bool prep_ok = false;   ///< DFS preparation completed consistently
  SlotTime slots = 0;
  BfsTree tree;           ///< valid iff tree_ok
  DfsLabels labels;       ///< valid iff prep_ok
  std::vector<RoutingInfo> routing;  ///< valid iff prep_ok
};
UnknownNOutcome run_setup_unknown_n(const Graph& g, NodeId n_upper,
                                    double eps, std::uint64_t seed);

}  // namespace radiomc
