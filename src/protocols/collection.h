#pragma once

// The collection protocol (§4): converge-cast of messages from arbitrary
// sources to the root of the BFS tree.
//
// Every node keeps a buffer of unacknowledged messages. The protocol
// proceeds in phases; in each phase a node with a nonempty buffer runs one
// Decay invocation to send its head message to its BFS parent on the data
// subslots, and the interleaved ack subslots carry the deterministic
// acknowledgements of §3. A message is removed from the sender's buffer
// exactly when its parent acknowledged it, so messages live on exactly one
// buffer and climb the tree child -> parent (§4.1).
//
// Messages carry the sender's id and the sender's BFS-parent id (§4); a
// node accepts exactly the messages whose `sender_parent` field names
// itself, i.e. messages from its own BFS children.
//
// Randomness affects only the running time: on the graph spanned by the
// BFS tree the protocol always succeeds (§1.2).

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "faults/fault_plan.h"
#include "protocols/decay.h"
#include "protocols/tree.h"
#include "radio/schedule.h"
#include "radio/station.h"
#include "radio/trace.h"
#include "support/rng.h"
#include "telemetry/telemetry.h"

namespace radiomc {

namespace perf {
class Profiler;  // src/perf/profiler.h; forward-declared so no protocol
                 // header includes the measurement layer (perf-purity)
}  // namespace perf

struct CollectionConfig {
  SlotStructure slots;  ///< decay_len from Delta; ack + mod-3 on by default

  /// §8 Remark 3: under the capture conflict model an acknowledgement can
  /// be lost (the deterministic Theorem 3.1 argument needs collisions to
  /// be silent), so a sender may retransmit a message its parent already
  /// has. With the guard on, receivers remember accepted (origin, seq)
  /// pairs, re-acknowledge duplicates, and deliver each message once —
  /// the paper's "more complicated, less reliable and slower protocol".
  /// Off by default: the main model needs no duplicate state.
  bool dedup_guard = false;

  /// Opt into the active-set engine's autosleep (radio/waker.h): a station
  /// with an empty buffer and no pending ack is descheduled until a
  /// reception or an inject wakes it. Protocol output is byte-identical
  /// either way — an idle CollectionStation poll mutates nothing and
  /// consumes no randomness (DecayProcess::wants_transmit is const; the
  /// coin is flipped only after an actual transmission) — proven A/B by
  /// tests/engine_diff_test.cpp. Only EngineStats::station_polls differs.
  /// Takes effect only where the station is engine-attached directly (via
  /// SingleStation); embedded uses (setup, channel mux) stay always-active.
  bool autosleep = true;

  /// Optional observability, used by run_collection: phase spans, per-level
  /// advance counters and queue-depth histograms, engine counters. Not part
  /// of the radio model — the protocol never reads it.
  TelemetryHub* telemetry = nullptr;
  /// Optional physical-event sink installed on the driver's network.
  TraceSink* trace = nullptr;

  /// Optional perf instrumentation: run_collection opens a "collection.
  /// drain" span and bumps slot/phase/delivery counters. Write-only from
  /// here — timing never flows back into the protocol (perf-purity).
  perf::Profiler* profiler = nullptr;
  /// Optional per-slot observer installed on the driver's network (e.g. a
  /// perf::SnapshotStreamer). Sees only the slot counter.
  SlotHook* slot_hook = nullptr;

  /// Fault injection (src/faults/): run_collection compiles this against
  /// the graph and a stream split off the run seed. All-zero (the default)
  /// means no faults and the engine's exact legacy behavior.
  FaultPlan faults;
  /// Progress watchdog: when > 0 and the root has received nothing for
  /// this many slots, the driver stops with RunStatus::kDegraded instead
  /// of burning the rest of max_slots. 0 = off.
  SlotTime stall_slots = 0;

  static CollectionConfig for_graph(const Graph& g) {
    CollectionConfig c;
    c.slots.decay_len = decay_length(g.max_degree());
    return c;
  }
};

/// Per-node state machine of the collection protocol. Single-channel
/// (SubStation); compose with ChannelMuxStation / TimeDivisionStation to
/// run it next to a distribution pipeline (§1.4).
class CollectionStation final : public SubStation {
 public:
  struct Delivery {
    SlotTime slot = 0;
    Message msg;
  };

  CollectionStation(NodeId me, const BfsTree& tree, CollectionConfig cfg,
                    Rng rng);

  /// Unbound variant for the setup phase: the node's tree position arrives
  /// later, via set_local, when it joins the BFS tree. Until then the
  /// station neither sends nor accepts.
  CollectionStation(NodeId me, CollectionConfig cfg, Rng rng);
  void set_local(NodeId parent, std::uint32_t level, bool is_root);
  bool bound() const noexcept { return bound_; }
  /// Clears all protocol state (buffers, sink, logs) and re-seeds the
  /// randomness; the root handler is kept. Used between setup attempts.
  void reset(Rng rng);

  void on_attach(Waker& w) override;
  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  /// Application-level origination: enqueue a message for the root. The
  /// caller provides origin == this node's id and a per-origin-unique seq.
  /// Wakes the station when autosleep descheduled it (drivers inject
  /// between slots; Waker::wake is merged before the next poll).
  void inject(const Message& m);

  NodeId id() const noexcept { return me_; }
  std::uint32_t level() const noexcept { return level_; }
  bool is_root() const noexcept { return is_root_; }
  std::size_t buffer_size() const noexcept { return buffer_.size(); }

  /// Root only: everything delivered so far, in arrival order.
  const std::vector<Delivery>& root_sink() const noexcept { return sink_; }
  /// Root only: hook invoked on each arrival (used by BroadcastService to
  /// feed the distribution pipeline). Set once before the run.
  void set_root_handler(std::function<void(SlotTime, const Message&)> h) {
    root_handler_ = std::move(h);
  }

  /// Accepted-from-child log for Theorem 4.1 measurements: (phase, level of
  /// the child the message came from). Enabled via `record_accepts`.
  void record_accepts(bool on) noexcept { record_accepts_ = on; }
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& accept_log()
      const noexcept {
    return accept_log_;
  }

  const PhaseClock& clock() const noexcept { return clock_; }

 private:
  NodeId me_;
  NodeId parent_ = kNoNode;
  std::uint32_t level_ = 0;
  bool is_root_ = false;
  bool bound_ = false;
  PhaseClock clock_;
  Rng rng_;

  std::deque<Message> buffer_;
  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  bool attempt_done_ = false;     ///< acked this phase; stay silent
  bool just_transmitted_ = false;
  std::optional<Message> ack_to_send_;

  std::vector<Delivery> sink_;
  std::function<void(SlotTime, const Message&)> root_handler_;
  bool record_accepts_ = false;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> accept_log_;
  bool dedup_guard_ = false;
  std::set<std::uint64_t> seen_;  ///< (origin << 32) | seq, guard mode only
  bool autosleep_ = false;
  Waker* waker_ = nullptr;  ///< set by on_attach iff autosleep_ is on
};

/// Standalone driver: places `initial` messages on their origins' buffers,
/// runs the protocol until the root has received all of them (or max_slots
/// elapses), and reports timing plus the per-level phase statistics used by
/// the Theorem 4.1 experiment.
struct CollectionOutcome {
  bool completed = false;
  /// kOk iff completed; kDegraded when the stall watchdog fired;
  /// kFailed when max_slots ran out.
  RunStatus status = RunStatus::kOk;
  SlotTime slots = 0;
  std::uint64_t phases = 0;
  std::vector<CollectionStation::Delivery> deliveries;

  /// Per level i >= 1: phases at whose start level i held >= 1 message, and
  /// among those, phases during which >= 1 message moved from level i to
  /// level i-1 (Theorem 4.1's event).
  std::vector<std::uint64_t> occupied_phases;
  std::vector<std::uint64_t> advance_phases;

  /// Engine on_slot invocations (EngineStats::station_polls): scheduling
  /// economy, not radio physics — the autosleep A/B tests assert it drops
  /// while everything above stays byte-identical.
  std::uint64_t engine_polls = 0;
};

CollectionOutcome run_collection(const Graph& g, const BfsTree& tree,
                                 std::vector<Message> initial,
                                 const CollectionConfig& cfg,
                                 std::uint64_t seed,
                                 SlotTime max_slots = 100'000'000);

}  // namespace radiomc
