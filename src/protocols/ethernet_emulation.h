#pragma once

// Virtual shared bus with collision detection (§1.3):
//   "In [4] Bar-Yehuda et al. ... show how to detect conflicts and
//    simulate a single hop network. Thus they show how to use protocols
//    designed for the ETHERNET in a multi-hop network."
//
// This module provides that capability on top of this paper's own
// machinery. The emulation proceeds in *rounds*, each round emulating one
// slot of a single-hop channel with ternary feedback:
//
//  1. every station reports to the root over the collection channel —
//     either the frame it offers this round or an explicit "idle" report;
//  2. when the root holds all n reports it classifies the round (silence /
//     success / collision — i.e. 0, 1, or >= 2 offered frames) and
//     broadcasts the outcome over the distribution channel;
//  3. a station starts round r+1 when it delivers outcome r, so all
//     stations observe the identical feedback sequence.
//
// The emulation is deterministic and loss-free (it inherits the §3/§6
// reliability of the underlying channels); its cost is O((n + D) log Delta)
// slots per round — the price of exact per-round feedback. [4] achieves
// cheaper emulation with probabilistic feedback; see DESIGN.md.
//
// `EthernetBackoff` implements the classic slotted-ALOHA/Ethernet binary
// exponential backoff on top of the bus, demonstrating §1.3's point that
// single-hop MAC protocols run unchanged over a multi-hop network.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/fault_schedule.h"
#include "protocols/collection.h"
#include "protocols/distribution.h"
#include "protocols/tree.h"
// The emulation layer (§1.3) is itself the "wire": it owns the
// RadioNetwork that plays the single-hop ethernet segment.
// radiomc-lint: allow(engine-include) reason=emulation owns the virtual bus engine
#include "radio/network.h"
#include "support/rng.h"

namespace radiomc {

class VirtualEthernet {
 public:
  struct Config {
    CollectionConfig collection;
    DistributionConfig distribution;
    /// Faults injected into the virtual bus's own radio layer. The §3/§6
    /// reliability of the underlying channels absorbs jam/drop noise (the
    /// bus stays exact, just slower). Crash plans without a recover_rate
    /// can stall a round forever — the root waits for all n reports — so
    /// pair crash_rate with recovery, or bound the run with max_slots.
    /// All-zero (the default) is byte-identical to the pre-fault-aware
    /// bus: the fault seed is only drawn when the plan is enabled.
    FaultPlan faults;

    static Config for_graph(const Graph& g) {
      Config c;
      c.collection = CollectionConfig::for_graph(g);
      c.distribution = DistributionConfig::for_graph(g);
      return c;
    }
  };

  enum class Feedback : std::uint8_t { kSilence, kSuccess, kCollision };

  struct RoundOutcome {
    std::uint32_t round = 0;
    Feedback kind = Feedback::kSilence;
    NodeId winner = kNoNode;       ///< valid for kSuccess
    std::uint32_t frame = 0;       ///< valid for kSuccess (31-bit payload)
  };

  /// A station's offer for a round: nullopt = stay idle.
  using Policy =
      std::function<std::optional<std::uint32_t>(NodeId node,
                                                 std::uint32_t round)>;

  VirtualEthernet(const Graph& g, const BfsTree& tree, Config cfg,
                  std::uint64_t seed);

  void set_policy(Policy p) { policy_ = std::move(p); }

  /// Runs until every station has delivered `rounds` outcomes (or
  /// max_slots elapse). If `halt` is set, it is evaluated on the root's
  /// outcome stream after every published round; once true, no further
  /// rounds start and the run drains so every station ends with the same
  /// stream. Returns the outcome log (identical at every station by
  /// construction; verified by the tests).
  using HaltFn = std::function<bool(const std::vector<RoundOutcome>&)>;
  std::vector<RoundOutcome> run_rounds(std::uint32_t rounds,
                                       SlotTime max_slots = 200'000'000,
                                       HaltFn halt = nullptr);

  SlotTime now() const;
  /// The outcome sequence as delivered at a given node (for tests).
  const std::vector<RoundOutcome>& outcomes_at(NodeId v) const {
    return node_outcomes_[v];
  }
  /// Radio-layer counters of the virtual bus (fault_jams / fault_drops
  /// show how much noise the emulation absorbed).
  const NetMetrics& bus_metrics() const;

 private:
  void start_round(NodeId v, std::uint32_t round);
  void pump();

  const Graph& g_;
  const BfsTree& tree_;
  Config cfg_;
  Policy policy_;
  std::vector<std::unique_ptr<CollectionStation>> coll_;
  std::vector<std::unique_ptr<DistributionStation>> dist_;
  std::vector<std::unique_ptr<Station>> muxes_;
  std::unique_ptr<FaultSchedule> faults_;  ///< null when the plan is off
  std::unique_ptr<RadioNetwork> net_;

  std::vector<std::uint32_t> node_round_;       ///< rounds observed so far
  std::vector<std::uint32_t> next_up_seq_;
  std::vector<std::vector<RoundOutcome>> node_outcomes_;

  // Root bookkeeping.
  std::map<std::uint32_t, std::vector<std::pair<NodeId, std::uint64_t>>>
      reports_;                                  ///< round -> (node, payload)
  std::uint32_t root_round_published_ = 0;
};

/// Binary exponential backoff over the virtual bus: every station with a
/// backlog offers its next frame with probability 2^-backoff, doubling the
/// backoff on collision feedback and resetting it on success. Returns when
/// all backlogs drained (the bus carried every frame exactly once).
struct BackoffOutcome {
  bool completed = false;
  std::uint32_t rounds_used = 0;
  SlotTime slots = 0;
  std::vector<std::uint32_t> delivered_frames;  ///< in bus order
  NetMetrics net;  ///< the virtual bus's radio-layer counters
};
/// `faults` is injected into the bus's radio layer (see
/// VirtualEthernet::Config::faults); the default disabled plan leaves the
/// run byte-identical to the historical fault-free signature.
BackoffOutcome run_ethernet_backoff(const Graph& g, const BfsTree& tree,
                                    const std::vector<std::uint32_t>& backlog_per_node,
                                    std::uint64_t seed,
                                    std::uint32_t max_rounds = 4096,
                                    const FaultPlan& faults = {});

}  // namespace radiomc
