#pragma once

// The ranking application (§7): given n processors with distinct
// application ids, renumber them 1..n preserving order, in expected
// O(n log n log Delta) slots.
//
// Phase 1 collects every node's (application id, own DFS address) to the
// root with the collection protocol; phase 2 has the root sort the ids,
// compute each node's rank, and deliver the ranks with the downward
// subprotocol of §5.3 (the root is an ancestor of everyone, so no upward
// leg is needed). 2n - 2 messages in total.

#include <cstdint>
#include <vector>

#include "protocols/collection.h"
#include "protocols/dfs_numbering.h"
#include "protocols/point_to_point.h"
#include "telemetry/telemetry.h"

namespace radiomc {

struct RankingOutcome {
  bool completed = false;
  /// kOk iff completed; kDegraded when either phase's stall watchdog
  /// fired; kFailed when a slot budget ran out.
  RunStatus status = RunStatus::kOk;
  SlotTime collect_slots = 0;
  SlotTime deliver_slots = 0;
  SlotTime total_slots() const noexcept { return collect_slots + deliver_slots; }
  /// rank[v] in 1..n; order-isomorphic to app_ids.
  std::vector<std::uint32_t> rank;
};

/// Runs the full ranking protocol. `app_ids[v]` is node v's application id
/// (must be distinct). Uses an already-prepared tree (setup measured
/// separately, as in §7: "not including the setup costs of Section 2").
/// `telemetry`, when given, receives "ranking" collect/deliver spans (the
/// inner collection additionally reports through the same hub).
/// `faults` / `stall_slots` mirror CollectionConfig's fields: the fault
/// plan is applied to both phases (each phase's network compiles its own
/// schedule off the phase seed) and the watchdog turns a stalled phase
/// into a RunStatus::kDegraded outcome instead of a max_slots burn.
RankingOutcome run_ranking(const Graph& g, const PreparationResult& prep,
                           const std::vector<std::uint64_t>& app_ids,
                           std::uint64_t seed,
                           SlotTime max_slots = 200'000'000,
                           TelemetryHub* telemetry = nullptr,
                           const FaultPlan& faults = {},
                           SlotTime stall_slots = 0);

}  // namespace radiomc
