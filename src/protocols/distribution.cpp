#include "protocols/distribution.h"

namespace radiomc {

namespace {
PhaseClock make_clock(const DistributionConfig& cfg) {
  SlotStructure s;
  s.decay_len = cfg.decay_len;
  s.ack_subslots = false;  // §6: broadcast payloads have many destinations
  s.mod3_gating = cfg.mod3_gating;
  return PhaseClock(s);
}
}  // namespace

DistributionStation::DistributionStation(NodeId me, const BfsTree& tree,
                                         DistributionConfig cfg, Rng rng)
    : me_(me),
      level_(tree.level[me]),
      is_root_(me == tree.root),
      n_(tree.num_nodes()),
      depth_(tree.depth),
      cfg_(cfg),
      clock_(make_clock(cfg)),
      rng_(rng),
      autosleep_(cfg.autosleep),
      decay_(cfg.decay_len) {
  // The era shares the 32-bit aux field with the hop level (16 bits each).
  require(!cfg_.epoch_tags || cfg_.window == 0 || tree.depth < 0x10000,
          "distribution: epoch tags pack the level into 16 bits; depth must "
          "be < 65536");
}

void DistributionStation::on_attach(Waker& w) {
  if (!autosleep_) return;  // legacy contract: permanently active
  waker_ = &w;
  w.set_autosleep(true);
}

std::uint32_t DistributionStation::wire_of(std::uint32_t abs) const noexcept {
  return cfg_.window == 0 ? abs : abs % (4 * cfg_.window);
}

std::uint32_t DistributionStation::era_of(std::uint32_t abs) const noexcept {
  return cfg_.window == 0 ? 0 : (abs / (4 * cfg_.window)) & 0xFFFFu;
}

std::optional<std::uint32_t> DistributionStation::abs_of(
    std::uint32_t wire) const noexcept {
  if (cfg_.window == 0) return wire;
  // Uniqueness: the root only sends fresh seq < base + 2W and never resends
  // below base, and base only advances after every copy numbered below the
  // new base has drained out of the pipeline (the depth guard in
  // on_superphase_boundary). Hence every copy a node can hear satisfies
  // a in [base, base+2W), while its own frontier f is in [base, base+2W]
  // (base never passes an undelivered message). So a - f in [-2W, 2W),
  // and the residue mod 4W identifies `a` within [f-2W, f+2W).
  const std::int64_t mod = 4LL * cfg_.window;
  const std::int64_t f = next_expected_;
  const std::int64_t lo = f - 2LL * cfg_.window;
  const std::int64_t a = lo + ((wire - lo) % mod + mod) % mod;
  if (a < 0) return std::nullopt;  // would predate message 0
  return static_cast<std::uint32_t>(a);
}

std::uint32_t DistributionStation::root_enqueue(const Message& app) {
  require(is_root_, "root_enqueue on a non-root station");
  if (waker_) waker_->wake();  // defensive; the duty check pins the root
  Message m = app;
  m.kind = MsgKind::kBcastData;
  m.dest = kAllNodes;
  m.seq = next_seq_++;
  pending_.push_back(m);
  history_.emplace(m.seq, m);
  return m.seq;
}

void DistributionStation::root_request_resend(std::uint32_t seq) {
  require(is_root_, "root_request_resend on a non-root station");
  if (waker_) waker_->wake();
  // Only sequence numbers actually transmitted can be legitimately missing;
  // anything else is a spurious request (e.g. a decode gone stale).
  if (seq >= sent_hi_ || seq < base_) return;
  if (resend_queued_.insert(seq).second) resend_queue_.push_back(seq);
}

void DistributionStation::root_checkpoint_ack(NodeId who, std::uint32_t cp) {
  require(is_root_, "root_checkpoint_ack on a non-root station");
  if (waker_) waker_->wake();
  if (cfg_.window == 0 || who == me_) return;
  checkpoint_acks_[cp].insert(who);
}

void DistributionStation::on_superphase_boundary(std::uint64_t sp) {
  if (!is_root_) {
    // Store-and-forward pipeline register shift (§6: forward during this
    // superphase what arrived during the previous one). The guard is
    // vacuous for an always-active station — its boundary fires at every
    // superphase start, before any reception of that superphase, so a
    // captured register is always from sp-1. An autosleep station firing a
    // late boundary must not promote a reception made in the boundary's
    // own superphase; it stays in received_sp_ for the next shift, exactly
    // where the on-time schedule would have put it.
    if (received_sp_ && received_sp_at_ < sp) {
      forwarding_ = received_sp_;
      received_sp_.reset();
    } else {
      forwarding_.reset();
    }

    // Re-issue NACKs for messages still missing after the retry interval.
    if (nack_fn_) {
      for (auto& [seq, last] : nack_last_sp_) {
        if (sp - last >= cfg_.nack_retry_superphases) {
          last = sp;
          nack_fn_(seq);
        }
      }
    }
    return;
  }

  // Root. First advance the checkpoint base where possible: checkpoint cp
  // (= "every node delivered all seq < cp*W") requires acks from the n-1
  // other nodes AND that no copy numbered below cp*W can still be in the
  // pipeline — a copy sent at superphase T leaves the deepest level by
  // T + depth, hence the drain guard.
  if (cfg_.window != 0) {
    for (;;) {
      const std::uint32_t cp = base_ / cfg_.window + 1;
      const auto it = checkpoint_acks_.find(cp);
      if (it == checkpoint_acks_.end() || it->second.size() < n_ - 1) break;
      const auto sent = last_sent_in_cp_.find(cp - 1);
      if (sent != last_sent_in_cp_.end() && sp <= sent->second + depth_ + 2)
        break;  // copies below cp*W might still be draining
      base_ = cp * cfg_.window;
      history_.erase(history_.begin(), history_.lower_bound(base_));
      last_sent_in_cp_.erase(cp - 1);
      checkpoint_acks_.erase(it);
    }
  }

  // Choose the message for this superphase: repairs first, then fresh
  // traffic gated by the send window.
  forwarding_.reset();
  while (!resend_queue_.empty()) {
    const std::uint32_t seq = resend_queue_.front();
    resend_queue_.pop_front();
    resend_queued_.erase(seq);
    if (seq < base_) continue;  // everyone has it; never re-inject
    const auto it = history_.find(seq);
    if (it != history_.end()) {
      forwarding_ = it->second;
      ++resend_count_;
      break;
    }
  }
  if (!forwarding_ && !pending_.empty()) {
    const Message& head = pending_.front();
    if (cfg_.window == 0 || head.seq < base_ + 2 * cfg_.window) {
      forwarding_ = head;
      sent_hi_ = head.seq + 1;  // before pop_front invalidates `head`
      pending_.pop_front();
    }
  }
  // Tail-loss repair: a node that missed the *last* message never sees a
  // later sequence number, so gap NACKs alone cannot heal it (the paper
  // closes this with the root's checkpoint timeout-resend). An idle root
  // therefore keeps re-forwarding the newest message it actually sent;
  // receivers that have it drop the duplicate, receivers that miss it — or
  // detect a gap below it — recover. (Never the newest *enqueued* message:
  // transmitting a sequence number ahead of the send window would break
  // the mod-4W decode invariant.)
  if (!forwarding_ && sent_hi_ > 0) {
    const auto it = history_.find(sent_hi_ - 1);
    if (it != history_.end()) {
      forwarding_ = it->second;
      ++idle_rebroadcasts_;
    }
  }
  if (forwarding_ && cfg_.window != 0) {
    const std::uint32_t cp = forwarding_->seq / cfg_.window;
    last_sent_in_cp_[cp] = sp;
  }
}

std::optional<Message> DistributionStation::poll(SlotTime t) {
  const std::uint64_t sp = t / slots_per_superphase();
  if (sp != last_superphase_) {
    last_superphase_ = sp;
    on_superphase_boundary(sp);
  }

  // Autosleep duty check: stay awake while any state machine owes future
  // action. The root is pinned — its boundary reacts to mid-superphase
  // root_enqueue() calls and to the idle-rebroadcast duty, so it may never
  // fire late. A non-root owes action while a register holds a message or
  // a NACK retry timer runs; with all three empty every skipped poll is a
  // provable no-op.
  if (waker_ &&
      (is_root_ || forwarding_ || received_sp_ || !nack_last_sp_.empty()))
    waker_->wake();

  if (!forwarding_) return std::nullopt;
  const PhaseClock::SlotInfo info = clock_.decode(t);
  if (!clock_.level_may_send_data(info, level_)) return std::nullopt;
  if (info.phase != attempt_phase_) {
    attempt_phase_ = info.phase;
    decay_.start();
  }
  if (!decay_.wants_transmit()) return std::nullopt;

  Message m = *forwarding_;
  m.sender = me_;
  // Receivers check the hop direction against the low bits; with epoching
  // the high bits carry the root era of the *absolute* seq (forwarding_
  // always stores absolute numbering), stamped before the wire wrap below.
  m.aux = cfg_.epoch_tags ? (level_ | (era_of(m.seq) << 16)) : level_;
  m.seq = wire_of(m.seq);  // window-bounded wire numbering
  just_transmitted_ = true;
  return m;
}

void DistributionStation::note_received(SlotTime t, std::uint32_t abs,
                                        const Message& stored) {
  if (abs < next_expected_ || out_of_order_.contains(abs)) return;  // dup

  out_of_order_.emplace(abs, stored);
  // NACK everything the gap reveals as missing (once; retried on a timer).
  const std::uint64_t sp = t / slots_per_superphase();
  for (std::uint32_t miss = next_expected_; miss < abs; ++miss) {
    if (!out_of_order_.contains(miss) && !nack_last_sp_.contains(miss)) {
      nack_last_sp_.emplace(miss, sp);
      if (nack_fn_) nack_fn_(miss);
    }
  }
  // In-order application delivery.
  for (auto it = out_of_order_.find(next_expected_);
       it != out_of_order_.end() && it->first == next_expected_;
       it = out_of_order_.find(next_expected_)) {
    nack_last_sp_.erase(next_expected_);
    delivery_log_.emplace_back(t, next_expected_);
    if (delivery_handler_) delivery_handler_(t, it->second);
    out_of_order_.erase(it);
    ++next_expected_;
  }
  // Checkpoint acknowledgements (window mode); never skip an index, the
  // root counts acks per checkpoint.
  if (cfg_.window != 0 && checkpoint_fn_) {
    const std::uint32_t cp = next_expected_ / cfg_.window;
    while (last_checkpoint_sent_ < cp) checkpoint_fn_(++last_checkpoint_sent_);
  }
}

void DistributionStation::deliver(SlotTime t, const Message& m) {
  // Wake unconditionally: receptions reach sleeping stations, and any of
  // them may create forwarding or NACK duty. The next poll's duty check
  // re-evaluates; a filtered-out copy just costs one polled slot.
  if (waker_) waker_->wake();
  if (m.kind != MsgKind::kBcastData) return;
  if (is_root_) return;
  // Accept only the level-(i-1) wave. Legacy wire format: aux is the bare
  // level; epoched: the level lives in the low 16 bits.
  const std::uint32_t hop = cfg_.epoch_tags ? (m.aux & 0xFFFFu) : m.aux;
  if (hop + 1 != level_) return;

  const std::optional<std::uint32_t> abs = abs_of(m.seq);
  if (!abs) return;
  // Era check: the decode placed the copy near our frontier; a stale copy
  // aliasing across a 4W wrap decodes to an index whose era disagrees with
  // the tag stamped at transmission — drop it instead of delivering a
  // phantom.
  if (cfg_.epoch_tags && era_of(*abs) != (m.aux >> 16)) return;

  Message stored = m;
  stored.seq = *abs;  // keep absolute numbering internally
  if (!received_sp_) {
    received_sp_ = stored;
    received_sp_at_ = t / slots_per_superphase();
  }
  note_received(t, *abs, stored);
}

void DistributionStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

}  // namespace radiomc
