#include "protocols/ethernet_emulation.h"

#include <algorithm>

#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

namespace {

// Collection report payload: bit 63 = idle marker, low 32 bits = frame.
constexpr std::uint64_t kIdleBit = 1ull << 63;

// Distribution outcome payload: [61:60] kind, [59:32] winner, [31:0] frame.
std::uint64_t encode_outcome(VirtualEthernet::Feedback kind, NodeId winner,
                             std::uint32_t frame) {
  return (static_cast<std::uint64_t>(kind) << 60) |
         (static_cast<std::uint64_t>(winner & 0x0FFFFFFF) << 32) | frame;
}

VirtualEthernet::RoundOutcome decode_outcome(std::uint32_t round,
                                             std::uint64_t payload) {
  VirtualEthernet::RoundOutcome o;
  o.round = round;
  o.kind = static_cast<VirtualEthernet::Feedback>((payload >> 60) & 3);
  o.winner = static_cast<NodeId>((payload >> 32) & 0x0FFFFFFF);
  o.frame = static_cast<std::uint32_t>(payload);
  if (o.kind != VirtualEthernet::Feedback::kSuccess) {
    o.winner = kNoNode;
    o.frame = 0;
  }
  return o;
}

}  // namespace

VirtualEthernet::VirtualEthernet(const Graph& g, const BfsTree& tree,
                                 Config cfg, std::uint64_t seed)
    : g_(g), tree_(tree), cfg_(cfg) {
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "VirtualEthernet: tree/graph mismatch");
  Rng master(seed);
  node_round_.assign(n, 0);
  next_up_seq_.assign(n, 0);
  node_outcomes_.resize(n);

  for (NodeId v = 0; v < n; ++v) {
    coll_.push_back(std::make_unique<CollectionStation>(
        v, tree, cfg.collection, master.split(2 * v)));
    dist_.push_back(std::make_unique<DistributionStation>(
        v, tree, cfg.distribution, master.split(2 * v + 1)));
  }
  coll_[tree.root]->set_root_handler([this](SlotTime, const Message& m) {
    if (m.kind != MsgKind::kData) return;
    reports_[m.aux].emplace_back(m.origin, m.payload);
  });
  // Non-root stations learn outcomes through the distribution pipeline;
  // the outcome's distribution seq IS the round number (the root publishes
  // one outcome per round, in order).
  for (NodeId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    auto* sink = &node_outcomes_[v];
    dist_[v]->set_delivery_handler(
        [sink](SlotTime, const Message& m) {
          sink->push_back(decode_outcome(m.seq, m.payload));
        });
  }

  std::vector<Station*> ptrs;
  RadioNetwork::Config ncfg;
  ncfg.num_channels = 2;
  for (NodeId v = 0; v < n; ++v)
    muxes_.push_back(std::make_unique<ChannelMuxStation>(
        std::vector<SubStation*>{coll_[v].get(), dist_[v].get()}));
  for (auto& m : muxes_) ptrs.push_back(m.get());
  // The fault seed is derived only when a plan is enabled, and after the
  // per-station splits above: fault-free buses consume exactly the
  // historical stream (Rng::split advances the parent, so an
  // unconditional draw here would shift every later consumer).
  if (cfg_.faults.any())
    faults_ = std::make_unique<FaultSchedule>(
        g, cfg_.faults, master.split(rng_tags::kFaultStream).next());
  net_ = std::make_unique<RadioNetwork>(g, ncfg);
  if (faults_) net_->set_faults(faults_.get());
  net_->attach(std::move(ptrs));
}

SlotTime VirtualEthernet::now() const { return net_->now(); }

const NetMetrics& VirtualEthernet::bus_metrics() const {
  return net_->metrics();
}

void VirtualEthernet::start_round(NodeId v, std::uint32_t round) {
  const std::optional<std::uint32_t> offer =
      policy_ ? policy_(v, round) : std::nullopt;
  const std::uint64_t payload =
      offer ? static_cast<std::uint64_t>(*offer) : kIdleBit;
  if (v == tree_.root) {
    reports_[round].emplace_back(v, payload);
    return;
  }
  Message m;
  m.kind = MsgKind::kData;
  m.origin = v;
  m.seq = next_up_seq_[v]++;
  m.aux = round;
  m.payload = payload;
  coll_[v]->inject(m);
}

void VirtualEthernet::pump() {
  // Root: publish the outcome of the next unpublished round once all n
  // reports for it arrived.
  const NodeId n = g_.num_nodes();
  for (;;) {
    const auto it = reports_.find(root_round_published_);
    if (it == reports_.end() || it->second.size() < n) break;
    std::uint32_t offered = 0;
    NodeId winner = kNoNode;
    std::uint32_t frame = 0;
    for (const auto& [node, payload] : it->second) {
      if (payload & kIdleBit) continue;
      ++offered;
      winner = node;
      frame = static_cast<std::uint32_t>(payload);
    }
    const Feedback kind = offered == 0   ? Feedback::kSilence
                          : offered == 1 ? Feedback::kSuccess
                                         : Feedback::kCollision;
    Message out;
    out.origin = tree_.root;
    out.payload = encode_outcome(kind, winner, frame);
    const std::uint32_t seq = dist_[tree_.root]->root_enqueue(out);
    // The root observes its own outcome immediately.
    node_outcomes_[tree_.root].push_back(decode_outcome(seq, out.payload));
    reports_.erase(it);
    ++root_round_published_;
  }
}

std::vector<VirtualEthernet::RoundOutcome> VirtualEthernet::run_rounds(
    std::uint32_t rounds, SlotTime max_slots, HaltFn halt) {
  require(policy_ != nullptr, "VirtualEthernet: set_policy first");
  require(rounds >= 1, "VirtualEthernet: rounds >= 1");
  const NodeId n = g_.num_nodes();
  std::uint32_t limit = rounds;
  for (NodeId v = 0; v < n; ++v) start_round(v, 0);

  while (net_->now() < max_slots) {
    pump();
    if (halt && limit == rounds &&
        halt(node_outcomes_[tree_.root])) {
      // Stop launching new rounds; drain what is already in flight.
      limit = static_cast<std::uint32_t>(node_outcomes_[tree_.root].size());
    }
    // A node starts round r+1 the moment it observed outcome r.
    bool all_done = true;
    for (NodeId v = 0; v < n; ++v) {
      while (node_round_[v] < node_outcomes_[v].size()) {
        ++node_round_[v];
        if (node_round_[v] < limit) start_round(v, node_round_[v]);
      }
      all_done = all_done && node_round_[v] >= limit;
    }
    if (all_done) return node_outcomes_[tree_.root];
    net_->step();
  }
  return node_outcomes_[tree_.root];
}

BackoffOutcome run_ethernet_backoff(
    const Graph& g, const BfsTree& tree,
    const std::vector<std::uint32_t>& backlog_per_node, std::uint64_t seed,
    std::uint32_t max_rounds, const FaultPlan& faults) {
  const NodeId n = g.num_nodes();
  require(backlog_per_node.size() == n,
          "run_ethernet_backoff: one backlog per node");
  Rng master(seed);

  VirtualEthernet::Config cfg = VirtualEthernet::Config::for_graph(g);
  cfg.faults = faults;
  VirtualEthernet bus(g, tree, cfg, master.next());

  // Per-node MAC state, updated from the shared feedback each round.
  struct Mac {
    std::uint32_t remaining = 0;
    std::uint32_t backoff = 0;  // offer with probability 2^-backoff
    bool offered_last = false;
    Rng rng{0};
  };
  std::vector<Mac> mac(n);
  std::uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) {
    mac[v].remaining = backlog_per_node[v];
    mac[v].rng = master.split(v);
    total += backlog_per_node[v];
  }

  BackoffOutcome out;
  std::uint32_t done_round = 0;
  // The policy runs the MAC: it is invoked exactly once per (node, round),
  // in round order, because the bus starts a node's round r+1 only after
  // it observed outcome r. Feedback is read from the node's own outcome
  // stream — identical at all nodes.
  bus.set_policy([&](NodeId v, std::uint32_t round) -> std::optional<std::uint32_t> {
    Mac& m = mac[v];
    if (round > 0) {
      const auto& fb = bus.outcomes_at(v)[round - 1];
      if (m.offered_last) {
        if (fb.kind == VirtualEthernet::Feedback::kSuccess &&
            fb.winner == v) {
          --m.remaining;
          m.backoff = 0;
        } else if (fb.kind == VirtualEthernet::Feedback::kCollision) {
          m.backoff = std::min(m.backoff + 1, 6u);  // binary exponential
        }
      } else if (fb.kind == VirtualEthernet::Feedback::kSilence &&
                 m.backoff > 0) {
        // Idle feedback means the channel is under-used: creep back up
        // (the standard backoff-decrease refinement).
        --m.backoff;
      }
    }
    m.offered_last = false;
    if (m.remaining == 0) return std::nullopt;
    if (m.backoff > 0 && !m.rng.bernoulli(1.0 / double(1u << m.backoff)))
      return std::nullopt;
    m.offered_last = true;
    return (v << 8) | (m.remaining & 0xFF);  // frame id
  });

  const auto outcomes = bus.run_rounds(
      max_rounds, 200'000'000,
      [total](const std::vector<VirtualEthernet::RoundOutcome>& so_far) {
        std::uint64_t succ = 0;
        for (const auto& o : so_far)
          if (o.kind == VirtualEthernet::Feedback::kSuccess) ++succ;
        return succ >= total;
      });
  for (const auto& o : outcomes) {
    if (o.kind == VirtualEthernet::Feedback::kSuccess) {
      out.delivered_frames.push_back(o.frame);
      if (out.delivered_frames.size() == total) {
        done_round = o.round + 1;
        break;
      }
    }
  }
  out.completed = out.delivered_frames.size() == total;
  out.rounds_used = out.completed ? done_round
                                  : static_cast<std::uint32_t>(outcomes.size());
  out.slots = bus.now();
  out.net = bus.bus_metrics();
  return out;
}

}  // namespace radiomc
