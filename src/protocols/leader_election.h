#pragma once

// Leader election for the setup phase (§2 / [4]).
//
// We elect the maximum id by epidemic max-flooding: every node keeps the
// best candidate id it has heard; per phase it runs one Decay invocation
// advertising its best while the value is "fresh" (recently improved), plus
// a periodic heartbeat so that an unlucky neighborhood is always retried.
// A node whose best is its own id after the budget considers itself leader.
//
// This is deliberately simpler than [4]'s O(log log n (D + log n/eps)
// log Delta) tournament; the paper's own §2 transformation (verify by
// collection, restart with a doubled budget on failure) wraps it so the
// overall setup *always* succeeds and only the running time is random. The
// simplification affects only the setup constant, not any reproduced
// claim — see DESIGN.md "Substitutions".

#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/decay.h"
#include "radio/station.h"
#include "support/rng.h"

namespace radiomc {

struct LeaderConfig {
  std::uint32_t decay_len = 2;
  /// Phases a node keeps advertising after its best improved.
  std::uint32_t fresh_phases = 4;
  /// A node advertises every heartbeat-th phase (desynchronized by id)
  /// regardless of freshness, so an unlucky neighborhood is always retried.
  std::uint32_t heartbeat = 8;
  /// §8 Remark 2 ("if there are no IDs then the processors can randomly
  /// choose sufficiently long IDs"): when nonzero, each node campaigns
  /// with a fresh random value of this many bits instead of its id. A
  /// collision of the maximum draw leaves several self-believed leaders —
  /// which the §2 setup verification detects, triggering a redraw. 0 (the
  /// default) uses the model's distinct ids.
  std::uint32_t random_id_bits = 0;
};

class MaxFloodStation final : public SubStation {
 public:
  MaxFloodStation(NodeId me, LeaderConfig cfg, Rng rng);

  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  /// The best campaign value heard so far (== the node id in id mode).
  std::uint64_t best() const noexcept { return best_; }
  bool believes_leader() const noexcept { return best_ == own_value_; }
  /// Restores the initial state; in random-id mode this redraws the
  /// campaign value (used between setup attempts).
  void reset();

 private:
  std::uint64_t draw_value();

  NodeId me_;
  LeaderConfig cfg_;
  Rng rng_;
  std::uint64_t own_value_;
  std::uint64_t best_;
  std::uint64_t fresh_until_ = 0;  ///< advertise through this phase
  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  bool just_transmitted_ = false;
};

/// Standalone driver: runs max-flooding for `phases` phases and returns
/// each node's final best. The election *succeeded* iff every entry equals
/// the maximum id.
struct LeaderOutcome {
  SlotTime slots = 0;
  std::vector<std::uint64_t> best;
  bool unanimous = false;
};
LeaderOutcome run_leader_election(const Graph& g, std::uint64_t phases,
                                  std::uint64_t seed);

}  // namespace radiomc
