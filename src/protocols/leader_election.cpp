#include "protocols/leader_election.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "radio/network.h"
#include "support/util.h"

namespace radiomc {

MaxFloodStation::MaxFloodStation(NodeId me, LeaderConfig cfg, Rng rng)
    : me_(me),
      cfg_(cfg),
      rng_(rng),
      own_value_(0),
      best_(0),
      fresh_until_(cfg.fresh_phases),
      decay_(cfg.decay_len) {
  own_value_ = draw_value();
  best_ = own_value_;
}

std::uint64_t MaxFloodStation::draw_value() {
  if (cfg_.random_id_bits == 0) return me_;
  const std::uint32_t bits = std::min<std::uint32_t>(cfg_.random_id_bits, 63);
  return rng_.next_below(std::uint64_t{1} << bits);
}

void MaxFloodStation::reset() {
  own_value_ = draw_value();
  best_ = own_value_;
  fresh_until_ = cfg_.fresh_phases;
  attempt_phase_ = static_cast<std::uint64_t>(-1);
  just_transmitted_ = false;
  decay_.stop();
}

std::optional<Message> MaxFloodStation::poll(SlotTime t) {
  const std::uint64_t phase = t / cfg_.decay_len;
  // Heartbeats are desynchronized by node id: a frontier node's periodic
  // retransmission mostly meets silent neighbors instead of the whole
  // neighborhood heartbeating at once.
  const bool heartbeat = (phase % cfg_.heartbeat) == (me_ % cfg_.heartbeat);
  if (phase > fresh_until_ && !heartbeat) return std::nullopt;
  if (phase != attempt_phase_) {
    attempt_phase_ = phase;
    decay_.start();
  }
  if (!decay_.wants_transmit()) return std::nullopt;
  Message m;
  m.kind = MsgKind::kLeader;
  m.origin = me_;
  m.payload = best_;
  just_transmitted_ = true;
  return m;
}

void MaxFloodStation::deliver(SlotTime t, const Message& m) {
  if (m.kind != MsgKind::kLeader) return;
  if (m.payload > best_) {
    best_ = m.payload;
    fresh_until_ = t / cfg_.decay_len + cfg_.fresh_phases;
  }
}

void MaxFloodStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

LeaderOutcome run_leader_election(const Graph& g, std::uint64_t phases,
                                  std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  require(n >= 1, "run_leader_election: empty graph");
  LeaderConfig cfg;
  cfg.decay_len = decay_length(g.max_degree());

  Rng master(seed);
  std::vector<std::unique_ptr<MaxFloodStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    stations.push_back(
        std::make_unique<MaxFloodStation>(v, cfg, master.split(v)));

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : stations) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);

  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  net.run(phases * cfg.decay_len);

  LeaderOutcome out;
  out.slots = net.now();
  out.best.resize(n);
  for (NodeId v = 0; v < n; ++v) out.best[v] = stations[v]->best();
  out.unanimous =
      std::all_of(out.best.begin(), out.best.end(),
                  [&](std::uint64_t b) { return b == n - 1; });
  return out;
}

}  // namespace radiomc
