#pragma once

// The distribution protocol (§6): pipelined broadcast down the BFS tree.
//
// Time is divided into *superphases* of 2 ceil(log2 n) Decay invocations
// (4 log Delta log n slots; x3 with the §2.2 gating folded in). In each
// superphase the root sends its current outgoing message and every other
// node forwards the message it received during the *previous* superphase —
// so message t flows at level i during superphase t + i, one level per
// superphase, and a new broadcast leaves the root every O(log Delta log n)
// slots. Mod-3 gating guarantees a node can only hear level i-1 while
// level i-1 transmits, and since all of level i-1 forwards the same
// message, any reception is the right message; a superphase of 2 log n
// invocations makes the per-hop miss probability <= 1/n^2.
//
// Reliability (§6, second half): the root numbers messages consecutively;
// a node that observes a gap sends a NACK up the tree (via the concurrent
// collection channel) and the root resends. With a finite window W the
// sequence numbers are carried mod 4W on the wire, the root never has more
// than 2W messages beyond the last fully-acknowledged checkpoint in
// flight, and every node acknowledges each completed window of W messages
// — the bounded-numbering scheme the paper sketches with "numbered mod
// 3n^2" plus an acknowledged checkpoint every n^2 messages (we use 4W/2W/W
// for a crisper uniqueness argument; see DESIGN.md).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "protocols/decay.h"
#include "protocols/tree.h"
#include "radio/schedule.h"
#include "radio/station.h"
#include "support/rng.h"
#include "support/util.h"

namespace radiomc {

struct DistributionConfig {
  std::uint32_t decay_len = 2;             ///< 2 ceil(log2 Delta)
  std::uint32_t phases_per_superphase = 4; ///< 2 ceil(log2 n)
  bool mod3_gating = true;
  /// Checkpoint window W; 0 disables wraparound/checkpointing (sequence
  /// numbers grow unboundedly — fine for finite experiments).
  std::uint32_t window = 0;
  /// A node repeats a NACK for a still-missing message every this many
  /// superphases (loss of the NACK itself is possible only while the
  /// collection channel is still climbing; repetition makes repair certain).
  std::uint32_t nack_retry_superphases = 8;

  /// Sequence-number epoching for the windowed wire format. The mod-4W
  /// decode of abs_of is sound only under the send-window/drain invariant;
  /// a *stale* copy that outlives it (a crashed node resurrecting with an
  /// ancient pipeline register) carries a residue that can alias to a
  /// phantom absolute index within [frontier - 2W, frontier + 2W) and be
  /// delivered as a message the root never sent. With epoching on, the
  /// transmitter packs the 16-bit root era (abs / 4W mod 2^16) into the
  /// aux field's high bits next to the hop level in the low bits; a
  /// receiver re-derives the era of its decode and drops any copy whose
  /// tag disagrees — the stale copy's era is the old one, the phantom
  /// index's era is current, so aliasing across a wrap is detected. Off
  /// reproduces the legacy wire format bit-for-bit (the regression test
  /// exhibits the phantom prefix on it). No effect when window == 0 (era
  /// is identically 0 and aux carries exactly the level).
  bool epoch_tags = true;

  /// Opt into the active-set engine's autosleep (radio/waker.h). A
  /// non-root station's idle slots touch no state once its pipeline
  /// registers and NACK timers are empty, so it sleeps until the next
  /// reception; the root is deliberately pinned awake — its superphase
  /// boundary reacts to mid-superphase root_enqueue() calls, so a late
  /// (caught-up) boundary could pick a fresh message one superphase
  /// earlier than an always-active root would. Byte-identical deliveries
  /// either way; the engine_diff A/B test is the proof.
  bool autosleep = true;

  static DistributionConfig for_graph(const Graph& g) {
    DistributionConfig c;
    c.decay_len = decay_length(g.max_degree());
    const std::uint32_t ln = ceil_log2(g.num_nodes() < 2 ? 2 : g.num_nodes());
    c.phases_per_superphase = 2 * (ln < 1 ? 1 : ln);
    return c;
  }
};

class DistributionStation final : public SubStation {
 public:
  DistributionStation(NodeId me, const BfsTree& tree, DistributionConfig cfg,
                      Rng rng);

  void on_attach(Waker& w) override;
  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  /// Root only: queues an application message for broadcast; returns its
  /// distribution sequence number.
  std::uint32_t root_enqueue(const Message& app);
  /// Root only: a NACK for absolute sequence `seq` arrived.
  void root_request_resend(std::uint32_t seq);
  /// Root only: node `who` acknowledged checkpoint index `cp` (it delivered
  /// every message with seq < cp * W).
  void root_checkpoint_ack(NodeId who, std::uint32_t cp);

  /// Non-root: control-plane hooks, called when this node wants to NACK a
  /// missing sequence number / acknowledge a checkpoint. The broadcast
  /// service routes these up the collection channel.
  void set_control(std::function<void(std::uint32_t)> nack,
                   std::function<void(std::uint32_t)> checkpoint) {
    nack_fn_ = std::move(nack);
    checkpoint_fn_ = std::move(checkpoint);
  }

  /// Number of messages delivered in order to the application.
  std::uint32_t delivered_prefix() const noexcept { return next_expected_; }
  /// (slot, absolute seq) per in-order application delivery.
  const std::vector<std::pair<SlotTime, std::uint32_t>>& delivery_log()
      const noexcept {
    return delivery_log_;
  }
  /// Application hook: called once per message, in order, with the full
  /// message (absolute seq). Set before the run.
  void set_delivery_handler(
      std::function<void(SlotTime, const Message&)> h) {
    delivery_handler_ = std::move(h);
  }
  std::uint32_t root_sent_fresh() const noexcept { return next_seq_; }
  std::uint64_t root_resends() const noexcept { return resend_count_; }
  std::uint64_t root_idle_rebroadcasts() const noexcept {
    return idle_rebroadcasts_;
  }

  std::uint64_t slots_per_superphase() const noexcept {
    return static_cast<std::uint64_t>(cfg_.phases_per_superphase) *
           clock_.slots_per_phase();
  }

 private:
  void on_superphase_boundary(std::uint64_t sp);
  std::uint32_t wire_of(std::uint32_t abs) const noexcept;
  std::optional<std::uint32_t> abs_of(std::uint32_t wire) const noexcept;
  /// 16-bit root era of an absolute sequence number: abs / 4W mod 2^16
  /// (identically 0 when window == 0).
  std::uint32_t era_of(std::uint32_t abs) const noexcept;
  void note_received(SlotTime t, std::uint32_t abs, const Message& stored);

  NodeId me_;
  std::uint32_t level_;
  bool is_root_;
  NodeId n_;
  std::uint32_t depth_;
  DistributionConfig cfg_;
  PhaseClock clock_;
  Rng rng_;

  bool autosleep_;
  Waker* waker_ = nullptr;  ///< set by on_attach iff autosleep_ is on

  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  std::uint64_t last_superphase_ = static_cast<std::uint64_t>(-1);
  bool just_transmitted_ = false;

  // Pipeline registers.
  std::optional<Message> forwarding_;     ///< sent during this superphase
  std::optional<Message> received_sp_;    ///< first reception this superphase
  /// Superphase in which received_sp_ was captured. An autosleep station
  /// can fire a boundary *late* (first poll after a wake); the shift must
  /// then promote only a reception made before the boundary's superphase —
  /// an always-active station would have shifted an empty register at the
  /// superphase start and captured this reception for the *next* shift.
  std::uint64_t received_sp_at_ = 0;

  // Root sender state.
  std::deque<Message> pending_;           ///< fresh, seq already assigned
  std::deque<std::uint32_t> resend_queue_;
  std::set<std::uint32_t> resend_queued_;
  std::map<std::uint32_t, Message> history_;  ///< seq -> message (window-bounded)
  std::uint32_t next_seq_ = 0;
  std::uint32_t sent_hi_ = 0;  ///< seqs < sent_hi_ have actually been sent
  std::uint32_t base_ = 0;  ///< all nodes delivered every seq < base_
  std::map<std::uint32_t, std::set<NodeId>> checkpoint_acks_;
  /// cp index -> last superphase in which a seq of that window was sent;
  /// used by the drain guard before advancing base_.
  std::map<std::uint32_t, std::uint64_t> last_sent_in_cp_;
  std::uint64_t resend_count_ = 0;
  std::uint64_t idle_rebroadcasts_ = 0;

  // Receiver state.
  std::uint32_t next_expected_ = 0;
  std::map<std::uint32_t, Message> out_of_order_;
  std::map<std::uint32_t, std::uint64_t> nack_last_sp_;  ///< missing seq -> sp
  std::vector<std::pair<SlotTime, std::uint32_t>> delivery_log_;
  std::function<void(SlotTime, const Message&)> delivery_handler_;
  std::function<void(std::uint32_t)> nack_fn_;
  std::function<void(std::uint32_t)> checkpoint_fn_;
  std::uint32_t last_checkpoint_sent_ = 0;
};

}  // namespace radiomc
