#include "protocols/ranking.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <numeric>

#include "protocols/tree.h"
#include "radio/network.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

RankingOutcome run_ranking(const Graph& g, const PreparationResult& prep,
                           const std::vector<std::uint64_t>& app_ids,
                           std::uint64_t seed, SlotTime max_slots,
                           TelemetryHub* telemetry, const FaultPlan& faults,
                           SlotTime stall_slots) {
  const NodeId n = g.num_nodes();
  require(app_ids.size() == n, "run_ranking: one app id per node");
  require(prep.routing.size() == n, "run_ranking: bad preparation");
  RankingOutcome out;
  out.rank.assign(n, 0);

  // Reconstruct tree facts the drivers need from the routing tables.
  NodeId root = kNoNode;
  std::vector<NodeId> parents(n, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    parents[v] = prep.routing[v].parent;
    if (parents[v] == kNoNode) root = v;
  }
  require(root != kNoNode, "run_ranking: no root in preparation");
  const BfsTree tree = BfsTree::from_parents(root, parents);

  if (n == 1) {
    out.rank[0] = 1;
    out.completed = true;
    return out;
  }

  // Phase 1: collect (app id, DFS address) pairs.
  std::vector<Message> initial;
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    Message m;
    m.kind = MsgKind::kData;
    m.origin = v;
    m.seq = 0;
    m.payload = app_ids[v];
    m.aux = prep.routing[v].number;  // sender's own address (§5.1)
    initial.push_back(m);
  }
  CollectionConfig ccfg = CollectionConfig::for_graph(g);
  ccfg.telemetry = telemetry;
  ccfg.faults = faults;
  ccfg.stall_slots = stall_slots;
  const CollectionOutcome collected =
      run_collection(g, tree, initial, ccfg, seed, max_slots);
  out.collect_slots = collected.slots;
  if (telemetry != nullptr)
    telemetry->timeline.record(
        "ranking", "collect", 0, out.collect_slots,
        {{"n", static_cast<std::int64_t>(n)},
         {"completed", collected.completed ? 1 : 0}});
  if (!collected.completed) {
    out.status = collected.status;
    return out;
  }

  // Root-side computation: sort ids, assign ranks 1..n.
  struct Entry {
    std::uint64_t id;
    std::uint32_t addr;
    NodeId node;  // driver-side bookkeeping for the result vector
  };
  std::vector<Entry> entries;
  entries.push_back({app_ids[root], prep.routing[root].number, root});
  for (const auto& d : collected.deliveries)
    entries.push_back({d.msg.payload, d.msg.aux, d.msg.origin});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });

  // Phase 2: downward delivery of ranks from the root (§5.3 alone: the
  // root is an ancestor of every destination).
  P2pConfig pcfg = P2pConfig::for_graph(g);
  Rng master(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<std::unique_ptr<P2pUpStation>> ups;
  std::vector<std::unique_ptr<P2pDownStation>> downs;
  for (NodeId v = 0; v < n; ++v) {
    ups.push_back(std::make_unique<P2pUpStation>(v, prep.routing[v], pcfg,
                                                 master.split(2 * v)));
    downs.push_back(std::make_unique<P2pDownStation>(
        v, prep.routing[v], pcfg, master.split(2 * v + 1)));
    ups.back()->set_down(downs.back().get());
  }
  std::uint64_t expected_downs = 0;
  for (std::uint32_t r = 0; r < entries.size(); ++r) {
    const Entry& e = entries[r];
    if (e.node == root) {
      out.rank[root] = r + 1;
      continue;
    }
    ups[root]->send(e.addr, r + 1);  // routes straight into the down half
    ++expected_downs;
  }

  std::deque<ChannelMuxStation> muxes;
  std::vector<Station*> ptrs;
  for (NodeId v = 0; v < n; ++v)
    muxes.emplace_back(std::vector<SubStation*>{ups[v].get(), downs[v].get()});
  for (auto& m : muxes) ptrs.push_back(&m);
  RadioNetwork::Config ncfg;
  ncfg.num_channels = 2;
  RadioNetwork net(g, ncfg);
  FaultSchedule fsch;
  if (faults.any()) {
    fsch = FaultSchedule(g, faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&fsch);
  }
  net.attach(std::move(ptrs));

  auto delivered = [&] {
    // Each node awaits exactly one rank message; count nodes served, not
    // sink entries — a lost ack (fault injection) duplicates a delivery,
    // and raw entry counts would declare completion while a node starves.
    std::uint64_t c = 0;
    for (NodeId v = 0; v < n; ++v) c += downs[v]->sink().empty() ? 0 : 1;
    return c;
  };
  std::uint64_t progress_count = delivered();
  SlotTime progress_slot = 0;
  bool stalled = false;
  while (delivered() < expected_downs && net.now() < max_slots) {
    net.step();
    if (stall_slots > 0) {
      const std::uint64_t c = delivered();
      if (c > progress_count) {
        progress_count = c;
        progress_slot = net.now();
      } else if (net.now() - progress_slot >= stall_slots) {
        stalled = true;
        break;
      }
    }
  }
  out.deliver_slots = net.now();
  if (telemetry != nullptr) {
    telemetry->timeline.record(
        "ranking", "deliver", out.collect_slots,
        out.collect_slots + out.deliver_slots,
        {{"ranks", static_cast<std::int64_t>(expected_downs)},
         {"completed", delivered() >= expected_downs ? 1 : 0}});
    telemetry::publish_net_metrics(net.metrics(), telemetry->metrics,
                                   "ranking_deliver");
    if (fsch.enabled())
      telemetry::publish_fault_metrics(fsch, net.metrics(),
                                       telemetry->metrics, "ranking_deliver");
  }
  if (delivered() < expected_downs) {
    out.status = stalled ? RunStatus::kDegraded : RunStatus::kFailed;
    return out;
  }

  for (NodeId v = 0; v < n; ++v)
    for (const auto& d : downs[v]->sink())
      out.rank[v] = static_cast<std::uint32_t>(d.msg.payload);
  out.completed = true;
  return out;
}

}  // namespace radiomc
