#include "protocols/steady_state.h"

#include <deque>
#include <map>
#include <memory>

#include "perf/profiler.h"
#include "radio/network.h"
#include "support/rng.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

SteadyStateOutcome run_collection_steady_state(
    const Graph& g, const BfsTree& tree, double lambda_per_phase,
    std::uint64_t phases, std::uint64_t warmup_phases, std::uint64_t seed,
    ArrivalPlacement placement, const FaultPlan& faults,
    perf::Profiler* profiler, SlotHook* slot_hook) {
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "steady_state: tree/graph mismatch");
  require(lambda_per_phase > 0.0 && lambda_per_phase < 1.0,
          "steady_state: lambda in (0,1)");
  require(n >= 2, "steady_state: need a non-root node");

  // Candidate origins per placement.
  std::vector<NodeId> origins;
  for (NodeId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    if (placement == ArrivalPlacement::kUniform ||
        tree.level[v] == tree.depth)
      origins.push_back(v);
  }
  require(!origins.empty(), "steady_state: no arrival sites");

  Rng master(seed);
  CollectionConfig cfg = CollectionConfig::for_graph(g);
  std::vector<std::unique_ptr<CollectionStation>> st;
  for (NodeId v = 0; v < n; ++v)
    st.push_back(
        std::make_unique<CollectionStation>(v, tree, cfg, master.split(v)));
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : st) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  if (slot_hook != nullptr) net.set_slot_hook(slot_hook);
  net.attach(std::move(ptrs));

  const std::uint64_t slots_per_phase = st[0]->clock().slots_per_phase();
  Rng arrivals_rng = master.split(rng_tags::kSteadyArrival);
  // Derived after the arrival stream so a faulted run faces the identical
  // arrival sequence as a fault-free run with the same seed.
  FaultSchedule fsch;
  if (faults.any()) {
    fsch = FaultSchedule(g, faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&fsch);
  }

  SteadyStateOutcome out;
  // Ordered so that no future drain/merge over in-flight tags can pick up
  // hash-iteration order (the lint unordered-container rule's contract).
  std::map<std::uint64_t, std::uint64_t> birth_phase;  // tag -> phase
  std::vector<std::uint32_t> next_seq(n, 0);
  std::size_t harvested = 0;
  std::uint64_t in_system = 0;

  const std::uint64_t total_phases = warmup_phases + phases;
  perf::PerfSpan run_span(profiler, "steady.run");
  for (std::uint64_t phase = 0; phase < total_phases; ++phase) {
    perf::PerfSpan phase_span(profiler, "steady.phase");
    // Sample, then admit this phase's arrival, then run the phase.
    if (phase >= warmup_phases)
      out.population.add(static_cast<double>(in_system));
    if (arrivals_rng.bernoulli(lambda_per_phase)) {
      const NodeId v = origins[arrivals_rng.next_below(origins.size())];
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = next_seq[v]++;
      st[v]->inject(m);
      birth_phase[(static_cast<std::uint64_t>(v) << 32) | m.seq] = phase;
      ++in_system;
      if (phase >= warmup_phases) ++out.arrivals;
    }
    net.run(slots_per_phase);

    const auto& sink = st[tree.root]->root_sink();
    for (; harvested < sink.size(); ++harvested) {
      const Message& m = sink[harvested].msg;
      const std::uint64_t tag =
          (static_cast<std::uint64_t>(m.origin) << 32) | m.seq;
      const auto it = birth_phase.find(tag);
      if (it == birth_phase.end()) continue;
      --in_system;
      if (phase >= warmup_phases) {
        ++out.delivered;
        out.sojourn_phases.add(static_cast<double>(phase - it->second + 1));
      }
      birth_phase.erase(it);
    }
  }
  out.phases = phases;
  return out;
}

}  // namespace radiomc
