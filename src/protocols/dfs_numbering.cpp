#include "protocols/dfs_numbering.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "radio/network.h"
#include "support/util.h"

namespace radiomc {

// ---------------------------------------------------------------------------
// GraphDfsStation (traversal 1)
// ---------------------------------------------------------------------------

GraphDfsStation::GraphDfsStation(NodeId me, std::vector<NodeId> neighbors)
    : me_(me), neighbors_(std::move(neighbors)) {
  std::sort(neighbors_.begin(), neighbors_.end());
  in_tree_.assign(neighbors_.size(), false);
  heard_.assign(neighbors_.size(), false);
  nbr_level_.assign(neighbors_.size(), 0);
  nbr_bfs_parent_.assign(neighbors_.size(), kNoNode);
}

void GraphDfsStation::set_local(std::uint32_t level, NodeId bfs_parent,
                                bool initiator) {
  level_ = level;
  bfs_parent_ = bfs_parent;
  initiator_ = initiator;
  if (initiator) {
    have_token_ = true;
    visited_ = true;
  }
}

void GraphDfsStation::reset() {
  have_token_ = false;
  visited_ = false;
  done_ = false;
  initiator_ = false;
  dfs_parent_ = kNoNode;
  std::fill(in_tree_.begin(), in_tree_.end(), false);
  std::fill(heard_.begin(), heard_.end(), false);
}

std::size_t GraphDfsStation::neighbor_index(NodeId u) const {
  const auto it = std::lower_bound(neighbors_.begin(), neighbors_.end(), u);
  return static_cast<std::size_t>(it - neighbors_.begin());
}

std::optional<Message> GraphDfsStation::poll(SlotTime) {
  if (!have_token_ || done_) return std::nullopt;

  // Largest neighbor not yet in the DFS tree (§5.1: "each node sends the
  // token to the largest neighbor not yet in the DFS tree").
  NodeId target = kNoNode;
  for (std::size_t i = neighbors_.size(); i-- > 0;) {
    if (!in_tree_[i]) {
      target = neighbors_[i];
      break;
    }
  }
  if (target == kNoNode) {
    if (initiator_) {
      done_ = true;  // traversal complete; root keeps silent
      return std::nullopt;
    }
    target = dfs_parent_;  // backtrack
  } else {
    in_tree_[neighbor_index(target)] = true;
  }

  Message m;
  m.kind = MsgKind::kDfsToken;
  m.origin = me_;
  m.dest = target;
  m.sender_parent = bfs_parent_;
  m.aux = level_;
  have_token_ = false;
  return m;
}

void GraphDfsStation::deliver(SlotTime, const Message& m) {
  if (m.kind != MsgKind::kDfsToken) return;
  // Every token transmission announces the sender's membership, BFS parent
  // and level; the destination is also now in the tree.
  const std::size_t si = neighbor_index(m.sender);
  if (si < neighbors_.size() && neighbors_[si] == m.sender) {
    in_tree_[si] = true;
    heard_[si] = true;
    nbr_level_[si] = m.aux;
    nbr_bfs_parent_[si] = m.sender_parent;
  }
  const std::size_t di = neighbor_index(m.dest);
  if (di < neighbors_.size() && neighbors_[di] == m.dest)
    in_tree_[di] = true;

  if (m.dest == me_) {
    have_token_ = true;
    if (!visited_) {
      visited_ = true;
      dfs_parent_ = m.sender;
    }
  }
}

std::vector<NodeId> GraphDfsStation::bfs_children() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < neighbors_.size(); ++i)
    if (heard_[i] && nbr_bfs_parent_[i] == me_) out.push_back(neighbors_[i]);
  return out;  // neighbors_ is sorted, so this is ascending
}

bool GraphDfsStation::bfs_levels_consistent() const {
  if (neighbors_.empty()) return level_ == 0;  // isolated node: only n == 1
  std::uint32_t min_nbr = static_cast<std::uint32_t>(-1);
  for (std::size_t i = 0; i < neighbors_.size(); ++i) {
    if (!heard_[i]) return false;  // every node transmits during DFS 1
    const std::uint32_t l = nbr_level_[i];
    const std::uint32_t lo = level_ > 0 ? level_ - 1 : 0;
    if (l + 1 < level_ || l > level_ + 1 || l < lo) return false;
    min_nbr = std::min(min_nbr, l);
  }
  if (level_ == 0) return bfs_parent_ == kNoNode;
  return level_ == min_nbr + 1 && bfs_parent_ != kNoNode;
}

// ---------------------------------------------------------------------------
// TreeDfsStation (traversal 2)
// ---------------------------------------------------------------------------

TreeDfsStation::TreeDfsStation(NodeId me) : me_(me) {}

void TreeDfsStation::set_local(NodeId bfs_parent, std::vector<NodeId> children,
                               bool is_root) {
  bfs_parent_ = bfs_parent;
  children_ = std::move(children);
  child_number_.assign(children_.size(), 0);
  child_max_desc_.assign(children_.size(), 0);
  is_root_ = is_root;
  if (is_root_) {
    have_token_ = true;
    numbered_ = true;
    number_ = 0;
    counter_ = 1;
  }
}

void TreeDfsStation::reset() {
  child_number_.assign(children_.size(), 0);
  child_max_desc_.assign(children_.size(), 0);
  have_token_ = false;
  numbered_ = false;
  done_ = false;
  is_root_ = false;
  number_ = 0;
  max_desc_ = 0;
  counter_ = 0;
  next_child_ = 0;
}

std::optional<Message> TreeDfsStation::poll(SlotTime) {
  if (!have_token_ || done_) return std::nullopt;

  Message m;
  m.kind = MsgKind::kDfsToken;
  m.origin = me_;
  if (next_child_ < children_.size()) {
    const NodeId c = children_[next_child_];
    child_number_[next_child_] = counter_;
    ++next_child_;
    m.dest = c;
    m.seq = counter_;  // the number the child will take
  } else {
    max_desc_ = counter_ - 1;
    if (is_root_) {
      done_ = true;
      return std::nullopt;
    }
    m.dest = bfs_parent_;
    m.seq = counter_;  // next free number, for the parent to continue with
    done_ = true;      // a non-root is finished once it hands back the token
  }
  have_token_ = false;
  return m;
}

void TreeDfsStation::deliver(SlotTime, const Message& m) {
  if (m.kind != MsgKind::kDfsToken || m.dest != me_) return;
  have_token_ = true;
  if (!numbered_) {
    numbered_ = true;
    number_ = m.seq;
    counter_ = m.seq + 1;
  } else {
    // Backtrack from the child we last sent the token to.
    counter_ = m.seq;
    if (next_child_ > 0) child_max_desc_[next_child_ - 1] = m.seq - 1;
    done_ = false;  // (root only toggles done_ in poll)
  }
}

// ---------------------------------------------------------------------------
// Standalone preparation driver
// ---------------------------------------------------------------------------

PreparationResult run_preparation(const Graph& g, const BfsTree& tree) {
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "run_preparation: tree/graph mismatch");
  PreparationResult out;

  // Traversal 1: DFS of the graph.
  std::vector<std::unique_ptr<GraphDfsStation>> dfs1;
  dfs1.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    auto nb = g.neighbors(v);
    dfs1.push_back(std::make_unique<GraphDfsStation>(
        v, std::vector<NodeId>(nb.begin(), nb.end())));
    dfs1.back()->set_local(tree.level[v], tree.parent[v], v == tree.root);
  }
  {
    std::deque<SingleStation> adapters;
    std::vector<Station*> ptrs;
    for (auto& s : dfs1) adapters.emplace_back(*s);
    for (auto& a : adapters) ptrs.push_back(&a);
    RadioNetwork net(g);
    net.attach(std::move(ptrs));
    net.run(2 * static_cast<SlotTime>(n) + 2);
    out.slots += net.now();
    out.collisions += net.metrics().collision_events;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!dfs1[v]->visited() || !dfs1[v]->bfs_levels_consistent()) return out;
  }

  // Traversal 2: DFS of the BFS tree, assigning preorder numbers. Children
  // lists come from what traversal 1 taught each node.
  std::vector<std::unique_ptr<TreeDfsStation>> dfs2;
  dfs2.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    dfs2.push_back(std::make_unique<TreeDfsStation>(v));
    dfs2.back()->set_local(tree.parent[v], dfs1[v]->bfs_children(),
                           v == tree.root);
  }
  {
    std::deque<SingleStation> adapters;
    std::vector<Station*> ptrs;
    for (auto& s : dfs2) adapters.emplace_back(*s);
    for (auto& a : adapters) ptrs.push_back(&a);
    RadioNetwork net(g);
    net.attach(std::move(ptrs));
    net.run(2 * static_cast<SlotTime>(n) + 2);
    out.slots += net.now();
    out.collisions += net.metrics().collision_events;
  }
  for (NodeId v = 0; v < n; ++v)
    if (!dfs2[v]->numbered()) return out;

  out.labels.number.resize(n);
  out.labels.max_desc.resize(n);
  out.routing.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.labels.number[v] = dfs2[v]->number();
    out.labels.max_desc[v] = dfs2[v]->max_desc();
    RoutingInfo& r = out.routing[v];
    r.parent = tree.parent[v];
    r.level = tree.level[v];
    r.number = dfs2[v]->number();
    r.max_desc = dfs2[v]->max_desc();
    r.children = dfs2[v]->children();
    r.child_number = dfs2[v]->child_number();
    r.child_max_desc = dfs2[v]->child_max_desc();
  }
  out.ok = true;
  return out;
}

}  // namespace radiomc
