#pragma once

// The randomized single-source broadcast of Bar-Yehuda, Goldreich & Itai
// [3], the building block the paper reuses for its setup phase: every
// informed node runs one Decay invocation per phase; an uninformed node
// that hears the message becomes informed. With a phase budget of
// O(D + log(n/eps)) all nodes are informed with probability 1 - eps.
//
// Used here as (a) the "success" floods inside the setup phase (§2),
// (b) the naive k-broadcast baseline ("in principle the message can be
// sent using the BFS protocol", §6), and (c) a test vehicle for Decay.

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault_plan.h"
#include "protocols/decay.h"
#include "radio/schedule.h"
#include "radio/station.h"
#include "support/rng.h"

namespace radiomc {

/// Per-node state machine of the BGI flood. Free-running phases of one
/// Decay invocation each; no acks, no level gating (the flood has no tree).
class FloodStation final : public SubStation {
 public:
  /// `autosleep`: opt into active-set descheduling where the station is
  /// engine-attached directly (SingleStation). Uninformed stations are the
  /// win — they neither transmit nor mutate on poll, so they sleep until
  /// the message front's delivery wakes them; informed stations re-wake
  /// every poll (the flood restarts Decay each phase, so they always have
  /// a future duty). Byte-identical to always-active either way; only
  /// EngineStats::station_polls differs. Embedded uses (setup) never
  /// attach, so the flag is inert there.
  explicit FloodStation(std::uint32_t decay_len, Rng rng,
                        bool autosleep = true);

  /// Makes this node the (or a) source: informed from the start.
  void seed(const Message& m);

  /// Clears the flood state and re-seeds the randomness (setup attempts).
  void reset(Rng rng);

  void on_attach(Waker& w) override;
  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  bool informed() const noexcept { return informed_; }
  const Message& message() const noexcept { return msg_; }
  /// Slot (station-local time) of first reception; 0 for sources.
  SlotTime informed_at() const noexcept { return informed_at_; }

 private:
  std::uint32_t decay_len_;
  Rng rng_;
  bool informed_ = false;
  SlotTime informed_at_ = 0;
  Message msg_;
  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  bool just_transmitted_ = false;
  bool autosleep_ = false;
  Waker* waker_ = nullptr;  ///< set by on_attach iff autosleep_ is on
};

/// Standalone driver: floods one message from `source` for `phases` phases;
/// reports who was informed when.
struct BgiOutcome {
  SlotTime slots = 0;
  std::uint32_t informed_count = 0;
  std::vector<bool> informed;
  std::vector<SlotTime> informed_at;  ///< meaningful where informed

  /// Engine on_slot invocations (EngineStats::station_polls): scheduling
  /// economy only — the autosleep A/B tests assert it drops while the
  /// informed sets stay identical.
  std::uint64_t engine_polls = 0;
};
/// `faults`: optional fault plan compiled against the flood network (the
/// phase budget bounds the run, so no watchdog is needed; under faults the
/// informed count simply reports the partial coverage).
/// `autosleep`: forwarded to every FloodStation; kept as a parameter for
/// the A/B byte-identity tests.
BgiOutcome run_bgi_broadcast(const Graph& g, NodeId source,
                             std::uint64_t phases, std::uint64_t seed,
                             const FaultPlan& faults = {},
                             bool autosleep = true);

}  // namespace radiomc
