#include "protocols/point_to_point.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "perf/profiler.h"
#include "radio/network.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

// ---------------------------------------------------------------------------
// Upward subprotocol
// ---------------------------------------------------------------------------

P2pUpStation::P2pUpStation(NodeId me, const RoutingInfo& info, P2pConfig cfg,
                           Rng rng)
    : me_(me),
      info_(info),
      clock_(cfg.slots),
      rng_(rng),
      autosleep_(cfg.autosleep),
      decay_(cfg.slots.decay_len) {}

void P2pUpStation::on_attach(Waker& w) {
  if (!autosleep_) return;  // legacy contract: permanently active
  waker_ = &w;
  w.set_autosleep(true);
}

std::uint32_t P2pUpStation::send(std::uint32_t dest_addr,
                                 std::uint64_t payload) {
  Message m;
  m.kind = MsgKind::kData;
  m.origin = me_;
  m.dest = dest_addr;  // p2p addresses are DFS numbers
  m.payload = payload;
  m.seq = next_seq_++;
  route(0, m);
  if (waker_ != nullptr) waker_->wake();  // fresh duty for a sleeping node
  return m.seq;
}

void P2pUpStation::route(SlotTime t, const Message& m) {
  if (m.dest == info_.number) {
    sink_.push_back({t, m});  // addressed to this node
  } else if (info_.subtree_contains(m.dest)) {
    require(down_ != nullptr, "P2pUpStation: downward half not wired");
    down_->enqueue(m);  // LCA reached: turn downwards (§5.2)
  } else {
    buffer_.push_back(m);  // keep climbing
  }
}

std::optional<Message> P2pUpStation::poll(SlotTime t) {
  // Autosleep duty check (collection's pattern): stay awake while an ack
  // is owed or buffered traffic can still climb (a rootward buffer with no
  // parent never drains — same dead end as always-active, minus the polls).
  if (waker_ != nullptr &&
      (ack_to_send_ || (!buffer_.empty() && info_.parent != kNoNode)))
    waker_->wake();

  const PhaseClock::SlotInfo info = clock_.decode(t);

  if (info.is_ack) {
    if (ack_to_send_) {
      Message ack = *ack_to_send_;
      ack_to_send_.reset();
      return ack;
    }
    return std::nullopt;
  }
  if (buffer_.empty() || info_.parent == kNoNode) return std::nullopt;
  if (!clock_.level_may_send_data(info, info_.level)) return std::nullopt;

  if (info.phase != attempt_phase_) {
    attempt_phase_ = info.phase;
    attempt_done_ = false;
    decay_.start();
  }
  if (attempt_done_ || !decay_.wants_transmit()) return std::nullopt;

  Message m = buffer_.front();
  m.sender = me_;
  m.sender_parent = info_.parent;
  just_transmitted_ = true;
  return m;
}

void P2pUpStation::deliver(SlotTime t, const Message& m) {
  // Receptions reach sleeping stations; any of them may create duty (an
  // ack popping the buffer head, data owing an ack). Wake unconditionally
  // and let the next poll's duty check re-evaluate.
  if (waker_ != nullptr) waker_->wake();
  const PhaseClock::SlotInfo info = clock_.decode(t);

  if (info.is_ack) {
    if (m.kind != MsgKind::kAck || m.dest != me_ || buffer_.empty()) return;
    const Message& head = buffer_.front();
    if (m.origin == head.origin && m.seq == head.seq) {
      buffer_.pop_front();
      decay_.stop();
      attempt_done_ = true;
    }
    return;
  }

  // Data subslot: accept only from our own BFS children (§4 tagging).
  if (m.kind != MsgKind::kData || m.sender_parent != me_) return;

  Message ack;
  ack.kind = MsgKind::kAck;
  ack.dest = m.sender;
  ack.origin = m.origin;
  ack.seq = m.seq;
  ack_to_send_ = ack;

  route(t, m);
}

void P2pUpStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

// ---------------------------------------------------------------------------
// Downward subprotocol
// ---------------------------------------------------------------------------

P2pDownStation::P2pDownStation(NodeId me, const RoutingInfo& info,
                               P2pConfig cfg, Rng rng)
    : me_(me),
      info_(info),
      clock_(cfg.slots),
      rng_(rng),
      autosleep_(cfg.autosleep),
      decay_(cfg.slots.decay_len) {}

void P2pDownStation::on_attach(Waker& w) {
  if (!autosleep_) return;  // legacy contract: permanently active
  waker_ = &w;
  w.set_autosleep(true);
}

std::optional<Message> P2pDownStation::poll(SlotTime t) {
  // Autosleep duty check: an owed ack or buffered descent is future work.
  if (waker_ != nullptr && (ack_to_send_ || !buffer_.empty()))
    waker_->wake();

  const PhaseClock::SlotInfo info = clock_.decode(t);

  if (info.is_ack) {
    if (ack_to_send_) {
      Message ack = *ack_to_send_;
      ack_to_send_.reset();
      return ack;
    }
    return std::nullopt;
  }
  if (buffer_.empty()) return std::nullopt;
  if (!clock_.level_may_send_data(info, info_.level)) return std::nullopt;

  if (info.phase != attempt_phase_) {
    attempt_phase_ = info.phase;
    attempt_done_ = false;
    decay_.start();
  }
  if (attempt_done_ || !decay_.wants_transmit()) return std::nullopt;

  Message m = buffer_.front();
  m.sender = me_;
  m.sender_parent = info_.parent;
  just_transmitted_ = true;
  return m;
}

void P2pDownStation::deliver(SlotTime t, const Message& m) {
  if (waker_ != nullptr) waker_->wake();  // see P2pUpStation::deliver
  const PhaseClock::SlotInfo info = clock_.decode(t);

  if (info.is_ack) {
    if (m.kind != MsgKind::kAck || m.dest != me_ || buffer_.empty()) return;
    const Message& head = buffer_.front();
    if (m.origin == head.origin && m.seq == head.seq) {
      buffer_.pop_front();
      decay_.stop();
      attempt_done_ = true;
    }
    return;
  }

  // Data subslot (§5.3): "a node w receiving a message designated to u
  // processes it only if u is a BFS-tree descendant of w". The appended
  // sender id additionally tells us the message moves downwards (it comes
  // from our BFS parent), not from one of our own children.
  if (m.kind != MsgKind::kData) return;
  if (m.sender != info_.parent) return;
  if (!info_.subtree_contains(m.dest)) return;

  Message ack;
  ack.kind = MsgKind::kAck;
  ack.dest = m.sender;
  ack.origin = m.origin;
  ack.seq = m.seq;
  ack_to_send_ = ack;

  if (m.dest == info_.number) {
    sink_.push_back({t, m});  // final delivery
  } else {
    buffer_.push_back(m);
  }
}

void P2pDownStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

P2pOutcome run_point_to_point(const Graph& g, const PreparationResult& prep,
                              const std::vector<P2pRequest>& requests,
                              const P2pConfig& cfg, std::uint64_t seed,
                              SlotTime max_slots) {
  const NodeId n = g.num_nodes();
  require(prep.routing.size() == n, "run_point_to_point: bad preparation");

  Rng master(seed);
  std::vector<std::unique_ptr<P2pUpStation>> ups;
  std::vector<std::unique_ptr<P2pDownStation>> downs;
  ups.reserve(n);
  downs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    ups.push_back(std::make_unique<P2pUpStation>(v, prep.routing[v], cfg,
                                                 master.split(2 * v)));
    downs.push_back(std::make_unique<P2pDownStation>(v, prep.routing[v], cfg,
                                                     master.split(2 * v + 1)));
    ups.back()->set_down(downs.back().get());
  }

  // Inject the requests; remember (origin, seq) -> request index so the
  // driver can time each delivery. The request set is fixed up front, so a
  // sorted vector gives deterministic, allocation-free lookups.
  std::vector<std::pair<std::uint64_t, std::size_t>> tag_to_request;
  tag_to_request.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const P2pRequest& r = requests[i];
    require(r.src < n && r.dst < n, "run_point_to_point: bad request");
    const std::uint32_t addr = prep.labels.number[r.dst];
    const std::uint32_t seq = ups[r.src]->send(addr, r.payload);
    tag_to_request.emplace_back(
        (static_cast<std::uint64_t>(r.src) << 32) | seq, i);
  }
  std::sort(tag_to_request.begin(), tag_to_request.end());
  const auto find_request =
      [&tag_to_request](std::uint64_t tag) -> const std::size_t* {
    const auto it = std::lower_bound(
        tag_to_request.begin(), tag_to_request.end(), tag,
        [](const auto& e, std::uint64_t t) { return e.first < t; });
    return it != tag_to_request.end() && it->first == tag ? &it->second
                                                          : nullptr;
  };

  std::deque<ChannelMuxStation> muxes;
  std::vector<Station*> ptrs;
  for (NodeId v = 0; v < n; ++v)
    muxes.emplace_back(std::vector<SubStation*>{ups[v].get(), downs[v].get()},
                       cfg.autosleep);
  for (auto& m : muxes) ptrs.push_back(&m);

  RadioNetwork::Config ncfg;
  ncfg.num_channels = 2;
  RadioNetwork net(g, ncfg);
  if (cfg.trace != nullptr) net.set_trace(cfg.trace);
  if (cfg.slot_hook != nullptr) net.set_slot_hook(cfg.slot_hook);
  FaultSchedule faults;
  if (cfg.faults.any()) {
    faults = FaultSchedule(g, cfg.faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&faults);
  }
  net.attach(std::move(ptrs));

  P2pOutcome out;
  out.delivery_slot.assign(requests.size(), static_cast<SlotTime>(-1));
  std::uint64_t delivered = 0;
  std::vector<std::size_t> up_seen(n, 0), down_seen(n, 0);
  auto harvest = [&](SlotTime) {
    for (NodeId v = 0; v < n; ++v) {
      const auto& su = ups[v]->sink();
      for (; up_seen[v] < su.size(); ++up_seen[v]) {
        const auto& d = su[up_seen[v]];
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(d.msg.origin) << 32) | d.msg.seq;
        if (const std::size_t* req = find_request(tag)) {
          // First copy only: a lost ack (fault injection) makes the sender
          // retransmit an already-delivered message, and the radio level
          // cannot deduplicate that — the end-to-end count must.
          if (out.delivery_slot[*req] == static_cast<SlotTime>(-1)) {
            out.delivery_slot[*req] = d.slot;
            ++delivered;
          }
        }
      }
      const auto& sd = downs[v]->sink();
      for (; down_seen[v] < sd.size(); ++down_seen[v]) {
        const auto& d = sd[down_seen[v]];
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(d.msg.origin) << 32) | d.msg.seq;
        if (const std::size_t* req = find_request(tag)) {
          if (out.delivery_slot[*req] == static_cast<SlotTime>(-1)) {
            out.delivery_slot[*req] = d.slot;
            ++delivered;
          }
        }
      }
    }
  };

  harvest(0);  // self-addressed requests complete instantly
  std::uint64_t progress_count = delivered;
  SlotTime progress_slot = 0;
  bool stalled = false;
  {
    perf::PerfSpan run_span(cfg.profiler, "p2p.run");
    while (delivered < requests.size() && net.now() < max_slots) {
      net.step();
      harvest(net.now());
      if (cfg.stall_slots > 0) {
        if (delivered > progress_count) {
          progress_count = delivered;
          progress_slot = net.now();
        } else if (net.now() - progress_slot >= cfg.stall_slots) {
          stalled = true;
          break;
        }
      }
    }
  }
  if (cfg.profiler != nullptr) {
    cfg.profiler->count("p2p.slots", net.now());
    cfg.profiler->count("p2p.delivered", delivered);
  }
  out.completed = delivered >= requests.size();
  out.status = out.completed ? RunStatus::kOk
               : stalled    ? RunStatus::kDegraded
                            : RunStatus::kFailed;
  out.slots = net.now();
  out.delivered = delivered;
  out.engine_polls = net.engine_stats().station_polls;

  if (cfg.telemetry != nullptr) {
    telemetry::Telemetry& tel = *cfg.telemetry;
    tel.timeline.record(
        "point_to_point", "run", 0, out.slots,
        {{"k", static_cast<std::int64_t>(requests.size())},
         {"delivered", static_cast<std::int64_t>(delivered)},
         {"completed", out.completed ? 1 : 0}});
    tel.metrics.counter("p2p.requests").inc(requests.size());
    tel.metrics.counter("p2p.delivered").inc(delivered);
    telemetry::Distribution& lat = tel.metrics.distribution(
        "p2p.delivery_slot", {}, telemetry::Scale::kLog2);
    for (SlotTime s : out.delivery_slot)
      if (s != static_cast<SlotTime>(-1))
        lat.add(static_cast<std::int64_t>(s));
    telemetry::publish_net_metrics(net.metrics(), tel.metrics,
                                   "point_to_point");
    if (faults.enabled()) {
      telemetry::publish_fault_metrics(faults, net.metrics(), tel.metrics,
                                       "point_to_point");
      tel.timeline.record(
          "faults", "point_to_point", 0, out.slots,
          {{"crashes", static_cast<std::int64_t>(faults.stats().crashes)},
           {"recoveries",
            static_cast<std::int64_t>(faults.stats().recoveries)},
           {"link_downs",
            static_cast<std::int64_t>(faults.stats().link_downs)},
           {"jams", static_cast<std::int64_t>(net.metrics().fault_jams)},
           {"drops", static_cast<std::int64_t>(net.metrics().fault_drops)},
           {"degraded", out.status == RunStatus::kDegraded ? 1 : 0}});
    }
  }
  return out;
}

}  // namespace radiomc
