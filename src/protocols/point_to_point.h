#pragma once

// Point-to-point transmission (§5).
//
// After the preparation step (dfs_numbering.h), every node is addressed by
// its DFS number, and each node knows its own DFS interval [number,
// max_desc] and its children's intervals. A message for address `a` first
// climbs the BFS tree (the upward subprotocol, §5.2 — identical to
// collection) until it reaches the first ancestor whose interval contains
// `a`, then descends (the downward subprotocol, §5.3): each hop the holder
// sends it down, and a receiver processes it only if `a` lies in its own
// subtree — which, by disjointness of sibling subtrees, identifies the
// unique next hop. Both directions use Decay per phase, the deterministic
// acknowledgements of §3, and the mod-3 level gating of §2.2; the two
// directions run concurrently on separate channels (§1.4).
//
// As in the paper, destinations are DFS addresses ("Henceforth, each node
// uses its DFS number as its address"); the id->address directory is held
// by the root and is what the ranking application (§7) distributes.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "faults/fault_plan.h"
#include "protocols/decay.h"
#include "protocols/dfs_numbering.h"
#include "radio/schedule.h"
#include "radio/station.h"
#include "radio/trace.h"
#include "support/rng.h"
#include "telemetry/telemetry.h"

namespace radiomc {

struct P2pConfig {
  SlotStructure slots;  ///< ack + mod-3 on by default

  /// Optional observability, used by run_point_to_point: a run span with
  /// request counts, delivery-latency histogram, engine counters.
  TelemetryHub* telemetry = nullptr;
  /// Optional physical-event sink installed on the driver's network.
  TraceSink* trace = nullptr;

  /// Optional perf instrumentation: a "p2p.run" span plus request/slot
  /// counters. Write-only here (perf-purity).
  perf::Profiler* profiler = nullptr;
  /// Optional per-slot observer installed on the driver's network.
  SlotHook* slot_hook = nullptr;

  /// Fault injection (src/faults/); all-zero = no faults, legacy path.
  FaultPlan faults;
  /// Progress watchdog: when > 0 and no request completes for this many
  /// slots, the driver stops with RunStatus::kDegraded. 0 = off.
  SlotTime stall_slots = 0;

  /// Opt into the active-set engine's autosleep (radio/waker.h): a node
  /// sleeps while neither half owes an ack or holds buffered traffic, and
  /// any reception wakes it. The driver composes both halves under a
  /// coordinated ChannelMuxStation, so the promise is joint. Byte-identical
  /// deliveries either way; the engine_diff A/B test is the proof.
  bool autosleep = true;

  static P2pConfig for_graph(const Graph& g) {
    P2pConfig c;
    c.slots.decay_len = decay_length(g.max_degree());
    return c;
  }
};

class P2pDownStation;

/// Upward subprotocol (§5.2): collection toward the least common ancestor.
class P2pUpStation final : public SubStation {
 public:
  struct Delivery {
    SlotTime slot = 0;
    Message msg;
  };

  P2pUpStation(NodeId me, const RoutingInfo& info, P2pConfig cfg, Rng rng);

  /// Wires the handoff to this node's downward half (LCA turn).
  void set_down(P2pDownStation* down) noexcept { down_ = down; }

  void on_attach(Waker& w) override;
  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  /// Originates a transmission to DFS address `dest_addr`. Returns the
  /// per-origin sequence number assigned to it.
  std::uint32_t send(std::uint32_t dest_addr, std::uint64_t payload);

  std::size_t buffer_size() const noexcept { return buffer_.size(); }
  const std::vector<Delivery>& sink() const noexcept { return sink_; }

 private:
  void route(SlotTime t, const Message& m);

  NodeId me_;
  RoutingInfo info_;
  PhaseClock clock_;
  Rng rng_;
  P2pDownStation* down_ = nullptr;
  bool autosleep_;
  Waker* waker_ = nullptr;  ///< set by on_attach iff autosleep_ is on

  std::deque<Message> buffer_;
  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  bool attempt_done_ = false;
  bool just_transmitted_ = false;
  std::optional<Message> ack_to_send_;
  std::uint32_t next_seq_ = 0;
  std::vector<Delivery> sink_;
};

/// Downward subprotocol (§5.3): descent by DFS-interval containment.
class P2pDownStation final : public SubStation {
 public:
  P2pDownStation(NodeId me, const RoutingInfo& info, P2pConfig cfg, Rng rng);

  void on_attach(Waker& w) override;
  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  /// LCA handoff from the upward half (or from local origination). Wakes
  /// the station: the handoff happens inside the upward half's deliver,
  /// and the new buffer entry is transmit duty for the *next* poll.
  void enqueue(const Message& m) {
    buffer_.push_back(m);
    if (waker_ != nullptr) waker_->wake();
  }

  std::size_t buffer_size() const noexcept { return buffer_.size(); }
  const std::vector<P2pUpStation::Delivery>& sink() const noexcept {
    return sink_;
  }

 private:
  NodeId me_;
  RoutingInfo info_;
  PhaseClock clock_;
  Rng rng_;
  bool autosleep_;
  Waker* waker_ = nullptr;  ///< set by on_attach iff autosleep_ is on

  std::deque<Message> buffer_;
  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  bool attempt_done_ = false;
  bool just_transmitted_ = false;
  std::optional<Message> ack_to_send_;
  std::vector<P2pUpStation::Delivery> sink_;
};

/// One transmission request for the driver: node `src` sends `payload` to
/// node `dst` (node ids; the driver translates to DFS addresses the way the
/// root's directory would).
struct P2pRequest {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t payload = 0;
};

struct P2pOutcome {
  bool completed = false;
  /// kOk iff completed; kDegraded when the stall watchdog fired;
  /// kFailed when max_slots ran out.
  RunStatus status = RunStatus::kOk;
  SlotTime slots = 0;
  std::uint64_t delivered = 0;
  /// Per request: slot at which it reached its destination (or -1).
  std::vector<SlotTime> delivery_slot;
  /// Engine on_slot invocations — the autosleep payoff metric.
  std::uint64_t engine_polls = 0;
};

/// Runs k point-to-point transmissions injected at slot 0 and measures the
/// completion time (Theorem-4.4-style bound: O((k+D) log Delta)).
P2pOutcome run_point_to_point(const Graph& g, const PreparationResult& prep,
                              const std::vector<P2pRequest>& requests,
                              const P2pConfig& cfg, std::uint64_t seed,
                              SlotTime max_slots = 100'000'000);

}  // namespace radiomc
