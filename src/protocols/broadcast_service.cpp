#include "protocols/broadcast_service.h"

#include <algorithm>

#include "perf/profiler.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

BroadcastService::BroadcastService(const Graph& g, const BfsTree& tree,
                                   BroadcastServiceConfig cfg,
                                   std::uint64_t seed)
    : g_(g), tree_(tree), cfg_(cfg) {
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "BroadcastService: tree/graph mismatch");
  Rng master(seed);
  next_up_seq_.assign(n, 0);

  coll_.reserve(n);
  dist_.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    coll_.push_back(std::make_unique<CollectionStation>(
        v, tree, cfg.collection, master.split(2 * v)));
    dist_.push_back(std::make_unique<DistributionStation>(
        v, tree, cfg.distribution, master.split(2 * v + 1)));
  }

  // Control plane: a node's distribution half emits NACKs / checkpoint
  // acks into its own collection buffer; the root's collection sink feeds
  // the distribution sender.
  for (NodeId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    CollectionStation* up = coll_[v].get();
    std::uint32_t* seq = &next_up_seq_[v];
    const NodeId me = v;
    dist_[v]->set_control(
        [up, seq, me](std::uint32_t missing) {
          Message m;
          m.kind = MsgKind::kNack;
          m.origin = me;
          m.seq = (*seq)++;
          m.aux = missing;
          up->inject(m);
        },
        [up, seq, me](std::uint32_t cp) {
          Message m;
          m.kind = MsgKind::kSetupReport;  // checkpoint ack (control)
          m.origin = me;
          m.seq = (*seq)++;
          m.aux = cp;
          up->inject(m);
        });
  }
  DistributionStation* root_dist = dist_[tree.root].get();
  coll_[tree.root]->set_root_handler(
      [root_dist](SlotTime, const Message& m) {
        switch (m.kind) {
          case MsgKind::kData:
            root_dist->root_enqueue(m);
            break;
          case MsgKind::kNack:
            root_dist->root_request_resend(m.aux);
            break;
          case MsgKind::kSetupReport:
            root_dist->root_checkpoint_ack(m.origin, m.aux);
            break;
          // The collection channel can only surface upbound kinds at the
          // root; anything else is ignored rather than fed downstream.
          case MsgKind::kAck:
          case MsgKind::kLeader:
          case MsgKind::kBfsAnnounce:
          case MsgKind::kDfsToken:
          case MsgKind::kBcastData:
            break;
        }
      });

  // Wire the stacks onto the network.
  std::vector<Station*> ptrs;
  RadioNetwork::Config ncfg = cfg.engine;
  if (cfg.mode == BroadcastServiceConfig::ChannelMode::kSeparate) {
    ncfg.num_channels = 2;
    // Coordinated autosleep only when both subs make the Waker promise:
    // the muxed node shares one membership bit (see ChannelMuxStation).
    const bool autosleep =
        cfg.collection.autosleep && cfg.distribution.autosleep;
    for (NodeId v = 0; v < n; ++v)
      muxes_.push_back(std::make_unique<ChannelMuxStation>(
          std::vector<SubStation*>{coll_[v].get(), dist_[v].get()},
          autosleep));
  } else {
    ncfg.num_channels = 1;
    for (NodeId v = 0; v < n; ++v)
      muxes_.push_back(std::make_unique<TimeDivisionStation>(
          std::vector<SubStation*>{coll_[v].get(), dist_[v].get()}));
  }
  for (auto& m : muxes_) ptrs.push_back(m.get());
  net_ = std::make_unique<RadioNetwork>(g, ncfg);
  if (cfg.trace != nullptr) net_->set_trace(cfg.trace);
  if (cfg.slot_hook != nullptr) net_->set_slot_hook(cfg.slot_hook);
  if (cfg.faults.any()) {
    faults_ = std::make_unique<FaultSchedule>(
        g, cfg.faults, master.split(rng_tags::kFaultStream).next());
    net_->set_faults(faults_.get());
  }
  net_->attach(std::move(ptrs));
}

void BroadcastService::broadcast(NodeId src, std::uint64_t payload) {
  Message m;
  m.kind = MsgKind::kData;
  m.origin = src;
  m.seq = next_up_seq_[src]++;
  m.payload = payload;
  coll_[src]->inject(m);  // the root handler forwards into distribution
  ++originated_;
}

void BroadcastService::step() { net_->step(); }

SlotTime BroadcastService::now() const { return net_->now(); }

const NetMetrics& BroadcastService::metrics() const {
  return net_->metrics();
}

std::uint32_t BroadcastService::min_delivered_prefix() const {
  std::uint32_t best = static_cast<std::uint32_t>(-1);
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    if (v == tree_.root) continue;
    best = std::min(best, dist_[v]->delivered_prefix());
  }
  return best;  // n == 1: no other nodes, so UINT32_MAX = "all delivered"
}

bool BroadcastService::run_until_delivered(SlotTime max_slots) {
  std::uint32_t progress_prefix = min_delivered_prefix();
  SlotTime progress_slot = net_->now();
  bool stalled = false;
  while (net_->now() < max_slots) {
    if (min_delivered_prefix() >= originated_) {
      status_ = RunStatus::kOk;
      return true;
    }
    net_->step();
    if (cfg_.stall_slots > 0) {
      const std::uint32_t prefix = min_delivered_prefix();
      if (prefix > progress_prefix) {
        progress_prefix = prefix;
        progress_slot = net_->now();
      } else if (net_->now() - progress_slot >= cfg_.stall_slots) {
        stalled = true;
        break;
      }
    }
  }
  const bool done = min_delivered_prefix() >= originated_;
  status_ = done      ? RunStatus::kOk
            : stalled ? RunStatus::kDegraded
                      : RunStatus::kFailed;
  return done;
}

KBroadcastOutcome run_k_broadcast(const Graph& g, const BfsTree& tree,
                                  const std::vector<NodeId>& sources,
                                  BroadcastServiceConfig cfg,
                                  std::uint64_t seed, SlotTime max_slots) {
  BroadcastService svc(g, tree, cfg, seed);
  for (std::size_t i = 0; i < sources.size(); ++i)
    svc.broadcast(sources[i], 0x42000000ULL + i);
  KBroadcastOutcome out;
  {
    perf::PerfSpan run_span(cfg.profiler, "broadcast.run");
    out.completed = svc.run_until_delivered(max_slots);
  }
  out.status = svc.status();
  out.slots = svc.now();
  out.root_resends = svc.distribution(tree.root).root_resends();
  out.delivered_prefix = svc.min_delivered_prefix();
  out.engine_polls = svc.engine_stats().station_polls;
  if (cfg.profiler != nullptr) {
    cfg.profiler->count("broadcast.slots", out.slots);
    cfg.profiler->count("broadcast.root_resends", out.root_resends);
  }

  if (cfg.telemetry != nullptr) {
    telemetry::Telemetry& tel = *cfg.telemetry;
    const DistributionStation& root = svc.distribution(tree.root);
    tel.timeline.record(
        "distribution", "k_broadcast", 0, out.slots,
        {{"k", static_cast<std::int64_t>(sources.size())},
         {"completed", out.completed ? 1 : 0}});
    tel.metrics.counter("distribution.broadcasts").inc(sources.size());
    tel.metrics.counter("distribution.root_fresh_sent")
        .inc(root.root_sent_fresh());
    tel.metrics.counter("distribution.root_resends").inc(out.root_resends);
    tel.metrics.counter("distribution.root_idle_rebroadcasts")
        .inc(root.root_idle_rebroadcasts());
    telemetry::publish_net_metrics(svc.metrics(), tel.metrics,
                                   "distribution");
    if (svc.faults() != nullptr && svc.faults()->enabled()) {
      const FaultSchedule& fsch = *svc.faults();
      telemetry::publish_fault_metrics(fsch, svc.metrics(), tel.metrics,
                                       "distribution");
      tel.timeline.record(
          "faults", "distribution", 0, out.slots,
          {{"crashes", static_cast<std::int64_t>(fsch.stats().crashes)},
           {"recoveries",
            static_cast<std::int64_t>(fsch.stats().recoveries)},
           {"link_downs",
            static_cast<std::int64_t>(fsch.stats().link_downs)},
           {"jams", static_cast<std::int64_t>(svc.metrics().fault_jams)},
           {"drops", static_cast<std::int64_t>(svc.metrics().fault_drops)},
           {"degraded", out.status == RunStatus::kDegraded ? 1 : 0}});
    }
  }
  return out;
}

}  // namespace radiomc
