#pragma once

// The BFS-tree communication subnetwork built by the setup phase (§2) and
// the DFS address labels added by the preparation step (§5.1).
//
// `BfsTree` is the global result object handed from the setup drivers to
// the protocol drivers; each station is initialized with *only its own*
// local slice (parent, level, children, DFS ranges) — the locality
// discipline of DESIGN.md §5.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace radiomc {

struct BfsTree {
  NodeId root = kNoNode;
  std::vector<NodeId> parent;        ///< kNoNode for the root
  std::vector<std::uint32_t> level;  ///< hop distance from the root
  std::uint32_t depth = 0;           ///< max level

  /// Children lists (derived; ascending ids).
  std::vector<std::vector<NodeId>> children;

  /// Builds the derived fields from root + parents. Throws if the parent
  /// pointers do not describe a tree spanning all `parent.size()` nodes.
  static BfsTree from_parents(NodeId root, std::vector<NodeId> parents);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(parent.size());
  }
};

/// Checks that `t` is a *BFS* tree of `g`: every tree edge is a graph edge,
/// levels increase by exactly one along tree edges, and level[v] equals the
/// true hop distance from the root. Used by tests (ground truth) and by the
/// omniscient fast-path setup used in benches that do not measure setup.
bool is_bfs_tree_of(const Graph& g, const BfsTree& t);

/// Builds the true BFS tree of `g` from `root` centrally (smallest-id
/// parents). This is the instant "oracle setup" used by experiments whose
/// subject is not the setup phase itself.
BfsTree oracle_bfs_tree(const Graph& g, NodeId root);

/// DFS address labels (§5.1): each node's preorder number in a DFS of the
/// BFS tree and the maximum number in its subtree. The descendants of v are
/// exactly the addresses in [number[v], max_desc[v]] — the containment test
/// that drives point-to-point routing.
struct DfsLabels {
  std::vector<std::uint32_t> number;
  std::vector<std::uint32_t> max_desc;

  bool contains(NodeId v, std::uint32_t addr) const noexcept {
    return number[v] <= addr && addr <= max_desc[v];
  }
};

/// Oracle DFS labels of a BFS tree (children in ascending id order, the
/// same order the distributed token traversal uses).
DfsLabels oracle_dfs_labels(const BfsTree& t);

/// Graphviz DOT with the BFS tree highlighted: tree edges solid, non-tree
/// edges dashed, nodes labelled "id (level)", the root marked in red.
std::string tree_to_dot(const Graph& g, const BfsTree& tree);

}  // namespace radiomc
