#pragma once

// The Decay primitive of Bar-Yehuda, Goldreich & Itai [3] (§1.4):
//
//   procedure Decay(m):
//     repeat at most 2*log(Delta) times:
//       transmit m to all neighbors
//       flip coin R in {0, 1}
//     until coin == 0
//
// Properties used throughout the paper:
//   (1) one invocation lasts 2*log(Delta) time slots;
//   (2) if several neighbors of v run Decay concurrently, v receives one of
//       the messages with probability > 1/2.
//
// `DecayProcess` is the per-node state of one invocation; protocol stations
// embed one and drive it on their data-transmission opportunities.

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"
#include "support/util.h"

namespace radiomc {

namespace perf {
class Profiler;  // src/perf/profiler.h; forward-declared (perf-purity)
}  // namespace perf

class DecayProcess {
 public:
  /// `length` is the maximum number of transmissions per invocation,
  /// normally decay_length(Delta) = 2*ceil(log2 Delta).
  explicit DecayProcess(std::uint32_t length) : length_(length) {
    require(length >= 1, "DecayProcess: length >= 1");
  }

  /// Begins a new invocation: the node is live and will transmit at its
  /// next opportunity.
  void start() noexcept {
    live_ = true;
    used_ = 0;
  }

  /// True iff the node should transmit at this opportunity.
  bool wants_transmit() const noexcept { return live_ && used_ < length_; }

  /// Advances the invocation after a transmission: flips the coin and dies
  /// with probability 1/2 (paper: "transmit m; flip coin; until coin = 0").
  void after_transmit(Rng& rng) noexcept {
    ++used_;
    if (rng.coin()) live_ = false;
  }

  /// Aborts the invocation (used when an acknowledgement arrives).
  void stop() noexcept { live_ = false; }

  bool live() const noexcept { return live_; }
  std::uint32_t transmissions_used() const noexcept { return used_; }
  std::uint32_t length() const noexcept { return length_; }

 private:
  std::uint32_t length_;
  std::uint32_t used_ = 0;
  bool live_ = false;
};

/// Experiment helper (E1): runs a single synchronized Decay invocation on
/// graph `g` where every node in `transmitters` sends a distinct message,
/// and reports whether `receiver` heard any of them. All transmitters must
/// be neighbors of `receiver` for property (2) to apply, but the function
/// does not require it (multi-hop interference studies use non-neighbors).
/// `profiler` (optional) records one "decay.invocation" span per trial.
///
/// With `autosleep` the listeners opt out of the engine's active set (they
/// never transmit, and their idle slots touch no state), so only live
/// Decay processes are polled; a live process transmits every polled slot,
/// which retains its membership with zero wake() calls, making the result
/// byte-identical to the always-active run. `engine_polls` (optional)
/// receives the engine's on_slot count — the quantity autosleep shrinks.
bool decay_single_trial(const Graph& g, NodeId receiver,
                        const std::vector<NodeId>& transmitters,
                        std::uint32_t decay_len, Rng& rng,
                        perf::Profiler* profiler = nullptr,
                        bool autosleep = true,
                        std::uint64_t* engine_polls = nullptr);

}  // namespace radiomc
