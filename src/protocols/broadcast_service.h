#pragma once

// The k-broadcast service (§6): "to broadcast a message a node first sends
// the message to the root using the collection subprotocol. Then the
// message is sent to all the nodes of the network using the distribution
// subprotocol." Both run concurrently — collection on the up channel,
// distribution on the down channel (§1.4) — or interleaved odd/even on a
// single channel (the multiplexing alternative, used by ablation E12).
//
// The collection channel also carries the distribution control plane:
// gap NACKs and window checkpoint acknowledgements climb to the root like
// any other collected message.

#include <cstdint>
#include <memory>
#include <vector>

#include "protocols/collection.h"
#include "protocols/distribution.h"
#include "protocols/tree.h"
// BroadcastService is a driver-in-a-header: it owns the RadioNetwork the
// collection + distribution stacks run on (its stations stay model-pure).
// radiomc-lint: allow(engine-include) reason=service owns the engine it hosts stations on
#include "radio/network.h"
#include "radio/station.h"
#include "support/rng.h"

namespace radiomc {

struct BroadcastServiceConfig {
  CollectionConfig collection;
  DistributionConfig distribution;
  /// Separate channels (paper's default) or odd/even time multiplexing.
  enum class ChannelMode { kSeparate, kTimeDivision } mode =
      ChannelMode::kSeparate;
  /// Physical-layer knobs (e.g. the Remark-3 capture model); the channel
  /// count is set by `mode` and any value here is overwritten.
  RadioNetwork::Config engine;

  /// Optional observability, used by run_k_broadcast: a distribution span
  /// with resend/idle-rebroadcast counters plus the engine totals.
  TelemetryHub* telemetry = nullptr;
  /// Optional physical-event sink installed on the service's network.
  TraceSink* trace = nullptr;

  /// Optional perf instrumentation: run_k_broadcast opens a
  /// "broadcast.run" span and bumps slot/resend counters (perf-purity:
  /// write-only, never read back).
  perf::Profiler* profiler = nullptr;
  /// Optional per-slot observer installed on the service's network.
  SlotHook* slot_hook = nullptr;

  /// Fault injection (src/faults/), compiled by the service against the
  /// graph and a stream split off the seed. The per-protocol plans inside
  /// `collection` / `distribution` are ignored here — the service runs one
  /// network, so it carries one schedule.
  FaultPlan faults;
  /// Progress watchdog for run_until_delivered: when > 0 and the minimum
  /// delivered prefix has not advanced for this many slots, stop with
  /// RunStatus::kDegraded. 0 = off.
  SlotTime stall_slots = 0;

  static BroadcastServiceConfig for_graph(const Graph& g) {
    BroadcastServiceConfig c;
    c.collection = CollectionConfig::for_graph(g);
    c.distribution = DistributionConfig::for_graph(g);
    return c;
  }
};

/// Owns the full per-node protocol stack and the network; the driver calls
/// `broadcast` to originate messages and `step`/`run_until_delivered` to
/// advance time.
class BroadcastService {
 public:
  BroadcastService(const Graph& g, const BfsTree& tree,
                   BroadcastServiceConfig cfg, std::uint64_t seed);

  /// Originates a broadcast of `payload` at node `src` (enters the
  /// collection buffer; at the root it is queued for distribution
  /// directly, as the root is its own collection sink).
  void broadcast(NodeId src, std::uint64_t payload);

  void step();
  /// Runs until every node has delivered (in order) all broadcasts
  /// originated so far, or `max_slots` pass, or the configured stall
  /// watchdog fires. Returns success; `status()` has the structured
  /// outcome afterwards.
  bool run_until_delivered(SlotTime max_slots);
  RunStatus status() const noexcept { return status_; }
  /// The service's fault schedule, or nullptr when faults are off.
  const FaultSchedule* faults() const noexcept { return faults_.get(); }

  SlotTime now() const;
  std::uint64_t originated() const noexcept { return originated_; }
  /// Smallest in-order delivered prefix over all non-root nodes.
  std::uint32_t min_delivered_prefix() const;
  const DistributionStation& distribution(NodeId v) const {
    return *dist_[v];
  }
  /// Mutable access, e.g. to install application delivery handlers.
  DistributionStation& distribution_mutable(NodeId v) { return *dist_[v]; }
  const CollectionStation& collection(NodeId v) const { return *coll_[v]; }
  const NetMetrics& metrics() const;
  /// Engine scheduling counters (station polls / wake events) — the
  /// autosleep payoff metrics.
  const EngineStats& engine_stats() const { return net_->engine_stats(); }

 private:
  const Graph& g_;
  const BfsTree& tree_;
  BroadcastServiceConfig cfg_;
  std::vector<std::unique_ptr<CollectionStation>> coll_;
  std::vector<std::unique_ptr<DistributionStation>> dist_;
  std::vector<std::unique_ptr<Station>> muxes_;
  std::unique_ptr<RadioNetwork> net_;
  std::unique_ptr<FaultSchedule> faults_;
  std::vector<std::uint32_t> next_up_seq_;
  std::uint64_t originated_ = 0;
  RunStatus status_ = RunStatus::kOk;
};

/// Driver for experiment E6: k broadcasts from random sources, all present
/// at slot 0; measures time until every node delivered all of them.
struct KBroadcastOutcome {
  bool completed = false;
  /// kOk iff completed; kDegraded when the stall watchdog fired;
  /// kFailed when max_slots ran out.
  RunStatus status = RunStatus::kOk;
  SlotTime slots = 0;
  std::uint64_t root_resends = 0;
  /// Broadcasts delivered to EVERY node (the service's min prefix); on a
  /// degraded run this is the partial-progress measure (>= k iff
  /// completed). Under crash faults it can exceed k: a station frozen
  /// mid-retransmission can resurrect a stale copy whose mod-4W wire
  /// sequence aliases to a phantom index past the frontier. The prefix
  /// property still guarantees every real message below it was delivered —
  /// exactly-once weakens to at-least-once, completeness survives.
  std::uint32_t delivered_prefix = 0;
  /// Engine on_slot invocations — the autosleep payoff metric.
  std::uint64_t engine_polls = 0;
};
KBroadcastOutcome run_k_broadcast(const Graph& g, const BfsTree& tree,
                                  const std::vector<NodeId>& sources,
                                  BroadcastServiceConfig cfg,
                                  std::uint64_t seed,
                                  SlotTime max_slots = 200'000'000);

}  // namespace radiomc
