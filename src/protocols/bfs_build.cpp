#include "protocols/bfs_build.h"

#include <deque>
#include <memory>

#include "radio/network.h"
#include "support/util.h"

namespace radiomc {

BfsBuildStation::BfsBuildStation(NodeId me, BfsBuildConfig cfg, Rng rng)
    : me_(me), cfg_(cfg), rng_(rng), decay_(cfg.decay_len) {}

void BfsBuildStation::make_root(NodeId root_id) {
  level_ = 0;
  parent_ = kNoNode;
  root_id_ = root_id;
  joined_at_ = 0;
}

void BfsBuildStation::reset() {
  level_ = kNoLevel;
  parent_ = kNoNode;
  root_id_ = kNoNode;
  consistent_ = true;
  joined_at_ = 0;
  attempt_phase_ = static_cast<std::uint64_t>(-1);
  just_transmitted_ = false;
  decay_.stop();
}

std::optional<Message> BfsBuildStation::poll(SlotTime t) {
  if (level_ == kNoLevel || stage_of(t) != level_) return std::nullopt;
  const std::uint64_t phase = t / cfg_.decay_len;
  if (phase != attempt_phase_) {
    attempt_phase_ = phase;
    decay_.start();
  }
  if (!decay_.wants_transmit()) return std::nullopt;
  Message m;
  m.kind = MsgKind::kBfsAnnounce;
  m.origin = me_;
  m.aux = level_;
  m.payload = root_id_;
  just_transmitted_ = true;
  return m;
}

void BfsBuildStation::deliver(SlotTime t, const Message& m) {
  if (m.kind != MsgKind::kBfsAnnounce) return;
  if (level_ == kNoLevel) {
    level_ = m.aux + 1;
    parent_ = m.sender;
    root_id_ = static_cast<NodeId>(m.payload);
    joined_at_ = t;
  } else if (m.aux + 1 < level_) {
    // A neighbor sits at level m.aux <= level_-2: our own level is too
    // large, i.e. we missed an earlier stage. Report it so the setup
    // verification restarts the attempt.
    consistent_ = false;
  }
}

void BfsBuildStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

BfsBuildOutcome run_bfs_build(const Graph& g, NodeId root,
                              const BfsBuildConfig& cfg, std::uint64_t seed,
                              std::uint64_t max_stages) {
  const NodeId n = g.num_nodes();
  require(root < n, "run_bfs_build: root out of range");
  if (max_stages == 0) max_stages = n + 1;
  const std::uint64_t stage_slots =
      static_cast<std::uint64_t>(cfg.decay_len) * cfg.announce_phases;

  Rng master(seed);
  std::vector<std::unique_ptr<BfsBuildStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    stations.push_back(
        std::make_unique<BfsBuildStation>(v, cfg, master.split(v)));
  stations[root]->make_root(root);

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : stations) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);

  RadioNetwork net(g);
  net.attach(std::move(ptrs));

  std::uint64_t joined = 1;
  for (std::uint64_t stage = 0; stage < max_stages; ++stage) {
    // Levels are contiguous: an empty stage means no node holds level
    // `stage`, so construction is complete.
    bool any_at_stage = false;
    for (NodeId v = 0; v < n && !any_at_stage; ++v)
      any_at_stage = stations[v]->level() == stage;
    if (!any_at_stage) break;
    net.run(stage_slots);
  }

  BfsBuildOutcome out;
  out.slots = net.now();
  std::vector<NodeId> parents(n, kNoNode);
  joined = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (stations[v]->joined()) {
      ++joined;
      parents[v] = stations[v]->parent();
    }
  }
  out.all_joined = joined == n;
  if (out.all_joined) {
    out.tree = BfsTree::from_parents(root, std::move(parents));
    out.is_true_bfs = is_bfs_tree_of(g, out.tree);
  }
  return out;
}

}  // namespace radiomc
