#include "protocols/tree.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"
#include "support/util.h"

namespace radiomc {

BfsTree BfsTree::from_parents(NodeId root, std::vector<NodeId> parents) {
  const auto n = static_cast<NodeId>(parents.size());
  require(root < n, "BfsTree: root out of range");
  require(parents[root] == kNoNode, "BfsTree: root must have no parent");

  BfsTree t;
  t.root = root;
  t.parent = std::move(parents);
  t.children.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    require(t.parent[v] < n, "BfsTree: node with missing parent");
    t.children[t.parent[v]].push_back(v);
  }
  for (auto& c : t.children) std::sort(c.begin(), c.end());

  // Levels by walking down from the root; also validates acyclicity and
  // that the structure spans all nodes.
  t.level.assign(n, static_cast<std::uint32_t>(-1));
  t.level[root] = 0;
  std::vector<NodeId> frontier{root};
  NodeId seen = 1;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier)
      for (NodeId c : t.children[u]) {
        t.level[c] = t.level[u] + 1;
        depth = std::max(depth, t.level[c]);
        next.push_back(c);
        ++seen;
      }
    frontier = std::move(next);
  }
  require(seen == n, "BfsTree: parent pointers contain a cycle");
  t.depth = depth;
  return t;
}

bool is_bfs_tree_of(const Graph& g, const BfsTree& t) {
  if (t.num_nodes() != g.num_nodes()) return false;
  const BfsResult truth = bfs(g, t.root);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (t.level[v] != truth.dist[v]) return false;
    if (v == t.root) continue;
    if (!g.has_edge(v, t.parent[v])) return false;
    if (t.level[v] != t.level[t.parent[v]] + 1) return false;
  }
  return true;
}

BfsTree oracle_bfs_tree(const Graph& g, NodeId root) {
  const BfsResult r = bfs(g, root);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    require(r.dist[v] != BfsResult::kUnreached,
            "oracle_bfs_tree: graph must be connected");
  return BfsTree::from_parents(root, r.parent);
}

DfsLabels oracle_dfs_labels(const BfsTree& t) {
  const DfsNumbering num = dfs_number_tree(t.parent, t.root);
  DfsLabels labels;
  labels.number = num.number;
  labels.max_desc = num.max_desc;
  return labels;
}

std::string tree_to_dot(const Graph& g, const BfsTree& tree) {
  require(tree.num_nodes() == g.num_nodes(),
          "tree_to_dot: tree/graph mismatch");
  std::ostringstream os;
  os << "graph radiomc {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  " << v << " [label=\"" << v << " (" << tree.level[v] << ")\"";
    if (v == tree.root) os << ", style=bold, color=red";
    os << "];\n";
  }
  for (auto [u, v] : g.edge_list()) {
    const bool tree_edge = tree.parent[u] == v || tree.parent[v] == u;
    os << "  " << u << " -- " << v;
    if (!tree_edge) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace radiomc
