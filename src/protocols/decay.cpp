#include "protocols/decay.h"

#include <memory>
#include <vector>

#include "perf/profiler.h"
#include "radio/network.h"

namespace radiomc {

namespace {

/// Transmits one fixed message under Decay; everyone else listens.
class DecayTrialStation final : public Station {
 public:
  DecayTrialStation(std::uint32_t decay_len, bool transmits, Rng rng)
      : decay_(decay_len), rng_(rng) {
    if (transmits) decay_.start();
  }

  void on_slot(SlotTime, std::span<std::optional<Message>> tx) override {
    if (!decay_.wants_transmit()) return;
    Message m;
    m.kind = MsgKind::kData;
    tx[0] = m;
    transmitted_ = true;
  }

  void on_receive(SlotTime, ChannelId, const Message&) override {
    received_ = true;
  }

  void on_slot_end(SlotTime) override {
    if (transmitted_) {
      decay_.after_transmit(rng_);
      transmitted_ = false;
    }
  }

  bool received() const noexcept { return received_; }

 private:
  DecayProcess decay_;
  Rng rng_;
  bool transmitted_ = false;
  bool received_ = false;
};

}  // namespace

bool decay_single_trial(const Graph& g, NodeId receiver,
                        const std::vector<NodeId>& transmitters,
                        std::uint32_t decay_len, Rng& rng,
                        perf::Profiler* profiler) {
  perf::PerfSpan span(profiler, "decay.invocation");
  require(receiver < g.num_nodes(), "decay_single_trial: receiver in range");
  std::vector<bool> sends(g.num_nodes(), false);
  for (NodeId t : transmitters) {
    require(t < g.num_nodes(), "decay_single_trial: transmitter in range");
    sends[t] = true;
  }
  require(!sends[receiver], "decay_single_trial: receiver cannot transmit");

  std::vector<std::unique_ptr<DecayTrialStation>> stations;
  stations.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    stations.push_back(
        std::make_unique<DecayTrialStation>(decay_len, sends[v], rng.split(v)));
  std::vector<Station*> ptrs;
  ptrs.reserve(stations.size());
  for (auto& s : stations) ptrs.push_back(s.get());

  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  net.run(decay_len);
  return stations[receiver]->received();
}

}  // namespace radiomc
