#include "protocols/decay.h"

#include <memory>
#include <vector>

#include "perf/profiler.h"
#include "radio/network.h"

namespace radiomc {

namespace {

/// Transmits one fixed message under Decay; everyone else listens.
class DecayTrialStation final : public Station {
 public:
  DecayTrialStation(std::uint32_t decay_len, bool transmits, Rng rng,
                    bool autosleep)
      : decay_(decay_len), rng_(rng), autosleep_(autosleep) {
    if (transmits) decay_.start();
  }

  // The Waker promise holds trivially here: a live Decay process transmits
  // on every polled slot (transmitting retains active-set membership), and
  // once the coin kills it — or for pure listeners from the start — on_slot
  // returns no intent and on_slot_end is a no-op, so skipping both changes
  // nothing. No event ever re-creates transmit desire, hence no wake().
  void on_attach(Waker& w) override {
    if (autosleep_) w.set_autosleep(true);
  }

  void on_slot(SlotTime, std::span<std::optional<Message>> tx) override {
    if (!decay_.wants_transmit()) return;
    Message m;
    m.kind = MsgKind::kData;
    tx[0] = m;
    transmitted_ = true;
  }

  void on_receive(SlotTime, ChannelId, const Message&) override {
    received_ = true;
  }

  void on_slot_end(SlotTime) override {
    if (transmitted_) {
      decay_.after_transmit(rng_);
      transmitted_ = false;
    }
  }

  bool received() const noexcept { return received_; }

 private:
  DecayProcess decay_;
  Rng rng_;
  bool autosleep_;
  bool transmitted_ = false;
  bool received_ = false;
};

}  // namespace

bool decay_single_trial(const Graph& g, NodeId receiver,
                        const std::vector<NodeId>& transmitters,
                        std::uint32_t decay_len, Rng& rng,
                        perf::Profiler* profiler, bool autosleep,
                        std::uint64_t* engine_polls) {
  perf::PerfSpan span(profiler, "decay.invocation");
  require(receiver < g.num_nodes(), "decay_single_trial: receiver in range");
  std::vector<bool> sends(g.num_nodes(), false);
  for (NodeId t : transmitters) {
    require(t < g.num_nodes(), "decay_single_trial: transmitter in range");
    sends[t] = true;
  }
  require(!sends[receiver], "decay_single_trial: receiver cannot transmit");

  std::vector<std::unique_ptr<DecayTrialStation>> stations;
  stations.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    stations.push_back(std::make_unique<DecayTrialStation>(
        decay_len, sends[v], rng.split(v), autosleep));
  std::vector<Station*> ptrs;
  ptrs.reserve(stations.size());
  for (auto& s : stations) ptrs.push_back(s.get());

  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  net.run(decay_len);
  if (engine_polls) *engine_polls = net.engine_stats().station_polls;
  return stations[receiver]->received();
}

}  // namespace radiomc
