#include "protocols/bgi_broadcast.h"

#include <deque>
#include <memory>

#include "radio/network.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

FloodStation::FloodStation(std::uint32_t decay_len, Rng rng, bool autosleep)
    : decay_len_(decay_len),
      rng_(rng),
      decay_(decay_len),
      autosleep_(autosleep) {}

void FloodStation::on_attach(Waker& w) {
  if (!autosleep_) return;  // legacy contract: permanently active
  waker_ = &w;
  w.set_autosleep(true);
}

void FloodStation::seed(const Message& m) {
  informed_ = true;
  informed_at_ = 0;
  msg_ = m;
  if (waker_ != nullptr) waker_->wake();
}

void FloodStation::reset(Rng rng) {
  rng_ = rng;
  informed_ = false;
  informed_at_ = 0;
  msg_ = Message{};
  decay_.stop();
  attempt_phase_ = static_cast<std::uint64_t>(-1);
  just_transmitted_ = false;
}

std::optional<Message> FloodStation::poll(SlotTime t) {
  // An uninformed poll is a pure no-op, so an uninformed station may sleep
  // until the front's delivery wakes it. An informed station re-wakes every
  // poll: the flood restarts a Decay invocation each phase forever, so it
  // always has a future transmission duty even in its silent slots.
  if (!informed_) return std::nullopt;
  if (waker_ != nullptr) waker_->wake();
  const std::uint64_t phase = t / decay_len_;
  if (phase != attempt_phase_) {
    attempt_phase_ = phase;
    decay_.start();
  }
  if (!decay_.wants_transmit()) return std::nullopt;
  just_transmitted_ = true;
  return msg_;
}

void FloodStation::deliver(SlotTime t, const Message& m) {
  if (informed_) return;
  if (waker_ != nullptr) waker_->wake();
  informed_ = true;
  informed_at_ = t;
  msg_ = m;
  // Joins the flood at its next poll: attempt_phase_ lags behind, so a
  // fresh Decay invocation starts at the next phase boundary seen.
}

void FloodStation::tick(SlotTime) {
  if (just_transmitted_) {
    decay_.after_transmit(rng_);
    just_transmitted_ = false;
  }
}

BgiOutcome run_bgi_broadcast(const Graph& g, NodeId source,
                             std::uint64_t phases, std::uint64_t seed,
                             const FaultPlan& faults, bool autosleep) {
  const NodeId n = g.num_nodes();
  require(source < n, "run_bgi_broadcast: source out of range");
  const std::uint32_t dl = decay_length(g.max_degree());

  Rng master(seed);
  std::vector<std::unique_ptr<FloodStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    stations.push_back(
        std::make_unique<FloodStation>(dl, master.split(v), autosleep));
  Message m;
  m.kind = MsgKind::kBcastData;
  m.origin = source;
  m.dest = kAllNodes;
  stations[source]->seed(m);

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : stations) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);

  RadioNetwork net(g);
  FaultSchedule fsch;
  if (faults.any()) {
    fsch = FaultSchedule(g, faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&fsch);
  }
  net.attach(std::move(ptrs));
  net.run(phases * dl);

  BgiOutcome out;
  out.slots = net.now();
  out.engine_polls = net.engine_stats().station_polls;
  out.informed.resize(n);
  out.informed_at.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.informed[v] = stations[v]->informed();
    out.informed_at[v] = stations[v]->informed_at();
    if (out.informed[v]) ++out.informed_count;
  }
  return out;
}

}  // namespace radiomc
