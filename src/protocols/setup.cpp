#include "protocols/setup.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "perf/profiler.h"
#include "radio/network.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc {

SetupSchedule setup_schedule(NodeId n, std::uint32_t decay_len,
                             const SetupTuning& tuning,
                             std::uint32_t attempt) {
  const std::uint64_t dl = decay_len;
  const std::uint64_t ln = ceil_log2(n < 2 ? 2 : n) + 2;
  const std::uint64_t boost = std::uint64_t{1} << std::min<std::uint32_t>(attempt, 20);

  SetupSchedule s;
  s.le = boost * tuning.leader_mult * ln * dl;
  s.bv = boost * tuning.verify_mult * (static_cast<std::uint64_t>(n) + 4) * dl;
  s.dfs1 = 2 * static_cast<SlotTime>(n) + 2;
  s.dfs2 = 2 * static_cast<SlotTime>(n) + 2;
  s.fv = s.bv;
  s.gl = boost * tuning.flood_mult * (static_cast<std::uint64_t>(n) + 4) * dl;
  return s;
}

namespace {

/// The per-node state machine of the whole setup phase; channel 0 carries
/// the epoch-specific protocol (election / announcements / floods / token),
/// channel 1 carries the always-on verification collection.
class SetupStation final : public Station {
 public:
  SetupStation(NodeId me, const Graph& g, SetupTuning tuning, Rng rng)
      : me_(me),
        n_(g.num_nodes()),
        decay_len_(decay_length(g.max_degree())),
        tuning_(tuning),
        rng_(rng),
        le_(me, make_leader_cfg(), rng_.split(rng_tags::kSetupLeader)),
        bfs_(me, make_bfs_cfg(), rng_.split(rng_tags::kSetupBfs)),
        coll_(me, make_coll_cfg(), rng_.split(rng_tags::kSetupVerifyCollection)),
        flood_g_(decay_len_, rng_.split(rng_tags::kSetupFloodG)),
        dfs1_(me, neighbor_vector(g, me)),
        dfs2_(me) {
    coll_.set_root_handler([this](SlotTime t, const Message& m) {
      if (m.kind != MsgKind::kSetupReport) return;
      if (m.seq == 0) {
        reporters_b_.insert(m.origin);
      } else if (m.seq == 1 && m.aux == 1) {
        reporters_f_.insert(m.origin);
        if (reporters_f_.size() == static_cast<std::size_t>(n_) - 1 &&
            verified_f_at_ == 0)
          verified_f_at_ = t;
      }
    });
    start_attempt();
  }

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    // Resync to the globally known schedule. A while-loop, not an equality
    // test: a station crashed across an attempt boundary (fault injection)
    // wakes up mid-schedule and must roll forward through every boundary
    // it slept through, or it would desynchronize forever.
    while (t >= attempt_start_ + sched_.attempt_length()) {
      attempt_start_ += sched_.attempt_length();
      ++attempt_;
      start_attempt();
    }
    const SlotTime r = t - attempt_start_;

    // Channel 1: the verification collection runs from the start of epoch
    // B to the end of the attempt.
    if (r >= b_start() && coll_bound_) tx[1] = coll_.poll(r - b_start());

    // Channel 0: the epoch-specific protocol.
    if (r < b_start()) {
      tx[0] = le_.poll(r);
    } else if (r < d_start()) {
      if (r == b_start() && le_.believes_leader()) become_root();
      tx[0] = bfs_.poll(r - b_start());
      maybe_join();
    } else if (r < e_start()) {
      if (r == d_start()) begin_dfs1();
      tx[0] = dfs1_.poll(r);
    } else if (r < f_start()) {
      if (r == e_start()) begin_dfs2();
      tx[0] = dfs2_.poll(r);
    } else if (r < g_start()) {
      if (r == f_start()) inject_final_report();
      // channel 0 idle; collection drains the reports on channel 1
    } else {
      if (r == g_start() && is_root_ && f_verified()) {
        Message ok;
        ok.kind = MsgKind::kBcastData;
        ok.origin = me_;
        ok.payload = 0x5e707ul;  // "setup ok"
        flood_g_.seed(ok);
      }
      tx[0] = flood_g_.poll(r - g_start());
    }
  }

  void on_receive(SlotTime t, ChannelId ch, const Message& m) override {
    const SlotTime r = t - attempt_start_;
    if (ch == 1) {
      if (r >= b_start()) coll_.deliver(r - b_start(), m);
      return;
    }
    if (r < b_start()) {
      le_.deliver(r, m);
    } else if (r < d_start()) {
      bfs_.deliver(r - b_start(), m);
      maybe_join();
    } else if (r < e_start()) {
      dfs1_.deliver(r, m);
    } else if (r < f_start()) {
      dfs2_.deliver(r, m);
    } else if (r >= g_start()) {
      flood_g_.deliver(r - g_start(), m);
    }
  }

  void on_slot_end(SlotTime t) override {
    const SlotTime r = t - attempt_start_;
    if (r < b_start()) {
      le_.tick(r);
    } else if (r < d_start()) {
      bfs_.tick(r - b_start());
    } else if (r >= g_start()) {
      flood_g_.tick(r - g_start());
    }
    if (r >= b_start() && coll_bound_) coll_.tick(r - b_start());
  }

  // Driver-side inspection.
  bool is_root() const noexcept { return is_root_; }
  bool f_verified() const noexcept {
    return is_root_ && self_consistent() &&
           reporters_f_.size() == static_cast<std::size_t>(n_) - 1;
  }
  bool done() const noexcept { return flood_g_.informed(); }
  std::uint32_t attempt() const noexcept { return attempt_; }
  SlotTime verified_f_at() const noexcept { return verified_f_at_; }

  std::uint32_t level() const noexcept { return bfs_.level(); }
  NodeId parent() const noexcept { return bfs_.parent(); }
  RoutingInfo routing() const {
    RoutingInfo r;
    r.parent = bfs_.parent();
    r.level = bfs_.level();
    r.number = dfs2_.number();
    r.max_desc = dfs2_.max_desc();
    r.children = dfs2_.children();
    r.child_number = dfs2_.child_number();
    r.child_max_desc = dfs2_.child_max_desc();
    return r;
  }

 private:
  static std::vector<NodeId> neighbor_vector(const Graph& g, NodeId v) {
    auto nb = g.neighbors(v);
    return {nb.begin(), nb.end()};
  }
  LeaderConfig make_leader_cfg() const {
    LeaderConfig c;
    c.decay_len = decay_len_;
    c.random_id_bits = tuning_.random_id_bits;
    return c;
  }
  BfsBuildConfig make_bfs_cfg() const {
    BfsBuildConfig c;
    c.decay_len = decay_len_;
    c.announce_phases = 2 * ceil_log2(n_ < 2 ? 2 : n_) + 2;
    return c;
  }
  CollectionConfig make_coll_cfg() const {
    CollectionConfig c;
    c.slots.decay_len = decay_len_;
    return c;
  }

  SlotTime b_start() const noexcept { return sched_.le; }
  SlotTime d_start() const noexcept { return b_start() + sched_.bv; }
  SlotTime e_start() const noexcept { return d_start() + sched_.dfs1; }
  SlotTime f_start() const noexcept { return e_start() + sched_.dfs2; }
  SlotTime g_start() const noexcept { return f_start() + sched_.fv; }

  void start_attempt() {
    sched_ = setup_schedule(n_, decay_len_, tuning_, attempt_);
    le_.reset();
    bfs_.reset();
    dfs1_.reset();
    dfs2_.reset();
    flood_g_.reset(rng_.split(rng_tags::kSetupFloodRetryBase + attempt_));
    coll_.reset(rng_.split(rng_tags::kSetupCollRetryBase + attempt_));
    coll_bound_ = false;
    is_root_ = false;
    reported_join_ = false;
    reported_final_ = false;
    reporters_b_.clear();
    reporters_f_.clear();
    verified_f_at_ = 0;
  }

  void become_root() {
    is_root_ = true;
    bfs_.make_root(me_);
    coll_.set_local(kNoNode, 0, /*is_root=*/true);
    coll_bound_ = true;
  }

  /// Binds the collection half and emits the §2 join report as soon as the
  /// BFS construction assigned this node a position.
  void maybe_join() {
    if (is_root_ || coll_bound_ || !bfs_.joined()) return;
    coll_.set_local(bfs_.parent(), bfs_.level(), /*is_root=*/false);
    coll_bound_ = true;
    Message m;
    m.kind = MsgKind::kSetupReport;
    m.origin = me_;
    m.seq = 0;
    m.aux = bfs_.level();
    coll_.inject(m);
    reported_join_ = true;
  }

  void begin_dfs1() {
    dfs1_.set_local(bfs_.level(), bfs_.parent(),
                    /*initiator=*/is_root_ && b_verified());
  }

  void begin_dfs2() {
    dfs2_.set_local(bfs_.parent(), dfs1_.bfs_children(),
                    /*is_root=*/is_root_ && b_verified());
  }

  bool b_verified() const noexcept {
    return reporters_b_.size() == static_cast<std::size_t>(n_) - 1;
  }

  bool self_consistent() const noexcept {
    return bfs_.joined() && bfs_.consistent() && dfs1_.visited() &&
           dfs1_.bfs_levels_consistent() && dfs2_.numbered();
  }

  void inject_final_report() {
    if (is_root_ || !coll_bound_ || reported_final_) return;
    Message m;
    m.kind = MsgKind::kSetupReport;
    m.origin = me_;
    m.seq = 1;
    m.aux = self_consistent() ? 1 : 0;
    coll_.inject(m);
    reported_final_ = true;
  }

  NodeId me_;
  NodeId n_;
  std::uint32_t decay_len_;
  SetupTuning tuning_;
  Rng rng_;

  std::uint32_t attempt_ = 0;
  SlotTime attempt_start_ = 0;
  SetupSchedule sched_;

  MaxFloodStation le_;
  BfsBuildStation bfs_;
  CollectionStation coll_;
  FloodStation flood_g_;
  GraphDfsStation dfs1_;
  TreeDfsStation dfs2_;

  bool coll_bound_ = false;
  bool is_root_ = false;
  bool reported_join_ = false;
  bool reported_final_ = false;
  std::set<NodeId> reporters_b_;
  std::set<NodeId> reporters_f_;
  SlotTime verified_f_at_ = 0;
};

}  // namespace

SetupOutcome run_setup(const Graph& g, std::uint64_t seed, SetupTuning tuning,
                       std::uint32_t max_attempts) {
  const NodeId n = g.num_nodes();
  require(n >= 1, "run_setup: empty graph");
  const std::uint32_t dl = decay_length(g.max_degree());

  Rng master(seed);
  std::vector<std::unique_ptr<SetupStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    stations.push_back(
        std::make_unique<SetupStation>(v, g, tuning, master.split(v)));
  std::vector<Station*> ptrs;
  for (auto& s : stations) ptrs.push_back(s.get());

  RadioNetwork::Config ncfg;
  ncfg.num_channels = 2;
  RadioNetwork net(g, ncfg);
  if (tuning.trace != nullptr) net.set_trace(tuning.trace);
  if (tuning.slot_hook != nullptr) net.set_slot_hook(tuning.slot_hook);
  FaultSchedule faults;
  if (tuning.faults.any()) {
    faults =
        FaultSchedule(g, tuning.faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&faults);
  }
  net.attach(std::move(ptrs));

  // Epoch boundaries are globally known (a pure function of n, Delta and
  // the attempt), so both the telemetry timeline and the perf span tree
  // can be laid down by the driver with no cooperation from the stations.
  auto epoch_table = [](const SetupSchedule& sched) {
    return std::array<std::pair<const char*, SlotTime>, 6>{
        {{"leader_election", sched.le},
         {"bfs_verify", sched.bv},
         {"dfs_graph", sched.dfs1},
         {"dfs_tree", sched.dfs2},
         {"final_verify", sched.fv},
         {"completion_flood", sched.gl}}};
  };
  auto record_attempt_spans = [&](std::uint32_t attempt, SlotTime base,
                                  const SetupSchedule& sched) {
    if (tuning.telemetry == nullptr) return;
    telemetry::PhaseTimeline& tl = tuning.telemetry->timeline;
    SlotTime t = base;
    for (const auto& [name, len] : epoch_table(sched)) {
      tl.record("setup", name, t, t + len,
                {{"attempt", static_cast<std::int64_t>(attempt)}});
      t += len;
    }
  };
  auto publish_totals = [&](const SetupOutcome& o) {
    if (tuning.profiler != nullptr)
      tuning.profiler->count("setup.slots", o.slots);
    if (tuning.telemetry == nullptr) return;
    telemetry::MetricsRegistry& reg = tuning.telemetry->metrics;
    reg.counter("setup.attempts").inc(o.attempts);
    reg.counter("setup.verification_restarts")
        .inc(o.attempts > 0 ? o.attempts - 1 : 0);
    reg.counter(o.ok ? "setup.completed" : "setup.failed").inc();
    telemetry::publish_net_metrics(net.metrics(), reg, "setup");
    if (faults.enabled())
      telemetry::publish_fault_metrics(faults, net.metrics(), reg, "setup");
  };

  SetupOutcome out;
  SlotTime attempt_start = 0;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const SetupSchedule sched = setup_schedule(n, dl, tuning, attempt);
    const SlotTime attempt_end = attempt_start + sched.attempt_length();
    {
      // One perf span per attempt, one child per epoch; stepping epoch by
      // epoch to the same fixed boundaries leaves the slot stream exactly
      // as the flat while-loop produced it.
      perf::PerfSpan attempt_span(tuning.profiler, "setup.attempt");
      SlotTime epoch_end = attempt_start;
      for (const auto& [name, len] : epoch_table(sched)) {
        perf::PerfSpan epoch_span(tuning.profiler,
                                  std::string("setup.") + name);
        epoch_end += len;
        while (net.now() < epoch_end) net.step();
      }
      while (net.now() < attempt_end) net.step();  // defensive; no-op
    }
    if (tuning.profiler != nullptr) tuning.profiler->count("setup.attempts");
    record_attempt_spans(attempt, attempt_start, sched);
    attempt_start = attempt_end;
    out.attempts = attempt + 1;

    // Success iff one station verified as root and everyone heard the
    // completion flood (in a deployment the shortfall case simply rolls
    // into the next attempt, exactly as it does here).
    const SetupStation* root = nullptr;
    bool all_done = true;
    for (auto& s : stations) {
      if (s->f_verified()) root = s.get();
      all_done = all_done && (s->done() || s->f_verified());
    }
    if (root == nullptr || !all_done) continue;

    out.ok = true;
    out.slots = net.now();
    // verified_f_at is relative to epoch B of the successful attempt.
    out.work_slots = (attempt_end - sched.attempt_length()) + sched.le +
                     root->verified_f_at();
    std::vector<NodeId> parents(n);
    for (NodeId v = 0; v < n; ++v) parents[v] = stations[v]->parent();
    NodeId leader = kNoNode;
    for (NodeId v = 0; v < n; ++v)
      if (parents[v] == kNoNode) leader = v;
    out.leader = leader;
    out.tree = BfsTree::from_parents(leader, std::move(parents));
    out.labels.number.resize(n);
    out.labels.max_desc.resize(n);
    out.routing.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      out.routing[v] = stations[v]->routing();
      out.labels.number[v] = out.routing[v].number;
      out.labels.max_desc[v] = out.routing[v].max_desc;
    }
    publish_totals(out);
    return out;
  }
  out.slots = net.now();
  out.status = RunStatus::kDegraded;
  publish_totals(out);
  return out;
}

UnknownNOutcome run_setup_unknown_n(const Graph& g, NodeId n_upper,
                                    double eps, std::uint64_t seed) {
  require(n_upper >= g.num_nodes(),
          "run_setup_unknown_n: N must upper-bound n");
  require(eps > 0.0 && eps < 1.0, "run_setup_unknown_n: eps in (0,1)");
  UnknownNOutcome out;
  Rng rng(seed);

  // log2(N / eps), the per-stage repetition count of Remark 1's budgets.
  const double lg = std::log2(static_cast<double>(n_upper) / eps);
  const auto reps = static_cast<std::uint32_t>(lg) + 2;

  // Leader election with an N-derived budget (a deployment cannot adapt
  // to the unknown D, so the budget covers D <= N).
  const std::uint64_t le_phases = 4ull * (n_upper + reps);
  const LeaderOutcome le = run_leader_election(g, le_phases, rng.next());
  out.slots += le.slots;
  // The max id elects itself; with distinct ids this is unique, so proceed
  // with it as the BFS root (under Remark 1 the ids are still distinct —
  // only n is unknown).
  const NodeId root = static_cast<NodeId>(
      *std::max_element(le.best.begin(), le.best.end()));
  if (root >= g.num_nodes()) return out;

  BfsBuildConfig bcfg;
  bcfg.decay_len = decay_length(g.max_degree());
  bcfg.announce_phases = reps;
  const BfsBuildOutcome bfs =
      run_bfs_build(g, root, bcfg, rng.next(), n_upper + 1);
  out.slots += bfs.slots;
  if (!bfs.all_joined || !bfs.is_true_bfs) return out;
  out.tree_ok = true;
  out.tree = bfs.tree;

  // Remark 1's caveat: the descendant information still costs O(n ...)
  // time — the token traversals below are what that refers to (they are
  // budgeted by N in a deployment; the tokens themselves stop after
  // 2(n-1) hops, so we account the larger budget).
  const PreparationResult prep = run_preparation(g, bfs.tree);
  out.slots += 2ull * (2ull * n_upper + 2);
  if (!prep.ok) return out;
  out.prep_ok = true;
  out.labels = prep.labels;
  out.routing = prep.routing;
  return out;
}

}  // namespace radiomc
