#pragma once

// The preparation step of §5.1: two collision-free token-DFS traversals.
//
// Traversal 1 (GraphDfsStation) walks a DFS of the *graph*: only the token
// holder transmits, so every transmission is heard by all of the sender's
// neighbors; the token is passed to the largest neighbor not yet in the
// DFS tree, or back to the DFS parent. Each token message carries the
// sender's id, BFS-parent id and BFS level, so after the traversal every
// node knows, for each neighbor, whether it is a BFS child — and can check
// its own BFS level against its neighborhood (the always-succeed
// verification hook of §2; levels produced by the staged construction can
// only be too large, and a too-large level shows up as a neighbor at level
// <= own-2 or as own != 1 + min neighbor level).
//
// Traversal 2 (TreeDfsStation) walks the *BFS tree* and assigns preorder
// DFS numbers; the token carries the running counter. Afterwards each node
// knows its own number, the number and maximum-descendant number of each
// BFS child — O(deg(v) log n) bits, exactly the §5.1 memory bound — which
// is everything point-to-point routing needs.
//
// Both traversals take 2(n-1) slots (one token hop per slot) and are
// deterministic: tests assert the engine observed zero collisions.

#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/tree.h"
#include "radio/station.h"

namespace radiomc {

/// Local routing state of one node after preparation (§5.1): everything a
/// point-to-point station is allowed to know.
struct RoutingInfo {
  NodeId parent = kNoNode;
  std::uint32_t level = 0;
  std::uint32_t number = 0;    ///< own DFS address
  std::uint32_t max_desc = 0;  ///< max DFS address in own subtree
  std::vector<NodeId> children;
  std::vector<std::uint32_t> child_number;
  std::vector<std::uint32_t> child_max_desc;

  /// True iff `addr` lies in this node's subtree.
  bool subtree_contains(std::uint32_t addr) const noexcept {
    return number <= addr && addr <= max_desc;
  }
  /// The child whose subtree contains `addr`, or kNoNode.
  NodeId child_towards(std::uint32_t addr) const noexcept {
    for (std::size_t i = 0; i < children.size(); ++i)
      if (child_number[i] <= addr && addr <= child_max_desc[i])
        return children[i];
    return kNoNode;
  }
};

class GraphDfsStation final : public SubStation {
 public:
  /// `neighbors` is the node's local neighborhood (known per the model).
  GraphDfsStation(NodeId me, std::vector<NodeId> neighbors);

  /// Supplies the node's BFS position (from the construction step) and
  /// whether it initiates the traversal (the root does).
  void set_local(std::uint32_t level, NodeId bfs_parent, bool initiator);
  void reset();

  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;

  bool visited() const noexcept { return visited_; }
  bool done() const noexcept { return done_; }
  /// Neighbors that announced this node as their BFS parent, ascending.
  std::vector<NodeId> bfs_children() const;
  /// §2 verification: known level of every neighbor is within +-1 of ours
  /// and (non-root) our level is 1 + min neighbor level; all neighbors
  /// must have been heard.
  bool bfs_levels_consistent() const;

 private:
  std::size_t neighbor_index(NodeId u) const;

  NodeId me_;
  std::vector<NodeId> neighbors_;  // sorted ascending
  std::uint32_t level_ = 0;
  NodeId bfs_parent_ = kNoNode;
  bool initiator_ = false;

  bool have_token_ = false;
  bool visited_ = false;
  bool done_ = false;
  NodeId dfs_parent_ = kNoNode;
  std::vector<bool> in_tree_;                   // per neighbor
  std::vector<bool> heard_;                     // per neighbor
  std::vector<std::uint32_t> nbr_level_;        // per neighbor
  std::vector<NodeId> nbr_bfs_parent_;          // per neighbor
};

class TreeDfsStation final : public SubStation {
 public:
  explicit TreeDfsStation(NodeId me);

  /// `children` must be the node's BFS children in ascending order (the
  /// order learned from traversal 1).
  void set_local(NodeId bfs_parent, std::vector<NodeId> children,
                 bool is_root);
  void reset();

  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;

  bool numbered() const noexcept { return numbered_; }
  bool done() const noexcept { return done_; }
  std::uint32_t number() const noexcept { return number_; }
  std::uint32_t max_desc() const noexcept { return max_desc_; }
  const std::vector<NodeId>& children() const noexcept { return children_; }
  const std::vector<std::uint32_t>& child_number() const noexcept {
    return child_number_;
  }
  const std::vector<std::uint32_t>& child_max_desc() const noexcept {
    return child_max_desc_;
  }

 private:
  NodeId me_;
  NodeId bfs_parent_ = kNoNode;
  bool is_root_ = false;
  std::vector<NodeId> children_;
  std::vector<std::uint32_t> child_number_;
  std::vector<std::uint32_t> child_max_desc_;

  bool have_token_ = false;
  bool numbered_ = false;
  bool done_ = false;
  std::uint32_t number_ = 0;
  std::uint32_t max_desc_ = 0;
  std::uint32_t counter_ = 0;
  std::size_t next_child_ = 0;
};

/// Standalone preparation driver: runs both traversals on fresh networks
/// (given an already-built BFS tree) and assembles the per-node routing
/// tables. `ok` is true iff both traversals completed and the BFS levels
/// passed the neighborhood consistency check.
struct PreparationResult {
  bool ok = false;
  SlotTime slots = 0;
  std::uint64_t collisions = 0;  ///< must be 0: the traversals are collision-free
  DfsLabels labels;
  std::vector<RoutingInfo> routing;
};
PreparationResult run_preparation(const Graph& g, const BfsTree& tree);

}  // namespace radiomc
