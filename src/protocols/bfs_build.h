#pragma once

// Distributed BFS-tree construction (§2, after [3]).
//
// Time is divided into *stages* of `announce_phases` phases each. During
// stage s, exactly the nodes at level s run one Decay invocation per phase
// announcing (level = s, root id). An uninformed node that hears an
// announcement joins level s+1 with the announcing node as its BFS parent.
// With announce_phases = O(log(n/eps)) every reachable node joins the
// correct level with probability 1 - eps; the always-succeed wrapper of §2
// (verification by collection + restart, implemented in setup.cpp) removes
// the failure probability entirely, leaving only the running time random.
//
// A joined node also performs the consistency watch used by the setup
// verification: hearing an announcement of level s with s + 1 < own level
// proves the node's own level is too large, and the node reports itself
// inconsistent (levels can never be too small; see setup.cpp).

#include <cstdint>
#include <optional>

#include "protocols/decay.h"
#include "protocols/tree.h"
#include "radio/station.h"
#include "support/rng.h"

namespace radiomc {

inline constexpr std::uint32_t kNoLevel = static_cast<std::uint32_t>(-1);

struct BfsBuildConfig {
  std::uint32_t decay_len = 2;
  std::uint32_t announce_phases = 8;  ///< phases per stage, O(log(n/eps))
};

class BfsBuildStation final : public SubStation {
 public:
  BfsBuildStation(NodeId me, BfsBuildConfig cfg, Rng rng);

  /// Makes this node a root (level 0) announcing `root_id` (normally its
  /// own id; setup passes the elected leader's id).
  void make_root(NodeId root_id);
  /// Restores the initial (unjoined) state.
  void reset();

  std::optional<Message> poll(SlotTime t) override;
  void deliver(SlotTime t, const Message& m) override;
  void tick(SlotTime t) override;

  bool joined() const noexcept { return level_ != kNoLevel; }
  std::uint32_t level() const noexcept { return level_; }
  NodeId parent() const noexcept { return parent_; }
  NodeId root_id() const noexcept { return root_id_; }
  bool consistent() const noexcept { return consistent_; }
  /// Station-local slot at which the node joined (0 for roots).
  SlotTime joined_at() const noexcept { return joined_at_; }

 private:
  NodeId me_;
  BfsBuildConfig cfg_;
  Rng rng_;
  std::uint32_t level_ = kNoLevel;
  NodeId parent_ = kNoNode;
  NodeId root_id_ = kNoNode;
  bool consistent_ = true;
  SlotTime joined_at_ = 0;
  DecayProcess decay_;
  std::uint64_t attempt_phase_ = static_cast<std::uint64_t>(-1);
  bool just_transmitted_ = false;

  std::uint64_t stage_of(SlotTime t) const noexcept {
    return t / (static_cast<std::uint64_t>(cfg_.decay_len) *
                cfg_.announce_phases);
  }
};

/// Standalone driver: builds a BFS tree from `root`, running stages until
/// one passes with no join (levels are contiguous, so an empty stage means
/// construction finished) or `max_stages` elapses. Returns the tree when
/// every node joined a correct BFS position, as most seeds do with
/// announce_phases = 2 ceil(log2 n) + 2; the setup wrapper handles retries.
struct BfsBuildOutcome {
  SlotTime slots = 0;
  bool all_joined = false;
  bool is_true_bfs = false;  ///< ground-truth check (test instrumentation)
  BfsTree tree;              ///< valid iff all_joined
};
BfsBuildOutcome run_bfs_build(const Graph& g, NodeId root,
                              const BfsBuildConfig& cfg, std::uint64_t seed,
                              std::uint64_t max_stages = 0 /* 0 = n+1 */);

}  // namespace radiomc
