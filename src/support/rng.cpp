#include "support/rng.h"

namespace radiomc {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Xoshiro must not start from the all-zero state; splitmix64 of any seed
  // never yields four zero words in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's method: multiply into a 128-bit product and reject the small
  // biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split(std::uint64_t tag) noexcept {
  std::uint64_t sm = next() ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(sm));
}

}  // namespace radiomc
