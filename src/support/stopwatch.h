#pragma once

// The one sanctioned clock in the simulation tree.
//
// Simulated time is SlotTime and must stay a pure function of the run
// seed; wall-clock reads anywhere near model code are how irreproducible
// runs are born, so the `no-wall-clock` lint rule bans clock identifiers
// across src/ — except here and in src/perf/, the measurement layer built
// on top of this header. Everything perf-related (profiler spans, run
// timers, snapshot cadence stamps) funnels through these two functions so
// there is exactly one place to audit: time flows *out* into reports,
// never back into an Rng or a transmit decision (the `perf-purity` rules
// enforce that direction statically).

#include <chrono>
#include <cstdint>
#include <ctime>

namespace radiomc {

/// Monotonic time in nanoseconds from an arbitrary epoch. Comparable only
/// against other values from this process.
inline std::uint64_t monotonic_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process CPU time in nanoseconds (all threads). Coarse (CLOCKS_PER_SEC
/// granularity) but portable; used for the "CPU close to jobs x wall"
/// pool-utilization signature in run records.
inline std::uint64_t process_cpu_ns() noexcept {
  return static_cast<std::uint64_t>(
      1e9 * static_cast<double>(std::clock()) /
      static_cast<double>(CLOCKS_PER_SEC));
}

/// Free-running monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_ns_(monotonic_now_ns()) {}

  void restart() noexcept { start_ns_ = monotonic_now_ns(); }

  std::uint64_t elapsed_ns() const noexcept {
    return monotonic_now_ns() - start_ns_;
  }
  double elapsed_ms() const noexcept {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

 private:
  std::uint64_t start_ns_;
};

/// RAII timer accumulating its lifetime into a caller-owned counter:
///   { ScopedTimer t(&total_ns); work(); }   // total_ns += elapsed
/// A null accumulator disables the timer entirely — no clock read — which
/// is what makes profiling hooks free when observability is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t* accumulate_into_ns) noexcept
      : acc_(accumulate_into_ns),
        start_ns_(acc_ != nullptr ? monotonic_now_ns() : 0) {}
  ~ScopedTimer() {
    if (acc_ != nullptr) *acc_ += monotonic_now_ns() - start_ns_;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint64_t* acc_;
  std::uint64_t start_ns_;
};

}  // namespace radiomc
