#pragma once

// Central registry of named RNG split tags.
//
// Every deterministic stream in the simulator is derived from a master
// `Rng` by `master.split(tag)`; two identical (parent, tag) pairs yield
// byte-identical child streams, so the *set of tags in use* is an
// invariant worth auditing. `radiomc_lint --rule rng-stream-audit` checks
// it: bare literal tags in src/ are findings, duplicate (parent, tag)
// pairs are findings, and two registry constants sharing a value is a
// finding. Naming a tag here is how a stream becomes part of the audit.
//
// IMPORTANT: these values are load-bearing. They feed seed derivation, so
// changing any value changes every downstream trial byte-for-byte and
// invalidates the soak / health goldens. Add constants; never renumber.
//
// Reserved ranges (by convention, so families cannot collide):
//   0 .. 2^32-1        per-entity tags computed from ids (station v,
//                      2*v / 2*v+1 pairs, trial indices, retry bases) —
//                      keep registry scalars below 0x100 or above 0xFFFF
//                      only when the surrounding code cannot also split
//                      on a station id from the same parent
//   0x....  16-bit     protocol/driver stream scalars (0x5E21, 0xA221, ...)
//   0xFA17____         fault event-kind streams (fault_schedule.cpp)
//   0xFA5EED__         fault master-seed derivation (fault_plan.h contract)

#include <cstdint>

namespace radiomc::rng_tags {

// --- protocol driver streams (split from each run's master Rng) --------

/// Setup pipeline sub-protocol streams (protocols/setup.cpp ctor).
inline constexpr std::uint64_t kSetupLeader = 1;
inline constexpr std::uint64_t kSetupBfs = 2;
inline constexpr std::uint64_t kSetupVerifyCollection = 3;
inline constexpr std::uint64_t kSetupFloodG = 4;
/// Retry streams: the attempt index is added to the base, so attempts get
/// fresh, ordered streams (bases spaced so the families cannot overlap
/// for any plausible attempt count).
inline constexpr std::uint64_t kSetupFloodRetryBase = 100;
inline constexpr std::uint64_t kSetupCollRetryBase = 200;

/// Service-mode driver streams (service/service.cpp).
inline constexpr std::uint64_t kServiceArrival = 0x5E21;
inline constexpr std::uint64_t kServicePlacement = 0x5E22;

/// Steady-state collection arrival stream (protocols/steady_state.cpp).
inline constexpr std::uint64_t kSteadyArrival = 0xA221;

/// Tandem-queue model drivers (queueing/models.cpp §2/§3/§4 figures).
inline constexpr std::uint64_t kModel2Tandem = 0x7a4d;
inline constexpr std::uint64_t kModel3Tandem = 0x30d3;
inline constexpr std::uint64_t kModel4Tandem = 0x40d4;

// --- fault subsystem ---------------------------------------------------

/// Fault master-stream tag: `master.split(kFaultStream).next()` seeds a
/// FaultSchedule. High bits keep it clear of the small per-station tags
/// protocols draw from the same master (see faults/fault_plan.h).
inline constexpr std::uint64_t kFaultStream = 0xFA5EED00;

/// Per-event-kind fault streams, split from the schedule's root
/// (faults/fault_schedule.cpp).
inline constexpr std::uint64_t kFaultCrash = 0xFA170001;
inline constexpr std::uint64_t kFaultRecover = 0xFA170002;
inline constexpr std::uint64_t kFaultLinkDown = 0xFA170003;
inline constexpr std::uint64_t kFaultLinkUp = 0xFA170004;
inline constexpr std::uint64_t kFaultJam = 0xFA170005;
inline constexpr std::uint64_t kFaultDrop = 0xFA170006;

// --- engine ------------------------------------------------------------

/// Historical fixed seed for RadioNetwork's capture fallback stream when
/// the config supplies no capture_stream (radio/network.cpp). A seed, not
/// a split tag — named here so the fixed-literal-seed audit covers it.
inline constexpr std::uint64_t kCaptureFallbackSeed = 0xCA97;

}  // namespace radiomc::rng_tags
