#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace radiomc {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::stderr_mean() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::ci_halfwidth(double z) const noexcept {
  return z * stderr_mean();
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  buckets_[value] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [value, weight] : other.buckets_) add(value, weight);
}

std::uint64_t Histogram::count(std::int64_t value) const {
  auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

double Histogram::pmf(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [v, c] : buckets_)
    acc += static_cast<double>(v) * static_cast<double>(c);
  return acc / static_cast<double>(total_);
}

std::int64_t Histogram::min() const {
  if (buckets_.empty()) throw std::out_of_range("Histogram::min on empty");
  return buckets_.begin()->first;
}

std::int64_t Histogram::max() const {
  if (buckets_.empty()) throw std::out_of_range("Histogram::max on empty");
  return buckets_.rbegin()->first;
}

double ProportionEstimate::point() const noexcept {
  if (trials == 0) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(trials);
}

namespace {
double wilson_center(double p, double n, double z) noexcept {
  return (p + z * z / (2 * n)) / (1 + z * z / n);
}
double wilson_margin(double p, double n, double z) noexcept {
  return (z / (1 + z * z / n)) * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n));
}
}  // namespace

double ProportionEstimate::wilson_lower(double z) const noexcept {
  if (trials == 0) return 0.0;
  const double p = point();
  const double n = static_cast<double>(trials);
  return std::max(0.0, wilson_center(p, n, z) - wilson_margin(p, n, z));
}

double ProportionEstimate::wilson_upper(double z) const noexcept {
  if (trials == 0) return 1.0;
  const double p = point();
  const double n = static_cast<double>(trials);
  return std::min(1.0, wilson_center(p, n, z) + wilson_margin(p, n, z));
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("fit_linear: need >= 2 matching points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (std::abs(denom) < std::numeric_limits<double>::epsilon()) {
    f.intercept = sy / n;
    return f;
  }
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace radiomc
