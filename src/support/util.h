#pragma once

// Small arithmetic helpers shared across the library.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace radiomc {

/// ceil(log2(x)) for x >= 1; ceil_log2(1) == 0.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  std::uint32_t bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

static_assert(ceil_log2(1) == 0);
static_assert(ceil_log2(2) == 1);
static_assert(ceil_log2(3) == 2);
static_assert(ceil_log2(1024) == 10);
static_assert(ceil_log2(1025) == 11);

/// The Decay protocol length for a degree bound `max_degree`:
/// 2 * ceil(log2 Delta), at least 2 so that Decay is well defined even on
/// degree-1 neighborhoods.
constexpr std::uint32_t decay_length(std::uint32_t max_degree) noexcept {
  const std::uint32_t l = 2 * ceil_log2(max_degree < 2 ? 2 : max_degree);
  return l < 2 ? 2 : l;
}

/// Throws std::invalid_argument with `msg` when `cond` is false. Used to
/// validate public API preconditions (Core Guidelines I.6).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace radiomc
