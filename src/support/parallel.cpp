#include "support/parallel.h"

#include <cstdlib>
#include <string>

namespace radiomc {

unsigned hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned jobs_from_env(unsigned fallback) noexcept {
  const char* env = std::getenv("RADIOMC_JOBS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return v == 0 ? hardware_jobs() : static_cast<unsigned>(v);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads < 1 ? 1 : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_.wait(lock,
              [this] { return queue_head_ == queue_.size() && active_ == 0; });
  // Reclaim the drained prefix so a reused pool doesn't grow unboundedly.
  queue_.clear();
  queue_head_ = 0;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stop_ || queue_head_ < queue_.size(); });
    if (queue_head_ < queue_.size()) {
      std::function<void()> task = std::move(queue_[queue_head_]);
      ++queue_head_;
      ++active_;
      lock.unlock();
      task();
      lock.lock();
      --active_;
      if (queue_head_ == queue_.size() && active_ == 0)
        drain_.notify_all();
    } else if (stop_) {
      return;
    }
  }
}

}  // namespace radiomc
