#pragma once

// Deterministic parallel trial running.
//
// Every experiment in this repo is a loop of independent Monte Carlo
// trials, and every trial's randomness comes from one root `Rng`. This
// header shards such loops across a fixed-size thread pool while keeping
// the output *bit-identical* to the serial run:
//
//   * per-trial generators are derived on the calling thread, in trial
//     order, via `root.split(trial)` — so the streams (and the state the
//     root is left in) never depend on the job count or the schedule;
//   * each trial writes only its own pre-allocated result slot;
//   * callers merge results in trial order after the join.
//
// `run_trials(n, jobs, root, fn)` packages the whole contract; `jobs <= 1`
// degenerates to the plain loop (same code path, zero threads), which is
// what makes "`--jobs 8` is byte-identical to `--jobs 1`" testable.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/rng.h"
#include "support/stopwatch.h"

namespace radiomc {

/// std::thread::hardware_concurrency with a floor of 1.
unsigned hardware_jobs() noexcept;

/// Default job count when a driver got no explicit --jobs: the
/// RADIOMC_JOBS environment variable ("0" means all hardware threads),
/// else `fallback` (serial by default, so plain runs stay plain).
unsigned jobs_from_env(unsigned fallback = 1) noexcept;

/// Fixed-size pool of worker threads draining one FIFO task queue.
/// Tasks must not throw (wrap trial bodies that can; `run_indexed` does).
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait for tasks / stop
  std::condition_variable drain_;  // wait_idle waits for quiescence
  std::vector<std::function<void()>> queue_;
  std::size_t queue_head_ = 0;
  unsigned active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i = 0..n-1 on up to `jobs` threads and returns the
/// results in index order. The result type must be default-constructible
/// and movable. Work is claimed from an atomic counter, so threads load-
/// balance; determinism comes from each index owning its own result slot.
/// The first exception thrown by any trial is rethrown on the caller.
template <typename Fn>
auto run_indexed(std::uint64_t n, unsigned jobs, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::uint64_t{}))>> {
  using R = std::decay_t<decltype(fn(std::uint64_t{}))>;
  std::vector<R> out(n);
  if (n == 0) return out;
  const std::uint64_t cap = jobs < 1 ? 1 : jobs;
  const unsigned workers =
      static_cast<unsigned>(cap < n ? cap : n);
  if (workers <= 1) {
    for (std::uint64_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  std::atomic<std::uint64_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr err;
  auto drain = [&]() {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        out[i] = fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mutex);
        if (!err) err = std::current_exception();
        return;
      }
    }
  };
  {
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) pool.submit(drain);
    pool.wait_idle();
  }
  if (err) std::rethrow_exception(err);
  return out;
}

/// The deterministic trial runner. Runs `fn(trial, rng)` for
/// trial = 0..n-1, where each trial's generator is `root.split(trial)` —
/// derived serially on the calling thread in trial order — and returns
/// the results in trial order. Output (and the final state of `root`) is
/// a function of the root seed and `n` only: independent of `jobs` and
/// of how the OS schedules the workers.
template <typename Fn>
auto run_trials(std::uint64_t n, unsigned jobs, Rng& root, Fn&& fn)
    -> std::vector<
        std::decay_t<decltype(fn(std::uint64_t{}, std::declval<Rng&>()))>> {
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rngs.push_back(root.split(i));
  return run_indexed(n, jobs,
                     [&](std::uint64_t i) { return fn(i, rngs[i]); });
}

/// Wall-clock + process-CPU stopwatch for run records: CPU time close to
/// `jobs ×` wall time is the signature of a well-fed pool. Built on the
/// sanctioned clock in support/stopwatch.h so this header never touches
/// a clock identifier itself (no-wall-clock lint rule).
class RunTimer {
 public:
  RunTimer() : wall0_ns_(monotonic_now_ns()), cpu0_ns_(process_cpu_ns()) {}

  double wall_ms() const {
    return static_cast<double>(monotonic_now_ns() - wall0_ns_) / 1e6;
  }
  double cpu_ms() const {
    return static_cast<double>(process_cpu_ns() - cpu0_ns_) / 1e6;
  }

 private:
  std::uint64_t wall0_ns_;
  std::uint64_t cpu0_ns_;
};

}  // namespace radiomc
