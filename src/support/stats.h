#pragma once

// Online statistics, histograms and simple confidence intervals used by the
// experiment harness and the statistical tests.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace radiomc {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean (0 for fewer than two samples).
  double stderr_mean() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

  /// Half-width of an approximate normal confidence interval on the mean.
  /// `z` defaults to 2.576 (~99%); tests use generous z to stay stable.
  double ci_halfwidth(double z = 2.576) const noexcept;

  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact integer histogram over small discrete supports (queue lengths,
/// counts of delivered messages per slot, ...).
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  /// Adds every bucket of `other`; exact (integer weights), so merging
  /// per-trial histograms in any order equals one shared histogram.
  void merge(const Histogram& other);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count(std::int64_t value) const;
  /// Empirical probability of `value`.
  double pmf(std::int64_t value) const;
  /// Empirical mean.
  double mean() const;
  std::int64_t min() const;
  std::int64_t max() const;
  const std::map<std::int64_t, std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Estimated Bernoulli success probability with a Wilson score interval,
/// which behaves well for probabilities near 0 or 1.
struct ProportionEstimate {
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;

  double point() const noexcept;
  /// Wilson lower/upper bounds at normal quantile z.
  double wilson_lower(double z = 2.576) const noexcept;
  double wilson_upper(double z = 2.576) const noexcept;
};

/// Ordinary least squares fit y = a + b*x; used by benches that check
/// linear scaling in k (e.g. Theorem 4.4's (k + D) shape).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Convenience: format a double with fixed precision (for bench tables).
std::string fmt(double v, int precision = 3);

}  // namespace radiomc
