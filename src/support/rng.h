#pragma once

// Deterministic pseudo-random number generation for reproducible
// simulation runs.
//
// Every protocol run in this library is parameterized by a 64-bit seed so
// that experiments and statistical tests are exactly reproducible. We use
// SplitMix64 for seeding/stream-splitting and Xoshiro256** as the main
// generator (small state, excellent statistical quality, very fast).
//
// `Rng::split(tag)` derives an independent child stream, which is how each
// simulated station gets its own private coin-flip source without any
// cross-station coupling.

#include <array>
#include <cstdint>

namespace radiomc {

/// SplitMix64 step: mixes a 64-bit state into a well-distributed output.
/// Used for seeding and for deriving independent streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Xoshiro256** pseudo-random generator with convenience sampling helpers.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can also be
/// plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Fair coin flip (probability exactly 1/2), as used by Decay.
  bool coin() noexcept { return (next() >> 63) != 0; }

  /// Derives an independent child generator. Streams derived with distinct
  /// tags (or from distinct parents) are statistically independent.
  Rng split(std::uint64_t tag) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace radiomc
