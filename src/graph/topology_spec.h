#pragma once

// Textual topology specifications, for the CLI tool and scripts:
//
//   path:N            cycle:N          complete:N        star:N
//   grid:RxC          torus:RxC        hypercube:D       tree:N:R
//   random-tree:N     caterpillar:S:L  barbell:C:B
//   gnp:N:P           udg:N[:RADIUS]
//
// Random families consume the provided Rng (deterministic per seed).

#include <string>

#include "graph/graph.h"
#include "support/rng.h"

namespace radiomc::gen {

/// Parses `spec` and builds the graph. Throws std::invalid_argument with a
/// human-readable message on malformed specs.
Graph from_spec(const std::string& spec, Rng& rng);

/// One-line summary of the supported grammar (for CLI help output).
std::string spec_grammar();

}  // namespace radiomc::gen
