#include "graph/algorithms.h"

#include <algorithm>
#include <stdexcept>

#include "support/util.h"

namespace radiomc {

BfsResult bfs(const Graph& g, NodeId root) {
  require(root < g.num_nodes(), "bfs: root out of range");
  const NodeId n = g.num_nodes();
  BfsResult r;
  r.dist.assign(n, BfsResult::kUnreached);
  r.parent.assign(n, kNoNode);
  std::vector<NodeId> frontier{root};
  r.dist[root] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (r.dist[v] == BfsResult::kUnreached) {
          r.dist[v] = depth + 1;
          r.parent[v] = u;
          next.push_back(v);
        } else if (r.dist[v] == depth + 1 && u < r.parent[v]) {
          r.parent[v] = u;  // deterministic smallest-id parent
        }
      }
    }
    if (!next.empty()) r.eccentricity = depth + 1;
    frontier = std::move(next);
    ++depth;
  }
  return r;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const BfsResult r = bfs(g, 0);
  return std::none_of(r.dist.begin(), r.dist.end(), [](std::uint32_t d) {
    return d == BfsResult::kUnreached;
  });
}

std::uint32_t diameter(const Graph& g) {
  require(g.num_nodes() > 0, "diameter: empty graph");
  require(is_connected(g), "diameter: graph must be connected");
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    best = std::max(best, bfs(g, v).eccentricity);
  return best;
}

std::uint32_t diameter_double_sweep(const Graph& g) {
  require(g.num_nodes() > 0, "diameter_double_sweep: empty graph");
  const BfsResult first = bfs(g, 0);
  NodeId far = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (first.dist[v] != BfsResult::kUnreached &&
        first.dist[v] > first.dist[far])
      far = v;
  return bfs(g, far).eccentricity;
}

DfsNumbering dfs_number_tree(const std::vector<NodeId>& parent, NodeId root) {
  const auto n = static_cast<NodeId>(parent.size());
  require(root < n, "dfs_number_tree: root out of range");
  require(parent[root] == kNoNode, "dfs_number_tree: root must have no parent");
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    require(parent[v] < n, "dfs_number_tree: node without valid parent");
    children[parent[v]].push_back(v);
  }
  for (auto& c : children) std::sort(c.begin(), c.end());

  DfsNumbering out;
  out.number.assign(n, 0);
  out.max_desc.assign(n, 0);
  // Iterative preorder with an explicit post-visit to fill max_desc.
  std::uint32_t counter = 0;
  struct Frame {
    NodeId node;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{root, 0}};
  out.number[root] = counter++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < children[f.node].size()) {
      const NodeId c = children[f.node][f.next_child++];
      out.number[c] = counter++;
      stack.push_back({c, 0});
    } else {
      // When v's subtree finishes, counter-1 is the last preorder number
      // handed out inside it.
      out.max_desc[f.node] = counter - 1;
      stack.pop_back();
    }
  }
  return out;
}

}  // namespace radiomc
