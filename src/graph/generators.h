#pragma once

// Topology generators for the experiment suite.
//
// The paper's bounds are stated in terms of n (nodes), D (diameter) and
// Delta (max degree); the generators below cover the interesting corners of
// that space: long thin graphs (path, cycle, caterpillar), dense flat graphs
// (complete, star), the "typical" multi-hop shapes (grid, unit-disk graphs),
// and random graphs (G(n,p), random trees).

#include "graph/graph.h"
#include "support/rng.h"

namespace radiomc::gen {

/// Path 0-1-2-...-(n-1). D = n-1, Delta = 2.
Graph path(NodeId n);

/// Cycle on n >= 3 nodes. D = floor(n/2), Delta = 2.
Graph cycle(NodeId n);

/// Complete graph. D = 1, Delta = n-1. (Single-hop network.)
Graph complete(NodeId n);

/// Star: node 0 is the hub. D = 2, Delta = n-1.
Graph star(NodeId n);

/// rows x cols grid (4-neighborhood). D = rows+cols-2, Delta <= 4.
Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around grid), n >= 3 in each dimension.
Graph torus(NodeId rows, NodeId cols);

/// Hypercube on 2^dims nodes.
Graph hypercube(std::uint32_t dims);

/// Complete r-ary tree with n nodes (node 0 is the root; node v's parent is
/// (v-1)/r). Delta <= r+1.
Graph rary_tree(NodeId n, std::uint32_t r);

/// Uniform random labelled tree (random Prufer sequence).
Graph random_tree(NodeId n, Rng& rng);

/// Caterpillar: a spine path of `spine` nodes, each spine node with `legs`
/// leaves. High-Delta, high-D shape.
Graph caterpillar(NodeId spine, NodeId legs);

/// Two complete graphs of size `clique` joined by a path of `bridge` nodes.
Graph barbell(NodeId clique, NodeId bridge);

/// Erdos-Renyi G(n, p), conditioned on connectivity: resamples (up to
/// `max_attempts`) until connected; throws if it never connects.
Graph gnp_connected(NodeId n, double p, Rng& rng, int max_attempts = 256);

/// Erdos-Renyi G(n, p) sampled by geometric edge-gap skipping: O(n + m)
/// work instead of the O(n^2) Bernoulli sweep above, which is what makes
/// n = 10^6 sparse graphs constructible. NOT conditioned on connectivity
/// (at p below ~ln n / n a giant component plus isolated vertices is the
/// typical draw) — engine benchmarks don't need connectivity, protocol
/// completeness experiments do; those should use gnp_sparse_connected.
/// Draws a different stream than gnp_connected, so the two are distinct
/// named topologies, not interchangeable samplers.
Graph gnp_fast(NodeId n, double p, Rng& rng);

/// gnp_fast conditioned on connectivity (resamples up to `max_attempts`).
/// Use p >= ~1.5 ln n / n or expect the attempts to run out.
Graph gnp_sparse_connected(NodeId n, double p, Rng& rng,
                           int max_attempts = 256);

/// Random geometric / unit-disk graph: n points uniform in the unit square,
/// edge iff distance <= radius; resamples until connected.
Graph unit_disk_connected(NodeId n, double radius, Rng& rng,
                          int max_attempts = 256);

/// Unit-disk graph sampled with a bucket grid of cell width `radius`
/// (each point is tested only against the 9 surrounding cells): O(n + m)
/// expected instead of the O(n^2) pair sweep, for million-node layouts.
/// NOT conditioned on connectivity; see gnp_fast for the rationale.
Graph unit_disk_fast(NodeId n, double radius, Rng& rng);

/// A radius giving expected degree ~`deg` in a unit-disk graph (below the
/// connectivity threshold for large n — bench topologies, not protocol
/// topologies): sqrt(deg / (pi n)).
double udg_degree_radius(NodeId n, double deg);

/// A radius that makes unit_disk_connected connect quickly:
/// ~ sqrt(2.5 ln n / n).
double udg_connect_radius(NodeId n);

}  // namespace radiomc::gen
