#pragma once

// Topology generators for the experiment suite.
//
// The paper's bounds are stated in terms of n (nodes), D (diameter) and
// Delta (max degree); the generators below cover the interesting corners of
// that space: long thin graphs (path, cycle, caterpillar), dense flat graphs
// (complete, star), the "typical" multi-hop shapes (grid, unit-disk graphs),
// and random graphs (G(n,p), random trees).

#include "graph/graph.h"
#include "support/rng.h"

namespace radiomc::gen {

/// Path 0-1-2-...-(n-1). D = n-1, Delta = 2.
Graph path(NodeId n);

/// Cycle on n >= 3 nodes. D = floor(n/2), Delta = 2.
Graph cycle(NodeId n);

/// Complete graph. D = 1, Delta = n-1. (Single-hop network.)
Graph complete(NodeId n);

/// Star: node 0 is the hub. D = 2, Delta = n-1.
Graph star(NodeId n);

/// rows x cols grid (4-neighborhood). D = rows+cols-2, Delta <= 4.
Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around grid), n >= 3 in each dimension.
Graph torus(NodeId rows, NodeId cols);

/// Hypercube on 2^dims nodes.
Graph hypercube(std::uint32_t dims);

/// Complete r-ary tree with n nodes (node 0 is the root; node v's parent is
/// (v-1)/r). Delta <= r+1.
Graph rary_tree(NodeId n, std::uint32_t r);

/// Uniform random labelled tree (random Prufer sequence).
Graph random_tree(NodeId n, Rng& rng);

/// Caterpillar: a spine path of `spine` nodes, each spine node with `legs`
/// leaves. High-Delta, high-D shape.
Graph caterpillar(NodeId spine, NodeId legs);

/// Two complete graphs of size `clique` joined by a path of `bridge` nodes.
Graph barbell(NodeId clique, NodeId bridge);

/// Erdos-Renyi G(n, p), conditioned on connectivity: resamples (up to
/// `max_attempts`) until connected; throws if it never connects.
Graph gnp_connected(NodeId n, double p, Rng& rng, int max_attempts = 256);

/// Random geometric / unit-disk graph: n points uniform in the unit square,
/// edge iff distance <= radius; resamples until connected.
Graph unit_disk_connected(NodeId n, double radius, Rng& rng,
                          int max_attempts = 256);

/// A radius that makes unit_disk_connected connect quickly:
/// ~ sqrt(2.5 ln n / n).
double udg_connect_radius(NodeId n);

}  // namespace radiomc::gen
