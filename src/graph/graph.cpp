#include "graph/graph.h"

#include <algorithm>

#include "support/util.h"

namespace radiomc {

Graph::Graph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges)
    : n_(n) {
  std::vector<std::pair<NodeId, NodeId>> dedup;
  dedup.reserve(edges.size());
  for (auto [u, v] : edges) {
    require(u < n && v < n, "Graph: edge endpoint out of range");
    require(u != v, "Graph: self-loops are not allowed");
    if (u > v) std::swap(u, v);
    dedup.emplace_back(u, v);
  }
  std::sort(dedup.begin(), dedup.end());
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());

  std::vector<std::uint32_t> deg(n, 0);
  for (auto [u, v] : dedup) {
    ++deg[u];
    ++deg[v];
  }
  offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + deg[v];
  adjacency_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (auto [u, v] : dedup) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
    max_degree_ = std::max(max_degree_, deg[v]);
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= n_ || v >= n_) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < n_; ++u)
    for (NodeId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

}  // namespace radiomc
