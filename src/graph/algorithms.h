#pragma once

// Centralized (omniscient) graph algorithms.
//
// These are *verification and measurement* tools, not protocols: the
// distributed protocols in src/protocols never call them for their own
// decisions. Tests use them to check that the distributed BFS/DFS results
// match ground truth, and benches use them to compute D and Delta for the
// paper's bounds.

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace radiomc {

/// BFS layers from `root`: result.dist[v] is the hop distance (kUnreached
/// if v is unreachable), result.parent[v] a BFS parent (kNoNode for root
/// and unreachable nodes). Parents are the smallest-id neighbor in the
/// previous layer, which makes the result deterministic.
struct BfsResult {
  static constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;
  std::uint32_t eccentricity = 0;  // max finite distance
};
BfsResult bfs(const Graph& g, NodeId root);

bool is_connected(const Graph& g);

/// Exact diameter by running BFS from every node. O(n * m); fine for the
/// sizes in this repo's experiments.
std::uint32_t diameter(const Graph& g);

/// Lower bound on the diameter via a double BFS sweep (exact on trees).
std::uint32_t diameter_double_sweep(const Graph& g);

/// Preorder DFS numbering of a rooted tree given per-node parents.
/// Children are visited in ascending id order. Returns preorder number and
/// the maximum preorder number in each subtree (the paper's §5.1 "DFS number
/// of each child and maximum DFS number of all descendants").
struct DfsNumbering {
  std::vector<std::uint32_t> number;    // preorder number, root gets 0
  std::vector<std::uint32_t> max_desc;  // max preorder number in subtree
};
DfsNumbering dfs_number_tree(const std::vector<NodeId>& parent, NodeId root);

}  // namespace radiomc
