#include "graph/graph_io.h"

#include <sstream>

#include "support/util.h"

namespace radiomc {

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "graph radiomc {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) os << "  " << v << ";\n";
  for (auto [u, v] : g.edge_list()) os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
  return os.str();
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "n " << g.num_nodes() << "\n";
  for (auto [u, v] : g.edge_list()) os << u << " " << v << "\n";
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  NodeId n = 0;
  bool have_n = false;
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank
    if (!have_n) {
      require(first == "n", "edge list: expected 'n <count>' header");
      std::uint64_t count = 0;
      require(static_cast<bool>(ls >> count), "edge list: bad node count");
      n = static_cast<NodeId>(count);
      have_n = true;
      continue;
    }
    std::uint64_t u = 0, v = 0;
    std::istringstream es(line);
    require(static_cast<bool>(es >> u >> v),
            "edge list: bad edge at line " + std::to_string(lineno));
    std::string extra;
    require(!(es >> extra),
            "edge list: trailing tokens at line " + std::to_string(lineno));
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  require(have_n, "edge list: missing 'n <count>' header");
  return Graph(n, edges);
}

}  // namespace radiomc
