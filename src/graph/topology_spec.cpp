#include "graph/topology_spec.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "graph/generators.h"
#include "support/util.h"

namespace radiomc::gen {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, delim)) out.push_back(item);
  return out;
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  require(!s.empty(), "topology spec: missing " + what);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  require(end != nullptr && *end == '\0',
          "topology spec: bad " + what + " '" + s + "'");
  return v;
}

double parse_double(const std::string& s, const std::string& what) {
  require(!s.empty(), "topology spec: missing " + what);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  require(end != nullptr && *end == '\0',
          "topology spec: bad " + what + " '" + s + "'");
  return v;
}

std::pair<NodeId, NodeId> parse_dims(const std::string& s) {
  const auto xs = split(s, 'x');
  require(xs.size() == 2, "topology spec: dims must look like RxC");
  return {static_cast<NodeId>(parse_u64(xs[0], "rows")),
          static_cast<NodeId>(parse_u64(xs[1], "cols"))};
}

void arity(const std::vector<std::string>& parts, std::size_t lo,
           std::size_t hi) {
  require(parts.size() >= lo && parts.size() <= hi,
          "topology spec: wrong number of ':'-fields in '" + parts[0] + "'");
}

}  // namespace

Graph from_spec(const std::string& spec, Rng& rng) {
  const auto parts = split(spec, ':');
  require(!parts.empty() && !parts[0].empty(), "topology spec: empty");
  const std::string& kind = parts[0];

  if (kind == "path") {
    arity(parts, 2, 2);
    return path(static_cast<NodeId>(parse_u64(parts[1], "n")));
  }
  if (kind == "cycle") {
    arity(parts, 2, 2);
    return cycle(static_cast<NodeId>(parse_u64(parts[1], "n")));
  }
  if (kind == "complete") {
    arity(parts, 2, 2);
    return complete(static_cast<NodeId>(parse_u64(parts[1], "n")));
  }
  if (kind == "star") {
    arity(parts, 2, 2);
    return star(static_cast<NodeId>(parse_u64(parts[1], "n")));
  }
  if (kind == "grid") {
    arity(parts, 2, 2);
    const auto [r, c] = parse_dims(parts[1]);
    return grid(r, c);
  }
  if (kind == "torus") {
    arity(parts, 2, 2);
    const auto [r, c] = parse_dims(parts[1]);
    return torus(r, c);
  }
  if (kind == "hypercube") {
    arity(parts, 2, 2);
    return hypercube(static_cast<std::uint32_t>(parse_u64(parts[1], "dims")));
  }
  if (kind == "tree") {
    arity(parts, 3, 3);
    return rary_tree(static_cast<NodeId>(parse_u64(parts[1], "n")),
                     static_cast<std::uint32_t>(parse_u64(parts[2], "r")));
  }
  if (kind == "random-tree") {
    arity(parts, 2, 2);
    return random_tree(static_cast<NodeId>(parse_u64(parts[1], "n")), rng);
  }
  if (kind == "caterpillar") {
    arity(parts, 3, 3);
    return caterpillar(static_cast<NodeId>(parse_u64(parts[1], "spine")),
                       static_cast<NodeId>(parse_u64(parts[2], "legs")));
  }
  if (kind == "barbell") {
    arity(parts, 3, 3);
    return barbell(static_cast<NodeId>(parse_u64(parts[1], "clique")),
                   static_cast<NodeId>(parse_u64(parts[2], "bridge")));
  }
  if (kind == "gnp") {
    arity(parts, 3, 3);
    return gnp_connected(static_cast<NodeId>(parse_u64(parts[1], "n")),
                         parse_double(parts[2], "p"), rng);
  }
  if (kind == "udg") {
    arity(parts, 2, 3);
    const NodeId n = static_cast<NodeId>(parse_u64(parts[1], "n"));
    const double radius =
        parts.size() == 3 ? parse_double(parts[2], "radius")
                          : udg_connect_radius(n);
    return unit_disk_connected(n, radius, rng);
  }
  throw std::invalid_argument("topology spec: unknown family '" + kind +
                              "' — " + spec_grammar());
}

std::string spec_grammar() {
  return "path:N | cycle:N | complete:N | star:N | grid:RxC | torus:RxC | "
         "hypercube:D | tree:N:R | random-tree:N | caterpillar:S:L | "
         "barbell:C:B | gnp:N:P | udg:N[:RADIUS]";
}

}  // namespace radiomc::gen
