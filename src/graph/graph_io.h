#pragma once

// Graph serialization: Graphviz DOT export (for visualizing topologies and
// BFS trees) and a plain edge-list format for interchange.
//
// Edge-list format: first line "n <num_nodes>", then one "u v" pair per
// line; '#' starts a comment. Whitespace-tolerant.

#include <string>

#include "graph/graph.h"

namespace radiomc {

/// Graphviz DOT (undirected). (The BFS-tree-aware overlay lives in
/// protocols/tree.h, which owns the BfsTree type.)
std::string to_dot(const Graph& g);

/// Plain edge list.
std::string to_edge_list(const Graph& g);

/// Parses the edge-list format; throws std::invalid_argument on errors.
Graph from_edge_list(const std::string& text);

}  // namespace radiomc
