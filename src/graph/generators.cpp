#include "graph/generators.h"

#include <cmath>
#include <stdexcept>

#include "graph/algorithms.h"
#include "support/util.h"

namespace radiomc::gen {

namespace {
using EdgeList = std::vector<std::pair<NodeId, NodeId>>;
}  // namespace

Graph path(NodeId n) {
  require(n >= 1, "path: n >= 1");
  EdgeList e;
  for (NodeId v = 0; v + 1 < n; ++v) e.emplace_back(v, v + 1);
  return Graph(n, e);
}

Graph cycle(NodeId n) {
  require(n >= 3, "cycle: n >= 3");
  EdgeList e;
  for (NodeId v = 0; v + 1 < n; ++v) e.emplace_back(v, v + 1);
  e.emplace_back(n - 1, 0);
  return Graph(n, e);
}

Graph complete(NodeId n) {
  require(n >= 1, "complete: n >= 1");
  EdgeList e;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) e.emplace_back(u, v);
  return Graph(n, e);
}

Graph star(NodeId n) {
  require(n >= 2, "star: n >= 2");
  EdgeList e;
  for (NodeId v = 1; v < n; ++v) e.emplace_back(0, v);
  return Graph(n, e);
}

Graph grid(NodeId rows, NodeId cols) {
  require(rows >= 1 && cols >= 1, "grid: dims >= 1");
  const NodeId n = rows * cols;
  EdgeList e;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) e.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) e.emplace_back(id(r, c), id(r + 1, c));
    }
  return Graph(n, e);
}

Graph torus(NodeId rows, NodeId cols) {
  require(rows >= 3 && cols >= 3, "torus: dims >= 3");
  const NodeId n = rows * cols;
  EdgeList e;
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      e.emplace_back(id(r, c), id(r, (c + 1) % cols));
      e.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  return Graph(n, e);
}

Graph hypercube(std::uint32_t dims) {
  require(dims >= 1 && dims <= 20, "hypercube: 1 <= dims <= 20");
  const NodeId n = NodeId{1} << dims;
  EdgeList e;
  for (NodeId v = 0; v < n; ++v)
    for (std::uint32_t b = 0; b < dims; ++b) {
      const NodeId u = v ^ (NodeId{1} << b);
      if (v < u) e.emplace_back(v, u);
    }
  return Graph(n, e);
}

Graph rary_tree(NodeId n, std::uint32_t r) {
  require(n >= 1 && r >= 1, "rary_tree: n >= 1, r >= 1");
  EdgeList e;
  for (NodeId v = 1; v < n; ++v) e.emplace_back((v - 1) / r, v);
  return Graph(n, e);
}

Graph random_tree(NodeId n, Rng& rng) {
  require(n >= 1, "random_tree: n >= 1");
  if (n == 1) return Graph(1, {});
  if (n == 2) return Graph(2, {{0, 1}});
  // Prufer decoding: uniform over labelled trees.
  std::vector<NodeId> prufer(n - 2);
  for (auto& p : prufer) p = static_cast<NodeId>(rng.next_below(n));
  std::vector<std::uint32_t> deg(n, 1);
  for (NodeId p : prufer) ++deg[p];
  EdgeList e;
  // `ptr` scans for leaves in increasing order; `leaf` is the current leaf.
  NodeId ptr = 0;
  while (deg[ptr] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId p : prufer) {
    e.emplace_back(leaf, p);
    if (--deg[p] == 1 && p < ptr) {
      leaf = p;
    } else {
      ++ptr;
      while (deg[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  e.emplace_back(leaf, n - 1);
  return Graph(n, e);
}

Graph caterpillar(NodeId spine, NodeId legs) {
  require(spine >= 1, "caterpillar: spine >= 1");
  const NodeId n = spine * (legs + 1);
  EdgeList e;
  for (NodeId s = 0; s + 1 < spine; ++s) e.emplace_back(s, s + 1);
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s)
    for (NodeId l = 0; l < legs; ++l) e.emplace_back(s, next++);
  return Graph(n, e);
}

Graph barbell(NodeId clique, NodeId bridge) {
  require(clique >= 2, "barbell: clique >= 2");
  const NodeId n = 2 * clique + bridge;
  EdgeList e;
  for (NodeId u = 0; u < clique; ++u)
    for (NodeId v = u + 1; v < clique; ++v) e.emplace_back(u, v);
  const NodeId right = clique + bridge;
  for (NodeId u = right; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) e.emplace_back(u, v);
  // Path through the bridge (or a direct edge when bridge == 0).
  NodeId prev = clique - 1;
  for (NodeId b = 0; b < bridge; ++b) {
    e.emplace_back(prev, clique + b);
    prev = clique + b;
  }
  e.emplace_back(prev, right);
  return Graph(n, e);
}

Graph gnp_connected(NodeId n, double p, Rng& rng, int max_attempts) {
  require(n >= 1, "gnp: n >= 1");
  require(p > 0.0 && p <= 1.0, "gnp: p in (0, 1]");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    EdgeList e;
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (rng.bernoulli(p)) e.emplace_back(u, v);
    Graph g(n, e);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("gnp_connected: failed to sample a connected graph");
}

Graph gnp_fast(NodeId n, double p, Rng& rng) {
  require(n >= 1, "gnp_fast: n >= 1");
  require(p > 0.0 && p <= 1.0, "gnp_fast: p in (0, 1]");
  if (p >= 1.0) return complete(n);
  // Batagelj-Brandes geometric skipping: walk the strictly-upper-triangular
  // pair space (w < v) jumping Geometric(p) gaps, so work is O(n + m)
  // rather than O(n^2) Bernoulli draws.
  EdgeList e;
  const double denom = std::log1p(-p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = rng.next_double();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / denom));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn)
      e.emplace_back(static_cast<NodeId>(w), static_cast<NodeId>(v));
  }
  return Graph(n, e);
}

Graph gnp_sparse_connected(NodeId n, double p, Rng& rng, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Graph g = gnp_fast(n, p, rng);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error(
      "gnp_sparse_connected: failed to sample a connected graph");
}

Graph unit_disk_connected(NodeId n, double radius, Rng& rng, int max_attempts) {
  require(n >= 1, "udg: n >= 1");
  require(radius > 0.0, "udg: radius > 0");
  const double r2 = radius * radius;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<double> x(n), y(n);
    for (NodeId v = 0; v < n; ++v) {
      x[v] = rng.next_double();
      y[v] = rng.next_double();
    }
    EdgeList e;
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) {
        const double dx = x[u] - x[v];
        const double dy = y[u] - y[v];
        if (dx * dx + dy * dy <= r2) e.emplace_back(u, v);
      }
    Graph g(n, e);
    if (is_connected(g)) return g;
  }
  throw std::runtime_error(
      "unit_disk_connected: failed to sample a connected graph");
}

Graph unit_disk_fast(NodeId n, double radius, Rng& rng) {
  require(n >= 1, "unit_disk_fast: n >= 1");
  require(radius > 0.0, "unit_disk_fast: radius > 0");
  const double r2 = radius * radius;
  std::vector<double> x(n), y(n);
  for (NodeId v = 0; v < n; ++v) {
    x[v] = rng.next_double();
    y[v] = rng.next_double();
  }
  // Bucket grid with cell width = radius: any in-range pair lives in the
  // same or an adjacent cell, so each point checks 9 cells instead of n-1
  // other points. Buckets are CSR over cell ids (counting sort), giving a
  // deterministic member order (ascending point id per cell).
  const auto grid =
      static_cast<std::size_t>(std::min(std::floor(1.0 / radius) + 1.0,
                                        static_cast<double>(n) + 1.0));
  auto cell_of = [&](NodeId v) {
    auto cx = static_cast<std::size_t>(x[v] / radius);
    auto cy = static_cast<std::size_t>(y[v] / radius);
    if (cx >= grid) cx = grid - 1;
    if (cy >= grid) cy = grid - 1;
    return cy * grid + cx;
  };
  std::vector<std::size_t> start(grid * grid + 1, 0);
  for (NodeId v = 0; v < n; ++v) ++start[cell_of(v) + 1];
  for (std::size_t c = 1; c < start.size(); ++c) start[c] += start[c - 1];
  std::vector<NodeId> member(n);
  {
    std::vector<std::size_t> fill(start.begin(), start.end() - 1);
    for (NodeId v = 0; v < n; ++v) member[fill[cell_of(v)]++] = v;
  }
  EdgeList e;
  for (NodeId u = 0; u < n; ++u) {
    const auto cx = static_cast<std::ptrdiff_t>(cell_of(u) % grid);
    const auto cy = static_cast<std::ptrdiff_t>(cell_of(u) / grid);
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const std::ptrdiff_t nx = cx + dx;
        const std::ptrdiff_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(grid) ||
            ny >= static_cast<std::ptrdiff_t>(grid))
          continue;
        const std::size_t c = static_cast<std::size_t>(ny) * grid +
                              static_cast<std::size_t>(nx);
        for (std::size_t i = start[c]; i < start[c + 1]; ++i) {
          const NodeId v = member[i];
          if (v <= u) continue;  // each pair once, as (u, v) with u < v
          const double ddx = x[u] - x[v];
          const double ddy = y[u] - y[v];
          if (ddx * ddx + ddy * ddy <= r2) e.emplace_back(u, v);
        }
      }
    }
  }
  return Graph(n, e);
}

double udg_degree_radius(NodeId n, double deg) {
  const double nn = static_cast<double>(n < 2 ? 2 : n);
  return std::sqrt(deg / (3.14159265358979323846 * nn));
}

double udg_connect_radius(NodeId n) {
  const double nn = static_cast<double>(n < 2 ? 2 : n);
  return std::sqrt(2.5 * std::log(nn) / nn);
}

}  // namespace radiomc::gen
