#pragma once

// Undirected graph in compressed-sparse-row form.
//
// This is the topology substrate of the radio model: nodes are stations,
// an edge means the two stations are within transmission range of each
// other (paper §1.1). The graph is immutable after construction, which lets
// the slot engine iterate neighborhoods at memory speed.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace radiomc {

using NodeId = std::uint32_t;

/// Sentinel "no node" value (used for absent parents etc.).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

class Graph {
 public:
  /// Builds a graph on `n` nodes from an edge list. Self-loops are rejected;
  /// duplicate edges are deduplicated.
  Graph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Empty graph (no nodes).
  Graph() = default;

  NodeId num_nodes() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Neighbors of `v`, sorted ascending.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Maximum degree Delta of the graph (0 for an empty graph).
  std::uint32_t max_degree() const noexcept { return max_degree_; }

  bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) with u < v, sorted.
  std::vector<std::pair<NodeId, NodeId>> edge_list() const;

 private:
  NodeId n_ = 0;
  std::vector<std::size_t> offsets_;  // n_ + 1 entries
  std::vector<NodeId> adjacency_;
  std::uint32_t max_degree_ = 0;
};

}  // namespace radiomc
