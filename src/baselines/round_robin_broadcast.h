#pragma once

// Deterministic round-robin broadcast: informed nodes transmit one at a
// time in a global id-indexed TDMA frame, so there is never a collision
// and the flood advances at least one BFS level per frame — completing in
// at most D frames of n slots each.
//
// This is the natural deterministic comparison point for §1.3's
// exponential gap: Bar-Yehuda, Goldreich & Itai prove every deterministic
// broadcast needs Omega(n) slots on some D = 2 network, while their
// randomized protocol needs O((D + log(n/eps)) log Delta). Experiment E14
// measures the representative instance: Theta(n) for round robin vs
// polylog for the randomized flood on D = 2 graphs.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "radio/message.h"

namespace radiomc::baselines {

struct RoundRobinBroadcastOutcome {
  bool completed = false;
  SlotTime slots = 0;          ///< slot of the last first-reception
  std::uint64_t collisions = 0;  ///< must be 0
  std::vector<SlotTime> informed_at;
};

/// Floods one message from `source`; runs until all nodes are informed (at
/// most D frames) or `max_frames` frames pass.
RoundRobinBroadcastOutcome run_round_robin_broadcast(
    const Graph& g, NodeId source, std::uint64_t max_frames = 0 /*0 = n*/);

}  // namespace radiomc::baselines
