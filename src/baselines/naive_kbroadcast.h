#pragma once

// Naive k-broadcast baseline (§6: "In principle the message can be sent
// using the BFS protocol. However, each message would require
// 2 D log Delta log n time to reach all the nodes"): one full BGI flood per
// message, strictly sequentially. Cost Theta(k (D + log n) log Delta)
// versus the pipeline's O((k + D) log Delta log n). Experiment E11 shows
// the pipelining win growing with k.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "radio/message.h"

namespace radiomc::baselines {

struct NaiveBroadcastOutcome {
  bool completed = false;
  SlotTime slots = 0;
  std::uint64_t floods_run = 0;  ///< includes per-message retries
};

/// Broadcasts one message per source, sequentially; each flood runs in
/// rounds of `phases_per_round` phases until all nodes are informed (a
/// round failing to finish the flood is simply followed by another).
NaiveBroadcastOutcome run_naive_k_broadcast(const Graph& g,
                                            const std::vector<NodeId>& sources,
                                            std::uint64_t seed,
                                            SlotTime max_slots = 500'000'000);

}  // namespace radiomc::baselines
