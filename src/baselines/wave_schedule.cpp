#include "baselines/wave_schedule.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>

#include "radio/network.h"
#include "radio/station.h"
#include "support/util.h"

namespace radiomc::baselines {

WaveSchedule compute_wave_schedule(const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  require(source < n, "compute_wave_schedule: source out of range");
  WaveSchedule sched;
  sched.source = source;

  std::vector<bool> informed(n, false);
  informed[source] = true;
  NodeId informed_count = 1;

  while (informed_count < n) {
    // Greedy round: repeatedly add the informed transmitter that newly
    // covers the most uninformed nodes, where "covers" means the node ends
    // the round with exactly one transmitting neighbor. Adding a
    // transmitter can uncover nodes (second transmitting neighbor); the
    // greedy gain accounts for both directions.
    std::vector<std::uint32_t> tx_nbrs(n, 0);  // selected transmitting nbrs
    std::vector<NodeId> round;
    std::vector<bool> selected(n, false);

    for (;;) {
      NodeId best = kNoNode;
      std::int64_t best_gain = 0;
      for (NodeId u = 0; u < n; ++u) {
        if (!informed[u] || selected[u]) continue;
        std::int64_t gain = 0;
        for (NodeId v : g.neighbors(u)) {
          if (informed[v]) continue;
          if (tx_nbrs[v] == 0) ++gain;        // newly covered
          else if (tx_nbrs[v] == 1) --gain;   // collides an existing cover
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = u;
        }
      }
      if (best == kNoNode) break;
      selected[best] = true;
      round.push_back(best);
      for (NodeId v : g.neighbors(best))
        if (!informed[v]) ++tx_nbrs[v];
    }
    require(!round.empty(),
            "compute_wave_schedule: disconnected graph or internal error");

    for (NodeId v = 0; v < n; ++v) {
      if (!informed[v] && tx_nbrs[v] == 1) {
        informed[v] = true;
        ++informed_count;
      }
    }
    sched.rounds.push_back(std::move(round));
  }
  return sched;
}

namespace {

class ScriptedStation final : public SubStation {
 public:
  ScriptedStation(NodeId me, const std::vector<bool>& my_slots)
      : me_(me), my_slots_(my_slots) {}

  std::optional<Message> poll(SlotTime t) override {
    if (t >= my_slots_.size() || !my_slots_[t]) return std::nullopt;
    Message m;
    m.kind = MsgKind::kBcastData;
    m.origin = me_;
    return m;
  }
  void deliver(SlotTime, const Message&) override { informed_ = true; }
  bool informed() const noexcept { return informed_; }
  void force_informed() noexcept { informed_ = true; }

 private:
  NodeId me_;
  std::vector<bool> my_slots_;
  bool informed_ = false;
};

}  // namespace

WaveOutcome execute_wave_schedule(const Graph& g, const WaveSchedule& s) {
  const NodeId n = g.num_nodes();
  const std::size_t rounds = s.rounds.size();
  std::vector<std::vector<bool>> slots(n, std::vector<bool>(rounds, false));
  for (std::size_t t = 0; t < rounds; ++t)
    for (NodeId u : s.rounds[t]) slots[u][t] = true;

  std::vector<std::unique_ptr<ScriptedStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    stations.push_back(std::make_unique<ScriptedStation>(v, slots[v]));
  stations[s.source]->force_informed();

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& st : stations) adapters.emplace_back(*st);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  net.run(rounds);

  WaveOutcome out;
  out.slots = net.now();
  out.all_informed =
      std::all_of(stations.begin(), stations.end(),
                  [](const auto& st) { return st->informed(); });
  return out;
}

}  // namespace radiomc::baselines
