#include "baselines/naive_kbroadcast.h"

#include "graph/algorithms.h"
#include "protocols/bgi_broadcast.h"
#include "support/rng.h"
#include "support/util.h"

namespace radiomc::baselines {

NaiveBroadcastOutcome run_naive_k_broadcast(
    const Graph& g, const std::vector<NodeId>& sources, std::uint64_t seed,
    SlotTime max_slots) {
  const NodeId n = g.num_nodes();
  NaiveBroadcastOutcome out;
  Rng master(seed);

  // Each flood gets a generous phase budget; incomplete floods are rerun
  // (counted), so the baseline is as loss-free as the pipeline it is
  // compared with. The double-sweep diameter estimate stands in for the
  // budget a deployment would derive from n.
  const std::uint64_t phases =
      4 * (static_cast<std::uint64_t>(diameter_double_sweep(g)) +
           2 * ceil_log2(n < 2 ? 2 : n) + 2);

  for (NodeId src : sources) {
    for (;;) {
      const BgiOutcome flood =
          run_bgi_broadcast(g, src, phases, master.next());
      out.slots += flood.slots;
      ++out.floods_run;
      if (flood.informed_count == n) break;
      if (out.slots >= max_slots) return out;
    }
  }
  out.completed = out.slots < max_slots;
  return out;
}

}  // namespace radiomc::baselines
