#include "baselines/tdma_collection.h"

#include <deque>
#include <memory>
#include <optional>

#include "radio/station.h"
#include "support/util.h"

namespace radiomc::baselines {

namespace {

class TdmaStation final : public SubStation {
 public:
  TdmaStation(NodeId me, NodeId n, NodeId parent, bool is_root)
      : me_(me), n_(n), parent_(parent), is_root_(is_root) {}

  void enqueue(const Message& m) { buffer_.push_back(m); }
  std::size_t delivered() const noexcept { return delivered_; }

  std::optional<Message> poll(SlotTime t) override {
    if (is_root_ || buffer_.empty()) return std::nullopt;
    if (t % n_ != me_) return std::nullopt;  // my frame slot
    Message m = buffer_.front();
    buffer_.pop_front();  // single global transmitter: reception is certain
    m.sender = me_;
    m.sender_parent = parent_;
    return m;
  }

  void deliver(SlotTime, const Message& m) override {
    if (m.sender_parent != me_) return;  // not from one of my children
    if (is_root_) {
      ++delivered_;
    } else {
      buffer_.push_back(m);
    }
  }

 private:
  NodeId me_;
  NodeId n_;
  NodeId parent_;
  bool is_root_;
  std::deque<Message> buffer_;
  std::size_t delivered_ = 0;
};

}  // namespace

TdmaOutcome run_tdma_collection(const Graph& g, const BfsTree& tree,
                                const std::vector<NodeId>& sources,
                                SlotTime max_slots) {
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "run_tdma_collection: tree/graph mismatch");

  std::vector<std::unique_ptr<TdmaStation>> stations;
  stations.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    stations.push_back(std::make_unique<TdmaStation>(
        v, n, tree.parent[v], v == tree.root));
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = sources[i];
    m.seq = static_cast<std::uint32_t>(i);
    if (sources[i] == tree.root) continue;  // already at the sink
    stations[sources[i]]->enqueue(m);
    ++expected;
  }

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : stations) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));

  TdmaOutcome out;
  while (stations[tree.root]->delivered() < expected &&
         net.now() < max_slots)
    net.step();
  out.completed = stations[tree.root]->delivered() >= expected;
  out.slots = net.now();
  out.collisions = net.metrics().collision_events;
  return out;
}

}  // namespace radiomc::baselines
