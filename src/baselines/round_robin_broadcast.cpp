#include "baselines/round_robin_broadcast.h"

#include <deque>
#include <memory>
#include <optional>

#include "radio/network.h"
#include "radio/station.h"
#include "support/util.h"

namespace radiomc::baselines {

namespace {

class RoundRobinStation final : public SubStation {
 public:
  RoundRobinStation(NodeId me, NodeId n) : me_(me), n_(n) {}

  void seed() {
    informed_ = true;
    informed_at_ = 0;
  }
  bool informed() const noexcept { return informed_; }
  SlotTime informed_at() const noexcept { return informed_at_; }

  std::optional<Message> poll(SlotTime t) override {
    if (!informed_ || t % n_ != me_) return std::nullopt;
    Message m;
    m.kind = MsgKind::kBcastData;
    m.origin = me_;
    return m;
  }
  void deliver(SlotTime t, const Message&) override {
    if (!informed_) {
      informed_ = true;
      informed_at_ = t;
    }
  }

 private:
  NodeId me_;
  NodeId n_;
  bool informed_ = false;
  SlotTime informed_at_ = 0;
};

}  // namespace

RoundRobinBroadcastOutcome run_round_robin_broadcast(
    const Graph& g, NodeId source, std::uint64_t max_frames) {
  const NodeId n = g.num_nodes();
  require(source < n, "run_round_robin_broadcast: source out of range");
  if (max_frames == 0) max_frames = n;

  std::vector<std::unique_ptr<RoundRobinStation>> st;
  st.reserve(n);
  for (NodeId v = 0; v < n; ++v)
    st.push_back(std::make_unique<RoundRobinStation>(v, n));
  st[source]->seed();

  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : st) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));

  RoundRobinBroadcastOutcome out;
  for (std::uint64_t frame = 0; frame < max_frames; ++frame) {
    bool all = true;
    for (auto& s : st) all = all && s->informed();
    if (all) break;
    net.run(n);
  }
  out.informed_at.resize(n);
  out.completed = true;
  for (NodeId v = 0; v < n; ++v) {
    out.completed = out.completed && st[v]->informed();
    out.informed_at[v] = st[v]->informed_at();
    out.slots = std::max(out.slots, st[v]->informed_at());
  }
  out.collisions = net.metrics().collision_events;
  return out;
}

}  // namespace radiomc::baselines
