#pragma once

// Deterministic TDMA baseline for collection: a frame of n slots, one per
// node; in its slot a node forwards the head of its buffer to its BFS
// parent. With a single transmitter network-wide per slot there are no
// collisions and no acknowledgements are needed — but the frame costs n
// slots, so k messages take Theta((k + D) n) slots versus the paper's
// O((k + D) log Delta). Experiment E11 measures the crossover.

#include <cstdint>
#include <vector>

#include "protocols/tree.h"
#include "radio/network.h"

namespace radiomc::baselines {

struct TdmaOutcome {
  bool completed = false;
  SlotTime slots = 0;
  std::uint64_t collisions = 0;  ///< must be 0
};

TdmaOutcome run_tdma_collection(const Graph& g, const BfsTree& tree,
                                const std::vector<NodeId>& sources,
                                SlotTime max_slots = 500'000'000);

}  // namespace radiomc::baselines
