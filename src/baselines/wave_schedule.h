#pragma once

// Centralized broadcast scheduling in the spirit of Chlamtac & Weinstein
// [8] ("the wave expansion approach"): given full knowledge of the
// topology, compute a collision-free schedule — a sequence of transmitter
// sets — that spreads one message from a source to all nodes, and execute
// it on the radio engine to verify collision-freedom at every receiver
// that the round intends to cover.
//
// The greedy set-selection per round delivers the O(D log^2 n) flavor of
// [8]; the paper cites it as the centralized/deterministic comparison
// point for the randomized protocols (§1.3), and Alon et al. [1] show
// Omega(log^2 n) rounds are necessary for D = 2, so the shape is tight.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "radio/message.h"

namespace radiomc::baselines {

struct WaveSchedule {
  NodeId source = 0;
  /// rounds[t] = the set of nodes transmitting in slot t.
  std::vector<std::vector<NodeId>> rounds;
};

/// Computes a schedule by greedy maximum-new-coverage transmitter
/// selection per round (each round informs every uninformed node with
/// exactly one selected transmitting neighbor).
WaveSchedule compute_wave_schedule(const Graph& g, NodeId source);

struct WaveOutcome {
  bool all_informed = false;
  SlotTime slots = 0;
};

/// Replays the schedule on the radio engine and checks that it informs
/// every node (scheduled transmissions are deterministic, so this is a
/// validation of the schedule, not a probabilistic run).
WaveOutcome execute_wave_schedule(const Graph& g, const WaveSchedule& s);

}  // namespace radiomc::baselines
