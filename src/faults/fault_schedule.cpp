#include "faults/fault_schedule.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/rng.h"
#include "support/rng_tags.h"

namespace radiomc {

namespace {

// Fixed split tags, one per fault kind, live in support/rng_tags.h
// (registry constants kFaultCrash..kFaultDrop): large so they cannot
// collide with the small per-node tags protocols feed to `master.split(v)`.

/// Pure stateless draw in [0, 1): a splitmix64 finalization of
/// (key, entity, time). Query-order independent by construction.
double unit_draw(std::uint64_t key, std::uint64_t entity,
                 std::uint64_t time) noexcept {
  std::uint64_t s = key ^ (entity + 0x9e3779b97f4a7c15ULL) *
                              0xd1342543de82ef95ULL;
  s ^= (time + 0x2545f4914f6cdd1dULL) * 0xbf58476d1ce4e5b9ULL;
  splitmix64(s);  // advances s; two rounds decorrelate the sparse inputs
  const std::uint64_t z = splitmix64(s);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

std::uint64_t pack_rx(NodeId v, std::uint32_t channel) noexcept {
  return (static_cast<std::uint64_t>(v) << 32) | channel;
}

}  // namespace

FaultSchedule::FaultSchedule(const Graph& g, const FaultPlan& plan,
                             std::uint64_t seed)
    : plan_(plan) {
  plan_.validate();
  enabled_ = plan_.any();
  if (!enabled_) return;

  // Per-kind keys, derived in a fixed order (Rng::split mutates the
  // parent, so the order is part of the determinism contract).
  Rng root(seed);
  crash_key_ = root.split(rng_tags::kFaultCrash).next();
  recover_key_ = root.split(rng_tags::kFaultRecover).next();
  link_down_key_ = root.split(rng_tags::kFaultLinkDown).next();
  link_up_key_ = root.split(rng_tags::kFaultLinkUp).next();
  jam_key_ = root.split(rng_tags::kFaultJam).next();
  drop_key_ = root.split(rng_tags::kFaultDrop).next();

  if (plan_.crash_rate > 0.0)
    alive_.assign(g.num_nodes(), std::uint8_t{1});

  if (plan_.link_down_rate > 0.0) {
    // Mirror the graph's CSR with undirected edge ids so link_up(u, k) is
    // one array lookup in the engine's hot superposition loop.
    const auto edges = g.edge_list();
    link_state_.assign(edges.size(), std::uint8_t{1});
    // Build-once key -> edge-id index as a sorted vector: deterministic by
    // construction, and binary search beats hashing at these sizes.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> id_of;
    id_of.reserve(edges.size());
    for (std::uint32_t i = 0; i < edges.size(); ++i)
      id_of.emplace_back((static_cast<std::uint64_t>(edges[i].first) << 32) |
                             edges[i].second,
                         i);
    std::sort(id_of.begin(), id_of.end());
    const auto edge_id_of = [&id_of](std::uint64_t key) -> std::uint32_t {
      const auto it = std::lower_bound(
          id_of.begin(), id_of.end(), key,
          [](const auto& e, std::uint64_t k) { return e.first < k; });
      // Every neighbor pair is in the edge list by construction; fail as
      // loudly as the unordered_map::at this replaced if that ever breaks.
      if (it == id_of.end() || it->first != key)
        throw std::out_of_range("FaultSchedule: neighbor pair not an edge");
      return it->second;
    };
    offset_.assign(g.num_nodes() + 1, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      offset_[v + 1] = offset_[v] + g.degree(v);
    edge_id_.resize(offset_[g.num_nodes()]);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = g.neighbors(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const NodeId w = nbrs[k];
        const std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(u, w)) << 32) |
            std::max(u, w);
        edge_id_[offset_[u] + k] = edge_id_of(key);
      }
    }
  }
}

void FaultSchedule::begin_slot(std::uint64_t t) {
  if (!enabled_ || t < plan_.window_start) return;
  if (alive_.empty() && link_state_.empty()) return;
  const std::uint64_t e = (t - plan_.window_start) / plan_.epoch_slots;
  while (next_epoch_ <= e) apply_epoch(next_epoch_++);
}

void FaultSchedule::apply_epoch(std::uint64_t e) {
  // Fault onset is gated by the window; healing (recover / link-up) keeps
  // running after window_end so a bounded burst can heal.
  const bool onset =
      onset_active(plan_.window_start + e * plan_.epoch_slots);
  for (NodeId v = 0; v < alive_.size(); ++v) {
    if (alive_[v]) {
      if (onset && unit_draw(crash_key_, v, e) < plan_.crash_rate) {
        alive_[v] = 0;
        ++crashed_;
        ++stats_.crashes;
      }
    } else if (plan_.recover_rate > 0.0 &&
               unit_draw(recover_key_, v, e) < plan_.recover_rate) {
      alive_[v] = 1;
      --crashed_;
      ++stats_.recoveries;
    }
  }
  for (std::uint32_t i = 0; i < link_state_.size(); ++i) {
    if (link_state_[i]) {
      if (onset && unit_draw(link_down_key_, i, e) < plan_.link_down_rate) {
        link_state_[i] = 0;
        ++stats_.link_downs;
      }
    } else if (plan_.link_up_rate > 0.0 &&
               unit_draw(link_up_key_, i, e) < plan_.link_up_rate) {
      link_state_[i] = 1;
      ++stats_.link_ups;
    }
  }
}

bool FaultSchedule::jammed(std::uint64_t t, NodeId v,
                           std::uint32_t channel) const noexcept {
  return enabled_ && plan_.jam_prob > 0.0 && onset_active(t) &&
         unit_draw(jam_key_, pack_rx(v, channel), t) < plan_.jam_prob;
}

bool FaultSchedule::dropped(std::uint64_t t, NodeId v,
                            std::uint32_t channel) const noexcept {
  return enabled_ && plan_.drop_prob > 0.0 && onset_active(t) &&
         unit_draw(drop_key_, pack_rx(v, channel), t) < plan_.drop_prob;
}

}  // namespace radiomc
