#include "faults/fault_plan.h"

#include "support/util.h"

namespace radiomc {

namespace {
bool in_unit(double p) { return p >= 0.0 && p <= 1.0; }
}  // namespace

void FaultPlan::validate() const {
  require(in_unit(crash_rate), "FaultPlan: crash_rate must be in [0, 1]");
  require(in_unit(recover_rate), "FaultPlan: recover_rate must be in [0, 1]");
  require(in_unit(link_down_rate),
          "FaultPlan: link_down_rate must be in [0, 1]");
  require(in_unit(link_up_rate), "FaultPlan: link_up_rate must be in [0, 1]");
  require(in_unit(jam_prob), "FaultPlan: jam_prob must be in [0, 1]");
  require(in_unit(drop_prob), "FaultPlan: drop_prob must be in [0, 1]");
  require(epoch_slots >= 1, "FaultPlan: epoch_slots must be >= 1");
  require(recover_rate == 0.0 || crash_rate > 0.0,
          "FaultPlan: recover_rate without crash_rate is contradictory");
  require(link_up_rate == 0.0 || link_down_rate > 0.0,
          "FaultPlan: link_up_rate without link_down_rate is contradictory");
  require(window_end > window_start,
          "FaultPlan: fault window is empty (window_end <= window_start)");
}

const char* to_string(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kDegraded:
      return "degraded";
    case RunStatus::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace radiomc
