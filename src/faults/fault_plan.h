#pragma once

// Deterministic fault injection — the plan half.
//
// The paper's setup phase is built around verification-and-restart so that
// leader election and BFS construction "always succeed" (§3), yet on a
// perfect static network none of that machinery is ever exercised. A
// `FaultPlan` describes what can go wrong and at which rates; compiled
// against a concrete graph and seed it becomes a `FaultSchedule`
// (fault_schedule.h) whose per-slot decisions are a pure function of
// `(seed, plan)` — reproducible across thread counts by construction.
//
// Fault kinds (all off by default; an all-zero plan means "no faults" and
// the engine takes its exact legacy code path):
//
//  * node crashes   — at the first slot of every fault epoch inside the
//    fault window, each alive node crashes with probability `crash_rate`;
//    each crashed node recovers with probability `recover_rate`.
//    `recover_rate == 0` gives crash-stop, > 0 gives crash-recover. A
//    crashed station neither transmits nor receives and its protocol state
//    is frozen (it resumes, stale, on recovery).
//  * link churn     — per undirected edge, the same epoch-level Markov
//    chain with `link_down_rate` / `link_up_rate`. A down link carries
//    nothing in either direction.
//  * jamming        — per (receiver, channel, slot), with probability
//    `jam_prob` background noise kills an otherwise-clean reception; the
//    receiver observes a collision-indistinguishable silence.
//  * message drops  — each delivery (clean or capture-resolved) is lost
//    with probability `drop_prob`, silently.
//
// The window [window_start, window_end) gates fault *onset*: crashes and
// link-downs stop being drawn, and jam/drop draws stop firing, outside the
// window. Healing transitions (recover, link-up) keep running after
// window_end so a bounded fault burst can heal — which is what the
// setup-restart resilience tests rely on.

#include <cstdint>

#include "support/rng_tags.h"

namespace radiomc {

/// Open-ended fault window end.
inline constexpr std::uint64_t kNoSlotLimit = ~0ULL;

// The split tag under which run drivers derive a fault-schedule seed from
// their master stream is `rng_tags::kFaultStream` (support/rng_tags.h):
// large so it can never collide with the small per-station tags
// (`master.split(v)`), and drawn only when a plan is active — fault-free
// runs consume exactly the historical stream.

struct FaultPlan {
  double crash_rate = 0.0;     ///< per node per epoch, in [0, 1]
  double recover_rate = 0.0;   ///< per crashed node per epoch, in [0, 1]
  double link_down_rate = 0.0; ///< per edge per epoch, in [0, 1]
  double link_up_rate = 0.0;   ///< per down edge per epoch, in [0, 1]
  double jam_prob = 0.0;       ///< per (receiver, channel, slot), in [0, 1]
  double drop_prob = 0.0;      ///< per delivery, in [0, 1]

  /// Length of a fault epoch in slots; crash/link chains step once per
  /// epoch (jam/drop are memoryless per slot and ignore it).
  std::uint64_t epoch_slots = 1024;

  /// Fault onset happens in slots [window_start, window_end) only.
  std::uint64_t window_start = 0;
  std::uint64_t window_end = kNoSlotLimit;

  /// True iff any fault kind has a nonzero rate. An all-zero plan compiles
  /// to a disabled schedule and the engine behaves byte-identically to a
  /// fault-free build.
  bool any() const noexcept {
    return crash_rate > 0.0 || link_down_rate > 0.0 || jam_prob > 0.0 ||
           drop_prob > 0.0;
  }

  /// Throws std::invalid_argument with a specific message when the plan is
  /// contradictory: rates outside [0, 1], a zero-length epoch, a healing
  /// rate without its failure rate, or an empty window.
  void validate() const;
};

/// Structured outcome of a protocol run under faults: `kOk` = completed,
/// `kDegraded` = the progress watchdog fired (partial progress, clean
/// termination instead of a hang), `kFailed` = the slot budget ran out.
enum class RunStatus : std::uint8_t { kOk, kDegraded, kFailed };

const char* to_string(RunStatus s) noexcept;

}  // namespace radiomc
